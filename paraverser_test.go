package paraverser_test

import (
	"testing"

	"paraverser"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := paraverser.DefaultConfig(paraverser.Checkers(paraverser.A510(), 2.0, 2))
	w, err := paraverser.SPECWorkload("leela", 40_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := paraverser.Run(cfg, []paraverser.Workload{w})
	if err != nil {
		t.Fatal(err)
	}
	lane := res.Lanes[0]
	if lane.Insts != 40_000 {
		t.Errorf("insts = %d, want 40000", lane.Insts)
	}
	if lane.Detections != 0 {
		t.Errorf("fault-free run detected %d errors", lane.Detections)
	}
	if lane.Coverage() != 1.0 {
		t.Errorf("full-coverage mode covered %.3f", lane.Coverage())
	}
	rep, err := paraverser.Energy(cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overhead <= 0 || rep.Overhead > 1.5 {
		t.Errorf("energy overhead %.2f implausible", rep.Overhead)
	}
	if got := paraverser.StorageOverheadBytes(cfg); got < 1000 || got > 1100 {
		t.Errorf("storage overhead %dB", got)
	}
}

func TestPublicAPIWorkloadCatalogues(t *testing.T) {
	if got := len(paraverser.SPECBenchmarks()); got != 20 {
		t.Errorf("%d SPEC benchmarks, want 20", got)
	}
	if got := len(paraverser.GAPKernels()); got != 6 {
		t.Errorf("%d GAP kernels, want 6", got)
	}
	if got := len(paraverser.ParsecKernels()); got != 6 {
		t.Errorf("%d PARSEC kernels, want 6", got)
	}
	for _, k := range paraverser.GAPKernels() {
		if _, err := paraverser.GAPWorkload(k, 7, 4, 10_000); err != nil {
			t.Errorf("GAP %s: %v", k, err)
		}
	}
	for _, k := range paraverser.ParsecKernels() {
		if _, err := paraverser.ParsecWorkload(k, 64, 10_000); err != nil {
			t.Errorf("PARSEC %s: %v", k, err)
		}
	}
	if _, err := paraverser.SPECWorkload("doom", 0); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := paraverser.GAPWorkload("dijkstra", 7, 4, 0); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := paraverser.ParsecWorkload("vips", 64, 0); err == nil {
		t.Error("unknown parallel kernel accepted")
	}
}

func TestPublicAPIFaultInjection(t *testing.T) {
	faults := paraverser.FaultCampaign(7, 30, paraverser.X2())
	if len(faults) != 30 {
		t.Fatalf("campaign size %d", len(faults))
	}
	cfg := paraverser.DefaultConfig(paraverser.Checkers(paraverser.A510(), 2.0, 2))
	if err := paraverser.InjectOnChecker(&cfg, faults[0], 0); err != nil {
		t.Fatal(err)
	}
	if cfg.CheckerInterceptor == nil {
		t.Fatal("interceptor not wired")
	}
	if cfg.CheckerInterceptor(0, 0) == nil {
		t.Error("checker 0 has no injector")
	}
	if cfg.CheckerInterceptor(0, 1) != nil {
		t.Error("checker 1 unexpectedly has an injector")
	}
	bad := paraverser.Fault{}
	if err := paraverser.InjectOnChecker(&cfg, bad, 0); err == nil {
		t.Error("invalid fault accepted")
	}
}

func TestPriorWorkConfigs(t *testing.T) {
	for _, cfg := range []paraverser.Config{
		paraverser.DSN18Config(), paraverser.ParaDoxConfig(), paraverser.DCLSConfig(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Error(err)
		}
	}
	if len(paraverser.DSN18Config().Checkers) == 0 {
		t.Error("DSN18 config has no checkers")
	}
	if n := paraverser.ParaDoxConfig().Checkers[0].Count; n != 16 {
		t.Errorf("ParaDox checker count %d, want 16", n)
	}
	if paraverser.DSN18Config().Checkers[0].Count != 12 {
		t.Error("DSN18 checker count != 12")
	}
}

func TestPublicAPIRecoveryAndQuarantine(t *testing.T) {
	cfg := paraverser.DefaultConfig(paraverser.Checkers(paraverser.A510(), 2.0, 4))
	cfg.Recovery = paraverser.DefaultRecovery()
	if err := paraverser.InjectOnChecker(&cfg, paraverser.StuckAtALUFault(2), 1); err != nil {
		t.Fatal(err)
	}
	w, err := paraverser.SPECWorkload("leela", 120_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := paraverser.Run(cfg, []paraverser.Workload{w})
	if err != nil {
		t.Fatal(err)
	}
	lane := res.Lanes[0]
	if lane.Detections == 0 {
		t.Fatal("stuck-at ALU fault never detected")
	}
	st := lane.Recovery
	if st.Events == 0 || st.ReplayedClean == 0 {
		t.Errorf("recovery events=%d replayedClean=%d, want both > 0", st.Events, st.ReplayedClean)
	}
	if st.MainSuspected != 0 {
		t.Errorf("%d main-suspected verdicts on a checker-side fault", st.MainSuspected)
	}
	if st.Quarantines == 0 {
		t.Error("faulty checker never quarantined")
	}
	faulty := res.CheckersByLane[0][1]
	if faulty.State == paraverser.CheckerActive && faulty.Offenses == 0 {
		t.Errorf("faulty checker still pristine: state=%v offenses=%d", faulty.State, faulty.Offenses)
	}
	for _, id := range []int{0, 2, 3} {
		if ck := res.CheckersByLane[0][id]; ck.Offenses != 0 {
			t.Errorf("healthy checker %d has %d offenses", id, ck.Offenses)
		}
	}
	if res.Maintenance == nil {
		t.Fatal("recovery run has no maintenance tracker")
	}
	if len(res.Maintenance.Fleet(paraverser.MaintenancePolicy{})) == 0 {
		t.Error("maintenance tracker saw no cores")
	}
}

func TestPublicAPICampaignReproducible(t *testing.T) {
	w, err := paraverser.SPECWorkload("exchange2", 60_000)
	if err != nil {
		t.Fatal(err)
	}
	full := paraverser.DefaultConfig(paraverser.Checkers(paraverser.A510(), 2.0, 3))
	full.Recovery = paraverser.DefaultRecovery()
	cc := paraverser.CampaignConfig{
		Seed:      11,
		Trials:    4,
		Workloads: []paraverser.Workload{w},
		Configs:   []paraverser.Config{full},
	}
	a, err := paraverser.RunCampaign(cc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := paraverser.RunCampaign(cc)
	if err != nil {
		t.Fatal(err)
	}
	if a.TrialTable() != b.TrialTable() {
		t.Error("same seed produced different trial tables")
	}
	if len(a.Trials) != 4 {
		t.Fatalf("%d trials, want 4", len(a.Trials))
	}
	total := 0
	for _, c := range a.Outcomes() {
		total += c
	}
	if total != 4 {
		t.Errorf("outcome tally %d, want 4", total)
	}
}
