// Benchmarks regenerating every table and figure of the paper's
// evaluation at the reduced Quick scale. Each benchmark reports, via
// custom metrics, the headline numbers the corresponding figure carries
// (geomean slowdown percentages, coverage, energy overheads), so
// `go test -bench=. -benchmem` both exercises the full pipeline and
// prints the reproduction's results. Run the `paraverser` CLI for the
// larger default scale.
package paraverser_test

import (
	"testing"

	"paraverser/internal/experiments"
)

func benchScale() experiments.Scale {
	sc := experiments.Quick()
	sc.Benchmarks = []string{"perlbench", "gcc", "mcf", "exchange2", "bwaves", "imagick"}
	return sc
}

func BenchmarkTable1Setup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig6FullCoverage(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Geomean("1xX2@3.0"), "homog-slowdown-%")
		b.ReportMetric(r.Geomean("4xA510@2.0"), "4xA510-slowdown-%")
		b.ReportMetric(r.Geomean("DSN18-12"), "DSN18-slowdown-%")
		b.ReportMetric(r.Geomean("ParaDox-16"), "ParaDox-slowdown-%")
	}
}

func BenchmarkFig7Opportunistic(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		slow, cov, err := experiments.Fig7(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(slow.Geomean("1xX2@3.0"), "homog-slowdown-%")
		b.ReportMetric(cov.Geomean("1xX2@3.0"), "homog-coverage-%")
		b.ReportMetric(cov.Geomean("4xA510@2.0"), "4xA510-coverage-%")
	}
}

func BenchmarkFig8FaultCoverage(b *testing.B) {
	sc := benchScale()
	sc.FaultTrials = 6
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FullDetectedPct, "full-coverage-detected-%")
		b.ReportMetric(r.Coverage.Geomean("2xA510@2.0"), "opportunistic-coverage-%")
	}
}

func BenchmarkFig9GAPParsec(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Values["2xA510"]["gap.bfs"], "bfs-2ck-slowdown-%")
		b.ReportMetric(r.Values["2xA510"]["gap.pr"], "pr-2ck-slowdown-%")
		b.ReportMetric(r.Values["3xA510"]["parsec.blackscholes"], "blackscholes-3ck-slowdown-%")
	}
}

func BenchmarkFig10Multiprocess(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Geomean("4xA510@2.0"), "4xA510-slowdown-%")
		b.ReportMetric(r.Geomean("4xA510@2.0-noLSLnoc"), "4xA510-noLSL-slowdown-%")
	}
}

func BenchmarkFig11NoCSensitivity(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Geomean("fastNoC"), "fast-slowdown-%")
		b.ReportMetric(r.Geomean("slowNoC"), "slow-slowdown-%")
		b.ReportMetric(r.Geomean("slowNoC+hash"), "slow-hash-slowdown-%")
	}
}

func BenchmarkPowerStudy(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Power(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			switch row.Label {
			case "1xX2@3.0 (DCLS-comparable)":
				b.ReportMetric(row.EnergyOverhead*100, "homog-energy-%")
			case "4xA510@2.0":
				b.ReportMetric(row.EnergyOverhead*100, "4xA510-energy-%")
			case "4xA510 ED2P-minimal DVFS":
				b.ReportMetric(row.EnergyOverhead*100, "ed2p-energy-%")
			}
		}
	}
}

func BenchmarkAreaAccounting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := experiments.Area()
		b.ReportMetric(float64(a.StorageBytes), "storage-bytes")
		b.ReportMetric(a.DedicatedPct, "dedicated-area-%")
	}
}

func BenchmarkOpportunityCost(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Opportunity(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Label == "GAP-like: speedup, 1 X2 + little cores as compute" {
				b.ReportMetric(row.Value, "gap-het-speedup-x")
			}
			if row.Label == "GAP-like: overhead, little cores as checkers" {
				b.ReportMetric(row.Value, "gap-check-overhead-%")
			}
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablation(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			switch row.Label {
			case "ParaVerser (all mechanisms)":
				b.ReportMetric(row.SlowdownPct, "base-slowdown-%")
			case "Hash Mode (IV-I)":
				b.ReportMetric(row.LogBPI, "hash-log-B/inst")
			case "opportunistic + 1-in-4 sampling (fn.18)":
				b.ReportMetric(row.CoveragePct, "sampled-coverage-%")
			}
		}
	}
}
