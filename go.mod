module paraverser

go 1.22
