#!/usr/bin/env bash
# lint.sh — the repo's static-analysis gate, runnable locally exactly as
# CI runs it: gofmt (formatting), go vet (stdlib checks), and paralint
# (the project's own invariant analyzers: determinism, hotpathalloc,
# fingerprint, shardsafety).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

unformatted=$(gofmt -l . | grep -v '^testdata/' || true)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    fail=1
fi

if ! go vet ./...; then
    fail=1
fi

if ! go run ./cmd/paralint ./...; then
    fail=1
fi

if [[ "$fail" -ne 0 ]]; then
    echo "lint: FAIL" >&2
    exit 1
fi
echo "lint: OK"
