#!/bin/sh
# bench_pr7.sh — record the PR 7 (parallel-in-time speculation) numbers.
#
# Runs the hot-path micro-benchmarks (-benchmem), times the quick-scale
# fig6 and all suites end to end at the default shard count, and times
# quick all across the -time-shards sweep to show shard-count scaling.
# Results go to BENCH_pr7.json in the repo root. The "baseline" block is
# the PR 3 recording (BENCH_pr3.json, commit 0394a20 re-measure); pass
# BASELINE_BIN=<path to a pre-PR paraverser binary> to re-measure the
# wall-clock rows on this machine, otherwise the recorded numbers are
# kept. Wall clock is machine- and core-count-dependent: the speculative
# producer runs on a second core, so single-CPU boxes see only the
# stream-replay and stitch-path savings.
set -eu
cd "$(dirname "$0")/.."

bench() { # bench <pkg> <name> -> "ns_op allocs_op extra"
	go test "$1" -run '^$' -bench "^$2\$" -benchmem -benchtime=2s 2>/dev/null |
		awk -v name="$2" '$1 ~ "^"name {
			extra = ""
			for (i = 4; i <= NF; i++) if ($(i+1) == "Minst/s") extra = $i
			for (i = 4; i <= NF; i++) if ($(i+1) == "allocs/op") allocs = $i
			print $3, allocs, (extra == "" ? "null" : extra)
		}'
}

wallclock() { # wallclock <binary> <args...> -> seconds
	start=$(date +%s.%N)
	"$@" >/dev/null 2>&1
	end=$(date +%s.%N)
	echo "$start $end" | awk '{printf "%.2f", $2 - $1}'
}

echo "building..." >&2
go build -o /tmp/paraverser_bench ./cmd/paraverser

echo "micro-benchmarks..." >&2
set -- $(bench ./internal/emu BenchmarkHartStep)
step_ns=$1 step_allocs=$2
set -- $(bench ./internal/cpu BenchmarkCoreConsume)
consume_ns=$1 consume_allocs=$2
set -- $(bench ./internal/core BenchmarkCheckSegment)
check_ns=$1 check_allocs=$2 check_minst=$3

echo "quick fig6..." >&2
fig6_s=$(wallclock /tmp/paraverser_bench -quick fig6)
echo "quick all (default shards)..." >&2
all_s=$(wallclock /tmp/paraverser_bench -quick all)
echo "quick all -time-shards 1..." >&2
all_s1=$(wallclock /tmp/paraverser_bench -quick -time-shards 1 all)
echo "quick all -time-shards 8..." >&2
all_s8=$(wallclock /tmp/paraverser_bench -quick -time-shards 8 -j 8 all)

base_fig6=4.15
base_all=22.89
if [ -n "${BASELINE_BIN:-}" ]; then
	echo "baseline quick fig6..." >&2
	base_fig6=$(wallclock "$BASELINE_BIN" -quick fig6)
	echo "baseline quick all..." >&2
	base_all=$(wallclock "$BASELINE_BIN" -quick all)
fi

speedup=$(echo "$base_all $all_s" | awk '{printf "%.2f", $1 / $2}')

cat > BENCH_pr7.json <<EOF
{
  "benchmarks": {
    "BenchmarkHartStep":     {"ns_op": $step_ns, "allocs_op": $step_allocs},
    "BenchmarkCoreConsume":  {"ns_op": $consume_ns, "allocs_op": $consume_allocs},
    "BenchmarkCheckSegment": {"ns_op": $check_ns, "allocs_op": $check_allocs, "minst_per_s": $check_minst}
  },
  "wallclock_s": {
    "quick_fig6": $fig6_s,
    "quick_all": $all_s,
    "quick_all_time_shards_1": $all_s1,
    "quick_all_time_shards_8_j8": $all_s8
  },
  "baseline": {
    "commit": "0394a20",
    "quick_fig6": $base_fig6,
    "quick_all": $base_all
  },
  "speedup_quick_all": $speedup
}
EOF
echo "wrote BENCH_pr7.json:" >&2
cat BENCH_pr7.json
