#!/bin/sh
# bench_pr8.sh — record the PR 8 (block-compiled emulation) numbers.
#
# Runs the hot-path micro-benchmarks (-benchmem) — the block-compiled
# emulate path (BenchmarkRunBlock) against the per-instruction stepper
# (BenchmarkHartStep), batched timing delivery (BenchmarkConsumeBatch)
# against per-effect consume (BenchmarkCoreConsume), and block-compiled
# checker replay (BenchmarkCheckSegment) against the per-instruction
# baseline (BenchmarkCheckSegmentStep) — then times quick fig6 and quick
# all with the block engine on (default) and off. Results go to
# BENCH_pr8.json in the repo root. The "baseline" block is the PR 7
# recording (BENCH_pr7.json); pass BASELINE_BIN=<path to a pre-PR
# paraverser binary> to re-measure the wall-clock rows on this machine,
# otherwise the recorded numbers are kept.
set -eu
cd "$(dirname "$0")/.."

bench() { # bench <pkg> <name> -> "ns_op allocs_op extra"
	go test "$1" -run '^$' -bench "^$2\$" -benchmem -benchtime=2s 2>/dev/null |
		awk -v name="$2" '$1 ~ "^"name {
			extra = ""
			for (i = 4; i <= NF; i++) if ($(i+1) == "Minst/s") extra = $i
			for (i = 4; i <= NF; i++) if ($(i+1) == "allocs/op") allocs = $i
			print $3, allocs, (extra == "" ? "null" : extra)
		}'
}

wallclock() { # wallclock <binary> <args...> -> median-of-3 seconds
	# Shared CI containers jitter by up to a second run to run; the
	# median of three is what the acceptance numbers are judged on.
	for _ in 1 2 3; do
		start=$(date +%s.%N)
		"$@" >/dev/null 2>&1
		end=$(date +%s.%N)
		echo "$start $end" | awk '{printf "%.2f\n", $2 - $1}'
	done | sort -n | sed -n 2p
}

echo "building..." >&2
go build -o /tmp/paraverser_bench ./cmd/paraverser

echo "micro-benchmarks..." >&2
set -- $(bench ./internal/emu BenchmarkHartStep)
step_ns=$1 step_allocs=$2
set -- $(bench ./internal/emu BenchmarkRunBlock)
block_ns=$1 block_allocs=$2
set -- $(bench ./internal/cpu BenchmarkCoreConsume)
consume_ns=$1 consume_allocs=$2
set -- $(bench ./internal/cpu BenchmarkConsumeBatch)
cbatch_ns=$1 cbatch_allocs=$2
set -- $(bench ./internal/core BenchmarkCheckSegment)
check_ns=$1 check_allocs=$2 check_minst=$3
set -- $(bench ./internal/core BenchmarkCheckSegmentStep)
checkstep_ns=$1 checkstep_allocs=$2 checkstep_minst=$3

echo "quick fig6..." >&2
fig6_s=$(wallclock /tmp/paraverser_bench -quick fig6)
echo "quick all (block engine on, default)..." >&2
all_s=$(wallclock /tmp/paraverser_bench -quick all)
echo "quick all -block-exec=false..." >&2
all_off=$(wallclock /tmp/paraverser_bench -quick -block-exec=false all)

base_fig6=3.03
base_all=21.30
if [ -n "${BASELINE_BIN:-}" ]; then
	echo "baseline quick fig6..." >&2
	base_fig6=$(wallclock "$BASELINE_BIN" -quick fig6)
	echo "baseline quick all..." >&2
	base_all=$(wallclock "$BASELINE_BIN" -quick all)
fi

speedup=$(echo "$base_all $all_s" | awk '{printf "%.2f", $1 / $2}')

cat > BENCH_pr8.json <<EOF
{
  "benchmarks": {
    "BenchmarkHartStep":         {"ns_op": $step_ns, "allocs_op": $step_allocs},
    "BenchmarkRunBlock":         {"ns_op": $block_ns, "allocs_op": $block_allocs},
    "BenchmarkCoreConsume":      {"ns_op": $consume_ns, "allocs_op": $consume_allocs},
    "BenchmarkConsumeBatch":     {"ns_op": $cbatch_ns, "allocs_op": $cbatch_allocs},
    "BenchmarkCheckSegment":     {"ns_op": $check_ns, "allocs_op": $check_allocs, "minst_per_s": $check_minst},
    "BenchmarkCheckSegmentStep": {"ns_op": $checkstep_ns, "allocs_op": $checkstep_allocs, "minst_per_s": $checkstep_minst}
  },
  "wallclock_s": {
    "quick_fig6": $fig6_s,
    "quick_all": $all_s,
    "quick_all_block_exec_off": $all_off
  },
  "baseline": {
    "commit": "89d32d0",
    "quick_fig6": $base_fig6,
    "quick_all": $base_all
  },
  "speedup_quick_all": $speedup
}
EOF
echo "wrote BENCH_pr8.json:" >&2
cat BENCH_pr8.json
