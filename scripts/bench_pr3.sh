#!/bin/sh
# bench_pr3.sh — record the PR 3 headline performance numbers.
#
# Runs the three hot-path micro-benchmarks (-benchmem) and times the
# quick-scale fig6 and all experiment suites end to end, then writes the
# results to BENCH_pr3.json in the repo root. The "baseline" block holds
# the same measurements taken at the pre-PR commit for comparison; pass
# BASELINE_BIN=<path to a paraverser binary built from that commit> to
# re-measure the wall-clock rows, otherwise the recorded numbers are kept.
set -eu
cd "$(dirname "$0")/.."

bench() { # bench <pkg> <name> -> "ns_op allocs_op extra"
	go test "$1" -run '^$' -bench "^$2\$" -benchmem -benchtime=2s 2>/dev/null |
		awk -v name="$2" '$1 ~ "^"name {
			extra = ""
			for (i = 4; i <= NF; i++) if ($(i+1) == "Minst/s") extra = $i
			for (i = 4; i <= NF; i++) if ($(i+1) == "allocs/op") allocs = $i
			print $3, allocs, (extra == "" ? "null" : extra)
		}'
}

wallclock() { # wallclock <binary> <experiment...> -> seconds
	start=$(date +%s.%N)
	"$@" >/dev/null 2>&1
	end=$(date +%s.%N)
	echo "$start $end" | awk '{printf "%.2f", $2 - $1}'
}

echo "building..." >&2
go build -o /tmp/paraverser_bench ./cmd/paraverser

echo "micro-benchmarks..." >&2
set -- $(bench ./internal/emu BenchmarkHartStep)
step_ns=$1 step_allocs=$2
set -- $(bench ./internal/cpu BenchmarkCoreConsume)
consume_ns=$1 consume_allocs=$2
set -- $(bench ./internal/core BenchmarkCheckSegment)
check_ns=$1 check_allocs=$2 check_minst=$3

echo "quick fig6..." >&2
fig6_s=$(wallclock /tmp/paraverser_bench -quick fig6)
echo "quick all..." >&2
all_s=$(wallclock /tmp/paraverser_bench -quick all)

base_fig6=17.99
base_all=92.63
if [ -n "${BASELINE_BIN:-}" ]; then
	echo "baseline quick fig6..." >&2
	base_fig6=$(wallclock "$BASELINE_BIN" -quick fig6)
	echo "baseline quick all..." >&2
	base_all=$(wallclock "$BASELINE_BIN" -quick all)
fi

cat > BENCH_pr3.json <<EOF
{
  "benchmarks": {
    "BenchmarkHartStep":     {"ns_op": $step_ns, "allocs_op": $step_allocs},
    "BenchmarkCoreConsume":  {"ns_op": $consume_ns, "allocs_op": $consume_allocs},
    "BenchmarkCheckSegment": {"ns_op": $check_ns, "allocs_op": $check_allocs, "minst_per_s": $check_minst}
  },
  "wallclock_s": {
    "quick_fig6": $fig6_s,
    "quick_all": $all_s
  },
  "baseline": {
    "commit": "8e165a1",
    "quick_fig6": $base_fig6,
    "quick_all": $base_all
  }
}
EOF
echo "wrote BENCH_pr3.json:" >&2
cat BENCH_pr3.json
