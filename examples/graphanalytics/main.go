// Graph analytics under checking: run the GAP kernels (real BFS,
// PageRank, SSSP, CC, TC and BC implementations over a Kronecker graph in
// simulated memory) with a varying number of little checker cores. The
// suite is memory-bound, so checkers fed from the load-store log keep up
// easily — the fig. 9 effect.
package main

import (
	"fmt"
	"log"

	"paraverser"
)

func main() {
	const scale, edgeFactor = 10, 8
	const insts = 250_000

	fmt.Printf("GAP kernels on a 2^%d-vertex Kronecker graph, full-coverage mode\n\n", scale)
	fmt.Printf("%-10s %12s %14s %14s %14s\n", "kernel", "baseline us", "1 checker", "2 checkers", "4 checkers")

	for _, kernel := range paraverser.GAPKernels() {
		w, err := paraverser.GAPWorkload(kernel, scale, edgeFactor, insts)
		if err != nil {
			log.Fatal(err)
		}
		base, err := paraverser.Run(paraverser.BaselineConfig(), []paraverser.Workload{w})
		if err != nil {
			log.Fatal(err)
		}
		baseNS := base.TimeNS()

		row := fmt.Sprintf("%-10s %12.1f", kernel, baseNS/1e3)
		for _, n := range []int{1, 2, 4} {
			cfg := paraverser.DefaultConfig(paraverser.Checkers(paraverser.A510(), 2.0, n))
			res, err := paraverser.Run(cfg, []paraverser.Workload{w})
			if err != nil {
				log.Fatal(err)
			}
			if res.Detections() != 0 {
				log.Fatalf("%s: unexpected detections on fault-free run", kernel)
			}
			row += fmt.Sprintf(" %+13.2f%%", (res.TimeNS()/baseNS-1)*100)
		}
		fmt.Println(row)
	}
	fmt.Println("\npaper: GAP is so memory-bound that 2 A510s suffice for all kernels except PageRank")
}
