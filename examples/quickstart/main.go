// Quickstart: run one benchmark on a big main core with four little
// checker cores in full-coverage mode, and compare against the
// no-checking baseline — the minimal ParaVerser session.
package main

import (
	"fmt"
	"log"

	"paraverser"
)

func main() {
	const bench = "imagick"
	const insts = 150_000

	// A no-checking baseline first.
	baseline := paraverser.BaselineConfig()
	w, err := paraverser.SPECWorkload(bench, insts)
	if err != nil {
		log.Fatal(err)
	}
	base, err := paraverser.Run(baseline, []paraverser.Workload{w})
	if err != nil {
		log.Fatal(err)
	}

	// Now with four A510-class checker cores at 2GHz per main core.
	cfg := paraverser.DefaultConfig(paraverser.Checkers(paraverser.A510(), 2.0, 4))
	res, err := paraverser.Run(cfg, []paraverser.Workload{w})
	if err != nil {
		log.Fatal(err)
	}

	lane := res.Lanes[0]
	fmt.Printf("benchmark:        %s (%d instructions)\n", bench, lane.Insts)
	fmt.Printf("baseline time:    %.1f us\n", base.Lanes[0].TimeNS/1e3)
	fmt.Printf("checked time:     %.1f us\n", lane.TimeNS/1e3)
	fmt.Printf("slowdown:         %.2f%%\n", (lane.TimeNS/base.Lanes[0].TimeNS-1)*100)
	fmt.Printf("coverage:         %.1f%% of instructions verified\n", lane.Coverage()*100)
	fmt.Printf("segments checked: %d (boundaries: LSL$ full / 5000-inst timeout)\n", lane.Segments)
	fmt.Printf("log traffic:      %.2f B/inst over the NoC\n", float64(lane.LogBytes)/float64(lane.Insts))
	fmt.Printf("detections:       %d (expected 0 on fault-free hardware)\n", lane.Detections)

	energy, err := paraverser.Energy(cfg, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("energy overhead:  %.1f%% vs power-gated checkers (paper: ~49%% for this config)\n",
		energy.Overhead*100)
	fmt.Printf("storage overhead: %dB per core (paper: 1064B)\n", paraverser.StorageOverheadBytes(cfg))
}
