// Fleet maintenance: the predictive-maintenance use case from the paper's
// introduction. A small fleet runs checked workloads; one core has a
// developing hard fault. Because a detection implicates both cores of a
// (main, checker) pair, the tracker rotates pairings and retires the core
// implicated across many partners — before it silently corrupts more
// results.
package main

import (
	"fmt"
	"log"

	"paraverser"
)

func main() {
	const bench = "leela"
	const window = 60_000
	faults := paraverser.FaultCampaign(7, 40, paraverser.X2())

	tracker := paraverser.NewMaintenanceTracker()
	badCore := paraverser.CoreID{Socket: 0, Core: 5}

	// Simulate a maintenance epoch: the bad core serves as checker 0 for
	// rotating main cores; healthy sockets run alongside.
	w, err := paraverser.SPECWorkload(bench, window)
	if err != nil {
		log.Fatal(err)
	}
	for round := 0; round < 16; round++ {
		main := paraverser.CoreID{Socket: 0, Core: round % 4}

		cfg := paraverser.DefaultConfig(paraverser.Checkers(paraverser.A510(), 2.0, 2))
		// The developing hard fault lives in the bad core's FP unit and
		// only fires on some rounds (intermittent, temperature-dependent).
		if round%2 == 0 {
			if err := paraverser.InjectOnChecker(&cfg, faults[round%len(faults)], 0); err != nil {
				log.Fatal(err)
			}
		}
		res, err := paraverser.Run(cfg, []paraverser.Workload{w})
		if err != nil {
			log.Fatal(err)
		}
		tracker.Record(paraverser.MaintenanceObservation{
			Main:     main,
			Checker:  badCore,
			Insts:    res.Lanes[0].CheckedInsts,
			Detected: res.Lanes[0].Detections > 0,
		})
		// A healthy pair on socket 1 for contrast.
		tracker.Record(paraverser.MaintenanceObservation{
			Main:    paraverser.CoreID{Socket: 1, Core: round % 4},
			Checker: paraverser.CoreID{Socket: 1, Core: 4 + round%4},
			Insts:   uint64(window),
		})
	}

	policy := paraverser.DefaultMaintenancePolicy()
	policy.MinInsts = 100_000 // small demo fleet
	policy.RateThreshold = 5

	fmt.Printf("fleet report after 16 maintenance rounds on %s:\n\n", bench)
	fmt.Printf("%-8s %14s %10s %s\n", "core", "errors/1e9", "partners", "verdict")
	for _, r := range tracker.Fleet(policy) {
		fmt.Printf("%-8s %14.1f %10d %s\n", r.Core, r.RatePPB, r.Partners, r.Verdict)
	}
	fmt.Println("\nthe faulty checker is implicated across every partner it served;")
	fmt.Println("its healthy partners are each implicated by one core only and stay in service")
}
