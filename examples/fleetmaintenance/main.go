// Fleet maintenance: the predictive-maintenance use case from the
// paper's introduction, now closed-loop. One checker in a pool of four
// develops a hard fault. The recovery pipeline re-replays each flagged
// segment on rotating healthy partners, classifies the event by repeat
// replays (section V), feeds every (main, checker) observation into the
// live maintenance tracker, and quarantines the offender — which then
// fails its probation shadow checks on the exponential-backoff re-test
// schedule until it is retired for good, all within a single run.
package main

import (
	"fmt"
	"log"

	"paraverser"
)

func main() {
	const bench = "leela"
	const window = 400_000

	// The developing hard fault: a stuck-at-1 on an integer-ALU output
	// bit of checker 2. Rotating partner selection means its detections
	// re-verify clean on checkers 0, 1 and 3.
	cfg := paraverser.DefaultConfig(paraverser.Checkers(paraverser.A510(), 2.0, 4))
	cfg.Recovery = paraverser.DefaultRecovery()
	cfg.Recovery.Quarantine.CooldownNS = 20_000 // fast re-tests for the demo
	cfg.Recovery.Quarantine.MaxOffenses = 2
	if err := paraverser.InjectOnChecker(&cfg, paraverser.StuckAtALUFault(3), 2); err != nil {
		log.Fatal(err)
	}

	w, err := paraverser.SPECWorkload(bench, window)
	if err != nil {
		log.Fatal(err)
	}
	res, err := paraverser.Run(cfg, []paraverser.Workload{w})
	if err != nil {
		log.Fatal(err)
	}

	lane := res.Lanes[0]
	st := lane.Recovery
	fmt.Printf("one maintenance window of %s (%d checked segments):\n\n", bench, lane.Segments)
	fmt.Printf("detections                  %d\n", lane.Detections)
	fmt.Printf("re-verified clean elsewhere %d/%d\n", st.ReplayedClean, st.Events)
	fmt.Printf("checker-persistent verdicts %d\n", st.CheckerPersistent)
	fmt.Printf("main-suspected verdicts     %d (the main core is exonerated)\n", st.MainSuspected)
	fmt.Printf("quarantines / probation     %d / %d shadow checks\n", st.Quarantines, st.ProbationChecks)
	fmt.Printf("retirements                 %d\n", st.Retirements)
	fmt.Printf("degraded-coverage window    %.1f µs (%d segments)\n\n", lane.DegradedNS/1e3, lane.DegradedSegments)

	fmt.Println("checker pool at window end:")
	fmt.Printf("%-4s %-10s %10s %9s\n", "ck", "state", "offenses", "segments")
	for _, ck := range res.CheckersByLane[0] {
		fmt.Printf("%-4d %-10s %10d %9d\n", ck.ID, ck.State, ck.Offenses, ck.Segments)
	}

	policy := paraverser.DefaultMaintenancePolicy()
	policy.MinInsts = 10_000
	policy.RateThreshold = 5
	fmt.Println("\nlive fleet tracker (fed by the recovery pipeline during the run):")
	fmt.Printf("%-8s %14s %10s %s\n", "core", "errors/1e9", "partners", "verdict")
	for _, r := range res.Maintenance.Fleet(policy) {
		fmt.Printf("%-8s %14.1f %10d %s\n", r.Core, r.RatePPB, r.Partners, r.Verdict)
	}
	fmt.Println("\nraw pair-counting implicates both sides of the faulty pair, but the")
	fmt.Println("repeat-replay forensics exonerated the main core (zero main-suspected")
	fmt.Println("verdicts) and the quarantine loop retired the offender mid-run, while")
	fmt.Println("the three healthy checkers kept coverage at 100%")
}
