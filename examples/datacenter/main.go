// Datacenter scenario: four server processes on four big cores with
// opportunistic checking. When checker resources are plentiful coverage
// approaches 100% at negligible slowdown; when the operator reclaims
// checker cores for a load spike, coverage degrades gracefully and the
// main cores never stall — the fig. 1 "adjustable error detecting and
// computing capabilities" trade-off.
package main

import (
	"fmt"
	"log"

	"paraverser"
)

func main() {
	mix := []string{"bwaves", "gcc", "mcf", "deepsjeng"} // the paper's mix1
	const insts = 120_000

	var workloads []paraverser.Workload
	for _, b := range mix {
		w, err := paraverser.SPECWorkload(b, insts)
		if err != nil {
			log.Fatal(err)
		}
		workloads = append(workloads, w)
	}

	base, err := paraverser.Run(paraverser.BaselineConfig(), workloads)
	if err != nil {
		log.Fatal(err)
	}
	baseCPI := base.TotalCPI(3.0)
	fmt.Printf("4-process mix %v, opportunistic mode\n\n", mix)
	fmt.Printf("%-26s %12s %12s %10s\n", "checker pool per core", "CPI slowdown", "coverage", "stalls")

	for _, pool := range []struct {
		label string
		n     int
		freq  float64
	}{
		{"4x A510 @ 2.0GHz", 4, 2.0},
		{"2x A510 @ 2.0GHz", 2, 2.0},
		{"1x A510 @ 1.4GHz (spike)", 1, 1.4},
	} {
		cfg := paraverser.DefaultConfig(paraverser.Checkers(paraverser.A510(), pool.freq, pool.n))
		cfg.Mode = paraverser.ModeOpportunistic
		res, err := paraverser.Run(cfg, workloads)
		if err != nil {
			log.Fatal(err)
		}
		var stalls float64
		for _, lane := range res.Lanes {
			stalls += lane.StallNS
		}
		fmt.Printf("%-26s %11.2f%% %11.1f%% %10.0f\n",
			pool.label,
			(res.TotalCPI(3.0)/baseCPI-1)*100,
			res.Coverage()*100,
			stalls)
	}
	fmt.Println("\nopportunistic mode drops coverage instead of stalling: stalls are always 0")
	fmt.Println("paper: ~1% slowdown with 94-99% coverage given sufficient checker resources")
}
