// Fault injection: inject single-bit stuck-at hard faults (the
// section VII-B methodology) into a checker core's functional units and
// watch ParaVerser's induction check catch them — or correctly stay
// silent when the fault never changes an architectural value.
package main

import (
	"fmt"
	"log"

	"paraverser"
)

func main() {
	const bench = "deepsjeng"
	const horizon = 300_000
	const trials = 12

	faults := paraverser.FaultCampaign(2025, trials, paraverser.X2())

	fmt.Printf("injecting %d random hard faults into checker 0 while running %s\n", trials, bench)
	fmt.Printf("%-36s %-10s %s\n", "fault", "outcome", "detection latency (insts)")

	detected, silent := 0, 0
	for _, f := range faults {
		cfg := paraverser.DefaultConfig(paraverser.Checkers(paraverser.A510(), 2.0, 2))
		if err := paraverser.InjectOnChecker(&cfg, f, 0); err != nil {
			log.Fatal(err)
		}
		w, err := paraverser.SPECWorkload(bench, horizon)
		if err != nil {
			log.Fatal(err)
		}
		res, err := paraverser.Run(cfg, []paraverser.Workload{w})
		if err != nil {
			log.Fatal(err)
		}
		lane := res.Lanes[0]
		if lane.Detections > 0 {
			detected++
			fmt.Printf("%-36s %-10s %d\n", f, "DETECTED", lane.FirstDetectionInst)
		} else {
			silent++
			fmt.Printf("%-36s %-10s -\n", f, "silent")
		}
	}
	fmt.Printf("\n%d/%d detected; silent faults were masked (never changed execution)\n",
		detected, trials)
	fmt.Println("paper: 76% of injections detected under full coverage; the rest correctly masked")
	if detected == 0 {
		fmt.Println("warning: no fault detected — rerun with a larger horizon")
	}
	_ = silent
}
