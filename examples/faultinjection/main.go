// Fault injection: drive the concurrent campaign engine over randomized
// stuck-at / LSQ-address / transient faults (the section VII-B fault
// model at fleet scale) with the closed-loop recovery pipeline live.
// Every detection is re-replayed on a healthy partner, classified by
// repeat-replay forensics, and — when the checker itself is implicated —
// answered with quarantine. The campaign aggregates the
// detected/masked/undetected-SDC split and the detection-latency
// distribution, reproducibly for a given seed.
package main

import (
	"fmt"
	"log"

	"paraverser"
)

func main() {
	const seed = 2025
	const trials = 16
	const horizon = 150_000

	var workloads []paraverser.Workload
	for _, bench := range []string{"deepsjeng", "imagick"} {
		w, err := paraverser.SPECWorkload(bench, horizon)
		if err != nil {
			log.Fatal(err)
		}
		workloads = append(workloads, w)
	}

	// Trials sample two system shapes: a full-coverage pool of four
	// checkers and a leaner opportunistic pool.
	full := paraverser.DefaultConfig(paraverser.Checkers(paraverser.A510(), 2.0, 4))
	full.Recovery = paraverser.DefaultRecovery()
	opp := paraverser.DefaultConfig(paraverser.Checkers(paraverser.A510(), 2.0, 2))
	opp.Mode = paraverser.ModeOpportunistic
	opp.Recovery = paraverser.DefaultRecovery()

	fmt.Printf("campaign: %d randomized fault trials, seed %d (re-run for the identical table)\n\n", trials, seed)
	res, err := paraverser.RunCampaign(paraverser.CampaignConfig{
		Seed:      seed,
		Trials:    trials,
		Workloads: workloads,
		Configs:   []paraverser.Config{full, opp},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.TrialTable())
	fmt.Println(res.Table())

	st := res.Recovery()
	fmt.Printf("every flagged segment was re-replayed on a rotating partner: %d/%d re-verified clean,\n",
		st.ReplayedClean, st.Events)
	fmt.Printf("so detections became verdicts (not just counters), and %d quarantine events removed\n", st.Quarantines)
	fmt.Println("implicated checkers from the pool")
	fmt.Println("paper: 76% of injections detected under full coverage; the rest correctly masked")
}
