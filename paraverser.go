// Package paraverser is the public API of the ParaVerser reproduction:
// heterogeneous parallel error detection for server processors (Liao et
// al., DSN 2025). It exposes system configuration (main cores, checker
// pools, operating modes, NoC), the workload suites used in the paper's
// evaluation (synthetic SPECspeed 2017, GAP graph kernels, PARSEC-style
// parallel kernels), fault injection, and the runner that couples
// everything together.
//
// A minimal session:
//
//	cfg := paraverser.DefaultConfig(paraverser.Checkers(paraverser.A510(), 2.0, 4))
//	w, _ := paraverser.SPECWorkload("bwaves", 200_000)
//	res, _ := paraverser.Run(cfg, []paraverser.Workload{w})
//	fmt.Println(res.Lanes[0].TimeNS, res.Lanes[0].Coverage())
//
// The heavy lifting lives in internal packages: internal/core is the
// paper's contribution (LSL$, LSPU, RCU, LSC, speculative indexed
// checking, modes); internal/cpu, internal/cachesim, internal/noc,
// internal/dram, internal/branch and internal/power are the simulated
// substrates; internal/workload holds the suites; internal/lockstep the
// prior-work baselines.
package paraverser

import (
	"fmt"

	"paraverser/internal/core"
	"paraverser/internal/cpu"
	"paraverser/internal/emu"
	"paraverser/internal/fault"
	"paraverser/internal/isa"
	"paraverser/internal/lockstep"
	"paraverser/internal/maintenance"
	"paraverser/internal/noc"
	"paraverser/internal/workload/gap"
	"paraverser/internal/workload/parsec"
	"paraverser/internal/workload/spec"
)

// Re-exported system types. See the internal/core documentation for the
// full semantics.
type (
	// Config describes a complete ParaVerser system.
	Config = core.Config
	// CheckerSpec is one group of identical checker cores per main core.
	CheckerSpec = core.CheckerSpec
	// Workload is a program to run under the system.
	Workload = core.Workload
	// Result is a finished run.
	Result = core.Result
	// LaneResult is one main core's outcome.
	LaneResult = core.LaneResult
	// EnergyReport is the section VII-E energy accounting.
	EnergyReport = core.EnergyReport
	// Mode selects full-coverage or opportunistic operation.
	Mode = core.Mode
	// CoreConfig is a core timing model (X2, A510, A35 presets).
	CoreConfig = cpu.Config
	// NoCConfig describes the mesh fabric.
	NoCConfig = noc.Config
	// Fault describes an injected hardware fault.
	Fault = fault.Fault
	// Program is a program in the repo ISA.
	Program = isa.Program

	// RecoveryConfig controls the closed-loop error-recovery layer:
	// segment re-replay on alternate checkers, forensic classification,
	// live maintenance tracking, and checker quarantine.
	RecoveryConfig = core.RecoveryConfig
	// QuarantinePolicy governs checker quarantine, probation and
	// retirement.
	QuarantinePolicy = core.QuarantinePolicy
	// RecoveryStats aggregates the recovery pipeline's activity.
	RecoveryStats = core.RecoveryStats
	// RecoveryEvent records one detection's trip through recovery.
	RecoveryEvent = core.RecoveryEvent
	// CheckerState is a checker core's standing in the allocation pool.
	CheckerState = core.CheckerState

	// CampaignConfig parameterises a concurrent fault-injection
	// campaign; CampaignResult is its aggregate, TrialResult one trial.
	CampaignConfig = fault.CampaignConfig
	CampaignResult = fault.CampaignResult
	TrialResult    = fault.TrialResult

	// MaintenanceTracker accumulates detections per core for the
	// predictive-maintenance use case (section I).
	MaintenanceTracker = maintenance.Tracker
	// MaintenancePolicy sets retirement thresholds.
	MaintenancePolicy = maintenance.Policy
	// MaintenanceObservation is one checked segment's outcome.
	MaintenanceObservation = maintenance.Observation
	// CoreID identifies a physical core in a fleet.
	CoreID = maintenance.CoreID
)

// Operating modes.
const (
	ModeFullCoverage  = core.ModeFullCoverage
	ModeOpportunistic = core.ModeOpportunistic
)

// Checker pool states (the quarantine life cycle).
const (
	CheckerActive      = core.CheckerActive
	CheckerQuarantined = core.CheckerQuarantined
	CheckerProbation   = core.CheckerProbation
	CheckerRetired     = core.CheckerRetired
)

// Core model presets from Table I.
func X2() CoreConfig   { return cpu.X2() }
func A510() CoreConfig { return cpu.A510() }
func A35() CoreConfig  { return cpu.A35() }

// NoC presets from Table I.
func FastNoC() NoCConfig { return noc.Fast() }
func SlowNoC() NoCConfig { return noc.Slow() }

// Checkers builds a checker-pool spec: count cores of the given model at
// freqGHz serving each main core.
func Checkers(model CoreConfig, freqGHz float64, count int) CheckerSpec {
	return CheckerSpec{CPU: model, FreqGHz: freqGHz, Count: count}
}

// DefaultConfig returns a full-coverage system with Table I parameters
// and the given checker pool.
func DefaultConfig(checkers ...CheckerSpec) Config {
	return core.DefaultConfig(checkers...)
}

// BaselineConfig returns the no-checking baseline system.
func BaselineConfig() Config {
	cfg := core.DefaultConfig()
	cfg.Checkers = nil
	return cfg
}

// Prior-work comparison systems (section VII-A).
func DSN18Config() Config   { return lockstep.DSN18() }
func ParaDoxConfig() Config { return lockstep.ParaDox() }
func DCLSConfig() Config    { return lockstep.DCLS() }

// Run executes workloads under the configuration.
func Run(cfg Config, workloads []Workload) (*Result, error) {
	return core.Run(cfg, workloads)
}

// Energy computes the energy report for a finished run.
func Energy(cfg Config, res *Result) (EnergyReport, error) {
	return core.Energy(cfg, res)
}

// StorageOverheadBytes returns the per-core storage cost of the
// ParaVerser units (1064B on the X2 model).
func StorageOverheadBytes(cfg Config) int {
	return core.StorageOverheadBytes(cfg)
}

// --- workloads ---

// SPECBenchmarks lists the 20 synthetic SPECspeed 2017 models.
func SPECBenchmarks() []string { return spec.Names() }

// SPECWorkload builds a synthetic SPEC benchmark bounded to maxInsts
// instructions (0 = a large default).
func SPECWorkload(name string, maxInsts int64) (Workload, error) {
	p, err := spec.ByName(name)
	if err != nil {
		return Workload{}, err
	}
	prog, err := p.Build(1 << 40)
	if err != nil {
		return Workload{}, err
	}
	if maxInsts == 0 {
		maxInsts = 1_000_000
	}
	return Workload{Name: name, Prog: prog, MaxInsts: maxInsts}, nil
}

// GAPKernels lists the graph kernels.
func GAPKernels() []string {
	return []string{"bfs", "pr", "sssp", "cc", "tc", "bc"}
}

// GAPWorkload builds a GAP kernel over a Kronecker graph of the given
// scale (2^scale vertices).
func GAPWorkload(kernel string, scale, edgeFactor int, maxInsts int64) (Workload, error) {
	g := gap.Kronecker(scale, edgeFactor, 1)
	var prog *isa.Program
	switch kernel {
	case "bfs":
		prog, _ = gap.BFS(g, 0)
	case "pr":
		prog, _ = gap.PageRank(g, 3)
	case "sssp":
		prog, _ = gap.SSSP(g, 0)
	case "cc":
		prog, _ = gap.CC(g)
	case "tc":
		prog, _ = gap.TC(g)
	case "bc":
		prog, _ = gap.BC(g, 0)
	default:
		return Workload{}, fmt.Errorf("paraverser: unknown GAP kernel %q", kernel)
	}
	return Workload{Name: "gap." + kernel, Prog: prog, MaxInsts: maxInsts}, nil
}

// ParsecKernels lists the parallel kernels.
func ParsecKernels() []string {
	ks := parsec.Kernels(64)
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.Name
	}
	return names
}

// ParsecWorkload builds a two-thread PARSEC-style kernel at the given
// scale.
func ParsecWorkload(name string, scale int, maxInsts int64) (Workload, error) {
	for _, k := range parsec.Kernels(scale) {
		if k.Name == name {
			return Workload{Name: k.Name, Prog: k.Prog, MaxInsts: maxInsts}, nil
		}
	}
	return Workload{}, fmt.Errorf("paraverser: unknown PARSEC kernel %q", name)
}

// NewMaintenanceTracker returns an empty fleet tracker.
func NewMaintenanceTracker() *MaintenanceTracker { return maintenance.NewTracker() }

// DefaultMaintenancePolicy returns conservative retirement thresholds.
func DefaultMaintenancePolicy() MaintenancePolicy { return maintenance.DefaultPolicy() }

// DefaultRecovery returns the recovery policy the campaign engine uses:
// bounded re-replay, forensic classification, quarantine with probation,
// and graceful coverage degradation.
func DefaultRecovery() RecoveryConfig { return core.DefaultRecovery() }

// RunCampaign fans randomized fault-injection trials out across
// goroutines with deterministic per-trial seeds and aggregates
// detection-latency distributions, SDC classification, and
// quarantine/recovery statistics.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	return fault.RunCampaign(cfg)
}

// StuckAtALUFault returns a single-bit stuck-at-1 hard fault on the
// output of a one-unit integer-ALU pool: every ALU instruction exercises
// it, so it activates quickly — the canonical developing hard fault for
// recovery and maintenance demos.
func StuckAtALUFault(bit uint) Fault {
	return Fault{Kind: fault.StuckAt1, Class: isa.ClassIntALU, Unit: 0, Units: 1, Bit: bit}
}

// FaultCampaign generates n random hard faults over the given core's
// functional units (the fig. 8 methodology).
func FaultCampaign(seed int64, n int, model CoreConfig) []Fault {
	fu := make(map[isa.Class]int, len(model.FUs))
	for class, pool := range model.FUs {
		fu[class] = pool.Count
	}
	return fault.Campaign(seed, n, fu)
}

// InjectOnChecker wires one fault into a specific checker core of every
// lane (the paper injects on the checker so the main run is undisturbed;
// detection is symmetrical).
func InjectOnChecker(cfg *Config, f Fault, checkerID int) error {
	inj, err := fault.NewInjector(f)
	if err != nil {
		return err
	}
	cfg.CheckerInterceptor = func(_, ckID int) emu.Interceptor {
		if ckID == checkerID {
			return inj
		}
		return nil
	}
	return nil
}
