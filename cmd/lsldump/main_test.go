package main

import "testing"

func TestResolveWorkloads(t *testing.T) {
	for _, name := range []string{"bwaves", "gap.bfs", "parsec.dedup"} {
		w, err := resolve(name, 1000)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if w.Prog == nil {
			t.Errorf("%s: nil program", name)
		}
	}
	for _, name := range []string{"nope", "gap.dijkstra", "parsec.vips"} {
		if _, err := resolve(name, 1000); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDumpRuns(t *testing.T) {
	if err := dump("exchange2", 5_000, 2, false, 3, 1000, 64); err != nil {
		t.Fatal(err)
	}
	if err := dump("gap.cc", 5_000, 2, true, 0, 1000, 64); err != nil {
		t.Fatal(err)
	}
}

func TestRunArgHandling(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"no-such-workload"}); code != 1 {
		t.Errorf("bad workload: exit %d, want 1", code)
	}
	if code := run([]string{"-insts", "3000", "-segs", "1", "mcf"}); code != 0 {
		t.Errorf("good run: exit %d", code)
	}
}
