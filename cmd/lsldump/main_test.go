package main

import "testing"

func TestResolveWorkloads(t *testing.T) {
	for _, name := range []string{"bwaves", "gap.bfs", "parsec.dedup"} {
		w, err := resolve(name, 1000)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if w.Prog == nil {
			t.Errorf("%s: nil program", name)
		}
	}
	for _, name := range []string{"nope", "gap.dijkstra", "parsec.vips"} {
		if _, err := resolve(name, 1000); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDumpRuns(t *testing.T) {
	if err := dump("exchange2", 5_000, 2, false, 3, 1000, 64); err != nil {
		t.Fatal(err)
	}
	if err := dump("gap.cc", 5_000, 2, true, 0, 1000, 64); err != nil {
		t.Fatal(err)
	}
}

func TestRunArgHandling(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"no-such-workload"}); code != 1 {
		t.Errorf("bad workload: exit %d, want 1", code)
	}
	if code := run([]string{"-insts", "3000", "-segs", "1", "mcf"}); code != 0 {
		t.Errorf("good run: exit %d", code)
	}
}

// TestRunRejectsMalformedFlags pins the usage-error contract: flag
// values that would silently truncate or wedge a run exit 2 before any
// simulation starts.
func TestRunRejectsMalformedFlags(t *testing.T) {
	cases := [][]string{
		{"-insts", "0", "mcf"},
		{"-insts", "-5", "mcf"},
		{"-segs", "-1", "mcf"},
		{"-disasm", "-2", "mcf"},
		{"-timeout", "0", "mcf"},
		{"-capacity", "0", "mcf"},
		{"-bogus-flag", "mcf"},
		{"mcf", "extra-arg"},
	}
	for _, args := range cases {
		if code := run(args); code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
	}
}

func TestRunVerifyFlag(t *testing.T) {
	if code := run([]string{"-verify", "exchange2"}); code != 0 {
		t.Errorf("verify exchange2: exit %d, want 0", code)
	}
	if code := run([]string{"-verify", "gap.bfs"}); code != 0 {
		t.Errorf("verify gap.bfs: exit %d, want 0", code)
	}
	if code := run([]string{"-verify", "no-such-workload"}); code != 1 {
		t.Errorf("verify bad workload: exit %d, want 1", code)
	}
}
