// Command lsldump is a debugging tool for the load-store-log machinery:
// it runs a workload on the functional emulator, splits it into
// checkpointed segments exactly as a main core would, verifies each
// segment through the checker path, and prints the segment structure —
// entries, kinds, wire sizes, checkpoint reasons — optionally with a
// disassembly of the hottest code.
//
// Usage:
//
//	lsldump [-insts N] [-segs N] [-hash] [-disasm N] <workload>
//
// where workload is a SPEC benchmark name (e.g. bwaves), gap.<kernel>
// (e.g. gap.bfs) or parsec.<kernel> (e.g. parsec.dedup).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"paraverser"
	"paraverser/internal/core"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
	"paraverser/internal/isa/verify"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("lsldump", flag.ContinueOnError)
	insts := fs.Int64("insts", 50_000, "instructions to execute")
	segs := fs.Int("segs", 8, "segments to print in detail")
	hash := fs.Bool("hash", false, "use Hash Mode entry sizing")
	disasm := fs.Int("disasm", 0, "disassemble the N hottest instructions")
	timeout := fs.Uint64("timeout", 5000, "checkpoint instruction timeout")
	capacity := fs.Int("capacity", 512, "LSL$ capacity in lines")
	doVerify := fs.Bool("verify", false, "statically verify the workload program and exit")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: lsldump [flags] <workload>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	// Malformed flag values are usage errors, not truncated runs.
	switch {
	case *insts <= 0:
		fmt.Fprintf(os.Stderr, "lsldump: -insts must be positive, got %d\n", *insts)
		return 2
	case *segs < 0:
		fmt.Fprintf(os.Stderr, "lsldump: -segs must be non-negative, got %d\n", *segs)
		return 2
	case *disasm < 0:
		fmt.Fprintf(os.Stderr, "lsldump: -disasm must be non-negative, got %d\n", *disasm)
		return 2
	case *timeout == 0:
		fmt.Fprintln(os.Stderr, "lsldump: -timeout must be positive")
		return 2
	case *capacity <= 0:
		fmt.Fprintf(os.Stderr, "lsldump: -capacity must be positive, got %d\n", *capacity)
		return 2
	}
	if *doVerify {
		return runVerify(fs.Arg(0), *insts)
	}
	if err := dump(fs.Arg(0), *insts, *segs, *hash, *disasm, *timeout, *capacity); err != nil {
		fmt.Fprintf(os.Stderr, "lsldump: %v\n", err)
		return 1
	}
	return 0
}

// runVerify resolves the workload and runs the static program verifier,
// printing every finding plus the abstract interpretation's proved
// facts: the per-hart termination bound and the address interval,
// alignment and bounds status of every reachable memory access. Exit
// status 1 when any error-severity finding exists.
func runVerify(name string, insts int64) int {
	w, err := resolve(name, insts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lsldump: %v\n", err)
		return 1
	}
	rep := verify.Verify(w.Prog)
	fmt.Printf("verify %s: %d insts, %d entry point(s), %d non-repeatable instruction(s)\n",
		w.Prog.Name, len(w.Prog.Insts), len(w.Prog.Entries), len(rep.NonRepeat))
	if rep.MaxInsts > 0 {
		fmt.Printf("termination: proved bound %d retired insts/hart\n", rep.MaxInsts)
	} else {
		fmt.Printf("termination: no proved bound\n")
	}
	for _, f := range rep.Findings {
		fmt.Printf("  %s\n", f)
	}
	if len(rep.MemFacts) > 0 {
		proved := 0
		for _, mf := range rep.MemFacts {
			if mf.Proved {
				proved++
			}
		}
		fmt.Printf("memory facts: %d access operand(s), %d proved in-bounds\n", len(rep.MemFacts), proved)
		for _, mf := range rep.MemFacts {
			status := "unproved"
			switch {
			case mf.Violation:
				status = "VIOLATION"
			case mf.Proved:
				status = "in-bounds"
			}
			fmt.Printf("  pc %-5d %-9s %-26s size %d align %-4d %-9s %s\n",
				mf.PC, mf.What, mf.Addr, mf.Size, mf.Align, status, disassemble(w.Prog, uint64(mf.PC)))
		}
	}
	if len(rep.Errors()) > 0 {
		fmt.Fprintf(os.Stderr, "lsldump: verify %s: %d violation(s)\n", w.Prog.Name, len(rep.Errors()))
		return 1
	}
	fmt.Printf("verify %s: clean\n", w.Prog.Name)
	return 0
}

func resolve(name string, insts int64) (paraverser.Workload, error) {
	switch {
	case strings.HasPrefix(name, "gap."):
		return paraverser.GAPWorkload(strings.TrimPrefix(name, "gap."), 9, 8, insts)
	case strings.HasPrefix(name, "parsec."):
		return paraverser.ParsecWorkload(strings.TrimPrefix(name, "parsec."), 500, insts)
	default:
		return paraverser.SPECWorkload(name, insts)
	}
}

func dump(name string, insts int64, maxSegs int, hash bool, disasm int, timeout uint64, capacity int) error {
	w, err := resolve(name, insts)
	if err != nil {
		return err
	}
	mach, err := emu.NewMachine(w.Prog, 1)
	if err != nil {
		return err
	}

	var (
		counter  core.Counter
		lspu     = core.NewLSPU(hash)
		seg      *core.Segment
		segCount int
		eff      emu.Effect

		totalInsts, totalEntries int64
		totalBytes               int64
		kindCounts               = map[core.EntryKind]int64{}
		reasonCounts             = map[core.BoundaryReason]int64{}
		hotness                  = map[uint64]int64{}
		executed                 int64
		checksOK, checksBad      int
	)
	hart := mach.Harts[0]
	begin := func() {
		seg = &core.Segment{Hart: 0, Seq: segCount, Start: hart.State}
		counter.TimeoutInsts = timeout
		counter.Reset(capacity)
	}
	begin()

	fmt.Printf("workload %s: timeout %d insts, LSL capacity %d lines, hash=%v\n\n",
		w.Name, timeout, capacity, hash)
	fmt.Printf("%-5s %-9s %7s %8s %8s %9s  %s\n",
		"seg", "reason", "insts", "entries", "bytes", "lines", "check")

	for executed < insts && !hart.Halted {
		if err := mach.StepHart(0, &eff); err != nil {
			return err
		}
		executed++
		seg.Insts++
		if disasm > 0 {
			hotness[eff.PC]++
		}
		pushed := 0
		if entry, ok := core.EntryFromEffect(&eff); ok {
			seg.Entries = append(seg.Entries, entry)
			pushed = lspu.Append(entry)
			seg.LogLines += pushed
			seg.LogBytes += entry.SizeBytes(hash)
			kindCounts[entry.Kind]++
		}
		reason := counter.Tick(pushed)
		if eff.Halted || executed >= insts {
			reason = core.BoundaryHalt
		}
		if reason == core.BoundaryInvalid {
			continue
		}
		seg.LogLines += lspu.Flush()
		seg.End = hart.State
		seg.Reason = reason
		reasonCounts[reason]++
		res := core.CheckSegment(w.Prog, seg, false, nil, nil)
		verdict := "OK"
		if res.Detected() {
			verdict = fmt.Sprintf("FAIL %v", res.Mismatches[0])
			checksBad++
		} else {
			checksOK++
		}
		if segCount < maxSegs {
			fmt.Printf("%-5d %-9s %7d %8d %8d %9d  %s\n",
				segCount, seg.Reason, seg.Insts, len(seg.Entries), seg.LogBytes, seg.LogLines, verdict)
		}
		totalInsts += int64(seg.Insts)
		totalEntries += int64(len(seg.Entries))
		totalBytes += int64(seg.LogBytes)
		segCount++
		begin()
	}

	fmt.Printf("\n%d segments over %d instructions; %d checks passed, %d failed\n",
		segCount, totalInsts, checksOK, checksBad)
	if totalInsts > 0 {
		fmt.Printf("log density: %.3f entries/inst, %.2f B/inst\n",
			float64(totalEntries)/float64(totalInsts), float64(totalBytes)/float64(totalInsts))
	}
	fmt.Println("\nentry kinds:")
	for kind := core.EntryLoad; kind <= core.EntryNonRepeat; kind++ {
		if n := kindCounts[kind]; n > 0 {
			fmt.Printf("  %-12v %8d\n", kindName(kind), n)
		}
	}
	fmt.Println("boundary reasons:")
	for r := core.BoundaryLSLFull; r <= core.BoundaryHalt; r++ {
		if n := reasonCounts[r]; n > 0 {
			fmt.Printf("  %-12v %8d\n", r, n)
		}
	}

	if disasm > 0 {
		type hot struct {
			pc uint64
			n  int64
		}
		hots := make([]hot, 0, len(hotness))
		for pc, n := range hotness {
			hots = append(hots, hot{pc, n})
		}
		sort.Slice(hots, func(i, j int) bool { return hots[i].n > hots[j].n })
		if len(hots) > disasm {
			hots = hots[:disasm]
		}
		sort.Slice(hots, func(i, j int) bool { return hots[i].pc < hots[j].pc })
		fmt.Printf("\nhottest %d instructions:\n", len(hots))
		for _, h := range hots {
			fmt.Printf("  %6d x%-8d %s\n", h.pc, h.n, disassemble(w.Prog, h.pc))
		}
	}
	return nil
}

func kindName(k core.EntryKind) string {
	switch k {
	case core.EntryLoad:
		return "load"
	case core.EntryStore:
		return "store"
	case core.EntryLoadStore:
		return "swap"
	case core.EntryGather:
		return "gather"
	case core.EntryScatter:
		return "scatter"
	case core.EntryNonRepeat:
		return "non-repeat"
	default:
		return "?"
	}
}

func disassemble(p *isa.Program, pc uint64) string {
	if pc >= uint64(len(p.Insts)) {
		return "<out of range>"
	}
	return p.Insts[pc].String()
}
