package main

import (
	"os"
	"path/filepath"
	"testing"

	"paraverser/internal/experiments"
)

func TestRunArgHandling(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus-flag"}); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{"no-such-experiment"}); code != 1 {
		t.Errorf("unknown experiment: exit %d, want 1", code)
	}
	// -h is a request, not an error: flag.ErrHelp exits 0.
	if code := run([]string{"-h"}); code != 0 {
		t.Errorf("-h: exit %d, want 0", code)
	}
	if code := run([]string{"metrics", "-h"}); code != 0 {
		t.Errorf("metrics -h: exit %d, want 0", code)
	}
}

// TestTimeShardsFlagValidation pins the -time-shards contract: zero,
// negative and malformed values are usage errors (exit 2); valid depths
// run to completion.
func TestTimeShardsFlagValidation(t *testing.T) {
	defer experiments.SetTimeShards(0)
	for _, bad := range []string{"0", "-3", "two"} {
		if code := run([]string{"-time-shards", bad, "table1"}); code != 2 {
			t.Errorf("-time-shards %s: exit %d, want 2", bad, code)
		}
	}
	code := run([]string{
		"-quick", "-insts", "20000", "-warmup", "20000",
		"-benchmarks", "exchange2", "-time-shards", "8", "fig6",
	})
	if code != 0 {
		t.Errorf("-time-shards 8 fig6: exit %d, want 0", code)
	}
}

// TestFlagValidation pins the usage-error contract across every numeric
// and enumerated knob: an out-of-range or unparsable value must exit 2
// with a one-line diagnostic before any simulation starts, and the
// valid edge values must not trip the validators.
func TestFlagValidation(t *testing.T) {
	defer experiments.SetStrategy(0)
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"negative -j", []string{"-j", "-1", "table1"}, 2},
		{"negative -check-workers", []string{"-check-workers", "-2", "table1"}, 2},
		{"negative -fault-trials", []string{"-fault-trials", "-1", "table1"}, 2},
		{"negative -campaign-trials", []string{"-campaign-trials", "-4", "table1"}, 2},
		{"negative -campaign-workers", []string{"-campaign-workers", "-1", "table1"}, 2},
		{"negative -insts", []string{"-insts", "-100", "table1"}, 2},
		{"negative -warmup", []string{"-warmup", "-100", "table1"}, 2},
		{"zero -trace-cap", []string{"-trace-cap", "0", "table1"}, 2},
		{"negative -trace-cap", []string{"-trace-cap", "-8", "table1"}, 2},
		{"zero -time-shards", []string{"-time-shards", "0", "table1"}, 2},
		{"zero -fuzz-seeds", []string{"-fuzz-seeds", "0", "table1"}, 2},
		{"negative -fuzz-seeds", []string{"-fuzz-seeds", "-16", "table1"}, 2},
		{"zero -fuzz-insts", []string{"-fuzz-insts", "0", "table1"}, 2},
		{"negative -fuzz-insts", []string{"-fuzz-insts", "-200", "table1"}, 2},
		{"unknown -strategy", []string{"-strategy", "bogus", "table1"}, 2},
		{"divergent -strategy", []string{"-strategy", "divergent", "table1"}, 2},
		// Valid edges: zero means "default" for the counts, and every
		// named strategy the flag accepts must reach the experiment.
		{"zero -j", []string{"-j", "0", "table1"}, 0},
		{"zero -check-workers", []string{"-check-workers", "0", "table1"}, 0},
		{"auto -strategy", []string{"-strategy", "auto", "table1"}, 0},
		{"lockstep -strategy", []string{"-strategy", "lockstep", "table1"}, 0},
		{"chunk-replay -strategy", []string{"-strategy", "chunk-replay", "table1"}, 0},
		{"relaxed -strategy", []string{"-strategy", "relaxed", "table1"}, 0},
	}
	for _, tc := range cases {
		if code := run(tc.args); code != tc.want {
			t.Errorf("%s (%v): exit %d, want %d", tc.name, tc.args, code, tc.want)
		}
	}
}

func TestMetricsCmdArgHandling(t *testing.T) {
	if code := run([]string{"metrics"}); code != 2 {
		t.Errorf("metrics with no file: exit %d, want 2", code)
	}
	if code := run([]string{"metrics", "-bogus"}); code != 2 {
		t.Errorf("metrics with bad flag: exit %d, want 2", code)
	}
	if code := run([]string{"metrics", filepath.Join(t.TempDir(), "absent.json")}); code != 1 {
		t.Errorf("metrics with missing file: exit %d, want 1", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"metrics", bad}); code != 1 {
		t.Errorf("metrics with corrupt file: exit %d, want 1", code)
	}
}

// TestMetricsCmdRejectsMalformedInput pins the strict-reader contract:
// a snapshot or trace that parses as JSON but is not a well-formed
// export must exit non-zero instead of rendering a vacuous report.
func TestMetricsCmdRejectsMalformedInput(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	goodSnap := `{"metrics":[{"name":"paraverser_segments_total","kind":"counter","value":0}]}`

	if code := run([]string{"metrics", write("empty.json", `{}`)}); code != 1 {
		t.Errorf("empty snapshot object: exit %d, want 1", code)
	}
	if code := run([]string{"metrics", write("nometrics.json", `{"metrics":[]}`)}); code != 1 {
		t.Errorf("zero-metric snapshot: exit %d, want 1", code)
	}
	if code := run([]string{"metrics", write("trailing.json", goodSnap+"{}")}); code != 1 {
		t.Errorf("snapshot with trailing data: exit %d, want 1", code)
	}

	snap := write("good.json", goodSnap)
	if code := run([]string{"metrics", snap}); code != 0 {
		t.Fatalf("minimal valid snapshot: exit %d, want 0", code)
	}
	goodTrace := `{"traceEvents":[]}`
	if code := run([]string{"metrics", "-trace", write("t1.json", goodTrace+"[]"), snap}); code != 1 {
		t.Errorf("trace with trailing data: exit %d, want 1", code)
	}
	badDrop := `{"traceEvents":[],"otherData":{"dropped_segment":"12abc"}}`
	if code := run([]string{"metrics", "-trace", write("t2.json", badDrop), snap}); code != 1 {
		t.Errorf("trace with malformed dropped count: exit %d, want 1", code)
	}
	if code := run([]string{"metrics", "-trace", write("t3.json", goodTrace), snap}); code != 0 {
		t.Errorf("valid trace cross-check: exit %d, want 0", code)
	}
}

func TestRunStaticExperiments(t *testing.T) {
	if code := run([]string{"table1", "area"}); code != 0 {
		t.Errorf("static experiments: exit %d", code)
	}
}

func TestRunTinySimulation(t *testing.T) {
	code := run([]string{
		"-quick", "-insts", "20000", "-warmup", "20000",
		"-benchmarks", "exchange2", "fig6",
	})
	if code != 0 {
		t.Errorf("tiny fig6: exit %d", code)
	}
}

func TestExperimentDispatchCoversAll(t *testing.T) {
	// Every name the "all" alias expands to must dispatch (checked
	// against the cheap ones; simulation-heavy ones covered above and in
	// the experiments package).
	sc := experiments.Quick()
	camp := campaignOpts{seed: 1}
	for _, name := range []string{"table1", "area"} {
		text, err := runExperiment(name, sc, camp)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if text == "" {
			t.Errorf("%s: empty report", name)
		}
	}
	if _, err := runExperiment("nope", sc, camp); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestObservabilityRoundTrip drives the full export pipeline: a tiny
// fig6 with tracing, metrics and progress on, then the metrics
// subcommand cross-checking the trace against the snapshot.
func TestObservabilityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	prom := filepath.Join(dir, "metrics.prom")
	trace := filepath.Join(dir, "trace.json")
	code := run([]string{
		"-quick", "-insts", "20000", "-warmup", "20000",
		"-benchmarks", "exchange2", "-j", "2", "-progress",
		"-metrics-out", metrics, "-metrics-prom", prom, "-trace", trace,
		"fig6",
	})
	if code != 0 {
		t.Fatalf("traced fig6: exit %d", code)
	}
	for _, p := range []string{metrics, prom, trace} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("export %s missing or empty (err=%v)", p, err)
		}
	}
	if code := run([]string{"metrics", "-trace", trace, metrics}); code != 0 {
		t.Errorf("metrics cross-check: exit %d, want 0", code)
	}
}

// TestExportFailureExitsNonzero asserts a failed export turns an
// otherwise clean run into exit 1, so CI can trust the artifacts.
func TestExportFailureExitsNonzero(t *testing.T) {
	code := run([]string{
		"-quick", "-insts", "20000", "-warmup", "20000",
		"-benchmarks", "exchange2",
		"-metrics-out", t.TempDir(), // a directory: os.Create fails
		"fig6",
	})
	if code != 1 {
		t.Errorf("unwritable -metrics-out: exit %d, want 1", code)
	}
}

// TestRunTinyFuzz drives the fuzz experiment end to end through the
// CLI, at two -j settings whose reports must agree (the experiment's
// own table is printed to stdout; here exit status is the contract —
// a mismatch or screening failure exits 1).
func TestRunTinyFuzz(t *testing.T) {
	for _, j := range []string{"1", "4"} {
		if code := run([]string{"-j", j, "-fuzz-seeds", "6", "-fuzz-insts", "120", "fuzz"}); code != 0 {
			t.Errorf("-j %s fuzz: exit %d, want 0", j, code)
		}
	}
}

func TestRunTinyCampaign(t *testing.T) {
	code := run([]string{
		"-quick", "-seed", "7", "-campaign-trials", "4", "campaign",
	})
	if code != 0 {
		t.Errorf("tiny campaign: exit %d", code)
	}
}
