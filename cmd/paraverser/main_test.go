package main

import (
	"testing"

	"paraverser/internal/experiments"
)

func TestRunArgHandling(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus-flag"}); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{"no-such-experiment"}); code != 1 {
		t.Errorf("unknown experiment: exit %d, want 1", code)
	}
}

func TestRunStaticExperiments(t *testing.T) {
	if code := run([]string{"table1", "area"}); code != 0 {
		t.Errorf("static experiments: exit %d", code)
	}
}

func TestRunTinySimulation(t *testing.T) {
	code := run([]string{
		"-quick", "-insts", "20000", "-warmup", "20000",
		"-benchmarks", "exchange2", "fig6",
	})
	if code != 0 {
		t.Errorf("tiny fig6: exit %d", code)
	}
}

func TestExperimentDispatchCoversAll(t *testing.T) {
	// Every name the "all" alias expands to must dispatch (checked
	// against the cheap ones; simulation-heavy ones covered above and in
	// the experiments package).
	sc := experiments.Quick()
	camp := campaignOpts{seed: 1}
	for _, name := range []string{"table1", "area"} {
		text, err := runExperiment(name, sc, camp)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if text == "" {
			t.Errorf("%s: empty report", name)
		}
	}
	if _, err := runExperiment("nope", sc, camp); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunTinyCampaign(t *testing.T) {
	code := run([]string{
		"-quick", "-seed", "7", "-campaign-trials", "4", "campaign",
	})
	if code != 0 {
		t.Errorf("tiny campaign: exit %d", code)
	}
}
