// Command paraverser regenerates the paper's tables and figures and runs
// ad-hoc checking experiments.
//
// Usage:
//
//	paraverser [flags] <experiment>...
//
// Experiments: table1 fig6 fig7 fig8 fig9 fig10 fig11 power area
// opportunity ablation all
//
// Flags select the simulation scale; the default "full" scale runs each
// benchmark for 250k measured instructions after a 150k-instruction
// warmup (scaled down from the paper's 1B-instruction windows after 10B
// fast-forward).
//
// -j N bounds the simulation worker pool (default GOMAXPROCS). "all"
// runs every experiment concurrently over the shared result cache, so
// baselines and DVFS sweeps shared between figures are simulated exactly
// once; output is still printed in the fixed experiment order.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"paraverser/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("paraverser", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "use the reduced test scale (~1 minute)")
	insts := fs.Int64("insts", 0, "override measured instructions per benchmark")
	warmup := fs.Int64("warmup", 0, "override warmup instructions per benchmark")
	benches := fs.String("benchmarks", "", "comma-separated SPEC subset (default: all 20)")
	trials := fs.Int("fault-trials", 0, "override fig. 8 fault injections per benchmark")
	seed := fs.Int64("seed", 1, "base seed for the fault-injection campaign (reproducible verdict tables)")
	campaignTrials := fs.Int("campaign-trials", 0, "override campaign trial count (default: 4x fault-trials)")
	campaignWorkers := fs.Int("campaign-workers", 0, "concurrent campaign trials (0 = GOMAXPROCS)")
	workers := fs.Int("j", 0, "concurrent simulation runs (0 = GOMAXPROCS)")
	checkWorkers := fs.Int("check-workers", 0, "concurrent checker verifications per run (<= 1 = inline; results are identical at any setting)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: paraverser [flags] <experiment>...\n")
		fmt.Fprintf(fs.Output(), "experiments: table1 fig6 fig7 fig8 fig9 fig10 fig11 power area opportunity ablation campaign all\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paraverser: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "paraverser: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paraverser: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "paraverser: -memprofile: %v\n", err)
			}
		}()
	}

	sc := experiments.Full()
	if *quick {
		sc = experiments.Quick()
	}
	if *insts > 0 {
		sc.Insts = *insts
	}
	if *warmup > 0 {
		sc.Warmup = *warmup
	}
	if *benches != "" {
		sc.Benchmarks = strings.Split(*benches, ",")
	}
	if *trials > 0 {
		sc.FaultTrials = *trials
	}
	experiments.SetWorkers(*workers)
	experiments.SetCheckWorkers(*checkWorkers)

	names := fs.Args()
	concurrent := false
	if len(names) == 1 && names[0] == "all" {
		names = []string{"table1", "area", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "power", "opportunity", "ablation", "campaign"}
		concurrent = true
	}
	camp := campaignOpts{seed: *seed, trials: *campaignTrials, workers: *campaignWorkers}

	type report struct {
		text string
		dur  time.Duration
		err  error
	}
	reports := make([]report, len(names))
	if concurrent {
		// Every experiment submits its run matrix into the shared engine
		// at once: simulations shared across figures (baselines, the DVFS
		// sweep) run once, and the pool stays saturated across experiment
		// boundaries. Output order stays fixed regardless of completion
		// order.
		done := make(chan struct{})
		for i, name := range names {
			go func(i int, name string) {
				defer func() { done <- struct{}{} }()
				start := time.Now()
				text, err := runExperiment(name, sc, camp)
				reports[i] = report{text, time.Since(start), err}
			}(i, name)
		}
		for range names {
			<-done
		}
	} else {
		for i, name := range names {
			start := time.Now()
			text, err := runExperiment(name, sc, camp)
			reports[i] = report{text, time.Since(start), err}
			if err != nil {
				fmt.Fprintf(os.Stderr, "paraverser: %s: %v\n", name, err)
				return 1
			}
			fmt.Print(text)
			fmt.Printf("[%s completed in %v]\n\n", name, reports[i].dur.Round(time.Millisecond))
		}
		return 0
	}

	for i, name := range names {
		r := reports[i]
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "paraverser: %s: %v\n", name, r.err)
			return 1
		}
		fmt.Print(r.text)
		fmt.Printf("[%s completed in %v]\n\n", name, r.dur.Round(time.Millisecond))
	}
	return 0
}

// campaignOpts carries the campaign subcommand's knobs.
type campaignOpts struct {
	seed    int64
	trials  int
	workers int
}

// runExperiment renders one experiment's report. It returns the output
// rather than printing so concurrent "all" runs can't interleave tables.
func runExperiment(name string, sc experiments.Scale, camp campaignOpts) (string, error) {
	var b strings.Builder
	switch name {
	case "campaign":
		r, err := experiments.Campaign(sc, camp.seed, camp.trials, camp.workers)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "fault-injection campaign: %d trials, seed %d\n\n", len(r.Trials), camp.seed)
		fmt.Fprintln(&b, r.TrialTable())
		fmt.Fprintln(&b, r.Table())
	case "table1":
		fmt.Fprintln(&b, experiments.Table1())
	case "area":
		fmt.Fprintln(&b, experiments.Area().Table())
	case "fig6":
		r, err := experiments.Fig6(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, r.Table())
	case "fig7":
		slow, cov, err := experiments.Fig7(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, slow.Table())
		fmt.Fprintln(&b, cov.Table())
	case "fig8":
		r, err := experiments.Fig8(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, r.Coverage.Table())
	case "fig9":
		r, err := experiments.Fig9(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, r.Table())
	case "fig10":
		r, err := experiments.Fig10(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, r.Table())
	case "fig11":
		r, err := experiments.Fig11(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, r.Table())
	case "power":
		r, err := experiments.Power(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, r.Table())
	case "opportunity":
		r, err := experiments.Opportunity(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, r.Table())
	case "ablation":
		r, err := experiments.Ablation(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, r.Table())
	default:
		return "", fmt.Errorf("unknown experiment %q", name)
	}
	return b.String(), nil
}
