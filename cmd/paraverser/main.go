// Command paraverser regenerates the paper's tables and figures and runs
// ad-hoc checking experiments.
//
// Usage:
//
//	paraverser [flags] <experiment>...
//
// Experiments: table1 fig6 fig7 fig8 fig9 fig10 fig11 power area
// opportunity ablation campaign divergent strategies fuzz all
//
// The fuzz experiment runs the verifier-screened differential program
// fuzzer (-fuzz-seeds seeds of ~-fuzz-insts instructions, streamed
// from -seed): every generated program must pass the abstract
// interpreter's screening, then execute identically on the
// per-instruction and block-compiled engines, under every checker
// strategy, with and without time-sharded speculation, and verify
// clean under divergent checking. Any disagreement exits 1 with a
// minimized reproduction. Output is byte-identical at any -j or
// -time-shards setting. Fuzz runs bypass the shared result cache.
//
// Flags select the simulation scale; the default "full" scale runs each
// benchmark for 250k measured instructions after a 150k-instruction
// warmup (scaled down from the paper's 1B-instruction windows after 10B
// fast-forward).
//
// -strategy selects the checker verification strategy (lockstep,
// chunk-replay, relaxed; default auto) for every full-coverage lockstep
// run an experiment submits; the "strategies" experiment runs the
// head-to-head comparison across all of them regardless of the flag.
//
// -j N bounds the simulation worker pool (default GOMAXPROCS). "all"
// runs every experiment concurrently over the shared result cache, so
// baselines and DVFS sweeps shared between figures are simulated exactly
// once; output is still printed in the fixed experiment order.
//
// Observability: -metrics-out / -metrics-prom export the deterministic
// run metrics (JSON / Prometheus text) on exit, -trace records a
// bounded segment trace in Chrome trace_event JSON, -progress prints a
// live status line to stderr. `paraverser metrics [-trace trace.json]
// metrics.json` renders a saved snapshot and cross-checks it against a
// trace.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"paraverser/internal/core"
	"paraverser/internal/experiments"
	"paraverser/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// defaultTimeShards picks the default speculation depth: deep enough to
// keep a producer goroutine ahead of the timing stitch, but 1 (inline,
// no producer goroutine, no fallback snapshots) when there is no spare
// CPU to run the producer on — results are identical at any depth, so
// the default only tunes wall clock.
func defaultTimeShards() int {
	if n := runtime.GOMAXPROCS(0); n < 2 {
		return 1
	}
	return 4
}

func run(args []string) int {
	if len(args) > 0 && args[0] == "metrics" {
		return runMetricsCmd(args[1:])
	}
	fs := flag.NewFlagSet("paraverser", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "use the reduced test scale (~1 minute)")
	insts := fs.Int64("insts", 0, "override measured instructions per benchmark")
	warmup := fs.Int64("warmup", 0, "override warmup instructions per benchmark")
	benches := fs.String("benchmarks", "", "comma-separated SPEC subset (default: all 20)")
	trials := fs.Int("fault-trials", 0, "override fig. 8 fault injections per benchmark")
	seed := fs.Int64("seed", 1, "base seed for the fault-injection campaign (reproducible verdict tables)")
	campaignTrials := fs.Int("campaign-trials", 0, "override campaign trial count (default: 4x fault-trials)")
	campaignWorkers := fs.Int("campaign-workers", 0, "concurrent campaign trials (0 = GOMAXPROCS)")
	fuzzSeeds := fs.Int("fuzz-seeds", 256, "seeds for the fuzz experiment (deterministic at any -j)")
	fuzzInsts := fs.Int("fuzz-insts", 200, "per-program instruction target for the fuzz experiment")
	workers := fs.Int("j", 0, "concurrent simulation runs (0 = GOMAXPROCS)")
	checkWorkers := fs.Int("check-workers", 0, "concurrent checker verifications per run (<= 1 = inline; results are identical at any setting)")
	timeShards := fs.Int("time-shards", defaultTimeShards(), "segments emulated speculatively ahead of each run's timing stitch (1 = inline; results are identical at any setting)")
	blockExec := fs.Bool("block-exec", true, "run emulation and checker replay through the block-compiled engine (results are identical either way)")
	strategy := fs.String("strategy", "auto", "checker verification strategy for full-coverage lockstep runs: auto, lockstep, chunk-replay, relaxed")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	metricsOut := fs.String("metrics-out", "", "write the deterministic run-metrics snapshot as JSON to this file on exit")
	metricsProm := fs.String("metrics-prom", "", "write the run metrics in Prometheus text format to this file on exit")
	traceOut := fs.String("trace", "", "record a segment trace and write Chrome trace_event JSON to this file on exit")
	traceCap := fs.Int("trace-cap", 1<<16, "segment-trace ring capacity (excess events are dropped and counted)")
	progressFlag := fs.Bool("progress", false, "print a live progress line (segments/s, cache hit rate, ETA) to stderr")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: paraverser [flags] <experiment>...\n")
		fmt.Fprintf(fs.Output(), "       paraverser metrics [-trace trace.json] metrics.json\n")
		fmt.Fprintf(fs.Output(), "experiments: table1 fig6 fig7 fig8 fig9 fig10 fig11 power area opportunity ablation campaign divergent strategies fuzz all\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paraverser: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "paraverser: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paraverser: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "paraverser: -memprofile: %v\n", err)
			}
		}()
	}

	sc := experiments.Full()
	if *quick {
		sc = experiments.Quick()
	}
	if *insts > 0 {
		sc.Insts = *insts
	}
	if *warmup > 0 {
		sc.Warmup = *warmup
	}
	if *benches != "" {
		sc.Benchmarks = strings.Split(*benches, ",")
	}
	if *trials > 0 {
		sc.FaultTrials = *trials
	}
	if *timeShards < 1 {
		fmt.Fprintf(os.Stderr, "paraverser: -time-shards must be >= 1 (got %d)\n", *timeShards)
		return 2
	}
	// Range checks for the remaining numeric knobs: a negative count has
	// no meaning anywhere below (0 everywhere selects the default), so
	// reject it up front with exit 2 rather than letting it reach an
	// engine that would misbehave quietly.
	for _, knob := range []struct {
		name string
		val  int64
	}{
		{"-j", int64(*workers)},
		{"-check-workers", int64(*checkWorkers)},
		{"-fault-trials", int64(*trials)},
		{"-campaign-trials", int64(*campaignTrials)},
		{"-campaign-workers", int64(*campaignWorkers)},
		{"-insts", *insts},
		{"-warmup", *warmup},
	} {
		if knob.val < 0 {
			fmt.Fprintf(os.Stderr, "paraverser: %s must be >= 0 (got %d)\n", knob.name, knob.val)
			return 2
		}
	}
	if *traceCap < 1 {
		fmt.Fprintf(os.Stderr, "paraverser: -trace-cap must be >= 1 (got %d)\n", *traceCap)
		return 2
	}
	// The fuzz knobs have no "default" zero: a campaign of zero seeds or
	// zero-instruction programs is a mistake, not a request.
	if *fuzzSeeds < 1 {
		fmt.Fprintf(os.Stderr, "paraverser: -fuzz-seeds must be >= 1 (got %d)\n", *fuzzSeeds)
		return 2
	}
	if *fuzzInsts < 1 {
		fmt.Fprintf(os.Stderr, "paraverser: -fuzz-insts must be >= 1 (got %d)\n", *fuzzInsts)
		return 2
	}
	st, err := core.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paraverser: -strategy: %v\n", err)
		return 2
	}
	if st == core.StrategyDivergent {
		fmt.Fprintf(os.Stderr, "paraverser: -strategy divergent is not a process-wide override: divergent checking needs the divergent check mode and per-workload decorrelation plans (run the divergent or strategies experiment instead)\n")
		return 2
	}
	experiments.SetWorkers(*workers)
	experiments.SetCheckWorkers(*checkWorkers)
	experiments.SetTimeShards(*timeShards)
	experiments.SetBlockExec(*blockExec)
	experiments.SetStrategy(st)

	var trace *obs.Trace
	if *traceOut != "" {
		trace = obs.NewTrace(*traceCap)
		experiments.SetTrace(trace)
		defer experiments.SetTrace(nil)
	}
	var prog *obs.Progress
	if *progressFlag {
		prog = obs.NewProgress(os.Stderr, time.Second, experiments.Progress)
		prog.Start()
	}
	// finish stops the progress line and, on success, writes the
	// requested observability exports; export failures turn a clean run
	// into exit 1 so CI can trust the artifacts exist.
	finish := func(code int) int {
		if prog != nil {
			prog.Stop()
		}
		if code != 0 {
			return code
		}
		if trace != nil {
			if err := trace.WriteFile(*traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "paraverser: -trace: %v\n", err)
				return 1
			}
		}
		if *metricsOut != "" || *metricsProm != "" {
			snap := experiments.MetricsSnapshot()
			if *metricsOut != "" {
				if err := snap.WriteSnapshotFile(*metricsOut); err != nil {
					fmt.Fprintf(os.Stderr, "paraverser: -metrics-out: %v\n", err)
					return 1
				}
			}
			if *metricsProm != "" {
				f, err := os.Create(*metricsProm)
				if err != nil {
					fmt.Fprintf(os.Stderr, "paraverser: -metrics-prom: %v\n", err)
					return 1
				}
				err = snap.WritePrometheus(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "paraverser: -metrics-prom: %v\n", err)
					return 1
				}
			}
		}
		return 0
	}

	names := fs.Args()
	concurrent := false
	if len(names) == 1 && names[0] == "all" {
		names = []string{"table1", "area", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "power", "opportunity", "ablation", "campaign", "divergent", "strategies"}
		concurrent = true
	}
	camp := campaignOpts{
		seed: *seed, trials: *campaignTrials, workers: *campaignWorkers,
		fuzzSeeds: *fuzzSeeds, fuzzInsts: *fuzzInsts, fuzzWorkers: *workers,
	}

	type report struct {
		text string
		dur  time.Duration
		err  error
	}
	reports := make([]report, len(names))
	if concurrent {
		// Every experiment submits its run matrix into the shared engine
		// at once: simulations shared across figures (baselines, the DVFS
		// sweep) run once, and the pool stays saturated across experiment
		// boundaries. Output order stays fixed regardless of completion
		// order.
		done := make(chan struct{})
		for i, name := range names {
			go func(i int, name string) {
				defer func() { done <- struct{}{} }()
				start := time.Now()
				text, err := runExperiment(name, sc, camp)
				reports[i] = report{text, time.Since(start), err}
			}(i, name)
		}
		for range names {
			<-done
		}
	} else {
		for i, name := range names {
			start := time.Now()
			text, err := runExperiment(name, sc, camp)
			reports[i] = report{text, time.Since(start), err}
			if err != nil {
				fmt.Fprintf(os.Stderr, "paraverser: %s: %v\n", name, err)
				return finish(1)
			}
			fmt.Print(text)
			fmt.Printf("[%s completed in %v]\n\n", name, reports[i].dur.Round(time.Millisecond))
		}
		return finish(0)
	}

	for i, name := range names {
		r := reports[i]
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "paraverser: %s: %v\n", name, r.err)
			return finish(1)
		}
		fmt.Print(r.text)
		fmt.Printf("[%s completed in %v]\n\n", name, r.dur.Round(time.Millisecond))
	}
	return finish(0)
}

// runMetricsCmd implements `paraverser metrics [-trace trace.json]
// metrics.json`: render a saved metrics snapshot as a summary table
// and, with -trace, cross-check the trace's segment accounting
// (stored events + dropped) against the snapshot's segments_total.
func runMetricsCmd(args []string) int {
	fs := flag.NewFlagSet("paraverser metrics", flag.ContinueOnError)
	traceFile := fs.String("trace", "", "cross-check segment counts against this Chrome trace JSON")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: paraverser metrics [-trace trace.json] metrics.json\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	snap, err := obs.ReadSnapshotFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "paraverser: metrics: %v\n", err)
		return 1
	}
	fmt.Print(snap.Summary())
	if *traceFile == "" {
		return 0
	}
	events, dropped, err := obs.ReadTraceFile(*traceFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paraverser: metrics: %v\n", err)
		return 1
	}
	var segs uint64
	for i := range events {
		if events[i].Cat == obs.CatSegment {
			segs++
		}
	}
	total := segs + dropped[obs.CatSegment]
	want := snap.CounterValue("paraverser_segments_total")
	if total != want {
		fmt.Fprintf(os.Stderr,
			"paraverser: metrics: trace accounts for %d segments (%d stored + %d dropped), snapshot says %d\n",
			total, segs, dropped[obs.CatSegment], want)
		return 1
	}
	fmt.Printf("trace: %d segment events + %d dropped = %d, matches segments_total\n",
		segs, dropped[obs.CatSegment], want)
	return 0
}

// campaignOpts carries the campaign and fuzz subcommands' knobs.
type campaignOpts struct {
	seed    int64
	trials  int
	workers int
	// fuzz experiment: seed count, per-program instruction target, and
	// the -j worker bound (fuzz runs outside the simulation engine, so
	// it applies -j itself).
	fuzzSeeds   int
	fuzzInsts   int
	fuzzWorkers int
}

// runExperiment renders one experiment's report. It returns the output
// rather than printing so concurrent "all" runs can't interleave tables.
func runExperiment(name string, sc experiments.Scale, camp campaignOpts) (string, error) {
	var b strings.Builder
	switch name {
	case "campaign":
		r, err := experiments.Campaign(sc, camp.seed, camp.trials, camp.workers)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "fault-injection campaign: %d trials, seed %d\n\n", len(r.Trials), camp.seed)
		fmt.Fprintln(&b, r.TrialTable())
		fmt.Fprintln(&b, r.Table())
	case "divergent":
		r, err := experiments.Divergent(sc, camp.seed, camp.trials, camp.workers)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "divergent-vs-lockstep study: %d paired trials, seed %d\n\n", len(r.Lockstep.Trials), camp.seed)
		fmt.Fprintln(&b, r.Table())
	case "strategies":
		r, err := experiments.Strategies(sc, camp.seed, camp.trials, camp.workers)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "checker-strategy head-to-head, seed %d\n\n", camp.seed)
		fmt.Fprintln(&b, r.Table())
	case "fuzz":
		workers := camp.fuzzWorkers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		r := experiments.Fuzz(camp.fuzzSeeds, camp.fuzzInsts, workers, uint64(camp.seed))
		fmt.Fprintf(&b, "differential fuzz: %d seeds, ~%d insts each, base seed %d\n\n",
			camp.fuzzSeeds, camp.fuzzInsts, camp.seed)
		fmt.Fprintln(&b, r.Table())
		if !r.Clean() {
			return "", fmt.Errorf("fuzz campaign found divergences:\n%s", strings.TrimRight(r.Failures(), "\n"))
		}
	case "table1":
		fmt.Fprintln(&b, experiments.Table1())
	case "area":
		fmt.Fprintln(&b, experiments.Area().Table())
	case "fig6":
		r, err := experiments.Fig6(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, r.Table())
	case "fig7":
		slow, cov, err := experiments.Fig7(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, slow.Table())
		fmt.Fprintln(&b, cov.Table())
	case "fig8":
		r, err := experiments.Fig8(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, r.Coverage.Table())
	case "fig9":
		r, err := experiments.Fig9(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, r.Table())
	case "fig10":
		r, err := experiments.Fig10(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, r.Table())
	case "fig11":
		r, err := experiments.Fig11(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, r.Table())
	case "power":
		r, err := experiments.Power(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, r.Table())
	case "opportunity":
		r, err := experiments.Opportunity(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, r.Table())
	case "ablation":
		r, err := experiments.Ablation(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(&b, r.Table())
	default:
		return "", fmt.Errorf("unknown experiment %q", name)
	}
	return b.String(), nil
}
