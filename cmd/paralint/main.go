// Command paralint runs the repository's invariant analyzer suite
// (determinism, hotpathalloc, fingerprint, shardsafety) over the
// packages matching the given go list patterns and exits non-zero when
// any finding survives its //paralint:allow review.
//
// Usage:
//
//	go run ./cmd/paralint ./...
//	go run ./cmd/paralint -list
//	go run ./cmd/paralint -only determinism,shardsafety ./internal/core
//	go run ./cmd/paralint -json ./... | jq '.[].file'
//
// -json replaces the line-oriented findings on stdout with a single
// JSON array (one object per finding: file, line, col, analyzer,
// severity, message), always emitted — empty when the tree is clean —
// so CI annotators can consume the output without scraping. Exit
// status is unchanged: 1 when any finding survives, 2 on usage or
// load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"paraverser/internal/analysis"
)

// jsonDiag is the machine-readable rendering of one finding. Severity
// is always "error" today — every surviving paralint finding gates the
// build — but the field keeps the schema stable if advisory analyzers
// arrive.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("paralint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("C", "", "resolve patterns relative to this directory")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "paralint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "paralint: %v\n", err)
		return 2
	}

	// The JSON array is emitted even when empty so consumers can always
	// parse stdout; the human summary stays on stderr in both modes.
	jdiags := []jsonDiag{}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, selected)
		if err != nil {
			fmt.Fprintf(stderr, "paralint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			if *jsonOut {
				jdiags = append(jdiags, jsonDiag{
					File:     d.Pos.Filename,
					Line:     d.Pos.Line,
					Col:      d.Pos.Column,
					Analyzer: d.Analyzer,
					Severity: "error",
					Message:  d.Message,
				})
			} else {
				fmt.Fprintln(stdout, d.String())
			}
			findings++
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jdiags); err != nil {
			fmt.Fprintf(stderr, "paralint: %v\n", err)
			return 2
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "paralint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
