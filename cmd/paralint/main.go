// Command paralint runs the repository's invariant analyzer suite
// (determinism, hotpathalloc, fingerprint, shardsafety) over the
// packages matching the given go list patterns and exits non-zero when
// any finding survives its //paralint:allow review.
//
// Usage:
//
//	go run ./cmd/paralint ./...
//	go run ./cmd/paralint -list
//	go run ./cmd/paralint -only determinism,shardsafety ./internal/core
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"paraverser/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("paralint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("C", "", "resolve patterns relative to this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "paralint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "paralint: %v\n", err)
		return 2
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, selected)
		if err != nil {
			fmt.Fprintf(stderr, "paralint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "paralint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
