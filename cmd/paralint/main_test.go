package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs paralint with a piped stdout and returns the exit code
// and everything written to it (stderr goes to the test's stderr).
func capture(t *testing.T, args []string) (int, string) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		out []byte
		err error
	}
	ch := make(chan res, 1)
	go func() {
		b, err := io.ReadAll(r)
		ch <- res{b, err}
	}()
	code := run(args, w, os.Stderr)
	w.Close()
	got := <-ch
	r.Close()
	if got.err != nil {
		t.Fatal(got.err)
	}
	return code, string(got.out)
}

// TestJSONOutput drives -json over the seeded-broken analyzer fixtures:
// each case pins the exit status, the finding count, and the shape of
// every emitted object (non-empty file ending in .go, positive line,
// the requested analyzer, "error" severity, non-empty message).
func TestJSONOutput(t *testing.T) {
	cases := []struct {
		name     string
		analyzer string
		fixture  string
		minFinds int
	}{
		{"determinism fixture", "determinism", "./internal/analysis/testdata/src/determinism", 5},
		{"hotpath fixture", "hotpathalloc", "./internal/analysis/testdata/src/hotpath", 3},
		{"shardsafety fixture", "shardsafety", "./internal/analysis/testdata/src/shardsafety", 2},
		{"fingerprint fixture", "fingerprint", "./internal/analysis/testdata/src/fingerprint", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := capture(t, []string{"-json", "-C", "../..", "-only", tc.analyzer, tc.fixture})
			if code != 1 {
				t.Fatalf("exit %d, want 1 (findings present)", code)
			}
			var diags []jsonDiag
			if err := json.Unmarshal([]byte(out), &diags); err != nil {
				t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, out)
			}
			if len(diags) < tc.minFinds {
				t.Fatalf("got %d findings, want >= %d", len(diags), tc.minFinds)
			}
			for i, d := range diags {
				if d.File == "" || !strings.HasSuffix(d.File, ".go") {
					t.Errorf("finding %d: bad file %q", i, d.File)
				}
				if d.Line <= 0 || d.Col <= 0 {
					t.Errorf("finding %d: bad position %d:%d", i, d.Line, d.Col)
				}
				if d.Analyzer != tc.analyzer {
					t.Errorf("finding %d: analyzer %q, want %q", i, d.Analyzer, tc.analyzer)
				}
				if d.Severity != "error" {
					t.Errorf("finding %d: severity %q, want \"error\"", i, d.Severity)
				}
				if d.Message == "" {
					t.Errorf("finding %d: empty message", i)
				}
			}
		})
	}
}

// TestJSONOutputCleanTree pins the clean-tree contract: -json on a
// finding-free package emits an empty JSON array (not nothing) and
// exits 0.
func TestJSONOutputCleanTree(t *testing.T) {
	code, out := capture(t, []string{"-json", "-C", "../..", "-only", "determinism",
		"./internal/analysis/testdata/src/allowed"})
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out)
	}
	if len(diags) != 0 {
		t.Fatalf("clean fixture produced %d findings: %s", len(diags), out)
	}
}

// TestTextOutputUnchanged guards the default mode: findings stay
// line-oriented file:line:col: analyzer: message.
func TestTextOutputUnchanged(t *testing.T) {
	code, out := capture(t, []string{"-C", "../..", "-only", "determinism",
		"./internal/analysis/testdata/src/determinism"})
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("got %d finding lines, want >= 5:\n%s", len(lines), out)
	}
	for _, l := range lines {
		if !strings.Contains(l, ".go:") || !strings.Contains(l, "determinism:") {
			t.Errorf("malformed finding line: %q", l)
		}
	}
}

// TestUsageErrors pins the exit-2 paths.
func TestUsageErrors(t *testing.T) {
	if code, _ := capture(t, []string{"-bogus"}); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code, _ := capture(t, []string{"-only", "nosuch", "./..."}); code != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2", code)
	}
}
