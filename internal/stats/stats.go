// Package stats provides the summary statistics and table formatting the
// experiment harness uses to report results the way the paper does
// (geomean slowdowns, ranges, coverage percentages).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs. It returns 0 for an empty
// slice and NaN if any value is non-positive.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MinMax returns the extremes (0,0 for empty).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile by nearest-rank: the smallest
// element with at least ceil(p/100*n) elements at or below it. The
// input need not be sorted and is never mutated; p is clamped to
// [0, 100], with NaN treated as 0 (converting NaN to int is
// platform-defined, so it must not reach the rank arithmetic).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if math.IsNaN(p) || p < 0 {
		p = 0
	} else if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// SlowdownPct converts a time ratio to the percentage-overhead form the
// paper reports (1.034x -> 3.4).
func SlowdownPct(ratio float64) float64 { return (ratio - 1) * 100 }

// Table accumulates rows and renders an aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
