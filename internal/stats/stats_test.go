package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{1, 4, 16}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean = %v, want 4", got)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean != 0")
	}
	if !math.IsNaN(Geomean([]float64{1, -1})) {
		t.Error("geomean of negative input must be NaN")
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(math.Abs(x), 1e6)+0.001)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		min, max := MinMax(xs)
		return g >= min*(1-1e-12) && g <= max*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Error("mean wrong")
	}
	min, max := MinMax(xs)
	if min != 1 || max != 3 {
		t.Error("minmax wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean != 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
	// Must not mutate the input.
	if xs[0] != 1 || xs[9] != 10 {
		t.Error("percentile sorted the caller's slice")
	}
}

func TestSlowdownPct(t *testing.T) {
	if got := SlowdownPct(1.034); math.Abs(got-3.4) > 1e-9 {
		t.Errorf("SlowdownPct = %v", got)
	}
}

func TestTableAlignment(t *testing.T) {
	tab := NewTable("name", "value")
	tab.Row("short", 1.5)
	tab.Row("a-much-longer-name", "x")
	s := tab.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Error("separator not aligned with header")
	}
	if !strings.Contains(s, "1.50") {
		t.Error("float not formatted with 2 decimals")
	}
}
