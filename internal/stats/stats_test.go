package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{1, 4, 16}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean = %v, want 4", got)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean != 0")
	}
	if !math.IsNaN(Geomean([]float64{1, -1})) {
		t.Error("geomean of negative input must be NaN")
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(math.Abs(x), 1e6)+0.001)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		min, max := MinMax(xs)
		return g >= min*(1-1e-12) && g <= max*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Error("mean wrong")
	}
	min, max := MinMax(xs)
	if min != 1 || max != 3 {
		t.Error("minmax wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean != 0")
	}
}

func TestPercentile(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"p50 sorted", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 50, 5},
		{"p100 sorted", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 100, 10},
		{"p0 sorted", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0, 1},
		{"unsorted p50", []float64{9, 1, 7, 3, 5}, 50, 5},
		{"unsorted p100", []float64{9, 1, 7, 3, 5}, 100, 9},
		{"unsorted p0", []float64{9, 1, 7, 3, 5}, 0, 1},
		{"single element p0", []float64{42}, 0, 42},
		{"single element p50", []float64{42}, 50, 42},
		{"single element p100", []float64{42}, 100, 42},
		{"duplicates p50", []float64{2, 2, 2, 7, 7}, 50, 2},
		{"duplicates p95", []float64{2, 2, 2, 7, 7}, 95, 7},
		{"p below range clamps", []float64{1, 2, 3}, -10, 1},
		{"p above range clamps", []float64{1, 2, 3}, 250, 3},
		{"NaN p treated as 0", []float64{1, 2, 3}, math.NaN(), 1},
		{"empty", nil, 50, 0},
	}
	for _, c := range cases {
		if got := Percentile(c.xs, c.p); got != c.want {
			t.Errorf("%s: Percentile(%v, %v) = %v, want %v", c.name, c.xs, c.p, got, c.want)
		}
	}
	// Must not mutate the input.
	xs := []float64{9, 1, 7, 3, 5}
	Percentile(xs, 50)
	if xs[0] != 9 || xs[1] != 1 || xs[4] != 5 {
		t.Error("percentile sorted the caller's slice")
	}
}

func TestSlowdownPct(t *testing.T) {
	if got := SlowdownPct(1.034); math.Abs(got-3.4) > 1e-9 {
		t.Errorf("SlowdownPct = %v", got)
	}
}

func TestTableAlignment(t *testing.T) {
	tab := NewTable("name", "value")
	tab.Row("short", 1.5)
	tab.Row("a-much-longer-name", "x")
	s := tab.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Error("separator not aligned with header")
	}
	if !strings.Contains(s, "1.50") {
		t.Error("float not formatted with 2 decimals")
	}
}
