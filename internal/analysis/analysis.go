// Package analysis is a self-contained static-analysis framework plus the
// paralint analyzer suite that enforces this repository's load-bearing
// invariants at lint time:
//
//   - determinism: deterministic packages (marked //paralint:deterministic)
//     must not read wall clocks, use the global math/rand stream, or leak
//     map iteration order into results.
//   - hotpathalloc: functions annotated //paralint:hotpath must avoid
//     allocating constructs (closures, interface conversions, append,
//     string building) on their steady-state path.
//   - fingerprint: run-cache per-field policy tables annotated
//     //paralint:fingerprint(Type) must cover every field of the struct
//     they account for, with no stale keys.
//   - shardsafety: obs.RunMetrics shards may only be mutated by their
//     owner; a shard reached through an exported surface is frozen and
//     may only be combined via the commutative Merge/collect path.
//
// The framework mirrors the golang.org/x/tools/go/analysis shape
// (Analyzer, Pass, Diagnostic) but is built purely on the standard
// library: packages are enumerated with `go list -export -deps -json`
// and type-checked from source against compiler export data, so the
// linter needs no dependencies beyond the Go toolchain itself.
//
// Annotation grammar (all comments, always lowercase):
//
//	//paralint:deterministic          package directive, any file
//	//paralint:hotpath                function doc comment
//	//paralint:fingerprint(T)         var doc comment; T is TypeName,
//	                                  pkg.TypeName or path/pkg.TypeName
//	//paralint:allow(reason)          same line or line above a finding
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check, mirroring go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed files (comments included).
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Types returns the package's type information.
func (p *Pass) Types() *types.Package { return p.Pkg.Types }

// Info returns the package's use/def/type maps.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full paralint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{Determinism, HotPathAlloc, Fingerprint, ShardSafety}
}

// Run applies the analyzers to the package and returns surviving
// diagnostics: findings on a line carrying (or directly below) a
// //paralint:allow(reason) comment are suppressed. Diagnostics come back
// sorted by position for stable output.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allowed := allowedLines(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
		}
		for _, d := range pass.diags {
			if allowed[fileLine{d.Pos.Filename, d.Pos.Line}] {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// --- directive handling ---

type fileLine struct {
	file string
	line int
}

var allowRE = regexp.MustCompile(`^//paralint:allow\(([^)]*)\)`)

// allowedLines collects every line suppressed by a //paralint:allow
// comment: the comment's own line plus the line below it (for comments
// placed above the offending statement).
func allowedLines(pkg *Package) map[fileLine]bool {
	m := map[fileLine]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !allowRE.MatchString(c.Text) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m[fileLine{pos.Filename, pos.Line}] = true
				m[fileLine{pos.Filename, pos.Line + 1}] = true
			}
		}
	}
	return m
}

// hasDirective reports whether the comment group contains the exact
// //paralint:<name> directive (optionally with an argument list).
func hasDirective(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == "//paralint:"+name || strings.HasPrefix(c.Text, "//paralint:"+name+"(") {
			return true
		}
	}
	return false
}

// directiveArg returns the parenthesised argument of //paralint:<name>(arg)
// in the comment group, if present.
func directiveArg(cg *ast.CommentGroup, name string) (string, bool) {
	if cg == nil {
		return "", false
	}
	prefix := "//paralint:" + name + "("
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, prefix) && strings.HasSuffix(c.Text, ")") {
			return c.Text[len(prefix) : len(c.Text)-1], true
		}
	}
	return "", false
}

// packageMarked reports whether any file of the package carries the
// given package-level //paralint:<name> directive anywhere in its
// comments.
func packageMarked(pkg *Package, name string) bool {
	want := "//paralint:" + name
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text == want {
					return true
				}
			}
		}
	}
	return false
}

// funcMarked reports whether the function declaration's doc comment
// carries //paralint:<name>.
func funcMarked(fd *ast.FuncDecl, name string) bool {
	return hasDirective(fd.Doc, name)
}

// --- shared type helpers ---

// isNamed reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// calleeObj resolves the called function object of a call expression,
// looking through parentheses. Returns nil for builtins, type
// conversions and indirect calls through non-selector expressions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// isPkgFunc reports whether the call invokes the package-level function
// pkgPath.name (not a method, not a value of function type).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// identUsesObj reports whether expr mentions an identifier resolving to
// any of the given objects.
func identUsesObj(info *types.Info, expr ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
			if obj := info.Defs[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}
