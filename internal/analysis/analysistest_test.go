package analysis

import (
	"regexp"
	"testing"
)

// The fixture harness mirrors golang.org/x/tools' analysistest: each
// package under testdata/src/<name> is loaded and run through one
// analyzer, and every diagnostic must be matched by a `// want "regexp"`
// comment on the same line (a line may carry several). Unmatched
// diagnostics and unmatched expectations both fail the test.

var wantRE = regexp.MustCompile(`// want (.*)$`)
var wantArgRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	pkgs, err := Load("", "./testdata/src/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", fixture, len(pkgs))
	}
	pkg := pkgs[0]
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, fixture, err)
	}

	wants := map[fileLine][]*expectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fileLine{pos.Filename, pos.Line}
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					pat := arg[1]
					if pat == "" {
						pat = arg[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		key := fileLine{d.Pos.Filename, d.Pos.Line}
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", key.file, key.line, w.re)
			}
		}
	}
}

func TestDeterminismFixture(t *testing.T) { runFixture(t, Determinism, "determinism") }
func TestHotPathFixture(t *testing.T)     { runFixture(t, HotPathAlloc, "hotpath") }
func TestFingerprintFixture(t *testing.T) { runFixture(t, Fingerprint, "fingerprint") }
func TestShardSafetyFixture(t *testing.T) { runFixture(t, ShardSafety, "shardsafety") }

// TestAllowSuppression proves the //paralint:allow escape hatch works for
// every analyzer: the allow fixture repeats violations from the other
// fixtures with allow comments attached and must produce zero
// diagnostics.
func TestAllowSuppression(t *testing.T) {
	pkgs, err := Load("", "./testdata/src/allowed")
	if err != nil {
		t.Fatalf("loading allowed fixture: %v", err)
	}
	diags, err := Run(pkgs[0], All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("allow comment did not suppress: %s", d)
	}
}

// TestDiagnosticOrdering checks Run's output is position-sorted.
func TestDiagnosticOrdering(t *testing.T) {
	pkgs, err := Load("", "./testdata/src/determinism")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := Run(pkgs[0], All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
	if len(diags) == 0 {
		t.Fatal("determinism fixture produced no diagnostics at all")
	}
	for _, d := range diags {
		if d.String() == "" || d.Analyzer == "" {
			t.Errorf("malformed diagnostic: %+v", d)
		}
	}
}

// TestLoadErrors exercises loader failure modes.
func TestLoadErrors(t *testing.T) {
	if _, err := Load("", "./testdata/src/does-not-exist"); err == nil {
		t.Error("loading a missing package succeeded")
	}
}

// TestAnalyzerMetadata keeps names unique and documented — cmd/paralint
// -only and the CI output rely on them.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing metadata", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 4 {
		t.Errorf("expected 4 analyzers, got %d", len(seen))
	}
}
