package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces bit-determinism inside packages marked with the
// //paralint:deterministic directive: simulation results must be a pure
// function of configuration and seed, because the run cache memoizes by
// fingerprint and replay checking compares runs bit for bit.
//
// Findings:
//   - wall-clock reads (time.Now, time.Since, time.Until)
//   - the global math/rand (and rand/v2) stream — seeded *rand.Rand
//     instances created with rand.New(rand.NewSource(seed)) are fine
//   - range over a map whose iteration order can leak into results.
//     A map range is accepted only when every statement in its body is
//     provably order-insensitive: writes indexed by the loop variables,
//     commutative integer accumulation, deletes keyed by loop
//     variables, appends into a slice that the enclosing function later
//     sorts, and per-iteration locals. Anything else is reported;
//     genuinely benign cases take a //paralint:allow(reason) comment.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, global rand and order-leaking map iteration in deterministic packages",
	Run:  runDeterminism,
}

// clockFuncs are the time package functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalRandFuncs are the math/rand and math/rand/v2 package-level
// functions backed by the shared global stream. Constructors (New,
// NewSource, NewPCG, NewChaCha8, NewZipf) are deliberately absent.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "NormFloat64": true, "ExpFloat64": true, "Read": true,
	// rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64N": true, "Uint32N": true, "Uint64N": true, "UintN": true,
	"Uint": true,
}

func runDeterminism(pass *Pass) error {
	if !packageMarked(pass.Pkg, "deterministic") {
		return nil
	}
	info := pass.Info()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkNondetRef(pass, info, n)
			case *ast.RangeStmt:
				checkMapRange(pass, info, f, n)
			}
			return true
		})
	}
	return nil
}

// checkNondetRef flags any mention of a forbidden package-level function
// — called or stored as a value — so a deterministic package cannot
// smuggle the wall clock out through a function variable either.
func checkNondetRef(pass *Pass, info *types.Info, sel *ast.SelectorExpr) {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if clockFuncs[fn.Name()] {
			pass.Reportf(sel.Pos(), "wall-clock read time.%s in deterministic package (inject a clock instead)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn.Name()] {
			pass.Reportf(sel.Pos(), "global rand.%s in deterministic package (use a seeded *rand.Rand)", fn.Name())
		}
	}
}

// checkMapRange vets one `for ... range m` over a map for order
// insensitivity.
func checkMapRange(pass *Pass, info *types.Info, file *ast.File, rng *ast.RangeStmt) {
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, ok := tv.Type.Underlying().(*types.Map); !ok {
		return
	}
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				loopVars[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	fn := enclosingFunc(file, rng.Pos())
	v := &mapRangeVetter{pass: pass, info: info, fn: fn, loopVars: loopVars}
	v.block(rng.Body)
}

// enclosingFunc returns the innermost function declaration or literal
// body containing pos (for the append-then-sort rule).
func enclosingFunc(file *ast.File, pos token.Pos) ast.Node {
	var best ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if n.Pos() <= pos && pos < n.End() {
				best = n
			}
		}
		return true
	})
	return best
}

// mapRangeVetter walks a map-range body and reports order-sensitive
// statements. locals accumulates objects declared inside the body —
// writes to those are per-iteration and harmless.
type mapRangeVetter struct {
	pass     *Pass
	info     *types.Info
	fn       ast.Node
	loopVars map[types.Object]bool
	locals   map[types.Object]bool
}

func (v *mapRangeVetter) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		v.stmt(s)
	}
}

func (v *mapRangeVetter) local(obj types.Object) {
	if v.locals == nil {
		v.locals = map[types.Object]bool{}
	}
	v.locals[obj] = true
}

func (v *mapRangeVetter) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		v.block(s)
	case *ast.IfStmt:
		if s.Init != nil {
			v.stmt(s.Init)
		}
		v.block(s.Body)
		if s.Else != nil {
			v.stmt(s.Else)
		}
	case *ast.ForStmt:
		v.block(s.Body)
	case *ast.RangeStmt:
		// A nested range defines further per-iteration variables.
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := v.info.Defs[id]; obj != nil {
					v.local(obj)
				}
			}
		}
		v.block(s.Body)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			for _, cs := range c.(*ast.CaseClause).Body {
				v.stmt(cs)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						if obj := v.info.Defs[id]; obj != nil {
							v.local(obj)
						}
					}
				}
			}
		}
	case *ast.AssignStmt:
		v.assign(s)
	case *ast.IncDecStmt:
		v.write(s.X, s.Pos(), true)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			v.call(call)
			return
		}
		v.pass.Reportf(s.Pos(), "order-sensitive statement in map iteration")
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return
		}
		v.pass.Reportf(s.Pos(), "%s inside map iteration selects an arbitrary element", s.Tok)
	case *ast.ReturnStmt:
		v.pass.Reportf(s.Pos(), "return inside map iteration selects an arbitrary element")
	default:
		v.pass.Reportf(s.Pos(), "order-sensitive statement in map iteration")
	}
}

func (v *mapRangeVetter) assign(s *ast.AssignStmt) {
	if s.Tok == token.DEFINE {
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := v.info.Defs[id]; obj != nil {
					v.local(obj)
				}
			}
		}
		return
	}
	if s.Tok == token.ASSIGN && v.isSortedLaterAppend(s) {
		return
	}
	commutative := false
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		commutative = true
	}
	for _, lhs := range s.Lhs {
		v.write(lhs, s.Pos(), commutative)
	}
}

// write vets one mutated lvalue. commutative marks += style updates,
// which are order-insensitive only for integer operands.
func (v *mapRangeVetter) write(lhs ast.Expr, pos token.Pos, commutative bool) {
	lhs = ast.Unparen(lhs)
	// Writes to per-iteration locals never leak order.
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if obj := v.info.Uses[id]; obj != nil && (v.locals[obj] || v.loopVars[obj]) {
			return
		}
		if commutative && v.isInteger(lhs) {
			return
		}
		v.pass.Reportf(pos, "map-order-dependent write to %s", id.Name)
		return
	}
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		// m2[k] = v keyed by a loop variable touches distinct slots per
		// iteration; same for dense tables indexed by the key.
		if identUsesObj(v.info, ix.Index, v.loopVars) {
			return
		}
		if v.rootIsLocal(ix.X) {
			return
		}
		if commutative && v.isInteger(lhs) {
			return
		}
		v.pass.Reportf(pos, "map-order-dependent indexed write")
		return
	}
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		if v.rootIsLocal(sel.X) {
			return
		}
		if commutative && v.isInteger(lhs) {
			return
		}
		v.pass.Reportf(pos, "map-order-dependent write to %s", sel.Sel.Name)
		return
	}
	if commutative && v.isInteger(lhs) {
		return
	}
	v.pass.Reportf(pos, "map-order-dependent write")
}

// isInteger reports whether the expression's static type is an integer
// (bit-exact commutative accumulation; float addition is not
// associative and would perturb low bits with iteration order).
func (v *mapRangeVetter) isInteger(e ast.Expr) bool {
	tv, ok := v.info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// rootIsLocal walks selector/index chains to the root identifier and
// reports whether it is a per-iteration local or loop variable.
func (v *mapRangeVetter) rootIsLocal(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := v.info.Uses[x]
			return obj != nil && (v.locals[obj] || v.loopVars[obj])
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// call vets an expression-statement call inside a map range: deletes
// keyed by loop variables and appends into later-sorted slices are the
// only sanctioned side effects.
func (v *mapRangeVetter) call(call *ast.CallExpr) {
	// delete keyed by a loop variable removes distinct entries per
	// iteration and is order-insensitive.
	if isBuiltin(v.info, call.Fun, "delete") && len(call.Args) == 2 &&
		identUsesObj(v.info, call.Args[1], v.loopVars) {
		return
	}
	v.pass.Reportf(call.Pos(), "order-sensitive call in map iteration")
}

// isBuiltin reports whether fun names the given builtin function.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return true // unresolved identifier spelled like the builtin
	}
	_, ok = obj.(*types.Builtin)
	return ok
}

// isSortedLaterAppend recognises x = append(x, ...) where x is sorted
// later in the enclosing function — the canonical
// collect-keys-then-sort pattern.
func (v *mapRangeVetter) isSortedLaterAppend(s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok || !isBuiltin(v.info, call.Fun, "append") {
		return false
	}
	target, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := v.info.Uses[target]
	if obj == nil {
		obj = v.info.Defs[target]
	}
	if obj == nil || v.fn == nil {
		return false
	}
	return sortedInFunc(v.info, v.fn, obj, s.End())
}

// sortFuncs are the sorting entry points the append-then-sort rule
// recognises.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedInFunc reports whether obj is passed to a recognised sort call
// after pos inside fn.
func sortedInFunc(info *types.Info, fn ast.Node, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		f, ok := calleeObj(info, call).(*types.Func)
		if !ok || f.Pkg() == nil {
			return true
		}
		names := sortFuncs[f.Pkg().Path()]
		if names == nil || !names[f.Name()] || len(call.Args) == 0 {
			return true
		}
		if identUsesObj(info, call.Args[0], map[types.Object]bool{obj: true}) {
			found = true
		}
		return true
	})
	return found
}
