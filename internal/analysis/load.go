package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg mirrors the subset of `go list -json` output the loader
// consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// runGoList invokes the go command and decodes its JSON package stream.
func runGoList(dir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load enumerates the packages matching the go list patterns (resolved
// relative to dir; empty dir means the current directory), type-checks
// each from source against compiler export data for its dependencies,
// and returns them in go list order. Loading requires the go toolchain
// on PATH — the same toolchain that builds the repository — and no
// other dependency.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	// One pass for the target set, one -deps pass to compile export data
	// for every dependency. -e tolerates broken packages so we can report
	// them all rather than stopping at the first. -pgo=off keeps a main
	// package's default.pgo from specialising its dependency graph:
	// PGO-variant packages carry no export data under their plain import
	// paths, and type-checking is profile-independent anyway.
	targets, err := runGoList(dir, append([]string{"list", "-e", "-pgo=off",
		"-json=ImportPath,Dir,GoFiles,Standard,Incomplete,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	deps, err := runGoList(dir, append([]string{"list", "-e", "-pgo=off", "-export", "-deps",
		"-json=ImportPath,Export,Standard,Incomplete,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, d := range deps {
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})

	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// typecheck parses and type-checks one listed package from source.
func typecheck(fset *token.FileSet, imp types.Importer, t listedPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", t.ImportPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
