package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// Fingerprint statically cross-checks run-cache per-field policy tables
// against the config structs they account for. A table is a
// package-level `map[string]bool` variable whose doc comment carries
// //paralint:fingerprint(T), where T names a struct type — unqualified
// (same package), pkg.Type (any imported package whose name or path tail
// matches) or a full import path like paraverser/internal/core.Config.
//
// Every field of the struct must appear as a key in the table literal
// (true = hashed, false = deliberately excluded), and every key must
// name a live field — so adding a config field without deciding its
// cache policy, or renaming one and leaving a stale key, fails lint
// rather than silently reusing stale cache entries. This promotes the
// runtime reflect test's guarantee to lint time.
var Fingerprint = &Analyzer{
	Name: "fingerprint",
	Doc:  "policy tables marked //paralint:fingerprint(T) must cover every field of T exactly",
	Run:  runFingerprint,
}

func runFingerprint(pass *Pass) error {
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				doc := vs.Doc
				if doc == nil {
					doc = gd.Doc
				}
				arg, ok := directiveArg(doc, "fingerprint")
				if !ok {
					continue
				}
				checkFingerprintTable(pass, vs, arg)
			}
		}
	}
	return nil
}

func checkFingerprintTable(pass *Pass, vs *ast.ValueSpec, typeName string) {
	if len(vs.Names) != 1 || len(vs.Values) != 1 {
		pass.Reportf(vs.Pos(), "fingerprint table must be a single var with a literal value")
		return
	}
	lit, ok := ast.Unparen(vs.Values[0]).(*ast.CompositeLit)
	if !ok {
		pass.Reportf(vs.Pos(), "fingerprint table %s must be a map composite literal", vs.Names[0].Name)
		return
	}
	st, err := resolveStruct(pass, typeName)
	if err != nil {
		pass.Reportf(vs.Pos(), "fingerprint table %s: %v", vs.Names[0].Name, err)
		return
	}
	keys := map[string]bool{}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := stringLit(pass, kv.Key)
		if !ok {
			pass.Reportf(kv.Pos(), "fingerprint table %s: non-constant key", vs.Names[0].Name)
			continue
		}
		if keys[key] {
			pass.Reportf(kv.Pos(), "fingerprint table %s: duplicate key %q", vs.Names[0].Name, key)
		}
		keys[key] = true
	}
	fields := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		name := st.Field(i).Name()
		fields[name] = true
		if !keys[name] {
			pass.Reportf(vs.Pos(), "fingerprint table %s: field %s.%s has no cache policy (add %q: true, or false with a reason)",
				vs.Names[0].Name, typeName, name, name)
		}
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := stringLit(pass, kv.Key); ok && !fields[key] {
			pass.Reportf(kv.Pos(), "fingerprint table %s: stale key %q names no field of %s",
				vs.Names[0].Name, key, typeName)
		}
	}
}

// stringLit evaluates a constant string expression.
func stringLit(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info().Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	s, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return tv.Value.ExactString(), true
	}
	return s, true
}

// resolveStruct finds the named struct type in the current package or
// anywhere in its import graph.
func resolveStruct(pass *Pass, name string) (*types.Struct, error) {
	pkgPart, typePart := "", name
	if i := strings.LastIndex(name, "."); i >= 0 {
		pkgPart, typePart = name[:i], name[i+1:]
	}
	var lookup func(p *types.Package, seen map[string]bool) *types.Struct
	lookup = func(p *types.Package, seen map[string]bool) *types.Struct {
		if seen[p.Path()] {
			return nil
		}
		seen[p.Path()] = true
		if pkgPart == "" || p.Path() == pkgPart || p.Name() == pkgPart ||
			strings.HasSuffix(p.Path(), "/"+pkgPart) {
			if obj := p.Scope().Lookup(typePart); obj != nil {
				if st, ok := obj.Type().Underlying().(*types.Struct); ok {
					return st
				}
			}
		}
		for _, imp := range p.Imports() {
			if st := lookup(imp, seen); st != nil {
				return st
			}
		}
		return nil
	}
	if st := lookup(pass.Types(), map[string]bool{}); st != nil {
		return st, nil
	}
	return nil, fmt.Errorf("cannot resolve struct type %q in package %s or its imports", name, pass.Types().Path())
}
