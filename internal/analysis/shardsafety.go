package analysis

import (
	"go/ast"
	"go/types"
)

// ShardSafety enforces the metrics-sharding ownership discipline: each
// worker owns a private obs.RunMetrics / obs.Hist shard and mutates only
// that, and shards are combined exclusively through the commutative
// Merge/collect path. The analyzer flags any mutation — field write,
// increment, or mutating method call — on a shard expression that is
// "published": reached through an exported struct field or through a
// call result. A published shard has escaped its owner, so concurrent
// or order-dependent mutation through it is exactly the race the
// sharded design exists to prevent.
//
// Legal mutation shapes therefore remain: through a local variable
// (m := obs.NewRunMetrics(); m.Cycles++), through an unexported field
// (s.metrics.Cycles++ inside the owning type), through a method
// receiver (the obs package's own methods), and Merge on anything.
var ShardSafety = &Analyzer{
	Name: "shardsafety",
	Doc:  "metrics shards may only be mutated by their owner; published shards are Merge-only",
	Run:  runShardSafety,
}

const obsPath = "paraverser/internal/obs"

// shardReadMethods never mutate their receiver.
var shardReadMethods = map[string]bool{
	"Mean": true, "Quantile": true, "String": true,
	"PoolUtilization": true, "AddTo": true,
}

func runShardSafety(pass *Pass) error {
	v := &shardVetter{pass: pass, info: pass.Info()}
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			v.body = fd.Body
			v.inspect(fd.Body)
		}
	}
	return nil
}

func (v *shardVetter) inspect(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				v.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			v.checkWrite(n.X)
		case *ast.CallExpr:
			v.checkCall(n)
		case *ast.UnaryExpr:
			// &shard.Field escapes a field for later mutation; treat
			// taking the address through a published chain as a write.
			if n.Op.String() == "&" {
				v.checkWrite(n.X)
			}
		}
		return true
	})
}

type shardVetter struct {
	pass *Pass
	info *types.Info
	body *ast.BlockStmt // enclosing function body, for ownership checks
}

func isShardType(t types.Type) bool {
	return isNamed(t, obsPath, "RunMetrics") || isNamed(t, obsPath, "Hist")
}

// checkWrite reports lhs when it stores into a field of a shard reached
// through a published chain.
func (v *shardVetter) checkWrite(lhs ast.Expr) {
	// Strip indexing/dereference wrappers: h.Counts[i]++ mutates h.
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	base := ast.Unparen(sel.X)
	tv, ok := v.info.Types[base]
	if !ok || !isShardType(tv.Type) {
		// The written field may itself be a shard (res.Metrics = m) —
		// overwriting a published shard wholesale is also a mutation. The
		// exported field being written is itself the publication surface,
		// so test the whole chain, not just the base — unless the base
		// struct is a body-local the function is still populating (filling
		// in a result before returning it is the owner's prerogative).
		if tvSel, ok2 := v.info.Types[e]; ok2 && isShardType(tvSel.Type) &&
			v.published(e) && !v.locallyOwned(base) {
			v.pass.Reportf(lhs.Pos(), "write replaces published metrics shard %s (merge into it instead)", sel.Sel.Name)
		}
		return
	}
	if v.published(base) {
		v.pass.Reportf(lhs.Pos(), "mutation of published metrics shard via %s (shards reached through exported surface are Merge-only)", sel.Sel.Name)
	}
}

// checkCall reports mutating method calls on published shard receivers.
func (v *shardVetter) checkCall(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := v.info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	if !isShardType(selection.Recv()) {
		return
	}
	name := sel.Sel.Name
	if name == "Merge" || shardReadMethods[name] {
		return
	}
	if v.published(ast.Unparen(sel.X)) {
		v.pass.Reportf(call.Pos(), "%s mutates a published metrics shard (only the owner may call it; published shards are Merge-only)", name)
	}
}

// locallyOwned reports whether e bottoms out in a variable declared
// inside the current function body — a struct still being built, whose
// fields (exported or not) no other party can reach yet. Parameters and
// captured outer variables declare before the body starts, so they fail
// the position test and stay treated as escaped.
func (v *shardVetter) locallyOwned(e ast.Expr) bool {
	if v.body == nil {
		return false
	}
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.Ident:
			obj, ok := v.info.Uses[x].(*types.Var)
			if !ok {
				return false
			}
			return obj.Pos() >= v.body.Pos() && obj.Pos() < v.body.End()
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// published reports whether the expression reaches its value through an
// exported struct field or a call result — i.e. through surface area
// another goroutine or package could equally reach.
func (v *shardVetter) published(e ast.Expr) bool {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if selection, ok := v.info.Selections[x]; ok {
				// Exported fields of the shard types themselves (a
				// RunMetrics's Hist members, a Hist's Counts) are
				// intra-shard navigation, not publication: the shard is
				// one ownership unit.
				if selection.Kind() == types.FieldVal && x.Sel.IsExported() &&
					!isShardType(selection.Recv()) {
					return true
				}
				e = x.X
				continue
			}
			// Package-qualified identifier (pkg.Var): a package-level
			// exported var is shared surface.
			if obj, ok := v.info.Uses[x.Sel].(*types.Var); ok && obj.Exported() &&
				obj.Pkg() != nil && obj.Pkg() != v.pass.Types() {
				return true
			}
			return false
		case *ast.CallExpr:
			// A constructor call like obs.NewRunMetrics() yields a fresh
			// value the caller owns; any other call result is published
			// surface.
			if fn, ok := calleeObj(v.info, x).(*types.Func); ok &&
				len(fn.Name()) >= 3 && fn.Name()[:3] == "New" {
				return false
			}
			return true
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return false
		}
	}
}
