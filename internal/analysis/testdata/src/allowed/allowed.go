//paralint:deterministic

// Package allowed is a paralint fixture proving //paralint:allow(reason)
// suppresses findings from every analyzer, on the same line or the line
// above.
package allowed

import (
	"fmt"
	"time"

	"paraverser/internal/obs"
)

var sink int64

func sameLineAllow() {
	sink = time.Now().Unix() //paralint:allow(fixture: same-line suppression)
}

func lineAboveAllow() {
	//paralint:allow(fixture: line-above suppression)
	sink = time.Now().Unix()
}

type bag struct {
	items []string
}

//paralint:hotpath
func hot(b *bag, n int) {
	//paralint:allow(fixture: arena-style append)
	b.items = append(b.items, "x")
	//paralint:allow(fixture: diagnostic formatting)
	s := fmt.Sprintf("%d", n)
	_ = s
}

type holder struct {
	Metrics *obs.RunMetrics
}

func publishedButVetted(h *holder) {
	//paralint:allow(fixture: single-owner phase before publication)
	h.Metrics.Segments++
}
