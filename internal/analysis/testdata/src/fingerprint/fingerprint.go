// Package fingerprint is a paralint fixture exercising the fingerprint
// analyzer: policy tables must cover their struct exactly.
package fingerprint

type config struct {
	Alpha int
	Beta  string
	Gamma bool
}

// complete covers every field: clean.
//
//paralint:fingerprint(config)
var complete = map[string]bool{
	"Alpha": true,
	"Beta":  true,
	"Gamma": false,
}

// missing lacks Gamma and carries a stale key.
//
//paralint:fingerprint(config)
var missing = map[string]bool{ // want `field config\.Gamma has no cache policy`
	"Alpha": true,
	"Beta":  true,
	"Delta": true, // want `stale key "Delta"`
}

var gammaKey = "Gamma"

// computed uses a non-constant key the analyzer cannot account for.
//
//paralint:fingerprint(config)
var computed = map[string]bool{ // want `field config\.Gamma has no cache policy`
	"Alpha":  true,
	"Beta":   true,
	gammaKey: true, // want `non-constant key`
}

// unresolved names a type that does not exist.
//
//paralint:fingerprint(nosuchtype)
var unresolved = map[string]bool{} // want `cannot resolve struct type`

// notATable has the directive on a non-literal.
//
//paralint:fingerprint(config)
var notATable = mk() // want `must be a map composite literal`

func mk() map[string]bool { return nil }

var _ = complete
var _ = missing
var _ = computed
var _ = unresolved
var _ = notATable
