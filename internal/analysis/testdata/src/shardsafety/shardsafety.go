// Package shardsafety is a paralint fixture exercising the shardsafety
// analyzer: obs metrics shards reached through exported surface are
// Merge-only.
package shardsafety

import "paraverser/internal/obs"

// Result publishes its shard through an exported field.
type Result struct {
	Metrics *obs.RunMetrics
}

// worker owns its shard through an unexported field.
type worker struct {
	metrics *obs.RunMetrics
}

func (w *worker) Metrics() *obs.RunMetrics { return w.metrics }

// ownerMutation is the legal shape: unexported field, owner-only.
func ownerMutation(w *worker) {
	w.metrics.Segments++
	w.metrics.CheckLatencyNS.Observe(3)
}

// localMutation owns a freshly constructed shard.
func localMutation() *obs.RunMetrics {
	m := obs.NewRunMetrics()
	m.Segments++
	m.CheckQueueDepth.Observe(1)
	return m
}

// publishedFieldMutation writes through an exported field: the shard has
// escaped its owner.
func publishedFieldMutation(r *Result) {
	r.Metrics.Segments++                // want `mutation of published metrics shard via Segments`
	r.Metrics.CheckLatencyNS.Observe(5) // want `Observe mutates a published metrics shard`
}

// callResultMutation mutates a shard handed out by an accessor.
func callResultMutation(w *worker) {
	w.Metrics().Segments++                 // want `mutation of published metrics shard via Segments`
	w.Metrics().CheckQueueDepth.Observe(2) // want `Observe mutates a published metrics shard`
}

// mergeIsAlwaysLegal combines shards through the commutative path.
func mergeIsAlwaysLegal(r *Result, w *worker) {
	r.Metrics.Merge(w.metrics)
	w.Metrics().Merge(r.Metrics)
}

// readsAreFine never mutate.
func readsAreFine(r *Result) (float64, string) {
	return r.Metrics.PoolUtilization(), r.Metrics.String()
}

// replacePublished overwrites a published shard wholesale.
func replacePublished(r *Result) {
	r.Metrics = obs.NewRunMetrics() // want `write replaces published metrics shard Metrics`
}
