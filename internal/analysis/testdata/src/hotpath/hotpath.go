// Package hotpath is a paralint fixture exercising the hotpathalloc
// analyzer: allocation-prone constructs inside annotated functions.
package hotpath

import "fmt"

type state struct {
	buf   []byte
	count int
	label string
}

type notifier interface{ notify(int) }

//paralint:hotpath
func step(s *state, n notifier, vals []int) error {
	s.count++
	f := func() { s.count-- } // want `closure in hot path`
	_ = f
	defer s.flush()          // want `defer in hot path`
	go s.flush()             // want `goroutine launch in hot path`
	s.buf = append(s.buf, 1) // want `append in hot path`
	tmp := make([]int, 4)    // want `allocation in hot path`
	_ = tmp
	s.label = fmt.Sprintf("%d", s.count) // want `fmt\.Sprintf in hot path`
	s.label = s.label + "x"              // want `string concatenation in hot path`
	s.label += "y"                       // want `string concatenation in hot path`
	var any interface{} = s.count        // want `concrete value boxed into interface assignment`
	_ = any
	n.notify(s.count)
	box(s.count)       // want `concrete value boxed into interface argument`
	box(s)             // pointers are stored inline: no box
	lit := []int{1, 2} // want `slice/map literal in hot path allocates`
	_ = lit
	if s.count < 0 {
		return fmt.Errorf("bad count %d", s.count) // exit path: exempt
	}
	return nil
}

func box(v interface{}) { _ = v }

func (s *state) flush() {}

// cold is unannotated: the same constructs are fine here.
func cold(s *state) {
	s.buf = append(s.buf, 2)
	s.label = fmt.Sprintf("%d", s.count)
	go s.flush()
}
