//paralint:deterministic

// Package determinism is a paralint fixture exercising the determinism
// analyzer: wall-clock reads, global rand, and order-leaking map ranges.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

var sink int64

func clocks() {
	t := time.Now() // want `wall-clock read time\.Now`
	sink = t.Unix()
	d := time.Since(t) // want `wall-clock read time\.Since`
	sink += int64(d)
	clock := time.Now // want `wall-clock read time\.Now`
	sink += clock().Unix()
}

func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn`
}

func seededRandIsFine() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

// leakOrder writes map-iteration state into results in arbitrary order.
func leakOrder(m map[string]int) []int {
	var out []int
	last := ""
	for k, v := range m {
		out = append(out, v) // want `map-order-dependent write to out`
		last = k             // want `map-order-dependent write to last`
	}
	_ = last
	return out
}

// collectThenSort is the sanctioned pattern: order is erased by sorting.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// commutativeSum accumulates integers, which is order-insensitive.
func commutativeSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// floatSum leaks order through non-associative float addition.
func floatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `map-order-dependent write to total`
	}
	return total
}

// keyedWrites touch distinct slots per iteration.
func keyedWrites(m map[int]int, dense []int) map[int]int {
	out := map[int]int{}
	for k, v := range m {
		out[k] = v * 2
		dense[k] = v
	}
	return out
}

// earlyExit picks whichever element iteration yields first.
func earlyExit(m map[string]int) int {
	for _, v := range m {
		return v // want `return inside map iteration`
	}
	return 0
}

// breakOut likewise selects an arbitrary element.
func breakOut(m map[string]int) int {
	best := -1
	for _, v := range m {
		if v > 10 {
			best = v // want `map-order-dependent write to best`
			break    // want `break inside map iteration`
		}
	}
	return best
}

// deleteKeyed removes distinct entries per iteration; fine.
func deleteKeyed(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// perIterationLocals never leak order.
func perIterationLocals(m map[string]int) int {
	n := 0
	for _, v := range m {
		double := v * 2
		if double > 4 {
			n += double
		}
	}
	return n
}
