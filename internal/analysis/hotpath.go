package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc flags allocating constructs inside functions annotated
// //paralint:hotpath — the per-instruction emulate/consume path, whose
// zero-allocation property the runtime benchmarks
// (BenchmarkHartStep/BenchmarkCoreConsume with 0 allocs/op) gate. The
// analyzer promotes that gate to lint time and names the construct.
//
// Flagged: function literals (closure environments escape), values of
// concrete type passed or assigned where an interface is expected
// (boxing), calls to the append builtin (growth allocates; arena-style
// appends take a //paralint:allow), string concatenation and fmt
// formatting.
//
// Expressions inside return statements are exempt: a hot-path function
// that is about to return an error has already left the steady state,
// so `return fmt.Errorf(...)` exit paths stay idiomatic.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocating constructs in //paralint:hotpath functions",
	Run:  runHotPathAlloc,
}

// fmtAllocFuncs are formatting helpers that always allocate their
// result.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcMarked(fd, "hotpath") {
				continue
			}
			v := &hotPathVetter{pass: pass, info: pass.Info()}
			v.block(fd.Body)
		}
	}
	return nil
}

type hotPathVetter struct {
	pass *Pass
	info *types.Info
}

// block walks statements, skipping return statements entirely (exit
// paths are exempt).
func (v *hotPathVetter) block(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			return false
		case *ast.FuncLit:
			v.pass.Reportf(n.Pos(), "closure in hot path (environment may escape and allocate)")
			return false
		case *ast.DeferStmt:
			v.pass.Reportf(n.Pos(), "defer in hot path (runs per call, may allocate)")
			return false
		case *ast.GoStmt:
			v.pass.Reportf(n.Pos(), "goroutine launch in hot path")
			return false
		case *ast.CallExpr:
			v.call(n)
		case *ast.CompositeLit:
			if tv, ok := v.info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					v.pass.Reportf(n.Pos(), "slice/map literal in hot path allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && v.isString(n.X) {
				v.pass.Reportf(n.Pos(), "string concatenation in hot path allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && v.isString(n.Lhs[0]) {
				v.pass.Reportf(n.Pos(), "string concatenation in hot path allocates")
			}
			v.assign(n)
		case *ast.ValueSpec:
			v.valueSpec(n)
		}
		return true
	})
}

func (v *hotPathVetter) isString(e ast.Expr) bool {
	tv, ok := v.info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (v *hotPathVetter) call(call *ast.CallExpr) {
	if isBuiltin(v.info, call.Fun, "append") {
		v.pass.Reportf(call.Pos(), "append in hot path may grow and allocate (preallocate, or //paralint:allow an arena append)")
		return
	}
	if isBuiltin(v.info, call.Fun, "make") || isBuiltin(v.info, call.Fun, "new") {
		v.pass.Reportf(call.Pos(), "allocation in hot path")
		return
	}
	if fn, ok := calleeObj(v.info, call).(*types.Func); ok && fn.Pkg() != nil &&
		fn.Pkg().Path() == "fmt" && fmtAllocFuncs[fn.Name()] {
		v.pass.Reportf(call.Pos(), "fmt.%s in hot path allocates", fn.Name())
		return
	}
	// Boxing check: concrete values handed to interface parameters.
	sig := v.callSignature(call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if types.IsInterface(pt) {
			v.checkBoxing(arg, "interface argument")
		}
	}
}

// assign flags concrete-to-interface assignments (boxing on every
// execution of the statement).
func (v *hotPathVetter) assign(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		tv, ok := v.info.Types[lhs]
		if !ok && s.Tok == token.DEFINE {
			continue // inferred type matches RHS; no conversion
		}
		if ok && types.IsInterface(tv.Type) {
			v.checkBoxing(s.Rhs[i], "interface assignment")
		}
	}
}

// valueSpec flags `var x I = concrete` declarations, which box exactly
// like assignments but arrive as ValueSpec nodes.
func (v *hotPathVetter) valueSpec(s *ast.ValueSpec) {
	if len(s.Names) != len(s.Values) {
		return
	}
	for i, name := range s.Names {
		obj := v.info.Defs[name]
		if obj == nil || obj.Type() == nil {
			continue
		}
		if s.Type != nil && types.IsInterface(obj.Type()) {
			v.checkBoxing(s.Values[i], "interface assignment")
		}
	}
}

// checkBoxing reports arg when it is a non-nil concrete value whose use
// in interface position forces a heap box.
func (v *hotPathVetter) checkBoxing(arg ast.Expr, what string) {
	tv, ok := v.info.Types[arg]
	if !ok {
		return
	}
	if tv.IsNil() || tv.Type == nil {
		return
	}
	if types.IsInterface(tv.Type) {
		return // interface-to-interface, no box
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr && tv.Value == nil {
		// Pointers box without copying the pointee; still an interface
		// header write, but the runtime stores pointers inline.
		return
	}
	v.pass.Reportf(arg.Pos(), "concrete value boxed into %s in hot path", what)
}

// callSignature resolves the signature of the called function, if it is
// a function or method call (not a conversion or builtin).
func (v *hotPathVetter) callSignature(call *ast.CallExpr) *types.Signature {
	tv, ok := v.info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return sig
}
