// Package cachesim implements the cache hierarchy used by the core timing
// models: set-associative write-back caches with LRU replacement and
// per-level statistics, plus the Load-Store-Log repurposing of a data
// cache (the LSL$ of section IV-B: cache lines progressively replaced by
// log entries, a log-end register, and eviction of resident data).
package cachesim

import (
	"fmt"
	"math/bits"
)

// Config describes one cache.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	// HitCycles is the hit latency in cycles of the owning clock domain.
	HitCycles int
	// MSHRs bounds the number of outstanding misses (used by the CPU
	// timing model to limit memory-level parallelism).
	MSHRs int
}

// Lines returns the total number of cache lines.
func (c Config) Lines() int { return c.SizeBytes / c.LineBytes }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Lines() / c.Ways }

// Validate checks the configuration is coherent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache %q: sets %d not a power of two", c.Name, s)
	}
	return nil
}

// Stats counts accesses per cache.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
	// LogEvictions counts resident lines evicted to make room for
	// load-store-log entries (LSL$ repurposing).
	LogEvictions uint64
}

// MissRate returns misses/accesses.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// way is one cache line's bookkeeping. The line's identity — tag, valid
// bit and the log bit (the extra tag bit of fig. 3 marking a line that
// holds load-store-log entries rather than a cached copy of memory) —
// is packed into one key word so the hit scan, which runs for every
// access of every simulated instruction, is a single comparison per way
// instead of a tag compare plus two flag loads.
type way struct {
	key   uint64 // tag<<2 | wayLog | wayValid
	lru   uint32
	dirty bool
}

const (
	wayValid = uint64(1) << 0
	wayLog   = uint64(1) << 1
)

// Cache is one set-associative cache. The zero value is not usable; use
// New.
type Cache struct {
	cfg Config
	// ways holds every line, set-contiguous: set s occupies
	// ways[s*Ways : (s+1)*Ways]. A flat slice saves the per-access
	// pointer chase of a slice-of-slices.
	ways     []way
	lruClock uint32
	Stats    Stats

	// Derived geometry, precomputed once in New: setIndex and tagOf run
	// for every access of every simulated instruction, and recomputing
	// Config.Sets() there costs two integer divisions per lookup.
	lineShift int32 // log2(LineBytes), or -1 when not a power of two
	setMask   uint64
	setShift  uint32 // log2(Sets); Sets is always a power of two
	nsets     int
	nways     int

	// logEnd is the Load-Store Log End register: the number of lines
	// currently holding log entries, filled linearly from line 0
	// (set-major order).
	logEnd int
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:       cfg,
		ways:      make([]way, cfg.Lines()),
		lineShift: -1,
		setMask:   uint64(cfg.Sets() - 1),
		setShift:  uint32(bits.TrailingZeros(uint(cfg.Sets()))),
		nsets:     cfg.Sets(),
		nways:     cfg.Ways,
	}
	if lb := cfg.LineBytes; lb&(lb-1) == 0 {
		c.lineShift = int32(bits.TrailingZeros(uint(lb)))
	}
	return c, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// lineOf returns the line index of addr: a shift for power-of-two line
// sizes (every shipped geometry), a division otherwise.
func (c *Cache) lineOf(addr uint64) uint64 {
	if c.lineShift >= 0 {
		return addr >> uint(c.lineShift)
	}
	return addr / uint64(c.cfg.LineBytes)
}

func (c *Cache) setIndex(addr uint64) uint64 { return c.lineOf(addr) & c.setMask }

func (c *Cache) tagOf(addr uint64) uint64 { return c.lineOf(addr) >> c.setShift }

// set returns the ways of addr's set.
func (c *Cache) set(addr uint64) []way {
	base := int(c.setIndex(addr)) * c.nways
	return c.ways[base : base+c.nways]
}

// Access looks up addr, allocating on miss (write-allocate). It returns
// true on hit. Dirty evictions count as writebacks.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.Stats.Accesses++
	c.lruClock++
	set := c.set(addr)
	want := c.tagOf(addr)<<2 | wayValid
	for i := range set {
		w := &set[i]
		if w.key == want {
			w.lru = c.lruClock
			if write {
				w.dirty = true
			}
			return true
		}
	}
	c.Stats.Misses++
	c.fill(set, want, write)
	return false
}

// Probe looks up addr without side effects.
func (c *Cache) Probe(addr uint64) bool {
	set := c.set(addr)
	want := c.tagOf(addr)<<2 | wayValid
	for i := range set {
		if set[i].key == want {
			return true
		}
	}
	return false
}

func (c *Cache) fill(set []way, want uint64, write bool) {
	victim := -1
	var oldest uint32 = ^uint32(0)
	for i := range set {
		w := &set[i]
		if w.key&wayLog != 0 {
			continue // log lines are not eligible replacement victims
		}
		if w.key&wayValid == 0 {
			victim = i
			break
		}
		if w.lru <= oldest {
			oldest = w.lru
			victim = i
		}
	}
	if victim < 0 {
		// Every way holds log entries; the access bypasses the cache.
		return
	}
	w := &set[victim]
	if w.key&wayValid != 0 && w.dirty {
		c.Stats.Writebacks++
	}
	*w = way{key: want, dirty: write, lru: c.lruClock}
}

// InvalidateAll drops every non-log line (e.g. when a core is handed to a
// different process).
func (c *Cache) InvalidateAll() {
	for i := range c.ways {
		if c.ways[i].key&wayLog == 0 {
			c.ways[i] = way{}
		}
	}
}

// --- Load-Store Log repurposing (fig. 3) ---

// LogCapacityLines returns how many lines the cache can devote to the
// load-store log (all of them).
func (c *Cache) LogCapacityLines() int { return c.cfg.Lines() }

// LogLines returns the current value of the Load-Store Log End register.
func (c *Cache) LogLines() int { return c.logEnd }

// LogAppendLine claims the next line for log entries, evicting any
// resident data in place (fig. 3: filling starts at index 0 and proceeds
// linearly). It returns false when the log is full.
func (c *Cache) LogAppendLine() bool {
	if c.logEnd >= len(c.ways) {
		return false
	}
	w := &c.ways[(c.logEnd%c.nsets)*c.nways+c.logEnd/c.nsets]
	if w.key&(wayValid|wayLog) == wayValid {
		c.Stats.LogEvictions++
		if w.dirty {
			c.Stats.Writebacks++
		}
	}
	*w = way{key: wayValid | wayLog, lru: c.lruClock}
	c.logEnd++
	return true
}

// LogReset releases all log lines (checkpoint finished); the lines become
// invalid, so the cache refills from scratch when the core resumes
// main-mode work.
func (c *Cache) LogReset() {
	for i := 0; i < c.logEnd; i++ {
		c.ways[(i%c.nsets)*c.nways+i/c.nsets] = way{}
	}
	c.logEnd = 0
}
