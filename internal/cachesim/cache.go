// Package cachesim implements the cache hierarchy used by the core timing
// models: set-associative write-back caches with LRU replacement and
// per-level statistics, plus the Load-Store-Log repurposing of a data
// cache (the LSL$ of section IV-B: cache lines progressively replaced by
// log entries, a log-end register, and eviction of resident data).
package cachesim

import "fmt"

// Config describes one cache.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	// HitCycles is the hit latency in cycles of the owning clock domain.
	HitCycles int
	// MSHRs bounds the number of outstanding misses (used by the CPU
	// timing model to limit memory-level parallelism).
	MSHRs int
}

// Lines returns the total number of cache lines.
func (c Config) Lines() int { return c.SizeBytes / c.LineBytes }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Lines() / c.Ways }

// Validate checks the configuration is coherent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache %q: sets %d not a power of two", c.Name, s)
	}
	return nil
}

// Stats counts accesses per cache.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
	// LogEvictions counts resident lines evicted to make room for
	// load-store-log entries (LSL$ repurposing).
	LogEvictions uint64
}

// MissRate returns misses/accesses.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint32
	// log marks the line as holding load-store-log entries rather than a
	// cached copy of memory (the extra tag bit of fig. 3).
	log bool
}

// Cache is one set-associative cache. The zero value is not usable; use
// New.
type Cache struct {
	cfg      Config
	sets     [][]way
	lruClock uint32
	Stats    Stats

	// logEnd is the Load-Store Log End register: the number of lines
	// currently holding log entries, filled linearly from line 0
	// (set-major order).
	logEnd int
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := make([][]way, cfg.Sets())
	for i := range sets {
		sets[i] = make([]way, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets}, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setIndex(addr uint64) uint64 {
	return (addr / uint64(c.cfg.LineBytes)) & uint64(c.cfg.Sets()-1)
}

func (c *Cache) tagOf(addr uint64) uint64 {
	return addr / uint64(c.cfg.LineBytes) / uint64(c.cfg.Sets())
}

// Access looks up addr, allocating on miss (write-allocate). It returns
// true on hit. Dirty evictions count as writebacks.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.Stats.Accesses++
	c.lruClock++
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		w := &set[i]
		if w.valid && !w.log && w.tag == tag {
			w.lru = c.lruClock
			if write {
				w.dirty = true
			}
			return true
		}
	}
	c.Stats.Misses++
	c.fill(set, tag, write)
	return false
}

// Probe looks up addr without side effects.
func (c *Cache) Probe(addr uint64) bool {
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && !set[i].log && set[i].tag == tag {
			return true
		}
	}
	return false
}

func (c *Cache) fill(set []way, tag uint64, write bool) {
	victim := -1
	var oldest uint32 = ^uint32(0)
	for i := range set {
		w := &set[i]
		if w.log {
			continue // log lines are not eligible replacement victims
		}
		if !w.valid {
			victim = i
			break
		}
		if w.lru <= oldest {
			oldest = w.lru
			victim = i
		}
	}
	if victim < 0 {
		// Every way holds log entries; the access bypasses the cache.
		return
	}
	w := &set[victim]
	if w.valid && w.dirty {
		c.Stats.Writebacks++
	}
	*w = way{tag: tag, valid: true, dirty: write, lru: c.lruClock}
}

// InvalidateAll drops every non-log line (e.g. when a core is handed to a
// different process).
func (c *Cache) InvalidateAll() {
	for _, set := range c.sets {
		for i := range set {
			if !set[i].log {
				set[i] = way{}
			}
		}
	}
}

// --- Load-Store Log repurposing (fig. 3) ---

// LogCapacityLines returns how many lines the cache can devote to the
// load-store log (all of them).
func (c *Cache) LogCapacityLines() int { return c.cfg.Lines() }

// LogLines returns the current value of the Load-Store Log End register.
func (c *Cache) LogLines() int { return c.logEnd }

// LogAppendLine claims the next line for log entries, evicting any
// resident data in place (fig. 3: filling starts at index 0 and proceeds
// linearly). It returns false when the log is full.
func (c *Cache) LogAppendLine() bool {
	if c.logEnd >= c.cfg.Lines() {
		return false
	}
	set := c.sets[c.logEnd%c.cfg.Sets()]
	w := &set[c.logEnd/c.cfg.Sets()]
	if w.valid && !w.log {
		c.Stats.LogEvictions++
		if w.dirty {
			c.Stats.Writebacks++
		}
	}
	*w = way{valid: true, log: true, lru: c.lruClock}
	c.logEnd++
	return true
}

// LogReset releases all log lines (checkpoint finished); the lines become
// invalid, so the cache refills from scratch when the core resumes
// main-mode work.
func (c *Cache) LogReset() {
	for i := 0; i < c.logEnd; i++ {
		set := c.sets[i%c.cfg.Sets()]
		set[i/c.cfg.Sets()] = way{}
	}
	c.logEnd = 0
}
