package cachesim

import (
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{Name: "t", SizeBytes: 4 << 10, Ways: 4, LineBytes: 64, HitCycles: 2, MSHRs: 4}
}

func TestConfigGeometry(t *testing.T) {
	cfg := testConfig()
	if cfg.Lines() != 64 {
		t.Errorf("lines = %d, want 64", cfg.Lines())
	}
	if cfg.Sets() != 16 {
		t.Errorf("sets = %d, want 16", cfg.Sets())
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestConfigValidateRejectsBadGeometry(t *testing.T) {
	bad := []Config{
		{Name: "zero"},
		{Name: "odd", SizeBytes: 3000, Ways: 4, LineBytes: 64},
		{Name: "nonpow2", SizeBytes: 12 * 64 * 4, Ways: 4, LineBytes: 64}, // 12 sets
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q: want validation error", cfg.Name)
		}
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := MustNew(testConfig())
	if c.Access(0x1000, false) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000, false) {
		t.Error("warm access missed")
	}
	if !c.Access(0x1030, false) {
		t.Error("same-line access missed")
	}
	if c.Stats.Accesses != 3 || c.Stats.Misses != 1 {
		t.Errorf("stats %+v", c.Stats)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := MustNew(testConfig()) // 16 sets, 4 ways
	setStride := uint64(64 * 16)
	// Fill one set with 4 distinct tags, touch the first again, then
	// bring a fifth: the victim must be the second (least recent).
	for i := uint64(0); i < 4; i++ {
		c.Access(i*setStride, false)
	}
	c.Access(0, false) // refresh tag 0
	c.Access(4*setStride, false)
	if !c.Access(0, false) {
		t.Error("most-recent line evicted")
	}
	if c.Access(1*setStride, false) {
		t.Error("LRU line survived")
	}
}

func TestWritebackCounting(t *testing.T) {
	c := MustNew(testConfig())
	setStride := uint64(64 * 16)
	c.Access(0, true) // dirty
	for i := uint64(1); i <= 4; i++ {
		c.Access(i*setStride, false) // evicts the dirty line eventually
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestProbeNoSideEffects(t *testing.T) {
	c := MustNew(testConfig())
	if c.Probe(0x2000) {
		t.Error("probe hit cold cache")
	}
	if c.Stats.Accesses != 0 {
		t.Error("probe counted as access")
	}
	c.Access(0x2000, false)
	if !c.Probe(0x2000) {
		t.Error("probe missed warm line")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	// Property: a working set no larger than the cache, accessed twice,
	// misses only on the first pass.
	f := func(seed uint8) bool {
		c := MustNew(testConfig())
		lines := c.Config().Lines()
		base := uint64(seed) * 4096
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < lines; i++ {
				c.Access(base+uint64(i*64), false)
			}
		}
		return c.Stats.Misses == uint64(lines)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLSLLogFillAndReset(t *testing.T) {
	c := MustNew(testConfig())
	// Warm a line that the log will displace.
	c.Access(0, true)
	if c.LogLines() != 0 {
		t.Error("fresh cache has log lines")
	}
	n := 0
	for c.LogAppendLine() {
		n++
	}
	if n != c.LogCapacityLines() {
		t.Errorf("log capacity %d, want %d", n, c.LogCapacityLines())
	}
	if c.LogAppendLine() {
		t.Error("append succeeded past capacity")
	}
	if c.Stats.LogEvictions != 1 {
		t.Errorf("log evictions = %d, want 1 (only line 0 was resident)", c.Stats.LogEvictions)
	}
	// The displaced line was dirty: must have written back.
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
	// Resident data displaced by the log must miss on re-access.
	if c.Access(0, false) {
		t.Error("logged-over line still hits")
	}
	c.LogReset()
	if c.LogLines() != 0 {
		t.Error("log end register not reset")
	}
	if !c.LogAppendLine() {
		t.Error("append after reset failed")
	}
}

func TestLogLinesNotVictims(t *testing.T) {
	c := MustNew(testConfig())
	// Devote every line to the log, then stream data through: accesses
	// must all miss and never disturb the log-end register.
	for c.LogAppendLine() {
	}
	for i := uint64(0); i < 256; i++ {
		if c.Access(i*64, false) {
			t.Fatal("hit in a fully-logged cache")
		}
	}
	if c.LogLines() != c.LogCapacityLines() {
		t.Error("demand traffic disturbed log lines")
	}
}

func TestInvalidateAllPreservesLog(t *testing.T) {
	c := MustNew(testConfig())
	c.Access(0x40, false)
	c.LogAppendLine()
	c.InvalidateAll()
	if c.Access(0x40, false) {
		t.Error("invalidate left data resident")
	}
	if c.LogLines() != 1 {
		t.Error("invalidate dropped log lines")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := &Hierarchy{
		L1I: MustNew(Config{Name: "i", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitCycles: 1, MSHRs: 2}),
		L1D: MustNew(Config{Name: "d", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitCycles: 2, MSHRs: 2}),
		L2:  MustNew(Config{Name: "2", SizeBytes: 8 << 10, Ways: 4, LineBytes: 64, HitCycles: 9, MSHRs: 4}),
	}
	r := h.Data(0x5000, false)
	if r.Level != 3 || r.BeyondNS != DefaultBeyondNS {
		t.Errorf("cold access: %+v", r)
	}
	r = h.Data(0x5000, false)
	if r.Level != 1 || r.Cycles != 2 || r.BeyondNS != 0 {
		t.Errorf("L1 hit: %+v", r)
	}
	// Evict from tiny L1 but keep in L2: stream 1KiB+ of other lines.
	for i := uint64(0); i < 32; i++ {
		h.Data(0x9000+i*64, false)
	}
	r = h.Data(0x5000, false)
	if r.Level != 2 || r.Cycles != 2+9 {
		t.Errorf("L2 hit: %+v", r)
	}

	called := false
	h.Beyond = func(addr uint64, write, fetch bool) float64 {
		called = true
		if fetch {
			t.Error("data access flagged as fetch")
		}
		return 42
	}
	r = h.Data(0xF0000, false)
	if !called || r.BeyondNS != 42 {
		t.Errorf("beyond hook not used: %+v", r)
	}

	fr := h.Fetch(0x5000)
	if fr.Level != 1 && fr.Level != 2 && fr.Level != 3 {
		t.Errorf("fetch result: %+v", fr)
	}
}

func TestAccessResultTotalCycles(t *testing.T) {
	r := AccessResult{Cycles: 10, BeyondNS: 20}
	if got := r.TotalCycles(2.0); got != 50 {
		t.Errorf("TotalCycles = %v, want 50", got)
	}
}

func TestFetchPathSeparateFromData(t *testing.T) {
	h := &Hierarchy{
		L1I: MustNew(Config{Name: "i", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitCycles: 1, MSHRs: 2}),
		L1D: MustNew(Config{Name: "d", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitCycles: 2, MSHRs: 2}),
		L2:  MustNew(Config{Name: "2", SizeBytes: 8 << 10, Ways: 4, LineBytes: 64, HitCycles: 9, MSHRs: 4}),
	}
	h.Fetch(0x4000)
	if h.L1D.Stats.Accesses != 0 {
		t.Error("fetch touched the data cache")
	}
	h.Data(0x4000, false)
	// Same line: the L2 was filled by the fetch, so the data access hits L2.
	if got := h.Data(0x8000, false); got.Level != 3 {
		t.Errorf("distinct line should go beyond: %+v", got)
	}
}

func TestHierarchyInvalidateAll(t *testing.T) {
	h := &Hierarchy{
		L1I: MustNew(Config{Name: "i", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitCycles: 1, MSHRs: 2}),
		L1D: MustNew(Config{Name: "d", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitCycles: 2, MSHRs: 2}),
		L2:  MustNew(Config{Name: "2", SizeBytes: 8 << 10, Ways: 4, LineBytes: 64, HitCycles: 9, MSHRs: 4}),
	}
	h.Data(0x40, false)
	h.Fetch(0x80)
	h.InvalidateAll()
	if h.L1D.Probe(0x40) || h.L1I.Probe(0x80) || h.L2.Probe(0x40) {
		t.Error("InvalidateAll left lines resident")
	}
}

func TestLogAppendFillsSetMajor(t *testing.T) {
	// Fig. 3: the log fills linearly from index 0. Appending Sets() lines
	// must claim way 0 of every set before touching way 1.
	c := MustNew(testConfig())
	sets := c.Config().Sets()
	warm := uint64(0)
	c.Access(warm, false) // way 0 of set 0 resident
	for i := 0; i < sets; i++ {
		c.LogAppendLine()
	}
	if c.Stats.LogEvictions != 1 {
		t.Errorf("log evictions %d, want 1 (only set 0 way 0 was resident)", c.Stats.LogEvictions)
	}
}
