package cachesim

// Hierarchy bundles a core's private caches. Accesses that miss the
// private levels escalate to the Beyond callback, which the system wires
// to the shared LLC + NoC + DRAM model and which reports its latency in
// nanoseconds (frequency-independent, since the mesh and DRAM do not
// scale with the core's DVFS state).
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache

	// Beyond is invoked for accesses missing L2. It returns the latency
	// in nanoseconds. A nil Beyond charges DefaultBeyondNS.
	Beyond func(addr uint64, write, fetch bool) float64
}

// DefaultBeyondNS is the flat LLC+DRAM latency charged when no system-
// level model is attached.
const DefaultBeyondNS = 30.0

// AccessResult describes where an access hit and what it costs.
type AccessResult struct {
	// Level is 1, 2 or 3 (3 meaning beyond-L2: LLC or memory).
	Level int
	// Cycles is the core-clock cycle cost from the private levels.
	Cycles int
	// BeyondNS is the frequency-independent portion (zero on private
	// hits).
	BeyondNS float64
}

// TotalCycles converts the result to core cycles at freqGHz.
func (r AccessResult) TotalCycles(freqGHz float64) float64 {
	return float64(r.Cycles) + r.BeyondNS*freqGHz
}

// Data performs a data-side access.
func (h *Hierarchy) Data(addr uint64, write bool) AccessResult {
	if h.L1D.Access(addr, write) {
		return AccessResult{Level: 1, Cycles: h.L1D.cfg.HitCycles}
	}
	cycles := h.L1D.cfg.HitCycles
	if h.L2 != nil {
		if h.L2.Access(addr, write) {
			return AccessResult{Level: 2, Cycles: cycles + h.L2.cfg.HitCycles}
		}
		cycles += h.L2.cfg.HitCycles
	}
	return AccessResult{Level: 3, Cycles: cycles, BeyondNS: h.beyond(addr, write, false)}
}

// Fetch performs an instruction-side access.
func (h *Hierarchy) Fetch(addr uint64) AccessResult {
	if h.L1I.Access(addr, false) {
		return AccessResult{Level: 1, Cycles: h.L1I.cfg.HitCycles}
	}
	cycles := h.L1I.cfg.HitCycles
	if h.L2 != nil {
		if h.L2.Access(addr, false) {
			return AccessResult{Level: 2, Cycles: cycles + h.L2.cfg.HitCycles}
		}
		cycles += h.L2.cfg.HitCycles
	}
	return AccessResult{Level: 3, Cycles: cycles, BeyondNS: h.beyond(addr, false, true)}
}

// DataAtLevel reproduces the cost of a data access whose hit level was
// recorded on an earlier identical run, without consulting or mutating
// the private tag state. Recorded level-3 accesses still invoke Beyond,
// so the shared LLC/NoC/DRAM model observes the same traffic in the
// same order as the original run.
func (h *Hierarchy) DataAtLevel(addr uint64, write bool, level int) AccessResult {
	cycles := h.L1D.cfg.HitCycles
	if level == 1 {
		return AccessResult{Level: 1, Cycles: cycles}
	}
	if h.L2 != nil {
		cycles += h.L2.cfg.HitCycles
	}
	if level == 2 {
		return AccessResult{Level: 2, Cycles: cycles}
	}
	return AccessResult{Level: 3, Cycles: cycles, BeyondNS: h.beyond(addr, write, false)}
}

// FetchAtLevel is DataAtLevel for the instruction side.
func (h *Hierarchy) FetchAtLevel(addr uint64, level int) AccessResult {
	cycles := h.L1I.cfg.HitCycles
	if level == 1 {
		return AccessResult{Level: 1, Cycles: cycles}
	}
	if h.L2 != nil {
		cycles += h.L2.cfg.HitCycles
	}
	if level == 2 {
		return AccessResult{Level: 2, Cycles: cycles}
	}
	return AccessResult{Level: 3, Cycles: cycles, BeyondNS: h.beyond(addr, false, true)}
}

func (h *Hierarchy) beyond(addr uint64, write, fetch bool) float64 {
	if h.Beyond == nil {
		return DefaultBeyondNS
	}
	return h.Beyond(addr, write, fetch)
}

// InvalidateAll clears every private level.
func (h *Hierarchy) InvalidateAll() {
	h.L1I.InvalidateAll()
	h.L1D.InvalidateAll()
	if h.L2 != nil {
		h.L2.InvalidateAll()
	}
}
