package gap

import (
	"math"
	"testing"

	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

func testGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	gs := map[string]*Graph{
		"uniform": Uniform(300, 8, 42),
		"kron":    Kronecker(8, 8, 7),
	}
	for name, g := range gs {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	return gs
}

// runToHalt executes the program and returns its memory.
func runToHalt(t *testing.T, prog *isa.Program, limit int64) *emu.Memory {
	t.Helper()
	m, err := emu.NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(limit, nil); err != nil {
		t.Fatal(err)
	}
	if !m.Harts[0].Halted {
		t.Fatal("kernel did not halt within budget")
	}
	return m.Mem
}

func readWords(m *emu.Memory, base uint64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		v, _ := m.Load(base+uint64(i*8), 8)
		out[i] = int64(v)
	}
	return out
}

func readFloats(m *emu.Memory, base uint64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		v, _ := m.Load(base+uint64(i*8), 8)
		out[i] = math.Float64frombits(v)
	}
	return out
}

func TestBFSMatchesReference(t *testing.T) {
	for name, g := range testGraphs(t) {
		prog, parOff := BFS(g, 0)
		mem := runToHalt(t, prog, 50_000_000)
		got := readWords(mem, isa.DefaultDataBase+parOff, g.N)
		want := RefBFS(g, 0)
		for v := range want {
			// Parent arrays can differ in ties only if visit order
			// differs; the kernel mirrors the reference exactly.
			if got[v] != want[v] {
				t.Fatalf("%s: parent[%d] = %d, want %d", name, v, got[v], want[v])
			}
		}
	}
}

func TestPageRankMatchesReferenceBitExact(t *testing.T) {
	for name, g := range testGraphs(t) {
		prog, scoreOff := PageRank(g, 5)
		mem := runToHalt(t, prog, 100_000_000)
		got := readFloats(mem, isa.DefaultDataBase+scoreOff, g.N)
		want := RefPageRank(g, 5)
		var sum float64
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: score[%d] = %v, want %v (bit-exact)", name, v, got[v], want[v])
			}
			sum += got[v]
		}
		if sum < 0.5 || sum > 1.5 {
			t.Errorf("%s: scores sum to %v, want ~1", name, sum)
		}
	}
}

func TestSSSPMatchesReference(t *testing.T) {
	for name, g := range testGraphs(t) {
		prog, distOff := SSSP(g, 0)
		mem := runToHalt(t, prog, 200_000_000)
		got := readWords(mem, isa.DefaultDataBase+distOff, g.N)
		want := RefSSSP(g, 0)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: dist[%d] = %d, want %d", name, v, got[v], want[v])
			}
		}
	}
}

func TestCCMatchesReference(t *testing.T) {
	for name, g := range testGraphs(t) {
		prog, compOff := CC(g)
		mem := runToHalt(t, prog, 200_000_000)
		got := readWords(mem, isa.DefaultDataBase+compOff, g.N)
		want := RefCC(g)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: comp[%d] = %d, want %d", name, v, got[v], want[v])
			}
		}
	}
}

func TestTCMatchesReference(t *testing.T) {
	for name, g := range testGraphs(t) {
		prog, outOff := TC(g)
		mem := runToHalt(t, prog, 500_000_000)
		got := readWords(mem, isa.DefaultDataBase+outOff, 1)[0]
		want := RefTC(g)
		if got != want {
			t.Fatalf("%s: triangles = %d, want %d", name, got, want)
		}
		if name == "kron" && want == 0 {
			t.Error("kron graph has no triangles; generator too sparse")
		}
	}
}

func TestBCMatchesReferenceBitExact(t *testing.T) {
	for name, g := range testGraphs(t) {
		prog, deltaOff := BC(g, 0)
		mem := runToHalt(t, prog, 200_000_000)
		got := readFloats(mem, isa.DefaultDataBase+deltaOff, g.N)
		want := RefBC(g, 0)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: delta[%d] = %v, want %v", name, v, got[v], want[v])
			}
		}
	}
}

func TestKroneckerIsSkewed(t *testing.T) {
	g := Kronecker(10, 8, 3)
	var maxDeg int64
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(g.M()) / float64(g.N)
	if float64(maxDeg) < 8*avg {
		t.Errorf("max degree %d not >> average %.1f; not power-law-ish", maxDeg, avg)
	}
}

func TestGraphValidateCatchesCorruption(t *testing.T) {
	g := Uniform(50, 4, 1)
	g.Edges[0] = int64(g.N) + 5
	if err := g.Validate(); err == nil {
		t.Error("out-of-range edge not caught")
	}
}
