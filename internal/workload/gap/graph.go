//paralint:deterministic

// Package gap implements the GAP benchmark suite kernels (Beamer et al.)
// as real programs in the repo ISA over synthetic graphs: BFS, PageRank,
// SSSP (Bellman-Ford), Connected Components (label propagation), Triangle
// Counting and Betweenness Centrality (single-source Brandes). These are
// the actual algorithms actually executed in simulated memory, so the
// suite's memory-bound pointer-chasing behaviour — the reason "even a
// small number of checker cores can keep up" in fig. 9 — arises naturally
// rather than being parameterised.
package gap

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a directed graph in CSR form with sorted adjacency lists.
type Graph struct {
	N       int
	Offsets []int64 // length N+1
	Edges   []int64 // length M, sorted within each vertex
}

// M returns the edge count.
func (g *Graph) M() int { return len(g.Edges) }

// Degree returns vertex v's out-degree.
func (g *Graph) Degree(v int) int64 { return g.Offsets[v+1] - g.Offsets[v] }

// Neighbors returns v's adjacency slice.
func (g *Graph) Neighbors(v int) []int64 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// Validate checks CSR structural invariants.
func (g *Graph) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("gap: offsets length %d for %d vertices", len(g.Offsets), g.N)
	}
	if g.Offsets[0] != 0 || g.Offsets[g.N] != int64(len(g.Edges)) {
		return fmt.Errorf("gap: offset bounds broken")
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return fmt.Errorf("gap: offsets not monotone at %d", v)
		}
		adj := g.Neighbors(v)
		for i, u := range adj {
			if u < 0 || u >= int64(g.N) {
				return fmt.Errorf("gap: edge %d->%d out of range", v, u)
			}
			if i > 0 && adj[i-1] > u {
				return fmt.Errorf("gap: adjacency of %d not sorted", v)
			}
		}
	}
	return nil
}

// build assembles a CSR graph from an adjacency map, deduplicating and
// sorting, and symmetrising when undirected.
func build(n int, adj [][]int64, undirected bool) *Graph {
	if undirected {
		sym := make([][]int64, n)
		for v := range adj {
			for _, u := range adj[v] {
				sym[v] = append(sym[v], u)
				sym[int(u)] = append(sym[int(u)], int64(v))
			}
		}
		adj = sym
	}
	g := &Graph{N: n, Offsets: make([]int64, n+1)}
	for v := 0; v < n; v++ {
		lst := adj[v]
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		dedup := lst[:0]
		var prev int64 = -1
		for _, u := range lst {
			if u != prev && u != int64(v) {
				dedup = append(dedup, u)
				prev = u
			}
		}
		g.Edges = append(g.Edges, dedup...)
		g.Offsets[v+1] = int64(len(g.Edges))
	}
	return g
}

// Uniform generates an undirected graph with n vertices and roughly
// n*degree/2 distinct edges placed uniformly at random.
func Uniform(n, degree int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int64, n)
	for v := 0; v < n; v++ {
		for d := 0; d < degree/2+1; d++ {
			adj[v] = append(adj[v], int64(rng.Intn(n)))
		}
	}
	return build(n, adj, true)
}

// Kronecker generates a skewed, power-law-ish undirected graph in the
// style of the Graph500/GAP generator: edges are placed by recursively
// descending a 2x2 probability matrix, concentrating edges on low-ID
// hub vertices.
func Kronecker(scale, edgeFactor int, seed int64) *Graph {
	n := 1 << scale
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int64, n)
	const a, b, c = 0.57, 0.19, 0.19
	for e := 0; e < n*edgeFactor; e++ {
		var u, v int64
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a: // upper-left
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		adj[u] = append(adj[u], v)
	}
	return build(n, adj, true)
}

// --- reference implementations (used by tests to verify the assembly
// kernels' results bit-for-bit) ---

// RefBFS returns the parent array of a BFS from src (-1 = unreached),
// visiting neighbours in adjacency order.
func RefBFS(g *Graph, src int) []int64 {
	parent := make([]int64, g.N)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = int64(src)
	queue := []int64{int64(src)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(int(v)) {
			if parent[u] == -1 {
				parent[u] = v
				queue = append(queue, u)
			}
		}
	}
	return parent
}

// RefPageRank runs iters iterations of push-style PageRank with damping
// 0.85, in exactly the operation order the assembly kernel uses, so the
// float64 results match bit-for-bit.
func RefPageRank(g *Graph, iters int) []float64 {
	n := g.N
	score := make([]float64, n)
	next := make([]float64, n)
	initial := 1.0 / float64(n)
	for i := range score {
		score[i] = initial
	}
	base := 0.15 / float64(n)
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			deg := g.Degree(v)
			if deg == 0 {
				continue
			}
			contrib := score[v] / float64(deg)
			for _, u := range g.Neighbors(v) {
				next[u] += contrib
			}
		}
		for v := 0; v < n; v++ {
			score[v] = base + 0.85*next[v]
			next[v] = 0
		}
	}
	return score
}

// RefSSSP returns Bellman-Ford distances from src with the kernel's
// synthetic edge weights w(v,u) = ((v XOR u) AND 15) + 1.
func RefSSSP(g *Graph, src int) []int64 {
	const inf = int64(1) << 60
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for round := 0; round < g.N; round++ {
		changed := false
		for v := 0; v < g.N; v++ {
			if dist[v] == inf {
				continue
			}
			for _, u := range g.Neighbors(v) {
				w := (int64(v)^u)&15 + 1
				if dist[v]+w < dist[u] {
					dist[u] = dist[v] + w
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// RefCC returns connected-component labels by min-label propagation.
func RefCC(g *Graph) []int64 {
	comp := make([]int64, g.N)
	for i := range comp {
		comp[i] = int64(i)
	}
	for {
		changed := false
		for v := 0; v < g.N; v++ {
			for _, u := range g.Neighbors(v) {
				if comp[u] < comp[v] {
					comp[v] = comp[u]
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return comp
}

// RefTC counts triangles: for each v, each neighbour u > v, the size of
// the sorted-intersection of their adjacency lists restricted to w > u.
func RefTC(g *Graph) int64 {
	var count int64
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			if u <= int64(v) {
				continue
			}
			a, b := g.Neighbors(v), g.Neighbors(int(u))
			i, j := 0, 0
			for i < len(a) && j < len(b) {
				switch {
				case a[i] < b[j]:
					i++
				case a[i] > b[j]:
					j++
				default:
					if a[i] > u {
						count++
					}
					i++
					j++
				}
			}
		}
	}
	return count
}

// RefBC returns single-source Brandes betweenness contributions from src,
// in the kernel's operation order (BFS order forward, reverse order
// backward) so float64 results match exactly.
func RefBC(g *Graph, src int) []float64 {
	n := g.N
	dist := make([]int64, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	sigma[src] = 1
	order := []int64{int64(src)}
	for head := 0; head < len(order); head++ {
		v := order[head]
		for _, u := range g.Neighbors(int(v)) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				order = append(order, u)
			}
			if dist[u] == dist[v]+1 {
				sigma[u] += sigma[v]
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		for _, u := range g.Neighbors(int(w)) {
			if dist[u] == dist[w]+1 {
				delta[w] += sigma[w] / sigma[u] * (1 + delta[u])
			}
		}
	}
	return delta
}
