//paralint:deterministic

// Package spec provides synthetic stand-ins for the SPECspeed 2017
// benchmarks (SPEC is proprietary; see DESIGN.md's substitution table).
// Each benchmark is a generated program whose instruction mix, working
// set, pointer-dependence, branch behaviour and instruction-cache
// footprint follow the benchmark's published characterisation — the
// properties that determine the paper's results: main-core IPC,
// checker-core IPC on the same stream, and load-store-log traffic per
// instruction. bwaves is generated FP-divide-heavy (the paper's outlier),
// gcc/perlbench/xalancbmk instruction-cache-hungry, mcf/omnetpp
// pointer-chasing and memory-bound, exchange2/imagick compute-bound.
package spec

import (
	"fmt"
	"math/rand"

	"paraverser/internal/asm"
	"paraverser/internal/isa"
)

// Profile parameterises one synthetic benchmark.
type Profile struct {
	Name string

	// Instruction-mix weights (relative, not normalised).
	IntALU float64
	IntMul float64
	IntDiv float64
	FPAdd  float64
	FPMul  float64
	FPDiv  float64
	Load   float64
	Store  float64
	Branch float64

	// BranchRandom is the fraction of generated branches whose direction
	// depends on pseudo-random data (unpredictable).
	BranchRandom float64
	// FPDepChain makes FP divides dependent on each other (bwaves-style
	// latency chains) rather than independent.
	FPDepChain bool
	// WorkingSet is the data footprint in bytes (power of two).
	WorkingSet int
	// ChaseFrac is the fraction of loads that are dependent pointer
	// chases (mcf/omnetpp).
	ChaseFrac float64
	// Streaming makes non-chase memory accesses walk the working set
	// sequentially (the FP suite's array sweeps) instead of randomly.
	Streaming bool
	// Blocks is the number of distinct code blocks; large values blow
	// the L1 instruction cache (gcc/perlbench/xalancbmk).
	Blocks int
	// OpsPerBlock is the number of mix-sampled operations per block.
	OpsPerBlock int
	// BlockRepeat makes each block an inner loop executed this many
	// times per visit (hot code), softening instruction-cache thrash to
	// realistic levels. Zero means 1.
	BlockRepeat int
	// AtomicFrac sprinkles SWP/GLD/SST operations into the memory mix.
	AtomicFrac float64
	// NonRepeatFrac sprinkles RAND/CYCLE instructions.
	NonRepeatFrac float64
}

// Profiles returns every SPECspeed 2017 benchmark model, in the paper's
// usual presentation order.
func Profiles() []Profile {
	return []Profile{
		// --- SPECspeed 2017 int ---
		{Name: "perlbench", IntALU: 50, IntMul: 2, Load: 22, Store: 12, Branch: 14,
			BranchRandom: 0.10, WorkingSet: 1 << 22, ChaseFrac: 0.15, Blocks: 340, OpsPerBlock: 24,
			BlockRepeat: 3, NonRepeatFrac: 0.002},
		{Name: "gcc", IntALU: 48, IntMul: 1, Load: 24, Store: 11, Branch: 16,
			BranchRandom: 0.12, WorkingSet: 1 << 23, ChaseFrac: 0.2, Blocks: 480, OpsPerBlock: 22,
			BlockRepeat: 3, NonRepeatFrac: 0.001},
		{Name: "mcf", IntALU: 36, IntMul: 1, Load: 34, Store: 9, Branch: 20,
			BranchRandom: 0.20, WorkingSet: 1 << 26, ChaseFrac: 0.6, Blocks: 20, OpsPerBlock: 26},
		{Name: "omnetpp", IntALU: 40, IntMul: 1, Load: 30, Store: 12, Branch: 17,
			BranchRandom: 0.15, WorkingSet: 1 << 25, ChaseFrac: 0.45, Blocks: 180, OpsPerBlock: 24,
			BlockRepeat: 2, NonRepeatFrac: 0.003},
		{Name: "xalancbmk", IntALU: 44, IntMul: 1, Load: 28, Store: 9, Branch: 18,
			BranchRandom: 0.08, WorkingSet: 1 << 24, ChaseFrac: 0.3, Blocks: 420, OpsPerBlock: 22, BlockRepeat: 3},
		{Name: "x264", IntALU: 52, IntMul: 6, Load: 24, Store: 10, Branch: 8,
			BranchRandom: 0.05, Streaming: true, WorkingSet: 1 << 23, Blocks: 60, OpsPerBlock: 30},
		{Name: "deepsjeng", IntALU: 46, IntMul: 3, IntDiv: 0.4, Load: 24, Store: 9, Branch: 18,
			BranchRandom: 0.25, WorkingSet: 1 << 23, ChaseFrac: 0.1, Blocks: 90, OpsPerBlock: 24},
		{Name: "leela", IntALU: 44, IntMul: 4, IntDiv: 0.5, Load: 26, Store: 9, Branch: 17,
			BranchRandom: 0.22, WorkingSet: 1 << 22, ChaseFrac: 0.15, Blocks: 80, OpsPerBlock: 24},
		{Name: "exchange2", IntALU: 58, IntMul: 2, Load: 16, Store: 9, Branch: 15,
			BranchRandom: 0.08, WorkingSet: 1 << 16, Blocks: 40, OpsPerBlock: 28},
		{Name: "xz", IntALU: 46, IntMul: 2, Load: 28, Store: 10, Branch: 14,
			BranchRandom: 0.25, WorkingSet: 1 << 25, ChaseFrac: 0.25, Blocks: 40, OpsPerBlock: 26},

		// --- SPECspeed 2017 fp ---
		{Name: "bwaves", IntALU: 18, FPAdd: 22, FPMul: 22, FPDiv: 9, Load: 20, Store: 6, Branch: 3,
			BranchRandom: 0.02, FPDepChain: true, Streaming: true, WorkingSet: 1 << 23, Blocks: 16, OpsPerBlock: 40},
		{Name: "cactuBSSN", IntALU: 20, FPAdd: 26, FPMul: 24, FPDiv: 1.5, Load: 18, Store: 7, Branch: 3,
			BranchRandom: 0.02, Streaming: true, WorkingSet: 1 << 24, Blocks: 60, OpsPerBlock: 40},
		{Name: "lbm", IntALU: 14, FPAdd: 26, FPMul: 22, FPDiv: 1, Load: 22, Store: 12, Branch: 3,
			BranchRandom: 0.02, Streaming: true, WorkingSet: 1 << 26, Blocks: 12, OpsPerBlock: 44},
		{Name: "wrf", IntALU: 24, FPAdd: 22, FPMul: 18, FPDiv: 2, Load: 20, Store: 8, Branch: 6,
			BranchRandom: 0.06, Streaming: true, WorkingSet: 1 << 24, Blocks: 200, OpsPerBlock: 30, BlockRepeat: 2},
		{Name: "cam4", IntALU: 26, FPAdd: 20, FPMul: 17, FPDiv: 2, Load: 20, Store: 8, Branch: 7,
			BranchRandom: 0.08, Streaming: true, WorkingSet: 1 << 24, Blocks: 220, OpsPerBlock: 28, BlockRepeat: 2},
		{Name: "pop2", IntALU: 24, FPAdd: 22, FPMul: 18, FPDiv: 2.5, Load: 20, Store: 8, Branch: 6,
			BranchRandom: 0.05, Streaming: true, WorkingSet: 1 << 24, Blocks: 160, OpsPerBlock: 30, BlockRepeat: 2},
		{Name: "imagick", IntALU: 26, FPAdd: 22, FPMul: 26, FPDiv: 2, Load: 16, Store: 5, Branch: 5,
			BranchRandom: 0.04, Streaming: true, WorkingSet: 1 << 20, Blocks: 30, OpsPerBlock: 36},
		{Name: "nab", IntALU: 26, FPAdd: 22, FPMul: 22, FPDiv: 1.5, Load: 18, Store: 6, Branch: 5,
			BranchRandom: 0.05, Streaming: true, WorkingSet: 1 << 22, Blocks: 50, OpsPerBlock: 32},
		{Name: "fotonik3d", IntALU: 18, FPAdd: 26, FPMul: 22, FPDiv: 0.8, Load: 22, Store: 9, Branch: 3,
			BranchRandom: 0.02, Streaming: true, WorkingSet: 1 << 25, Blocks: 24, OpsPerBlock: 40},
		{Name: "roms", IntALU: 20, FPAdd: 24, FPMul: 20, FPDiv: 2, Load: 22, Store: 9, Branch: 4,
			BranchRandom: 0.03, Streaming: true, WorkingSet: 1 << 25, Blocks: 60, OpsPerBlock: 34},
	}
}

// ByName finds a profile.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("spec: unknown benchmark %q", name)
}

// Names lists every benchmark.
func Names() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Register conventions in generated code.
const (
	rLCG    = isa.Reg(28) // running pseudo-random state
	rBase   = isa.Reg(27) // data base
	rMask   = isa.Reg(26) // working-set mask (8-byte aligned)
	rChase  = isa.Reg(25) // current pointer-chase offset
	rIters  = isa.Reg(24) // remaining outer iterations
	rStream = isa.Reg(23) // sequential stream offset (Streaming profiles)
	rRep    = isa.Reg(22) // inner block-repeat counter
	rT0     = isa.Reg(20)
	rT1     = isa.Reg(21)
)

// Build generates the benchmark program. iters is the number of block
// executions; total instructions are roughly iters*(OpsPerBlock*~2+10).
func (p Profile) Build(iters int64) (*isa.Program, error) {
	if p.WorkingSet&(p.WorkingSet-1) != 0 || p.WorkingSet < 4096 {
		return nil, fmt.Errorf("spec %s: working set %d not a power of two >= 4KiB", p.Name, p.WorkingSet)
	}
	if p.Blocks < 1 || p.OpsPerBlock < 1 {
		return nil, fmt.Errorf("spec %s: empty code shape", p.Name)
	}
	rng := rand.New(rand.NewSource(seedFor(p.Name)))
	b := asm.New("spec." + p.Name)

	// Data: working set initialised with aligned in-set offsets so
	// pointer chases stay inside the set. Streaming profiles address at
	// immediate offsets up to OpsPerBlock*8 past the walking pointer,
	// which wraps to at most WorkingSet-8 — the tail pad keeps those
	// accesses inside the declared segment (zero-filled, so results are
	// unchanged; the wrap mask still covers exactly the working set).
	pad := 0
	if p.Streaming {
		pad = (p.OpsPerBlock + 1) * 8
	}
	ws := b.Reserve(p.WorkingSet + pad)
	for off := 0; off < p.WorkingSet; off += 8 {
		v := uint64(rng.Intn(p.WorkingSet)) &^ 7
		b.SetWord64(ws+uint64(off), v)
	}

	// Prologue.
	b.Li(rBase, int64(isa.DefaultDataBase+ws))
	b.Li(rMask, int64(p.WorkingSet-1)&^7)
	b.Li(rLCG, int64(seedFor(p.Name))|1)
	b.Li(rChase, 0)
	b.Mov(rStream, rBase)
	b.Li(rIters, iters)
	for i := isa.Reg(1); i <= 14; i++ {
		b.Li(rT0, int64(i)*3+1)
		b.Fcvtif(i, rT0)
	}
	// Seed the block scratch pool (r5-r14): the emulator zero-fills the
	// register file, so reading these uninitialised would still be
	// deterministic, but distinct non-zero seeds keep the generated ALU
	// mix from collapsing onto zero values and make the programs clean
	// under the static verifier's use-before-def rule.
	for i := isa.Reg(5); i <= 14; i++ {
		b.Li(i, int64(i)*2654435761+17)
	}
	b.Jmp("block0")
	b.Label("exit")
	b.Halt()

	// Blocks form a fixed chain visiting every block per round (the
	// realistic case: program phases repeat, so branch targets are
	// learnable, while a code footprint beyond the L1I still streams
	// through it). Each block steps the LCG so data addresses stay
	// well distributed.
	order := rng.Perm(p.Blocks)
	next := make([]int, p.Blocks)
	for i, blk := range order {
		next[blk] = order[(i+1)%p.Blocks]
	}
	repeat := p.BlockRepeat
	if repeat < 1 {
		repeat = 1
	}
	for blk := 0; blk < p.Blocks; blk++ {
		b.Label(fmt.Sprintf("block%d", blk))
		b.Li(rRep, int64(repeat))
		b.Label(fmt.Sprintf("block%d_hot", blk))
		// Advance the pseudo-random stream (xorshift).
		b.Srli(rT0, rLCG, 13)
		b.Xor(rLCG, rLCG, rT0)
		b.Slli(rT0, rLCG, 7)
		b.Xor(rLCG, rLCG, rT0)
		p.emitBlock(b, rng, blk)
		if p.Streaming {
			b.Addi(rStream, rStream, int64(p.OpsPerBlock*8))
			b.Sub(rStream, rStream, rBase)
			b.And(rStream, rStream, rMask)
			b.Add(rStream, rStream, rBase)
		}
		b.Addi(rRep, rRep, -1)
		b.Blt(isa.Zero, rRep, fmt.Sprintf("block%d_hot", blk))
		b.Addi(rIters, rIters, -1)
		b.Blt(rIters, isa.Zero, "exit")
		b.Jmp(fmt.Sprintf("block%d", next[blk]))
	}

	return b.Build()
}

// MustBuild is Build for the static profile table.
func (p Profile) MustBuild(iters int64) *isa.Program {
	prog, err := p.Build(iters)
	if err != nil {
		panic(err)
	}
	return prog
}

// opKind enumerates generator op choices.
type opKind int

const (
	opIntALU opKind = iota
	opIntMul
	opIntDiv
	opFPAdd
	opFPMul
	opFPDiv
	opLoad
	opStore
	opBranch
)

func (p Profile) weights() []float64 {
	return []float64{p.IntALU, p.IntMul, p.IntDiv, p.FPAdd, p.FPMul, p.FPDiv, p.Load, p.Store, p.Branch}
}

func sample(rng *rand.Rand, w []float64) opKind {
	var total float64
	for _, x := range w {
		total += x
	}
	r := rng.Float64() * total
	for i, x := range w {
		r -= x
		if r < 0 {
			return opKind(i)
		}
	}
	return opIntALU
}

// emitBlock generates one block's operation sequence.
func (p Profile) emitBlock(b *asm.Builder, rng *rand.Rand, blk int) {
	w := p.weights()
	intReg := func() isa.Reg { return isa.Reg(5 + rng.Intn(10)) } // r5-r14
	fpReg := func() isa.Reg { return isa.Reg(1 + rng.Intn(12)) }  // f1-f12

	// Streaming profiles address memory at immediate offsets from a
	// walking base pointer (an unrolled array sweep: one instruction per
	// access, realistic memory density); others scramble an address from
	// the LCG.
	streamOff := int64(0)
	addrInto := func(shift int) isa.Reg {
		if p.Streaming {
			streamOff += 8
			return rStream
		}
		b.Srli(rT0, rLCG, int64(shift))
		b.Xori(rLCG, rLCG, int64((blk*2654435761+shift)&0x7FFFFF))
		b.And(rT0, rT0, rMask)
		b.Add(rT0, rBase, rT0)
		streamOff = 0
		return rT0
	}
	curOff := func() int64 {
		if p.Streaming {
			return streamOff
		}
		return 0
	}

	for op := 0; op < p.OpsPerBlock; op++ {
		if p.NonRepeatFrac > 0 && rng.Float64() < p.NonRepeatFrac {
			if rng.Intn(2) == 0 {
				b.Rand(intReg())
			} else {
				b.Cycle(intReg())
			}
			continue
		}
		switch sample(rng, w) {
		case opIntALU:
			switch rng.Intn(4) {
			case 0:
				b.Add(intReg(), intReg(), intReg())
			case 1:
				b.Xor(intReg(), intReg(), intReg())
			case 2:
				b.Addi(intReg(), intReg(), int64(rng.Intn(255))-127)
			default:
				b.Slli(intReg(), intReg(), int64(rng.Intn(15)+1))
			}
		case opIntMul:
			b.Mul(intReg(), intReg(), intReg())
		case opIntDiv:
			r := intReg()
			b.Ori(rT1, r, 1) // avoid divide-by-zero
			b.Div(intReg(), intReg(), rT1)
		case opFPAdd:
			b.Fadd(fpReg(), fpReg(), fpReg())
		case opFPMul:
			b.Fmul(fpReg(), fpReg(), fpReg())
		case opFPDiv:
			if p.FPDepChain {
				// Dependent chain: each divide waits for the previous
				// (bwaves' latency-bound behaviour on in-order cores).
				b.Fdiv(13, 13, 14)
				b.Fmax(14, 14, 14) // keep divisor stable
			} else {
				b.Fdiv(fpReg(), fpReg(), 14)
			}
		case opLoad:
			if p.AtomicFrac > 0 && rng.Float64() < p.AtomicFrac {
				r := addrInto(rng.Intn(16) + 5)
				b.Swp(intReg(), r, rT1)
				continue
			}
			if rng.Float64() < p.ChaseFrac {
				// Dependent chase: the loaded value is the next offset.
				b.And(rChase, rChase, rMask)
				b.Add(rT0, rBase, rChase)
				b.Ld(8, rChase, rT0, 0)
			} else {
				r := addrInto(rng.Intn(16) + 5)
				if rng.Intn(8) == 0 {
					b.Gld(8, intReg(), r, rBase, curOff())
				} else if p.FPAdd > p.IntALU {
					b.Fld(fpReg(), r, curOff())
				} else {
					b.Ld(8, intReg(), r, curOff())
				}
			}
		case opStore:
			r := addrInto(rng.Intn(16) + 5)
			if p.FPAdd > p.IntALU {
				b.Fst(fpReg(), r, curOff())
			} else {
				b.St(8, intReg(), r, curOff())
			}
		case opBranch:
			lbl := fmt.Sprintf("b%d_%d", blk, op)
			if rng.Float64() < p.BranchRandom {
				b.Andi(rT1, rLCG, 1<<uint(rng.Intn(4)))
				b.Beq(rT1, isa.Zero, lbl)
			} else {
				b.Bge(rIters, isa.Zero, lbl) // almost always taken
				b.Add(intReg(), intReg(), intReg())
			}
			b.Add(intReg(), intReg(), intReg())
			b.Label(lbl)
		}
	}
}

func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h | 1
}
