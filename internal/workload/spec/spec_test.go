package spec

import (
	"testing"

	"paraverser/internal/cpu"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

func TestAllProfilesBuildAndRun(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := p.Build(200)
			if err != nil {
				t.Fatal(err)
			}
			if err := prog.Validate(); err != nil {
				t.Fatal(err)
			}
			n, err := emu.RunProgram(prog, 1_000_000, nil)
			if err != nil {
				t.Fatal(err)
			}
			if n < 1000 {
				t.Errorf("only %d instructions executed", n)
			}
		})
	}
}

func TestProfilesDeterministic(t *testing.T) {
	p, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	a := p.MustBuild(50)
	b := p.MustBuild(50)
	if len(a.Insts) != len(b.Insts) {
		t.Fatal("non-deterministic code size")
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("bwaves"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("want error for unknown benchmark")
	}
	if len(Names()) != 20 {
		t.Errorf("%d benchmarks, want 20 (SPECspeed 2017)", len(Names()))
	}
}

// classCounts runs the benchmark and tallies instruction classes.
func classCounts(t *testing.T, name string, limit int64) map[isa.Class]int64 {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog := p.MustBuild(1 << 30)
	counts := make(map[isa.Class]int64)
	if _, err := emu.RunProgram(prog, limit, func(_ int, e *emu.Effect) error {
		counts[e.Class]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return counts
}

func TestBwavesIsFdivHeavy(t *testing.T) {
	bw := classCounts(t, "bwaves", 100_000)
	gcc := classCounts(t, "gcc", 100_000)
	bwFdiv := float64(bw[isa.ClassFPDiv]) / 100_000
	gccFdiv := float64(gcc[isa.ClassFPDiv]) / 100_000
	if bwFdiv < 0.02 {
		t.Errorf("bwaves fdiv fraction %.4f too low", bwFdiv)
	}
	if gccFdiv > bwFdiv/10 {
		t.Errorf("gcc fdiv fraction %.4f not << bwaves %.4f", gccFdiv, bwFdiv)
	}
}

func TestIntBenchmarksHaveNoFP(t *testing.T) {
	for _, name := range []string{"mcf", "exchange2", "xz"} {
		c := classCounts(t, name, 50_000)
		fp := c[isa.ClassFPAdd] + c[isa.ClassFPMul] + c[isa.ClassFPDiv]
		// The prologue converts a few constants; beyond that, none.
		if fp > 20 {
			t.Errorf("%s: %d FP instructions", name, fp)
		}
	}
}

// ipcOn measures IPC of a benchmark on a core model.
func ipcOn(t *testing.T, name string, cfg cpu.Config, freq float64, limit int64) float64 {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog := p.MustBuild(1 << 30)
	core := cpu.MustNewCore(cfg, freq, cpu.ModeMain)
	if _, err := emu.RunProgram(prog, limit, func(_ int, e *emu.Effect) error {
		core.Consume(e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return core.IPC()
}

func TestComputeBoundFasterThanMemoryBound(t *testing.T) {
	exch := ipcOn(t, "exchange2", cpu.X2(), 3.0, 200_000)
	mcf := ipcOn(t, "mcf", cpu.X2(), 3.0, 200_000)
	if exch < 2*mcf {
		t.Errorf("exchange2 IPC %.2f not >> mcf IPC %.2f", exch, mcf)
	}
}

func TestGccStressesICache(t *testing.T) {
	p, _ := ByName("gcc")
	prog := p.MustBuild(1 << 30)
	core := cpu.MustNewCore(cpu.X2(), 3.0, cpu.ModeMain)
	if _, err := emu.RunProgram(prog, 200_000, func(_ int, e *emu.Effect) error {
		core.Consume(e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rate := core.Hier.L1I.Stats.MissRate(); rate < 0.01 {
		t.Errorf("gcc L1I miss rate %.4f too low for an icache-hungry benchmark", rate)
	}

	// exchange2's tiny code footprint should hit nearly always.
	p2, _ := ByName("exchange2")
	prog2 := p2.MustBuild(1 << 30)
	core2 := cpu.MustNewCore(cpu.X2(), 3.0, cpu.ModeMain)
	if _, err := emu.RunProgram(prog2, 200_000, func(_ int, e *emu.Effect) error {
		core2.Consume(e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if r1, r2 := core.Hier.L1I.Stats.MissRate(), core2.Hier.L1I.Stats.MissRate(); r2 > r1/2 {
		t.Errorf("exchange2 L1I miss rate %.4f not << gcc %.4f", r2, r1)
	}
}

func TestBadProfilesRejected(t *testing.T) {
	p := Profile{Name: "bad", WorkingSet: 5000, Blocks: 1, OpsPerBlock: 1}
	if _, err := p.Build(10); err == nil {
		t.Error("want error for non-power-of-two working set")
	}
	p2 := Profile{Name: "bad2", WorkingSet: 4096}
	if _, err := p2.Build(10); err == nil {
		t.Error("want error for zero blocks")
	}
}
