//paralint:deterministic

// Package parsec provides two-thread shared-memory kernels standing in
// for the PARSEC suite at simmedium scale (see DESIGN.md's substitution
// table): an option-pricing map (blackscholes), a Monte-Carlo summation
// using non-repeatable random numbers (swaptions), a nearest-centre scan
// (streamcluster), a barrier-synchronised grid stencil (fluidanimate), a
// lock-based random-swap anneal (canneal), and a producer/consumer
// pipeline (dedup). Together they exercise everything section IV-J
// requires of the logging: cross-thread communication, atomics, spinning
// synchronisation and races that must replay exactly from the log.
package parsec

import (
	"fmt"
	"math"

	"paraverser/internal/asm"
	"paraverser/internal/isa"
)

// Kernel couples a program with the name the harness reports.
type Kernel struct {
	Name string
	Prog *isa.Program
}

// Kernels builds the whole suite at a given scale (element count per
// thread; 0 uses a simmedium-ish default).
func Kernels(scale int) []Kernel {
	if scale <= 0 {
		scale = 2000
	}
	return []Kernel{
		{Name: "blackscholes", Prog: Blackscholes(scale)},
		{Name: "swaptions", Prog: Swaptions(scale / 4)},
		{Name: "streamcluster", Prog: Streamcluster(scale, 8)},
		{Name: "fluidanimate", Prog: Fluidanimate(64, scale/256+2)},
		{Name: "canneal", Prog: Canneal(scale, scale/2)},
		{Name: "dedup", Prog: Dedup(scale)},
	}
}

// emitLock emits a spinlock acquire on the address in rLock, clobbering
// rT.
func emitLock(b *asm.Builder, label string, rLock, rT isa.Reg) {
	b.Jmp(label + "_try")
	b.Label(label)
	b.Pause() // spin-wait hint: idle instead of hammering the line
	b.Label(label + "_try")
	b.Li(rT, 1)
	b.Swp(rT, rLock, rT)
	b.Bne(rT, isa.Zero, label)
}

// emitUnlock releases the spinlock.
func emitUnlock(b *asm.Builder, rLock isa.Reg) {
	b.St(8, isa.Zero, rLock, 0)
}

// emitBarrier emits a two-thread barrier: counter increment under the
// lock, then spin until both arrive. counters is a per-phase array so no
// reset race exists; rPhaseOff must hold the current phase's byte offset.
func emitBarrier(b *asm.Builder, tag string, rLock, rCnts, rPhaseOff isa.Reg, rT, rT2 isa.Reg) {
	emitLock(b, tag+"_acq", rLock, rT)
	b.Add(rT2, rCnts, rPhaseOff)
	b.Ld(8, rT, rT2, 0)
	b.Addi(rT, rT, 1)
	b.St(8, rT, rT2, 0)
	emitUnlock(b, rLock)
	b.Li(rT, 2)
	b.Jmp(tag + "_check")
	b.Label(tag + "_wait")
	b.Pause()
	b.Label(tag + "_check")
	b.Add(rT2, rCnts, rPhaseOff)
	b.Ld(8, rT2, rT2, 0)
	b.Blt(rT2, rT, tag+"_wait")
}

// Blackscholes prices n options per thread with an inlined
// rational-polynomial normal-CDF approximation (fdiv/fsqrt-heavy FP, no
// sharing). Results land in a float64 array: thread 0 writes [0,n),
// thread 1 writes [n,2n).
func Blackscholes(n int) *isa.Program { return BlackscholesThreads(n, 2) }

// BlackscholesThreads builds the kernel with a configurable hart count
// (1 or 2) over the same data layout: thread t still prices its own
// [t*n, (t+1)*n) slice, so the single-hart build simply leaves slice 1
// unwritten. One hart is what the divergent checking mode requires —
// its private canonical memory image cannot track another hart's
// stores — so the suite keeps a PARSEC-representative kernel available
// to divergent-mode experiments.
func BlackscholesThreads(n, threads int) *isa.Program {
	if threads < 1 || threads > 2 {
		panic(fmt.Sprintf("parsec: blackscholes supports 1 or 2 threads, got %d", threads))
	}
	b := asm.New("parsec.blackscholes")
	spot := b.Reserve(2 * n * 8)
	for i := 0; i < 2*n; i++ {
		b.SetFloat64(spot+uint64(i*8), 80+float64(i%40))
	}
	out := b.Reserve(2 * n * 8)
	b.Sym("out", out)

	thread := func(tid int) {
		pfx := fmt.Sprintf("t%d_", tid)
		const (
			rIn, rOut, rI, rN, rT = isa.Reg(5), isa.Reg(6), isa.Reg(7), isa.Reg(8), isa.Reg(9)
			fS, fT, fU, fK, fH    = isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5)
		)
		b.Entry()
		b.Li(rIn, int64(isa.DefaultDataBase+spot)+int64(tid*n*8))
		b.Li(rOut, int64(isa.DefaultDataBase+out)+int64(tid*n*8))
		b.Li(rI, 0)
		b.Li(rN, int64(n))
		b.Li(rT, 100)
		b.Fcvtif(fK, rT) // strike
		b.Li(rT, 1)
		b.Fcvtif(fT, rT)
		b.Fdiv(fK, fT, fK) // reciprocal strike, hoisted out of the loop
		b.Li(rT, 2)
		b.Fcvtif(fH, rT)
		b.Label(pfx + "loop")
		b.Bge(rI, rN, pfx+"done")
		b.Slli(rT, rI, 3)
		b.Add(rT, rT, rIn)
		b.Fld(fS, rT, 0)
		// d = (S*(1/K) - 1) / sqrt(S*(1/K) + 1); price = S * cdf-ish(d)
		b.Fmul(fT, fS, fK)
		b.Fsub(fU, fT, fH)
		b.Fadd(fT, fT, fH)
		b.Fsqrt(fT, fT)
		b.Fdiv(fU, fU, fT)
		// rational approx: u / (1 + |u|) * 0.5 + 0.5-ish (the one true divide)
		b.Fabs(fT, fU)
		b.Fadd(fT, fT, fH)
		b.Fdiv(fU, fU, fT)
		b.Fmul(fU, fU, fS)
		b.Fadd(fU, fU, fS)
		b.Slli(rT, rI, 3)
		b.Add(rT, rT, rOut)
		b.Fst(fU, rT, 0)
		b.Addi(rI, rI, 1)
		b.Jmp(pfx + "loop")
		b.Label(pfx + "done")
		b.Halt()
	}
	for tid := 0; tid < threads; tid++ {
		thread(tid)
	}
	return b.MustBuild()
}

// RefBlackscholes computes the kernel's result in the same op order.
func RefBlackscholes(n int) []float64 {
	out := make([]float64, 2*n)
	kRecip := float64(1) / 100 // hoisted reciprocal strike, as the kernel does
	for i := range out {
		s := 80 + float64(i%40)
		h := float64(2)
		t := s * kRecip
		u := t - h
		t = t + h
		t = sqrt64(t)
		u = u / t
		t = abs64(u)
		t = t + h
		u = u / t
		u = u*s + s
		out[i] = u
	}
	return out
}

// Swaptions runs paths Monte-Carlo trials per thread using the RAND
// instruction (a non-repeatable value that must replay from the log);
// each thread stores its accumulated sum.
func Swaptions(paths int) *isa.Program {
	b := asm.New("parsec.swaptions")
	out := b.Reserve(2 * 8)
	b.Sym("out", out)

	thread := func(tid int) {
		pfx := fmt.Sprintf("t%d_", tid)
		const (
			rI, rN, rT, rOut = isa.Reg(5), isa.Reg(6), isa.Reg(7), isa.Reg(8)
			rAcc             = isa.Reg(9)
			fV, fAcc, fM     = isa.Reg(1), isa.Reg(2), isa.Reg(3)
		)
		b.Entry()
		b.Li(rI, 0)
		b.Li(rN, int64(paths))
		b.Li(rOut, int64(isa.DefaultDataBase+out)+int64(tid*8))
		b.Li(rAcc, 0)
		b.Fcvtif(fAcc, rAcc)
		b.Li(rT, 1<<20)
		b.Fcvtif(fM, rT)
		b.Label(pfx + "loop")
		b.Bge(rI, rN, pfx+"done")
		b.Rand(rT)
		b.Andi(rT, rT, 1<<20-1)
		b.Fcvtif(fV, rT)
		b.Fdiv(fV, fV, fM) // uniform [0,1)
		b.Fmul(fV, fV, fV) // payoff-ish
		b.Fadd(fAcc, fAcc, fV)
		b.Addi(rI, rI, 1)
		b.Jmp(pfx + "loop")
		b.Label(pfx + "done")
		b.Fst(fAcc, rOut, 0)
		b.Halt()
	}
	thread(0)
	thread(1)
	return b.MustBuild()
}

// Streamcluster assigns each of n points per thread to the nearest of k
// centres in 4-D, accumulating the cost per thread.
func Streamcluster(n, k int) *isa.Program {
	b := asm.New("parsec.streamcluster")
	const dims = 4
	pts := b.Reserve(2 * n * dims * 8)
	for i := 0; i < 2*n*dims; i++ {
		b.SetFloat64(pts+uint64(i*8), float64((i*37)%97)/9.7)
	}
	ctr := b.Reserve(k * dims * 8)
	for i := 0; i < k*dims; i++ {
		b.SetFloat64(ctr+uint64(i*8), float64((i*53)%89)/8.9)
	}
	out := b.Reserve(2 * 8)
	b.Sym("out", out)

	thread := func(tid int) {
		pfx := fmt.Sprintf("t%d_", tid)
		const (
			rPts, rCtr, rI, rN, rC, rK = isa.Reg(5), isa.Reg(6), isa.Reg(7), isa.Reg(8), isa.Reg(9), isa.Reg(10)
			rT, rD, rOut               = isa.Reg(11), isa.Reg(12), isa.Reg(13)
			fBest, fSum, fA, fB, fCost = isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5)
			fSum2                      = isa.Reg(6)
		)
		b.Entry()
		b.Li(rPts, int64(isa.DefaultDataBase+pts)+int64(tid*n*dims*8))
		b.Li(rCtr, int64(isa.DefaultDataBase+ctr))
		b.Li(rOut, int64(isa.DefaultDataBase+out)+int64(tid*8))
		b.Li(rI, 0)
		b.Li(rN, int64(n))
		b.Li(rT, 0)
		b.Fcvtif(fCost, rT)
		b.Label(pfx + "pt")
		b.Bge(rI, rN, pfx+"done")
		b.Li(rC, 0)
		b.Li(rK, int64(k))
		b.Li(rT, 1<<30)
		b.Fcvtif(fBest, rT)
		b.Label(pfx + "ctr")
		b.Bge(rC, rK, pfx+"assign")
		// squared distance over dims
		b.Li(rD, 0)
		b.Fcvtif(fSum, rD)
		for d := 0; d < dims; d++ {
			b.Slli(rT, rI, 5) // i*32 (dims*8)
			b.Add(rT, rT, rPts)
			b.Fld(fA, rT, int64(d*8))
			b.Slli(rT, rC, 5)
			b.Add(rT, rT, rCtr)
			b.Fld(fB, rT, int64(d*8))
			b.Fsub(fA, fA, fB)
			b.Fmul(fA, fA, fA)
			b.Fadd(fSum, fSum, fA)
		}
		b.Fmin(fBest, fBest, fSum)
		b.Addi(rC, rC, 1)
		b.Jmp(pfx + "ctr")
		b.Label(pfx + "assign")
		b.Fadd(fCost, fCost, fBest)
		b.Addi(rI, rI, 1)
		b.Jmp(pfx + "pt")
		b.Label(pfx + "done")
		b.Fst(fCost, rOut, 0)
		b.Halt()
	}
	thread(0)
	thread(1)
	return b.MustBuild()
}

// Fluidanimate runs iters Jacobi-style sweeps over a rows x rows float64
// grid, threads splitting the rows, with a true two-thread barrier
// between iterations: each thread reads the other's boundary row, so the
// log must replay cross-thread communication exactly.
func Fluidanimate(rows, iters int) *isa.Program {
	b := asm.New("parsec.fluidanimate")
	cols := rows
	grid := b.Reserve(rows * cols * 8)
	for i := 0; i < rows*cols; i++ {
		b.SetFloat64(grid+uint64(i*8), float64(i%13))
	}
	lock := b.Word64(0)
	cnts := b.Reserve((iters + 1) * 8)

	thread := func(tid int) {
		pfx := fmt.Sprintf("t%d_", tid)
		half := rows / 2
		r0, r1 := 1, half // thread 0: rows [1, half)
		if tid == 1 {
			r0, r1 = half, rows-1
		}
		const (
			rGrid, rLock, rCnts, rPh  = isa.Reg(5), isa.Reg(6), isa.Reg(7), isa.Reg(8)
			rIt, rK, rR, rC, rRE, rCE = isa.Reg(9), isa.Reg(10), isa.Reg(11), isa.Reg(12), isa.Reg(13), isa.Reg(14)
			rT, rT2, rA               = isa.Reg(15), isa.Reg(16), isa.Reg(17)
			fC, fN, fS, fQ, fW        = isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5)
		)
		b.Entry()
		b.Li(rGrid, int64(isa.DefaultDataBase+grid))
		b.Li(rLock, int64(isa.DefaultDataBase+lock))
		b.Li(rCnts, int64(isa.DefaultDataBase+cnts))
		b.Li(rPh, 0)
		b.Li(rIt, 0)
		b.Li(rK, int64(iters))
		// 1/4 as a constant multiplier (compilers strength-reduce the
		// stencil's divide).
		b.Li(rT, 1)
		b.Fcvtif(fQ, rT)
		b.Li(rT, 4)
		b.Fcvtif(fS, rT)
		b.Fdiv(fQ, fQ, fS)
		b.Label(pfx + "iter")
		b.Bge(rIt, rK, pfx+"done")
		b.Li(rR, int64(r0))
		b.Li(rRE, int64(r1))
		b.Label(pfx + "row")
		b.Bge(rR, rRE, pfx+"sync")
		b.Li(rC, 1)
		b.Li(rCE, int64(cols-1))
		b.Label(pfx + "col")
		b.Bge(rC, rCE, pfx+"rownext")
		// addr = grid + (r*cols + c)*8
		b.Li(rT, int64(cols))
		b.Mul(rA, rR, rT)
		b.Add(rA, rA, rC)
		b.Slli(rA, rA, 3)
		b.Add(rA, rA, rGrid)
		b.Fld(fC, rA, 0)
		b.Fld(fN, rA, int64(-cols*8))
		b.Fld(fS, rA, int64(cols*8))
		b.Fld(fW, rA, -8)
		b.Fadd(fN, fN, fS) // pairwise reduction: short dependency chains
		b.Fld(fS, rA, 8)
		b.Fadd(fW, fW, fS)
		b.Fadd(fN, fN, fW)
		b.Fmul(fN, fN, fQ)
		b.Fadd(fC, fC, fN)
		b.Fmul(fC, fC, fQ)
		b.Fst(fC, rA, 0)
		b.Addi(rC, rC, 1)
		b.Jmp(pfx + "col")
		b.Label(pfx + "rownext")
		b.Addi(rR, rR, 1)
		b.Jmp(pfx + "row")
		b.Label(pfx + "sync")
		emitBarrier(b, pfx+fmt.Sprintf("bar"), rLock, rCnts, rPh, rT, rT2)
		b.Addi(rPh, rPh, 8)
		b.Addi(rIt, rIt, 1)
		b.Jmp(pfx + "iter")
		b.Label(pfx + "done")
		b.Halt()
	}
	thread(0)
	thread(1)
	return b.MustBuild()
}

// Canneal performs swaps random pairwise element exchanges on a shared
// array using SWP atomics under a lock, the anneal-style workload whose
// races must replay from the log. The multiset of array values is
// invariant.
func Canneal(n, swaps int) *isa.Program {
	b := asm.New("parsec.canneal")
	arr := b.Reserve(n * 8)
	for i := 0; i < n; i++ {
		b.SetWord64(arr+uint64(i*8), uint64(i*7+1))
	}
	b.Sym("arr", arr)
	lock := b.Word64(0)

	thread := func(tid int) {
		pfx := fmt.Sprintf("t%d_", tid)
		const (
			rArr, rLock, rI, rN   = isa.Reg(5), isa.Reg(6), isa.Reg(7), isa.Reg(8)
			rT, rA, rB, rVA, rMsk = isa.Reg(9), isa.Reg(10), isa.Reg(11), isa.Reg(12), isa.Reg(13)
			rLCG                  = isa.Reg(14)
		)
		b.Entry()
		b.Li(rArr, int64(isa.DefaultDataBase+arr))
		b.Li(rLock, int64(isa.DefaultDataBase+lock))
		b.Li(rI, 0)
		b.Li(rN, int64(swaps))
		b.Li(rMsk, int64(n-1)) // n must be a power of two
		b.Li(rLCG, int64(tid)*77+13)
		b.Label(pfx + "loop")
		b.Bge(rI, rN, pfx+"done")
		// pick two slots
		b.Srli(rT, rLCG, 13)
		b.Xor(rLCG, rLCG, rT)
		b.Slli(rT, rLCG, 7)
		b.Xor(rLCG, rLCG, rT)
		b.And(rA, rLCG, rMsk)
		b.Srli(rB, rLCG, 17)
		b.And(rB, rB, rMsk)
		b.Slli(rA, rA, 3)
		b.Add(rA, rA, rArr)
		b.Slli(rB, rB, 3)
		b.Add(rB, rB, rArr)
		emitLock(b, pfx+"lk", rLock, rT)
		// swap *a, *b with an atomic exchange chain
		b.Ld(8, rVA, rA, 0)
		b.Swp(rVA, rB, rVA) // old b -> rVA, a's value stored to b
		b.St(8, rVA, rA, 0)
		emitUnlock(b, rLock)
		b.Addi(rI, rI, 1)
		b.Jmp(pfx + "loop")
		b.Label(pfx + "done")
		b.Halt()
	}
	thread(0)
	thread(1)
	return b.MustBuild()
}

// Dedup is a two-stage pipeline: thread 0 produces chunk checksums into a
// ring buffer and sets ready flags; thread 1 spins on the flags, consumes
// and accumulates. The consumer's total must equal the producer's. Cross-
// thread flag spins are the hardest case for exact log replay.
func Dedup(chunks int) *isa.Program {
	b := asm.New("parsec.dedup")
	const ring = 64
	buf := b.Reserve(ring * 8)
	flags := b.Reserve(ring * 8)
	sums := b.Reserve(2 * 8)
	b.Sym("sums", sums)

	// Producer.
	{
		const (
			rBuf, rFlg, rI, rN  = isa.Reg(5), isa.Reg(6), isa.Reg(7), isa.Reg(8)
			rT, rSlot, rV, rSum = isa.Reg(9), isa.Reg(10), isa.Reg(11), isa.Reg(12)
			rM                  = isa.Reg(13)
		)
		b.Entry()
		b.Li(rBuf, int64(isa.DefaultDataBase+buf))
		b.Li(rFlg, int64(isa.DefaultDataBase+flags))
		b.Li(rI, 0)
		b.Li(rN, int64(chunks))
		b.Li(rSum, 0)
		b.Li(rM, ring-1)
		b.Label("p_loop")
		b.Bge(rI, rN, "p_done")
		b.And(rSlot, rI, rM)
		b.Slli(rSlot, rSlot, 3)
		// wait until the slot is free (flag == 0)
		b.Jmp("p_check")
		b.Label("p_wait")
		b.Pause()
		b.Label("p_check")
		b.Add(rT, rFlg, rSlot)
		b.Ld(8, rT, rT, 0)
		b.Bne(rT, isa.Zero, "p_wait")
		// chunk "checksum"
		b.Mul(rV, rI, rI)
		b.Xori(rV, rV, 0x5A5)
		b.Add(rSum, rSum, rV)
		b.Add(rT, rBuf, rSlot)
		b.St(8, rV, rT, 0)
		b.Li(rT, 1)
		b.Add(rV, rFlg, rSlot)
		b.St(8, rT, rV, 0) // publish
		b.Addi(rI, rI, 1)
		b.Jmp("p_loop")
		b.Label("p_done")
		b.LiSym(rT, "sums")
		b.St(8, rSum, rT, 0)
		b.Halt()
	}

	// Consumer.
	{
		const (
			rBuf, rFlg, rI, rN  = isa.Reg(5), isa.Reg(6), isa.Reg(7), isa.Reg(8)
			rT, rSlot, rV, rSum = isa.Reg(9), isa.Reg(10), isa.Reg(11), isa.Reg(12)
			rM                  = isa.Reg(13)
		)
		b.Entry()
		b.Li(rBuf, int64(isa.DefaultDataBase+buf))
		b.Li(rFlg, int64(isa.DefaultDataBase+flags))
		b.Li(rI, 0)
		b.Li(rN, int64(chunks))
		b.Li(rSum, 0)
		b.Li(rM, ring-1)
		b.Label("c_loop")
		b.Bge(rI, rN, "c_done")
		b.And(rSlot, rI, rM)
		b.Slli(rSlot, rSlot, 3)
		b.Jmp("c_check")
		b.Label("c_wait")
		b.Pause()
		b.Label("c_check")
		b.Add(rT, rFlg, rSlot)
		b.Ld(8, rT, rT, 0)
		b.Beq(rT, isa.Zero, "c_wait")
		b.Add(rT, rBuf, rSlot)
		b.Ld(8, rV, rT, 0)
		b.Add(rSum, rSum, rV)
		b.Add(rT, rFlg, rSlot)
		b.St(8, isa.Zero, rT, 0) // release slot
		b.Addi(rI, rI, 1)
		b.Jmp("c_loop")
		b.Label("c_done")
		b.LiSym(rT, "sums")
		b.St(8, rSum, rT, 8)
		b.Halt()
	}
	return b.MustBuild()
}

func sqrt64(x float64) float64 { return math.Sqrt(x) }
func abs64(x float64) float64  { return math.Abs(x) }
