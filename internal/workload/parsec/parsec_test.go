package parsec

import (
	"math"
	"sort"
	"testing"

	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// run executes a two-hart kernel to completion with fine interleaving.
func run(t *testing.T, prog *isa.Program) *emu.Machine {
	t.Helper()
	m, err := emu.NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Quantum = 17 // odd quantum: non-trivial interleaving
	if _, err := m.Run(500_000_000, nil); err != nil {
		t.Fatal(err)
	}
	for i, h := range m.Harts {
		if !h.Halted {
			t.Fatalf("hart %d did not halt", i)
		}
	}
	return m
}

func loadF64(m *emu.Machine, addr uint64) float64 {
	v, _ := m.Mem.Load(addr, 8)
	return math.Float64frombits(v)
}

func TestKernelsBuildAndComplete(t *testing.T) {
	for _, k := range Kernels(256) {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			if err := k.Prog.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(k.Prog.Entries) != 2 {
				t.Fatalf("%d entries, want 2 threads", len(k.Prog.Entries))
			}
			run(t, k.Prog)
		})
	}
}

func TestBlackscholesMatchesReference(t *testing.T) {
	const n = 100
	prog := Blackscholes(n)
	m := run(t, prog)
	want := RefBlackscholes(n)
	// The out symbol is after the 2n-spot input array.
	outBase := prog.DataBase + uint64(2*n*8)
	for i := range want {
		got := loadF64(m, outBase+uint64(i*8))
		if got != want[i] {
			t.Fatalf("price[%d] = %v, want %v (bit-exact)", i, got, want[i])
		}
	}
}

func TestSwaptionsUsesNonRepeatables(t *testing.T) {
	prog := Swaptions(50)
	var rands int
	m, err := emu.NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10_000_000, func(_ int, e *emu.Effect) error {
		if e.NonRepeat {
			rands++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rands != 100 {
		t.Errorf("RAND count %d, want 100 (50 paths x 2 threads)", rands)
	}
}

func TestFluidBarrierSynchronises(t *testing.T) {
	// With a barrier each iteration, the final grid is deterministic
	// regardless of interleaving quantum.
	sum := func(quantum int) float64 {
		prog := Fluidanimate(16, 4)
		m, err := emu.NewMachine(prog, 1)
		if err != nil {
			t.Fatal(err)
		}
		m.Quantum = quantum
		if _, err := m.Run(500_000_000, nil); err != nil {
			t.Fatal(err)
		}
		var s float64
		for i := 0; i < 16*16; i++ {
			s += loadF64(m, prog.DataBase+uint64(i*8))
		}
		return s
	}
	a, b := sum(1), sum(997)
	if a != b {
		t.Errorf("grid sum differs across interleavings: %v vs %v", a, b)
	}
}

func TestCannealPreservesMultiset(t *testing.T) {
	const n = 256
	prog := Canneal(n, 500)
	m := run(t, prog)
	got := make([]uint64, n)
	for i := range got {
		got[i], _ = m.Mem.Load(prog.DataBase+uint64(i*8), 8)
	}
	want := make([]uint64, n)
	for i := range want {
		want[i] = uint64(i*7 + 1)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("multiset not preserved at rank %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestDedupProducerConsumerAgree(t *testing.T) {
	const chunks = 300
	prog := Dedup(chunks)
	m := run(t, prog)
	// sums symbol: after ring buf (64*8) and flags (64*8).
	base := prog.DataBase + 64*8 + 64*8
	pSum, _ := m.Mem.Load(base, 8)
	cSum, _ := m.Mem.Load(base+8, 8)
	if pSum == 0 || pSum != cSum {
		t.Errorf("producer sum %d, consumer sum %d", pSum, cSum)
	}
	var want uint64
	for i := uint64(0); i < chunks; i++ {
		want += (i * i) ^ 0x5A5
	}
	if pSum != want {
		t.Errorf("producer sum %d, want %d", pSum, want)
	}
}
