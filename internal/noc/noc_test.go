package noc

import (
	"math"
	"testing"
)

func TestRouteXY(t *testing.T) {
	m := MustNew(Fast())
	links := m.route(Coord{0, 0}, Coord{2, 3})
	if len(links) != 5 {
		t.Fatalf("route length %d, want 5", len(links))
	}
	// X first: the first three hops leave crosspoints in row 0, heading
	// east (link indices are dense: (row*Cols+col)*numDirs + dir).
	for i := 0; i < 3; i++ {
		want := m.linkIndex(0, i, dirEast)
		if links[i] != want {
			t.Errorf("hop %d is link %d, want %d (row 0 col %d east)", i, links[i], want, i)
		}
	}
	if m.Hops(Coord{0, 0}, Coord{2, 3}) != 5 {
		t.Error("hop count mismatch")
	}
	if m.Hops(Coord{1, 1}, Coord{1, 1}) != 0 {
		t.Error("self hop count != 0")
	}
}

func TestUnloadedLatencyGrowsWithDistance(t *testing.T) {
	m := MustNew(Fast())
	near := m.LatencyNS(Coord{1, 1}, Coord{1, 2}, 64)
	far := m.LatencyNS(Coord{0, 0}, Coord{3, 3}, 64)
	if far <= near {
		t.Errorf("far latency %.2f <= near %.2f", far, near)
	}
	if self := m.LatencyNS(Coord{1, 1}, Coord{1, 1}, 64); self <= 0 {
		t.Errorf("self latency %.2f, want > 0 (ejection)", self)
	}
}

func TestLoadIncreasesLatency(t *testing.T) {
	m := MustNew(Fast())
	base := m.LatencyNS(Coord{1, 0}, Coord{1, 3}, 64)
	// Offer 80% of one link's bandwidth along the same route.
	m.AddFlow(Coord{1, 0}, Coord{1, 3}, 0.8*m.Config().LinkGBs())
	loaded := m.LatencyNS(Coord{1, 0}, Coord{1, 3}, 64)
	if loaded <= base {
		t.Errorf("loaded latency %.2f <= base %.2f", loaded, base)
	}
	if q := m.QueueingNS(Coord{1, 0}, Coord{1, 3}, 64); math.Abs(loaded-base-q) > 1e-9 {
		t.Errorf("queueing %.3f != loaded-base %.3f", q, loaded-base)
	}
	m.ResetLoad()
	if m.LatencyNS(Coord{1, 0}, Coord{1, 3}, 64) != base {
		t.Error("reset did not clear load")
	}
}

func TestDisjointRoutesDoNotInterfere(t *testing.T) {
	m := MustNew(Fast())
	m.AddFlow(Coord{0, 0}, Coord{0, 3}, 0.9*m.Config().LinkGBs())
	if q := m.QueueingNS(Coord{3, 0}, Coord{3, 3}, 64); q != 0 {
		t.Errorf("disjoint route sees queueing %.3f", q)
	}
}

func TestSaturationIsFiniteButLarge(t *testing.T) {
	m := MustNew(Slow())
	m.AddFlow(Coord{1, 0}, Coord{1, 1}, 10*m.Config().LinkGBs())
	q := m.QueueingNS(Coord{1, 0}, Coord{1, 1}, 64)
	if math.IsInf(q, 1) || math.IsNaN(q) {
		t.Fatal("saturated queueing not finite")
	}
	unloadedService := 64.0 / m.Config().LinkGBs()
	if q < 10*unloadedService {
		t.Errorf("saturated queueing %.2f too small", q)
	}
	if m.MaxUtilisation() < 0.97 {
		t.Errorf("max utilisation %.2f, want near cap", m.MaxUtilisation())
	}
}

func TestSlowNoCSlowerThanFast(t *testing.T) {
	fast, slow := MustNew(Fast()), MustNew(Slow())
	if slow.LatencyNS(Coord{1, 0}, Coord{1, 3}, 64) <= fast.LatencyNS(Coord{1, 0}, Coord{1, 3}, 64) {
		t.Error("slow NoC not slower")
	}
	if slow.Config().LinkGBs() >= fast.Config().LinkGBs() {
		t.Error("slow NoC bandwidth not lower")
	}
}

func TestDefaultLayoutValid(t *testing.T) {
	l := DefaultLayout()
	if err := l.Validate(Fast()); err != nil {
		t.Fatal(err)
	}
	if len(l.MainPos) != 4 || len(l.LLCPos) != 4 {
		t.Error("layout shape wrong")
	}
	m := MustNew(Fast())
	for mc := 0; mc < 4; mc++ {
		// Checker i sits at most 1 hop from its main core (it shares the
		// adjacent LLC crosspoint), per fig. 5.
		if h := m.Hops(l.Main(mc), l.Checker(mc, 0)); h > 1 {
			t.Errorf("main %d to checker i: %d hops", mc, h)
		}
		for k := 0; k < 4; k++ {
			if h := m.Hops(l.Main(mc), l.Checker(mc, k)); h > 2 {
				t.Errorf("main %d to checker %d: %d hops, want <= 2", mc, k, h)
			}
		}
	}
	// Checker indices beyond the layout wrap.
	if l.Checker(0, 5) != l.Checker(0, 1) {
		t.Error("checker index wrap broken")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("want error for zero config")
	}
}

func TestQueueingMonotoneInLoad(t *testing.T) {
	// Property: queueing delay grows monotonically with offered load.
	m := MustNew(Fast())
	from, to := Coord{1, 0}, Coord{1, 2}
	prev := -1.0
	for load := 0.0; load < 0.9; load += 0.1 {
		m.ResetLoad()
		m.AddFlow(from, to, load*m.Config().LinkGBs())
		q := m.QueueingNS(from, to, 64)
		if q < prev {
			t.Fatalf("queueing fell from %.3f to %.3f at load %.1f", prev, q, load)
		}
		prev = q
	}
}

func TestLatencyScalesWithMessageSize(t *testing.T) {
	m := MustNew(Fast())
	small := m.LatencyNS(Coord{0, 0}, Coord{0, 3}, 8)
	big := m.LatencyNS(Coord{0, 0}, Coord{0, 3}, 512)
	if big <= small {
		t.Error("large message not slower")
	}
	// Serialisation: 512B over 3 links at 64 GB/s is 24ns more than 8B.
	if big-small < 20 {
		t.Errorf("serialisation gap %.1fns too small", big-small)
	}
}

func TestFlowsAccumulate(t *testing.T) {
	m := MustNew(Fast())
	m.AddFlow(Coord{1, 0}, Coord{1, 1}, 10)
	m.AddFlow(Coord{1, 0}, Coord{1, 1}, 10)
	q2 := m.QueueingNS(Coord{1, 0}, Coord{1, 1}, 64)
	m.ResetLoad()
	m.AddFlow(Coord{1, 0}, Coord{1, 1}, 10)
	q1 := m.QueueingNS(Coord{1, 0}, Coord{1, 1}, 64)
	if q2 <= q1 {
		t.Error("flows do not accumulate")
	}
}
