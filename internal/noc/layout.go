package noc

import "fmt"

// Layout places main cores, checker cores and LLC slices on the mesh,
// reproducing fig. 5: the four crosspoints in the middle each carry an
// LLC slice and one core (checker i, which therefore contends with
// demand traffic); main cores sit on edge crosspoints without LLC
// slices; every non-corner crosspoint carries two cores.
type Layout struct {
	// MainPos[m] is the crosspoint of main core m (0-3).
	MainPos []Coord
	// CheckerPos[m][k] is the crosspoint of checker core k (0-3, the
	// paper's i-iv) serving main core m.
	CheckerPos [][]Coord
	// LLCPos are the LLC slice crosspoints; each slice serves 1/4 of
	// each main core's demand misses.
	LLCPos []Coord
}

// DefaultLayout returns the fig. 5 tile placement on a 4x4 mesh.
func DefaultLayout() *Layout {
	return &Layout{
		MainPos: []Coord{{1, 0}, {1, 3}, {2, 0}, {2, 3}},
		CheckerPos: [][]Coord{
			{{1, 1}, {1, 0}, {0, 0}, {0, 1}}, // main 0: i on the LLC crosspoint
			{{1, 2}, {1, 3}, {0, 3}, {0, 2}}, // main 1
			{{2, 1}, {2, 0}, {3, 0}, {3, 1}}, // main 2
			{{2, 2}, {2, 3}, {3, 3}, {3, 2}}, // main 3
		},
		LLCPos: []Coord{{1, 1}, {1, 2}, {2, 1}, {2, 2}},
	}
}

// Validate checks the layout fits a mesh configuration.
func (l *Layout) Validate(cfg Config) error {
	check := func(c Coord, what string) error {
		if c.Row < 0 || c.Row >= cfg.Rows || c.Col < 0 || c.Col >= cfg.Cols {
			return fmt.Errorf("noc: %s at %v outside %dx%d mesh", what, c, cfg.Rows, cfg.Cols)
		}
		return nil
	}
	if len(l.CheckerPos) != len(l.MainPos) {
		return fmt.Errorf("noc: %d checker rows for %d main cores", len(l.CheckerPos), len(l.MainPos))
	}
	for i, c := range l.MainPos {
		if err := check(c, fmt.Sprintf("main %d", i)); err != nil {
			return err
		}
	}
	for m, row := range l.CheckerPos {
		for k, c := range row {
			if err := check(c, fmt.Sprintf("checker %d.%d", m, k)); err != nil {
				return err
			}
		}
	}
	for i, c := range l.LLCPos {
		if err := check(c, fmt.Sprintf("llc %d", i)); err != nil {
			return err
		}
	}
	return nil
}

// Main returns the crosspoint of main core m.
func (l *Layout) Main(m int) Coord { return l.MainPos[m] }

// Checker returns the crosspoint of checker k of main core m. Checker
// indices beyond the layout wrap, supporting configurations that gang
// more checkers onto the same tiles.
func (l *Layout) Checker(m, k int) Coord {
	row := l.CheckerPos[m%len(l.CheckerPos)]
	return row[k%len(row)]
}
