// Package noc models the on-chip network: a 2D bidirectional mesh with XY
// routing and an M/M/1 queueing model per link, following the paper's own
// methodology ("we model NoC latencies by feeding the gem5 network
// parameters into an MM1 queueing network model of a 2D mesh",
// section VI). Load-store-log pushes from main cores to checker cores load
// the links they traverse; the resulting queueing delay on LLC-demand
// routes is back-propagated into the cores' LLC access latency.
package noc

import "fmt"

// Config describes the mesh fabric.
type Config struct {
	Name      string
	Rows      int
	Cols      int
	WidthBits int
	FreqGHz   float64
	// RouterCycles is the per-hop router pipeline latency in NoC cycles.
	RouterCycles int
}

// Fast returns the default CMN-700-style mesh of Table I (256-bit, 2GHz).
func Fast() Config {
	return Config{Name: "fast", Rows: 4, Cols: 4, WidthBits: 256, FreqGHz: 2.0, RouterCycles: 2}
}

// Slow returns the underprovisioned "slowNoC" of Table I (128-bit,
// 1.5GHz) used in the section VII-D sensitivity study.
func Slow() Config {
	return Config{Name: "slowNoC", Rows: 4, Cols: 4, WidthBits: 128, FreqGHz: 1.5, RouterCycles: 2}
}

// widthBytes returns the link width in bytes.
func (c Config) widthBytes() float64 { return float64(c.WidthBits) / 8 }

// LinkGBs returns one link's bandwidth in bytes per nanosecond (= GB/s).
func (c Config) LinkGBs() float64 { return c.widthBytes() * c.FreqGHz }

// Coord addresses a mesh crosspoint.
type Coord struct{ Row, Col int }

// Outgoing link directions from a crosspoint.
const (
	dirEast  = iota // +Col
	dirWest         // -Col
	dirSouth        // +Row
	dirNorth        // -Row
	numDirs
)

// Mesh is the fabric with its current offered load.
type Mesh struct {
	cfg Config
	// loadGBs is the offered load per directed link in bytes/ns,
	// indexed densely by linkIndex — numDirs slots per crosspoint, one
	// per outgoing direction — so the latency queries on the
	// per-segment timing path hash nothing and allocate nothing.
	loadGBs []float64
	linkGBs float64
	// scratch backs route's returned slice. A mesh belongs to one
	// System and is only queried from its orchestrator goroutine
	// (pipelined checks snapshot their latencies at dispatch), so a
	// single reusable buffer is safe.
	scratch []int32
}

// New builds an empty mesh.
func New(cfg Config) (*Mesh, error) {
	if cfg.Rows <= 0 || cfg.Cols <= 0 || cfg.WidthBits <= 0 || cfg.FreqGHz <= 0 {
		return nil, fmt.Errorf("noc: invalid config %+v", cfg)
	}
	return &Mesh{
		cfg:     cfg,
		loadGBs: make([]float64, cfg.Rows*cfg.Cols*numDirs),
		linkGBs: cfg.LinkGBs(),
	}, nil
}

// linkIndex addresses the directed link leaving (row, col) in dir.
func (m *Mesh) linkIndex(row, col, dir int) int32 {
	return int32((row*m.cfg.Cols+col)*numDirs + dir)
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *Mesh {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// ResetLoad clears all offered load.
func (m *Mesh) ResetLoad() {
	clear(m.loadGBs)
}

// route returns the XY route (X first) as directed link indices. The
// slice is backed by a buffer reused across calls — valid until the
// next route/AddFlow/Latency query on this mesh.
func (m *Mesh) route(from, to Coord) []int32 {
	links := m.scratch[:0]
	cur := from
	for cur.Col != to.Col {
		if to.Col > cur.Col {
			links = append(links, m.linkIndex(cur.Row, cur.Col, dirEast))
			cur.Col++
		} else {
			links = append(links, m.linkIndex(cur.Row, cur.Col, dirWest))
			cur.Col--
		}
	}
	for cur.Row != to.Row {
		if to.Row > cur.Row {
			links = append(links, m.linkIndex(cur.Row, cur.Col, dirSouth))
			cur.Row++
		} else {
			links = append(links, m.linkIndex(cur.Row, cur.Col, dirNorth))
			cur.Row--
		}
	}
	m.scratch = links
	return links
}

// Hops returns the hop count between two crosspoints.
func (m *Mesh) Hops(from, to Coord) int {
	return abs(from.Row-to.Row) + abs(from.Col-to.Col)
}

// AddFlow offers bytesPerNS (GB/s) of steady traffic along the XY route
// from→to.
func (m *Mesh) AddFlow(from, to Coord, bytesPerNS float64) {
	for _, l := range m.route(from, to) {
		m.loadGBs[l] += bytesPerNS
	}
}

// utilisation returns rho for one link, capped just under saturation so
// the M/M/1 term stays finite (overload shows up as a very large delay).
func (m *Mesh) utilisation(l int32) float64 {
	rho := m.loadGBs[l] / m.linkGBs
	if rho > 0.98 {
		rho = 0.98
	}
	return rho
}

// MaxUtilisation returns the highest per-link utilisation (for reporting
// saturation in the sensitivity study).
func (m *Mesh) MaxUtilisation() float64 {
	var max float64
	for l := range m.loadGBs {
		if u := m.utilisation(int32(l)); u > max {
			max = u
		}
	}
	return max
}

// LatencyNS returns the end-to-end latency of one message of msgBytes
// under the current offered load: per-hop router latency, serialisation
// on each link, and the M/M/1 waiting time rho/(1-rho)·s per link.
func (m *Mesh) LatencyNS(from, to Coord, msgBytes int) float64 {
	links := m.route(from, to)
	routerNS := float64(m.cfg.RouterCycles) / m.cfg.FreqGHz
	serviceNS := float64(msgBytes) / m.cfg.LinkGBs()
	total := routerNS // ejection router
	for _, l := range links {
		rho := m.utilisation(l)
		wait := rho / (1 - rho) * serviceNS
		total += routerNS + serviceNS + wait
	}
	return total
}

// QueueingNS returns only the load-dependent part of LatencyNS: the
// extra delay attributable to contention. This is what gets
// back-propagated into LLC access latency.
func (m *Mesh) QueueingNS(from, to Coord, msgBytes int) float64 {
	serviceNS := float64(msgBytes) / m.cfg.LinkGBs()
	var total float64
	for _, l := range m.route(from, to) {
		rho := m.utilisation(l)
		total += rho / (1 - rho) * serviceNS
	}
	return total
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
