package lockstep

import (
	"math"
	"testing"

	"paraverser/internal/core"
)

func TestBaselineConfigsValid(t *testing.T) {
	for _, cfg := range []core.Config{DSN18(), ParaDox(), DCLS()} {
		if err := cfg.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestDSN18Shape(t *testing.T) {
	cfg := DSN18()
	if cfg.Checkers[0].Count != 12 {
		t.Errorf("DSN18 checkers = %d, want 12", cfg.Checkers[0].Count)
	}
	if cfg.DedicatedLSLBytes != 3<<10 {
		t.Errorf("DSN18 LSL = %dB, want 3KiB", cfg.DedicatedLSLBytes)
	}
	if !cfg.CheckpointDrains {
		t.Error("DSN18 checkpointing must drain the pipeline (commit-delaying)")
	}
	if cfg.EagerWake {
		t.Error("DSN18 has no eager waking")
	}
}

func TestParaDoxShape(t *testing.T) {
	cfg := ParaDox()
	if cfg.Checkers[0].Count != 16 {
		t.Errorf("ParaDox checkers = %d, want 16", cfg.Checkers[0].Count)
	}
	if cfg.CheckpointDrains {
		t.Error("ParaDox checkpointing should not drain")
	}
}

func TestDCLSIsHomogeneous(t *testing.T) {
	cfg := DCLS()
	spec := cfg.Checkers[0]
	if spec.CPU.Name != "X2" || spec.FreqGHz != 3.0 || spec.Count != 1 {
		t.Errorf("DCLS spec %+v", spec)
	}
}

func TestAreaOverheads(t *testing.T) {
	// ParaDox's 16 dedicated A35s cost ~35% of an X2 (the paper's
	// section VII-E number); DSN18's 12 cost 3/4 of that; repurposed-core
	// designs cost nothing.
	pd := AreaOverhead(ParaDox())
	if math.Abs(pd-0.346) > 0.01 {
		t.Errorf("ParaDox area overhead %.3f, want ~0.346", pd)
	}
	dsn := AreaOverhead(DSN18())
	if math.Abs(dsn-pd*12/16) > 1e-9 {
		t.Errorf("DSN18 area overhead %.3f, want 12/16 of ParaDox", dsn)
	}
	if AreaOverhead(DCLS()) != 0 {
		t.Error("DCLS repurposes an existing core: no added checker area")
	}
}
