// Package lockstep provides the comparison systems of the evaluation:
// dual-core lockstep (DCLS, the automotive-style homogeneous baseline the
// energy numbers are judged against), and the two prior heterogeneous
// error-detection designs — DSN18 (Ainsworth & Jones 2018, 12 dedicated
// checker cores with a 3KiB dedicated load-store-log SRAM) and ParaDox
// (HPCA 2021, 16 dedicated checker cores) — both remodelled with scalar
// A35-class dedicated cores per section VI of the paper.
package lockstep

import (
	"paraverser/internal/core"
	"paraverser/internal/cpu"
	"paraverser/internal/power"
)

// DedicatedLSLBytes is the dedicated SRAM log of the prior-work designs.
const DedicatedLSLBytes = 3 << 10

// DSN18 returns the ParaVerser-system configuration that models the
// DSN18 design: 12 dedicated scalar checker cores at 1GHz, a 3KiB
// dedicated LSL (so checkpoints are ~20x more frequent), register
// checkpointing that delays the main core's commit (the overhead the
// paper calls out in section VII-A), and no eager waking (checkers only
// wake once a checkpoint has finished, section IV-H).
func DSN18() core.Config {
	cfg := core.DefaultConfig(core.CheckerSpec{CPU: cpu.A35(), FreqGHz: 1.0, Count: 12})
	cfg.DedicatedLSLBytes = DedicatedLSLBytes
	cfg.CheckpointStallCycles = 40 // copies the register file via the commit path
	cfg.CheckpointDrains = true    // delays commit (section VII-A, "Register Checkpointing")
	cfg.EagerWake = false
	return cfg
}

// ParaDox returns the configuration modelling ParaDox's 16 dedicated
// checker cores. ParaDox added forward-progress optimisations over
// DSN18; its faster checkpointing is modelled by the standard RCU cost.
func ParaDox() core.Config {
	cfg := core.DefaultConfig(core.CheckerSpec{CPU: cpu.A35(), FreqGHz: 1.0, Count: 16})
	cfg.DedicatedLSLBytes = DedicatedLSLBytes
	cfg.CheckpointStallCycles = 8
	cfg.EagerWake = false
	return cfg
}

// DCLS returns the dual-core-lockstep comparison: one identical X2 at
// full frequency duplicating every instruction cycle-for-cycle. Within
// this repository's framework it is the homogeneous 1xX2@3GHz checker
// configuration — the paper itself treats that configuration as
// "comparable to dual-core lockstep" for energy (section VII-E).
func DCLS() core.Config {
	return core.DefaultConfig(core.CheckerSpec{CPU: cpu.X2(), FreqGHz: 3.0, Count: 1})
}

// AreaOverhead returns the silicon overhead of a baseline's dedicated
// checker cores relative to the X2 main core (35% for ParaDox's 16 A35s).
func AreaOverhead(cfg core.Config) float64 {
	var mm2 float64
	for _, spec := range cfg.Checkers {
		if spec.CPU.Name == "A35" { // dedicated cores: added silicon
			mm2 += float64(spec.Count) * spec.CPU.AreaMM2
		}
	}
	return mm2 / power.AreaX2MM2
}
