package emu

import (
	"errors"
	"fmt"

	"paraverser/internal/isa"
)

// MainEnv is the environment a main core executes against: real shared
// memory, a deterministic per-hart random stream, and a timer derived from
// the retired-instruction count. The determinism matters only for
// reproducible experiments; the checker never re-executes these sources
// (it replays their logged values).
type MainEnv struct {
	Mem *Memory
	rng uint64
}

var _ Env = (*MainEnv)(nil)

// NewMainEnv returns an environment over mem with the given random seed.
func NewMainEnv(mem *Memory, seed uint64) *MainEnv {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &MainEnv{Mem: mem, rng: seed}
}

// Load implements Env.
func (e *MainEnv) Load(addr uint64, size uint8) (uint64, error) { return e.Mem.Load(addr, size) }

// Store implements Env.
func (e *MainEnv) Store(addr uint64, size uint8, val uint64) error {
	return e.Mem.Store(addr, size, val)
}

// Swap implements Env.
func (e *MainEnv) Swap(addr uint64, newVal uint64) (uint64, error) {
	old, err := e.Mem.Load(addr, 8)
	if err != nil {
		return 0, err
	}
	if err := e.Mem.Store(addr, 8, newVal); err != nil {
		return 0, err
	}
	return old, nil
}

// Rand implements Env with an xorshift64* stream.
func (e *MainEnv) Rand() (uint64, error) {
	x := e.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	e.rng = x
	return x * 0x2545F4914F6CDD1D, nil
}

// CycleRead implements Env: the timer is a scaled retired-instruction
// count, which is non-repeatable across runs with different interleaving.
func (e *MainEnv) CycleRead(instret uint64) (uint64, error) { return instret * 3, nil }

// ErrLimit is returned by Machine.Run when the instruction budget expires
// before all harts halt.
var ErrLimit = errors.New("emu: instruction limit reached")

// Machine executes a multi-hart program over shared memory with a
// deterministic round-robin interleaving (quantum instructions per hart
// per turn).
type Machine struct {
	Prog  *isa.Program
	Mem   *Memory
	Harts []*Hart
	Env   []*MainEnv
	dec   []isa.DecInst   // Prog's predecode table, resolved once
	bt    *isa.BlockTable // Prog's basic-block table, resolved once

	// Quantum is how many instructions one hart runs before control
	// rotates. Zero means 1.
	Quantum int

	// Intc, when non-nil, intercepts every hart (fault injection).
	Intc Interceptor
}

// NewMachine loads the program (data segment materialised) and creates one
// hart per entry point.
func NewMachine(prog *isa.Program, seed uint64) (*Machine, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("emu: %w", err)
	}
	mem := NewMemory()
	mem.WriteBytes(prog.DataBase, prog.Data)
	return newMachine(prog, mem, seed), nil
}

// newMachine creates one hart per entry point over mem.
func newMachine(prog *isa.Program, mem *Memory, seed uint64) *Machine {
	m := &Machine{Prog: prog, Mem: mem, dec: prog.Decoded(), bt: prog.Blocks()}
	for i, entry := range prog.Entries {
		h := NewHart(i, entry)
		h.State.X[isa.GP] = prog.DataBase
		m.Harts = append(m.Harts, h)
		m.Env = append(m.Env, NewMainEnv(mem, seed+uint64(i)*0x9E37))
	}
	return m
}

// Running reports whether any hart is still live.
func (m *Machine) Running() bool {
	for _, h := range m.Harts {
		if !h.Halted {
			return true
		}
	}
	return false
}

// StepHart executes one instruction on hart i, filling eff.
func (m *Machine) StepHart(i int, eff *Effect) error {
	return m.Harts[i].StepDecoded(m.dec, m.Env[i], m.Intc, eff)
}

// RunBlocks executes up to fuel instructions on hart i through the
// block-compiled path, filling batch[:n] with one effect per executed
// instruction (see Hart.RunBlocks for the stop conditions). When a
// fault interceptor is installed the block path is unsound — it has no
// corruption hooks — so execution falls back to per-instruction
// stepping with identical batch semantics.
func (m *Machine) RunBlocks(i int, batch []Effect, fuel int) (int, error) {
	if m.Intc == nil {
		return m.Harts[i].RunBlocks(m.dec, m.bt, m.Env[i], batch, fuel)
	}
	if fuel > len(batch) {
		fuel = len(batch)
	}
	h := m.Harts[i]
	for n := 0; n < fuel; n++ {
		if err := h.StepDecoded(m.dec, m.Env[i], m.Intc, &batch[n]); err != nil {
			return n, err
		}
		if batch[n].Halted {
			return n + 1, nil
		}
	}
	return fuel, nil
}

// Run interleaves the harts round-robin until every hart halts or limit
// total instructions execute (limit <= 0 means unbounded). For each
// executed instruction it calls sink(hartID, eff); the Effect is reused,
// so sinks must copy anything they retain. Returns the total instructions
// executed and ErrLimit if the budget expired.
func (m *Machine) Run(limit int64, sink func(hart int, eff *Effect) error) (int64, error) {
	quantum := m.Quantum
	if quantum <= 0 {
		quantum = 1
	}
	var eff Effect
	var total int64
	for m.Running() {
		progressed := false
		for i, h := range m.Harts {
			if h.Halted {
				continue
			}
			for q := 0; q < quantum && !h.Halted; q++ {
				if limit > 0 && total >= limit {
					return total, ErrLimit
				}
				if err := m.StepHart(i, &eff); err != nil {
					return total, err
				}
				total++
				progressed = true
				if sink != nil {
					if err := sink(i, &eff); err != nil {
						return total, err
					}
				}
			}
		}
		if !progressed {
			break
		}
	}
	return total, nil
}

// RunProgram is a convenience wrapper: build a machine, run to completion
// (or limit), return total instructions executed.
func RunProgram(prog *isa.Program, limit int64, sink func(hart int, eff *Effect) error) (int64, error) {
	m, err := NewMachine(prog, 1)
	if err != nil {
		return 0, err
	}
	n, err := m.Run(limit, sink)
	if err != nil && !errors.Is(err, ErrLimit) {
		return n, err
	}
	return n, nil
}
