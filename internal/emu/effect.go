package emu

import "paraverser/internal/isa"

// MemKind distinguishes the two directions of a memory operation.
type MemKind uint8

// Memory operation kinds. Enums start at one.
const (
	MemInvalid MemKind = iota
	MemLoad
	MemStore
)

// MemOp records one architectural memory access performed by an
// instruction: its effective address, size and the data moved. For loads,
// Data is the value observed; for stores, the value written.
type MemOp struct {
	Kind MemKind
	Addr uint64
	Size uint8
	Data uint64
}

// MaxMemOps is the most architectural accesses a single instruction can
// perform (SWP: load+store; GLD: two loads; SST: two stores).
const MaxMemOps = 2

// Effect is the complete architectural record of one executed instruction.
// It is everything the load-store log, the timing models and the checker
// need: the instruction, its control-flow outcome, its memory operations,
// any non-repeatable value it produced, and the destination write.
//
// Effects are reused across steps to avoid allocation; consumers that
// retain one must copy it.
type Effect struct {
	// Field order is deliberate: every scalar the timing models and the
	// segment protocol touch per instruction sits ahead of the Mem
	// array, so the common NMem==0 effect is consumed from the struct's
	// leading cache line(s) without pulling in the memory-op records.
	PC     uint64
	Inst   isa.Inst
	Class  isa.Class
	NextPC uint64
	Taken  bool // branch/jump redirected control flow

	// Dec points at the predecoded record for Inst when the effect was
	// produced by a decoded-program step; timing models use it to skip
	// re-deriving per-op metadata. May be nil for hand-built effects.
	Dec *isa.DecInst

	NMem int

	NonRepeat    bool   // instruction produced a non-repeatable value
	NonRepeatVal uint64 // the value (also the payload logged for replay)

	WroteInt bool   // wrote integer register Inst.Rd
	WroteFP  bool   // wrote FP register Inst.Rd
	Value    uint64 // raw bits of the value written (if any)

	Halted bool

	Mem [MaxMemOps]MemOp
}

// IsLoggedMem reports whether the effect produces a load-store-log entry.
func (e *Effect) IsLoggedMem() bool {
	return e.NMem > 0 || e.NonRepeat
}
