package emu

import (
	"fmt"
	"math"

	"paraverser/internal/isa"
)

// This file is the block-compiled execution path: instead of paying a
// full StepDecoded call per instruction (halt check, PC bounds check,
// interface-dispatched memory access, architectural-state stores), the
// executor walks the program's basic-block table and runs each
// straight-line block in one unrolled loop. PC and instret live in
// registers between block boundaries, memory accesses on the main-core
// path go through the hart's PageCache straight to raw page bytes, and
// one Effect per instruction is written into a caller-owned batch
// instead of being delivered through a callback.
//
// The opcode semantics below mirror Hart.StepDecoded exactly — the
// differential tests in block_test.go and internal/core hold the two
// paths bit-identical over every shipped workload. Fault interceptors
// are deliberately unsupported here; callers with an Interceptor fall
// back to the per-instruction loop (see Machine.RunBlocks).

// RunBlocks executes up to fuel instructions (further clamped to
// len(batch)) from the predecoded program dec using its basic-block
// table bt, filling batch[i] with the effect of the i-th executed
// instruction. It returns the number of instructions executed.
//
// Execution stops when fuel is exhausted, after a HALT retires (the
// halt's effect is the last in the batch), or on an environment error —
// in which case, exactly like StepDecoded, the failing instruction does
// not retire: its effect is not included in the count and the hart's PC
// and instret still name it.
//
// env serves memory, random and timer reads. When env is a *MainEnv the
// loads, stores and swaps bypass the interface and hit memory through
// the hart's PageCache; any other environment (the checker's
// log-replaying CheckerEnv) is served through the interface.
//
// Effects are written field-wise: fields whose meaning is guarded by
// another field (Mem entries beyond NMem) may hold stale bytes from a
// previous batch, matching the effIter replay convention — consumers
// never read past the guards.
//
//paralint:hotpath
func (h *Hart) RunBlocks(dec []isa.DecInst, bt *isa.BlockTable, env Env, batch []Effect, fuel int) (int, error) {
	if h.Halted {
		return 0, fmt.Errorf("emu: hart %d: step after halt", h.ID)
	}
	if fuel > len(batch) {
		fuel = len(batch)
	}
	menv, _ := env.(*MainEnv)
	var mem *Memory
	if menv != nil {
		mem = menv.Mem
	}

	n := 0
	pc := h.State.PC
	instret := h.Instret
	x := &h.State.X
	f := &h.State.F

	for n < fuel {
		if pc >= uint64(len(dec)) {
			h.State.PC, h.Instret = pc, instret
			return n, fmt.Errorf("emu: hart %d: pc %d out of range", h.ID, pc)
		}
		// Only the last instruction of [pc, end) can redirect control,
		// so the inner loop advances pc sequentially and re-enters the
		// outer loop (and its bounds check) only after a taken branch,
		// an indirect jump, or the block boundary.
		end := uint64(bt.End[pc])
		for pc < end && n < fuel {
			d := &dec[pc]
			in := d.Inst
			eff := &batch[n]
			eff.PC = pc
			eff.Inst = in
			eff.Class = d.Class
			eff.NextPC = pc + 1
			eff.Taken = false
			eff.Dec = d
			eff.NMem = 0
			eff.NonRepeat = false
			eff.NonRepeatVal = 0
			eff.WroteInt = false
			eff.WroteFP = false
			eff.Value = 0
			eff.Halted = false

			rs1, rs2 := x[in.Rs1], x[in.Rs2]
			var (
				vInt  uint64
				vFP   float64
				wrInt bool
				wrFP  bool
			)

			switch in.Op {
			case isa.OpADD:
				vInt, wrInt = rs1+rs2, true
			case isa.OpSUB:
				vInt, wrInt = rs1-rs2, true
			case isa.OpMUL:
				vInt, wrInt = rs1*rs2, true
			case isa.OpDIV:
				if rs2 == 0 {
					vInt, wrInt = ^uint64(0), true
				} else {
					vInt, wrInt = uint64(int64(rs1)/int64(rs2)), true
				}
			case isa.OpREM:
				if rs2 == 0 {
					vInt, wrInt = rs1, true
				} else {
					vInt, wrInt = uint64(int64(rs1)%int64(rs2)), true
				}
			case isa.OpAND:
				vInt, wrInt = rs1&rs2, true
			case isa.OpOR:
				vInt, wrInt = rs1|rs2, true
			case isa.OpXOR:
				vInt, wrInt = rs1^rs2, true
			case isa.OpSLL:
				vInt, wrInt = rs1<<(rs2&63), true
			case isa.OpSRL:
				vInt, wrInt = rs1>>(rs2&63), true
			case isa.OpSRA:
				vInt, wrInt = uint64(int64(rs1)>>(rs2&63)), true
			case isa.OpSLT:
				vInt, wrInt = boolToU64(int64(rs1) < int64(rs2)), true
			case isa.OpSLTU:
				vInt, wrInt = boolToU64(rs1 < rs2), true

			case isa.OpADDI:
				vInt, wrInt = rs1+d.ImmU, true
			case isa.OpANDI:
				vInt, wrInt = rs1&d.ImmU, true
			case isa.OpORI:
				vInt, wrInt = rs1|d.ImmU, true
			case isa.OpXORI:
				vInt, wrInt = rs1^d.ImmU, true
			case isa.OpSLLI:
				vInt, wrInt = rs1<<(d.ImmU&63), true
			case isa.OpSRLI:
				vInt, wrInt = rs1>>(d.ImmU&63), true
			case isa.OpSRAI:
				vInt, wrInt = uint64(int64(rs1)>>(d.ImmU&63)), true
			case isa.OpSLTI:
				vInt, wrInt = boolToU64(int64(rs1) < in.Imm), true
			case isa.OpLUI:
				vInt, wrInt = d.ImmU, true

			case isa.OpFADD:
				vFP, wrFP = f[in.Rs1]+f[in.Rs2], true
			case isa.OpFSUB:
				vFP, wrFP = f[in.Rs1]-f[in.Rs2], true
			case isa.OpFMUL:
				vFP, wrFP = f[in.Rs1]*f[in.Rs2], true
			case isa.OpFDIV:
				vFP, wrFP = f[in.Rs1]/f[in.Rs2], true
			case isa.OpFSQRT:
				vFP, wrFP = math.Sqrt(f[in.Rs1]), true
			case isa.OpFMIN:
				vFP, wrFP = math.Min(f[in.Rs1], f[in.Rs2]), true
			case isa.OpFMAX:
				vFP, wrFP = math.Max(f[in.Rs1], f[in.Rs2]), true
			case isa.OpFNEG:
				vFP, wrFP = -f[in.Rs1], true
			case isa.OpFABS:
				vFP, wrFP = math.Abs(f[in.Rs1]), true
			case isa.OpFCVTIF:
				vFP, wrFP = float64(int64(rs1)), true
			case isa.OpFCVTFI:
				vInt, wrInt = uint64(int64(f[in.Rs1])), true
			case isa.OpFMVIF:
				vFP, wrFP = math.Float64frombits(rs1), true
			case isa.OpFMVFI:
				vInt, wrInt = math.Float64bits(f[in.Rs1]), true
			case isa.OpFEQ:
				vInt, wrInt = boolToU64(f[in.Rs1] == f[in.Rs2]), true
			case isa.OpFLT:
				vInt, wrInt = boolToU64(f[in.Rs1] < f[in.Rs2]), true

			case isa.OpLD:
				addr := rs1 + d.ImmU
				var v uint64
				var err error
				if mem != nil {
					v, err = h.pcache.Load(mem, addr, in.Size)
				} else {
					v, err = env.Load(addr, in.Size)
				}
				if err != nil {
					h.State.PC, h.Instret = pc, instret
					return n, h.fault(err)
				}
				eff.addMem(MemLoad, addr, in.Size, v)
				vInt, wrInt = v, true
			case isa.OpFLD:
				addr := rs1 + d.ImmU
				var v uint64
				var err error
				if mem != nil {
					v, err = h.pcache.Load(mem, addr, 8)
				} else {
					v, err = env.Load(addr, 8)
				}
				if err != nil {
					h.State.PC, h.Instret = pc, instret
					return n, h.fault(err)
				}
				eff.addMem(MemLoad, addr, 8, v)
				vFP, wrFP = math.Float64frombits(v), true
			case isa.OpST:
				addr := rs1 + d.ImmU
				eff.addMem(MemStore, addr, in.Size, truncate(rs2, in.Size))
				var err error
				if mem != nil {
					err = h.pcache.Store(mem, addr, in.Size, rs2)
				} else {
					err = env.Store(addr, in.Size, rs2)
				}
				if err != nil {
					h.State.PC, h.Instret = pc, instret
					return n, h.fault(err)
				}
			case isa.OpFST:
				addr := rs1 + d.ImmU
				val := math.Float64bits(f[in.Rs2])
				eff.addMem(MemStore, addr, 8, val)
				var err error
				if mem != nil {
					err = h.pcache.Store(mem, addr, 8, val)
				} else {
					err = env.Store(addr, 8, val)
				}
				if err != nil {
					h.State.PC, h.Instret = pc, instret
					return n, h.fault(err)
				}
			case isa.OpGLD:
				a1 := rs1 + d.ImmU
				a2 := rs2
				var v1, v2 uint64
				var err error
				if mem != nil {
					v1, err = h.pcache.Load(mem, a1, in.Size)
				} else {
					v1, err = env.Load(a1, in.Size)
				}
				if err != nil {
					h.State.PC, h.Instret = pc, instret
					return n, h.fault(err)
				}
				if mem != nil {
					v2, err = h.pcache.Load(mem, a2, in.Size)
				} else {
					v2, err = env.Load(a2, in.Size)
				}
				if err != nil {
					h.State.PC, h.Instret = pc, instret
					return n, h.fault(err)
				}
				eff.addMem(MemLoad, a1, in.Size, v1)
				eff.addMem(MemLoad, a2, in.Size, v2)
				vInt, wrInt = v1+v2, true
			case isa.OpSST:
				a1 := rs1 + d.ImmU
				a2 := rs2
				val := x[in.Rd]
				eff.addMem(MemStore, a1, in.Size, truncate(val, in.Size))
				eff.addMem(MemStore, a2, in.Size, truncate(val, in.Size))
				var err error
				if mem != nil {
					err = h.pcache.Store(mem, a1, in.Size, val)
				} else {
					err = env.Store(a1, in.Size, val)
				}
				if err != nil {
					h.State.PC, h.Instret = pc, instret
					return n, h.fault(err)
				}
				if mem != nil {
					err = h.pcache.Store(mem, a2, in.Size, val)
				} else {
					err = env.Store(a2, in.Size, val)
				}
				if err != nil {
					h.State.PC, h.Instret = pc, instret
					return n, h.fault(err)
				}
			case isa.OpSWP:
				addr := rs1
				var old uint64
				var err error
				if mem != nil {
					// Mirrors MainEnv.Swap: an 8-byte load then store.
					old, err = h.pcache.Load(mem, addr, 8)
					if err == nil {
						err = h.pcache.Store(mem, addr, 8, rs2)
					}
				} else {
					old, err = env.Swap(addr, rs2)
				}
				if err != nil {
					h.State.PC, h.Instret = pc, instret
					return n, h.fault(err)
				}
				eff.addMem(MemLoad, addr, 8, old)
				eff.addMem(MemStore, addr, 8, rs2)
				vInt, wrInt = old, true

			case isa.OpBEQ:
				if rs1 == rs2 {
					eff.Taken = true
					eff.NextPC = pc + d.ImmU
				}
			case isa.OpBNE:
				if rs1 != rs2 {
					eff.Taken = true
					eff.NextPC = pc + d.ImmU
				}
			case isa.OpBLT:
				if int64(rs1) < int64(rs2) {
					eff.Taken = true
					eff.NextPC = pc + d.ImmU
				}
			case isa.OpBGE:
				if int64(rs1) >= int64(rs2) {
					eff.Taken = true
					eff.NextPC = pc + d.ImmU
				}
			case isa.OpBLTU:
				if rs1 < rs2 {
					eff.Taken = true
					eff.NextPC = pc + d.ImmU
				}
			case isa.OpBGEU:
				if rs1 >= rs2 {
					eff.Taken = true
					eff.NextPC = pc + d.ImmU
				}
			case isa.OpJAL:
				vInt, wrInt = pc+1, true
				eff.Taken = true
				eff.NextPC = pc + d.ImmU
			case isa.OpJALR:
				vInt, wrInt = pc+1, true
				eff.Taken = true
				eff.NextPC = rs1 + d.ImmU

			case isa.OpRAND:
				var v uint64
				var err error
				if menv != nil {
					v, err = menv.Rand()
				} else {
					v, err = env.Rand()
				}
				if err != nil {
					h.State.PC, h.Instret = pc, instret
					return n, h.fault(err)
				}
				eff.NonRepeat, eff.NonRepeatVal = true, v
				vInt, wrInt = v, true
			case isa.OpCYCLE:
				var v uint64
				var err error
				if menv != nil {
					v, err = menv.CycleRead(instret)
				} else {
					v, err = env.CycleRead(instret)
				}
				if err != nil {
					h.State.PC, h.Instret = pc, instret
					return n, h.fault(err)
				}
				eff.NonRepeat, eff.NonRepeatVal = true, v
				vInt, wrInt = v, true

			case isa.OpNOP, isa.OpPAUSE:
			case isa.OpHALT:
				eff.Halted = true
				h.Halted = true
			default:
				h.State.PC, h.Instret = pc, instret
				return n, fmt.Errorf("emu: hart %d: pc %d: unimplemented op %s", h.ID, pc, in.Op)
			}

			if wrInt {
				eff.WroteInt, eff.Value = true, vInt
				if in.Rd != isa.Zero {
					x[in.Rd] = vInt
				}
			} else if wrFP {
				bits := math.Float64bits(vFP)
				eff.WroteFP, eff.Value = true, bits
				f[in.Rd] = math.Float64frombits(bits)
			}

			n++
			instret++
			npc := eff.NextPC
			if h.Halted {
				h.State.PC, h.Instret = npc, instret
				return n, nil
			}
			if npc != pc+1 {
				pc = npc
				break // control left the straight line: re-check bounds
			}
			pc = npc
		}
	}
	h.State.PC, h.Instret = pc, instret
	return n, nil
}
