package emu

import (
	"testing"

	"paraverser/internal/asm"
	"paraverser/internal/isa"
	"paraverser/internal/workload/gap"
	"paraverser/internal/workload/parsec"
	"paraverser/internal/workload/spec"
)

func progOnly(p *isa.Program, _ uint64) *isa.Program { return p }

// shippedWorkloadPrograms regenerates the full shipped-workload set at
// small scale: the synthetic SPEC profiles, the GAP graph kernels and
// the PARSEC-style kernels (including the multi-hart blackscholes
// build, whose hart 0 the differential harness exercises).
func shippedWorkloadPrograms(t *testing.T) []*isa.Program {
	t.Helper()
	var progs []*isa.Program
	for _, p := range spec.Profiles() {
		prog, err := p.Build(64)
		if err != nil {
			t.Fatalf("spec %s: %v", p.Name, err)
		}
		progs = append(progs, prog)
	}
	g := gap.Uniform(64, 4, 1)
	progs = append(progs,
		progOnly(gap.BFS(g, 0)), progOnly(gap.PageRank(g, 3)), progOnly(gap.SSSP(g, 0)),
		progOnly(gap.CC(g)), progOnly(gap.TC(g)), progOnly(gap.BC(g, 0)))
	for _, k := range parsec.Kernels(0) {
		progs = append(progs, k.Prog)
	}
	progs = append(progs, parsec.BlackscholesThreads(16, 1))
	return progs
}

// TestRunBlocksEquivalenceWorkloads is the workload half of the PR 8
// differential gate (TestRunBlocksEquivalenceRandom covers adversarial
// random programs): every shipped workload program AND its decorrelated
// divergent-mode variant, executed through the block-compiled path in
// randomly sized batches, must match per-instruction stepping bit for
// bit — architectural state, effects, memory image, and error
// placement.
func TestRunBlocksEquivalenceWorkloads(t *testing.T) {
	for _, prog := range shippedWorkloadPrograms(t) {
		t.Run(prog.Name, func(t *testing.T) {
			runBlocksDifferential(t, prog, 42, 15000, int64(len(prog.Insts)))
			v, err := asm.Decorrelate(prog, asm.DecorrelateOptions{})
			if err != nil {
				t.Fatalf("decorrelate: %v", err)
			}
			runBlocksDifferential(t, v.Prog, 42, 15000, int64(len(prog.Insts))+1)
		})
	}
}
