package emu

import (
	"testing"

	"paraverser/internal/asm"
	"paraverser/internal/isa"
)

// benchLoopMachine builds a machine running an endless mixed loop
// (pointer-chased loads/stores, ALU, FP, a data-dependent branch) and
// warms it up so every page the loop touches is already mapped.
func benchLoopMachine(tb testing.TB) *Machine {
	const bufWords = 4096
	b := asm.New("bench-loop")
	buf := b.Reserve(bufWords * 8)
	const (
		rBase = isa.Reg(5)
		rIdx  = isa.Reg(6)
		rAddr = isa.Reg(7)
		rVal  = isa.Reg(8)
		rTmp  = isa.Reg(9)
		rAcc  = isa.Reg(10)
		rIter = isa.Reg(20)
		rZero = isa.Reg(21)
	)
	b.Li(rBase, int64(b.DataAddr(buf)))
	b.Li(rIter, 0)
	b.Li(rZero, 0)
	b.Label("loop")
	b.Andi(rIdx, rIter, bufWords-1)
	b.Slli(rIdx, rIdx, 3)
	b.Add(rAddr, rBase, rIdx)
	b.Ld(8, rVal, rAddr, 0)
	b.Addi(rVal, rVal, 3)
	b.St(8, rVal, rAddr, 0)
	b.Fcvtif(1, rVal)
	b.Fmul(2, 1, 1)
	b.Andi(rTmp, rVal, 7)
	b.Beq(rTmp, rZero, "skip")
	b.Xor(rAcc, rAcc, rVal)
	b.Label("skip")
	b.Addi(rIter, rIter, 1)
	b.Jmp("loop")
	prog := b.MustBuild()
	m, err := NewMachine(prog, 1)
	if err != nil {
		tb.Fatal(err)
	}
	var eff Effect
	for i := 0; i < bufWords*16; i++ { // touch every buffer page once
		if err := m.StepHart(0, &eff); err != nil {
			tb.Fatal(err)
		}
	}
	return m
}

// TestHartStepZeroAlloc pins the predecoded hot path: in steady state,
// emulating one instruction (including effect materialisation and
// memory access) performs zero heap allocations.
func TestHartStepZeroAlloc(t *testing.T) {
	m := benchLoopMachine(t)
	var eff Effect
	allocs := testing.AllocsPerRun(10000, func() {
		if err := m.StepHart(0, &eff); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Hart.Step allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkHartStep measures the emulate path alone.
func BenchmarkHartStep(b *testing.B) {
	m := benchLoopMachine(b)
	var eff Effect
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.StepHart(0, &eff); err != nil {
			b.Fatal(err)
		}
	}
}
