//paralint:deterministic

// Package emu implements the functional emulator for the repo ISA:
// architectural state, sparse byte-addressable memory shared between
// harts, per-instruction effect records (the raw material for load-store
// logging, timing simulation and checking), and pluggable environments so
// checker cores can re-execute instructions with loads served from a
// load-store log instead of memory.
package emu

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// pageBits gives 4KiB pages.
const pageBits = 12
const pageSize = 1 << pageBits

type page [pageSize]byte

// Memory is a sparse, paged, byte-addressable memory. The zero value is
// ready to use. Memory is not safe for concurrent use; multi-hart
// programs are interleaved deterministically on one goroutine.
type Memory struct {
	pages map[uint64]*page
	// ro marks pages shared with a snapshot (Snapshot /
	// NewMemoryFromSnapshot): a write must copy such a page into a
	// private one first. nil until the first snapshot, so memories that
	// never snapshot pay a single nil check per write.
	ro map[uint64]bool
	// One-entry page cache: accesses are heavily page-local, so most
	// loads and stores skip the map lookup entirely. lastRO mirrors the
	// ro status of the cached page so the write path never scribbles on
	// a shared page through the cache.
	lastPN   uint64
	lastPage *page
	lastRO   bool
	// gen counts every event that changes page identity or
	// permissions: page creation, copy-on-write replacement, and
	// Snapshot marking pages read-only. External page caches
	// (PageCache) compare it to detect that a raw *page pointer they
	// hold may be stale or no longer writable.
	gen uint64
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// pageFor is the read-path lookup: nil when the page is unmapped.
func (m *Memory) pageFor(addr uint64) *page {
	pn := addr >> pageBits
	if p := m.lastPage; p != nil && pn == m.lastPN {
		return p
	}
	p := m.pages[pn]
	if p != nil {
		m.lastPN, m.lastPage = pn, p
		m.lastRO = m.ro != nil && m.ro[pn]
	}
	return p
}

// pageForWrite returns a writable page for addr, creating it when
// unmapped and copying it first when shared with a snapshot.
func (m *Memory) pageForWrite(addr uint64) *page {
	pn := addr >> pageBits
	if p := m.lastPage; p != nil && pn == m.lastPN && !m.lastRO {
		return p
	}
	p := m.pages[pn]
	switch {
	case p == nil:
		p = new(page)
		m.pages[pn] = p
		m.gen++
	case m.ro != nil && m.ro[pn]:
		cp := new(page)
		*cp = *p
		m.pages[pn] = cp
		delete(m.ro, pn)
		p = cp
		m.gen++
	}
	m.lastPN, m.lastPage, m.lastRO = pn, p, false
	return p
}

// Load reads size bytes (1, 2, 4 or 8) little-endian, zero-extended.
// Unmapped memory reads as zero.
func (m *Memory) Load(addr uint64, size uint8) (uint64, error) {
	if err := checkSize(size); err != nil {
		return 0, err
	}
	// Fast path: access within one page.
	off := addr & (pageSize - 1)
	if off+uint64(size) <= pageSize {
		p := m.pageFor(addr)
		if p == nil {
			return 0, nil
		}
		switch size {
		case 1:
			return uint64(p[off]), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:])), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:])), nil
		default:
			return binary.LittleEndian.Uint64(p[off:]), nil
		}
	}
	// Page-straddling access: byte at a time.
	var v uint64
	for i := uint8(0); i < size; i++ {
		b := m.loadByte(addr + uint64(i))
		v |= uint64(b) << (8 * i)
	}
	return v, nil
}

func (m *Memory) loadByte(addr uint64) byte {
	p := m.pageFor(addr)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// Store writes the low size bytes of val little-endian.
func (m *Memory) Store(addr uint64, size uint8, val uint64) error {
	if err := checkSize(size); err != nil {
		return err
	}
	off := addr & (pageSize - 1)
	if off+uint64(size) <= pageSize {
		p := m.pageForWrite(addr)
		switch size {
		case 1:
			p[off] = byte(val)
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(val))
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(val))
		default:
			binary.LittleEndian.PutUint64(p[off:], val)
		}
		return nil
	}
	for i := uint8(0); i < size; i++ {
		p := m.pageForWrite(addr + uint64(i))
		p[(addr+uint64(i))&(pageSize-1)] = byte(val >> (8 * i))
	}
	return nil
}

// WriteBytes copies raw bytes into memory page-at-a-time (used to
// materialise data segments, which run to tens of megabytes for the SPEC
// working sets).
func (m *Memory) WriteBytes(addr uint64, data []byte) {
	for len(data) > 0 {
		off := addr & (pageSize - 1)
		n := uint64(pageSize) - off
		if uint64(len(data)) < n {
			n = uint64(len(data))
		}
		p := m.pageForWrite(addr)
		copy(p[off:off+n], data[:n])
		addr += n
		data = data[n:]
	}
}

// ReadBytes copies n bytes out of memory page-at-a-time.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	dst := out
	for len(dst) > 0 {
		off := addr & (pageSize - 1)
		span := uint64(pageSize) - off
		if uint64(len(dst)) < span {
			span = uint64(len(dst))
		}
		if p := m.pageFor(addr); p != nil {
			copy(dst[:span], p[off:off+span])
		}
		addr += span
		dst = dst[span:]
	}
	return out
}

// PagesMapped returns the number of resident 4KiB pages, for footprint
// assertions in tests.
func (m *Memory) PagesMapped() int { return len(m.pages) }

// ForEachPage calls fn for every resident page in ascending base-address
// order with the page's 4KiB contents. The slice aliases live memory and
// must not be retained. Deterministic iteration lets callers rebuild
// translated images (the divergent checker's private-memory resync)
// byte-identically run to run.
func (m *Memory) ForEachPage(fn func(base uint64, data []byte)) {
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	for _, pn := range pns {
		fn(pn<<pageBits, m.pages[pn][:])
	}
}

func checkSize(size uint8) error {
	switch size {
	case 1, 2, 4, 8:
		return nil
	default:
		return fmt.Errorf("emu: bad access size %d", size)
	}
}
