package emu

import (
	"math/rand"
	"reflect"
	"testing"

	"paraverser/internal/isa"
)

// canonEffect zeroes the fields whose meaning is guarded by another
// field (Mem entries beyond NMem may hold stale bytes on the batched
// path, matching the effIter replay convention) so the two execution
// paths can be compared for bit-identity on everything consumers read.
func canonEffect(e *Effect) {
	for i := e.NMem; i < MaxMemOps; i++ {
		e.Mem[i] = MemOp{}
	}
}

// randProgram generates a seeded random branchy program: dense ALU/FP
// traffic on x1-x15 / f1-f7, loads and stores both inside the data
// segment and at register-derived sparse addresses (including unaligned
// and page-straddling ones), conditional branches and JALs to uniform
// targets, an indirect JALR through a pinned register, RAND/CYCLE
// reads, and scattered HALTs. Every program passes Validate.
func randProgram(seed int64, n int) *isa.Program {
	rng := rand.New(rand.NewSource(seed))
	const dataBytes = 1 << 14
	insts := make([]isa.Inst, 0, n+4)
	// Prologue: x20 = data base, x21 = a valid code index for JALR.
	insts = append(insts,
		isa.Inst{Op: isa.OpLUI, Rd: 20, Imm: int64(isa.DefaultDataBase)},
		isa.Inst{Op: isa.OpLUI, Rd: 21, Imm: int64(n / 2)},
		isa.Inst{Op: isa.OpLUI, Rd: 22, Imm: 0x7FFF},
	)
	reg := func() isa.Reg { return isa.Reg(1 + rng.Intn(15)) }
	for len(insts) < n {
		pc := len(insts)
		var in isa.Inst
		switch r := rng.Intn(100); {
		case r < 40: // integer ALU
			ops := []isa.Op{isa.OpADD, isa.OpSUB, isa.OpXOR, isa.OpAND, isa.OpOR,
				isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpSLT, isa.OpSLTU,
				isa.OpMUL, isa.OpDIV, isa.OpREM,
				isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpSLTI, isa.OpLUI}
			in = isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: reg(), Rs1: reg(), Rs2: reg(),
				Imm: int64(rng.Intn(1 << 12))}
		case r < 50: // FP
			ops := []isa.Op{isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFMIN, isa.OpFMAX,
				isa.OpFNEG, isa.OpFABS, isa.OpFCVTIF, isa.OpFCVTFI, isa.OpFMVIF,
				isa.OpFMVFI, isa.OpFEQ, isa.OpFLT}
			in = isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: isa.Reg(1 + rng.Intn(7)),
				Rs1: isa.Reg(1 + rng.Intn(7)), Rs2: isa.Reg(1 + rng.Intn(7))}
		case r < 70: // memory: mostly in-segment, sometimes register-wild
			sizes := []uint8{1, 2, 4, 8}
			size := sizes[rng.Intn(len(sizes))]
			base := isa.Reg(20)
			imm := int64(rng.Intn(dataBytes - 8))
			if rng.Intn(8) == 0 { // sparse/unaligned/straddling stress
				base = reg()
				imm = int64(rng.Intn(1 << 13))
			}
			switch rng.Intn(7) {
			case 0, 1, 2:
				in = isa.Inst{Op: isa.OpLD, Rd: reg(), Rs1: base, Size: size, Imm: imm}
			case 3, 4:
				in = isa.Inst{Op: isa.OpST, Rs1: base, Rs2: reg(), Size: size, Imm: imm}
			case 5:
				if rng.Intn(2) == 0 {
					in = isa.Inst{Op: isa.OpFLD, Rd: isa.Reg(1 + rng.Intn(7)), Rs1: base, Size: 8, Imm: imm}
				} else {
					in = isa.Inst{Op: isa.OpFST, Rs1: base, Rs2: isa.Reg(1 + rng.Intn(7)), Size: 8, Imm: imm}
				}
			default:
				switch rng.Intn(3) {
				case 0:
					in = isa.Inst{Op: isa.OpGLD, Rd: reg(), Rs1: base, Rs2: isa.Reg(20), Size: size, Imm: imm}
				case 1:
					in = isa.Inst{Op: isa.OpSST, Rd: reg(), Rs1: base, Rs2: isa.Reg(20), Size: size, Imm: imm}
				default:
					in = isa.Inst{Op: isa.OpSWP, Rd: reg(), Rs1: isa.Reg(20), Rs2: reg(), Size: 8}
				}
			}
		case r < 90: // control flow
			tgt := rng.Intn(n)
			ops := []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU}
			switch rng.Intn(8) {
			case 6:
				in = isa.Inst{Op: isa.OpJAL, Rd: isa.Reg(rng.Intn(2)), Imm: int64(tgt - pc)}
			case 7:
				in = isa.Inst{Op: isa.OpJALR, Rd: 0, Rs1: 21}
			default:
				in = isa.Inst{Op: ops[rng.Intn(len(ops))], Rs1: reg(), Rs2: reg(), Imm: int64(tgt - pc)}
			}
		case r < 96:
			if rng.Intn(2) == 0 {
				in = isa.Inst{Op: isa.OpRAND, Rd: reg()}
			} else {
				in = isa.Inst{Op: isa.OpCYCLE, Rd: reg()}
			}
		case r < 98:
			in = isa.Inst{Op: isa.OpNOP}
		default:
			in = isa.Inst{Op: isa.OpHALT}
		}
		insts = append(insts, in)
	}
	insts = append(insts, isa.Inst{Op: isa.OpHALT})
	data := make([]byte, dataBytes)
	rng.Read(data)
	return &isa.Program{
		Name:     "rand-branchy",
		Insts:    insts,
		Data:     data,
		DataBase: isa.DefaultDataBase,
		Entries:  []uint64{0},
	}
}

// runBlocksDifferential locks the two execution paths together over one
// program: machine B executes through RunBlocks in randomly sized
// batches, machine A steps the same instruction counts one at a time,
// and after every batch the architectural state, instret, halt flags,
// effects and full memory image must be bit-identical. Errors must
// occur at the same instruction with the same message.
func runBlocksDifferential(t *testing.T, prog *isa.Program, seed uint64, limit int, chunkSeed int64) {
	t.Helper()
	ma, err := NewMachine(prog, seed)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := NewMachine(prog, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(chunkSeed))
	batch := make([]Effect, 128)
	var eff Effect
	executed := 0
	for executed < limit && !mb.Harts[0].Halted {
		fuel := 1 + rng.Intn(len(batch))
		if rem := limit - executed; fuel > rem {
			fuel = rem
		}
		n, berr := mb.RunBlocks(0, batch, fuel)
		for i := 0; i < n; i++ {
			if serr := ma.StepHart(0, &eff); serr != nil {
				t.Fatalf("inst %d: step path errored (%v) where block path did not", executed+i, serr)
			}
			canonEffect(&eff)
			canonEffect(&batch[i])
			if !reflect.DeepEqual(eff, batch[i]) {
				t.Fatalf("inst %d: effect mismatch\nstep:  %+v\nblock: %+v", executed+i, eff, batch[i])
			}
		}
		executed += n
		if berr != nil {
			serr := ma.StepHart(0, &eff)
			if serr == nil {
				t.Fatalf("inst %d: block path errored (%v) where step path did not", executed, berr)
			}
			if serr.Error() != berr.Error() {
				t.Fatalf("inst %d: error mismatch\nstep:  %v\nblock: %v", executed, serr, berr)
			}
			break
		}
		ha, hb := ma.Harts[0], mb.Harts[0]
		if ha.State != hb.State || ha.Instret != hb.Instret || ha.Halted != hb.Halted {
			t.Fatalf("inst %d: state mismatch\nstep:  pc=%d instret=%d halted=%v\nblock: pc=%d instret=%d halted=%v",
				executed, ha.State.PC, ha.Instret, ha.Halted, hb.State.PC, hb.Instret, hb.Halted)
		}
		if ha.State.X != hb.State.X || ha.State.F != hb.State.F {
			t.Fatalf("inst %d: register file mismatch", executed)
		}
	}
	memEqual(t, ma.Mem, mb.Mem)
}

func memEqual(t *testing.T, a, b *Memory) {
	t.Helper()
	pagesA := map[uint64][]byte{}
	a.ForEachPage(func(base uint64, data []byte) {
		cp := make([]byte, len(data))
		copy(cp, data)
		pagesA[base] = cp
	})
	count := 0
	b.ForEachPage(func(base uint64, data []byte) {
		count++
		want, ok := pagesA[base]
		if !ok {
			t.Errorf("block path mapped page %#x that step path did not", base)
			return
		}
		if !reflect.DeepEqual(want, data) {
			t.Errorf("page %#x contents differ between paths", base)
		}
	})
	if count != len(pagesA) {
		t.Errorf("page counts differ: step %d, block %d", len(pagesA), count)
	}
}

// TestRunBlocksEquivalenceRandom is the emu half of the PR 8
// differential gate: seeded random branchy programs executed through
// the block-compiled path must match per-instruction stepping bit for
// bit — state, effects, memory image, and error placement.
func TestRunBlocksEquivalenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		prog := randProgram(seed, 400)
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		runBlocksDifferential(t, prog, uint64(seed), 20000, seed*7+1)
	}
}

// TestRunBlocksEquivalenceBenchLoop pins the differential gate on the
// page-local mixed loop the micro-benchmarks run.
func TestRunBlocksEquivalenceBenchLoop(t *testing.T) {
	b := benchLoopMachine(t)
	runBlocksDifferential(t, b.Prog, 1, 30000, 99)
}

// TestRunBlocksAfterHalt: calling into the block path on a halted hart
// fails exactly like StepDecoded.
func TestRunBlocksAfterHalt(t *testing.T) {
	prog := &isa.Program{Name: "halt", Insts: []isa.Inst{{Op: isa.OpHALT}}, Entries: []uint64{0}}
	m, err := NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Effect, 8)
	n, err := m.RunBlocks(0, batch, 8)
	if err != nil || n != 1 || !batch[0].Halted {
		t.Fatalf("first run: n=%d err=%v halted=%v", n, err, batch[0].Halted)
	}
	if _, err := m.RunBlocks(0, batch, 8); err == nil {
		t.Fatal("run after halt succeeded")
	}
}

// TestPageCacheAliasing is the satellite-3 regression: a PageCache
// holding a raw page pointer must observe copy-on-write replacements
// made through a different path, and must never scribble on pages a
// snapshot shares.
func TestPageCacheAliasing(t *testing.T) {
	mem := NewMemory()
	if err := mem.Store(0x1000, 8, 0xA1); err != nil {
		t.Fatal(err)
	}
	var c1, c2 PageCache
	if v, _ := c2.Load(mem, 0x1000, 8); v != 0xA1 {
		t.Fatalf("c2 initial load = %#x", v)
	}
	snap := mem.Snapshot()

	// Write through c1: the page is now copy-on-write; the write must
	// land in a private copy, not the snapshot-shared page.
	if err := c1.Store(mem, 0x1000, 8, 0xB2); err != nil {
		t.Fatal(err)
	}
	if v, _ := NewMemoryFromSnapshot(snap).Load(0x1000, 8); v != 0xA1 {
		t.Fatalf("snapshot scribbled: %#x", v)
	}
	// The aliasing case proper: c2 cached the pre-COW page pointer; its
	// next load must see the post-COW data, not the stale page.
	if v, _ := c2.Load(mem, 0x1000, 8); v != 0xB2 {
		t.Fatalf("c2 read stale pre-COW page: %#x, want 0xB2", v)
	}
	// Cross-memory: the caches must miss on a different Memory even at
	// the same page number.
	m2 := NewMemoryFromSnapshot(snap)
	if v, _ := c1.Load(m2, 0x1000, 8); v != 0xA1 {
		t.Fatalf("c1 leaked across memories: %#x, want 0xA1", v)
	}
	// Cross-page write replaces the entry; the original page rereads
	// correctly afterwards.
	if err := c1.Store(mem, 0x5000, 8, 0xC3); err != nil {
		t.Fatal(err)
	}
	if v, _ := c1.Load(mem, 0x1000, 8); v != 0xB2 {
		t.Fatalf("after cross-page write: %#x, want 0xB2", v)
	}
	// Straddling accesses take the byte path but stay coherent.
	if err := c1.Store(mem, 0x1FFC, 8, 0xDDEE_FF00_1122_3344); err != nil {
		t.Fatal(err)
	}
	if v, _ := c1.Load(mem, 0x1FFC, 8); v != 0xDDEE_FF00_1122_3344 {
		t.Fatalf("straddling readback: %#x", v)
	}
}

// TestRunBlocksZeroAlloc pins the block-compiled hot path at zero heap
// allocations per batch in steady state.
func TestRunBlocksZeroAlloc(t *testing.T) {
	m := benchLoopMachine(t)
	batch := make([]Effect, 256)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := m.RunBlocks(0, batch, len(batch)); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("RunBlocks allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkRunBlock measures the block-compiled emulate path in
// per-instruction terms: each iteration is one executed instruction
// (batches of up to 256), directly comparable to BenchmarkHartStep.
func BenchmarkRunBlock(b *testing.B) {
	m := benchLoopMachine(b)
	batch := make([]Effect, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		fuel := len(batch)
		if rem := b.N - done; rem < fuel {
			fuel = rem
		}
		n, err := m.RunBlocks(0, batch, fuel)
		if err != nil {
			b.Fatal(err)
		}
		done += n
	}
}
