package emu

import (
	"fmt"
	"math"

	"paraverser/internal/isa"
)

// ArchState is the architectural register state of one hart: the register
// checkpoint unit (RCU) copies exactly this, 776 bytes in the paper's
// accounting (section VII-E).
type ArchState struct {
	PC uint64
	X  [isa.NumIntRegs]uint64
	F  [isa.NumFPRegs]float64
}

// Env is the environment an instruction executes against. The main core
// uses a MainEnv (real memory plus real random/cycle sources); a checker
// core substitutes a log-replaying environment so loads, swaps and
// non-repeatable values come from the load-store log (section IV-B).
type Env interface {
	Load(addr uint64, size uint8) (uint64, error)
	Store(addr uint64, size uint8, val uint64) error
	// Swap atomically exchanges an 8-byte value, returning the old value.
	Swap(addr uint64, newVal uint64) (uint64, error)
	// Rand returns the next non-repeatable random value.
	Rand() (uint64, error)
	// CycleRead returns the value of a timer read at the given retired-
	// instruction count.
	CycleRead(instret uint64) (uint64, error)
}

// Interceptor mutates instruction results to model hardware faults. A nil
// Interceptor means fault-free execution.
type Interceptor interface {
	// Result may corrupt the value an instruction is about to write to
	// its destination register. fp reports whether the destination is an
	// FP register.
	Result(in isa.Inst, class isa.Class, fp bool, v uint64) uint64
	// Address may corrupt an effective address before the access is
	// performed (modelling LSQ faults).
	Address(in isa.Inst, addr uint64) uint64
}

// DataInterceptor optionally extends Interceptor with a memory-path data
// hook: LoadData may corrupt the value a load returns, after the
// environment access but before the value is logged or written back —
// modelling faults on the fill path (DRAM cell or row faults, bus
// stuck-ats) that corrupt what the core observes without touching the
// stored image.
type DataInterceptor interface {
	Interceptor
	LoadData(in isa.Inst, addr uint64, v uint64) uint64
}

// loadData applies the DataInterceptor hook when intc implements it.
func loadData(intc Interceptor, in isa.Inst, addr uint64, v uint64) uint64 {
	if di, ok := intc.(DataInterceptor); ok {
		return di.LoadData(in, addr, v)
	}
	return v
}

// Hart is one hardware thread: architectural state plus retired count.
type Hart struct {
	ID      int
	State   ArchState
	Instret uint64
	Halted  bool

	// pcache is the hart's one-entry page cache, used by the
	// block-compiled execution path (RunBlocks) to serve page-local
	// memory accesses without the Memory map lookup. Purely a cache:
	// it never holds architectural state, so snapshots and restores
	// ignore it.
	pcache PageCache
}

// NewHart returns a hart with its stack pointer initialised.
func NewHart(id int, entry uint64) *Hart {
	h := &Hart{ID: id}
	h.State.PC = entry
	h.State.X[isa.SP] = isa.StackBase - uint64(id)*isa.StackStride
	h.State.X[isa.TP] = uint64(id)
	return h
}

// Step executes one instruction from prog against env, filling eff with
// the complete architectural record. intc, if non-nil, may corrupt
// results and addresses (fault injection). Equivalent to StepDecoded over
// the program's cached predecode table.
func (h *Hart) Step(prog *isa.Program, env Env, intc Interceptor, eff *Effect) error {
	return h.StepDecoded(prog.Decoded(), env, intc, eff)
}

// StepDecoded executes one instruction from a predecoded program. This is
// the hot path: no closures, no per-step decode switches beyond the
// opcode dispatch itself, and no heap allocation on the fault-free path.
//
//paralint:hotpath
func (h *Hart) StepDecoded(dec []isa.DecInst, env Env, intc Interceptor, eff *Effect) error {
	if h.Halted {
		return fmt.Errorf("emu: hart %d: step after halt", h.ID)
	}
	pc := h.State.PC
	if pc >= uint64(len(dec)) {
		return fmt.Errorf("emu: hart %d: pc %d out of range", h.ID, pc)
	}
	d := &dec[pc]
	in := d.Inst

	// Field-wise reset, matching RunBlocks: a whole-struct assignment
	// would clear the 128-byte Mem array too, which costs a duffcopy per
	// instruction for bytes every consumer already guards behind NMem.
	eff.PC = pc
	eff.Inst = in
	eff.Class = d.Class
	eff.NextPC = pc + 1
	eff.Taken = false
	eff.Dec = d
	eff.NMem = 0
	eff.NonRepeat = false
	eff.NonRepeatVal = 0
	eff.WroteInt = false
	eff.WroteFP = false
	eff.Value = 0
	eff.Halted = false

	x := &h.State.X
	f := &h.State.F
	rs1, rs2 := x[in.Rs1], x[in.Rs2]

	// Destination writes are staged here and applied after the opcode
	// dispatch, replacing the old per-step writeInt/writeFP closures.
	var (
		vInt  uint64
		vFP   float64
		wrInt bool
		wrFP  bool
	)

	switch in.Op {
	case isa.OpADD:
		vInt, wrInt = rs1+rs2, true
	case isa.OpSUB:
		vInt, wrInt = rs1-rs2, true
	case isa.OpMUL:
		vInt, wrInt = rs1*rs2, true
	case isa.OpDIV:
		if rs2 == 0 {
			vInt, wrInt = ^uint64(0), true
		} else {
			vInt, wrInt = uint64(int64(rs1)/int64(rs2)), true
		}
	case isa.OpREM:
		if rs2 == 0 {
			vInt, wrInt = rs1, true
		} else {
			vInt, wrInt = uint64(int64(rs1)%int64(rs2)), true
		}
	case isa.OpAND:
		vInt, wrInt = rs1&rs2, true
	case isa.OpOR:
		vInt, wrInt = rs1|rs2, true
	case isa.OpXOR:
		vInt, wrInt = rs1^rs2, true
	case isa.OpSLL:
		vInt, wrInt = rs1<<(rs2&63), true
	case isa.OpSRL:
		vInt, wrInt = rs1>>(rs2&63), true
	case isa.OpSRA:
		vInt, wrInt = uint64(int64(rs1)>>(rs2&63)), true
	case isa.OpSLT:
		vInt, wrInt = boolToU64(int64(rs1) < int64(rs2)), true
	case isa.OpSLTU:
		vInt, wrInt = boolToU64(rs1 < rs2), true

	case isa.OpADDI:
		vInt, wrInt = rs1+d.ImmU, true
	case isa.OpANDI:
		vInt, wrInt = rs1&d.ImmU, true
	case isa.OpORI:
		vInt, wrInt = rs1|d.ImmU, true
	case isa.OpXORI:
		vInt, wrInt = rs1^d.ImmU, true
	case isa.OpSLLI:
		vInt, wrInt = rs1<<(d.ImmU&63), true
	case isa.OpSRLI:
		vInt, wrInt = rs1>>(d.ImmU&63), true
	case isa.OpSRAI:
		vInt, wrInt = uint64(int64(rs1)>>(d.ImmU&63)), true
	case isa.OpSLTI:
		vInt, wrInt = boolToU64(int64(rs1) < in.Imm), true
	case isa.OpLUI:
		vInt, wrInt = d.ImmU, true

	case isa.OpFADD:
		vFP, wrFP = f[in.Rs1]+f[in.Rs2], true
	case isa.OpFSUB:
		vFP, wrFP = f[in.Rs1]-f[in.Rs2], true
	case isa.OpFMUL:
		vFP, wrFP = f[in.Rs1]*f[in.Rs2], true
	case isa.OpFDIV:
		vFP, wrFP = f[in.Rs1]/f[in.Rs2], true
	case isa.OpFSQRT:
		vFP, wrFP = math.Sqrt(f[in.Rs1]), true
	case isa.OpFMIN:
		vFP, wrFP = math.Min(f[in.Rs1], f[in.Rs2]), true
	case isa.OpFMAX:
		vFP, wrFP = math.Max(f[in.Rs1], f[in.Rs2]), true
	case isa.OpFNEG:
		vFP, wrFP = -f[in.Rs1], true
	case isa.OpFABS:
		vFP, wrFP = math.Abs(f[in.Rs1]), true
	case isa.OpFCVTIF:
		vFP, wrFP = float64(int64(rs1)), true
	case isa.OpFCVTFI:
		vInt, wrInt = uint64(int64(f[in.Rs1])), true
	case isa.OpFMVIF:
		vFP, wrFP = math.Float64frombits(rs1), true
	case isa.OpFMVFI:
		vInt, wrInt = math.Float64bits(f[in.Rs1]), true
	case isa.OpFEQ:
		vInt, wrInt = boolToU64(f[in.Rs1] == f[in.Rs2]), true
	case isa.OpFLT:
		vInt, wrInt = boolToU64(f[in.Rs1] < f[in.Rs2]), true

	case isa.OpLD:
		addr := rs1 + d.ImmU
		if intc != nil {
			addr = intc.Address(in, addr)
		}
		v, err := env.Load(addr, in.Size)
		if err != nil {
			return h.fault(err)
		}
		if intc != nil {
			v = loadData(intc, in, addr, v)
		}
		eff.addMem(MemLoad, addr, in.Size, v)
		vInt, wrInt = v, true
	case isa.OpFLD:
		addr := rs1 + d.ImmU
		if intc != nil {
			addr = intc.Address(in, addr)
		}
		v, err := env.Load(addr, 8)
		if err != nil {
			return h.fault(err)
		}
		if intc != nil {
			v = loadData(intc, in, addr, v)
		}
		eff.addMem(MemLoad, addr, 8, v)
		vFP, wrFP = math.Float64frombits(v), true
	case isa.OpST:
		addr := rs1 + d.ImmU
		if intc != nil {
			addr = intc.Address(in, addr)
		}
		eff.addMem(MemStore, addr, in.Size, truncate(rs2, in.Size))
		if err := env.Store(addr, in.Size, rs2); err != nil {
			return h.fault(err)
		}
	case isa.OpFST:
		addr := rs1 + d.ImmU
		if intc != nil {
			addr = intc.Address(in, addr)
		}
		val := math.Float64bits(f[in.Rs2])
		eff.addMem(MemStore, addr, 8, val)
		if err := env.Store(addr, 8, val); err != nil {
			return h.fault(err)
		}
	case isa.OpGLD:
		a1 := rs1 + d.ImmU
		a2 := rs2
		if intc != nil {
			a1 = intc.Address(in, a1)
			a2 = intc.Address(in, a2)
		}
		v1, err := env.Load(a1, in.Size)
		if err != nil {
			return h.fault(err)
		}
		v2, err := env.Load(a2, in.Size)
		if err != nil {
			return h.fault(err)
		}
		if intc != nil {
			v1 = loadData(intc, in, a1, v1)
			v2 = loadData(intc, in, a2, v2)
		}
		eff.addMem(MemLoad, a1, in.Size, v1)
		eff.addMem(MemLoad, a2, in.Size, v2)
		vInt, wrInt = v1+v2, true
	case isa.OpSST:
		a1 := rs1 + d.ImmU
		a2 := rs2
		if intc != nil {
			a1 = intc.Address(in, a1)
			a2 = intc.Address(in, a2)
		}
		val := x[in.Rd]
		eff.addMem(MemStore, a1, in.Size, truncate(val, in.Size))
		eff.addMem(MemStore, a2, in.Size, truncate(val, in.Size))
		if err := env.Store(a1, in.Size, val); err != nil {
			return h.fault(err)
		}
		if err := env.Store(a2, in.Size, val); err != nil {
			return h.fault(err)
		}
	case isa.OpSWP:
		addr := rs1
		if intc != nil {
			addr = intc.Address(in, addr)
		}
		old, err := env.Swap(addr, rs2)
		if err != nil {
			return h.fault(err)
		}
		if intc != nil {
			old = loadData(intc, in, addr, old)
		}
		eff.addMem(MemLoad, addr, 8, old)
		eff.addMem(MemStore, addr, 8, rs2)
		vInt, wrInt = old, true

	case isa.OpBEQ:
		h.condBranch(d, eff, rs1 == rs2)
	case isa.OpBNE:
		h.condBranch(d, eff, rs1 != rs2)
	case isa.OpBLT:
		h.condBranch(d, eff, int64(rs1) < int64(rs2))
	case isa.OpBGE:
		h.condBranch(d, eff, int64(rs1) >= int64(rs2))
	case isa.OpBLTU:
		h.condBranch(d, eff, rs1 < rs2)
	case isa.OpBGEU:
		h.condBranch(d, eff, rs1 >= rs2)
	case isa.OpJAL:
		vInt, wrInt = pc+1, true
		eff.Taken = true
		eff.NextPC = pc + d.ImmU
	case isa.OpJALR:
		target := rs1 + d.ImmU
		vInt, wrInt = pc+1, true
		eff.Taken = true
		eff.NextPC = target

	case isa.OpRAND:
		v, err := env.Rand()
		if err != nil {
			return h.fault(err)
		}
		eff.NonRepeat, eff.NonRepeatVal = true, v
		vInt, wrInt = v, true
	case isa.OpCYCLE:
		v, err := env.CycleRead(h.Instret)
		if err != nil {
			return h.fault(err)
		}
		eff.NonRepeat, eff.NonRepeatVal = true, v
		vInt, wrInt = v, true

	case isa.OpNOP, isa.OpPAUSE:
	case isa.OpHALT:
		eff.Halted = true
		h.Halted = true
	default:
		return fmt.Errorf("emu: hart %d: pc %d: unimplemented op %s", h.ID, pc, in.Op)
	}

	if wrInt {
		if intc != nil {
			vInt = intc.Result(in, d.Class, false, vInt)
		}
		eff.WroteInt, eff.Value = true, vInt
		if in.Rd != isa.Zero {
			x[in.Rd] = vInt
		}
	} else if wrFP {
		bits := math.Float64bits(vFP)
		if intc != nil {
			bits = intc.Result(in, d.Class, true, bits)
		}
		eff.WroteFP, eff.Value = true, bits
		f[in.Rd] = math.Float64frombits(bits)
	}

	h.State.PC = eff.NextPC
	h.Instret++
	return nil
}

func (h *Hart) condBranch(d *isa.DecInst, eff *Effect, taken bool) {
	if taken {
		eff.Taken = true
		eff.NextPC = eff.PC + d.ImmU
	}
}

func (h *Hart) fault(err error) error {
	return fmt.Errorf("emu: hart %d: pc %d: %w", h.ID, h.State.PC, err)
}

func (e *Effect) addMem(kind MemKind, addr uint64, size uint8, data uint64) {
	e.Mem[e.NMem] = MemOp{Kind: kind, Addr: addr, Size: size, Data: data}
	e.NMem++
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func truncate(v uint64, size uint8) uint64 {
	if size >= 8 {
		return v
	}
	return v & (1<<(8*size) - 1)
}
