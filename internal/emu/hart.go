package emu

import (
	"fmt"
	"math"

	"paraverser/internal/isa"
)

// ArchState is the architectural register state of one hart: the register
// checkpoint unit (RCU) copies exactly this, 776 bytes in the paper's
// accounting (section VII-E).
type ArchState struct {
	PC uint64
	X  [isa.NumIntRegs]uint64
	F  [isa.NumFPRegs]float64
}

// Env is the environment an instruction executes against. The main core
// uses a MainEnv (real memory plus real random/cycle sources); a checker
// core substitutes a log-replaying environment so loads, swaps and
// non-repeatable values come from the load-store log (section IV-B).
type Env interface {
	Load(addr uint64, size uint8) (uint64, error)
	Store(addr uint64, size uint8, val uint64) error
	// Swap atomically exchanges an 8-byte value, returning the old value.
	Swap(addr uint64, newVal uint64) (uint64, error)
	// Rand returns the next non-repeatable random value.
	Rand() (uint64, error)
	// CycleRead returns the value of a timer read at the given retired-
	// instruction count.
	CycleRead(instret uint64) (uint64, error)
}

// Interceptor mutates instruction results to model hardware faults. A nil
// Interceptor means fault-free execution.
type Interceptor interface {
	// Result may corrupt the value an instruction is about to write to
	// its destination register. fp reports whether the destination is an
	// FP register.
	Result(in isa.Inst, class isa.Class, fp bool, v uint64) uint64
	// Address may corrupt an effective address before the access is
	// performed (modelling LSQ faults).
	Address(in isa.Inst, addr uint64) uint64
}

// Hart is one hardware thread: architectural state plus retired count.
type Hart struct {
	ID      int
	State   ArchState
	Instret uint64
	Halted  bool
}

// NewHart returns a hart with its stack pointer initialised.
func NewHart(id int, entry uint64) *Hart {
	h := &Hart{ID: id}
	h.State.PC = entry
	h.State.X[isa.SP] = isa.StackBase - uint64(id)*isa.StackStride
	h.State.X[isa.TP] = uint64(id)
	return h
}

// Step executes one instruction from prog against env, filling eff with
// the complete architectural record. intc, if non-nil, may corrupt
// results and addresses (fault injection).
func (h *Hart) Step(prog *isa.Program, env Env, intc Interceptor, eff *Effect) error {
	if h.Halted {
		return fmt.Errorf("emu: hart %d: step after halt", h.ID)
	}
	pc := h.State.PC
	if pc >= uint64(len(prog.Insts)) {
		return fmt.Errorf("emu: hart %d: pc %d out of range", h.ID, pc)
	}
	in := prog.Insts[pc]

	*eff = Effect{PC: pc, Inst: in, Class: isa.ClassOf(in.Op), NextPC: pc + 1}

	x := &h.State.X
	f := &h.State.F
	rs1, rs2 := x[in.Rs1], x[in.Rs2]

	writeInt := func(v uint64) {
		if intc != nil {
			v = intc.Result(in, eff.Class, false, v)
		}
		eff.WroteInt, eff.Value = true, v
		if in.Rd != isa.Zero {
			x[in.Rd] = v
		}
	}
	writeFP := func(v float64) {
		bits := math.Float64bits(v)
		if intc != nil {
			bits = intc.Result(in, eff.Class, true, bits)
		}
		eff.WroteFP, eff.Value = true, bits
		f[in.Rd] = math.Float64frombits(bits)
	}
	effAddr := func(base uint64, imm int64) uint64 {
		a := base + uint64(imm)
		if intc != nil {
			a = intc.Address(in, a)
		}
		return a
	}

	switch in.Op {
	case isa.OpADD:
		writeInt(rs1 + rs2)
	case isa.OpSUB:
		writeInt(rs1 - rs2)
	case isa.OpMUL:
		writeInt(rs1 * rs2)
	case isa.OpDIV:
		if rs2 == 0 {
			writeInt(^uint64(0))
		} else {
			writeInt(uint64(int64(rs1) / int64(rs2)))
		}
	case isa.OpREM:
		if rs2 == 0 {
			writeInt(rs1)
		} else {
			writeInt(uint64(int64(rs1) % int64(rs2)))
		}
	case isa.OpAND:
		writeInt(rs1 & rs2)
	case isa.OpOR:
		writeInt(rs1 | rs2)
	case isa.OpXOR:
		writeInt(rs1 ^ rs2)
	case isa.OpSLL:
		writeInt(rs1 << (rs2 & 63))
	case isa.OpSRL:
		writeInt(rs1 >> (rs2 & 63))
	case isa.OpSRA:
		writeInt(uint64(int64(rs1) >> (rs2 & 63)))
	case isa.OpSLT:
		writeInt(boolToU64(int64(rs1) < int64(rs2)))
	case isa.OpSLTU:
		writeInt(boolToU64(rs1 < rs2))

	case isa.OpADDI:
		writeInt(rs1 + uint64(in.Imm))
	case isa.OpANDI:
		writeInt(rs1 & uint64(in.Imm))
	case isa.OpORI:
		writeInt(rs1 | uint64(in.Imm))
	case isa.OpXORI:
		writeInt(rs1 ^ uint64(in.Imm))
	case isa.OpSLLI:
		writeInt(rs1 << (uint64(in.Imm) & 63))
	case isa.OpSRLI:
		writeInt(rs1 >> (uint64(in.Imm) & 63))
	case isa.OpSRAI:
		writeInt(uint64(int64(rs1) >> (uint64(in.Imm) & 63)))
	case isa.OpSLTI:
		writeInt(boolToU64(int64(rs1) < in.Imm))
	case isa.OpLUI:
		writeInt(uint64(in.Imm))

	case isa.OpFADD:
		writeFP(f[in.Rs1] + f[in.Rs2])
	case isa.OpFSUB:
		writeFP(f[in.Rs1] - f[in.Rs2])
	case isa.OpFMUL:
		writeFP(f[in.Rs1] * f[in.Rs2])
	case isa.OpFDIV:
		writeFP(f[in.Rs1] / f[in.Rs2])
	case isa.OpFSQRT:
		writeFP(math.Sqrt(f[in.Rs1]))
	case isa.OpFMIN:
		writeFP(math.Min(f[in.Rs1], f[in.Rs2]))
	case isa.OpFMAX:
		writeFP(math.Max(f[in.Rs1], f[in.Rs2]))
	case isa.OpFNEG:
		writeFP(-f[in.Rs1])
	case isa.OpFABS:
		writeFP(math.Abs(f[in.Rs1]))
	case isa.OpFCVTIF:
		writeFP(float64(int64(rs1)))
	case isa.OpFCVTFI:
		writeInt(uint64(int64(f[in.Rs1])))
	case isa.OpFMVIF:
		writeFP(math.Float64frombits(rs1))
	case isa.OpFMVFI:
		writeInt(math.Float64bits(f[in.Rs1]))
	case isa.OpFEQ:
		writeInt(boolToU64(f[in.Rs1] == f[in.Rs2]))
	case isa.OpFLT:
		writeInt(boolToU64(f[in.Rs1] < f[in.Rs2]))

	case isa.OpLD:
		addr := effAddr(rs1, in.Imm)
		v, err := env.Load(addr, in.Size)
		if err != nil {
			return h.fault(err)
		}
		eff.addMem(MemLoad, addr, in.Size, v)
		writeInt(v)
	case isa.OpFLD:
		addr := effAddr(rs1, in.Imm)
		v, err := env.Load(addr, 8)
		if err != nil {
			return h.fault(err)
		}
		eff.addMem(MemLoad, addr, 8, v)
		writeFP(math.Float64frombits(v))
	case isa.OpST:
		addr := effAddr(rs1, in.Imm)
		val := rs2
		eff.addMem(MemStore, addr, in.Size, truncate(val, in.Size))
		if err := env.Store(addr, in.Size, val); err != nil {
			return h.fault(err)
		}
	case isa.OpFST:
		addr := effAddr(rs1, in.Imm)
		val := math.Float64bits(f[in.Rs2])
		eff.addMem(MemStore, addr, 8, val)
		if err := env.Store(addr, 8, val); err != nil {
			return h.fault(err)
		}
	case isa.OpGLD:
		a1 := effAddr(rs1, in.Imm)
		a2 := effAddr(rs2, 0)
		v1, err := env.Load(a1, in.Size)
		if err != nil {
			return h.fault(err)
		}
		v2, err := env.Load(a2, in.Size)
		if err != nil {
			return h.fault(err)
		}
		eff.addMem(MemLoad, a1, in.Size, v1)
		eff.addMem(MemLoad, a2, in.Size, v2)
		writeInt(v1 + v2)
	case isa.OpSST:
		a1 := effAddr(rs1, in.Imm)
		a2 := effAddr(rs2, 0)
		val := x[in.Rd]
		eff.addMem(MemStore, a1, in.Size, truncate(val, in.Size))
		eff.addMem(MemStore, a2, in.Size, truncate(val, in.Size))
		if err := env.Store(a1, in.Size, val); err != nil {
			return h.fault(err)
		}
		if err := env.Store(a2, in.Size, val); err != nil {
			return h.fault(err)
		}
	case isa.OpSWP:
		addr := effAddr(rs1, 0)
		old, err := env.Swap(addr, rs2)
		if err != nil {
			return h.fault(err)
		}
		eff.addMem(MemLoad, addr, 8, old)
		eff.addMem(MemStore, addr, 8, rs2)
		writeInt(old)

	case isa.OpBEQ:
		h.condBranch(in, eff, rs1 == rs2)
	case isa.OpBNE:
		h.condBranch(in, eff, rs1 != rs2)
	case isa.OpBLT:
		h.condBranch(in, eff, int64(rs1) < int64(rs2))
	case isa.OpBGE:
		h.condBranch(in, eff, int64(rs1) >= int64(rs2))
	case isa.OpBLTU:
		h.condBranch(in, eff, rs1 < rs2)
	case isa.OpBGEU:
		h.condBranch(in, eff, rs1 >= rs2)
	case isa.OpJAL:
		writeInt(pc + 1)
		eff.Taken = true
		eff.NextPC = pc + uint64(in.Imm)
	case isa.OpJALR:
		target := rs1 + uint64(in.Imm)
		writeInt(pc + 1)
		eff.Taken = true
		eff.NextPC = target

	case isa.OpRAND:
		v, err := env.Rand()
		if err != nil {
			return h.fault(err)
		}
		eff.NonRepeat, eff.NonRepeatVal = true, v
		writeInt(v)
	case isa.OpCYCLE:
		v, err := env.CycleRead(h.Instret)
		if err != nil {
			return h.fault(err)
		}
		eff.NonRepeat, eff.NonRepeatVal = true, v
		writeInt(v)

	case isa.OpNOP, isa.OpPAUSE:
	case isa.OpHALT:
		eff.Halted = true
		h.Halted = true
	default:
		return fmt.Errorf("emu: hart %d: pc %d: unimplemented op %s", h.ID, pc, in.Op)
	}

	h.State.PC = eff.NextPC
	h.Instret++
	return nil
}

func (h *Hart) condBranch(in isa.Inst, eff *Effect, taken bool) {
	if taken {
		eff.Taken = true
		eff.NextPC = eff.PC + uint64(in.Imm)
	}
}

func (h *Hart) fault(err error) error {
	return fmt.Errorf("emu: hart %d: pc %d: %w", h.ID, h.State.PC, err)
}

func (e *Effect) addMem(kind MemKind, addr uint64, size uint8, data uint64) {
	e.Mem[e.NMem] = MemOp{Kind: kind, Addr: addr, Size: size, Data: data}
	e.NMem++
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func truncate(v uint64, size uint8) uint64 {
	if size >= 8 {
		return v
	}
	return v & (1<<(8*size) - 1)
}
