package emu

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"paraverser/internal/asm"
	"paraverser/internal/isa"
)

func TestMemoryLoadStoreSizes(t *testing.T) {
	m := NewMemory()
	for _, size := range []uint8{1, 2, 4, 8} {
		addr := uint64(0x1000) + uint64(size)*64
		val := uint64(0xA1B2C3D4E5F60718)
		if err := m.Store(addr, size, val); err != nil {
			t.Fatal(err)
		}
		got, err := m.Load(addr, size)
		if err != nil {
			t.Fatal(err)
		}
		want := val
		if size < 8 {
			want = val & (1<<(8*size) - 1)
		}
		if got != want {
			t.Errorf("size %d: got %#x, want %#x", size, got, want)
		}
	}
}

func TestMemoryUnmappedReadsZero(t *testing.T) {
	m := NewMemory()
	v, err := m.Load(0xDEAD0000, 8)
	if err != nil || v != 0 {
		t.Errorf("unmapped load = %#x, %v; want 0, nil", v, err)
	}
	if m.PagesMapped() != 0 {
		t.Error("load should not map pages")
	}
}

func TestMemoryPageStraddle(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3) // straddles the first page boundary
	if err := m.Store(addr, 8, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	got, err := m.Load(addr, 8)
	if err != nil || got != 0x1122334455667788 {
		t.Errorf("straddling load = %#x, %v", got, err)
	}
	if m.PagesMapped() != 2 {
		t.Errorf("pages mapped = %d, want 2", m.PagesMapped())
	}
}

func TestMemoryBadSize(t *testing.T) {
	m := NewMemory()
	if _, err := m.Load(0, 3); err == nil {
		t.Error("want error for size 3 load")
	}
	if err := m.Store(0, 5, 0); err == nil {
		t.Error("want error for size 5 store")
	}
}

func TestMemoryQuickRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, val uint64, sizeSel uint8) bool {
		size := []uint8{1, 2, 4, 8}[sizeSel%4]
		addr %= 1 << 30
		if err := m.Store(addr, size, val); err != nil {
			return false
		}
		got, err := m.Load(addr, size)
		if err != nil {
			return false
		}
		want := val
		if size < 8 {
			want &= 1<<(8*size) - 1
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// buildSum builds a program that computes sum(1..n) in a loop and stores
// the result at data offset 0.
func buildSum(n int64) *isa.Program {
	b := asm.New("sum")
	b.Sym("result", b.Word64(0))
	const rI, rN, rSum, rAddr = isa.Reg(10), isa.Reg(11), isa.Reg(12), isa.Reg(13)
	b.Li(rI, 1)
	b.Li(rN, n)
	b.Li(rSum, 0)
	b.Label("loop")
	b.Add(rSum, rSum, rI)
	b.Addi(rI, rI, 1)
	b.Bge(rN, rI, "loop")
	b.LiSym(rAddr, "result")
	b.St(8, rSum, rAddr, 0)
	b.Halt()
	return b.MustBuild()
}

func TestRunSumLoop(t *testing.T) {
	prog := buildSum(100)
	m, err := NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Mem.Load(prog.DataBase, 8)
	if got != 5050 {
		t.Errorf("sum(1..100) = %d, want 5050", got)
	}
}

func TestEffectsRecordMemOps(t *testing.T) {
	b := asm.New("memops")
	off := b.Word64(0x1234)
	b.Li(5, int64(isa.DefaultDataBase+off))
	b.Ld(8, 6, 5, 0) // load 0x1234
	b.St(4, 6, 5, 8) // store low 4 bytes at +8
	b.Li(7, 99)
	b.Swp(8, 5, 7) // swap: loads 0x1234, stores 99
	b.Halt()
	prog := b.MustBuild()

	var loads, stores int
	var swpEff *Effect
	_, err := RunProgram(prog, 0, func(_ int, e *Effect) error {
		for i := 0; i < e.NMem; i++ {
			switch e.Mem[i].Kind {
			case MemLoad:
				loads++
			case MemStore:
				stores++
			}
		}
		if e.Inst.Op == isa.OpSWP {
			cp := *e
			swpEff = &cp
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if loads != 2 || stores != 2 {
		t.Errorf("loads=%d stores=%d, want 2/2", loads, stores)
	}
	if swpEff == nil {
		t.Fatal("no SWP effect recorded")
	}
	if swpEff.NMem != 2 || swpEff.Mem[0].Kind != MemLoad || swpEff.Mem[1].Kind != MemStore {
		t.Errorf("SWP effect wrong shape: %+v", swpEff)
	}
	if swpEff.Mem[0].Data != 0x1234 || swpEff.Mem[1].Data != 99 {
		t.Errorf("SWP data: load=%d store=%d, want 0x1234/99", swpEff.Mem[0].Data, swpEff.Mem[1].Data)
	}
}

func TestGatherScatter(t *testing.T) {
	b := asm.New("gs")
	o1 := b.Word64(10)
	o2 := b.Word64(32)
	o3 := b.Reserve(16)
	b.Li(5, int64(isa.DefaultDataBase+o1))
	b.Li(6, int64(isa.DefaultDataBase+o2))
	b.Gld(8, 7, 5, 6, 0) // r7 = 10 + 32
	b.Li(8, int64(isa.DefaultDataBase+o3))
	b.Li(9, int64(isa.DefaultDataBase+o3+8))
	b.Mov(10, 7)
	b.Emit(isa.Inst{Op: isa.OpSST, Rd: 10, Rs1: 8, Rs2: 9, Size: 8})
	b.Halt()
	prog := b.MustBuild()

	m, err := NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	v1, _ := m.Mem.Load(prog.DataBase+o3, 8)
	v2, _ := m.Mem.Load(prog.DataBase+o3+8, 8)
	if v1 != 42 || v2 != 42 {
		t.Errorf("scatter results %d, %d; want 42, 42", v1, v2)
	}
}

func TestFPArithmetic(t *testing.T) {
	b := asm.New("fp")
	oa := b.Float64(9.0)
	ob := b.Float64(2.0)
	ores := b.Reserve(8)
	b.Li(5, int64(isa.DefaultDataBase))
	b.Fld(1, 5, int64(oa))
	b.Fld(2, 5, int64(ob))
	b.Fdiv(3, 1, 2) // 4.5
	b.Fsqrt(4, 1)   // 3.0
	b.Fadd(3, 3, 4) // 7.5
	b.Fst(3, 5, int64(ores))
	b.Halt()
	prog := b.MustBuild()

	m, err := NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	bits, _ := m.Mem.Load(prog.DataBase+ores, 8)
	if got := math.Float64frombits(bits); got != 7.5 {
		t.Errorf("fp result %v, want 7.5", got)
	}
}

func TestNonRepeatableDeterministic(t *testing.T) {
	b := asm.New("nr")
	b.Rand(5)
	b.Rand(6)
	b.Cycle(7)
	b.Halt()
	prog := b.MustBuild()

	run := func() []uint64 {
		var vals []uint64
		_, err := RunProgram(prog, 0, func(_ int, e *Effect) error {
			if e.NonRepeat {
				vals = append(vals, e.NonRepeatVal)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return vals
	}
	a, b2 := run(), run()
	if len(a) != 3 {
		t.Fatalf("want 3 non-repeatable values, got %d", len(a))
	}
	for i := range a {
		if a[i] != b2[i] {
			t.Errorf("non-deterministic non-repeatable value %d", i)
		}
	}
	if a[0] == a[1] {
		t.Error("RAND returned identical consecutive values")
	}
}

func TestInstructionLimit(t *testing.T) {
	b := asm.New("inf")
	b.Label("spin")
	b.Jmp("spin")
	prog := b.MustBuild()

	m, err := NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Run(100, nil)
	if !errors.Is(err, ErrLimit) {
		t.Errorf("err = %v, want ErrLimit", err)
	}
	if n != 100 {
		t.Errorf("executed %d, want 100", n)
	}
}

func TestMultiHartSharedMemory(t *testing.T) {
	// Hart 0 increments a counter 100 times via SWP-based lock-free adds;
	// hart 1 does the same. Total must be 200 regardless of interleaving.
	b := asm.New("mh")
	cnt := b.Word64(0)
	body := func() {
		const rAddr, rI, rN, rV = isa.Reg(10), isa.Reg(11), isa.Reg(12), isa.Reg(13)
		b.Li(rAddr, int64(isa.DefaultDataBase+cnt))
		b.Li(rI, 0)
		b.Li(rN, 100)
		loop := "loop" + string(rune('a'+b.PC()))
		b.Label(loop)
		b.Ld(8, rV, rAddr, 0)
		b.Addi(rV, rV, 1)
		b.St(8, rV, rAddr, 0)
		b.Addi(rI, rI, 1)
		b.Blt(rI, rN, loop)
		b.Halt()
	}
	b.Entry()
	body()
	b.Entry()
	body()
	prog := b.MustBuild()

	m, err := NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Quantum 1 forces maximal interleaving; with non-atomic RMW the
	// result may be < 200, but with quantum large enough to serialise,
	// it is exactly 200. Use a big quantum to check the serial case.
	m.Quantum = 1000
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Mem.Load(prog.DataBase+cnt, 8)
	if got != 200 {
		t.Errorf("counter = %d, want 200", got)
	}
}

func TestHartStepAfterHalt(t *testing.T) {
	b := asm.New("halt")
	b.Halt()
	prog := b.MustBuild()
	m, err := NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	var eff Effect
	if err := m.StepHart(0, &eff); err != nil {
		t.Fatal(err)
	}
	if !eff.Halted {
		t.Error("effect not marked halted")
	}
	if err := m.StepHart(0, &eff); err == nil {
		t.Error("want error stepping after halt")
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	b := asm.New("zero")
	b.Addi(isa.Zero, isa.Zero, 42)
	b.Mov(5, isa.Zero)
	b.Halt()
	prog := b.MustBuild()
	m, err := NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Harts[0].State.X[5]; got != 0 {
		t.Errorf("X0 was written: r5 = %d", got)
	}
}

func TestDivByZero(t *testing.T) {
	b := asm.New("div0")
	b.Li(5, 7)
	b.Li(6, 0)
	b.Div(7, 5, 6)
	b.Rem(8, 5, 6)
	b.Halt()
	prog := b.MustBuild()
	m, err := NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if m.Harts[0].State.X[7] != ^uint64(0) {
		t.Errorf("div by zero = %#x, want all-ones", m.Harts[0].State.X[7])
	}
	if m.Harts[0].State.X[8] != 7 {
		t.Errorf("rem by zero = %d, want dividend", m.Harts[0].State.X[8])
	}
}

func TestCallRet(t *testing.T) {
	b := asm.New("call")
	b.Li(5, 1)
	b.Call("fn")
	b.Li(6, 3) // executes after return
	b.Halt()
	b.Label("fn")
	b.Li(5, 2)
	b.Ret()
	prog := b.MustBuild()
	m, err := NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	st := m.Harts[0].State
	if st.X[5] != 2 || st.X[6] != 3 {
		t.Errorf("call/ret: r5=%d r6=%d, want 2, 3", st.X[5], st.X[6])
	}
}

// addrFlipper is a test interceptor that flips an address bit on stores.
type addrFlipper struct{ fired int }

func (a *addrFlipper) Result(_ isa.Inst, _ isa.Class, _ bool, v uint64) uint64 { return v }
func (a *addrFlipper) Address(in isa.Inst, addr uint64) uint64 {
	if in.Op == isa.OpST {
		a.fired++
		return addr ^ 8
	}
	return addr
}

func TestInterceptorAddress(t *testing.T) {
	b := asm.New("ic")
	b.Reserve(64)
	b.Li(5, int64(isa.DefaultDataBase))
	b.Li(6, 7)
	b.St(8, 6, 5, 0) // intercepted: lands at +8
	b.Halt()
	prog := b.MustBuild()
	m, err := NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	ic := &addrFlipper{}
	m.Intc = ic
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if ic.fired != 1 {
		t.Fatalf("interceptor fired %d times", ic.fired)
	}
	at0, _ := m.Mem.Load(prog.DataBase, 8)
	at8, _ := m.Mem.Load(prog.DataBase+8, 8)
	if at0 != 0 || at8 != 7 {
		t.Errorf("store landed at +0=%d +8=%d, want 0/7", at0, at8)
	}
}

func TestPauseIsArchitecturalNop(t *testing.T) {
	b := asm.New("pause")
	b.Li(5, 3)
	b.Pause()
	b.Addi(5, 5, 1)
	b.Halt()
	prog := b.MustBuild()
	m, err := NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	var pauses int
	if _, err := m.Run(0, func(_ int, e *Effect) error {
		if e.Inst.Op == isa.OpPAUSE {
			pauses++
			if e.NMem != 0 || e.WroteInt || e.NonRepeat {
				t.Error("PAUSE has architectural effects")
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if pauses != 1 {
		t.Errorf("pauses executed: %d", pauses)
	}
	if m.Harts[0].State.X[5] != 4 {
		t.Errorf("r5 = %d, want 4", m.Harts[0].State.X[5])
	}
}
