package emu

import (
	"testing"

	"paraverser/internal/isa"
)

// TestMemorySnapshotWriteIsolation: writes after a snapshot must not be
// visible through the snapshot, and vice versa.
func TestMemorySnapshotWriteIsolation(t *testing.T) {
	m := NewMemory()
	if err := m.Store(0x1000, 8, 111); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()

	if err := m.Store(0x1000, 8, 222); err != nil {
		t.Fatal(err)
	}
	view := NewMemoryFromSnapshot(snap)
	if got, _ := view.Load(0x1000, 8); got != 111 {
		t.Errorf("snapshot view sees parent write: got %d, want 111", got)
	}
	if got, _ := m.Load(0x1000, 8); got != 222 {
		t.Errorf("parent lost its own write: got %d, want 222", got)
	}

	// And the other direction: a write through a materialised view stays
	// private to that view.
	if err := view.Store(0x1000, 8, 333); err != nil {
		t.Fatal(err)
	}
	view2 := NewMemoryFromSnapshot(snap)
	if got, _ := view2.Load(0x1000, 8); got != 111 {
		t.Errorf("second view sees sibling write: got %d, want 111", got)
	}
}

// TestMemorySnapshotPageCacheCoherent: the one-entry page cache must not
// hand the write path a page that became read-only at snapshot time.
func TestMemorySnapshotPageCacheCoherent(t *testing.T) {
	m := NewMemory()
	if err := m.Store(0x2000, 8, 7); err != nil {
		t.Fatal(err)
	}
	// Load caches the page, Snapshot marks it read-only, the next store
	// must still copy-on-write rather than trust the cached entry.
	if _, err := m.Load(0x2000, 8); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if err := m.Store(0x2000, 8, 8); err != nil {
		t.Fatal(err)
	}
	if got, _ := NewMemoryFromSnapshot(snap).Load(0x2000, 8); got != 7 {
		t.Errorf("snapshot corrupted through cached page: got %d, want 7", got)
	}
	// Same hazard on the view side: materialise, read (caches an ro
	// page), then write through the cache.
	view := NewMemoryFromSnapshot(snap)
	if _, err := view.Load(0x2000, 8); err != nil {
		t.Fatal(err)
	}
	if err := view.Store(0x2000, 8, 9); err != nil {
		t.Fatal(err)
	}
	if got, _ := NewMemoryFromSnapshot(snap).Load(0x2000, 8); got != 7 {
		t.Errorf("snapshot corrupted through view's cached page: got %d, want 7", got)
	}
}

// runToEnd drives a machine to completion and returns the result word.
func runToEnd(t *testing.T, m *Machine, prog *isa.Program) uint64 {
	t.Helper()
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Mem.Load(prog.DataBase, 8)
	return got
}

// TestMachineSnapshotRestoreRoundTrip: restoring a mid-run snapshot and
// re-running must reproduce the original completion bit for bit, and the
// snapshot must survive multiple restores.
func TestMachineSnapshotRestoreRoundTrip(t *testing.T) {
	prog := buildSum(100)
	m, err := NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(150, nil); err != ErrLimit {
		t.Fatalf("want ErrLimit mid-run, got %v", err)
	}
	snap := m.Snapshot()
	midState := m.Harts[0].State

	want := runToEnd(t, m, prog)
	if want != 5050 {
		t.Fatalf("sum = %d, want 5050", want)
	}
	endState := m.Harts[0].State
	endInstret := m.Harts[0].Instret

	for round := 0; round < 2; round++ {
		m.Restore(snap)
		if m.Harts[0].State != midState {
			t.Fatalf("round %d: restored state differs from capture", round)
		}
		if got := runToEnd(t, m, prog); got != want {
			t.Errorf("round %d: replay result %d, want %d", round, got, want)
		}
		if m.Harts[0].State != endState || m.Harts[0].Instret != endInstret {
			t.Errorf("round %d: replay end state differs", round)
		}
	}
}

// TestMachineSharedMatchesPrivate: a machine over the shared image cache
// must execute identically to one with a privately materialised data
// segment, and two shared machines must not observe each other's stores.
func TestMachineSharedMatchesPrivate(t *testing.T) {
	prog := buildSum(50)
	priv, err := NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := runToEnd(t, priv, prog)

	a, err := NewMachineShared(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := runToEnd(t, a, prog); got != want {
		t.Errorf("shared run = %d, private = %d", got, want)
	}
	if a.Harts[0].State != priv.Harts[0].State {
		t.Error("shared and private end states differ")
	}

	// A second machine from the same image starts from pristine contents
	// despite the first one's store to the result word.
	b, err := NewMachineShared(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := b.Mem.Load(prog.DataBase, 8); got != 0 {
		t.Errorf("fresh shared machine sees sibling store: %d", got)
	}
	if got := runToEnd(t, b, prog); got != want {
		t.Errorf("second shared run = %d, want %d", got, want)
	}
}

// TestMachineRestoreEnvCoherent: after Restore, the environments must
// address the restored memory (not the abandoned one) and replay the
// same random stream.
func TestMachineRestoreEnvCoherent(t *testing.T) {
	prog := buildSum(10)
	m, err := NewMachine(prog, 99)
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	r1, _ := m.Env[0].Rand()
	m.Restore(snap)
	if m.Env[0].Mem != m.Mem {
		t.Fatal("env memory not rewired to restored memory")
	}
	if r2, _ := m.Env[0].Rand(); r2 != r1 {
		t.Errorf("rng not restored: %d vs %d", r2, r1)
	}
}
