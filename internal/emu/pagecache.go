package emu

import "encoding/binary"

// PageCache is a per-hart one-entry page cache over a Memory: the block
// executor's accesses are heavily page-local per hart, so most loads
// and stores resolve through a raw page pointer without touching the
// Memory's map or its shared one-entry cache (which thrashes when
// several harts interleave on different pages). The zero value is an
// empty cache.
//
// Holding a raw *page pointer across calls is only sound while the
// page's identity and permissions are unchanged. The cache therefore
// records the Memory's generation counter at fill time and revalidates
// (owner pointer, generation, page number) on every access: a
// copy-on-write replacement, a page creation, a Snapshot marking pages
// read-only, or a Machine.Restore swapping in a fresh Memory all make
// the entry miss. A write to a different page than the cached one
// (cross-page write) simply replaces the entry through the
// copy-on-write-aware slow path.
type PageCache struct {
	mem *Memory
	gen uint64
	pn  uint64
	pg  *page
	ro  bool
}

// Load is semantically identical to m.Load for the legal access sizes
// (1, 2, 4, 8 — callers execute validated programs only), serving
// page-local accesses from the cached pointer.
//
//paralint:hotpath
func (c *PageCache) Load(m *Memory, addr uint64, size uint8) (uint64, error) {
	off := addr & (pageSize - 1)
	if off+uint64(size) <= pageSize {
		pn := addr >> pageBits
		pg := c.pg
		if c.mem != m || c.gen != m.gen || c.pn != pn || pg == nil {
			pg = m.pageFor(addr)
			if pg == nil {
				return 0, nil // unmapped reads as zero; nothing to cache
			}
			c.mem, c.gen, c.pn, c.pg, c.ro = m, m.gen, pn, pg, m.lastRO
		}
		switch size {
		case 1:
			return uint64(pg[off]), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(pg[off:])), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(pg[off:])), nil
		default:
			return binary.LittleEndian.Uint64(pg[off:]), nil
		}
	}
	return m.Load(addr, size)
}

// Store is semantically identical to m.Store for the legal access
// sizes. A miss — including a hit on a page that went read-only under a
// snapshot — refills through pageForWrite, which performs the
// copy-on-write.
//
//paralint:hotpath
func (c *PageCache) Store(m *Memory, addr uint64, size uint8, val uint64) error {
	off := addr & (pageSize - 1)
	if off+uint64(size) <= pageSize {
		pn := addr >> pageBits
		pg := c.pg
		if c.mem != m || c.gen != m.gen || c.pn != pn || c.ro || pg == nil {
			pg = m.pageForWrite(addr)
			c.mem, c.gen, c.pn, c.pg, c.ro = m, m.gen, pn, pg, false
		}
		switch size {
		case 1:
			pg[off] = byte(val)
		case 2:
			binary.LittleEndian.PutUint16(pg[off:], uint16(val))
		case 4:
			binary.LittleEndian.PutUint32(pg[off:], uint32(val))
		default:
			binary.LittleEndian.PutUint64(pg[off:], val)
		}
		return nil
	}
	return m.Store(addr, size, val)
}
