package emu

import (
	"fmt"
	"sync"

	"paraverser/internal/isa"
)

// MemSnapshot is an immutable view of a Memory taken by Snapshot. Pages
// are shared, never copied: every holder (the snapshotting Memory, any
// Memory built from the snapshot) treats them as copy-on-write, so a
// snapshot costs O(resident pages) map work with no byte copying. A
// snapshot's pages are read-only forever, which also makes one snapshot
// safe to materialise from many goroutines at once.
type MemSnapshot struct {
	pages map[uint64]*page
}

// Snapshot captures the memory's current contents. Every resident page
// becomes copy-on-write in the parent: the first subsequent write to a
// captured page copies it, leaving the snapshot untouched.
func (m *Memory) Snapshot() *MemSnapshot {
	snap := make(map[uint64]*page, len(m.pages))
	if m.ro == nil {
		m.ro = make(map[uint64]bool, len(m.pages))
	}
	for pn, p := range m.pages {
		snap[pn] = p
		m.ro[pn] = true
	}
	if m.lastPage != nil {
		m.lastRO = true
	}
	// Every resident page just changed permission; external PageCache
	// entries holding writable pointers must refetch through the
	// copy-on-write path.
	m.gen++
	return &MemSnapshot{pages: snap}
}

// NewMemoryFromSnapshot returns a Memory whose initial contents equal
// the snapshot, sharing its pages copy-on-write.
func NewMemoryFromSnapshot(s *MemSnapshot) *Memory {
	m := &Memory{
		pages: make(map[uint64]*page, len(s.pages)),
		ro:    make(map[uint64]bool, len(s.pages)),
	}
	for pn, p := range s.pages {
		m.pages[pn] = p
		m.ro[pn] = true
	}
	return m
}

// MachineSnapshot captures a Machine's complete architectural state:
// memory (copy-on-write), every hart's register file / instret / halt
// flag, and each environment's random stream. Restoring it reproduces
// execution bit for bit from the capture point.
type MachineSnapshot struct {
	mem     *MemSnapshot
	states  []ArchState
	instret []uint64
	halted  []bool
	rng     []uint64
}

// Snapshot captures the machine's architectural state.
func (m *Machine) Snapshot() *MachineSnapshot {
	s := &MachineSnapshot{
		mem:     m.Mem.Snapshot(),
		states:  make([]ArchState, len(m.Harts)),
		instret: make([]uint64, len(m.Harts)),
		halted:  make([]bool, len(m.Harts)),
		rng:     make([]uint64, len(m.Env)),
	}
	for i, h := range m.Harts {
		s.states[i] = h.State
		s.instret[i] = h.Instret
		s.halted[i] = h.Halted
	}
	for i, e := range m.Env {
		s.rng[i] = e.rng
	}
	return s
}

// HartState returns hart i's captured architectural state, letting a
// caller decide whether a snapshot extends a known execution point
// before paying for a Restore.
func (s *MachineSnapshot) HartState(i int) ArchState { return s.states[i] }

// Restore rewinds the machine to a snapshot. The snapshot stays valid:
// it can be restored any number of times (each restore materialises a
// fresh copy-on-write memory over the shared pages).
func (m *Machine) Restore(s *MachineSnapshot) {
	m.Mem = NewMemoryFromSnapshot(s.mem)
	for i, h := range m.Harts {
		h.State = s.states[i]
		h.Instret = s.instret[i]
		h.Halted = s.halted[i]
		m.Env[i].Mem = m.Mem
		m.Env[i].rng = s.rng[i]
	}
}

// imageCache memoises one initial-memory snapshot per program pointer.
// Programs are immutable once built (the experiment layer guarantees one
// canonical *isa.Program per workload name), so the data segment needs
// materialising once per process instead of once per run — SPEC working
// sets run to tens of megabytes. Publication through sync.Map gives the
// cross-goroutine happens-before edge; a duplicate build under a race
// produces identical bytes and one winner.
var imageCache sync.Map // *isa.Program -> *MemSnapshot

// Image returns the program's materialised initial memory as a shared
// copy-on-write snapshot.
func Image(prog *isa.Program) *MemSnapshot {
	if v, ok := imageCache.Load(prog); ok {
		return v.(*MemSnapshot)
	}
	mem := NewMemory()
	mem.WriteBytes(prog.DataBase, prog.Data)
	snap := mem.Snapshot()
	v, _ := imageCache.LoadOrStore(prog, snap)
	return v.(*MemSnapshot)
}

// NewMachineShared is NewMachine with the program's initial memory
// served from the process-wide image cache: the data segment is shared
// copy-on-write instead of re-copied per run.
func NewMachineShared(prog *isa.Program, seed uint64) (*Machine, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("emu: %w", err)
	}
	return newMachine(prog, NewMemoryFromSnapshot(Image(prog)), seed), nil
}
