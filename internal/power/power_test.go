package power

import (
	"math"
	"testing"
)

func TestVoltageCurve(t *testing.T) {
	ce := X2Energy
	if got := ce.VoltageAt(3.0); got != ce.VnomV {
		t.Errorf("V(fmax) = %v, want Vnom", got)
	}
	if got := ce.VoltageAt(4.0); got != ce.VnomV {
		t.Errorf("V above fmax = %v, want clamped to Vnom", got)
	}
	if got := ce.VoltageAt(0); got != ce.VminV {
		t.Errorf("V(0) = %v, want Vmin", got)
	}
	mid := ce.VoltageAt(1.5)
	if mid <= ce.VminV || mid >= ce.VnomV {
		t.Errorf("V(1.5) = %v outside (Vmin, Vnom)", mid)
	}
}

func TestDynamicEnergyScalesWithV2(t *testing.T) {
	ce := X2Energy
	full := ce.DynamicJ(1e9, 3.0)
	half := ce.DynamicJ(1e9, 1.5)
	wantRatio := math.Pow(ce.VoltageAt(1.5)/ce.VnomV, 2)
	if got := half / full; math.Abs(got-wantRatio) > 1e-9 {
		t.Errorf("dynamic ratio %v, want %v", got, wantRatio)
	}
	if full != 1e9*500e-12 {
		t.Errorf("full dynamic = %v J, want 0.5 J", full)
	}
}

func TestLittleCoreCheaperPerInstruction(t *testing.T) {
	x2 := X2Energy.DynamicJ(1e6, 3.0)
	a510 := A510Energy.DynamicJ(1e6, 2.0)
	a35 := A35Energy.DynamicJ(1e6, 1.0)
	if !(a35 < a510 && a510 < x2) {
		t.Errorf("EPI ordering broken: A35 %v, A510 %v, X2 %v", a35, a510, x2)
	}
}

func TestStaticEnergy(t *testing.T) {
	j := X2Energy.StaticJ(2.0, 3.0)
	if math.Abs(j-1.1) > 1e-9 { // 550mW * 2s
		t.Errorf("static = %v J, want 1.1", j)
	}
	if X2Energy.StaticJ(2.0, 1.5) >= j {
		t.Error("static energy did not fall with voltage")
	}
}

func TestMinimiseED2P(t *testing.T) {
	// Energy falls with f², delay rises with 1/f: ED2P = k/f²·(1/f²)...
	// pick a synthetic eval with a known interior optimum.
	eval := func(f float64) (float64, float64) {
		e := f * f     // energy grows with frequency
		d := 1/f + 0.5 // delay shrinks with frequency
		return e, d
	}
	freqs := []float64{1.0, 1.5, 2.0, 2.5, 3.0}
	bestF, bestE, bestD := MinimiseED2P(freqs, eval)
	bestM := ED2P(bestE, bestD)
	for _, f := range freqs {
		e, d := eval(f)
		if ED2P(e, d) < bestM-1e-12 {
			t.Errorf("MinimiseED2P missed better frequency %v", f)
		}
	}
	if bestF == 0 {
		t.Error("no frequency selected")
	}
}

func TestDedicatedAreaOverhead(t *testing.T) {
	got := DedicatedAreaOverhead(16, AreaA35MM2, AreaX2MM2)
	if math.Abs(got-0.3457) > 0.005 {
		t.Errorf("16xA35 area overhead = %.4f, want ~0.346 (the paper's 35%%)", got)
	}
}

func TestStorageOverheadMatchesPaper(t *testing.T) {
	// X2: 85-entry LQ, 90-entry SQ, 64KiB/64B = 1024 L1D lines.
	s := NewStorageOverhead(85, 90, 1024)
	got := s.TotalBytes()
	// The paper reports 1064B per core.
	if got < 1050 || got > 1080 {
		t.Errorf("storage overhead = %dB, want ~1064B", got)
	}
}

func TestModelFor(t *testing.T) {
	for _, name := range []string{"X2", "A510", "A35"} {
		ce, err := ModelFor(name)
		if err != nil || ce.Name != name {
			t.Errorf("ModelFor(%q) = %+v, %v", name, ce, err)
		}
	}
	if _, err := ModelFor("M1"); err == nil {
		t.Error("want error for unknown core")
	}
}
