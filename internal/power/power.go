// Package power implements the McPAT-style energy, DVFS and area
// accounting of section VII-E: per-core-type dynamic energy per
// instruction scaled with V², static power scaled with V, a linear
// voltage/frequency curve for DVFS, ED²P-minimal frequency search, the
// die-shot-derived area table, and the itemised per-core storage overhead
// of the ParaVerser units (1064B).
package power

import (
	"fmt"
	"math"
)

// CoreEnergy is the energy model of one core type. Dynamic energy per
// instruction is quoted at the nominal voltage (max frequency); voltage
// scales linearly with frequency down to VminV.
type CoreEnergy struct {
	Name     string
	EPIpJ    float64 // dynamic energy per instruction at VnomV, picojoules
	StaticMW float64 // leakage at VnomV, milliwatts
	VnomV    float64
	VminV    float64
	FMaxGHz  float64
}

// Energy model presets, calibrated (at 22nm, following the paper's McPAT
// configuration) so the big out-of-order core spends several times the
// energy per instruction of the in-order cores — the heterogeneity the
// whole design exploits.
var (
	// X2Energy models the 5-wide OoO big core.
	X2Energy = CoreEnergy{Name: "X2", EPIpJ: 500, StaticMW: 550, VnomV: 1.00, VminV: 0.60, FMaxGHz: 3.0}
	// A510Energy models the 3-wide in-order little core.
	A510Energy = CoreEnergy{Name: "A510", EPIpJ: 205, StaticMW: 70, VnomV: 0.85, VminV: 0.55, FMaxGHz: 2.0}
	// A35Energy models the scalar dedicated checker core.
	A35Energy = CoreEnergy{Name: "A35", EPIpJ: 105, StaticMW: 12, VnomV: 0.80, VminV: 0.55, FMaxGHz: 1.0}
)

// ModelFor returns the energy model for a core configuration name.
func ModelFor(name string) (CoreEnergy, error) {
	switch name {
	case "X2":
		return X2Energy, nil
	case "A510":
		return A510Energy, nil
	case "A35":
		return A35Energy, nil
	default:
		return CoreEnergy{}, fmt.Errorf("power: no energy model for core %q", name)
	}
}

// VoltageAt returns the supply voltage required for fGHz.
func (ce CoreEnergy) VoltageAt(fGHz float64) float64 {
	if fGHz >= ce.FMaxGHz {
		return ce.VnomV
	}
	if fGHz <= 0 {
		return ce.VminV
	}
	return ce.VminV + (ce.VnomV-ce.VminV)*(fGHz/ce.FMaxGHz)
}

// DynamicJ returns the dynamic energy of executing insts instructions at
// fGHz (CV²f switching energy: per-instruction energy scales with V²).
func (ce CoreEnergy) DynamicJ(insts uint64, fGHz float64) float64 {
	v := ce.VoltageAt(fGHz) / ce.VnomV
	return float64(insts) * ce.EPIpJ * 1e-12 * v * v
}

// StaticJ returns leakage energy over busySec seconds at fGHz. Idle
// periods are power gated (the paper's baseline has "all checker cores
// power gated"), so callers pass busy time only.
func (ce CoreEnergy) StaticJ(busySec, fGHz float64) float64 {
	v := ce.VoltageAt(fGHz) / ce.VnomV
	return ce.StaticMW * 1e-3 * v * busySec
}

// TotalJ is DynamicJ + StaticJ.
func (ce CoreEnergy) TotalJ(insts uint64, busySec, fGHz float64) float64 {
	return ce.DynamicJ(insts, fGHz) + ce.StaticJ(busySec, fGHz)
}

// EDP and ED2P combine energy and delay.
func EDP(energyJ, delayS float64) float64  { return energyJ * delayS }
func ED2P(energyJ, delayS float64) float64 { return energyJ * delayS * delayS }

// MinimiseED2P evaluates eval at each candidate frequency and returns the
// frequency minimising energy×delay², with its energy and delay. eval
// returns (energyJ, delayS).
func MinimiseED2P(freqsGHz []float64, eval func(fGHz float64) (float64, float64)) (bestF, bestE, bestD float64) {
	best := math.Inf(1)
	for _, f := range freqsGHz {
		e, d := eval(f)
		if m := ED2P(e, d); m < best {
			best, bestF, bestE, bestD = m, f, e, d
		}
	}
	return bestF, bestE, bestD
}

// --- area (section VII-E) ---

// Core areas in mm², from die-shot pixel counts on Samsung 4LPE (X2,
// A510) and the paper's extrapolation of 28nm A35 measurements (16 A35s
// = 0.84mm²).
const (
	AreaX2MM2   = 2.43
	AreaA510MM2 = 0.44
	AreaA35MM2  = 0.84 / 16
)

// DedicatedAreaOverhead returns the area overhead of n dedicated checker
// cores of checkerMM2 each relative to one main core of mainMM2: the 35%
// number for 16 A35s vs one X2.
func DedicatedAreaOverhead(n int, checkerMM2, mainMM2 float64) float64 {
	return float64(n) * checkerMM2 / mainMM2
}

// --- per-core storage overhead (section VII-E) ---

// StorageOverhead itemises the SRAM/flop additions of the ParaVerser
// units on one core.
type StorageOverhead struct {
	LSCBytes      int // 48B for a 2-wide load-store comparator
	LSQParityBits int // 2 parity bits per LQ and SQ entry
	IndexBits     int // 16-bit front-end + 16-bit back-end LSL$ indices
	LSPUBits      int // one cache line of buffering
	LSLTagBits    int // 1 bit per L1D line (the log/content bit)
	TimerBits     int // 13-bit instruction timer
	RCUBytes      int // 776B register checkpoint unit
}

// NewStorageOverhead computes the itemisation for a core with the given
// load-queue/store-queue entries and L1D line count.
func NewStorageOverhead(lqEntries, sqEntries, l1dLines int) StorageOverhead {
	return StorageOverhead{
		LSCBytes:      48,
		LSQParityBits: 2 * (lqEntries + sqEntries),
		IndexBits:     32,
		LSPUBits:      512,
		LSLTagBits:    l1dLines,
		TimerBits:     13,
		RCUBytes:      776,
	}
}

// TotalBytes returns the total storage overhead, rounding bit fields up
// to whole bytes the way the paper's 1064B figure does.
func (s StorageOverhead) TotalBytes() int {
	bits := s.LSQParityBits + s.IndexBits + s.LSPUBits + s.LSLTagBits + s.TimerBits
	return s.LSCBytes + s.RCUBytes + (bits+7)/8
}
