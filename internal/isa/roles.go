//paralint:deterministic

package isa

// RegRole says which register file (if any) an instruction operand field
// addresses. Program-rewriting passes (register renaming, the divergent
// checker's decorrelation pass) consult it so they only remap fields an
// instruction actually interprets: an unused field is left untouched, and
// integer and floating-point fields are remapped through their own
// permutations.
type RegRole uint8

// Operand roles. The zero value means the field is ignored by the
// opcode.
const (
	RoleNone RegRole = iota
	RoleInt
	RoleFP
)

// OperandRoles gives the role of each register field of an instruction.
type OperandRoles struct {
	Rd, Rs1, Rs2 RegRole
}

// RolesOf returns the operand roles of an opcode. It mirrors the
// emulator's operand interpretation (emu.Hart.StepDecoded) and the static
// verifier's use/def table exactly: SST reads its Rd as the store datum,
// FST's Rs2 is a floating-point source, the FP/int move and convert ops
// cross register files, and control flow only ever touches the integer
// file.
func RolesOf(op Op) OperandRoles {
	switch op {
	case OpADD, OpSUB, OpMUL, OpDIV, OpREM,
		OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA, OpSLT, OpSLTU:
		return OperandRoles{Rd: RoleInt, Rs1: RoleInt, Rs2: RoleInt}
	case OpADDI, OpANDI, OpORI, OpXORI,
		OpSLLI, OpSRLI, OpSRAI, OpSLTI:
		return OperandRoles{Rd: RoleInt, Rs1: RoleInt}
	case OpLUI:
		return OperandRoles{Rd: RoleInt}
	case OpFADD, OpFSUB, OpFMUL, OpFDIV, OpFMIN, OpFMAX:
		return OperandRoles{Rd: RoleFP, Rs1: RoleFP, Rs2: RoleFP}
	case OpFSQRT, OpFNEG, OpFABS:
		return OperandRoles{Rd: RoleFP, Rs1: RoleFP}
	case OpFCVTIF, OpFMVIF:
		return OperandRoles{Rd: RoleFP, Rs1: RoleInt}
	case OpFCVTFI, OpFMVFI:
		return OperandRoles{Rd: RoleInt, Rs1: RoleFP}
	case OpFEQ, OpFLT:
		return OperandRoles{Rd: RoleInt, Rs1: RoleFP, Rs2: RoleFP}
	case OpLD:
		return OperandRoles{Rd: RoleInt, Rs1: RoleInt}
	case OpFLD:
		return OperandRoles{Rd: RoleFP, Rs1: RoleInt}
	case OpST:
		return OperandRoles{Rs1: RoleInt, Rs2: RoleInt}
	case OpFST:
		return OperandRoles{Rs1: RoleInt, Rs2: RoleFP}
	case OpGLD:
		return OperandRoles{Rd: RoleInt, Rs1: RoleInt, Rs2: RoleInt}
	case OpSST:
		return OperandRoles{Rd: RoleInt, Rs1: RoleInt, Rs2: RoleInt}
	case OpSWP:
		return OperandRoles{Rd: RoleInt, Rs1: RoleInt, Rs2: RoleInt}
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return OperandRoles{Rs1: RoleInt, Rs2: RoleInt}
	case OpJAL:
		return OperandRoles{Rd: RoleInt}
	case OpJALR:
		return OperandRoles{Rd: RoleInt, Rs1: RoleInt}
	case OpRAND, OpCYCLE:
		return OperandRoles{Rd: RoleInt}
	default:
		return OperandRoles{} // NOP, PAUSE, HALT
	}
}

// DataSpan returns the byte length of the address window a program's data
// segment occupies for layout-translation purposes: the segment rounded
// up to a 4KiB page plus one slack page, so one-past-the-end pointers
// still translate with the segment.
func DataSpan(p *Program) uint64 {
	const page = 4096
	return (uint64(len(p.Data))+page-1)&^uint64(page-1) + page
}
