//paralint:deterministic

package verify

import (
	"bytes"
	"fmt"

	"paraverser/internal/isa"
)

// VariantMap records how a structurally decorrelated program variant
// relates to its original: a 4KiB-aligned shift of the data segment and a
// role-preserving permutation of each register file. The divergent
// checking mode (DME) uses the map both to translate register checkpoints
// into the variant's layout and to prove, statically, that the variant is
// semantically the original program.
type VariantMap struct {
	// XPerm maps original integer registers to variant registers. It must
	// be a bijection fixing the architecturally initialised registers
	// (X0/Zero, RA, SP, GP, TP), since the loader and the verifier's
	// entry-state assumptions address those by number.
	XPerm [isa.NumIntRegs]isa.Reg
	// FPerm maps original FP registers to variant FP registers (any
	// bijection: no FP register is architecturally special).
	FPerm [isa.NumFPRegs]isa.Reg
	// DataShift is the variant's data-segment relocation in bytes
	// (4KiB-aligned, at least DataSpan so the regions are disjoint).
	DataShift uint64
	// DataLo/DataHi bound the original-layout address window the shift
	// applies to: [DataLo, DataHi) relocates to [DataLo+DataShift,
	// DataHi+DataShift).
	DataLo, DataHi uint64
}

// Validate checks the map's structural invariants.
func (m *VariantMap) Validate() error {
	for _, fixed := range []isa.Reg{isa.Zero, isa.RA, isa.SP, isa.GP, isa.TP} {
		if m.XPerm[fixed] != fixed {
			return fmt.Errorf("verify: variant map moves architectural register x%d to x%d", fixed, m.XPerm[fixed])
		}
	}
	var seenX [isa.NumIntRegs]bool
	for i, r := range m.XPerm {
		if int(r) >= isa.NumIntRegs || seenX[r] {
			return fmt.Errorf("verify: XPerm is not a bijection at x%d -> x%d", i, r)
		}
		seenX[r] = true
	}
	var seenF [isa.NumFPRegs]bool
	for i, r := range m.FPerm {
		if int(r) >= isa.NumFPRegs || seenF[r] {
			return fmt.Errorf("verify: FPerm is not a bijection at f%d -> f%d", i, r)
		}
		seenF[r] = true
	}
	if m.DataShift%4096 != 0 {
		return fmt.Errorf("verify: data shift %#x not 4KiB-aligned", m.DataShift)
	}
	if m.DataHi < m.DataLo {
		return fmt.Errorf("verify: inverted data window [%#x, %#x)", m.DataLo, m.DataHi)
	}
	if m.DataShift != 0 && m.DataShift < m.DataHi-m.DataLo {
		return fmt.Errorf("verify: data shift %#x smaller than the %#x-byte window (regions overlap)",
			m.DataShift, m.DataHi-m.DataLo)
	}
	return nil
}

// inData reports whether an immediate denotes an address in the original
// data window.
func (m *VariantMap) inData(v int64) bool {
	return v >= 0 && uint64(v) >= m.DataLo && uint64(v) < m.DataHi
}

// EquivalentVariant proves that variant is the original program under the
// map: the instruction streams are isomorphic (identical opcodes, sizes
// and control flow; register fields related field-by-field through the
// role-appropriate permutation; LUI immediates in the data window shifted
// by exactly DataShift and all other immediates identical), the data
// segments are byte-identical, and the variant's base is the original's
// base plus the shift. Together with the dynamic induction check this is
// the proof-of-equivalence obligation of the decorrelation pass: any
// program satisfying it computes the original's function modulo the
// layout translation.
func EquivalentVariant(orig, variant *isa.Program, m *VariantMap) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if len(variant.Insts) != len(orig.Insts) {
		return fmt.Errorf("verify: variant has %d insts, original %d", len(variant.Insts), len(orig.Insts))
	}
	if variant.DataBase != orig.DataBase+m.DataShift {
		return fmt.Errorf("verify: variant data base %#x, want %#x",
			variant.DataBase, orig.DataBase+m.DataShift)
	}
	if !bytes.Equal(variant.Data, orig.Data) {
		return fmt.Errorf("verify: variant data segment differs from original")
	}
	if len(variant.Entries) != len(orig.Entries) {
		return fmt.Errorf("verify: variant has %d entries, original %d", len(variant.Entries), len(orig.Entries))
	}
	for i, e := range orig.Entries {
		if variant.Entries[i] != e {
			return fmt.Errorf("verify: variant entry %d at pc %d, original at pc %d", i, variant.Entries[i], e)
		}
	}
	for pc := range orig.Insts {
		o, v := &orig.Insts[pc], &variant.Insts[pc]
		if v.Op != o.Op || v.Size != o.Size {
			return fmt.Errorf("verify: pc %d: variant %s is not a relabeling of %s", pc, v, o)
		}
		roles := isa.RolesOf(o.Op)
		if err := regRelated(m, roles.Rd, o.Rd, v.Rd); err != nil {
			return fmt.Errorf("verify: pc %d (%s): rd: %w", pc, o, err)
		}
		if err := regRelated(m, roles.Rs1, o.Rs1, v.Rs1); err != nil {
			return fmt.Errorf("verify: pc %d (%s): rs1: %w", pc, o, err)
		}
		if err := regRelated(m, roles.Rs2, o.Rs2, v.Rs2); err != nil {
			return fmt.Errorf("verify: pc %d (%s): rs2: %w", pc, o, err)
		}
		wantImm := o.Imm
		if o.Op == isa.OpLUI && m.inData(o.Imm) {
			wantImm = o.Imm + int64(m.DataShift)
		}
		if v.Imm != wantImm {
			return fmt.Errorf("verify: pc %d (%s): variant imm %#x, want %#x", pc, o, v.Imm, wantImm)
		}
	}
	return nil
}

func regRelated(m *VariantMap, role isa.RegRole, o, v isa.Reg) error {
	var want isa.Reg
	switch role {
	case isa.RoleInt:
		want = m.XPerm[o]
	case isa.RoleFP:
		want = m.FPerm[o]
	default:
		want = o // unused field must be untouched
	}
	if v != want {
		return fmt.Errorf("r%d maps to r%d, want r%d", o, v, want)
	}
	return nil
}
