package verify_test

import (
	"strings"
	"testing"

	"paraverser/internal/asm"
	"paraverser/internal/isa"
	"paraverser/internal/isa/verify"
)

// findRule reports whether the report contains a finding from the given
// rule at the given severity.
func findRule(r *verify.Report, rule string, sev verify.Severity) bool {
	for _, f := range r.Findings {
		if f.Rule == rule && f.Sev == sev {
			return true
		}
	}
	return false
}

func TestCleanProgramVerifies(t *testing.T) {
	b := asm.New("clean")
	off := b.Word64(7)
	b.Sym("x", off)
	b.LiSym(isa.Reg(5), "x").
		Ld(8, 6, 5, 0).
		Addi(6, 6, 1).
		St(8, 6, 5, 0).
		Halt()
	p, err := b.BuildVerified()
	if err != nil {
		t.Fatalf("BuildVerified: %v", err)
	}
	rep := verify.Verify(p)
	if len(rep.Findings) != 0 {
		t.Errorf("clean program produced findings: %v", rep.Findings)
	}
}

func TestCallReturnFlowVerifies(t *testing.T) {
	b := asm.New("callret")
	b.Li(5, 1).
		Call("fn").
		Halt().
		Label("fn").
		Addi(5, 5, 1).
		Ret()
	p, err := b.BuildVerified()
	if err != nil {
		t.Fatalf("BuildVerified: %v", err)
	}
	if rep := verify.Verify(p); len(rep.Findings) != 0 {
		t.Errorf("call/return program produced findings: %v", rep.Findings)
	}
}

func TestDanglingBranchRejected(t *testing.T) {
	// The assembler refuses to build a branch past the end, so seed the
	// broken program directly.
	p := &isa.Program{
		Name: "dangling",
		Insts: []isa.Inst{
			{Op: isa.OpBEQ, Rs1: 0, Rs2: 0, Imm: 40},
			{Op: isa.OpHALT},
		},
		Entries: []uint64{0},
	}
	rep := verify.Verify(p)
	if !findRule(rep, verify.RuleValidate, verify.SevError) {
		t.Errorf("dangling branch not rejected: %v", rep.Findings)
	}
	if err := rep.Err(); err == nil {
		t.Error("Err() == nil for dangling branch")
	}
}

func TestFallOffEndRejected(t *testing.T) {
	p := &isa.Program{
		Name:    "falloff",
		Insts:   []isa.Inst{{Op: isa.OpADDI, Rd: 5, Rs1: 0, Imm: 1}},
		Entries: []uint64{0},
	}
	rep := verify.Verify(p)
	if !findRule(rep, verify.RuleCFG, verify.SevError) {
		t.Errorf("fall-off-end not rejected: %v", rep.Findings)
	}
}

func TestInfiniteLoopRejected(t *testing.T) {
	b := asm.New("spin")
	b.Label("loop").
		Addi(5, 0, 1).
		Jmp("loop").
		Halt() // unreachable
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rep := verify.Verify(p)
	if !findRule(rep, verify.RuleHalt, verify.SevError) {
		t.Errorf("inescapable loop not rejected: %v", rep.Findings)
	}
	if !findRule(rep, verify.RuleDeadCode, verify.SevWarn) {
		t.Errorf("unreachable HALT not warned: %v", rep.Findings)
	}
	if _, err := b.BuildVerified(); err == nil {
		t.Error("BuildVerified accepted an inescapable loop")
	}
}

func TestConditionalSpinLoopAccepted(t *testing.T) {
	// A spin loop with a conditional exit edge must pass: the exit path
	// exists statically even though taking it depends on memory.
	b := asm.New("condspin")
	off := b.Word64(0)
	b.Sym("flag", off)
	b.LiSym(5, "flag").
		Label("wait").
		Ld(8, 6, 5, 0).
		Beq(6, 0, "wait").
		Halt()
	if _, err := b.BuildVerified(); err != nil {
		t.Errorf("conditional spin loop rejected: %v", err)
	}
}

func TestUseBeforeDefRejected(t *testing.T) {
	b := asm.New("ubd")
	b.Add(5, 6, 7). // x6, x7 never written
			Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rep := verify.Verify(p)
	if !findRule(rep, verify.RuleUseDef, verify.SevError) {
		t.Errorf("use-before-def not rejected: %v", rep.Findings)
	}
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "x6") {
		t.Errorf("Err() should name x6: %v", err)
	}
}

func TestUseBeforeDefOnOnePathRejected(t *testing.T) {
	// x5 is defined on the fall-through path only; the meet over both
	// branch edges must catch the undefined path.
	b := asm.New("onepath")
	b.Li(6, 1).
		Beq(6, 0, "skip").
		Li(5, 2).
		Label("skip").
		Add(7, 5, 6).
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !findRule(verify.Verify(p), verify.RuleUseDef, verify.SevError) {
		t.Error("path-sensitive use-before-def not rejected")
	}
}

func TestEntryRegistersDefined(t *testing.T) {
	// SP, GP and TP are loader-initialised; reading them at entry is fine.
	b := asm.New("entryregs")
	b.Add(5, isa.SP, isa.GP).
		Add(6, 5, isa.TP).
		Halt()
	if _, err := b.BuildVerified(); err != nil {
		t.Errorf("entry-register reads rejected: %v", err)
	}
}

func TestFPUseBeforeDefRejected(t *testing.T) {
	b := asm.New("fpubd")
	b.Fadd(3, 1, 2). // f1, f2 never written (F file is distinct from X)
				Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rep := verify.Verify(p)
	if !findRule(rep, verify.RuleUseDef, verify.SevError) {
		t.Errorf("FP use-before-def not rejected: %v", rep.Findings)
	}
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "f1") {
		t.Errorf("Err() should name f1: %v", err)
	}
}

func TestStaticStoreOutOfBoundsRejected(t *testing.T) {
	b := asm.New("oob")
	off := b.Word64(1)
	b.Sym("x", off)
	b.LiSym(5, "x").
		Li(6, 42).
		St(8, 6, 5, 8). // one word past the 8-byte data segment
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rep := verify.Verify(p)
	if !findRule(rep, verify.RuleBounds, verify.SevError) {
		t.Errorf("static OOB store not rejected: %v", rep.Findings)
	}
}

func TestStraddlingLoadRejected(t *testing.T) {
	b := asm.New("straddle")
	off := b.Word64(1)
	b.Sym("x", off)
	b.LiSym(5, "x").
		Ld(8, 6, 5, 4). // 8-byte load at data end - 4: straddles the boundary
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !findRule(verify.Verify(p), verify.RuleBounds, verify.SevError) {
		t.Error("straddling load not rejected")
	}
}

func TestStackAccessNotFlagged(t *testing.T) {
	// SP-relative accesses are far from the data segment; the bounds
	// check must not confuse them with near misses.
	b := asm.New("stack")
	b.Word64(1)
	b.Li(6, 9).
		St(8, 6, isa.SP, -8).
		Ld(8, 7, isa.SP, -8).
		Halt()
	if _, err := b.BuildVerified(); err != nil {
		t.Errorf("stack access flagged: %v", err)
	}
}

func TestNonRepeatCensus(t *testing.T) {
	b := asm.New("nonrep")
	b.Rand(5).
		Cycle(6).
		Add(7, 5, 6).
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rep := verify.Verify(p)
	if len(rep.NonRepeat) != 2 || rep.NonRepeat[0] != 0 || rep.NonRepeat[1] != 1 {
		t.Errorf("NonRepeat = %v, want [0 1]", rep.NonRepeat)
	}
	if !findRule(rep, verify.RuleNonRepeat, verify.SevInfo) {
		t.Errorf("non-repeat census missing: %v", rep.Findings)
	}
	if err := rep.Err(); err != nil {
		t.Errorf("info findings must not fail Check: %v", err)
	}
}

func TestMultiEntryReachability(t *testing.T) {
	// Two harts with separate entries; both bodies must be reachable and
	// the per-entry initial state applies to each.
	b := asm.New("mt")
	b.Entry().
		Li(5, 1).
		Halt()
	b.Entry().
		Li(6, 2).
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rep := verify.Verify(p)
	if len(rep.Findings) != 0 {
		t.Errorf("multi-entry program produced findings: %v", rep.Findings)
	}
	for pc, ok := range rep.Reachable {
		if !ok {
			t.Errorf("pc %d unreachable", pc)
		}
	}
}
