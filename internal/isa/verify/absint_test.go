package verify

import (
	"strings"
	"testing"

	"paraverser/internal/isa"
)

// Programs in this file are hand-assembled as raw instruction slices:
// the asm package imports verify, so verify's tests cannot use the
// builder without an import cycle.

// firstFinding returns the first finding with the given rule, or nil.
func firstFinding(r *Report, rule string) *Finding {
	for i := range r.Findings {
		if r.Findings[i].Rule == rule {
			return &r.Findings[i]
		}
	}
	return nil
}

// storeLoopProgram assembles the canonical induction-variable store
// loop over an `elems`-element array of 8-byte slots:
//
//	lui  r10, DataBase      ; base
//	addi r11, zero, 0       ; i = 0
//	addi r12, zero, elems+slack
//	loop:
//	slli r13, r11, 3
//	add  r13, r10, r13
//	st.8 r11, 0(r13)        ; arr[i] = i
//	addi r11, r11, 1
//	blt  r11, r12, loop
//	halt
//
// With slack == 0 the final store lands at arr[elems-1] and the program
// must verify clean with a proved instruction bound; with slack == 1 it
// writes one slot past the segment and must be rejected by RuleBounds.
func storeLoopProgram(elems, slack int64) *isa.Program {
	const base = isa.DefaultDataBase
	r10, r11, r12, r13 := isa.Reg(10), isa.Reg(11), isa.Reg(12), isa.Reg(13)
	insts := []isa.Inst{
		{Op: isa.OpLUI, Rd: r10, Imm: int64(base)},
		{Op: isa.OpADDI, Rd: r11, Rs1: isa.Zero, Imm: 0},
		{Op: isa.OpADDI, Rd: r12, Rs1: isa.Zero, Imm: elems + slack},
		// loop: (pc 3)
		{Op: isa.OpSLLI, Rd: r13, Rs1: r11, Imm: 3},
		{Op: isa.OpADD, Rd: r13, Rs1: r10, Rs2: r13},
		{Op: isa.OpST, Rd: isa.Zero, Rs1: r13, Rs2: r11, Size: 8},
		{Op: isa.OpADDI, Rd: r11, Rs1: r11, Imm: 1},
		{Op: isa.OpBLT, Rs1: r11, Rs2: r12, Imm: -4}, // back to loop head at pc 3
		{Op: isa.OpHALT},
	}
	return &isa.Program{
		Name:     "store-loop",
		Insts:    insts,
		Data:     make([]byte, elems*8),
		DataBase: base,
		Entries:  []uint64{0},
	}
}

// TestInductionStoreLoopAccepted is the tentpole acceptance test: the
// fixpoint must prove i ∈ [0, elems-1] at the store (branch refinement
// trimming the widened interval) so every access is in bounds, and the
// termination analysis must deliver a concrete instruction bound.
func TestInductionStoreLoopAccepted(t *testing.T) {
	p := storeLoopProgram(64, 0)
	r := Verify(p)
	for _, f := range r.Findings {
		t.Errorf("unexpected finding: %s", f)
	}
	if r.MaxInsts <= 0 {
		t.Fatalf("MaxInsts = %d, want a positive proved bound", r.MaxInsts)
	}
	// 3 preamble + 64 iterations of 5 + halt = 324 dynamic instructions;
	// the bound may be conservative but must cover the real execution.
	if r.MaxInsts < 324 {
		t.Fatalf("MaxInsts = %d below the real dynamic count 324", r.MaxInsts)
	}
	// Every store must come out proved in the memory fact log.
	proved := 0
	for _, mf := range r.MemFacts {
		if mf.PC == 5 && mf.Proved {
			proved++
		}
		if mf.Violation {
			t.Errorf("unexpected violation fact at pc %d: %s", mf.PC, mf.Addr)
		}
	}
	if proved == 0 {
		t.Fatalf("store at pc 5 not proved in bounds; facts: %+v", r.MemFacts)
	}
}

// TestInductionStoreLoopOffByOneRejected flips the loop bound one past
// the array: the last store writes 8 bytes beyond the segment and the
// verifier must reject it with RuleBounds.
func TestInductionStoreLoopOffByOneRejected(t *testing.T) {
	p := storeLoopProgram(64, 1)
	r := Verify(p)
	f := firstFinding(r, RuleBounds)
	if f == nil {
		t.Fatalf("off-by-one store loop not rejected; findings: %v, facts: %+v", r.Findings, r.MemFacts)
	}
	if f.Sev != SevError {
		t.Fatalf("RuleBounds finding severity = %v, want SevError", f.Sev)
	}
	if f.PC != 5 {
		t.Fatalf("RuleBounds finding at pc %d, want the store at pc 5", f.PC)
	}
}

// TestBranchRefinementPrunesDeadArm checks per-edge refinement turns a
// statically decided branch into dead code on the impossible arm.
func TestBranchRefinementPrunesDeadArm(t *testing.T) {
	r10 := isa.Reg(10)
	p := &isa.Program{
		Name: "decided-branch",
		Insts: []isa.Inst{
			{Op: isa.OpADDI, Rd: r10, Rs1: isa.Zero, Imm: 7},
			{Op: isa.OpBEQ, Rs1: r10, Rs2: isa.Zero, Imm: 3}, // to pc 4; never taken
			{Op: isa.OpADDI, Rd: r10, Rs1: r10, Imm: 1},
			{Op: isa.OpHALT},
			{Op: isa.OpADDI, Rd: r10, Rs1: isa.Zero, Imm: -1}, // dead arm
			{Op: isa.OpHALT},
		},
		Entries: []uint64{0},
	}
	r := Verify(p)
	f := firstFinding(r, RuleDeadCode)
	if f == nil {
		t.Fatalf("statically-false branch arm not reported dead; findings: %v", r.Findings)
	}
	if f.PC != 4 {
		t.Fatalf("dead code reported at pc %d, want 4", f.PC)
	}
}

// TestSpinLoopIsInfoNotWarn: a flag-spin's exit depends on loaded data,
// so the unbounded-loop diagnostic must be informational, not a warning
// — shipped workloads use these for locks and barriers.
func TestSpinLoopIsInfoNotWarn(t *testing.T) {
	r10, r11 := isa.Reg(10), isa.Reg(11)
	p := &isa.Program{
		Name: "spin",
		Insts: []isa.Inst{
			{Op: isa.OpLUI, Rd: r10, Imm: int64(isa.DefaultDataBase)},
			// spin: (pc 1)
			{Op: isa.OpLD, Rd: r11, Rs1: r10, Size: 8},
			{Op: isa.OpBEQ, Rs1: r11, Rs2: isa.Zero, Imm: -1}, // back to the load
			{Op: isa.OpHALT},
		},
		Data:     make([]byte, 8),
		DataBase: isa.DefaultDataBase,
		Entries:  []uint64{0},
	}
	r := Verify(p)
	f := firstFinding(r, RuleTermination)
	if f == nil {
		t.Fatalf("spin loop produced no termination finding: %v", r.Findings)
	}
	if f.Sev != SevInfo {
		t.Fatalf("spin loop termination severity = %v, want SevInfo", f.Sev)
	}
	if !strings.Contains(f.Msg, "data-dependent") {
		t.Fatalf("spin loop message %q should mention data-dependence", f.Msg)
	}
	if r.MaxInsts != 0 {
		t.Fatalf("MaxInsts = %d for an unbounded program, want 0", r.MaxInsts)
	}
}

// TestCounterLoopWithoutInductionIsWarn: a loop stepped by ADD (not a
// self-ADDI) resists the induction argument; when hart 0's step is zero
// the loop really never exits, yet no data is involved — that must stay
// a warning, not be softened to info. Two harts share the entry so TP
// (the step source) is not a foldable constant.
func TestCounterLoopWithoutInductionIsWarn(t *testing.T) {
	r10, r12, r13 := isa.Reg(10), isa.Reg(12), isa.Reg(13)
	p := &isa.Program{
		Name: "opaque-counter",
		Insts: []isa.Inst{
			{Op: isa.OpADDI, Rd: r10, Rs1: isa.Zero, Imm: 0},
			{Op: isa.OpADDI, Rd: r13, Rs1: isa.Zero, Imm: 100},
			{Op: isa.OpADD, Rd: r12, Rs1: isa.TP, Rs2: isa.TP}, // step = 2*hart ∈ {0, 2}
			// loop: (pc 3) — ADD-step defeats the self-ADDI induction pattern
			{Op: isa.OpADD, Rd: r10, Rs1: r10, Rs2: r12},
			{Op: isa.OpBLT, Rs1: r10, Rs2: r13, Imm: -1}, // back to pc 3
			{Op: isa.OpHALT},
		},
		Entries: []uint64{0, 0},
	}
	r := Verify(p)
	f := firstFinding(r, RuleTermination)
	if f == nil {
		t.Fatalf("opaque counter loop produced no termination finding: %v", r.Findings)
	}
	if f.Sev != SevWarn {
		t.Fatalf("opaque counter termination severity = %v, want SevWarn: %s", f.Sev, f)
	}
}

// TestNestedLoopBound: the recursive remainder decomposition must bound
// a two-level nest and multiply the bounds out.
func TestNestedLoopBound(t *testing.T) {
	r10, r11, r14 := isa.Reg(10), isa.Reg(11), isa.Reg(14)
	p := &isa.Program{
		Name: "nest",
		Insts: []isa.Inst{
			{Op: isa.OpADDI, Rd: r14, Rs1: isa.Zero, Imm: 16},
			{Op: isa.OpADDI, Rd: r10, Rs1: isa.Zero, Imm: 0},
			// outer: (pc 2)
			{Op: isa.OpADDI, Rd: r11, Rs1: isa.Zero, Imm: 0},
			// inner: (pc 3) — triangular: runs r10 times
			{Op: isa.OpADDI, Rd: r11, Rs1: r11, Imm: 1},
			{Op: isa.OpBLT, Rs1: r11, Rs2: r10, Imm: -1}, // inner backedge to pc 3
			{Op: isa.OpADDI, Rd: r10, Rs1: r10, Imm: 1},
			{Op: isa.OpBLT, Rs1: r10, Rs2: r14, Imm: -4}, // outer backedge to pc 2
			{Op: isa.OpHALT},
		},
		Entries: []uint64{0},
	}
	r := Verify(p)
	for _, f := range r.Findings {
		if f.Sev == SevError {
			t.Fatalf("unexpected error: %s", f)
		}
	}
	if r.MaxInsts <= 0 {
		t.Fatalf("nested loop not bounded; findings: %v", r.Findings)
	}
}

// TestAbsintProvesEntryFacts: hart-specific seeds flow through — TP is
// the hart index and SP the per-hart stack top.
func TestAbsintProvesEntryFacts(t *testing.T) {
	p := &isa.Program{
		Name: "seeds",
		Insts: []isa.Inst{
			{Op: isa.OpADD, Rd: isa.Reg(10), Rs1: isa.TP, Rs2: isa.Zero},
			{Op: isa.OpHALT},
		},
		Entries: []uint64{0},
	}
	succs, _ := buildCFG(p, &Report{Program: p.Name})
	res := runAbsint(p, succs)
	st := res.in[1]
	if c, ok := st.getX(isa.Reg(10)).IsConst(); !ok || c != 0 {
		t.Fatalf("single-hart TP copy = %s, want const 0", st.getX(isa.Reg(10)))
	}

	// Two harts sharing the entry: the seed join must cover both.
	p2 := &isa.Program{
		Name:    "seeds2",
		Insts:   p.Insts,
		Entries: []uint64{0, 0},
	}
	succs2, _ := buildCFG(p2, &Report{Program: p2.Name})
	res2 := runAbsint(p2, succs2)
	got := res2.in[1].getX(isa.Reg(10))
	if !got.Contains(0) || !got.Contains(1) {
		t.Fatalf("shared-entry TP join = %s, want to cover harts 0 and 1", got)
	}
	if got.Contains(2) && got.Lo == 0 && got.Hi > 8 {
		t.Fatalf("shared-entry TP join = %s is too loose", got)
	}
}
