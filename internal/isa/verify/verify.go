// Package verify is a static verifier for assembled isa.Programs. It
// builds the control-flow graph of a program and proves, without
// executing it, a set of structural properties the dynamic layers
// assume:
//
//   - every branch and jump target lands inside the program, and no
//     reachable path falls off the end of the instruction stream;
//   - from every reachable instruction some HALT (or a function return)
//     remains reachable — a region that can never reach an exit is an
//     unconditional infinite loop;
//   - no reachable instruction reads an integer or floating-point
//     register on a path where nothing has defined it (entry state: X0,
//     SP, GP and TP are architecturally initialised by the loader);
//   - memory accesses stay inside the declared data segment: an
//     abstract interpretation (absint.go) proves an interval and an
//     alignment for every register at every program point — including
//     loop-carried induction addresses — and accesses whose proved
//     interval lies outside the segment, or whose near misses land in a
//     guard window around it, are reported as errors rather than
//     silently touching unmapped memory;
//   - the program provably halts within a computed instruction bound
//     (Report.MaxInsts): cyclic regions are bounded by an induction
//     argument over their counter registers (termination.go), and loops
//     that resist the argument carry a SevWarn — or a SevInfo when the
//     exit condition is data-dependent, as in a spin-wait;
//   - non-repeatable instructions (RAND, CYCLE) are enumerated, since
//     each one obligates a load-store-log slot for exact replay.
//
// The analysis is deliberately conservative where the CFG is not static:
// an indirect jump (JALR) is treated as a function return / exit, and a
// call (JAL with a live link register) is assumed to return to the next
// instruction with every register defined and no value knowledge.
// Severity separates hard contract violations (SevError) from
// informational classification (SevInfo) and hygiene findings (SevWarn);
// only SevError findings fail Check.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"paraverser/internal/isa"
)

// Severity ranks findings.
type Severity uint8

// Severities, least severe first. Only SevError fails Check.
const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("sev(%d)", uint8(s))
}

// Rules name the check a finding came from.
const (
	RuleValidate  = "validate"  // isa.Program.Validate failure
	RuleCFG       = "cfg"       // fall-off-end / malformed control flow
	RuleHalt      = "halt"      // no path to HALT or return
	RuleUseDef    = "usedef"    // register read before any definition
	RuleBounds    = "bounds"    // statically resolvable access outside data
	RuleDeadCode  = "deadcode"  // instructions unreachable from any entry
	RuleNonRepeat = "nonrepeat" // RAND/CYCLE census (informational)
	// RuleTermination marks loops with no provable iteration bound:
	// SevWarn, or SevInfo when the exit condition is data-dependent.
	RuleTermination = "termination"
)

// Finding is one verifier result.
type Finding struct {
	Sev  Severity
	Rule string
	PC   int // -1 when the finding is not tied to one instruction
	Msg  string
}

func (f Finding) String() string {
	if f.PC < 0 {
		return fmt.Sprintf("%s: %s: %s", f.Sev, f.Rule, f.Msg)
	}
	return fmt.Sprintf("%s: %s: pc %d: %s", f.Sev, f.Rule, f.PC, f.Msg)
}

// Report is the full verifier output for one program.
type Report struct {
	Program  string
	Findings []Finding
	// Reachable[pc] reports whether any entry point can reach pc.
	Reachable []bool
	// NonRepeat lists the reachable PCs of RAND/CYCLE instructions, in
	// order — each needs a load-store-log slot for replay.
	NonRepeat []int
	// MaxInsts is the proved per-hart bound on retired instructions, 0
	// when any reachable loop resisted the termination analysis.
	MaxInsts int64
	// MemFacts records the interval the abstract interpretation proved
	// for each reachable memory access, in PC order.
	MemFacts []MemFact
}

// MemFact is the proved address range of one memory access operand.
type MemFact struct {
	PC    int
	What  string // "effective", "first", "second"
	Addr  AbsVal // abstract effective address
	Size  uint8
	Align uint64 // provable address alignment (power of two)
	// Proved reports the access is entirely inside the data segment;
	// Violation that it is provably (or near-miss) outside.
	Proved, Violation bool
}

// Errors returns only the SevError findings.
func (r *Report) Errors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Sev == SevError {
			out = append(out, f)
		}
	}
	return out
}

// Err summarises the report as an error: nil when no SevError finding
// exists, otherwise one error naming the program and every violation.
func (r *Report) Err() error {
	errs := r.Errors()
	if len(errs) == 0 {
		return nil
	}
	msgs := make([]string, len(errs))
	for i, f := range errs {
		msgs[i] = f.String()
	}
	return fmt.Errorf("verify %q: %d violation(s):\n  %s",
		r.Program, len(errs), strings.Join(msgs, "\n  "))
}

func (r *Report) addf(sev Severity, rule string, pc int, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{Sev: sev, Rule: rule, PC: pc, Msg: fmt.Sprintf(format, args...)})
}

// Check verifies the program and returns the aggregated error, nil when
// it proves clean.
func Check(p *isa.Program) error { return Verify(p).Err() }

// Verify runs every check and returns the full report.
func Verify(p *isa.Program) *Report {
	r := &Report{Program: p.Name}
	if err := p.Validate(); err != nil {
		r.addf(SevError, RuleValidate, -1, "%v", err)
		return r // CFG construction assumes Validate's range guarantees
	}
	n := len(p.Insts)
	r.Reachable = make([]bool, n)

	succs, terminator := buildCFG(p, r)
	reach(p, succs, r)
	checkHaltReachable(p, succs, terminator, r)
	checkUseBeforeDef(p, succs, r)
	abs := runAbsint(p, succs)
	checkTermination(p, abs, r)
	checkStaticBounds(p, abs, r)
	censusNonRepeat(p, r)
	checkDeadCode(p, abs, r)

	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Sev != b.Sev {
			return a.Sev > b.Sev
		}
		return a.PC < b.PC
	})
	return r
}

// buildCFG computes the successor sets. A conditional branch has the
// fall-through and the target; JAL has its target, plus the return point
// when it links (a call); JALR and HALT terminate. Falling off the end
// of the instruction stream is reported here.
func buildCFG(p *isa.Program, r *Report) (succs [][]int, terminator []bool) {
	n := len(p.Insts)
	succs = make([][]int, n)
	terminator = make([]bool, n)
	for pc, in := range p.Insts {
		switch {
		case in.Op == isa.OpHALT || in.Op == isa.OpJALR:
			terminator[pc] = true
		case in.Op == isa.OpJAL:
			tgt := pc + int(in.Imm)
			succs[pc] = append(succs[pc], tgt)
			if in.Rd != isa.Zero {
				// A call: assume the callee returns to pc+1.
				if pc+1 >= n {
					r.addf(SevError, RuleCFG, pc, "call at the last instruction has no return point (%s)", in)
				} else {
					succs[pc] = append(succs[pc], pc+1)
				}
			}
		case isa.ClassOf(in.Op) == isa.ClassBranch:
			succs[pc] = append(succs[pc], pc+int(in.Imm))
			fallthroughTo(pc, n, in, r, &succs[pc])
		default:
			fallthroughTo(pc, n, in, r, &succs[pc])
		}
	}
	return succs, terminator
}

func fallthroughTo(pc, n int, in isa.Inst, r *Report, out *[]int) {
	if pc+1 >= n {
		r.addf(SevError, RuleCFG, pc, "control falls off the end of the program after %s", in)
		return
	}
	*out = append(*out, pc+1)
}

// reach marks everything reachable from any entry point.
func reach(p *isa.Program, succs [][]int, r *Report) {
	var stack []int
	for _, e := range p.Entries {
		if !r.Reachable[e] {
			r.Reachable[e] = true
			stack = append(stack, int(e))
		}
	}
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range succs[pc] {
			if !r.Reachable[s] {
				r.Reachable[s] = true
				stack = append(stack, s)
			}
		}
	}
}

// checkHaltReachable verifies that every reachable instruction can still
// reach a terminator (HALT or a return). A reachable region with no such
// path is an unconditional infinite loop.
func checkHaltReachable(p *isa.Program, succs [][]int, terminator []bool, r *Report) {
	n := len(p.Insts)
	preds := make([][]int, n)
	for pc, ss := range succs {
		if !r.Reachable[pc] {
			continue
		}
		for _, s := range ss {
			preds[s] = append(preds[s], pc)
		}
	}
	canExit := make([]bool, n)
	var stack []int
	for pc := 0; pc < n; pc++ {
		if r.Reachable[pc] && terminator[pc] {
			canExit[pc] = true
			stack = append(stack, pc)
		}
	}
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range preds[pc] {
			if !canExit[q] {
				canExit[q] = true
				stack = append(stack, q)
			}
		}
	}
	stuck := -1
	count := 0
	for pc := 0; pc < n; pc++ {
		if r.Reachable[pc] && !canExit[pc] {
			if stuck < 0 {
				stuck = pc
			}
			count++
		}
	}
	if stuck >= 0 {
		r.addf(SevError, RuleHalt, stuck,
			"%d reachable instruction(s) starting at pc %d (%s) have no path to HALT or a return — unconditional infinite loop",
			count, stuck, p.Insts[stuck])
	}
}

// --- use-before-def dataflow ---

// Register bitsets: bit r is integer register Xr; bit 32+r is Fr.
type regset uint64

const (
	allRegs regset = ^regset(0)
	// entryRegs is what the loader architecturally initialises before the
	// first instruction: X0 is hard-wired, and emu.NewHart/NewMachine set
	// SP, TP and GP.
	entryRegs = regset(1)<<uint(isa.Zero) | regset(1)<<uint(isa.SP) |
		regset(1)<<uint(isa.GP) | regset(1)<<uint(isa.TP)
)

func xbit(r isa.Reg) regset { return regset(1) << uint(r) }
func fbit(r isa.Reg) regset { return regset(1) << (32 + uint(r)) }

// usesDefs returns the registers an instruction reads and writes.
func usesDefs(in isa.Inst) (uses, defs regset) {
	switch in.Op {
	case isa.OpADD, isa.OpSUB, isa.OpMUL, isa.OpDIV, isa.OpREM,
		isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSLL, isa.OpSRL, isa.OpSRA,
		isa.OpSLT, isa.OpSLTU:
		return xbit(in.Rs1) | xbit(in.Rs2), xbit(in.Rd)
	case isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI,
		isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpSLTI:
		return xbit(in.Rs1), xbit(in.Rd)
	case isa.OpLUI:
		return 0, xbit(in.Rd)
	case isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFDIV, isa.OpFMIN, isa.OpFMAX:
		return fbit(in.Rs1) | fbit(in.Rs2), fbit(in.Rd)
	case isa.OpFSQRT, isa.OpFNEG, isa.OpFABS:
		return fbit(in.Rs1), fbit(in.Rd)
	case isa.OpFCVTIF, isa.OpFMVIF:
		return xbit(in.Rs1), fbit(in.Rd)
	case isa.OpFCVTFI, isa.OpFMVFI:
		return fbit(in.Rs1), xbit(in.Rd)
	case isa.OpFEQ, isa.OpFLT:
		return fbit(in.Rs1) | fbit(in.Rs2), xbit(in.Rd)
	case isa.OpLD:
		return xbit(in.Rs1), xbit(in.Rd)
	case isa.OpFLD:
		return xbit(in.Rs1), fbit(in.Rd)
	case isa.OpST:
		return xbit(in.Rs1) | xbit(in.Rs2), 0
	case isa.OpFST:
		return xbit(in.Rs1) | fbit(in.Rs2), 0
	case isa.OpGLD:
		return xbit(in.Rs1) | xbit(in.Rs2), xbit(in.Rd)
	case isa.OpSST:
		// Scatter stores the value in Rd to both addresses.
		return xbit(in.Rs1) | xbit(in.Rs2) | xbit(in.Rd), 0
	case isa.OpSWP:
		return xbit(in.Rs1) | xbit(in.Rs2), xbit(in.Rd)
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		return xbit(in.Rs1) | xbit(in.Rs2), 0
	case isa.OpJAL:
		return 0, xbit(in.Rd)
	case isa.OpJALR:
		return xbit(in.Rs1), xbit(in.Rd)
	case isa.OpRAND, isa.OpCYCLE:
		return 0, xbit(in.Rd)
	}
	return 0, 0 // NOP, PAUSE, HALT
}

// checkUseBeforeDef runs a forward must-be-defined dataflow (meet =
// intersection) and reports reads of never-defined registers. Writes to
// X0 are discarded by hardware, so X0 never counts as a definition
// target but is always defined. After a call, every register is assumed
// defined — the callee's effect is unknown, and the entry-path check
// inside the callee covers its own reads.
func checkUseBeforeDef(p *isa.Program, succs [][]int, r *Report) {
	n := len(p.Insts)
	in := make([]regset, n)
	seen := make([]bool, n)
	for i := range in {
		in[i] = allRegs // ⊤ until first visited
	}
	var work []int
	for _, e := range p.Entries {
		in[e] = entryRegs
		seen[e] = true
		work = append(work, int(e))
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		inst := p.Insts[pc]
		_, defs := usesDefs(inst)
		out := in[pc] | defs | xbit(isa.Zero)
		isCall := inst.Op == isa.OpJAL && inst.Rd != isa.Zero
		for _, s := range succs[pc] {
			sout := out
			if isCall && s == pc+1 {
				sout = allRegs // returning callee: assume everything defined
			}
			next := in[s] & sout
			if !seen[s] || next != in[s] {
				in[s] = next
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	for pc := 0; pc < n; pc++ {
		if !r.Reachable[pc] {
			continue
		}
		uses, _ := usesDefs(p.Insts[pc])
		if missing := uses &^ in[pc]; missing != 0 {
			r.addf(SevError, RuleUseDef, pc, "%s reads %s on a path where nothing has defined it",
				p.Insts[pc], regsetNames(missing))
		}
	}
}

func regsetNames(s regset) string {
	var names []string
	for r := 0; r < 32; r++ {
		if s&(regset(1)<<uint(r)) != 0 {
			names = append(names, fmt.Sprintf("x%d", r))
		}
		if s&(regset(1)<<(32+uint(r))) != 0 {
			names = append(names, fmt.Sprintf("f%d", r))
		}
	}
	return strings.Join(names, ",")
}

// --- static bounds over the abstract-interpretation states ---

// boundsGuard is the window past either end of the data segment inside
// which an out-of-segment address interval is treated as an off-by-N
// bug rather than a deliberate reference to another memory region
// (stack, I/O).
const boundsGuard = 4096

// checkStaticBounds checks every reachable memory access against the
// declared data segment using the proved address intervals: an access
// is proved when its whole interval (plus size) fits inside the
// segment, and is a violation when it is not proved and the interval
// is confined to the segment ± the guard window — a near miss. Wide
// or far intervals (stack traffic, pointer arithmetic the domain
// cannot pin down) are recorded as facts but not flagged.
func checkStaticBounds(p *isa.Program, abs *absResult, r *Report) {
	if len(p.Data) == 0 {
		return
	}
	lo, hi := int64(p.DataBase), int64(p.DataBase)+int64(len(p.Data))
	for pc := 0; pc < len(p.Insts); pc++ {
		if !abs.in[pc].live || !r.Reachable[pc] {
			continue
		}
		in := p.Insts[pc]
		if !isa.IsMem(in.Op) {
			continue
		}
		st := abs.in[pc]
		check := func(addr AbsVal, what string) {
			if addr.IsBot() {
				return
			}
			fact := MemFact{PC: pc, What: what, Addr: addr, Size: in.Size, Align: addr.Align()}
			switch {
			case addr.Lo >= lo && addr.Hi+int64(in.Size) <= hi:
				fact.Proved = true
			case addr.Lo >= lo-boundsGuard && addr.Hi < hi+boundsGuard:
				// The whole interval is near the segment yet not inside it:
				// a provable out-of-bounds access or straddle.
				fact.Violation = true
				if v, ok := addr.IsConst(); ok {
					r.addf(SevError, RuleBounds, pc,
						"%s: %s address %#x (+%d bytes) is outside the data segment [%#x,%#x)",
						in, what, v, in.Size, lo, hi)
				} else {
					r.addf(SevError, RuleBounds, pc,
						"%s: %s address range %s (+%d bytes) cannot be proven inside the data segment [%#x,%#x)",
						in, what, addr, in.Size, lo, hi)
				}
			}
			r.MemFacts = append(r.MemFacts, fact)
		}
		switch in.Op {
		case isa.OpLD, isa.OpST, isa.OpFLD, isa.OpFST:
			check(avAdd(st.getX(in.Rs1), ConstVal(uint64(in.Imm))), "effective")
		case isa.OpGLD, isa.OpSST:
			check(avAdd(st.getX(in.Rs1), ConstVal(uint64(in.Imm))), "first")
			check(st.getX(in.Rs2), "second")
		case isa.OpSWP:
			check(st.getX(in.Rs1), "effective")
		}
	}
}

// censusNonRepeat records every reachable non-repeatable instruction —
// each obligates a load-store-log slot for replay on a checker.
func censusNonRepeat(p *isa.Program, r *Report) {
	for pc, in := range p.Insts {
		if r.Reachable[pc] && isa.ClassOf(in.Op) == isa.ClassNonRepeat {
			r.NonRepeat = append(r.NonRepeat, pc)
		}
	}
	if len(r.NonRepeat) > 0 {
		r.addf(SevInfo, RuleNonRepeat, r.NonRepeat[0],
			"%d non-repeatable instruction(s) (RAND/CYCLE) require log-replay slots", len(r.NonRepeat))
	}
}

// checkDeadCode reports instructions no entry point reaches (a warning)
// and instructions the value analysis proves unreachable even though CFG
// edges lead there — the dead arm of a statically decided branch
// (informational: generators deliberately emit always-taken guards).
func checkDeadCode(p *isa.Program, abs *absResult, r *Report) {
	dead, first := 0, -1
	semDead, semFirst := 0, -1
	for pc := range p.Insts {
		if !r.Reachable[pc] {
			if first < 0 {
				first = pc
			}
			dead++
		} else if !abs.in[pc].live {
			if semFirst < 0 {
				semFirst = pc
			}
			semDead++
		}
	}
	if dead > 0 {
		r.addf(SevWarn, RuleDeadCode, first,
			"%d instruction(s) unreachable from any entry point, first at pc %d (%s)",
			dead, first, p.Insts[first])
	}
	if semDead > 0 {
		r.addf(SevInfo, RuleDeadCode, semFirst,
			"%d instruction(s) on statically decided branch arms can never execute, first at pc %d (%s)",
			semDead, semFirst, p.Insts[semFirst])
	}
}
