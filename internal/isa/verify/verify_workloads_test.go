package verify_test

import (
	"testing"

	"paraverser/internal/asm"
	"paraverser/internal/isa"
	"paraverser/internal/isa/verify"
	"paraverser/internal/workload/gap"
	"paraverser/internal/workload/parsec"
	"paraverser/internal/workload/spec"
)

// TestShippedWorkloadsVerifyClean proves every program the workload
// generators emit — the synthetic SPEC profiles, the GAP graph kernels
// and the PARSEC-style kernels — passes the static verifier with zero
// errors. CI runs this as the "Verify workloads" gate.
func TestShippedWorkloadsVerifyClean(t *testing.T) {
	var progs []*isa.Program

	for _, p := range spec.Profiles() {
		prog, err := p.Build(64)
		if err != nil {
			t.Fatalf("spec %s: %v", p.Name, err)
		}
		progs = append(progs, prog)
	}

	g := gap.Uniform(64, 4, 1)
	for _, k := range []struct {
		name string
		prog *isa.Program
	}{
		{"bfs", first(gap.BFS(g, 0))},
		{"pagerank", first(gap.PageRank(g, 3))},
		{"sssp", first(gap.SSSP(g, 0))},
		{"cc", first(gap.CC(g))},
		{"tc", first(gap.TC(g))},
		{"bc", first(gap.BC(g, 0))},
	} {
		progs = append(progs, k.prog)
	}

	for _, k := range parsec.Kernels(0) {
		progs = append(progs, k.Prog)
	}

	if len(progs) == 0 {
		t.Fatal("no workload programs generated")
	}
	for _, prog := range progs {
		rep := verify.Verify(prog)
		if err := rep.Err(); err != nil {
			t.Errorf("%v", err)
		}
		for _, f := range rep.Findings {
			if f.Sev == verify.SevWarn {
				t.Errorf("verify %q: unexpected warning: %s", prog.Name, f)
			}
		}
	}
}

func first(p *isa.Program, _ uint64) *isa.Program { return p }

// shippedPrograms regenerates the full shipped-workload set at small
// scale for the verification gates.
func shippedPrograms(t *testing.T) []*isa.Program {
	t.Helper()
	var progs []*isa.Program
	for _, p := range spec.Profiles() {
		prog, err := p.Build(64)
		if err != nil {
			t.Fatalf("spec %s: %v", p.Name, err)
		}
		progs = append(progs, prog)
	}
	g := gap.Uniform(64, 4, 1)
	progs = append(progs,
		first(gap.BFS(g, 0)), first(gap.PageRank(g, 3)), first(gap.SSSP(g, 0)),
		first(gap.CC(g)), first(gap.TC(g)), first(gap.BC(g, 0)))
	for _, k := range parsec.Kernels(0) {
		progs = append(progs, k.Prog)
	}
	progs = append(progs, parsec.BlackscholesThreads(16, 1))
	return progs
}

// TestBlockTablesMatchCFG cross-validates the basic-block translation
// tables (PR 8 block-compiled emulation) against the static verifier's
// CFG for every shipped workload and every decorrelated variant: blocks
// must be single-entry, straight-line, and cut before every CFG edge
// target. This is the structural half of the block-exec equivalence
// guarantee; the differential tests in internal/emu and internal/core
// are the dynamic half.
func TestBlockTablesMatchCFG(t *testing.T) {
	for _, prog := range shippedPrograms(t) {
		if err := verify.CheckBlockTable(prog, prog.Blocks()); err != nil {
			t.Errorf("%v", err)
		}
		v, err := asm.Decorrelate(prog, asm.DecorrelateOptions{})
		if err != nil {
			t.Errorf("decorrelate %q: %v", prog.Name, err)
			continue
		}
		if err := verify.CheckBlockTable(v.Prog, v.Prog.Blocks()); err != nil {
			t.Errorf("variant of %q: %v", prog.Name, err)
		}
	}
}

// TestDecorrelatedVariantsVerifyClean is the divergent-mode half of the
// "Verify workloads" CI gate: every decorrelated variant of every
// shipped workload must itself pass the static verifier with zero
// findings AND prove structurally equivalent to its original. A variant
// that failed either would silently disqualify the workload from
// divergent checking.
func TestDecorrelatedVariantsVerifyClean(t *testing.T) {
	for _, prog := range shippedPrograms(t) {
		v, err := asm.Decorrelate(prog, asm.DecorrelateOptions{})
		if err != nil {
			t.Errorf("decorrelate %q: %v", prog.Name, err)
			continue
		}
		rep := verify.Verify(v.Prog)
		if err := rep.Err(); err != nil {
			t.Errorf("variant of %q: %v", prog.Name, err)
		}
		for _, f := range rep.Findings {
			if f.Sev == verify.SevWarn {
				t.Errorf("variant of %q: unexpected warning: %s", prog.Name, f)
			}
		}
		if err := verify.EquivalentVariant(prog, v.Prog, &v.Map); err != nil {
			t.Errorf("variant of %q fails equivalence: %v", prog.Name, err)
		}
	}
}
