// Abstract domains for the interval analysis (absint.go): AbsVal is the
// reduced product of a signed interval and a known-bits (bit-level
// constant/alignment) fact over one 64-bit integer register; FVal is a
// float64 interval with an explicit may-be-NaN flag. Every transfer
// function mirrors the exact semantics of emu.Hart.StepDecoded: the
// soundness contract, enforced differentially by domain_test.go, is
// that a transfer never excludes a value the emulator can produce.

package verify

import (
	"fmt"
	"math"
	"math/bits"
)

// AbsVal abstracts one 64-bit integer register value as the product of
// a signed interval [Lo, Hi] and a known-bits fact: every bit set in
// KMask is known to equal the corresponding bit of KVal on every
// execution reaching the program point. The concretisation is the
// intersection of the two components. Lo > Hi encodes bottom (no
// value reaches the point).
type AbsVal struct {
	Lo, Hi int64
	KMask  uint64
	KVal   uint64
}

// TopVal is the unconstrained value.
func TopVal() AbsVal { return AbsVal{Lo: math.MinInt64, Hi: math.MaxInt64} }

// BotVal is the empty (unreachable) value.
func BotVal() AbsVal { return AbsVal{Lo: math.MaxInt64, Hi: math.MinInt64} }

// ConstVal abstracts an exactly known value.
func ConstVal(v uint64) AbsVal {
	return AbsVal{Lo: int64(v), Hi: int64(v), KMask: ^uint64(0), KVal: v}
}

// RangeVal abstracts a signed interval with no bit-level knowledge.
func RangeVal(lo, hi int64) AbsVal { return mkVal(lo, hi, 0, 0) }

// IsBot reports whether no value reaches the point.
func (a AbsVal) IsBot() bool { return a.Lo > a.Hi }

// IsTop reports whether nothing is known.
func (a AbsVal) IsTop() bool {
	return a.Lo == math.MinInt64 && a.Hi == math.MaxInt64 && a.KMask == 0
}

// IsConst returns the exact value when the abstraction pins one.
func (a AbsVal) IsConst() (uint64, bool) {
	if a.Lo == a.Hi {
		return uint64(a.Lo), true
	}
	return 0, false
}

// Contains reports whether the concrete value is admitted.
func (a AbsVal) Contains(v uint64) bool {
	return !a.IsBot() && int64(v) >= a.Lo && int64(v) <= a.Hi && v&a.KMask == a.KVal
}

// Align returns the largest power of two dividing every admitted value
// (the provable alignment).
func (a AbsVal) Align() uint64 {
	n := bits.TrailingZeros64(a.KVal | ^a.KMask)
	if n > 63 {
		n = 63
	}
	return uint64(1) << uint(n)
}

func (a AbsVal) String() string {
	switch {
	case a.IsBot():
		return "⊥"
	case a.IsTop():
		return "⊤"
	}
	if v, ok := a.IsConst(); ok {
		return fmt.Sprintf("%#x", v)
	}
	s := fmt.Sprintf("[%d,%d]", a.Lo, a.Hi)
	if al := a.Align(); al > 1 {
		s += fmt.Sprintf("/align%d", al)
	}
	return s
}

// boundsFromBits derives the tightest signed interval consistent with a
// known-bits fact: unknown bits take the extreme settings, with the
// sign bit driving which direction is the minimum.
func boundsFromBits(km, kv uint64) (int64, int64) {
	const sign = uint64(1) << 63
	unk := ^km
	if km&sign != 0 {
		return int64(kv), int64(kv | unk)
	}
	return int64(kv | sign), int64((kv | unk) &^ sign)
}

// mkVal builds a reduced AbsVal: the interval and bit components are
// tightened against each other (bit-derived bounds, sign/width bits
// derived from the interval, low-bit congruence rounding of the
// endpoints) and contradictions collapse to bottom.
func mkVal(lo, hi int64, km, kv uint64) AbsVal {
	kv &= km
	if lo > hi {
		return BotVal()
	}
	if blo, bhi := boundsFromBits(km, kv); true {
		if blo > lo {
			lo = blo
		}
		if bhi < hi {
			hi = bhi
		}
	}
	if lo > hi {
		return BotVal()
	}
	if lo >= 0 {
		zm := ^uint64(0)
		if hi > 0 {
			zm = ^uint64(0) << uint(bits.Len64(uint64(hi)))
		}
		if kv&zm != 0 {
			return BotVal()
		}
		km |= zm
	} else if hi < 0 {
		const sign = uint64(1) << 63
		if km&sign != 0 && kv&sign == 0 {
			return BotVal()
		}
		km |= sign
		kv |= sign
	}
	if k := bits.TrailingZeros64(^km); k > 0 && k < 64 {
		m := uint64(1)<<uint(k) - 1
		want := kv & m
		if d := (want - uint64(lo)) & m; d != 0 {
			if lo > math.MaxInt64-int64(d) {
				return BotVal()
			}
			lo += int64(d)
		}
		if d := (uint64(hi) - want) & m; d != 0 {
			if hi < math.MinInt64+int64(d) {
				return BotVal()
			}
			hi -= int64(d)
		}
		if lo > hi {
			return BotVal()
		}
	}
	if lo == hi {
		v := uint64(lo)
		if v&km != kv {
			return BotVal()
		}
		return AbsVal{Lo: lo, Hi: hi, KMask: ^uint64(0), KVal: v}
	}
	return AbsVal{Lo: lo, Hi: hi, KMask: km, KVal: kv}
}

// Join is the least upper bound: interval hull, bits where both sides
// agree and know.
func (a AbsVal) Join(b AbsVal) AbsVal {
	if a.IsBot() {
		return b
	}
	if b.IsBot() {
		return a
	}
	lo, hi := a.Lo, a.Hi
	if b.Lo < lo {
		lo = b.Lo
	}
	if b.Hi > hi {
		hi = b.Hi
	}
	km := a.KMask & b.KMask &^ (a.KVal ^ b.KVal)
	return mkVal(lo, hi, km, a.KVal&km)
}

// Meet is the greatest lower bound, used by branch refinement:
// interval intersection, bits from either side, contradiction = bottom.
func (a AbsVal) Meet(b AbsVal) AbsVal {
	if a.IsBot() || b.IsBot() {
		return BotVal()
	}
	if a.KMask&b.KMask&(a.KVal^b.KVal) != 0 {
		return BotVal()
	}
	lo, hi := a.Lo, a.Hi
	if b.Lo > lo {
		lo = b.Lo
	}
	if b.Hi < hi {
		hi = b.Hi
	}
	return mkVal(lo, hi, a.KMask|b.KMask, a.KVal|b.KVal)
}

// Widen accelerates convergence at loop heads: an unstable interval
// bound jumps to its extreme. Known bits need no widening — they only
// ever decrease under Join, a finite descent.
func (a AbsVal) Widen(b AbsVal) AbsVal {
	if a.IsBot() {
		return b
	}
	lo, hi := b.Lo, b.Hi
	if lo < a.Lo {
		lo = math.MinInt64
	}
	if hi > a.Hi {
		hi = math.MaxInt64
	}
	return mkVal(lo, hi, b.KMask, b.KVal)
}

// --- integer transfer functions (mirroring emu.Hart.StepDecoded) ---

func trailingKnown(km uint64) int { return bits.TrailingZeros64(^km) }

func lowMask(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(k) - 1
}

func addOv(x, y int64) (int64, bool) {
	s := x + y
	if (y > 0 && s < x) || (y < 0 && s > x) {
		return 0, false
	}
	return s, true
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func avAdd(a, b AbsVal) AbsVal {
	if a.IsBot() || b.IsBot() {
		return BotVal()
	}
	lo, okLo := addOv(a.Lo, b.Lo)
	hi, okHi := addOv(a.Hi, b.Hi)
	if !okLo || !okHi {
		lo, hi = math.MinInt64, math.MaxInt64
	}
	// Carries propagate upward only: the low k bits of the sum depend
	// only on the low k bits of the operands (alignment preservation).
	km := lowMask(minI(trailingKnown(a.KMask), trailingKnown(b.KMask)))
	return mkVal(lo, hi, km, (a.KVal+b.KVal)&km)
}

func avSub(a, b AbsVal) AbsVal {
	if a.IsBot() || b.IsBot() {
		return BotVal()
	}
	lo, okLo := addOv(a.Lo, -b.Hi)
	hi, okHi := addOv(a.Hi, -b.Lo)
	if b.Hi == math.MinInt64 || b.Lo == math.MinInt64 { // -MinInt64 overflows
		okLo, okHi = false, false
	}
	if !okLo || !okHi {
		lo, hi = math.MinInt64, math.MaxInt64
	}
	km := lowMask(minI(trailingKnown(a.KMask), trailingKnown(b.KMask)))
	return mkVal(lo, hi, km, (a.KVal-b.KVal)&km)
}

func avMul(a, b AbsVal) AbsVal {
	if a.IsBot() || b.IsBot() {
		return BotVal()
	}
	// Low k bits of the product depend only on the low k bits of the
	// operands; known trailing zeros additionally sum.
	k := minI(trailingKnown(a.KMask), trailingKnown(b.KMask))
	za := bits.TrailingZeros64(a.KVal | ^a.KMask)
	zb := bits.TrailingZeros64(b.KVal | ^b.KMask)
	kz := za + zb
	if kz > 64 {
		kz = 64
	}
	km := lowMask(k) | lowMask(kz)
	kv := (a.KVal * b.KVal) & lowMask(k)
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	const lim = int64(1) << 31
	if a.Lo >= -lim && a.Hi <= lim && b.Lo >= -lim && b.Hi <= lim {
		c := [4]int64{a.Lo * b.Lo, a.Lo * b.Hi, a.Hi * b.Lo, a.Hi * b.Hi}
		lo, hi = c[0], c[0]
		for _, v := range c[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return mkVal(lo, hi, km, kv)
}

func avAnd(a, b AbsVal) AbsVal {
	if a.IsBot() || b.IsBot() {
		return BotVal()
	}
	kz := (a.KMask &^ a.KVal) | (b.KMask &^ b.KVal)
	ko := (a.KMask & a.KVal) & (b.KMask & b.KVal)
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	if a.Lo >= 0 || b.Lo >= 0 {
		lo = 0
		if a.Lo >= 0 && a.Hi < hi {
			hi = a.Hi
		}
		if b.Lo >= 0 && b.Hi < hi {
			hi = b.Hi
		}
	}
	return mkVal(lo, hi, kz|ko, ko)
}

func avOr(a, b AbsVal) AbsVal {
	if a.IsBot() || b.IsBot() {
		return BotVal()
	}
	kz := (a.KMask &^ a.KVal) & (b.KMask &^ b.KVal)
	ko := (a.KMask & a.KVal) | (b.KMask & b.KVal)
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	if a.Lo >= 0 && b.Lo >= 0 {
		lo = a.Lo
		if b.Lo > lo {
			lo = b.Lo
		}
		// The upper bound tightens through the known-zero high bits in
		// mkVal's reduction.
	}
	return mkVal(lo, hi, kz|ko, ko)
}

func avXor(a, b AbsVal) AbsVal {
	if a.IsBot() || b.IsBot() {
		return BotVal()
	}
	azero, aone := a.KMask&^a.KVal, a.KMask&a.KVal
	bzero, bone := b.KMask&^b.KVal, b.KMask&b.KVal
	ko := (aone & bzero) | (bone & azero)
	kz := (azero & bzero) | (aone & bone)
	return mkVal(math.MinInt64, math.MaxInt64, kz|ko, ko)
}

func avShlConst(a AbsVal, c uint64) AbsVal {
	if a.IsBot() {
		return BotVal()
	}
	c &= 63
	if c == 0 {
		return a
	}
	km := a.KMask<<c | lowMask(int(c))
	kv := a.KVal << c
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	lim := int64(1) << uint(63-c)
	if a.Lo > -lim && a.Hi < lim {
		lo, hi = a.Lo<<c, a.Hi<<c
	}
	return mkVal(lo, hi, km, kv)
}

func avShl(a, sh AbsVal) AbsVal {
	if a.IsBot() || sh.IsBot() {
		return BotVal()
	}
	if c, ok := sh.IsConst(); ok {
		return avShlConst(a, c)
	}
	if v, ok := a.IsConst(); ok && v == 0 {
		return ConstVal(0)
	}
	return TopVal()
}

func avShrConst(a AbsVal, c uint64) AbsVal {
	if a.IsBot() {
		return BotVal()
	}
	c &= 63
	if c == 0 {
		return a
	}
	km := a.KMask>>c | ^(^uint64(0) >> c)
	kv := a.KVal >> c
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	if a.Lo >= 0 {
		lo, hi = a.Lo>>c, a.Hi>>c
	}
	return mkVal(lo, hi, km, kv)
}

func avShr(a, sh AbsVal) AbsVal {
	if a.IsBot() || sh.IsBot() {
		return BotVal()
	}
	if c, ok := sh.IsConst(); ok {
		return avShrConst(a, c)
	}
	if a.Lo >= 0 {
		return RangeVal(0, a.Hi) // any right shift of a non-negative shrinks it
	}
	return TopVal()
}

func avSarConst(a AbsVal, c uint64) AbsVal {
	if a.IsBot() {
		return BotVal()
	}
	c &= 63
	if c == 0 {
		return a
	}
	const sign = uint64(1) << 63
	km := a.KMask >> c
	kv := a.KVal >> c
	if a.KMask&sign != 0 {
		high := ^(^uint64(0) >> c)
		km |= high
		if a.KVal&sign != 0 {
			kv |= high
		}
	}
	return mkVal(a.Lo>>c, a.Hi>>c, km, kv)
}

func avSar(a, sh AbsVal) AbsVal {
	if a.IsBot() || sh.IsBot() {
		return BotVal()
	}
	if c, ok := sh.IsConst(); ok {
		return avSarConst(a, c)
	}
	lo, hi := a.Lo, a.Hi
	if lo > 0 {
		lo = 0 // large shifts take positives to 0
	}
	if hi < -1 {
		hi = -1 // ... and negatives to -1
	}
	return RangeVal(lo, hi)
}

// uRange gives the unsigned range of an AbsVal when it is contiguous in
// the unsigned order (entirely non-negative or entirely negative as a
// signed value); mixed-sign intervals span the whole unsigned space.
func uRange(a AbsVal) (uint64, uint64) {
	if a.Lo >= 0 || a.Hi < 0 {
		return uint64(a.Lo), uint64(a.Hi)
	}
	return 0, ^uint64(0)
}

func avBool() AbsVal { return mkVal(0, 1, ^uint64(1), 0) }

func avSltSigned(a, b AbsVal) AbsVal {
	if a.IsBot() || b.IsBot() {
		return BotVal()
	}
	if a.Hi < b.Lo {
		return ConstVal(1)
	}
	if a.Lo >= b.Hi {
		return ConstVal(0)
	}
	return avBool()
}

func avSltU(a, b AbsVal) AbsVal {
	if a.IsBot() || b.IsBot() {
		return BotVal()
	}
	alo, ahi := uRange(a)
	blo, bhi := uRange(b)
	if ahi < blo {
		return ConstVal(1)
	}
	if alo >= bhi {
		return ConstVal(0)
	}
	return avBool()
}

// qdiv is corner division with the MinInt64/-1 overflow saturated to
// MaxInt64: the true quotient 2^63 exceeds the domain, and quotients at
// nearby divisors (e.g. MinInt64/-2) climb toward it monotonically, so
// the corner must not report the wrapped runtime value. The wrap itself
// is joined in separately by avDiv.
func qdiv(x, y int64) int64 {
	if x == math.MinInt64 && y == -1 {
		return math.MaxInt64
	}
	return x / y
}

func divCorners(a AbsVal, c, d int64) AbsVal {
	q := [4]int64{qdiv(a.Lo, c), qdiv(a.Lo, d), qdiv(a.Hi, c), qdiv(a.Hi, d)}
	lo, hi := q[0], q[0]
	for _, v := range q[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return RangeVal(lo, hi)
}

func avDiv(a, b AbsVal) AbsVal {
	if a.IsBot() || b.IsBot() {
		return BotVal()
	}
	res := BotVal()
	if b.Contains(0) {
		res = res.Join(ConstVal(^uint64(0))) // divide by zero: all-ones, no trap
	}
	if b.Hi >= 1 {
		c := b.Lo
		if c < 1 {
			c = 1
		}
		res = res.Join(divCorners(a, c, b.Hi))
	}
	if b.Lo <= -1 {
		d := b.Hi
		if d > -1 {
			d = -1
		}
		res = res.Join(divCorners(a, b.Lo, d))
	}
	// MinInt64 / -1 wraps back to MinInt64 at runtime.
	if a.Contains(1<<63) && b.Contains(^uint64(0)) {
		res = res.Join(ConstVal(1 << 63))
	}
	return res
}

func avRem(a, b AbsVal) AbsVal {
	if a.IsBot() || b.IsBot() {
		return BotVal()
	}
	res := BotVal()
	if b.Contains(0) {
		res = a // modulo zero passes the dividend through
	}
	if b.Hi >= 1 || b.Lo <= -1 {
		// |rem| < |b|; when b can be MinInt64, |b|-1 is exactly MaxInt64.
		loCap, hiCap := int64(math.MinInt64)+1, int64(math.MaxInt64)
		if b.Lo != math.MinInt64 {
			mb := b.Hi
			if -b.Lo > mb {
				mb = -b.Lo
			}
			loCap, hiCap = -(mb - 1), mb-1
		}
		lo, hi := int64(0), int64(0)
		if a.Lo < 0 {
			lo = a.Lo
			if loCap > lo {
				lo = loCap
			}
		}
		if a.Hi > 0 {
			hi = a.Hi
			if hiCap < hi {
				hi = hiCap
			}
		}
		res = res.Join(RangeVal(lo, hi))
	}
	return res
}

// avLoad abstracts a zero-extended load of the given size.
func avLoad(size uint8) AbsVal {
	if size >= 8 {
		return TopVal()
	}
	return RangeVal(0, int64(uint64(1)<<(8*uint(size))-1))
}

// --- float64 interval domain ---

// FVal abstracts one floating-point register as a closed float64
// interval plus a may-be-NaN flag. Lo > Hi with NaN set means
// "NaN only"; Lo > Hi with NaN clear is bottom.
type FVal struct {
	Lo, Hi float64
	NaN    bool
}

// TopF is the unconstrained float.
func TopF() FVal { return FVal{Lo: math.Inf(-1), Hi: math.Inf(1), NaN: true} }

// BotF is the empty float.
func BotF() FVal { return FVal{Lo: math.Inf(1), Hi: math.Inf(-1)} }

func nanOnly() FVal { return FVal{Lo: math.Inf(1), Hi: math.Inf(-1), NaN: true} }

// ConstF abstracts an exactly known float.
func ConstF(v float64) FVal {
	if math.IsNaN(v) {
		return nanOnly()
	}
	return FVal{Lo: v, Hi: v}
}

// IsBot reports whether no value (not even NaN) reaches the point.
func (a FVal) IsBot() bool { return !a.hasRange() && !a.NaN }

func (a FVal) hasRange() bool { return a.Lo <= a.Hi }

func (a FVal) finite() bool {
	return a.hasRange() && !math.IsInf(a.Lo, 0) && !math.IsInf(a.Hi, 0)
}

// ContainsF reports whether the concrete value is admitted.
func (a FVal) ContainsF(v float64) bool {
	if math.IsNaN(v) {
		return a.NaN
	}
	return a.hasRange() && v >= a.Lo && v <= a.Hi
}

func (a FVal) String() string {
	switch {
	case a.IsBot():
		return "⊥"
	case !a.hasRange():
		return "NaN"
	}
	s := fmt.Sprintf("[%g,%g]", a.Lo, a.Hi)
	if a.NaN {
		s += "|NaN"
	}
	return s
}

// JoinF is the least upper bound.
func (a FVal) JoinF(b FVal) FVal {
	out := FVal{NaN: a.NaN || b.NaN}
	switch {
	case !a.hasRange():
		out.Lo, out.Hi = b.Lo, b.Hi
	case !b.hasRange():
		out.Lo, out.Hi = a.Lo, a.Hi
	default:
		out.Lo, out.Hi = math.Min(a.Lo, b.Lo), math.Max(a.Hi, b.Hi)
	}
	return out
}

// WidenF jumps unstable bounds to infinity.
func (a FVal) WidenF(b FVal) FVal {
	if a.IsBot() {
		return b
	}
	out := b
	if b.hasRange() && a.hasRange() {
		if b.Lo < a.Lo {
			out.Lo = math.Inf(-1)
		}
		if b.Hi > a.Hi {
			out.Hi = math.Inf(1)
		}
	}
	return out
}

// fBinPre handles the degenerate operand cases common to all binary FP
// transfers; ok=false means the result is already decided.
func fBinPre(a, b FVal) (FVal, bool) {
	if a.IsBot() || b.IsBot() {
		return BotF(), false
	}
	if !a.hasRange() || !b.hasRange() {
		return nanOnly(), false // a NaN operand forces a NaN result
	}
	if !a.finite() || !b.finite() || a.NaN || b.NaN {
		return TopF(), false
	}
	return FVal{}, true
}

func fAdd(a, b FVal) FVal {
	if r, ok := fBinPre(a, b); !ok {
		return r
	}
	return FVal{Lo: a.Lo + b.Lo, Hi: a.Hi + b.Hi}
}

func fSub(a, b FVal) FVal {
	if r, ok := fBinPre(a, b); !ok {
		return r
	}
	return FVal{Lo: a.Lo - b.Hi, Hi: a.Hi - b.Lo}
}

func fMul(a, b FVal) FVal {
	if r, ok := fBinPre(a, b); !ok {
		return r
	}
	c := [4]float64{a.Lo * b.Lo, a.Lo * b.Hi, a.Hi * b.Lo, a.Hi * b.Hi}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return FVal{Lo: lo, Hi: hi}
}

func fDiv(a, b FVal) FVal {
	if r, ok := fBinPre(a, b); !ok {
		return r
	}
	if b.Lo <= 0 && b.Hi >= 0 {
		return TopF() // divisor may be zero: ±Inf and NaN possible
	}
	c := [4]float64{a.Lo / b.Lo, a.Lo / b.Hi, a.Hi / b.Lo, a.Hi / b.Hi}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return FVal{Lo: lo, Hi: hi}
}

func fSqrt(a FVal) FVal {
	if a.IsBot() {
		return BotF()
	}
	nan := a.NaN || (a.hasRange() && a.Lo < 0)
	if !a.hasRange() || a.Hi < 0 {
		return nanOnly()
	}
	lo := a.Lo
	if lo < 0 {
		lo = 0
	}
	return FVal{Lo: math.Sqrt(lo), Hi: math.Sqrt(a.Hi), NaN: nan}
}

func fNeg(a FVal) FVal {
	if !a.hasRange() {
		return a
	}
	return FVal{Lo: -a.Hi, Hi: -a.Lo, NaN: a.NaN}
}

func fAbs(a FVal) FVal {
	if !a.hasRange() {
		return a
	}
	out := FVal{NaN: a.NaN}
	switch {
	case a.Lo >= 0:
		out.Lo, out.Hi = a.Lo, a.Hi
	case a.Hi <= 0:
		out.Lo, out.Hi = -a.Hi, -a.Lo
	default:
		out.Lo, out.Hi = 0, math.Max(-a.Lo, a.Hi)
	}
	return out
}

func fMin(a, b FVal) FVal {
	if a.IsBot() || b.IsBot() {
		return BotF()
	}
	if !a.hasRange() || !b.hasRange() {
		return nanOnly() // math.Min propagates NaN
	}
	return FVal{Lo: math.Min(a.Lo, b.Lo), Hi: math.Min(a.Hi, b.Hi), NaN: a.NaN || b.NaN}
}

func fMax(a, b FVal) FVal {
	if a.IsBot() || b.IsBot() {
		return BotF()
	}
	if !a.hasRange() || !b.hasRange() {
		return nanOnly()
	}
	return FVal{Lo: math.Max(a.Lo, b.Lo), Hi: math.Max(a.Hi, b.Hi), NaN: a.NaN || b.NaN}
}

// fCvtIF abstracts Fd = float64(int64(Xs1)): monotone, never NaN.
func fCvtIF(a AbsVal) FVal {
	if a.IsBot() {
		return BotF()
	}
	return FVal{Lo: float64(a.Lo), Hi: float64(a.Hi)}
}

// fCvtFI abstracts Xd = uint64(int64(Fs1)): truncation toward zero is
// monotone, but out-of-range and NaN conversions are implementation-
// defined, so anything outside a safe band degrades to top.
func fCvtFI(f FVal) AbsVal {
	if f.IsBot() {
		return BotVal()
	}
	const safe = float64(1 << 62)
	if f.NaN || !f.hasRange() || f.Lo < -safe || f.Hi > safe {
		return TopVal()
	}
	return RangeVal(int64(f.Lo), int64(f.Hi))
}

// fMvIF abstracts Fd = frombits(Xs1); only an exact bit pattern keeps
// any precision.
func fMvIF(a AbsVal) FVal {
	if a.IsBot() {
		return BotF()
	}
	if v, ok := a.IsConst(); ok {
		return ConstF(math.Float64frombits(v))
	}
	return TopF()
}

// fMvFI abstracts Xd = bits(Fs1). A zero-valued interval admits both
// +0 and -0, whose bit patterns differ, so only nonzero exact values
// transfer.
func fMvFI(f FVal) AbsVal {
	if f.IsBot() {
		return BotVal()
	}
	if !f.NaN && f.hasRange() && f.Lo == f.Hi && f.Lo != 0 {
		return ConstVal(math.Float64bits(f.Lo))
	}
	return TopVal()
}

// fEq abstracts Xd = (Fs1 == Fs2); NaN compares false.
func fEq(a, b FVal) AbsVal {
	if a.IsBot() || b.IsBot() {
		return BotVal()
	}
	if a.hasRange() && b.hasRange() {
		if a.Hi < b.Lo || b.Hi < a.Lo {
			if !a.NaN && !b.NaN {
				return ConstVal(0)
			}
			return ConstVal(0) // disjoint ranges or NaN: both compare unequal
		}
		if !a.NaN && !b.NaN && a.Lo == a.Hi && b.Lo == b.Hi && a.Lo == b.Lo {
			return ConstVal(1)
		}
	} else if !a.NaN && !b.NaN {
		return BotVal()
	} else {
		return ConstVal(0) // a NaN operand: == is always false
	}
	return avBool()
}

// fLt abstracts Xd = (Fs1 < Fs2); NaN compares false.
func fLt(a, b FVal) AbsVal {
	if a.IsBot() || b.IsBot() {
		return BotVal()
	}
	if !a.hasRange() || !b.hasRange() {
		if !a.NaN && !b.NaN {
			return BotVal()
		}
		return ConstVal(0)
	}
	if !a.NaN && !b.NaN && a.Hi < b.Lo {
		return ConstVal(1)
	}
	if a.Lo >= b.Hi {
		return ConstVal(0) // holds for the numeric cases; NaN is false anyway
	}
	return avBool()
}
