// Termination-bound analysis: upgrades "has a path to HALT"
// reachability into "provably halts within N instructions". The live
// CFG is condensed into strongly connected components; an SCC is
// bounded when an induction argument limits how often it can cycle —
// a register whose every definition inside the region is an
// `ADDI r, r, c` with a consistent sign, against the interval the
// abstract interpretation proved for it at those definitions. SCCs
// that resist the argument carry a SevWarn (or SevInfo when the exit
// condition is data-dependent, e.g. a spin loop on a loaded flag).

package verify

import (
	"math"
	"sort"

	"paraverser/internal/isa"
)

// boundCap saturates termination bounds; anything at or above it is
// reported as unbounded-but-finite rather than risking overflow.
const boundCap = int64(1) << 62

func satAdd(a, b int64) int64 {
	if a >= boundCap || b >= boundCap || a > boundCap-b {
		return boundCap
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a >= boundCap || b >= boundCap || a > boundCap/b {
		return boundCap
	}
	return a * b
}

// sccs computes strongly connected components (Tarjan, iterative) over
// the live nodes of the CFG, honouring edge feasibility. Components
// come out in reverse topological order.
func sccs(n int, succs [][]int, live func(int) bool, edgeLive [][]bool) [][]int {
	const unvisited = -1
	index := make([]int, n)
	lowlink := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter int
		stack   []int
		comps   [][]int
	)
	type frame struct{ pc, next int }
	var call []frame
	for root := 0; root < n; root++ {
		if !live(root) || index[root] != unvisited {
			continue
		}
		call = append(call[:0], frame{pc: root})
		index[root], lowlink[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			advanced := false
			for f.next < len(succs[f.pc]) {
				ei := f.next
				s := succs[f.pc][ei]
				f.next++
				if !live(s) || !edgeLive[f.pc][ei] {
					continue
				}
				if index[s] == unvisited {
					index[s], lowlink[s] = counter, counter
					counter++
					stack = append(stack, s)
					onStack[s] = true
					call = append(call, frame{pc: s})
					advanced = true
					break
				}
				if onStack[s] && index[s] < lowlink[f.pc] {
					lowlink[f.pc] = index[s]
				}
			}
			if advanced {
				continue
			}
			pc := f.pc
			call = call[:len(call)-1]
			if len(call) > 0 {
				if q := call[len(call)-1].pc; lowlink[pc] < lowlink[q] {
					lowlink[q] = lowlink[pc]
				}
			}
			if lowlink[pc] == index[pc] {
				var comp []int
				for {
					v := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[v] = false
					comp = append(comp, v)
					if v == pc {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// regionInfo captures one cyclic region under analysis: a node set
// plus the feasible internal edges.
type regionInfo struct {
	nodes []int
	in    map[int]bool
}

// checkTermination runs the induction-bound analysis over the absint
// result and fills Report.MaxInsts. One finding is emitted per
// unbounded SCC that has an exit (no-exit SCCs are already RuleHalt
// errors): SevInfo when the exit condition is data-dependent, SevWarn
// otherwise.
func checkTermination(p *isa.Program, res *absResult, r *Report) {
	n := len(p.Insts)
	live := func(pc int) bool { return res.in[pc].live }
	comps := sccs(n, res.succs, live, res.edgeLive)

	total := int64(0)
	allBounded := true
	for _, comp := range comps {
		inComp := make(map[int]bool, len(comp))
		for _, pc := range comp {
			inComp[pc] = true
		}
		cyclic := len(comp) > 1
		if !cyclic { // a single node is a cycle only when it self-loops
			pc := comp[0]
			for ei, s := range res.succs[pc] {
				if s == pc && res.edgeLive[pc][ei] {
					cyclic = true
				}
			}
		}
		if !cyclic {
			total = satAdd(total, 1)
			continue
		}
		region := &regionInfo{nodes: comp, in: inComp}
		if b, ok := boundRegion(p, res, region, 0); ok {
			total = satAdd(total, b)
			continue
		}
		allBounded = false
		hasExit, tainted := classifyExits(p, res, region)
		if !hasExit {
			continue // RuleHalt already reports the unconditional loop
		}
		first := comp[0]
		for _, pc := range comp {
			if pc < first {
				first = pc
			}
		}
		if tainted {
			r.addf(SevInfo, RuleTermination, first,
				"loop of %d instruction(s) at pc %d exits on a data-dependent condition — termination not statically bounded",
				len(comp), first)
		} else {
			r.addf(SevWarn, RuleTermination, first,
				"loop of %d instruction(s) at pc %d has no provable iteration bound",
				len(comp), first)
		}
	}
	if allBounded && total < boundCap {
		r.MaxInsts = total
	}
}

// maxDepth caps the recursive remainder decomposition of boundRegion.
const maxDepth = 6

// boundRegion proves an execution bound for one cyclic region. The
// induction argument: pick a register r whose every definition inside
// the region is `ADDI r, r, c` with all c the same sign. Each visit to
// a definition moves r monotonically through the interval the fixpoint
// proved at that point, so the definitions execute at most
// width/min|c| + 1 times. Removing the definition nodes cuts every
// cycle through them; the remaining sub-regions are bounded
// recursively, and the region bound is (defExecs+1) passes over the
// remainder plus the definition visits themselves.
func boundRegion(p *isa.Program, res *absResult, reg *regionInfo, depth int) (int64, bool) {
	if depth > maxDepth {
		return 0, false
	}
	// A call inside the region clobbers every register on return, which
	// breaks any induction argument through it.
	for _, pc := range reg.nodes {
		in := p.Insts[pc]
		if in.Op == isa.OpJAL && in.Rd != isa.Zero && reg.in[pc+1] {
			return 0, false
		}
	}
	// Candidate induction registers: defined in the region only by
	// self-ADDIs of consistent sign.
	type cand struct {
		defs []int
		step int64 // minimum |c|
		neg  bool
	}
	cands := map[isa.Reg]*cand{}
	disqualified := map[isa.Reg]bool{}
	for _, pc := range reg.nodes {
		in := p.Insts[pc]
		_, defs := usesDefs(in)
		for xr := isa.Reg(1); xr < isa.NumIntRegs; xr++ {
			if defs&xbit(xr) == 0 {
				continue
			}
			if in.Op == isa.OpADDI && in.Rd == xr && in.Rs1 == xr && in.Imm != 0 {
				c := cands[xr]
				if c == nil {
					c = &cand{step: math.MaxInt64}
					cands[xr] = c
				}
				c.defs = append(c.defs, pc)
				abs, neg := in.Imm, false
				if abs < 0 {
					abs, neg = -abs, true
				}
				if len(c.defs) == 1 {
					c.neg = neg
				} else if c.neg != neg {
					disqualified[xr] = true
				}
				if abs < c.step {
					c.step = abs
				}
			} else {
				disqualified[xr] = true
			}
		}
	}
	// Candidates are tried in register order: min-over-candidates is
	// order-insensitive in value, but a sorted walk keeps the analysis
	// provably deterministic (and paralint-clean) for free.
	regs := make([]isa.Reg, 0, len(cands))
	for xr := range cands {
		regs = append(regs, xr)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	best := int64(-1)
	for _, xr := range regs {
		c := cands[xr]
		if disqualified[xr] || c.step <= 0 || c.step >= 1<<24 {
			continue
		}
		// Join the proved interval for xr at every definition site.
		iv := BotVal()
		for _, pc := range c.defs {
			iv = iv.Join(res.in[pc].getX(xr))
		}
		if iv.IsBot() || iv.Lo <= -(int64(1)<<61) || iv.Hi >= int64(1)<<61 {
			continue // wide enough that wrapping could defeat monotonicity
		}
		width := iv.Hi - iv.Lo
		defExecs := satAdd(width/c.step, 2)
		// Remove the definition nodes and bound what remains.
		rest, ok := subRegions(p, res, reg, c.defs)
		if !ok {
			continue
		}
		inner := int64(0)
		for _, sub := range rest {
			b, ok := boundRegion(p, res, sub, depth+1)
			if !ok {
				inner = -1
				break
			}
			inner = satAdd(inner, b)
		}
		if inner < 0 {
			continue
		}
		// Straight-line remainder nodes between cycles count once per pass.
		straight := int64(len(reg.nodes) - len(c.defs))
		for _, sub := range rest {
			straight -= int64(len(sub.nodes))
		}
		perPass := satAdd(inner, straight)
		bound := satAdd(satMul(satAdd(defExecs, 1), perPass), defExecs)
		if best < 0 || bound < best {
			best = bound
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// subRegions removes the cut nodes from a region and returns the
// remaining cyclic sub-regions (SCCs of the remainder graph).
func subRegions(p *isa.Program, res *absResult, reg *regionInfo, cut []int) ([]*regionInfo, bool) {
	removed := make(map[int]bool, len(cut))
	for _, pc := range cut {
		removed[pc] = true
	}
	live := func(pc int) bool {
		return res.in[pc].live && reg.in[pc] && !removed[pc]
	}
	comps := sccs(len(p.Insts), res.succs, live, res.edgeLive)
	var out []*regionInfo
	for _, comp := range comps {
		cyclic := len(comp) > 1
		if !cyclic {
			pc := comp[0]
			for ei, s := range res.succs[pc] {
				if s == pc && res.edgeLive[pc][ei] {
					cyclic = true
				}
			}
		}
		if !cyclic {
			continue
		}
		in := make(map[int]bool, len(comp))
		for _, pc := range comp {
			in[pc] = true
		}
		out = append(out, &regionInfo{nodes: comp, in: in})
	}
	return out, true
}

// classifyExits reports whether a region has any feasible edge leaving
// it, and whether any branch inside it reads a data-tainted register —
// one whose value (transitively) came from memory, RAND, CYCLE or the
// FP file. A tainted branch means the region's iteration count depends
// on runtime data (a spin-wait, a lock acquire, a convergence test),
// which no static bound can capture — SevInfo. A region with only
// untainted branches that still resists the induction argument is
// suspicious — SevWarn.
func classifyExits(p *isa.Program, res *absResult, reg *regionInfo) (hasExit, tainted bool) {
	// Fixpoint of a taint regset over the region's instructions.
	taint := make(map[int]regset, len(reg.nodes))
	for {
		changed := false
		for _, pc := range reg.nodes {
			in := p.Insts[pc]
			uses, defs := usesDefs(in)
			var tin regset
			for _, q := range reg.nodes {
				for ei, s := range res.succs[q] {
					if s == pc && res.edgeLive[q][ei] {
						tin |= taint[q]
					}
				}
			}
			tout := tin
			sourced := false
			switch in.Op {
			case isa.OpLD, isa.OpFLD, isa.OpGLD, isa.OpSWP, isa.OpRAND, isa.OpCYCLE:
				sourced = true
			case isa.OpFCVTFI, isa.OpFMVFI, isa.OpFEQ, isa.OpFLT:
				sourced = true // the FP file is data in this classification
			case isa.OpJAL:
				if in.Rd != isa.Zero && reg.in[pc+1] {
					tout |= allRegs // a returning call taints everything
				}
			}
			if sourced || uses&tin != 0 {
				tout |= defs
			}
			if tout != taint[pc] {
				taint[pc] = tout
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, pc := range reg.nodes {
		in := p.Insts[pc]
		for ei, s := range res.succs[pc] {
			if res.edgeLive[pc][ei] && !reg.in[s] {
				hasExit = true
			}
		}
		if len(res.succs[pc]) == 0 { // terminator inside the region
			hasExit = true
		}
		if isa.ClassOf(in.Op) == isa.ClassBranch {
			uses, _ := usesDefs(in)
			var tin regset
			for _, q := range reg.nodes {
				for ei, s := range res.succs[q] {
					if s == pc && res.edgeLive[q][ei] {
						tin |= taint[q]
					}
				}
			}
			if uses&tin != 0 {
				tainted = true
			}
		}
	}
	return hasExit, tainted
}
