package verify

import (
	"math"
	"testing"

	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// splitmix64 is the test's deterministic value source.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// interestingU64 biases samples toward boundary values where interval
// and bit arithmetic break.
func interestingU64(r *splitmix64) uint64 {
	switch r.next() % 8 {
	case 0:
		return r.next() % 256
	case 1:
		return -(r.next() % 256)
	case 2:
		return uint64(math.MaxInt64) - r.next()%4
	case 3:
		return uint64(math.MaxInt64) + 1 + r.next()%4 // around MinInt64
	case 4:
		return 1 << (r.next() % 64)
	case 5:
		return (1 << (r.next() % 64)) - 1
	default:
		return r.next()
	}
}

// absValContaining builds a random abstract value guaranteed to admit v.
func absValContaining(r *splitmix64, v uint64) AbsVal {
	switch r.next() % 4 {
	case 0:
		return ConstVal(v)
	case 1:
		return TopVal()
	case 2:
		lo, hi := int64(v), int64(v)
		d1, d2 := int64(r.next()%1024), int64(r.next()%1024)
		if lo > math.MinInt64+d1 {
			lo -= d1
		}
		if hi < math.MaxInt64-d2 {
			hi += d2
		}
		return RangeVal(lo, hi)
	default:
		km := r.next() & r.next() // sparse known mask
		lo, hi := int64(v), int64(v)
		d := int64(r.next() % (1 << 20))
		if lo > math.MinInt64+d {
			lo -= d
		}
		if hi < math.MaxInt64-d {
			hi += d
		}
		a := mkVal(lo, hi, km, v&km)
		if !a.Contains(v) {
			t := mkVal(int64(v), int64(v), km, v&km)
			if t.Contains(v) {
				return t
			}
			return ConstVal(v)
		}
		return a
	}
}

// fValContaining builds a random float abstraction guaranteed to admit f.
func fValContaining(r *splitmix64, f float64) FVal {
	if math.IsNaN(f) {
		return TopF()
	}
	switch r.next() % 3 {
	case 0:
		return ConstF(f)
	case 1:
		return TopF()
	default:
		d := float64(r.next()%1000) / 3
		return FVal{Lo: f - d, Hi: f + d, NaN: r.next()%2 == 0}
	}
}

func interestingF64(r *splitmix64) float64 {
	switch r.next() % 8 {
	case 0:
		return 0
	case 1:
		return math.Inf(1)
	case 2:
		return math.NaN()
	case 3:
		return -float64(r.next() % 1000)
	case 4:
		return float64(r.next()%1000) / 7
	case 5:
		return math.Float64frombits(r.next()) // arbitrary bit pattern
	default:
		return float64(int64(r.next() % (1 << 40)))
	}
}

// TestDomainLatticeLaws samples concrete values and checks the
// membership contracts of Join (upper bound), Meet (lower bound w.r.t.
// intersection), Widen (covers the join) and mkVal (reduction never
// drops members).
func TestDomainLatticeLaws(t *testing.T) {
	r := splitmix64(1)
	for i := 0; i < 20000; i++ {
		v := interestingU64(&r)
		a := absValContaining(&r, v)
		w := interestingU64(&r)
		b := absValContaining(&r, w)

		j := a.Join(b)
		if !j.Contains(v) || !j.Contains(w) {
			t.Fatalf("join not an upper bound: %s ⊔ %s = %s drops %#x or %#x", a, b, j, v, w)
		}
		if wd := a.Widen(j); !wd.Contains(v) || !wd.Contains(w) {
			t.Fatalf("widen below join: widen(%s, %s) = %s drops a member", a, j, wd)
		}
		if a.Contains(w) && b.Contains(w) {
			if m := a.Meet(b); !m.Contains(w) {
				t.Fatalf("meet drops common member: %s ⊓ %s = %s drops %#x", a, b, m, w)
			}
		}
		// Reduction: rebuilding from the components keeps membership.
		if red := mkVal(a.Lo, a.Hi, a.KMask, a.KVal); !red.Contains(v) {
			t.Fatalf("mkVal reduction drops member: %s -> %s drops %#x", a, red, v)
		}
	}
}

// TestWidenStabilises checks the widening chain terminates: along any
// sequence w' = Widen(w, Join(w, x)) the number of strict changes is
// small and bounded (each interval end can only escape to ±inf once,
// and known bits only ever disappear — at most 64 of them).
func TestWidenStabilises(t *testing.T) {
	r := splitmix64(7)
	for i := 0; i < 100; i++ {
		cur := absValContaining(&r, interestingU64(&r))
		changes := 0
		for step := 0; step < 500; step++ {
			next := cur.Widen(cur.Join(absValContaining(&r, interestingU64(&r))))
			if next != cur {
				changes++
				cur = next
			}
		}
		if changes > 140 {
			t.Fatalf("widening chain changed %d times (want ≤140), ended at %s", changes, cur)
		}
	}
}

// stepOne executes one instruction on a fresh hart with the given
// register file and returns the resulting state.
func stepOne(t *testing.T, in isa.Inst, x [32]uint64, f [32]float64) (*emu.Hart, error) {
	t.Helper()
	prog := &isa.Program{
		Name:    "one",
		Insts:   []isa.Inst{in, {Op: isa.OpHALT}},
		Entries: []uint64{0},
	}
	h := emu.NewHart(0, 0)
	h.State.X = x
	h.State.X[isa.Zero] = 0
	h.State.F = f
	env := emu.NewMainEnv(emu.NewMemory(), 1)
	var eff emu.Effect
	return h, h.Step(prog, env, nil, &eff)
}

// aluOps lists the integer transfer functions under differential test.
var aluOps = []isa.Op{
	isa.OpADD, isa.OpSUB, isa.OpMUL, isa.OpDIV, isa.OpREM,
	isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSLL, isa.OpSRL, isa.OpSRA,
	isa.OpSLT, isa.OpSLTU,
	isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI,
	isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpSLTI, isa.OpLUI,
}

// TestALUTransfersSoundVsEmu is the core soundness contract: for
// sampled concrete operands inside sampled abstract operands, the
// abstract transfer must admit the value the emulator actually
// computes. A transfer that excludes a producible value would let the
// verifier "prove" false facts about real executions.
func TestALUTransfersSoundVsEmu(t *testing.T) {
	r := splitmix64(42)
	const rd, rs1, rs2 = isa.Reg(10), isa.Reg(11), isa.Reg(12)
	for i := 0; i < 30000; i++ {
		op := aluOps[r.next()%uint64(len(aluOps))]
		v1, v2 := interestingU64(&r), interestingU64(&r)
		imm := int64(interestingU64(&r))
		if r.next()%2 == 0 {
			imm = int64(r.next()%128) - 64
		}
		in := isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm}

		var x [32]uint64
		x[rs1], x[rs2] = v1, v2
		h, err := stepOne(t, in, x, [32]float64{})
		if err != nil {
			t.Fatalf("%s: emu error: %v", in, err)
		}
		concrete := h.State.X[rd]

		var st absState
		st.live = true
		for reg := 1; reg < 32; reg++ {
			st.x[reg] = TopVal()
		}
		a1 := absValContaining(&r, v1)
		a2 := absValContaining(&r, v2)
		st.x[rs1], st.x[rs2] = a1, a2
		absTransfer(in, 0, &st)
		if got := st.getX(rd); !got.Contains(concrete) {
			t.Fatalf("%s: transfer unsound: operands %s (has %#x), %s (has %#x) -> %s excludes emu result %#x",
				in, a1, v1, a2, v2, got, concrete)
		}
	}
}

// fpOps lists the FP transfer functions under differential test.
var fpOps = []isa.Op{
	isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFDIV, isa.OpFSQRT,
	isa.OpFMIN, isa.OpFMAX, isa.OpFNEG, isa.OpFABS,
	isa.OpFCVTIF, isa.OpFCVTFI, isa.OpFMVIF, isa.OpFMVFI,
	isa.OpFEQ, isa.OpFLT,
}

// TestFPTransfersSoundVsEmu is the FP half of the soundness contract.
func TestFPTransfersSoundVsEmu(t *testing.T) {
	r := splitmix64(1234)
	const rd, rs1, rs2 = isa.Reg(10), isa.Reg(11), isa.Reg(12)
	for i := 0; i < 30000; i++ {
		op := fpOps[r.next()%uint64(len(fpOps))]
		in := isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}
		f1, f2 := interestingF64(&r), interestingF64(&r)
		v1 := interestingU64(&r)

		var x [32]uint64
		var f [32]float64
		x[rs1] = v1
		f[rs1], f[rs2] = f1, f2
		h, err := stepOne(t, in, x, f)
		if err != nil {
			t.Fatalf("%s: emu error: %v", in, err)
		}

		var st absState
		st.live = true
		for reg := 1; reg < 32; reg++ {
			st.x[reg] = TopVal()
		}
		for reg := 0; reg < 32; reg++ {
			st.f[reg] = TopF()
		}
		a1 := absValContaining(&r, v1)
		g1 := fValContaining(&r, f1)
		g2 := fValContaining(&r, f2)
		st.x[rs1] = a1
		st.f[rs1], st.f[rs2] = g1, g2
		absTransfer(in, 0, &st)

		switch op {
		case isa.OpFCVTFI, isa.OpFMVFI, isa.OpFEQ, isa.OpFLT:
			if got := st.getX(rd); !got.Contains(h.State.X[rd]) {
				t.Fatalf("%s: transfer unsound: f-operands %s (has %g), %s (has %g) -> %s excludes emu result %#x",
					in, g1, f1, g2, f2, got, h.State.X[rd])
			}
		default:
			concrete := h.State.F[rd]
			if got := st.f[rd]; !got.ContainsF(concrete) {
				t.Fatalf("%s: transfer unsound: x=%s (has %#x) f-operands %s (has %g), %s (has %g) -> %s excludes emu result %g",
					in, a1, v1, g1, f1, g2, f2, got, concrete)
			}
		}
	}
}

// TestBranchRefinementSoundVsEmu checks the per-edge refinement: when
// the emulator takes (or falls through) a branch with concrete
// operands, refining the abstract operands along that same edge must
// keep admitting them, and must never prune the taken edge.
func TestBranchRefinementSoundVsEmu(t *testing.T) {
	r := splitmix64(99)
	branchOps := []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU}
	const rs1, rs2 = isa.Reg(11), isa.Reg(12)
	for i := 0; i < 30000; i++ {
		op := branchOps[r.next()%uint64(len(branchOps))]
		v1, v2 := interestingU64(&r), interestingU64(&r)
		if r.next()%4 == 0 {
			v2 = v1 // equality edges matter
		}
		in := isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: 1}

		var x [32]uint64
		x[rs1], x[rs2] = v1, v2
		if _, err := stepOne(t, in, x, [32]float64{}); err != nil {
			t.Fatalf("%s: emu error: %v", in, err)
		}
		taken := concreteBranch(op, v1, v2)

		var st absState
		st.live = true
		for reg := 1; reg < 32; reg++ {
			st.x[reg] = TopVal()
		}
		a1 := absValContaining(&r, v1)
		a2 := absValContaining(&r, v2)
		st.x[rs1], st.x[rs2] = a1, a2
		if ok := refineBranch(&st, in, taken); !ok {
			t.Fatalf("%s: refinement pruned the edge the emulator took: %s (has %#x), %s (has %#x), taken=%v",
				in, a1, v1, a2, v2, taken)
		}
		if !st.getX(rs1).Contains(v1) || !st.getX(rs2).Contains(v2) {
			t.Fatalf("%s: refinement dropped concrete operands: %s/%s -> %s/%s, values %#x/%#x, taken=%v",
				in, a1, a2, st.getX(rs1), st.getX(rs2), v1, v2, taken)
		}
	}
}

func concreteBranch(op isa.Op, v1, v2 uint64) bool {
	switch op {
	case isa.OpBEQ:
		return v1 == v2
	case isa.OpBNE:
		return v1 != v2
	case isa.OpBLT:
		return int64(v1) < int64(v2)
	case isa.OpBGE:
		return int64(v1) >= int64(v2)
	case isa.OpBLTU:
		return v1 < v2
	case isa.OpBGEU:
		return v1 >= v2
	}
	return false
}

// TestAlignFacts pins the known-bits side: shifted/masked address
// chains prove the alignment the bounds pass relies on.
func TestAlignFacts(t *testing.T) {
	a := avShlConst(TopVal(), 3)
	if got := a.Align(); got != 8 {
		t.Fatalf("x<<3 alignment = %d, want 8", got)
	}
	m := avAnd(TopVal(), ConstVal(0xFFF8))
	if got := m.Align(); got != 8 {
		t.Fatalf("x & 0xFFF8 alignment = %d, want 8", got)
	}
	if m.Lo != 0 || m.Hi != 0xFFF8 {
		t.Fatalf("x & 0xFFF8 interval = [%d,%d], want [0,65528]", m.Lo, m.Hi)
	}
	s := avAdd(m, ConstVal(0x1000_0000))
	if s.Lo != 0x1000_0000 || s.Hi != 0x1000_FFF8 || s.Align() != 8 {
		t.Fatalf("base+masked = %s, want [0x10000000,0x1000FFF8]/align8", s)
	}
	// Ori x, 1 excludes zero — the generator's divide-by-zero guard.
	d := avOr(TopVal(), ConstVal(1))
	if d.Contains(0) {
		t.Fatalf("x|1 should exclude 0, got %s", d)
	}
}
