package verify

import (
	"fmt"

	"paraverser/internal/isa"
)

// CheckBlockTable validates a basic-block table (isa.BuildBlockTable /
// Program.Blocks) against the verifier's own control-flow graph. The
// block executor trusts the table to skip per-instruction PC checks, so
// a wrong table silently corrupts emulation; this check is the CFG-level
// proof the differential tests lean on. It verifies:
//
//   - every block makes forward progress and stays in range;
//   - no block interior contains a CFG terminator, a multi-successor
//     instruction, a non-fall-through edge, or a block leader — i.e.
//     control can only enter at the first instruction and only leave
//     after the last;
//   - every CFG edge that is not a fall-through lands on a block leader
//     with a cut immediately before it;
//   - every program entry point is a leader.
//
// Returns nil when the table is consistent with the CFG.
func CheckBlockTable(p *isa.Program, bt *isa.BlockTable) error {
	if err := p.Validate(); err != nil {
		return err
	}
	n := len(p.Insts)
	if len(bt.End) != n || len(bt.Leader) != n {
		return fmt.Errorf("verify %q: block table sized %d/%d, want %d",
			p.Name, len(bt.End), len(bt.Leader), n)
	}
	r := &Report{Program: p.Name}
	succs, terminator := buildCFG(p, r)

	for _, e := range p.Entries {
		if !bt.Leader[e] {
			return fmt.Errorf("verify %q: entry %d is not a block leader", p.Name, e)
		}
	}
	for pc := 0; pc < n; pc++ {
		end := int(bt.End[pc])
		if end <= pc || end > n {
			return fmt.Errorf("verify %q: End[%d] = %d out of range", p.Name, pc, end)
		}
		for i := pc; i < end-1; i++ {
			if terminator[i] {
				return fmt.Errorf("verify %q: block [%d,%d) holds terminator %d (%s) in its interior",
					p.Name, pc, end, i, p.Insts[i])
			}
			if len(succs[i]) != 1 || succs[i][0] != i+1 {
				return fmt.Errorf("verify %q: block [%d,%d) interior pc %d (%s) is not pure fall-through",
					p.Name, pc, end, i, p.Insts[i])
			}
			if bt.Leader[i+1] {
				return fmt.Errorf("verify %q: block [%d,%d) holds leader %d in its interior",
					p.Name, pc, end, i+1)
			}
		}
	}
	for pc := 0; pc < n; pc++ {
		for _, s := range succs[pc] {
			if s == pc+1 && len(succs[pc]) == 1 && int(bt.End[pc]) > pc+1 {
				continue // pure fall-through inside a block
			}
			if !bt.Leader[s] {
				return fmt.Errorf("verify %q: CFG edge %d->%d lands mid-block (target not a leader)",
					p.Name, pc, s)
			}
			if s > 0 && int(bt.End[s-1]) != s {
				return fmt.Errorf("verify %q: no cut before CFG edge target %d (End[%d]=%d)",
					p.Name, s, s-1, bt.End[s-1])
			}
		}
	}
	return nil
}
