// Abstract-interpretation engine over the verifier CFG: a worklist
// fixpoint in reverse-postorder with the interval + known-bits product
// domain of domain.go, delayed widening at loop heads, descending
// narrowing sweeps, and per-edge refinement from branch conditions.
// The post-fixpoint states feed the rewritten bounds pass and the
// termination-bound analysis (termination.go).

package verify

import (
	"container/heap"
	"math"

	"paraverser/internal/isa"
)

// absState is the abstract machine state flowing into one instruction:
// one AbsVal per integer register and one FVal per FP register. live
// distinguishes "not yet reached" (all-bottom) from a visited state.
type absState struct {
	live bool
	x    [isa.NumIntRegs]AbsVal
	f    [isa.NumFPRegs]FVal
}

func (s *absState) getX(r isa.Reg) AbsVal {
	if r == isa.Zero {
		return ConstVal(0)
	}
	return s.x[r]
}

func (s *absState) setX(r isa.Reg, v AbsVal) {
	if r != isa.Zero {
		s.x[r] = v
	}
}

func (s *absState) setTop() {
	s.live = true
	for r := 1; r < isa.NumIntRegs; r++ {
		s.x[r] = TopVal()
	}
	for r := 0; r < isa.NumFPRegs; r++ {
		s.f[r] = TopF()
	}
}

// join merges o into s, reporting whether s changed.
func (s *absState) join(o *absState) bool {
	if !o.live {
		return false
	}
	if !s.live {
		*s = *o
		return true
	}
	changed := false
	for r := 1; r < isa.NumIntRegs; r++ {
		if n := s.x[r].Join(o.x[r]); n != s.x[r] {
			s.x[r] = n
			changed = true
		}
	}
	for r := 0; r < isa.NumFPRegs; r++ {
		if n := s.f[r].JoinF(o.f[r]); n != s.f[r] {
			s.f[r] = n
			changed = true
		}
	}
	return changed
}

// widenFrom applies widening with s as the previous loop-head state and
// o as the new incoming join, reporting whether s changed.
func (s *absState) widenFrom(o *absState) bool {
	if !o.live {
		return false
	}
	if !s.live {
		*s = *o
		return true
	}
	changed := false
	for r := 1; r < isa.NumIntRegs; r++ {
		if n := s.x[r].Widen(s.x[r].Join(o.x[r])); n != s.x[r] {
			s.x[r] = n
			changed = true
		}
	}
	for r := 0; r < isa.NumFPRegs; r++ {
		if n := s.f[r].WidenF(s.f[r].JoinF(o.f[r])); n != s.f[r] {
			s.f[r] = n
			changed = true
		}
	}
	return changed
}

// absResult is the engine output consumed by the bounds and termination
// passes: the narrowed per-PC in-states and the CFG the fixpoint ran on.
type absResult struct {
	in    []absState
	succs [][]int
	// edgeLive[pc][ei] reports whether out-edge ei of pc was ever
	// propagated (branch refinement proved some edges infeasible).
	edgeLive [][]bool
}

// entrySeed is the architectural register state the loader establishes
// for hart i before its first instruction.
func entrySeed(p *isa.Program, hart int) absState {
	var st absState
	st.live = true
	for r := 1; r < isa.NumIntRegs; r++ {
		st.x[r] = ConstVal(0)
	}
	for r := 0; r < isa.NumFPRegs; r++ {
		st.f[r] = ConstF(0)
	}
	st.x[isa.SP] = ConstVal(isa.StackBase - uint64(hart)*isa.StackStride)
	st.x[isa.TP] = ConstVal(uint64(hart))
	st.x[isa.GP] = ConstVal(p.DataBase)
	return st
}

// rpoOrder computes a reverse postorder over the nodes reachable from
// the entry points, returning the order and each node's position
// (n for unreachable nodes).
func rpoOrder(p *isa.Program, succs [][]int) (order []int, pos []int) {
	n := len(p.Insts)
	pos = make([]int, n)
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	var post []int
	type frame struct{ pc, next int }
	var stack []frame
	for _, e := range p.Entries {
		if state[e] != 0 {
			continue
		}
		state[e] = 1
		stack = append(stack, frame{pc: int(e)})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(succs[f.pc]) {
				s := succs[f.pc][f.next]
				f.next++
				if state[s] == 0 {
					state[s] = 1
					stack = append(stack, frame{pc: s})
				}
				continue
			}
			state[f.pc] = 2
			post = append(post, f.pc)
			stack = stack[:len(stack)-1]
		}
	}
	order = make([]int, len(post))
	for i := range post {
		order[i] = post[len(post)-1-i]
	}
	for pc := range pos {
		pos[pc] = n
	}
	for i, pc := range order {
		pos[pc] = i
	}
	return order, pos
}

// pcHeap is a worklist ordered by reverse-postorder position.
type pcHeap struct {
	pcs []int
	pos []int
}

func (h *pcHeap) Len() int           { return len(h.pcs) }
func (h *pcHeap) Less(i, j int) bool { return h.pos[h.pcs[i]] < h.pos[h.pcs[j]] }
func (h *pcHeap) Swap(i, j int)      { h.pcs[i], h.pcs[j] = h.pcs[j], h.pcs[i] }
func (h *pcHeap) Push(x any)         { h.pcs = append(h.pcs, x.(int)) }
func (h *pcHeap) Pop() any {
	old := h.pcs
	n := len(old)
	v := old[n-1]
	h.pcs = old[:n-1]
	return v
}

const widenDelay = 2 // changed joins tolerated at a loop head before widening

// runAbsint runs the fixpoint and narrowing passes and returns the
// per-PC in-states.
func runAbsint(p *isa.Program, succs [][]int) *absResult {
	n := len(p.Insts)
	res := &absResult{
		in:       make([]absState, n),
		succs:    succs,
		edgeLive: make([][]bool, n),
	}
	for pc := range res.edgeLive {
		res.edgeLive[pc] = make([]bool, len(succs[pc]))
	}
	order, pos := rpoOrder(p, succs)
	if len(order) == 0 {
		return res
	}

	// Loop heads: targets of retreating edges in the RPO.
	isHead := make([]bool, n)
	for _, pc := range order {
		for _, s := range succs[pc] {
			if pos[s] <= pos[pc] {
				isHead[s] = true
			}
		}
	}

	// Seed the entries; a PC shared by several harts joins their seeds.
	wl := &pcHeap{pos: pos}
	inQueue := make([]bool, n)
	for hart, e := range p.Entries {
		seed := entrySeed(p, hart)
		if res.in[e].join(&seed) && !inQueue[e] {
			inQueue[e] = true
			heap.Push(wl, int(e))
		}
	}

	joins := make([]int, n) // changed joins per loop head
	budget := 64*len(order) + 4096
	for wl.Len() > 0 {
		pc := heap.Pop(wl).(int)
		inQueue[pc] = false
		if budget--; budget < 0 {
			// Safeguard against pathological convergence: give up on
			// precision, soundly, by sending every reachable state to top.
			for _, q := range order {
				res.in[q].setTop()
				for ei := range res.edgeLive[q] {
					res.edgeLive[q][ei] = true
				}
			}
			return res
		}
		st := res.in[pc]
		absTransfer(p.Insts[pc], pc, &st)
		for ei, s := range succs[pc] {
			edge, feasible := edgeState(p.Insts[pc], pc, &st, ei, s)
			if !feasible {
				continue
			}
			res.edgeLive[pc][ei] = true
			// Widen only along retreating edges: changes arriving on a
			// forward edge come from outside the loop (an outer induction
			// variable, say) and widening on them would destroy precision
			// the loop itself never threatens. Every cycle contains a
			// retreating edge, so termination is still guaranteed.
			var changed bool
			if isHead[s] && pos[s] <= pos[pc] {
				if joins[s] < widenDelay {
					changed = res.in[s].join(edge)
					if changed {
						joins[s]++
					}
				} else {
					changed = res.in[s].widenFrom(edge)
				}
			} else {
				changed = res.in[s].join(edge)
			}
			if changed && !inQueue[s] {
				inQueue[s] = true
				heap.Push(wl, s)
			}
		}
	}

	narrow(p, succs, order, res)
	return res
}

// narrow runs descending sweeps from the post-fixpoint: each in-state
// is recomputed from its predecessors' transferred out-states (plus the
// entry seed). From a post-fixpoint, chaotic descending iteration stays
// above the least fixpoint, so updating in place is sound.
func narrow(p *isa.Program, succs [][]int, order []int, res *absResult) {
	n := len(p.Insts)
	type predEdge struct{ pc, ei int }
	preds := make([][]predEdge, n)
	for pc := range succs {
		if !res.in[pc].live {
			continue
		}
		for ei, s := range succs[pc] {
			if res.edgeLive[pc][ei] {
				preds[s] = append(preds[s], predEdge{pc, ei})
			}
		}
	}
	isEntry := make(map[int][]int) // pc -> harts entering there
	for hart, e := range p.Entries {
		isEntry[int(e)] = append(isEntry[int(e)], hart)
	}
	const sweeps = 3
	for pass := 0; pass < sweeps; pass++ {
		changed := false
		for _, pc := range order {
			var acc absState
			for _, hart := range isEntry[pc] {
				seed := entrySeed(p, hart)
				acc.join(&seed)
			}
			for _, pe := range preds[pc] {
				if !res.in[pe.pc].live {
					continue
				}
				st := res.in[pe.pc]
				absTransfer(p.Insts[pe.pc], pe.pc, &st)
				edge, feasible := edgeState(p.Insts[pe.pc], pe.pc, &st, pe.ei, pc)
				if !feasible {
					res.edgeLive[pe.pc][pe.ei] = false
					continue
				}
				acc.join(edge)
			}
			if !acc.live {
				continue // keep the fixpoint state rather than going bottom
			}
			if acc != res.in[pc] {
				res.in[pc] = acc
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// edgeState derives the state flowing along out-edge ei of pc from the
// already-transferred out-state. Branch edges are refined by the
// condition (edge 0 = taken, edge 1 = fall-through); the return edge of
// a call clobbers every register. feasible=false means the refinement
// proved the edge cannot be taken.
func edgeState(in isa.Inst, pc int, out *absState, ei, succ int) (*absState, bool) {
	if isa.ClassOf(in.Op) == isa.ClassBranch {
		st := *out
		if !refineBranch(&st, in, ei == 0) {
			return nil, false
		}
		return &st, true
	}
	if in.Op == isa.OpJAL && in.Rd != isa.Zero && succ == pc+1 && ei == 1 {
		var st absState
		st.setTop() // returning callee: values unknown
		return &st, true
	}
	return out, true
}

// refineBranch narrows the operand values of a conditional branch on
// one out-edge, returning false when the edge is infeasible.
func refineBranch(st *absState, in isa.Inst, taken bool) bool {
	op := in.Op
	if !taken { // negate the condition for the fall-through edge
		switch op {
		case isa.OpBEQ:
			op = isa.OpBNE
		case isa.OpBNE:
			op = isa.OpBEQ
		case isa.OpBLT:
			op = isa.OpBGE
		case isa.OpBGE:
			op = isa.OpBLT
		case isa.OpBLTU:
			op = isa.OpBGEU
		case isa.OpBGEU:
			op = isa.OpBLTU
		}
	}
	a := st.getX(in.Rs1)
	b := st.getX(in.Rs2)
	if a.IsBot() || b.IsBot() {
		return false
	}
	if in.Rs1 == in.Rs2 {
		switch op {
		case isa.OpBNE, isa.OpBLT, isa.OpBLTU:
			return false // x<x / x!=x can never hold
		}
		return true
	}
	var na, nb AbsVal
	switch op {
	case isa.OpBEQ:
		na = a.Meet(b)
		nb = na
	case isa.OpBNE:
		na, nb = a, b
		if v, ok := b.IsConst(); ok {
			na = excludeConst(a, v)
		}
		if v, ok := a.IsConst(); ok {
			nb = excludeConst(b, v)
		}
	case isa.OpBLT: // a < b signed
		if b.Hi == math.MinInt64 || a.Lo == math.MaxInt64 {
			return false
		}
		na = a.Meet(RangeVal(math.MinInt64, b.Hi-1))
		nb = b.Meet(RangeVal(a.Lo+1, math.MaxInt64))
	case isa.OpBGE: // a >= b signed
		na = a.Meet(RangeVal(b.Lo, math.MaxInt64))
		nb = b.Meet(RangeVal(math.MinInt64, a.Hi))
	case isa.OpBLTU: // a < b unsigned
		na, nb = a, b
		if b.Lo >= 0 {
			if b.Hi == 0 {
				return false // nothing is unsigned-below zero
			}
			// b < 2^63 unsigned forces a into [0, b.Hi-1] as a signed value.
			na = a.Meet(RangeVal(0, b.Hi-1))
			alo, _ := uRange(a)
			if alo > uint64(b.Hi) {
				return false
			}
			if alo <= uint64(math.MaxInt64) {
				nb = b.Meet(RangeVal(int64(alo)+1, math.MaxInt64))
			}
		}
	case isa.OpBGEU: // a >= b unsigned
		na, nb = a, b
		if a.Lo >= 0 {
			// a < 2^63 unsigned forces b into [0, a.Hi].
			nb = b.Meet(RangeVal(0, a.Hi))
			if b.Lo >= 0 {
				na = a.Meet(RangeVal(b.Lo, math.MaxInt64))
			}
		}
	default:
		return true
	}
	if na.IsBot() || nb.IsBot() {
		return false
	}
	st.setX(in.Rs1, na)
	st.setX(in.Rs2, nb)
	return true
}

// excludeConst trims v off an interval endpoint; interior exclusions
// are not representable and pass through.
func excludeConst(a AbsVal, v uint64) AbsVal {
	if w, ok := a.IsConst(); ok && w == v {
		return BotVal()
	}
	sv := int64(v)
	switch {
	case a.Lo == sv:
		return a.Meet(RangeVal(sv+1, math.MaxInt64))
	case a.Hi == sv:
		return a.Meet(RangeVal(math.MinInt64, sv-1))
	}
	return a
}

// absTransfer applies one instruction's effect to the abstract state,
// mirroring emu.Hart.StepDecoded exactly.
func absTransfer(in isa.Inst, pc int, st *absState) {
	imm := ConstVal(uint64(in.Imm))
	switch in.Op {
	case isa.OpADD:
		st.setX(in.Rd, avAdd(st.getX(in.Rs1), st.getX(in.Rs2)))
	case isa.OpSUB:
		st.setX(in.Rd, avSub(st.getX(in.Rs1), st.getX(in.Rs2)))
	case isa.OpMUL:
		st.setX(in.Rd, avMul(st.getX(in.Rs1), st.getX(in.Rs2)))
	case isa.OpDIV:
		st.setX(in.Rd, avDiv(st.getX(in.Rs1), st.getX(in.Rs2)))
	case isa.OpREM:
		st.setX(in.Rd, avRem(st.getX(in.Rs1), st.getX(in.Rs2)))
	case isa.OpAND:
		st.setX(in.Rd, avAnd(st.getX(in.Rs1), st.getX(in.Rs2)))
	case isa.OpOR:
		st.setX(in.Rd, avOr(st.getX(in.Rs1), st.getX(in.Rs2)))
	case isa.OpXOR:
		st.setX(in.Rd, avXor(st.getX(in.Rs1), st.getX(in.Rs2)))
	case isa.OpSLL:
		st.setX(in.Rd, avShl(st.getX(in.Rs1), st.getX(in.Rs2)))
	case isa.OpSRL:
		st.setX(in.Rd, avShr(st.getX(in.Rs1), st.getX(in.Rs2)))
	case isa.OpSRA:
		st.setX(in.Rd, avSar(st.getX(in.Rs1), st.getX(in.Rs2)))
	case isa.OpSLT:
		st.setX(in.Rd, avSltSigned(st.getX(in.Rs1), st.getX(in.Rs2)))
	case isa.OpSLTU:
		st.setX(in.Rd, avSltU(st.getX(in.Rs1), st.getX(in.Rs2)))
	case isa.OpADDI:
		st.setX(in.Rd, avAdd(st.getX(in.Rs1), imm))
	case isa.OpANDI:
		st.setX(in.Rd, avAnd(st.getX(in.Rs1), imm))
	case isa.OpORI:
		st.setX(in.Rd, avOr(st.getX(in.Rs1), imm))
	case isa.OpXORI:
		st.setX(in.Rd, avXor(st.getX(in.Rs1), imm))
	case isa.OpSLLI:
		st.setX(in.Rd, avShlConst(st.getX(in.Rs1), uint64(in.Imm)))
	case isa.OpSRLI:
		st.setX(in.Rd, avShrConst(st.getX(in.Rs1), uint64(in.Imm)))
	case isa.OpSRAI:
		st.setX(in.Rd, avSarConst(st.getX(in.Rs1), uint64(in.Imm)))
	case isa.OpSLTI:
		st.setX(in.Rd, avSltSigned(st.getX(in.Rs1), imm))
	case isa.OpLUI:
		st.setX(in.Rd, imm)

	case isa.OpFADD:
		st.f[in.Rd] = fAdd(st.f[in.Rs1], st.f[in.Rs2])
	case isa.OpFSUB:
		st.f[in.Rd] = fSub(st.f[in.Rs1], st.f[in.Rs2])
	case isa.OpFMUL:
		st.f[in.Rd] = fMul(st.f[in.Rs1], st.f[in.Rs2])
	case isa.OpFDIV:
		st.f[in.Rd] = fDiv(st.f[in.Rs1], st.f[in.Rs2])
	case isa.OpFSQRT:
		st.f[in.Rd] = fSqrt(st.f[in.Rs1])
	case isa.OpFMIN:
		st.f[in.Rd] = fMin(st.f[in.Rs1], st.f[in.Rs2])
	case isa.OpFMAX:
		st.f[in.Rd] = fMax(st.f[in.Rs1], st.f[in.Rs2])
	case isa.OpFNEG:
		st.f[in.Rd] = fNeg(st.f[in.Rs1])
	case isa.OpFABS:
		st.f[in.Rd] = fAbs(st.f[in.Rs1])
	case isa.OpFCVTIF:
		st.f[in.Rd] = fCvtIF(st.getX(in.Rs1))
	case isa.OpFCVTFI:
		st.setX(in.Rd, fCvtFI(st.f[in.Rs1]))
	case isa.OpFMVIF:
		st.f[in.Rd] = fMvIF(st.getX(in.Rs1))
	case isa.OpFMVFI:
		st.setX(in.Rd, fMvFI(st.f[in.Rs1]))
	case isa.OpFEQ:
		st.setX(in.Rd, fEq(st.f[in.Rs1], st.f[in.Rs2]))
	case isa.OpFLT:
		st.setX(in.Rd, fLt(st.f[in.Rs1], st.f[in.Rs2]))

	case isa.OpLD:
		st.setX(in.Rd, avLoad(in.Size))
	case isa.OpFLD:
		st.f[in.Rd] = TopF()
	case isa.OpGLD:
		st.setX(in.Rd, avAdd(avLoad(in.Size), avLoad(in.Size)))
	case isa.OpSWP:
		st.setX(in.Rd, TopVal())
	case isa.OpST, isa.OpFST, isa.OpSST:
		// no register effect

	case isa.OpJAL, isa.OpJALR:
		st.setX(in.Rd, ConstVal(uint64(pc)+1))
	case isa.OpRAND, isa.OpCYCLE:
		st.setX(in.Rd, TopVal())
	}
}
