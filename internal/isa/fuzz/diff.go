package fuzz

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"paraverser/internal/core"
	"paraverser/internal/cpu"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// Divergence describes one differential mismatch: which engine pair (or
// which system configuration) disagreed, and how.
type Divergence struct {
	Stage  string // "step-vs-blocks", "strategy:<name>", "timeshards", "divergent"
	Detail string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("fuzz: %s: %s", d.Stage, d.Detail)
}

// archFingerprint flattens a machine's complete architectural outcome —
// every hart's register file, PC, instret and halt flag plus a hash of
// all resident memory — into a comparable string.
func archFingerprint(m *emu.Machine) string {
	var b strings.Builder
	for i, h := range m.Harts {
		fmt.Fprintf(&b, "hart%d pc=%d instret=%d halted=%v\nX=%x\nF=", i, h.State.PC, h.Instret, h.Halted, h.State.X)
		for _, f := range h.State.F {
			fmt.Fprintf(&b, "%x,", f)
		}
		b.WriteString("\n")
	}
	type pg struct {
		base uint64
		sum  uint64
	}
	var pages []pg
	m.Mem.ForEachPage(func(base uint64, data []byte) {
		h := fnv.New64a()
		h.Write(data)
		pages = append(pages, pg{base, h.Sum64()})
	})
	sort.Slice(pages, func(i, j int) bool { return pages[i].base < pages[j].base })
	for _, p := range pages {
		fmt.Fprintf(&b, "page %#x %016x\n", p.base, p.sum)
	}
	return b.String()
}

// dynLimit caps differential executions: screened programs carry a
// proved MaxInsts, and anything past this is a screening failure, not
// an engine test.
const dynLimit = 1 << 20

// runStep executes the program to halt on the per-instruction engine.
func runStep(p *isa.Program, seed uint64) (*emu.Machine, error) {
	m, err := emu.NewMachine(p, seed)
	if err != nil {
		return nil, err
	}
	if _, err := m.Run(dynLimit, nil); err != nil {
		return nil, err
	}
	return m, nil
}

// runBlocks executes the program to halt on the block-compiled engine.
func runBlocks(p *isa.Program, seed uint64) (*emu.Machine, error) {
	m, err := emu.NewMachine(p, seed)
	if err != nil {
		return nil, err
	}
	batch := make([]emu.Effect, 512)
	total := 0
	for m.Running() {
		progressed := false
		for i, h := range m.Harts {
			if h.Halted {
				continue
			}
			n, err := m.RunBlocks(i, batch, len(batch))
			if err != nil {
				return nil, err
			}
			total += n
			if n > 0 {
				progressed = true
			}
			if total > dynLimit {
				return nil, emu.ErrLimit
			}
		}
		if !progressed {
			return nil, fmt.Errorf("fuzz: block engine made no progress")
		}
	}
	return m, nil
}

// flattenResult mirrors the core package's determinism-test rendering:
// every externally observable statistic of a run, including the metrics
// shard, so byte equality means the whole observable surface matched.
func flattenResult(res *core.Result) string {
	return fmt.Sprintf("lanes=%v\ncheckers=%v\nlink=%v llc=%v\nmetrics=%s",
		res.Lanes, res.CheckersByLane, res.MaxLinkUtilisation, res.AvgLLCExtraNS,
		res.Metrics.String())
}

func checkerPool() core.CheckerSpec {
	return core.CheckerSpec{CPU: cpu.A510(), FreqGHz: 2.0, Count: 2}
}

// sysConfig builds one full-system configuration for the differential
// matrix.
func sysConfig(seed uint64, strat core.Strategy, blocks core.BlockExecMode) core.Config {
	cfg := core.DefaultConfig(checkerPool())
	cfg.Seed = seed
	cfg.Strategy = strat
	cfg.BlockExec = blocks
	return cfg
}

// Differential runs one screened program through every engine and
// checker strategy and compares the outcomes. It returns nil when all
// engines agree and every checker verdict is clean, or the first
// divergence found. seed feeds the per-hart RAND streams identically in
// every engine.
func Differential(p *isa.Program, seed uint64) *Divergence {
	// 1. Per-instruction vs block-compiled functional engines: the full
	// architectural outcome must be byte-identical.
	stepM, err := runStep(p, seed)
	if err != nil {
		return &Divergence{Stage: "step", Detail: err.Error()}
	}
	blockM, err := runBlocks(p, seed)
	if err != nil {
		return &Divergence{Stage: "blocks", Detail: err.Error()}
	}
	stepFP, blockFP := archFingerprint(stepM), archFingerprint(blockM)
	if stepFP != blockFP {
		return &Divergence{Stage: "step-vs-blocks",
			Detail: fmt.Sprintf("architectural state diverged:\n--- step ---\n%s--- blocks ---\n%s", stepFP, blockFP)}
	}
	var refInsts uint64
	for _, h := range stepM.Harts {
		refInsts += h.Instret
	}

	// 2. Every checker strategy, with and without the block-compiled
	// engine: each run must retire exactly the reference instruction
	// count and raise zero detections (a detection on a fault-free run
	// is a checker false positive; an instruction-count delta is a
	// functional divergence inside the system model).
	ws := []core.Workload{{Name: p.Name, Prog: p}}
	strategies := []struct {
		name  string
		strat core.Strategy
	}{
		{"lockstep", core.StrategyLockstep},
		{"chunk-replay", core.StrategyChunkReplay},
		{"relaxed", core.StrategyRelaxed},
	}
	for _, s := range strategies {
		for _, blocks := range []core.BlockExecMode{core.BlockExecOff, core.BlockExecOn} {
			res, err := core.Run(sysConfig(seed, s.strat, blocks), ws)
			if err != nil {
				return &Divergence{Stage: "strategy:" + s.name, Detail: err.Error()}
			}
			if n := res.Detections(); n != 0 {
				return &Divergence{Stage: "strategy:" + s.name,
					Detail: fmt.Sprintf("%d false detection(s) on a fault-free run (blocks=%v)", n, blocks)}
			}
			if got := res.TotalInsts(); got != refInsts {
				return &Divergence{Stage: "strategy:" + s.name,
					Detail: fmt.Sprintf("retired %d instructions, reference %d (blocks=%v)", got, refInsts, blocks)}
			}
		}
	}

	// 3. Parallel-in-time speculation: a sharded run with a spec cache
	// must render byte-identically to the sequential run.
	seq := sysConfig(seed, core.StrategyLockstep, core.BlockExecAuto)
	seq.TimeShards = 1
	seqRes, err := core.Run(seq, ws)
	if err != nil {
		return &Divergence{Stage: "timeshards", Detail: err.Error()}
	}
	shard := sysConfig(seed, core.StrategyLockstep, core.BlockExecAuto)
	shard.Spec = core.NewSpecCache()
	shard.TimeShards = 4
	shardRes, err := core.Run(shard, ws)
	if err != nil {
		return &Divergence{Stage: "timeshards", Detail: err.Error()}
	}
	if a, b := flattenResult(seqRes), flattenResult(shardRes); a != b {
		return &Divergence{Stage: "timeshards",
			Detail: fmt.Sprintf("TimeShards=4 diverged from sequential:\n--- seq ---\n%s\n--- shards ---\n%s", a, b)}
	}

	// 4. Divergent checking: the decorrelated variant must also verify
	// clean against the original (single-hart programs only, which is
	// all the generator emits).
	if len(p.Entries) == 1 {
		div := sysConfig(seed, core.StrategyAuto, core.BlockExecAuto)
		div.CheckMode = core.CheckDivergent
		res, err := core.Run(div, ws)
		if err != nil {
			return &Divergence{Stage: "divergent", Detail: err.Error()}
		}
		if n := res.Detections(); n != 0 {
			return &Divergence{Stage: "divergent",
				Detail: fmt.Sprintf("%d false detection(s) in divergent mode", n)}
		}
	}
	return nil
}
