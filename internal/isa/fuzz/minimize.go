package fuzz

import "paraverser/internal/isa"

// Minimize shrinks a diverging template to a smaller reproduction by
// delta-debugging over whole gadgets: because Emit reassembles any
// gadget subset into a self-consistent program (gadgets carry only
// internal branches), removal never needs offset surgery. A candidate
// subset counts as reproducing only when it still passes verifier
// screening AND diverges at the same stage — shrinking must not trade
// one bug for a different one.
//
// The result is the emitted program for the smallest reproducing mask
// found, or nil when no strict subset reproduces.
func Minimize(t *Template, seed uint64, stage string) *isa.Program {
	n := t.NumGadgets()
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}
	reproduces := func(m []bool) bool {
		p := t.Emit(m)
		if _, err := Screen(p); err != nil {
			return false
		}
		d := Differential(p, seed)
		return d != nil && d.Stage == stage
	}

	shrunk := false
	// Pass 1: halve-and-conquer — try dropping large chunks first.
	for chunk := n / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start < n; start += chunk {
			trial := make([]bool, n)
			copy(trial, mask)
			any := false
			for i := start; i < start+chunk && i < n; i++ {
				if trial[i] {
					trial[i] = false
					any = true
				}
			}
			if !any {
				continue
			}
			if reproduces(trial) {
				copy(mask, trial)
				shrunk = true
			}
		}
	}
	// Pass 2: single-gadget sweep to catch stragglers.
	for i := 0; i < n; i++ {
		if !mask[i] {
			continue
		}
		trial := make([]bool, n)
		copy(trial, mask)
		trial[i] = false
		if reproduces(trial) {
			copy(mask, trial)
			shrunk = true
		}
	}
	if !shrunk {
		return nil
	}
	return t.Emit(mask)
}
