// Package fuzz generates random-but-verifiable programs and executes
// them differentially across every execution engine in the tree: the
// per-instruction emulator, the block-compiled emulator, each checker
// strategy of the full system model, and the parallel-in-time
// speculation path. Programs come out of a templated, seed-deterministic
// generator over the full opcode set; the abstract-interpretation
// verifier screens each candidate (no errors, a proved termination
// bound) before any engine runs it, so a divergence is always an engine
// bug, never an artefact of an ill-formed input.
package fuzz

import (
	"fmt"

	"paraverser/internal/isa"
)

// rng is a splitmix64 stream: the only randomness source in this
// package, so a seed fully determines a generated program.
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Mix advances a seed to an independent successor stream, used to
// derive regeneration seeds when a candidate fails screening.
func Mix(seed uint64) uint64 {
	r := rng(seed)
	return r.next()
}

// Generator layout constants. The data segment is a page of 8-byte
// slots; every address is formed as GP plus a masked offset so the
// verifier's known-bits domain proves each access in bounds.
const (
	dataBytes  = 4096
	offMask    = 0xFF8 // 8-aligned offsets 0..4088
	loopStride = 8
)

// Scratch register conventions. GP holds the data base (machine-seeded
// and re-materialised after calls); the generator cycles through a
// small scratch file for values and two dedicated registers for loop
// control so gadgets compose without hidden dependencies.
var (
	scratch = []isa.Reg{10, 11, 12, 13, 14, 15, 16, 17}
	fpRegs  = []isa.Reg{8, 9, 10, 11, 12, 13}
	rAddr   = isa.Reg(18) // address staging
	rAddr2  = isa.Reg(19) // second address (GLD/SST)
	rCnt    = isa.Reg(20) // loop counter
	rLim    = isa.Reg(21) // loop limit
)

// gadget is one self-contained emission unit: its instructions use only
// gadget-internal relative branches, so any subset of gadgets
// concatenates into a valid program. call marks the JAL-placeholder
// index (relative to the gadget) that must be patched to the shared
// function body once the final layout is known, or -1.
type gadget struct {
	kind  string
	insts []isa.Inst
	call  int
}

// Template is a generated program in gadget form. Emit materialises any
// subset of the gadgets into a runnable program, which is what lets the
// minimiser shrink a failing seed without patching branch offsets.
type Template struct {
	Seed    uint64
	gadgets []gadget
	fn      []isa.Inst // shared callee body (JALR-terminated)
}

// NumGadgets returns how many droppable units the template has.
func (t *Template) NumGadgets() int { return len(t.gadgets) }

// Generate builds a deterministic program template of roughly
// targetInsts instructions from the seed. The same (seed, targetInsts)
// pair always yields the same template.
func Generate(seed uint64, targetInsts int) *Template {
	r := rng(seed)
	t := &Template{Seed: seed}
	t.fn = genCallee(&r)
	total := 0
	for total < targetInsts {
		g := genGadget(&r)
		t.gadgets = append(t.gadgets, g)
		total += len(g.insts)
	}
	return t
}

// Program emits the full template.
func (t *Template) Program() *isa.Program {
	mask := make([]bool, len(t.gadgets))
	for i := range mask {
		mask[i] = true
	}
	return t.Emit(mask)
}

// Emit assembles the enabled subset of gadgets into a program:
// preamble, gadget bodies, HALT, then the shared callee (only when a
// call gadget is enabled, so disabled calls leave no dead code).
func (t *Template) Emit(mask []bool) *isa.Program {
	var insts []isa.Inst
	insts = append(insts, preamble(t.Seed)...)
	type fixup struct{ at int }
	var fixups []fixup
	hasCall := false
	for i, g := range t.gadgets {
		if i < len(mask) && !mask[i] {
			continue
		}
		base := len(insts)
		insts = append(insts, g.insts...)
		if g.call >= 0 {
			fixups = append(fixups, fixup{at: base + g.call})
			hasCall = true
		}
	}
	insts = append(insts, isa.Inst{Op: isa.OpHALT})
	if hasCall {
		fnBase := len(insts)
		insts = append(insts, t.fn...)
		for _, f := range fixups {
			insts[f.at].Imm = int64(fnBase - f.at)
		}
	}
	return &isa.Program{
		Name:     fmt.Sprintf("fuzz-%016x", t.Seed),
		Insts:    insts,
		Data:     make([]byte, dataBytes),
		DataBase: isa.DefaultDataBase,
		Entries:  []uint64{0},
	}
}

// preamble materialises every scratch register with a seed-derived
// constant and warms the FP file from them, so gadgets always have
// defined operands regardless of which subset the minimiser kept.
func preamble(seed uint64) []isa.Inst {
	r := rng(seed ^ 0xA5A5A5A5)
	var out []isa.Inst
	for _, reg := range scratch {
		switch r.intn(3) {
		case 0:
			out = append(out, isa.Inst{Op: isa.OpADDI, Rd: reg, Rs1: isa.Zero, Imm: int64(r.intn(8192) - 4096)})
		case 1:
			out = append(out, isa.Inst{Op: isa.OpLUI, Rd: reg, Imm: int64(r.next() % (1 << 40))})
		default:
			out = append(out,
				isa.Inst{Op: isa.OpADDI, Rd: reg, Rs1: isa.Zero, Imm: int64(r.intn(1024))},
				isa.Inst{Op: isa.OpSLLI, Rd: reg, Rs1: reg, Imm: int64(r.intn(20))},
			)
		}
	}
	for i, freg := range fpRegs {
		out = append(out, isa.Inst{Op: isa.OpFCVTIF, Rd: freg, Rs1: scratch[i%len(scratch)]})
	}
	return out
}

// genCallee builds the shared function body: a few register-only ALU
// ops and a return. It deliberately avoids memory and GP so the
// caller-side re-materialisation is the only post-call repair needed.
func genCallee(r *rng) []isa.Inst {
	var out []isa.Inst
	n := 2 + r.intn(4)
	for i := 0; i < n; i++ {
		a, b := scratch[r.intn(len(scratch))], scratch[r.intn(len(scratch))]
		ops := []isa.Op{isa.OpADD, isa.OpXOR, isa.OpMUL, isa.OpSUB}
		out = append(out, isa.Inst{Op: ops[r.intn(len(ops))], Rd: a, Rs1: a, Rs2: b})
	}
	out = append(out, isa.Inst{Op: isa.OpJALR, Rd: isa.Zero, Rs1: isa.RA})
	return out
}

var aluRegOps = []isa.Op{
	isa.OpADD, isa.OpSUB, isa.OpMUL, isa.OpDIV, isa.OpREM,
	isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSLL, isa.OpSRL, isa.OpSRA,
	isa.OpSLT, isa.OpSLTU,
}

var aluImmOps = []isa.Op{
	isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI,
	isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpSLTI,
}

var fpBinOps = []isa.Op{
	isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFDIV, isa.OpFMIN, isa.OpFMAX,
}

var fpUnOps = []isa.Op{isa.OpFSQRT, isa.OpFNEG, isa.OpFABS}

var branchOps = []isa.Op{
	isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU,
}

var memSizes = []uint8{1, 2, 4, 8}

// genGadget picks and builds one gadget.
func genGadget(r *rng) gadget {
	switch r.intn(10) {
	case 0, 1:
		return gadget{kind: "alu", insts: genALU(r), call: -1}
	case 2, 3:
		return gadget{kind: "mem", insts: genMem(r), call: -1}
	case 4:
		return gadget{kind: "loop", insts: genLoop(r), call: -1}
	case 5:
		return gadget{kind: "diamond", insts: genDiamond(r), call: -1}
	case 6:
		return gadget{kind: "fp", insts: genFP(r), call: -1}
	case 7:
		return gadget{kind: "gather", insts: genGather(r), call: -1}
	case 8:
		return gadget{kind: "sys", insts: genSys(r), call: -1}
	default:
		g := genCall(r)
		return g
	}
}

// genALU emits a burst of register and immediate ALU operations over
// the scratch file, including divides (division by zero is defined
// architecture-wide, so no guard is needed for execution — only the
// occasional ORI keeps quotients interesting).
func genALU(r *rng) []isa.Inst {
	var out []isa.Inst
	n := 3 + r.intn(6)
	for i := 0; i < n; i++ {
		d := scratch[r.intn(len(scratch))]
		a := scratch[r.intn(len(scratch))]
		b := scratch[r.intn(len(scratch))]
		if r.intn(2) == 0 {
			op := aluRegOps[r.intn(len(aluRegOps))]
			if (op == isa.OpDIV || op == isa.OpREM) && r.intn(2) == 0 {
				out = append(out, isa.Inst{Op: isa.OpORI, Rd: b, Rs1: b, Imm: 1})
			}
			out = append(out, isa.Inst{Op: op, Rd: d, Rs1: a, Rs2: b})
		} else {
			op := aluImmOps[r.intn(len(aluImmOps))]
			imm := int64(r.intn(8192) - 4096)
			if op == isa.OpSLLI || op == isa.OpSRLI || op == isa.OpSRAI {
				imm = int64(r.intn(64))
			}
			out = append(out, isa.Inst{Op: op, Rd: d, Rs1: a, Imm: imm})
		}
	}
	return out
}

// maskedAddr stages a provably in-bounds data address in dst: the
// known-bits domain sees the AND as [0, offMask] with 8-byte alignment
// and the ADD as GP-relative, so the bounds pass proves the access.
func maskedAddr(r *rng, dst isa.Reg) []isa.Inst {
	src := scratch[r.intn(len(scratch))]
	return []isa.Inst{
		{Op: isa.OpANDI, Rd: dst, Rs1: src, Imm: offMask},
		{Op: isa.OpADD, Rd: dst, Rs1: isa.GP, Rs2: dst},
	}
}

// genMem emits masked loads, stores, swaps and FP memory traffic.
func genMem(r *rng) []isa.Inst {
	var out []isa.Inst
	n := 1 + r.intn(3)
	for i := 0; i < n; i++ {
		out = append(out, maskedAddr(r, rAddr)...)
		val := scratch[r.intn(len(scratch))]
		dst := scratch[r.intn(len(scratch))]
		size := memSizes[r.intn(len(memSizes))]
		switch r.intn(6) {
		case 0, 1:
			out = append(out, isa.Inst{Op: isa.OpLD, Rd: dst, Rs1: rAddr, Size: size})
		case 2, 3:
			out = append(out, isa.Inst{Op: isa.OpST, Rs1: rAddr, Rs2: val, Size: size})
		case 4:
			out = append(out, isa.Inst{Op: isa.OpSWP, Rd: dst, Rs1: rAddr, Rs2: val, Size: 8})
		default:
			f := fpRegs[r.intn(len(fpRegs))]
			if r.intn(2) == 0 {
				out = append(out, isa.Inst{Op: isa.OpFLD, Rd: f, Rs1: rAddr, Size: 8})
			} else {
				out = append(out, isa.Inst{Op: isa.OpFST, Rs1: rAddr, Rs2: f, Size: 8})
			}
		}
	}
	return out
}

// genGather emits the two-address ops: gather-load and scatter-store.
func genGather(r *rng) []isa.Inst {
	out := maskedAddr(r, rAddr)
	out = append(out, maskedAddr(r, rAddr2)...)
	size := memSizes[r.intn(len(memSizes))]
	if r.intn(2) == 0 {
		out = append(out, isa.Inst{Op: isa.OpGLD, Rd: scratch[r.intn(len(scratch))],
			Rs1: rAddr, Rs2: rAddr2, Size: size})
	} else {
		out = append(out, isa.Inst{Op: isa.OpSST, Rd: scratch[r.intn(len(scratch))],
			Rs1: rAddr, Rs2: rAddr2, Size: size})
	}
	return out
}

// genLoop emits a counted induction loop whose body indexes the data
// segment by the counter — the exact shape the termination and bounds
// analyses must prove (counter interval via branch refinement, address
// via shift/add on the refined interval).
func genLoop(r *rng) []isa.Inst {
	iters := 4 + r.intn(29) // 4..32
	var out []isa.Inst
	out = append(out,
		isa.Inst{Op: isa.OpADDI, Rd: rCnt, Rs1: isa.Zero, Imm: 0},
		isa.Inst{Op: isa.OpADDI, Rd: rLim, Rs1: isa.Zero, Imm: int64(iters)},
	)
	head := len(out)
	// Body: counter-indexed access plus optional ALU noise.
	out = append(out,
		isa.Inst{Op: isa.OpSLLI, Rd: rAddr, Rs1: rCnt, Imm: 3},
		isa.Inst{Op: isa.OpADD, Rd: rAddr, Rs1: isa.GP, Rs2: rAddr},
	)
	if r.intn(2) == 0 {
		out = append(out, isa.Inst{Op: isa.OpST, Rs1: rAddr, Rs2: rCnt, Size: 8})
	} else {
		out = append(out, isa.Inst{Op: isa.OpLD, Rd: scratch[r.intn(len(scratch))], Rs1: rAddr, Size: 8})
	}
	for i := r.intn(3); i > 0; i-- {
		d, a := scratch[r.intn(len(scratch))], scratch[r.intn(len(scratch))]
		out = append(out, isa.Inst{Op: aluRegOps[r.intn(len(aluRegOps))], Rd: d, Rs1: a, Rs2: rCnt})
	}
	out = append(out, isa.Inst{Op: isa.OpADDI, Rd: rCnt, Rs1: rCnt, Imm: 1})
	out = append(out, isa.Inst{Op: isa.OpBLT, Rs1: rCnt, Rs2: rLim,
		Imm: int64(head - len(out))})
	return out
}

// genDiamond emits a two-arm branch diamond over scratch values.
func genDiamond(r *rng) []isa.Inst {
	op := branchOps[r.intn(len(branchOps))]
	a, b := scratch[r.intn(len(scratch))], scratch[r.intn(len(scratch))]
	arm0, arm1 := genALU(r), genALU(r)
	var out []isa.Inst
	// branch a,b -> arm1; arm0; jal over arm1.
	out = append(out, isa.Inst{Op: op, Rs1: a, Rs2: b, Imm: int64(len(arm0) + 2)})
	out = append(out, arm0...)
	out = append(out, isa.Inst{Op: isa.OpJAL, Rd: isa.Zero, Imm: int64(len(arm1) + 1)})
	out = append(out, arm1...)
	return out
}

// genFP emits an FP burst with int crossings (converts, moves,
// compares) so the checker-side FP state is exercised end to end.
func genFP(r *rng) []isa.Inst {
	var out []isa.Inst
	n := 2 + r.intn(5)
	for i := 0; i < n; i++ {
		d := fpRegs[r.intn(len(fpRegs))]
		a := fpRegs[r.intn(len(fpRegs))]
		b := fpRegs[r.intn(len(fpRegs))]
		switch r.intn(6) {
		case 0, 1, 2:
			out = append(out, isa.Inst{Op: fpBinOps[r.intn(len(fpBinOps))], Rd: d, Rs1: a, Rs2: b})
		case 3:
			out = append(out, isa.Inst{Op: fpUnOps[r.intn(len(fpUnOps))], Rd: d, Rs1: a})
		case 4:
			x := scratch[r.intn(len(scratch))]
			if r.intn(2) == 0 {
				out = append(out, isa.Inst{Op: isa.OpFCVTIF, Rd: d, Rs1: x})
			} else {
				out = append(out, isa.Inst{Op: isa.OpFMVIF, Rd: d, Rs1: x})
			}
		default:
			x := scratch[r.intn(len(scratch))]
			ops := []isa.Op{isa.OpFCVTFI, isa.OpFMVFI, isa.OpFEQ, isa.OpFLT}
			out = append(out, isa.Inst{Op: ops[r.intn(len(ops))], Rd: x, Rs1: a, Rs2: b})
		}
	}
	return out
}

// genSys emits the system-ish opcodes: RAND, CYCLE, NOP, PAUSE. RAND
// and CYCLE are deterministic per hart (seeded stream, scaled instret)
// so they are safe under differential execution.
func genSys(r *rng) []isa.Inst {
	var out []isa.Inst
	n := 1 + r.intn(3)
	for i := 0; i < n; i++ {
		d := scratch[r.intn(len(scratch))]
		switch r.intn(4) {
		case 0:
			out = append(out, isa.Inst{Op: isa.OpRAND, Rd: d})
		case 1:
			out = append(out, isa.Inst{Op: isa.OpCYCLE, Rd: d})
		case 2:
			out = append(out, isa.Inst{Op: isa.OpNOP})
		default:
			out = append(out, isa.Inst{Op: isa.OpPAUSE})
		}
	}
	return out
}

// genCall emits a linking JAL to the shared callee (patched at Emit
// time) followed by full re-materialisation: the verifier treats a
// returning call as clobbering every register, so GP and the scratch
// file are rebuilt to keep later bounds proofs alive.
func genCall(r *rng) gadget {
	var out []isa.Inst
	callAt := len(out)
	out = append(out, isa.Inst{Op: isa.OpJAL, Rd: isa.RA, Imm: 0}) // patched
	out = append(out, isa.Inst{Op: isa.OpLUI, Rd: isa.GP, Imm: int64(isa.DefaultDataBase)})
	for _, reg := range scratch {
		out = append(out, isa.Inst{Op: isa.OpADDI, Rd: reg, Rs1: isa.Zero, Imm: int64(r.intn(4096))})
	}
	return gadget{kind: "call", insts: out, call: callAt}
}
