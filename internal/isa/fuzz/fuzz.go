package fuzz

import (
	"fmt"
	"sync"

	"paraverser/internal/isa"
	"paraverser/internal/isa/verify"
)

// Options configures a fuzzing campaign.
type Options struct {
	// Seeds is how many independent seeds to run.
	Seeds int
	// Insts is the per-program instruction target for the generator.
	Insts int
	// Workers bounds campaign parallelism. Results are reported in seed
	// order and are byte-identical at any worker count: each seed's
	// pipeline is self-contained and shares no mutable state.
	Workers int
	// BaseSeed offsets the seed stream (0 picks the default campaign
	// stream), letting CI pin one corpus while exploratory runs roam.
	BaseSeed uint64
}

// maxScreenAttempts bounds per-seed regeneration when a candidate fails
// verifier screening. The generator is built to pass screening; burning
// through this budget means a generator/verifier bug worth surfacing.
const maxScreenAttempts = 8

// SeedReport is the outcome of one seed's generate→screen→execute
// pipeline.
type SeedReport struct {
	Seed     uint64 // the program seed that ran (after regens)
	Insts    int    // static instruction count of the program
	Attempts int    // screening attempts consumed (1 = first try)
	MaxInsts int64  // the verifier's proved dynamic bound
	// Divergence is nil on agreement. ScreenFailure records a seed whose
	// candidates never passed screening (also a bug, but in the
	// generator/verifier pair rather than the engines).
	Divergence    *Divergence
	ScreenFailure string
	// Minimized, on divergence, is the smallest gadget subset that
	// still reproduces it (nil when minimisation could not shrink).
	Minimized *isa.Program
}

// Screen verifies a candidate: accepted iff the verifier reports no
// errors and proves a termination bound within the differential
// executor's budget.
func Screen(p *isa.Program) (int64, error) {
	rep := verify.Verify(p)
	for _, f := range rep.Findings {
		if f.Sev == verify.SevError {
			return 0, fmt.Errorf("verifier error: %s", f)
		}
	}
	if rep.MaxInsts <= 0 {
		return 0, fmt.Errorf("no proved termination bound")
	}
	if rep.MaxInsts > dynLimit {
		return 0, fmt.Errorf("proved bound %d exceeds differential budget %d", rep.MaxInsts, dynLimit)
	}
	return rep.MaxInsts, nil
}

// runSeed is one seed's full pipeline: generate, screen (with bounded
// regeneration), execute differentially, minimise on divergence.
func runSeed(seed uint64, insts int) SeedReport {
	rep := SeedReport{Seed: seed}
	cur := seed
	var tmpl *Template
	var prog *isa.Program
	for attempt := 1; ; attempt++ {
		rep.Attempts = attempt
		tmpl = Generate(cur, insts)
		prog = tmpl.Program()
		bound, err := Screen(prog)
		if err == nil {
			rep.Seed = cur
			rep.MaxInsts = bound
			break
		}
		if attempt >= maxScreenAttempts {
			rep.ScreenFailure = err.Error()
			return rep
		}
		cur = Mix(cur)
	}
	rep.Insts = len(prog.Insts)
	if d := Differential(prog, rep.Seed); d != nil {
		rep.Divergence = d
		rep.Minimized = Minimize(tmpl, rep.Seed, d.Stage)
	}
	return rep
}

// Campaign runs Seeds independent pipelines and returns their reports
// in seed order. The output is deterministic at any worker count.
func Campaign(opt Options) []SeedReport {
	if opt.Seeds <= 0 {
		return nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > opt.Seeds {
		workers = opt.Seeds
	}
	// Seed stream: splitmix over the index so adjacent seeds are
	// decorrelated and a single seed can be replayed in isolation.
	seeds := make([]uint64, opt.Seeds)
	base := rng(opt.BaseSeed ^ 0x5EED5EED5EED5EED)
	for i := range seeds {
		seeds[i] = base.next()
	}

	out := make([]SeedReport, opt.Seeds)
	var wg sync.WaitGroup
	next := make(chan int, opt.Seeds)
	for i := 0; i < opt.Seeds; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = runSeed(seeds[i], opt.Insts)
			}
		}()
	}
	wg.Wait()
	return out
}

// Summary condenses a campaign for display and exit-status decisions.
type Summary struct {
	Seeds          int
	Mismatches     int
	ScreenFailures int
	Regens         int // seeds that needed more than one screening attempt
	TotalStatic    int // static instructions across all programs
	MaxBound       int64
}

// Summarize folds a report list into aggregate counts.
func Summarize(reports []SeedReport) Summary {
	s := Summary{Seeds: len(reports)}
	for i := range reports {
		r := &reports[i]
		switch {
		case r.ScreenFailure != "":
			s.ScreenFailures++
		case r.Divergence != nil:
			s.Mismatches++
		}
		if r.Attempts > 1 {
			s.Regens++
		}
		s.TotalStatic += r.Insts
		if r.MaxInsts > s.MaxBound {
			s.MaxBound = r.MaxInsts
		}
	}
	return s
}
