package fuzz

import (
	"fmt"
	"testing"

	"paraverser/internal/isa"
)

// TestGeneratorDeterministic: the same seed must yield an identical
// program — the whole campaign's replayability rests on this.
func TestGeneratorDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0xDEADBEEF} {
		a := Generate(seed, 200).Program()
		b := Generate(seed, 200).Program()
		if fmt.Sprintf("%v%x", a.Insts, a.Data) != fmt.Sprintf("%v%x", b.Insts, b.Data) {
			t.Fatalf("seed %#x: two generations differ", seed)
		}
	}
}

// TestGeneratedProgramsValidate: every generated candidate must at
// least pass structural validation, whatever the verifier later says.
func TestGeneratedProgramsValidate(t *testing.T) {
	r := rng(7)
	for i := 0; i < 32; i++ {
		seed := r.next()
		p := Generate(seed, 150).Program()
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %#x: generated program fails validation: %v", seed, err)
		}
	}
}

// TestScreenRejectsBrokenProgram: screening must catch a program the
// verifier flags — here an out-of-bounds store at a constant address
// past the data segment.
func TestScreenRejectsBrokenProgram(t *testing.T) {
	p := &isa.Program{
		Name:     "broken",
		DataBase: isa.DefaultDataBase,
		Data:     make([]byte, 8),
		Entries:  []uint64{0},
		Insts: []isa.Inst{
			{Op: isa.OpLUI, Rd: 10, Imm: int64(isa.DefaultDataBase)},
			{Op: isa.OpST, Rs1: 10, Rs2: isa.Zero, Imm: 64, Size: 8},
			{Op: isa.OpHALT},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("fixture must validate structurally: %v", err)
	}
	if _, err := Screen(p); err == nil {
		t.Fatalf("Screen accepted a program with a provably out-of-bounds store")
	}
}

// TestScreenRejectsUnboundedProgram: no proved termination bound means
// no differential run.
func TestScreenRejectsUnboundedProgram(t *testing.T) {
	p := &isa.Program{
		Name:    "spin",
		Entries: []uint64{0},
		Insts: []isa.Inst{
			{Op: isa.OpJAL, Rd: isa.Zero, Imm: 0}, // jump-to-self
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("fixture must validate structurally: %v", err)
	}
	if _, err := Screen(p); err == nil {
		t.Fatalf("Screen accepted a program with no termination bound")
	}
}

// flattenReports renders a campaign's full observable outcome for
// byte-equality comparison across worker counts.
func flattenReports(reports []SeedReport) string {
	out := ""
	for i, r := range reports {
		out += fmt.Sprintf("%d: seed=%#x insts=%d attempts=%d bound=%d div=%v screen=%q\n",
			i, r.Seed, r.Insts, r.Attempts, r.MaxInsts, r.Divergence, r.ScreenFailure)
	}
	return out
}

// TestCampaignDeterministicAcrossWorkers: the campaign's report list
// must be byte-identical at any worker count — seeds own disjoint
// state and results are stored by index.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	opt := Options{Seeds: 8, Insts: 120, BaseSeed: 99}
	opt.Workers = 1
	seq := Campaign(opt)
	opt.Workers = 4
	par := Campaign(opt)
	if a, b := flattenReports(seq), flattenReports(par); a != b {
		t.Fatalf("campaign diverged across worker counts:\n--- workers=1 ---\n%s--- workers=4 ---\n%s", a, b)
	}
}

// TestPinnedCorpusClean is the CI gate: a fixed corpus of seeds must
// screen and run differentially clean. Any mismatch here is either an
// engine bug or a verifier unsoundness — both ship-blockers.
func TestPinnedCorpusClean(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 8
	}
	reports := Campaign(Options{Seeds: seeds, Insts: 160, Workers: 4, BaseSeed: 0})
	s := Summarize(reports)
	if s.Mismatches != 0 || s.ScreenFailures != 0 {
		for _, r := range reports {
			if r.Divergence != nil {
				t.Errorf("seed %#x: %v (minimized: %v insts)", r.Seed, r.Divergence, minLen(r.Minimized))
			}
			if r.ScreenFailure != "" {
				t.Errorf("seed %#x: screening never passed: %s", r.Seed, r.ScreenFailure)
			}
		}
		t.Fatalf("pinned corpus not clean: %+v", s)
	}
	if s.TotalStatic == 0 || s.MaxBound <= 0 {
		t.Fatalf("campaign ran no code: %+v", s)
	}
}

func minLen(p *isa.Program) int {
	if p == nil {
		return -1
	}
	return len(p.Insts)
}

// TestNaNInFPRegisterVerifiesClean pins the regression the fuzzer
// found: a program that parks a NaN in an FP register (via fmv.f.i of
// an arbitrary integer bit pattern) must verify clean in divergent
// mode — the end-state compare is bitwise, not float equality.
func TestNaNInFPRegisterVerifiesClean(t *testing.T) {
	p := &isa.Program{
		Name:    "nan-park",
		Entries: []uint64{0},
		Insts: []isa.Inst{
			{Op: isa.OpADDI, Rd: 10, Rs1: isa.Zero, Imm: -3098}, // 0xFFFF...F3E6: NaN bits
			{Op: isa.OpFMVIF, Rd: 3, Rs1: 10},
			{Op: isa.OpADD, Rd: 11, Rs1: 10, Rs2: 10},
			{Op: isa.OpHALT},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("fixture must validate: %v", err)
	}
	if _, err := Screen(p); err != nil {
		t.Fatalf("fixture must screen clean: %v", err)
	}
	if d := Differential(p, 1); d != nil {
		t.Fatalf("NaN-parking program diverged: %v", d)
	}
}

// TestMinimizeShrinksInjectedDivergence: inject a synthetic divergence
// predicate (any program containing a specific gadget's SWP) — the
// minimizer isn't testable against real engine bugs (there are none),
// so this exercises the ddmin mechanics via the public Emit path
// instead: the minimizer must preserve reproduction while dropping
// gadgets, using the real Screen+Differential pipeline on a template
// known clean, expecting nil (no shrink reproduces a non-existent
// divergence).
func TestMinimizeNoFalseShrink(t *testing.T) {
	tmpl := Generate(3, 150)
	if _, err := Screen(tmpl.Program()); err != nil {
		t.Skipf("seed 3 did not screen: %v", err)
	}
	// The full program runs clean, so no subset can "reproduce" a
	// divergence; Minimize must return nil rather than fabricating one.
	if got := Minimize(tmpl, 3, "strategy:lockstep"); got != nil {
		t.Fatalf("Minimize fabricated a reproduction of a non-existent divergence")
	}
}

// TestEmitSubsetsSelfConsistent: every single-gadget subset of a
// template must emit a structurally valid program — the property the
// minimizer's no-offset-surgery design rests on.
func TestEmitSubsetsSelfConsistent(t *testing.T) {
	tmpl := Generate(11, 200)
	n := tmpl.NumGadgets()
	for i := 0; i < n; i++ {
		mask := make([]bool, n)
		mask[i] = true
		p := tmpl.Emit(mask)
		if err := p.Validate(); err != nil {
			t.Fatalf("single-gadget subset %d fails validation: %v", i, err)
		}
	}
	// And the empty subset: preamble + HALT alone.
	if err := tmpl.Emit(make([]bool, n)).Validate(); err != nil {
		t.Fatalf("empty subset fails validation: %v", err)
	}
}
