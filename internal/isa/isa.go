//paralint:deterministic

// Package isa defines the instruction set architecture used throughout the
// ParaVerser reproduction: a small 64-bit RISC ISA with integer and
// floating-point arithmetic, sized loads and stores, scatter/gather
// multi-address accesses, an atomic swap, control flow, and the
// non-repeatable instructions (random numbers, cycle-counter reads) whose
// values must be captured in a load-store log for exact replay.
//
// The ISA deliberately contains one representative of every instruction
// class that the paper's load-store-log format distinguishes (section IV-B
// of the paper): plain loads, plain stores, instructions with both a load
// and a store payload (SWP), instructions with more than one base address
// (GLD/SST), and non-repeatable reads.
package isa

import (
	"fmt"
	"sync/atomic"
)

// Reg identifies an architectural register. Integer registers are X0-X31
// (X0 is hard-wired to zero); floating-point registers are F0-F31 and are
// addressed by the same Reg values in FP-class instructions.
type Reg uint8

// NumIntRegs and NumFPRegs give the architectural register file sizes.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
)

// Zero is the hard-wired zero register.
const Zero Reg = 0

// Conventional register aliases used by the assembler and workloads.
const (
	RA Reg = 1 // return address
	SP Reg = 2 // stack pointer
	GP Reg = 3 // global pointer (base of data segment)
	TP Reg = 4 // thread pointer (per-hart scratch)
)

// Op is an opcode.
type Op uint8

// Opcodes. Enums start at one so the zero value is invalid and easy to
// catch in tests.
const (
	OpInvalid Op = iota

	// Integer register-register ALU.
	OpADD
	OpSUB
	OpMUL
	OpDIV // signed; divide by zero yields all-ones (no trap)
	OpREM
	OpAND
	OpOR
	OpXOR
	OpSLL
	OpSRL
	OpSRA
	OpSLT
	OpSLTU

	// Integer register-immediate ALU.
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLLI
	OpSRLI
	OpSRAI
	OpSLTI
	OpLUI // rd = imm << 12

	// Floating point (operands in F registers).
	OpFADD
	OpFSUB
	OpFMUL
	OpFDIV
	OpFSQRT
	OpFMIN
	OpFMAX
	OpFNEG
	OpFABS

	// FP/int conversion and comparison (mixed register files).
	OpFCVTIF // Fd = float64(Xs1)
	OpFCVTFI // Xd = int64(Fs1)
	OpFMVIF  // Fd = bits(Xs1)
	OpFMVFI  // Xd = bits(Fs1)
	OpFEQ    // Xd = Fs1 == Fs2
	OpFLT    // Xd = Fs1 <  Fs2

	// Memory. Effective address is Xs1 + Imm. Size is 1, 2, 4 or 8 bytes.
	OpLD  // Xd   = zero-extended load
	OpST  // mem  = low Size bytes of Xs2
	OpFLD // Fd   = load (Size must be 8)
	OpFST // mem  = Fs2  (Size must be 8)

	// Multi-address memory instructions (scatter/gather class, note 10 of
	// the paper: the LSL entry stores each address, size and data in
	// sequence, lowest address first).
	OpGLD // Xd = mem[Xs1+Imm] + mem[Xs2]  (two loads, one instruction)
	OpSST // mem[Xs1+Imm] = Xd; mem[Xs2] = Xd (two stores, one instruction)

	// Atomic swap: Xd = mem[Xs1]; mem[Xs1] = Xs2. The LSL entry carries
	// first the loaded data then the stored data.
	OpSWP

	// Control flow. Branch target is PC + Imm (instruction-indexed).
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	OpJAL  // Xd = PC+1; PC += Imm
	OpJALR // Xd = PC+1; PC = Xs1 + Imm

	// Non-repeatable instructions: their results cannot be recomputed on
	// a checker core and must be replayed from the log.
	OpRAND  // Xd = pseudo-random value (per-hart stream)
	OpCYCLE // Xd = retired-instruction count (a timer read)

	// Misc.
	OpNOP
	// OpPAUSE is a spin-wait hint (Arm YIELD/WFE, x86 PAUSE): no
	// architectural effect, but the core's front end idles for tens of
	// cycles, so spin loops burn few instructions while waiting.
	OpPAUSE
	OpHALT

	numOps // sentinel; keep last
)

// Class groups opcodes by the functional unit they occupy and by how the
// load-store log treats them.
type Class uint8

// Instruction classes. Enums start at one.
const (
	ClassInvalid Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassFPAdd // add/sub/min/max/neg/abs/cmp/convert
	ClassFPMul
	ClassFPDiv // div and sqrt
	ClassLoad
	ClassStore
	ClassAtomic // both load and store payloads
	ClassBranch // conditional
	ClassJump   // unconditional
	ClassNonRepeat
	ClassNop

	numClasses // sentinel; keep last
)

// NumClasses is the number of class values including ClassInvalid, sized
// for dense per-class lookup tables (functional-unit pools and the like)
// indexed directly by Class.
const NumClasses = int(numClasses)

var classNames = [NumClasses]string{
	ClassInvalid:   "invalid",
	ClassIntALU:    "int-alu",
	ClassIntMul:    "int-mul",
	ClassIntDiv:    "int-div",
	ClassFPAdd:     "fp-add",
	ClassFPMul:     "fp-mul",
	ClassFPDiv:     "fp-div",
	ClassLoad:      "load",
	ClassStore:     "store",
	ClassAtomic:    "atomic",
	ClassBranch:    "branch",
	ClassJump:      "jump",
	ClassNonRepeat: "non-repeat",
	ClassNop:       "nop",
}

// String names the class for statistics labels and diagnostics.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Inst is a decoded instruction. Programs hold instructions in decoded
// form; Encode/Decode provide the 8-byte binary form used for instruction
// footprint accounting and on-disk representation.
type Inst struct {
	Op   Op
	Rd   Reg
	Rs1  Reg
	Rs2  Reg
	Size uint8 // memory access size in bytes (1, 2, 4, 8)
	Imm  int64
}

// Program is a sequence of instructions plus an initialised data segment.
// PCs are instruction indices; the instruction memory footprint for cache
// modelling is InstBytes per instruction.
type Program struct {
	Name  string
	Insts []Inst
	// Data maps a byte offset from the data-segment base to initial
	// contents. The emulator materialises it at DataBase.
	Data     []byte
	DataBase uint64
	// Entry points, one per hart. A single-threaded program has one.
	Entries []uint64

	// dec is the lazily built predecode table (see Decoded). Insts must
	// not be mutated after the first Decoded call.
	dec atomic.Pointer[[]DecInst]
	// blocks is the lazily built basic-block table (see Blocks).
	blocks atomic.Pointer[BlockTable]
}

// InstBytes is the encoded size of one instruction, used for instruction
// cache modelling.
const InstBytes = 8

// CodeBase is the virtual address at which instruction memory begins.
const CodeBase uint64 = 0x10000

// DefaultDataBase is where program data segments are placed unless the
// program specifies otherwise.
const DefaultDataBase uint64 = 0x1000_0000

// StackBase is the top of the per-hart stack region. Hart h's stack
// pointer starts at StackBase - h*StackStride.
const (
	StackBase   uint64 = 0x7000_0000
	StackStride uint64 = 1 << 20
)

// ClassOf returns the class of an opcode.
func ClassOf(op Op) Class {
	switch op {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA, OpSLT, OpSLTU,
		OpADDI, OpANDI, OpORI, OpXORI, OpSLLI, OpSRLI, OpSRAI, OpSLTI, OpLUI:
		return ClassIntALU
	case OpMUL:
		return ClassIntMul
	case OpDIV, OpREM:
		return ClassIntDiv
	case OpFADD, OpFSUB, OpFMIN, OpFMAX, OpFNEG, OpFABS,
		OpFCVTIF, OpFCVTFI, OpFMVIF, OpFMVFI, OpFEQ, OpFLT:
		return ClassFPAdd
	case OpFMUL:
		return ClassFPMul
	case OpFDIV, OpFSQRT:
		return ClassFPDiv
	case OpLD, OpFLD, OpGLD:
		return ClassLoad
	case OpST, OpFST, OpSST:
		return ClassStore
	case OpSWP:
		return ClassAtomic
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return ClassBranch
	case OpJAL, OpJALR:
		return ClassJump
	case OpRAND, OpCYCLE:
		return ClassNonRepeat
	case OpNOP, OpPAUSE, OpHALT:
		return ClassNop
	default:
		return ClassInvalid
	}
}

// IsMem reports whether the opcode performs any memory access.
func IsMem(op Op) bool {
	switch ClassOf(op) {
	case ClassLoad, ClassStore, ClassAtomic:
		return true
	default:
		return false
	}
}

// IsLogged reports whether the opcode produces a load-store-log entry:
// every memory access plus every non-repeatable instruction.
func IsLogged(op Op) bool {
	c := ClassOf(op)
	return c == ClassLoad || c == ClassStore || c == ClassAtomic || c == ClassNonRepeat
}

// IsFP reports whether the opcode executes on the floating-point pipeline.
func IsFP(op Op) bool {
	switch ClassOf(op) {
	case ClassFPAdd, ClassFPMul, ClassFPDiv:
		return true
	default:
		return false
	}
}

// IsBranch reports whether the opcode is any control-flow instruction.
func IsBranch(op Op) bool {
	c := ClassOf(op)
	return c == ClassBranch || c == ClassJump
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op > OpInvalid && op < numOps }

var opNames = map[Op]string{
	OpADD: "add", OpSUB: "sub", OpMUL: "mul", OpDIV: "div", OpREM: "rem",
	OpAND: "and", OpOR: "or", OpXOR: "xor", OpSLL: "sll", OpSRL: "srl",
	OpSRA: "sra", OpSLT: "slt", OpSLTU: "sltu",
	OpADDI: "addi", OpANDI: "andi", OpORI: "ori", OpXORI: "xori",
	OpSLLI: "slli", OpSRLI: "srli", OpSRAI: "srai", OpSLTI: "slti", OpLUI: "lui",
	OpFADD: "fadd", OpFSUB: "fsub", OpFMUL: "fmul", OpFDIV: "fdiv",
	OpFSQRT: "fsqrt", OpFMIN: "fmin", OpFMAX: "fmax", OpFNEG: "fneg", OpFABS: "fabs",
	OpFCVTIF: "fcvt.f.i", OpFCVTFI: "fcvt.i.f", OpFMVIF: "fmv.f.i", OpFMVFI: "fmv.i.f",
	OpFEQ: "feq", OpFLT: "flt",
	OpLD: "ld", OpST: "st", OpFLD: "fld", OpFST: "fst",
	OpGLD: "gld", OpSST: "sst", OpSWP: "swp",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpBLTU: "bltu", OpBGEU: "bgeu", OpJAL: "jal", OpJALR: "jalr",
	OpRAND: "rand", OpCYCLE: "cycle", OpNOP: "nop", OpPAUSE: "pause", OpHALT: "halt",
}

// String returns the assembler mnemonic for the opcode.
func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch ClassOf(in.Op) {
	case ClassNop:
		return in.Op.String()
	case ClassLoad, ClassStore, ClassAtomic:
		return fmt.Sprintf("%s.%d r%d, r%d, %d(r%d)", in.Op, in.Size, in.Rd, in.Rs2, in.Imm, in.Rs1)
	case ClassBranch:
		return fmt.Sprintf("%s r%d, r%d, %+d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case ClassJump:
		return fmt.Sprintf("%s r%d, r%d, %+d", in.Op, in.Rd, in.Rs1, in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Rs2, in.Imm)
	}
}

// NumInsts returns the instruction count of the program.
func (p *Program) NumInsts() int { return len(p.Insts) }

// CodeBytes returns the instruction-memory footprint of the program.
func (p *Program) CodeBytes() int { return len(p.Insts) * InstBytes }

// Validate checks structural invariants of the program: all opcodes
// defined, all branch targets in range, memory sizes legal, and at least
// one entry point in range.
func (p *Program) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("program %q: no instructions", p.Name)
	}
	if len(p.Entries) == 0 {
		return fmt.Errorf("program %q: no entry points", p.Name)
	}
	for _, e := range p.Entries {
		if e >= uint64(len(p.Insts)) {
			return fmt.Errorf("program %q: entry %d out of range (%d insts)", p.Name, e, len(p.Insts))
		}
	}
	for pc, in := range p.Insts {
		if !in.Op.Valid() {
			return fmt.Errorf("program %q: pc %d: invalid opcode %d", p.Name, pc, in.Op)
		}
		if IsMem(in.Op) {
			switch in.Size {
			case 1, 2, 4, 8:
			default:
				return fmt.Errorf("program %q: pc %d (%s): bad size %d", p.Name, pc, in, in.Size)
			}
		}
		if ClassOf(in.Op) == ClassBranch || in.Op == OpJAL {
			tgt := int64(pc) + in.Imm
			if tgt < 0 || tgt >= int64(len(p.Insts)) {
				return fmt.Errorf("program %q: pc %d (%s): target %d out of range", p.Name, pc, in, tgt)
			}
		}
		if in.Rd >= NumIntRegs || in.Rs1 >= NumIntRegs || in.Rs2 >= NumIntRegs {
			return fmt.Errorf("program %q: pc %d (%s): register out of range", p.Name, pc, in)
		}
	}
	return nil
}
