package isa

import "fmt"

// Binary instruction encoding. Each instruction packs into 8 bytes:
//
//	byte 0    opcode
//	byte 1    rd
//	byte 2    rs1
//	byte 3    rs2
//	byte 4    size (memory ops) | unused
//	bytes 5-7 unused (alignment)
//	          followed by nothing: the immediate is carried in a side
//	          table? No — immediates are common, so we use a 16-byte
//	          encoding when the immediate does not fit in 24 bits.
//
// To keep decoding trivial and the footprint fixed (InstBytes), the
// immediate is truncated to a signed 24-bit field in bytes 5-7; programs
// with larger immediates must build them with LUI+ADDI (the assembler does
// this automatically via Li). Encode returns an error for out-of-range
// immediates on other opcodes.

const (
	immBits = 24
	immMax  = 1<<(immBits-1) - 1
	immMin  = -1 << (immBits - 1)
)

// Encode packs the instruction into its 8-byte binary form.
func (in Inst) Encode() ([InstBytes]byte, error) {
	var b [InstBytes]byte
	if !in.Op.Valid() {
		return b, fmt.Errorf("encode: invalid opcode %d", in.Op)
	}
	imm := in.Imm
	if in.Op == OpLUI {
		// LUI immediates are a 12-bit-shifted value; store the raw
		// (unshifted) 24-bit field.
		imm = in.Imm >> 12
		if imm<<12 != in.Imm {
			return b, fmt.Errorf("encode: %s: immediate %d not a multiple of 4096", in, in.Imm)
		}
	}
	if imm > immMax || imm < immMin {
		return b, fmt.Errorf("encode: %s: immediate %d exceeds 24-bit field", in, in.Imm)
	}
	b[0] = byte(in.Op)
	b[1] = byte(in.Rd)
	b[2] = byte(in.Rs1)
	b[3] = byte(in.Rs2)
	b[4] = in.Size
	u := uint32(imm) & 0xFF_FFFF
	b[5] = byte(u)
	b[6] = byte(u >> 8)
	b[7] = byte(u >> 16)
	return b, nil
}

// DecodeInst unpacks an 8-byte binary instruction.
func DecodeInst(b [InstBytes]byte) (Inst, error) {
	op := Op(b[0])
	if !op.Valid() {
		return Inst{}, fmt.Errorf("decode: invalid opcode %d", b[0])
	}
	u := uint32(b[5]) | uint32(b[6])<<8 | uint32(b[7])<<16
	// Sign-extend the 24-bit immediate.
	imm := int64(int32(u<<8) >> 8)
	if op == OpLUI {
		imm <<= 12
	}
	return Inst{
		Op:   op,
		Rd:   Reg(b[1]),
		Rs1:  Reg(b[2]),
		Rs2:  Reg(b[3]),
		Size: b[4],
		Imm:  imm,
	}, nil
}

// EncodeProgram serialises the program's instructions into a flat byte
// slice (the simulated text segment).
func EncodeProgram(p *Program) ([]byte, error) {
	out := make([]byte, 0, len(p.Insts)*InstBytes)
	for pc, in := range p.Insts {
		b, err := in.Encode()
		if err != nil {
			return nil, fmt.Errorf("pc %d: %w", pc, err)
		}
		out = append(out, b[:]...)
	}
	return out, nil
}

// DecodeProgram parses a flat text segment back into instructions.
func DecodeProgram(text []byte) ([]Inst, error) {
	if len(text)%InstBytes != 0 {
		return nil, fmt.Errorf("decode: text length %d not a multiple of %d", len(text), InstBytes)
	}
	insts := make([]Inst, 0, len(text)/InstBytes)
	for off := 0; off < len(text); off += InstBytes {
		var b [InstBytes]byte
		copy(b[:], text[off:off+InstBytes])
		in, err := DecodeInst(b)
		if err != nil {
			return nil, fmt.Errorf("pc %d: %w", off/InstBytes, err)
		}
		insts = append(insts, in)
	}
	return insts, nil
}

// PCToAddr converts an instruction index to its simulated byte address,
// used by instruction-cache modelling.
func PCToAddr(pc uint64) uint64 { return CodeBase + pc*InstBytes }
