package isa

// This file is the predecode pass: everything the emulator and the timing
// models would otherwise re-derive per executed instruction (class
// switches, FU-pool mapping, operand-readiness rules, immediate
// conversion) is materialised once per static instruction and cached on
// the Program. The hot loops then index a flat table instead of running
// opcode switches millions of times per simulated run.

// DecFlags is a bitset of predecoded instruction properties.
type DecFlags uint8

// Predecoded flag bits.
const (
	// DecMem: the instruction performs at least one memory access.
	DecMem DecFlags = 1 << iota
	// DecLogged: the instruction produces a load-store-log entry.
	DecLogged
	// DecCondBranch: conditional branch (ClassBranch).
	DecCondBranch
	// DecJump: unconditional control flow (ClassJump).
	DecJump
	// DecFP: executes on the floating-point pipeline.
	DecFP
)

// DecBranch matches any control-flow instruction.
const DecBranch = DecCondBranch | DecJump

// MaxIntSrcs and MaxFPSrcs bound the operand-readiness descriptor: SST
// consults three integer registers (Rs1, Rs2 and the stored Rd); FP
// arithmetic consults at most two FP registers.
const (
	MaxIntSrcs = 3
	MaxFPSrcs  = 2
)

// DecInst is one predecoded instruction: the raw instruction plus every
// per-op derivative the emulate+consume path needs. Built once per
// program by Program.Decoded.
type DecInst struct {
	Inst    Inst
	Class   Class
	FUClass Class
	// ImmU is Imm converted to uint64 once (the form address generation
	// and immediate ALU ops consume).
	ImmU  uint64
	Flags DecFlags
	// IntSrc[:NIntSrc] and FPSrc[:NFPSrc] are the registers whose
	// readiness gates issue, mirroring the timing model's scoreboard
	// rules exactly (X0 included: it is hard-wired and never written, so
	// its ready time stays zero).
	NIntSrc uint8
	NFPSrc  uint8
	IntSrc  [MaxIntSrcs]Reg
	FPSrc   [MaxFPSrcs]Reg
}

// FUClassOf maps an instruction class to the functional-unit pool that
// executes it: jumps resolve on the branch unit, non-repeatable reads and
// nops occupy an integer ALU slot, atomics use the load pipe.
func FUClassOf(class Class) Class {
	switch class {
	case ClassJump:
		return ClassBranch
	case ClassNonRepeat:
		return ClassIntALU
	case ClassAtomic:
		return ClassLoad
	case ClassNop:
		return ClassIntALU
	default:
		return class
	}
}

// Predecode predecodes a single instruction.
func Predecode(in Inst) DecInst {
	class := ClassOf(in.Op)
	d := DecInst{
		Inst:    in,
		Class:   class,
		FUClass: FUClassOf(class),
		ImmU:    uint64(in.Imm),
	}
	switch class {
	case ClassLoad, ClassStore, ClassAtomic:
		d.Flags |= DecMem | DecLogged
	case ClassNonRepeat:
		d.Flags |= DecLogged
	case ClassBranch:
		d.Flags |= DecCondBranch
	case ClassJump:
		d.Flags |= DecJump
	case ClassFPAdd, ClassFPMul, ClassFPDiv:
		d.Flags |= DecFP
	}

	addInt := func(r Reg) {
		d.IntSrc[d.NIntSrc] = r
		d.NIntSrc++
	}
	addFP := func(r Reg) {
		d.FPSrc[d.NFPSrc] = r
		d.NFPSrc++
	}
	switch class {
	case ClassFPAdd, ClassFPMul, ClassFPDiv:
		switch in.Op {
		case OpFCVTIF, OpFMVIF:
			addInt(in.Rs1)
		default:
			addFP(in.Rs1)
			addFP(in.Rs2)
		}
	case ClassLoad:
		addInt(in.Rs1)
		if in.Op == OpGLD {
			addInt(in.Rs2)
		}
	case ClassStore:
		addInt(in.Rs1)
		if in.Op == OpFST {
			addFP(in.Rs2)
		} else {
			addInt(in.Rs2)
		}
		if in.Op == OpSST {
			addInt(in.Rd)
		}
	case ClassAtomic:
		addInt(in.Rs1)
		addInt(in.Rs2)
	case ClassBranch:
		addInt(in.Rs1)
		addInt(in.Rs2)
	case ClassJump:
		if in.Op == OpJALR {
			addInt(in.Rs1)
		}
	case ClassNop, ClassNonRepeat:
	default: // integer ALU/mul/div
		addInt(in.Rs1)
		switch in.Op {
		case OpADDI, OpANDI, OpORI, OpXORI,
			OpSLLI, OpSRLI, OpSRAI, OpSLTI, OpLUI:
		default:
			addInt(in.Rs2)
		}
	}
	return d
}

// predecodeProgram predecodes every instruction of a program.
func predecodeProgram(insts []Inst) []DecInst {
	dec := make([]DecInst, len(insts))
	for i, in := range insts {
		dec[i] = Predecode(in)
	}
	return dec
}

// Decoded returns the program's predecode table, building and caching it
// on first use. Safe for concurrent use; racing builders produce
// identical tables, so last-write-wins is harmless. Insts must not be
// mutated after the first call.
func (p *Program) Decoded() []DecInst {
	if t := p.dec.Load(); t != nil {
		return *t
	}
	t := predecodeProgram(p.Insts)
	p.dec.Store(&t)
	return t
}
