package isa_test

import (
	"testing"

	"paraverser/internal/isa"
	"paraverser/internal/workload/spec"
)

// refDecode is an independent reference predecoder transcribed from the
// pre-predecode per-step logic (the timing model's srcReady operand
// rules, its FU-pool mapping, and the emulator's immediate-form and
// flag derivations). TestPredecodeMatchesReference diffs Predecode
// against it instruction by instruction, so any drift between the
// cached table and the semantics the hot loops used to re-derive shows
// up as a field-level mismatch.
func refDecode(in isa.Inst) isa.DecInst {
	class := isa.ClassOf(in.Op)
	d := isa.DecInst{Inst: in, Class: class, ImmU: uint64(in.Imm)}

	// FU-pool mapping (was cpu.fuClassFor).
	switch class {
	case isa.ClassJump:
		d.FUClass = isa.ClassBranch
	case isa.ClassNonRepeat, isa.ClassNop:
		d.FUClass = isa.ClassIntALU
	case isa.ClassAtomic:
		d.FUClass = isa.ClassLoad
	default:
		d.FUClass = class
	}

	// Property flags.
	switch class {
	case isa.ClassLoad, isa.ClassStore, isa.ClassAtomic:
		d.Flags = isa.DecMem | isa.DecLogged
	case isa.ClassNonRepeat:
		d.Flags = isa.DecLogged
	case isa.ClassBranch:
		d.Flags = isa.DecCondBranch
	case isa.ClassJump:
		d.Flags = isa.DecJump
	case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
		d.Flags = isa.DecFP
	}

	// Operand-readiness descriptor (was cpu.(*Core).srcReady).
	rInt := func(r isa.Reg) { d.IntSrc[d.NIntSrc] = r; d.NIntSrc++ }
	rFP := func(r isa.Reg) { d.FPSrc[d.NFPSrc] = r; d.NFPSrc++ }
	switch class {
	case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
		switch in.Op {
		case isa.OpFCVTIF, isa.OpFMVIF:
			rInt(in.Rs1)
		default:
			rFP(in.Rs1)
			rFP(in.Rs2)
		}
	case isa.ClassLoad:
		rInt(in.Rs1)
		if in.Op == isa.OpGLD {
			rInt(in.Rs2)
		}
	case isa.ClassStore:
		rInt(in.Rs1)
		if in.Op == isa.OpFST {
			rFP(in.Rs2)
		} else {
			rInt(in.Rs2)
		}
		if in.Op == isa.OpSST {
			rInt(in.Rd)
		}
	case isa.ClassAtomic:
		rInt(in.Rs1)
		rInt(in.Rs2)
	case isa.ClassBranch:
		rInt(in.Rs1)
		rInt(in.Rs2)
	case isa.ClassJump:
		if in.Op == isa.OpJALR {
			rInt(in.Rs1)
		}
	case isa.ClassNop, isa.ClassNonRepeat:
	default: // integer ALU/mul/div
		rInt(in.Rs1)
		switch in.Op {
		case isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI,
			isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpSLTI, isa.OpLUI:
		default:
			rInt(in.Rs2)
		}
	}
	return d
}

func diffDec(t *testing.T, ctx string, in isa.Inst, got, want isa.DecInst) {
	t.Helper()
	if got != want {
		t.Errorf("%s: op %v: predecode mismatch\n got %+v\nwant %+v", ctx, in.Op, got, want)
	}
}

// TestPredecodeMatchesReference covers every valid opcode with
// exhaustive register/immediate patterns, including negative immediates
// (whose uint64 conversion feeds address generation directly).
func TestPredecodeMatchesReference(t *testing.T) {
	imms := []int64{0, 1, -1, 8, -8, 4096, -4096, 1 << 40, -(1 << 40)}
	regs := []isa.Reg{0, 1, 2, 15, 31}
	for op := isa.Op(1); op.Valid(); op++ {
		for _, imm := range imms {
			for _, rd := range regs {
				in := isa.Inst{Op: op, Rd: rd, Rs1: 4, Rs2: 5, Imm: imm}
				diffDec(t, "synthetic", in, isa.Predecode(in), refDecode(in))
			}
		}
	}
}

// TestProgramDecodedMatchesReference diffs the cached per-program
// predecode table against the reference for every SPEC benchmark
// generator profile — the instruction streams the experiments actually
// execute.
func TestProgramDecodedMatchesReference(t *testing.T) {
	for _, p := range spec.Profiles() {
		prog, err := p.Build(50)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		dec := prog.Decoded()
		if len(dec) != len(prog.Insts) {
			t.Fatalf("%s: table has %d entries for %d instructions", p.Name, len(dec), len(prog.Insts))
		}
		for i, in := range prog.Insts {
			diffDec(t, p.Name, in, dec[i], refDecode(in))
		}
		// The table is cached: a second call must return the same slice.
		if again := prog.Decoded(); &again[0] != &dec[0] {
			t.Errorf("%s: Decoded rebuilt the table instead of caching it", p.Name)
		}
	}
}
