package isa

// This file is the basic-block translation pass: the program is
// partitioned once into single-entry straight-line blocks so the
// emulator's block executor can hoist PC bounds checks, fuel accounting
// and effect-batch bookkeeping out of the per-instruction loop. A block
// is cut after every control-flow instruction (conditional branch, JAL,
// JALR) and after HALT, and before every leader — an entry point or a
// static branch/JAL target — so control can only ever enter a block at
// its first instruction.

// BlockTable is the per-program basic-block partition. It is a flat
// table indexed by pc: End[pc] is the exclusive end of the straight-line
// block run beginning at pc, i.e. instructions [pc, End[pc]) execute
// sequentially and only the last of them can be a control-flow
// instruction or HALT. Indexing by every pc (not just leaders) lets the
// executor resume mid-block after an interrupt boundary without a
// leader lookup.
type BlockTable struct {
	// End[pc] is the exclusive end of the block run starting at pc.
	// Always > pc and <= NumInsts.
	End []uint32
	// Leader[pc] marks block entries: program entry points, static
	// branch/JAL targets, and fall-through successors of control flow
	// and HALT. Exported for CFG cross-validation in tests.
	Leader []bool
}

// cutsAfter reports whether a block must end immediately after this
// instruction: control flow may leave, so the next instruction (if any)
// starts a new block. JALR is indirect — it has no static target to mark
// as a leader, but it still terminates its block.
func cutsAfter(op Op) bool {
	switch ClassOf(op) {
	case ClassBranch, ClassJump:
		return true
	}
	return op == OpHALT
}

// staticTarget returns the instruction-index target of a statically
// resolvable control transfer and whether one exists. Conditional
// branches and JAL encode target = pc + Imm; JALR is register-indirect.
func staticTarget(pc int, in Inst) (int64, bool) {
	if ClassOf(in.Op) == ClassBranch || in.Op == OpJAL {
		return int64(pc) + in.Imm, true
	}
	return 0, false
}

// BuildBlockTable partitions insts into basic blocks. Out-of-range
// static targets (rejected by Program.Validate, which every machine
// constructor runs first) are ignored rather than marked.
func BuildBlockTable(insts []Inst, entries []uint64) *BlockTable {
	n := len(insts)
	t := &BlockTable{End: make([]uint32, n), Leader: make([]bool, n)}
	for _, e := range entries {
		if e < uint64(n) {
			t.Leader[e] = true
		}
	}
	for pc, in := range insts {
		if tgt, ok := staticTarget(pc, in); ok && tgt >= 0 && tgt < int64(n) {
			t.Leader[tgt] = true
		}
		if cutsAfter(in.Op) && pc+1 < n {
			t.Leader[pc+1] = true
		}
	}
	for pc := n - 1; pc >= 0; pc-- {
		switch {
		case cutsAfter(insts[pc].Op) || pc+1 == n || t.Leader[pc+1]:
			t.End[pc] = uint32(pc + 1)
		default:
			t.End[pc] = t.End[pc+1]
		}
	}
	return t
}

// Blocks returns the program's basic-block table, building and caching
// it on first use alongside the predecode table. Safe for concurrent
// use; racing builders produce identical tables, so last-write-wins is
// harmless. Insts must not be mutated after the first call.
func (p *Program) Blocks() *BlockTable {
	if t := p.blocks.Load(); t != nil {
		return t
	}
	t := BuildBlockTable(p.Insts, p.Entries)
	p.blocks.Store(t)
	return t
}
