package isa

import (
	"testing"
	"testing/quick"
)

func TestClassOfCoversAllOps(t *testing.T) {
	for op := OpInvalid + 1; op < numOps; op++ {
		if ClassOf(op) == ClassInvalid {
			t.Errorf("op %s has no class", op)
		}
		if op.String() == "" {
			t.Errorf("op %d has no name", op)
		}
	}
}

func TestClassOfInvalid(t *testing.T) {
	if got := ClassOf(OpInvalid); got != ClassInvalid {
		t.Errorf("ClassOf(OpInvalid) = %v, want ClassInvalid", got)
	}
	if got := ClassOf(numOps); got != ClassInvalid {
		t.Errorf("ClassOf(numOps) = %v, want ClassInvalid", got)
	}
}

func TestIsLoggedMatchesClasses(t *testing.T) {
	wantLogged := map[Op]bool{
		OpLD: true, OpST: true, OpFLD: true, OpFST: true,
		OpGLD: true, OpSST: true, OpSWP: true, OpRAND: true, OpCYCLE: true,
	}
	for op := OpInvalid + 1; op < numOps; op++ {
		if got := IsLogged(op); got != wantLogged[op] {
			t.Errorf("IsLogged(%s) = %v, want %v", op, got, wantLogged[op])
		}
	}
}

func TestIsMem(t *testing.T) {
	memOps := []Op{OpLD, OpST, OpFLD, OpFST, OpGLD, OpSST, OpSWP}
	for _, op := range memOps {
		if !IsMem(op) {
			t.Errorf("IsMem(%s) = false, want true", op)
		}
	}
	if IsMem(OpADD) || IsMem(OpRAND) || IsMem(OpBEQ) {
		t.Error("non-memory op classified as memory")
	}
}

func TestIsBranch(t *testing.T) {
	for _, op := range []Op{OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU, OpJAL, OpJALR} {
		if !IsBranch(op) {
			t.Errorf("IsBranch(%s) = false", op)
		}
	}
	if IsBranch(OpADD) || IsBranch(OpLD) {
		t.Error("non-branch op classified as branch")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: OpADD, Rd: 5, Rs1: 6, Rs2: 7},
		{Op: OpADDI, Rd: 1, Rs1: 2, Imm: -42},
		{Op: OpLD, Rd: 3, Rs1: 4, Size: 8, Imm: 1024},
		{Op: OpST, Rs1: 4, Rs2: 9, Size: 2, Imm: -8},
		{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: -100},
		{Op: OpJAL, Rd: 1, Imm: 5000},
		{Op: OpLUI, Rd: 8, Imm: 0x7FF000},
		{Op: OpHALT},
		{Op: OpSWP, Rd: 10, Rs1: 11, Rs2: 12, Size: 8},
		{Op: OpFDIV, Rd: 30, Rs1: 31, Rs2: 29},
	}
	for _, in := range cases {
		b, err := in.Encode()
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		out, err := DecodeInst(b)
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		if out != in {
			t.Errorf("round trip: got %+v, want %+v", out, in)
		}
	}
}

func TestEncodeRejectsBadImmediate(t *testing.T) {
	if _, err := (Inst{Op: OpADDI, Imm: 1 << 30}).Encode(); err == nil {
		t.Error("want error for 30-bit immediate")
	}
	if _, err := (Inst{Op: OpLUI, Imm: 5}).Encode(); err == nil {
		t.Error("want error for non-4096-multiple LUI immediate")
	}
	if _, err := (Inst{Op: OpInvalid}).Encode(); err == nil {
		t.Error("want error for invalid opcode")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	// Property: any in-range instruction round-trips through the binary
	// encoding.
	f := func(opRaw, rd, rs1, rs2 uint8, imm int32) bool {
		op := Op(opRaw%uint8(numOps-1)) + 1
		in := Inst{
			Op:  op,
			Rd:  Reg(rd % NumIntRegs),
			Rs1: Reg(rs1 % NumIntRegs),
			Rs2: Reg(rs2 % NumIntRegs),
			Imm: int64(imm % (1 << 22)),
		}
		if IsMem(in.Op) {
			in.Size = 8
		}
		if in.Op == OpLUI {
			in.Imm = (in.Imm >> 12) << 12
		}
		b, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := DecodeInst(b)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProgramValidate(t *testing.T) {
	good := &Program{
		Name:    "good",
		Insts:   []Inst{{Op: OpADDI, Rd: 1, Imm: 1}, {Op: OpHALT}},
		Entries: []uint64{0},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}

	cases := map[string]*Program{
		"empty":        {Name: "e", Entries: []uint64{0}},
		"no entry":     {Name: "n", Insts: []Inst{{Op: OpHALT}}},
		"entry range":  {Name: "r", Insts: []Inst{{Op: OpHALT}}, Entries: []uint64{5}},
		"bad op":       {Name: "o", Insts: []Inst{{Op: OpInvalid}}, Entries: []uint64{0}},
		"bad size":     {Name: "s", Insts: []Inst{{Op: OpLD, Size: 3}}, Entries: []uint64{0}},
		"branch range": {Name: "b", Insts: []Inst{{Op: OpBEQ, Imm: 10}}, Entries: []uint64{0}},
		"bad reg":      {Name: "g", Insts: []Inst{{Op: OpADD, Rd: 40}}, Entries: []uint64{0}},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: want validation error", name)
		}
	}
}

func TestEncodeProgramRoundTrip(t *testing.T) {
	p := &Program{
		Name: "rt",
		Insts: []Inst{
			{Op: OpADDI, Rd: 1, Imm: 7},
			{Op: OpLD, Rd: 2, Rs1: 1, Size: 4, Imm: 16},
			{Op: OpHALT},
		},
		Entries: []uint64{0},
	}
	text, err := EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(text) != p.CodeBytes() {
		t.Errorf("text length %d, want %d", len(text), p.CodeBytes())
	}
	insts, err := DecodeProgram(text)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if insts[i] != p.Insts[i] {
			t.Errorf("inst %d: got %+v, want %+v", i, insts[i], p.Insts[i])
		}
	}
	if _, err := DecodeProgram(text[:5]); err == nil {
		t.Error("want error for truncated text")
	}
}

func TestPCToAddr(t *testing.T) {
	if PCToAddr(0) != CodeBase {
		t.Error("PCToAddr(0) != CodeBase")
	}
	if PCToAddr(10)-PCToAddr(9) != InstBytes {
		t.Error("PC stride != InstBytes")
	}
}
