package isa

import "testing"

// blockProg is a small branchy program exercising every cut kind:
//
//	0: ADDI x1, x0, 5
//	1: BEQ  x1, x0, +3   (target 4)
//	2: ADD  x2, x1, x1
//	3: JAL  x0, +2       (target 5)
//	4: SUB  x2, x1, x1
//	5: JALR x0, x1, 0
//	6: NOP
//	7: HALT
func blockProg() *Program {
	return &Program{
		Name: "blocktest",
		Insts: []Inst{
			{Op: OpADDI, Rd: 1, Imm: 5},
			{Op: OpBEQ, Rs1: 1, Rs2: 0, Imm: 3},
			{Op: OpADD, Rd: 2, Rs1: 1, Rs2: 1},
			{Op: OpJAL, Rd: 0, Imm: 2},
			{Op: OpSUB, Rd: 2, Rs1: 1, Rs2: 1},
			{Op: OpJALR, Rd: 0, Rs1: 1},
			{Op: OpNOP},
			{Op: OpHALT},
		},
		Entries: []uint64{0},
	}
}

func TestBlockTableCuts(t *testing.T) {
	p := blockProg()
	bt := p.Blocks()

	wantEnd := []uint32{2, 2, 4, 4, 5, 6, 8, 8}
	for pc, want := range wantEnd {
		if got := bt.End[pc]; got != want {
			t.Errorf("End[%d] = %d, want %d", pc, got, want)
		}
	}
	wantLeader := []bool{true, false, true, false, true, true, true, false}
	for pc, want := range wantLeader {
		if got := bt.Leader[pc]; got != want {
			t.Errorf("Leader[%d] = %v, want %v", pc, got, want)
		}
	}
}

// TestBlockTableInvariants checks the structural contract the block
// executor relies on, over the branchy program: every block run makes
// forward progress, stays in range, contains control flow or HALT only
// as its final instruction, and contains no leader after its first.
func TestBlockTableInvariants(t *testing.T) {
	p := blockProg()
	checkBlockInvariants(t, p.Insts, p.Blocks())
}

func checkBlockInvariants(t *testing.T, insts []Inst, bt *BlockTable) {
	t.Helper()
	n := len(insts)
	if len(bt.End) != n || len(bt.Leader) != n {
		t.Fatalf("table sized %d/%d, want %d", len(bt.End), len(bt.Leader), n)
	}
	for pc := 0; pc < n; pc++ {
		end := int(bt.End[pc])
		if end <= pc || end > n {
			t.Fatalf("End[%d] = %d out of range", pc, end)
		}
		for i := pc; i < end-1; i++ {
			if cutsAfter(insts[i].Op) {
				t.Errorf("pc %d: interior instruction %d (%s) is a cut", pc, i, insts[i].Op)
			}
			if bt.Leader[i+1] {
				t.Errorf("pc %d: interior instruction %d is a leader", pc, i+1)
			}
		}
		// A mid-block pc's run must agree with its block's: resuming at
		// pc after an interrupt ends at the same boundary.
		if pc+1 < n && !bt.Leader[pc+1] && !cutsAfter(insts[pc].Op) {
			if bt.End[pc] != bt.End[pc+1] {
				t.Errorf("End[%d]=%d disagrees with End[%d]=%d mid-block",
					pc, bt.End[pc], pc+1, bt.End[pc+1])
			}
		}
	}
	// Every static branch/JAL target starts a block.
	for pc, in := range insts {
		if tgt, ok := staticTarget(pc, in); ok && tgt >= 0 && tgt < int64(n) {
			if !bt.Leader[tgt] {
				t.Errorf("target %d of pc %d is not a leader", tgt, pc)
			}
			if tgt > 0 && int64(bt.End[tgt-1]) != tgt {
				t.Errorf("block containing %d not cut before target %d", tgt-1, tgt)
			}
		}
	}
}

func TestBlocksCached(t *testing.T) {
	p := blockProg()
	if a, b := p.Blocks(), p.Blocks(); a != b {
		t.Fatalf("Blocks() not cached: %p vs %p", a, b)
	}
}
