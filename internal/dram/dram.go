// Package dram models a DDR4-2400 8x8 memory system at the fidelity the
// experiments need: a fixed device latency plus a bandwidth-dependent
// queueing term, with row-buffer locality approximated by address-stream
// reuse distance.
package dram

// Config describes the memory system.
type Config struct {
	// BaseNS is the idle (unloaded) access latency in nanoseconds.
	BaseNS float64
	// RowHitNS is the latency for accesses hitting an open row.
	RowHitNS float64
	// PeakGBs is the peak bandwidth in GB/s (DDR4-2400 x64: 19.2 GB/s).
	PeakGBs float64
	// Banks is the number of banks used for row-buffer tracking.
	Banks int
	// RowBytes is the row-buffer size per bank.
	RowBytes int
}

// DDR4_2400 returns the configuration matching the paper's Table I memory
// ("DDR4 2400 8x8").
func DDR4_2400() Config {
	return Config{
		BaseNS:   46, // tRCD+tCAS+tRP class latency
		RowHitNS: 18,
		PeakGBs:  19.2,
		Banks:    16,
		RowBytes: 8192,
	}
}

// Model tracks open rows and offered load.
type Model struct {
	cfg      Config
	openRows []uint64

	// Accesses and RowHits accumulate for reporting.
	Accesses uint64
	RowHits  uint64
}

// New builds a memory model.
func New(cfg Config) *Model {
	return &Model{cfg: cfg, openRows: make([]uint64, cfg.Banks)}
}

// AccessNS returns the latency of one 64-byte access given the current
// offered bandwidth utilisation (0..1), which adds an M/M/1-style
// queueing term as the bus saturates.
func (m *Model) AccessNS(addr uint64, utilisation float64) float64 {
	m.Accesses++
	bank := (addr / uint64(m.cfg.RowBytes)) % uint64(m.cfg.Banks)
	row := addr / uint64(m.cfg.RowBytes) / uint64(m.cfg.Banks)
	lat := m.cfg.BaseNS
	if m.openRows[bank] == row+1 {
		m.RowHits++
		lat = m.cfg.RowHitNS
	}
	m.openRows[bank] = row + 1

	if utilisation > 0.95 {
		utilisation = 0.95
	}
	if utilisation > 0 {
		// Waiting time grows as rho/(1-rho) service times.
		service := 64.0 / m.cfg.PeakGBs // ns to transfer one line
		lat += utilisation / (1 - utilisation) * service
	}
	return lat
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (m *Model) RowHitRate() float64 {
	if m.Accesses == 0 {
		return 0
	}
	return float64(m.RowHits) / float64(m.Accesses)
}
