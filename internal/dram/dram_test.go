package dram

import "testing"

func TestRowBufferLocality(t *testing.T) {
	m := New(DDR4_2400())
	first := m.AccessNS(0x1000, 0)
	second := m.AccessNS(0x1008, 0) // same row
	if second >= first {
		t.Errorf("row hit %.1fns not faster than row miss %.1fns", second, first)
	}
	far := m.AccessNS(0x1000+1<<20, 0) // different row, same bank cycle
	if far <= second {
		t.Errorf("row conflict %.1fns not slower than row hit %.1fns", far, second)
	}
	if m.RowHitRate() <= 0 || m.RowHitRate() >= 1 {
		t.Errorf("row hit rate %.2f", m.RowHitRate())
	}
}

func TestStreamingHitsRows(t *testing.T) {
	m := New(DDR4_2400())
	for addr := uint64(0); addr < 64*1024; addr += 64 {
		m.AccessNS(addr, 0)
	}
	if m.RowHitRate() < 0.9 {
		t.Errorf("streaming row-hit rate %.2f, want > 0.9", m.RowHitRate())
	}
}

func TestUtilisationAddsQueueing(t *testing.T) {
	m := New(DDR4_2400())
	idle := m.AccessNS(0x2000, 0)
	m2 := New(DDR4_2400())
	loaded := m2.AccessNS(0x2000, 0.9)
	if loaded <= idle {
		t.Errorf("loaded access %.1fns not slower than idle %.1fns", loaded, idle)
	}
	m3 := New(DDR4_2400())
	saturated := m3.AccessNS(0x2000, 5.0) // clamped internally
	if saturated <= loaded {
		t.Error("saturation clamp broke monotonicity")
	}
}

func TestZeroAccesses(t *testing.T) {
	m := New(DDR4_2400())
	if m.RowHitRate() != 0 {
		t.Error("empty model has non-zero row hit rate")
	}
}
