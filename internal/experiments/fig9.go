package experiments

import (
	"fmt"

	"paraverser/internal/core"
	"paraverser/internal/isa"
	"paraverser/internal/workload/gap"
	"paraverser/internal/workload/parsec"
)

// gapPrograms builds the six GAP kernels over a Kronecker graph.
func gapPrograms(sc Scale) []core.Workload {
	g := gap.Kronecker(sc.GAPScale, sc.GAPEdgeFactor, 1)
	mk := func(name string, prog *isa.Program) core.Workload {
		return core.Workload{Name: "gap." + name, Prog: prog, MaxInsts: sc.Insts * 3}
	}
	bfs, _ := gap.BFS(g, 0)
	pr, _ := gap.PageRank(g, 4)
	sssp, _ := gap.SSSP(g, 0)
	cc, _ := gap.CC(g)
	tc, _ := gap.TC(g)
	bc, _ := gap.BC(g, 0)
	return []core.Workload{
		mk("bfs", bfs), mk("pr", pr), mk("sssp", sssp),
		mk("cc", cc), mk("tc", tc), mk("bc", bc),
	}
}

// fig9Workloads assembles the full GAP + PARSEC workload list.
func fig9Workloads(sc Scale) []core.Workload {
	ws := gapPrograms(sc)
	for _, k := range parsec.Kernels(sc.ParsecScale) {
		ws = append(ws, core.Workload{Name: "parsec." + k.Name, Prog: k.Prog, MaxInsts: sc.Insts * 3})
	}
	return ws
}

// Fig9 reproduces the data-oriented and parallel-workload figure:
// full-coverage slowdown of the GAP kernels and the two-threaded PARSEC
// kernels with 1-4 A510 checkers per main core.
func Fig9(sc Scale) (*SeriesResult, error) { return fig9(defaultEngine(), sc) }

func fig9(e *Engine, sc Scale) (*SeriesResult, error) {
	r := &SeriesResult{
		Title:  "Fig. 9: full-coverage slowdown, GAP and PARSEC, A510@2GHz checkers per main core",
		Metric: "slowdown % vs no-checking baseline",
		Values: make(map[string]map[string]float64),
	}
	counts := []int{1, 2, 3, 4}
	for _, n := range counts {
		label := fmt.Sprintf("%dxA510", n)
		r.Order = append(r.Order, label)
		r.Values[label] = make(map[string]float64)
	}

	ws := fig9Workloads(sc)
	baseF := make([]*Future, len(ws))
	runF := make(map[int][]*Future, len(counts))
	for _, n := range counts {
		runF[n] = make([]*Future, len(ws))
	}
	for i, w := range ws {
		r.Benchmarks = append(r.Benchmarks, w.Name)
		baseF[i] = e.Submit(baselineCfg(), []core.Workload{w})
		for _, n := range counts {
			runF[n][i] = e.Submit(core.DefaultConfig(a510Spec(n, 2.0)), []core.Workload{w})
		}
	}

	for i, w := range ws {
		baseRes, err := baseF[i].Wait()
		if err != nil {
			return nil, fmt.Errorf("fig9 baseline %s: %w", w.Name, err)
		}
		base := baseRes.TimeNS()
		for _, n := range counts {
			res, err := runF[n][i].Wait()
			if err != nil {
				return nil, fmt.Errorf("fig9 %dxA510 %s: %w", n, w.Name, err)
			}
			if res.Detections() != 0 {
				return nil, fmt.Errorf("fig9 %s: clean run raised detections", w.Name)
			}
			r.Values[fmt.Sprintf("%dxA510", n)][w.Name] = (res.TimeNS()/base - 1) * 100
		}
	}
	r.Notes = append(r.Notes,
		"paper: GAP so memory-bound that 2 A510s suffice except PageRank; PARSEC ~7.6% with 3 A510s")
	return r, nil
}
