package experiments

import (
	"fmt"

	"paraverser/internal/asm"
	"paraverser/internal/core"
	"paraverser/internal/cpu"
	"paraverser/internal/isa"
	"paraverser/internal/stats"
)

// mapWorkload builds a dynamically load-balanced data-parallel map over
// items array elements, split across harts by work-stealing chunks from a
// shared lock-protected counter — so heterogeneous cores self-balance
// exactly as the paper's RK3588 measurements did. memBound selects a
// scattered, cache-hostile access pattern (GAP-like) versus a
// compute-heavy FP body (PARSEC-like).
func mapWorkload(harts, items int, memBound bool) *isa.Program {
	b := asm.New(fmt.Sprintf("map%dh", harts))
	arr := b.Reserve(items * 8)
	for i := 0; i < items; i++ {
		b.SetWord64(arr+uint64(i*8), uint64((i*2654435761)%items)&^7)
	}
	ctr := b.Word64(0)
	lock := b.Word64(0)
	outs := b.Reserve(harts * 8)
	const chunk = 64

	for tid := 0; tid < harts; tid++ {
		pfx := fmt.Sprintf("t%d_", tid)
		const (
			rArr, rCtr, rLock, rOut = isa.Reg(5), isa.Reg(6), isa.Reg(7), isa.Reg(8)
			rIdx, rEnd, rN, rT      = isa.Reg(9), isa.Reg(10), isa.Reg(11), isa.Reg(12)
			rV, rSum, rA            = isa.Reg(13), isa.Reg(14), isa.Reg(15)
			fV, fS                  = isa.Reg(1), isa.Reg(2)
		)
		b.Entry()
		b.Li(rArr, int64(isa.DefaultDataBase+arr))
		b.Li(rCtr, int64(isa.DefaultDataBase+ctr))
		b.Li(rLock, int64(isa.DefaultDataBase+lock))
		b.Li(rOut, int64(isa.DefaultDataBase+outs)+int64(tid*8))
		b.Li(rN, int64(items))
		b.Li(rSum, 0)
		b.Label(pfx + "grab")
		// fetch-and-add under a spinlock
		b.Jmp(pfx + "try")
		b.Label(pfx + "acq")
		b.Pause()
		b.Label(pfx + "try")
		b.Li(rT, 1)
		b.Swp(rT, rLock, rT)
		b.Bne(rT, isa.Zero, pfx+"acq")
		b.Ld(8, rIdx, rCtr, 0)
		b.Addi(rT, rIdx, chunk)
		b.St(8, rT, rCtr, 0)
		b.St(8, isa.Zero, rLock, 0)
		b.Bge(rIdx, rN, pfx+"done")
		b.Addi(rEnd, rIdx, chunk)
		b.Blt(rEnd, rN, pfx+"body")
		b.Mov(rEnd, rN)
		b.Label(pfx + "body")
		b.Bge(rIdx, rEnd, pfx+"grab")
		if memBound {
			// chase the stored permutation: dependent scattered loads
			b.Slli(rT, rIdx, 3)
			b.Add(rT, rT, rArr)
			b.Ld(8, rV, rT, 0)
			b.Add(rA, rV, rArr)
			b.Ld(8, rV, rA, 0)
			b.Add(rSum, rSum, rV)
		} else {
			b.Slli(rT, rIdx, 3)
			b.Add(rT, rT, rArr)
			b.Ld(8, rV, rT, 0)
			b.Fcvtif(fV, rV)
			for k := 0; k < 6; k++ {
				b.Fmul(fS, fV, fV)
				b.Fadd(fV, fS, fV)
				b.Fsqrt(fV, fV)
			}
			b.Fcvtfi(rV, fV)
			b.Add(rSum, rSum, rV)
		}
		b.Addi(rIdx, rIdx, 1)
		b.Jmp(pfx + "body")
		b.Label(pfx + "done")
		b.St(8, rSum, rOut, 0)
		b.Halt()
	}
	return b.MustBuild()
}

// OpportunityRow is one line of the section VII-F comparison.
type OpportunityRow struct {
	Label string
	Value float64
	Unit  string
}

// OpportunityResult is the compute-opportunity-cost study.
type OpportunityResult struct {
	Rows  []OpportunityRow
	Notes []string
}

// Table renders the study.
func (o *OpportunityResult) Table() string {
	t := stats.NewTable("scenario", "value", "unit")
	for _, row := range o.Rows {
		t.Row(row.Label, fmt.Sprintf("%.2f", row.Value), row.Unit)
	}
	out := "Section VII-F: compute opportunity cost of checking\n" + t.String()
	for _, n := range o.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// Opportunity reproduces section VII-F: the speedup little (or big) cores
// would deliver as extra parallel compute, versus the overhead they cost
// when devoted to full-coverage checking, for a GAP-like memory-bound
// workload and a PARSEC-like compute workload.
func Opportunity(sc Scale) (*OpportunityResult, error) {
	return opportunity(defaultEngine(), sc)
}

func opportunity(e *Engine, sc Scale) (*OpportunityResult, error) {
	out := &OpportunityResult{}

	for _, flavour := range []struct {
		name     string
		memBound bool
		littles  int
		items    int
	}{
		// The GAP-like flavour needs a working set well beyond the L2 so
		// the chase is genuinely memory-bound (1MiB of pointers).
		{"GAP-like", true, 2, 1 << 17},
		{"PARSEC-like", false, 3, int(sc.Insts / 40)},
	} {
		items := flavour.items
		// Each harts-count maps to one program, built once: T1 and the
		// checking run share the single-hart program (and so share a cache
		// key up to config), while the parallel-compute runs get theirs.
		prog1 := mapWorkload(1, items, flavour.memBound)
		progHet := mapWorkload(1+flavour.littles, items, flavour.memBound)
		progHomog := mapWorkload(2, items, flavour.memBound)

		// T1: one X2 alone.
		f1 := submitMap(e, nil, prog1, nil)
		// Heterogeneous parallel compute: X2 + little cores as workers.
		lanes := []core.LaneMain{{CPU: cpu.X2(), FreqGHz: 3.0}}
		for i := 0; i < flavour.littles; i++ {
			lanes = append(lanes, core.LaneMain{CPU: cpu.A510(), FreqGHz: 2.0})
		}
		fHet := submitMap(e, lanes, progHet, nil)
		// Homogeneous parallel compute: two X2s.
		fHomog := submitMap(e, []core.LaneMain{
			{CPU: cpu.X2(), FreqGHz: 3.0}, {CPU: cpu.X2(), FreqGHz: 3.0},
		}, progHomog, nil)
		// Same little cores devoted to full-coverage checking instead.
		ck := []core.CheckerSpec{a510Spec(flavour.littles, 2.0)}
		fCheck := submitMap(e, nil, prog1, ck)

		t1, err := mapTimeNS(f1)
		if err != nil {
			return nil, err
		}
		tHet, err := mapTimeNS(fHet)
		if err != nil {
			return nil, err
		}
		tHomog, err := mapTimeNS(fHomog)
		if err != nil {
			return nil, err
		}
		tCheck, err := mapTimeNS(fCheck)
		if err != nil {
			return nil, err
		}

		out.Rows = append(out.Rows,
			OpportunityRow{flavour.name + ": speedup, 1 X2 + little cores as compute", t1 / tHet, "x"},
			OpportunityRow{flavour.name + ": speedup, 2 X2 as compute", t1 / tHomog, "x"},
			OpportunityRow{flavour.name + ": overhead, little cores as checkers", (tCheck/t1 - 1) * 100, "%"},
		)
	}
	out.Notes = append(out.Notes,
		"paper: GAP 1.52x speedup (1 big + 2 little) vs 10% checking overhead; PARSEC 1.44x vs 7.6%",
		"paper: homogeneous 2-big speedups 1.9x (GAP) and 1.8x (PARSEC)")
	return out, nil
}

// submitMap schedules a map workload over the engine's pool.
func submitMap(e *Engine, lanes []core.LaneMain, prog *isa.Program, checkers []core.CheckerSpec) *Future {
	cfg := core.DefaultConfig(checkers...)
	cfg.LaneMains = lanes
	return e.Submit(cfg, []core.Workload{{Name: prog.Name, Prog: prog}})
}

// mapTimeNS waits for a map run and returns its completion time.
func mapTimeNS(f *Future) (float64, error) {
	res, err := f.Wait()
	if err != nil {
		return 0, err
	}
	if res.Detections() != 0 {
		return 0, fmt.Errorf("opportunity: clean run raised detections")
	}
	return res.TimeNS(), nil
}
