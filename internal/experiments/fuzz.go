package experiments

import (
	"fmt"
	"strings"

	"paraverser/internal/isa/fuzz"
	"paraverser/internal/stats"
)

// FuzzResult is one verifier-screened differential fuzzing campaign:
// the per-seed reports and their aggregate summary.
//
// Fuzz campaigns deliberately bypass the experiment run cache: the
// cache fingerprints Config+Workload simulations for reuse across
// figures, while a fuzz seed's pipeline (generate → screen → execute
// differentially) is keyed by nothing a figure shares and must re-run
// engines the cache would elide. Campaign output is deterministic at
// any worker count, so there is nothing to cache anyway.
type FuzzResult struct {
	Reports []fuzz.SeedReport
	Summary fuzz.Summary
}

// Fuzz runs a fuzzing campaign: seeds independent seed pipelines of
// ~insts-instruction programs, workers-way parallel (<= 0 selects one
// worker per seed up to GOMAXPROCS via the campaign's own bounding),
// over the seed stream selected by baseSeed. The report list is
// byte-identical at any worker count, -j or -time-shards setting: each
// seed's pipeline is self-contained and fixes its own engine
// configurations internally.
func Fuzz(seeds, insts, workers int, baseSeed uint64) *FuzzResult {
	reports := fuzz.Campaign(fuzz.Options{
		Seeds:    seeds,
		Insts:    insts,
		Workers:  workers,
		BaseSeed: baseSeed,
	})
	return &FuzzResult{Reports: reports, Summary: fuzz.Summarize(reports)}
}

// Clean reports whether the campaign found no divergences and no
// screening failures — the CI gate condition.
func (r *FuzzResult) Clean() bool {
	return r.Summary.Mismatches == 0 && r.Summary.ScreenFailures == 0
}

// Failures renders one compact line per failing seed — enough to
// replay it in isolation.
func (r *FuzzResult) Failures() string {
	var b strings.Builder
	for i := range r.Reports {
		rep := &r.Reports[i]
		switch {
		case rep.Divergence != nil:
			fmt.Fprintf(&b, "seed %#x: %s: %s", rep.Seed, rep.Divergence.Stage, firstLine(rep.Divergence.Detail))
			if rep.Minimized != nil {
				fmt.Fprintf(&b, " (minimized to %d insts)", len(rep.Minimized.Insts))
			}
			b.WriteString("\n")
		case rep.ScreenFailure != "":
			fmt.Fprintf(&b, "seed %#x: screening never passed: %s\n", rep.Seed, rep.ScreenFailure)
		}
	}
	return b.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Table renders the campaign summary and any failures.
func (r *FuzzResult) Table() string {
	s := r.Summary
	t := stats.NewTable("seeds", "static insts", "max bound", "regens", "screen fails", "mismatches")
	t.Row(fmt.Sprint(s.Seeds), fmt.Sprint(s.TotalStatic), fmt.Sprint(s.MaxBound),
		fmt.Sprint(s.Regens), fmt.Sprint(s.ScreenFailures), fmt.Sprint(s.Mismatches))
	out := "verifier-screened differential fuzz campaign\n" + t.String()
	if f := r.Failures(); f != "" {
		out += f
	} else {
		out += "all seeds agree across engines, strategies, time-sharding and divergent checking\n"
	}
	return out
}
