package experiments

import (
	"fmt"

	"paraverser/internal/core"
)

// fig7Configs are the opportunistic-mode configurations, including the
// frequency spreads shown as error bars in the paper (footnote 17).
func fig7Configs() []NamedConfig {
	mk := func(spec core.CheckerSpec) core.Config {
		cfg := core.DefaultConfig(spec)
		cfg.Mode = core.ModeOpportunistic
		return cfg
	}
	return []NamedConfig{
		{Label: "1xX2@3.0", Cfg: mk(x2Spec(1, 3.0))},
		{Label: "1xX2@2.7", Cfg: mk(x2Spec(1, 2.7))},
		{Label: "2xX2@1.35", Cfg: mk(x2Spec(2, 1.35))},
		{Label: "2xX2@1.5", Cfg: mk(x2Spec(2, 1.5))},
		{Label: "4xA510@1.6", Cfg: mk(a510Spec(4, 1.6))},
		{Label: "4xA510@1.8", Cfg: mk(a510Spec(4, 1.8))},
		{Label: "4xA510@2.0", Cfg: mk(a510Spec(4, 2.0))},
	}
}

// Fig7 reproduces the opportunistic-mode figure: slowdown per benchmark
// per configuration, plus the run-time instruction coverage the mode
// achieves (section VII-B's 94-99% numbers).
func Fig7(sc Scale) (slow, coverage *SeriesResult, err error) {
	return fig7(defaultEngine(), sc)
}

func fig7(e *Engine, sc Scale) (slow, coverage *SeriesResult, err error) {
	slow = &SeriesResult{
		Title:      "Fig. 7: opportunistic-mode slowdown",
		Metric:     "slowdown % vs no-checking baseline",
		Benchmarks: sc.benchmarks(),
		Values:     make(map[string]map[string]float64),
	}
	coverage = &SeriesResult{
		Title:      "Fig. 7 (companion): run-time instruction coverage",
		Metric:     "% of executed instructions checked",
		Benchmarks: sc.benchmarks(),
		Values:     make(map[string]map[string]float64),
	}
	configs := fig7Configs()
	for _, nc := range configs {
		slow.Order = append(slow.Order, nc.Label)
		coverage.Order = append(coverage.Order, nc.Label)
		slow.Values[nc.Label] = make(map[string]float64)
		coverage.Values[nc.Label] = make(map[string]float64)
	}

	baseF := make(map[string]*Future, len(slow.Benchmarks))
	runF := make(map[string]map[string]*Future, len(configs))
	for _, nc := range configs {
		runF[nc.Label] = make(map[string]*Future, len(slow.Benchmarks))
	}
	for _, bench := range slow.Benchmarks {
		baseF[bench] = sc.submitBaseline(e, bench)
		for _, nc := range configs {
			runF[nc.Label][bench] = e.SubmitSpec(nc.Cfg, bench, sc.Insts, sc.Warmup)
		}
	}

	for _, bench := range slow.Benchmarks {
		base, err := laneTimeNS(baseF[bench])
		if err != nil {
			return nil, nil, err
		}
		for _, nc := range configs {
			res, err := runF[nc.Label][bench].Wait()
			if err != nil {
				return nil, nil, fmt.Errorf("fig7 %s/%s: %w", nc.Label, bench, err)
			}
			lane := res.Lanes[0]
			if lane.StallNS != 0 {
				return nil, nil, fmt.Errorf("fig7 %s/%s: opportunistic mode stalled", nc.Label, bench)
			}
			slow.Values[nc.Label][bench] = (lane.TimeNS/base - 1) * 100
			coverage.Values[nc.Label][bench] = lane.Coverage() * 100
		}
	}
	slow.Notes = append(slow.Notes,
		"paper: ~1.4% gm homogeneous, <1% for 2xX2 and 4xA510; overhead flat vs frequency (NoC-dominated)")
	coverage.Notes = append(coverage.Notes,
		"paper: ~98% @ X2 3GHz, 94% @ 2.7GHz; 97/96/95% @ A510 2.0/1.8/1.6GHz; bwaves lowest (~71%)")
	return slow, coverage, nil
}
