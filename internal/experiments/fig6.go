package experiments

import (
	"fmt"

	"paraverser/internal/core"
	"paraverser/internal/cpu"
	"paraverser/internal/lockstep"
	"paraverser/internal/power"
)

func x2Spec(n int, f float64) core.CheckerSpec {
	return core.CheckerSpec{CPU: cpu.X2(), FreqGHz: f, Count: n}
}

func a510Spec(n int, f float64) core.CheckerSpec {
	return core.CheckerSpec{CPU: cpu.A510(), FreqGHz: f, Count: n}
}

// fig6Configs are the full-coverage checker configurations of fig. 6,
// including the prior-work baselines remodelled per section VI.
func fig6Configs() []NamedConfig {
	return []NamedConfig{
		{Label: "1xX2@3.0", Cfg: core.DefaultConfig(x2Spec(1, 3.0))},
		{Label: "2xX2@1.5", Cfg: core.DefaultConfig(x2Spec(2, 1.5))},
		{Label: "4xA510@2.0", Cfg: core.DefaultConfig(a510Spec(4, 2.0))},
		{Label: "DSN18-12", Cfg: lockstep.DSN18()},
		{Label: "ParaDox-16", Cfg: lockstep.ParaDox()},
	}
}

// ed2pCfg is the 4xA510 configuration at one DVFS point.
func ed2pCfg(f float64) core.Config {
	return core.DefaultConfig(a510Spec(4, f))
}

// Fig6 reproduces the full-coverage slowdown figure: main-core slowdown
// (percent) per benchmark for each checker configuration, including the
// per-benchmark ED²P-minimal 4xA510 DVFS point.
func Fig6(sc Scale) (*SeriesResult, error) { return fig6(defaultEngine(), sc) }

func fig6(e *Engine, sc Scale) (*SeriesResult, error) {
	r := &SeriesResult{
		Title:      "Fig. 6: full-coverage slowdown by checker configuration",
		Metric:     "slowdown % vs no-checking baseline",
		Benchmarks: sc.benchmarks(),
		Values:     make(map[string]map[string]float64),
	}
	configs := fig6Configs()
	for _, nc := range configs {
		r.Order = append(r.Order, nc.Label)
		r.Values[nc.Label] = make(map[string]float64)
	}
	const ed2pLabel = "4xA510-ED2P"
	r.Order = append(r.Order, ed2pLabel)
	r.Values[ed2pLabel] = make(map[string]float64)

	// Submit the full (config × benchmark) matrix, the baselines and the
	// DVFS sweep up front; the engine runs them in parallel and shares
	// repeats.
	baseF := make(map[string]*Future, len(r.Benchmarks))
	runF := make(map[string]map[string]*Future, len(configs))
	for _, nc := range configs {
		runF[nc.Label] = make(map[string]*Future, len(r.Benchmarks))
	}
	for _, bench := range r.Benchmarks {
		baseF[bench] = sc.submitBaseline(e, bench)
		for _, nc := range configs {
			runF[nc.Label][bench] = e.SubmitSpec(nc.Cfg, bench, sc.Insts, sc.Warmup)
		}
		for _, f := range sc.ED2PFreqs {
			e.SubmitSpec(ed2pCfg(f), bench, sc.Insts, sc.Warmup)
		}
	}

	// Assemble in deterministic label/benchmark order.
	for _, bench := range r.Benchmarks {
		base, err := laneTimeNS(baseF[bench])
		if err != nil {
			return nil, err
		}
		for _, nc := range configs {
			res, err := runF[nc.Label][bench].Wait()
			if err != nil {
				return nil, fmt.Errorf("fig6 %s/%s: %w", nc.Label, bench, err)
			}
			if res.Detections() != 0 {
				return nil, fmt.Errorf("fig6 %s/%s: clean run raised detections", nc.Label, bench)
			}
			r.Values[nc.Label][bench] = (res.Lanes[0].TimeNS/base - 1) * 100
		}
		slow, _, err := ed2pPoint(e, sc, bench, base)
		if err != nil {
			return nil, err
		}
		r.Values[ed2pLabel][bench] = slow
	}
	r.Notes = append(r.Notes,
		"paper: ~1.6% gm homogeneous, ~3.4% gm 4xA510@2.0, ~4.3% gm ED2P, ~9% DSN18, ~1.2% ParaDox",
		fmt.Sprintf("ParaDox/DSN18 dedicated cores carry ~%.0f%%/%.0f%% extra area (section VII-E)",
			lockstep.AreaOverhead(lockstep.ParaDox())*100, lockstep.AreaOverhead(lockstep.DSN18())*100))
	return r, nil
}

// ed2pPoint searches the A510 DVFS points for the frequency minimising
// energy x delay² on one benchmark, returning its slowdown percentage and
// checking-energy overhead. Every DVFS run goes through the engine's
// cache, so points the figure (or an earlier study) already simulated are
// not re-run.
func ed2pPoint(e *Engine, sc Scale, bench string, baseNS float64) (slowPct, energyOverhead float64, err error) {
	type point struct {
		slow, overhead float64
		energyJ, dNS   float64
	}
	points := make(map[float64]point, len(sc.ED2PFreqs))
	futs := make(map[float64]*Future, len(sc.ED2PFreqs))
	for _, f := range sc.ED2PFreqs {
		futs[f] = e.SubmitSpec(ed2pCfg(f), bench, sc.Insts, sc.Warmup)
	}
	for _, f := range sc.ED2PFreqs {
		res, err := futs[f].Wait()
		if err != nil {
			return 0, 0, fmt.Errorf("fig6 ed2p %s @%.2gGHz: %w", bench, f, err)
		}
		rep, err := core.Energy(ed2pCfg(f), res)
		if err != nil {
			return 0, 0, fmt.Errorf("fig6 ed2p %s @%.2gGHz: %w", bench, f, err)
		}
		d := res.Lanes[0].TimeNS
		points[f] = point{
			slow: (d/baseNS - 1) * 100, overhead: rep.Overhead,
			energyJ: rep.MainJ + rep.CheckerJ, dNS: d,
		}
	}
	bestF, _, _ := power.MinimiseED2P(sc.ED2PFreqs, func(f float64) (float64, float64) {
		p := points[f]
		return p.energyJ, p.dNS
	})
	best := points[bestF]
	return best.slow, best.overhead, nil
}
