//paralint:deterministic

// Package experiments regenerates every table and figure of the paper's
// evaluation (section VII): full-coverage slowdowns against the prior-work
// baselines (fig. 6), opportunistic slowdowns (fig. 7), hard-error
// coverage under fault injection (fig. 8), data-oriented and parallel
// workloads (fig. 9), multi-process mixes (fig. 10), the NoC sensitivity
// study with Hash Mode (fig. 11), and the power, area and
// compute-opportunity-cost analyses (sections VII-E and VII-F). The same
// entry points back the paraverser CLI and the repository's benchmark
// suite.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"paraverser/internal/core"
	"paraverser/internal/isa"
	"paraverser/internal/stats"
	"paraverser/internal/workload/spec"
)

// Scale sets how much simulation each experiment performs. Quick keeps
// the full suite under a couple of minutes; Full approaches the paper's
// methodology (scaled from its 1B-instruction windows to what a laptop
// simulates in reasonable time).
type Scale struct {
	// Insts bounds measured main-core instructions per benchmark run;
	// Warmup instructions run first without being measured (the paper's
	// fast-forward).
	Insts  int64
	Warmup int64
	// Benchmarks selects the SPEC subset (nil = all 20).
	Benchmarks []string
	// FaultTrials is the number of injected faults per benchmark in
	// fig. 8; FaultHorizon the detection window in instructions;
	// FaultBenchmarks the benchmarks injected into (nil = the four the
	// paper calls out: bwaves, deepsjeng, imagick, perlbench).
	FaultTrials     int
	FaultHorizon    int64
	FaultBenchmarks []string
	// GAPScale is the Kronecker graph scale (2^scale vertices);
	// GAPEdgeFactor its edges-per-vertex.
	GAPScale      int
	GAPEdgeFactor int
	// ParsecScale is the per-thread element count for the PARSEC suite.
	ParsecScale int
	// ED2PFreqs are the candidate A510 DVFS points for the ED²P search.
	ED2PFreqs []float64
}

// Quick returns the scale used by tests and the benchmark suite.
func Quick() Scale {
	return Scale{
		Insts:  120_000,
		Warmup: 80_000,
		Benchmarks: []string{
			"perlbench", "gcc", "mcf", "deepsjeng", "exchange2",
			"bwaves", "lbm", "imagick",
		},
		FaultTrials:     6,
		FaultHorizon:    250_000,
		FaultBenchmarks: []string{"deepsjeng", "imagick"},
		GAPScale:        9,
		GAPEdgeFactor:   8,
		ParsecScale:     400,
		ED2PFreqs:       []float64{1.4, 2.0},
	}
}

// Full returns the CLI's default scale.
func Full() Scale {
	return Scale{
		Insts:           250_000,
		Warmup:          150_000,
		Benchmarks:      nil,
		FaultTrials:     12,
		FaultHorizon:    600_000,
		FaultBenchmarks: []string{"bwaves", "deepsjeng", "imagick", "perlbench"},
		GAPScale:        11,
		GAPEdgeFactor:   10,
		ParsecScale:     1000,
		ED2PFreqs:       []float64{1.4, 1.6, 2.0},
	}
}

func (sc Scale) benchmarks() []string {
	if len(sc.Benchmarks) > 0 {
		return sc.Benchmarks
	}
	return spec.Names()
}

func (sc Scale) faultBenchmarks() []string {
	if len(sc.FaultBenchmarks) > 0 {
		return sc.FaultBenchmarks
	}
	return []string{"bwaves", "deepsjeng", "imagick", "perlbench"}
}

// progCache holds one singleflight entry per benchmark program;
// generation (working-set initialisation) dominates otherwise, and two
// goroutines racing on an uncached benchmark must not both pay it.
var progCache sync.Map // string -> *progEntry

type progEntry struct {
	once sync.Once
	prog *isa.Program
	err  error
}

func specProg(name string) (*isa.Program, error) {
	v, _ := progCache.LoadOrStore(name, &progEntry{})
	e := v.(*progEntry)
	e.once.Do(func() {
		p, err := spec.ByName(name)
		if err != nil {
			e.err = err
			return
		}
		e.prog, e.err = p.Build(1 << 40)
	})
	return e.prog, e.err
}

// baselineCfg is the no-checking configuration every slowdown figure
// normalises against.
func baselineCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Checkers = nil
	return cfg
}

// submitBaseline schedules (or cache-hits) the no-checking run for a
// benchmark at the scale's window.
func (sc Scale) submitBaseline(e *Engine, name string) *Future {
	return e.SubmitSpec(baselineCfg(), name, sc.Insts, sc.Warmup)
}

// laneTimeNS waits for a single-lane future and returns its run time.
func laneTimeNS(f *Future) (float64, error) {
	res, err := f.Wait()
	if err != nil {
		return 0, err
	}
	return res.Lanes[0].TimeNS, nil
}

// NamedConfig pairs a label with a system configuration.
type NamedConfig struct {
	Label string
	Cfg   core.Config
}

// SeriesResult is one figure's data: per-benchmark values per
// configuration, plus a geomean row.
type SeriesResult struct {
	Title      string
	Metric     string // e.g. "slowdown %" or "coverage %"
	Benchmarks []string
	Values     map[string]map[string]float64 // config -> bench -> value
	Order      []string                      // config display order
	Notes      []string
}

// Geomean returns the geometric mean of one configuration's slowdown
// ratios; for percentage metrics it first converts back to ratios. An
// empty series — a config that assembled no values at all — returns
// NaN rather than 0: a silent 0 reads as a perfect result in the
// table, exactly the failure mode the PR 2 empty-geomean fix closed,
// while NaN makes the broken assembly visible in the GEOMEAN row.
func (r *SeriesResult) Geomean(config string) float64 {
	vals := r.Values[config]
	xs := make([]float64, 0, len(vals))
	for _, b := range r.Benchmarks {
		if v, ok := vals[b]; ok {
			xs = append(xs, 1+v/100)
		}
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	return (stats.Geomean(xs) - 1) * 100
}

// Range returns the min and max value of one configuration, or
// (NaN, NaN) for an empty series (same fail-loud rationale as
// Geomean: stats.MinMax's 0,0 would masquerade as data).
func (r *SeriesResult) Range(config string) (float64, float64) {
	vals := r.Values[config]
	xs := make([]float64, 0, len(vals))
	for _, b := range r.Benchmarks {
		if v, ok := vals[b]; ok {
			xs = append(xs, v)
		}
	}
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	return stats.MinMax(xs)
}

// Table renders the figure as the text table the CLI prints.
func (r *SeriesResult) Table() string {
	header := append([]string{"benchmark"}, r.Order...)
	t := stats.NewTable(header...)
	for _, b := range r.Benchmarks {
		row := make([]any, 0, len(header))
		row = append(row, b)
		for _, cfg := range r.Order {
			if v, ok := r.Values[cfg][b]; ok {
				row = append(row, fmt.Sprintf("%.2f", v))
			} else {
				row = append(row, "-")
			}
		}
		t.Row(row...)
	}
	gm := make([]any, 0, len(header))
	gm = append(gm, "GEOMEAN")
	for _, cfg := range r.Order {
		gm = append(gm, fmt.Sprintf("%.2f", r.Geomean(cfg)))
	}
	t.Row(gm...)
	out := fmt.Sprintf("%s (%s)\n%s", r.Title, r.Metric, t.String())
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// sortedKeys returns map keys in stable order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
