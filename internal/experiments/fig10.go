package experiments

import (
	"fmt"

	"paraverser/internal/core"
)

// Mixes returns the paper's five random SPEC mixes (footnote 19).
func Mixes() map[string][]string {
	return map[string][]string{
		"mix1": {"bwaves", "gcc", "mcf", "deepsjeng"},
		"mix2": {"cam4", "imagick", "nab", "fotonik3d"},
		"mix3": {"leela", "exchange2", "xz", "wrf"},
		"mix4": {"pop2", "roms", "perlbench", "x264"},
		"mix5": {"xalancbmk", "omnetpp", "cactuBSSN", "lbm"},
	}
}

// Fig10 reproduces the 4-core multi-process figure: slowdown of total CPI
// per mix, per checker configuration, with companion columns excluding
// the LSL NoC-traffic impact (the paper's coloured bars).
func Fig10(sc Scale) (*SeriesResult, error) { return fig10(defaultEngine(), sc) }

func fig10(e *Engine, sc Scale) (*SeriesResult, error) {
	r := &SeriesResult{
		Title:  "Fig. 10: 4-core multi-process SPEC mixes, full coverage",
		Metric: "slowdown % of total CPI vs no-checking baseline",
		Values: make(map[string]map[string]float64),
	}
	configs := []NamedConfig{
		{Label: "1xX2@3.0", Cfg: core.DefaultConfig(x2Spec(1, 3.0))},
		{Label: "2xX2@1.5", Cfg: core.DefaultConfig(x2Spec(2, 1.5))},
		{Label: "4xA510@2.0", Cfg: core.DefaultConfig(a510Spec(4, 2.0))},
	}
	for _, nc := range configs {
		r.Order = append(r.Order, nc.Label, nc.Label+"-noLSLnoc")
		r.Values[nc.Label] = make(map[string]float64)
		r.Values[nc.Label+"-noLSLnoc"] = make(map[string]float64)
	}

	perLane := sc.Insts / 2 // 4 lanes: keep total work comparable
	mixNames := sortedKeys(Mixes())
	baseF := make(map[string]*Future, len(mixNames))
	runF := make(map[string]map[string]*Future, len(mixNames))
	for _, mixName := range mixNames {
		r.Benchmarks = append(r.Benchmarks, mixName)
		var ws []core.Workload
		for _, b := range Mixes()[mixName] {
			prog, err := specProg(b)
			if err != nil {
				return nil, err
			}
			ws = append(ws, core.Workload{Name: b, Prog: prog, MaxInsts: perLane})
		}
		baseF[mixName] = e.Submit(baselineCfg(), ws)
		runF[mixName] = make(map[string]*Future, 2*len(configs))
		for _, nc := range configs {
			for _, lslOn := range []bool{true, false} {
				cfg := nc.Cfg
				cfg.LSLTrafficOnNoC = lslOn
				label := nc.Label
				if !lslOn {
					label += "-noLSLnoc"
				}
				runF[mixName][label] = e.Submit(cfg, ws)
			}
		}
	}

	for _, mixName := range mixNames {
		baseRes, err := baseF[mixName].Wait()
		if err != nil {
			return nil, fmt.Errorf("fig10 baseline %s: %w", mixName, err)
		}
		base := baseRes.TotalCPI(3.0)
		for _, nc := range configs {
			for _, label := range []string{nc.Label, nc.Label + "-noLSLnoc"} {
				res, err := runF[mixName][label].Wait()
				if err != nil {
					return nil, fmt.Errorf("fig10 %s/%s: %w", label, mixName, err)
				}
				if res.Detections() != 0 {
					return nil, fmt.Errorf("fig10 %s/%s: clean run raised detections", label, mixName)
				}
				r.Values[label][mixName] = (res.TotalCPI(3.0)/base - 1) * 100
			}
		}
	}
	r.Notes = append(r.Notes,
		"paper: ~1% gm for homogeneous and 2xX2@1.5; <0.6% for 4xA510@2.0; coloured bars exclude LSL NoC traffic")
	return r, nil
}
