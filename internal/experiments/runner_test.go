package experiments

import (
	"bytes"
	"path"
	"reflect"
	"strings"
	"sync"
	"testing"

	"paraverser/internal/core"
	"paraverser/internal/cpu"
	"paraverser/internal/fault"
	"paraverser/internal/obs"
)

// faultProbe is a fixed fault for cacheability tests.
func faultProbe() fault.Fault {
	return fault.Campaign(99, 1, fuCounts())[0]
}

// tinyScale is the smallest scale that still exercises the full fig. 6/7
// matrices (baselines, every configuration, the DVFS sweep).
func tinyScale() Scale {
	return Scale{
		Insts:         40_000,
		Warmup:        20_000,
		Benchmarks:    []string{"exchange2", "mcf"},
		GAPScale:      8,
		GAPEdgeFactor: 6,
		ParsecScale:   200,
		ED2PFreqs:     []float64{1.4, 2.0},
	}
}

// TestWorkerCountDeterminism asserts the engine's core guarantee: the
// rendered tables AND the exported metrics snapshot are byte-identical
// no matter how many workers race over the run matrix or how many
// checker verifications each run overlaps (-j and -check-workers).
func TestWorkerCountDeterminism(t *testing.T) {
	defer SetCheckWorkers(0)
	sc := tinyScale()
	type tables struct{ fig6, fig7slow, fig7cov, metrics string }
	var want tables
	for i, workers := range []int{1, 2, 8} {
		SetCheckWorkers(workers) // 1 = inline checks, then overlapped
		e := NewEngine(workers)
		r6, err := fig6(e, sc)
		if err != nil {
			t.Fatalf("fig6 at %d workers: %v", workers, err)
		}
		slow, cov, err := fig7(e, sc)
		if err != nil {
			t.Fatalf("fig7 at %d workers: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := e.MetricsSnapshot().WriteJSON(&buf); err != nil {
			t.Fatalf("metrics snapshot at %d workers: %v", workers, err)
		}
		got := tables{r6.Table(), slow.Table(), cov.Table(), buf.String()}
		if i == 0 {
			want = got
			continue
		}
		if got.fig6 != want.fig6 {
			t.Errorf("fig6 table differs between 1 and %d workers:\n%s\n--- vs ---\n%s", workers, got.fig6, want.fig6)
		}
		if got.fig7slow != want.fig7slow {
			t.Errorf("fig7 slowdown table differs between 1 and %d workers", workers)
		}
		if got.fig7cov != want.fig7cov {
			t.Errorf("fig7 coverage table differs between 1 and %d workers", workers)
		}
		if got.metrics != want.metrics {
			t.Errorf("exported metrics differ between 1 and %d workers:\n%s\n--- vs ---\n%s",
				workers, got.metrics, want.metrics)
		}
	}
}

// TestTimeShardDeterminism asserts the parallel-in-time engine's
// contract at the experiment level: fig. 6 tables and the exported
// metrics are byte-identical at every speculation depth — each engine
// carries a fresh speculation cache, so every depth exercises the
// record path, and within each engine the shared baselines exercise
// replay.
func TestTimeShardDeterminism(t *testing.T) {
	defer SetTimeShards(0)
	sc := tinyScale()
	var want6, wantMetrics string
	for i, shards := range []int{1, 2, 8} {
		SetTimeShards(shards)
		e := NewEngine(2)
		r6, err := fig6(e, sc)
		if err != nil {
			t.Fatalf("fig6 at %d shards: %v", shards, err)
		}
		var buf bytes.Buffer
		if err := e.MetricsSnapshot().WriteJSON(&buf); err != nil {
			t.Fatalf("metrics snapshot at %d shards: %v", shards, err)
		}
		if i == 0 {
			want6, wantMetrics = r6.Table(), buf.String()
			continue
		}
		if got := r6.Table(); got != want6 {
			t.Errorf("fig6 table differs between 1 and %d shards:\n%s\n--- vs ---\n%s", shards, got, want6)
		}
		if buf.String() != wantMetrics {
			t.Errorf("exported metrics differ between 1 and %d shards", shards)
		}
		if st := e.SpecStats(); st.StreamsRecorded == 0 || st.StreamsReplayed == 0 {
			t.Errorf("at %d shards the speculation cache recorded %d and replayed %d streams; the figure must exercise both paths",
				shards, st.StreamsRecorded, st.StreamsReplayed)
		}
	}
}

// TestRunCacheMemoizes asserts a second identical figure performs zero
// new simulations: every run is served from the engine's result cache.
func TestRunCacheMemoizes(t *testing.T) {
	sc := tinyScale()
	e := NewEngine(2)
	if _, err := fig6(e, sc); err != nil {
		t.Fatal(err)
	}
	runsAfterFirst := e.Runs()
	if runsAfterFirst == 0 {
		t.Fatal("first fig6 performed no simulations")
	}
	if _, err := fig6(e, sc); err != nil {
		t.Fatal(err)
	}
	if e.Runs() != runsAfterFirst {
		t.Errorf("second fig6 ran %d new simulations, want 0", e.Runs()-runsAfterFirst)
	}
	if e.Hits() == 0 {
		t.Error("second fig6 recorded no cache hits")
	}
}

// TestSubmitSingleflight asserts identical concurrent submissions share
// one simulation.
func TestSubmitSingleflight(t *testing.T) {
	e := NewEngine(4)
	cfg := baselineCfg()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.SubmitSpec(cfg, "exchange2", 20_000, 10_000).Wait(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := e.Runs(); got != 1 {
		t.Errorf("8 identical submissions performed %d simulations, want 1", got)
	}
}

// TestFaultRunsNotCached asserts interceptor configs bypass the cache:
// their injector state is private per run.
func TestFaultRunsNotCached(t *testing.T) {
	e := NewEngine(2)
	cfg := core.DefaultConfig(x2Spec(1, 3.0))
	if cacheable(&cfg) != true {
		t.Fatal("clean config reported uncacheable")
	}
	fcfg, _, err := withFault(cfg, faultProbe())
	if err != nil {
		t.Fatal(err)
	}
	if cacheable(&fcfg) {
		t.Error("interceptor config reported cacheable")
	}
	for i := 0; i < 2; i++ {
		f, _, err := submitFault(e, cfg, "exchange2", faultProbe(), 30_000)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Runs(); got != 2 {
		t.Errorf("2 fault submissions performed %d simulations, want 2 (uncached)", got)
	}
}

// TestFingerprintCoversConfig pins the fingerprint to the shapes of
// core.Config and cpu.Config: a new field on either must be explicitly
// classified (hashed or excluded with a reason) before the tests pass
// again. Without this, adding a field that changes simulated outcomes
// would silently alias distinct configurations onto stale cache
// entries.
//
// The check is recursive: every struct type from the core or cpu
// packages reachable through a hashed field (unwrapping slices, arrays,
// maps and pointers) needs its own policy table
// (fingerprintedNestedFields), bidirectionally checked the same way.
// The earlier, top-level-only version of this test let a field added to
// a nested struct — or a whole new nested struct — ride into or out of
// the %+v rendering with no decision recorded.
func TestFingerprintCoversConfig(t *testing.T) {
	// nestedPolicy resolves the policy table for a struct type from the
	// core or cpu packages; nil, false for types the walk stops at
	// (other packages render every exported field via %+v and carry no
	// exclusions).
	nestedPolicy := func(typ reflect.Type) (map[string]bool, bool) {
		pkg := typ.PkgPath()
		if !strings.HasSuffix(pkg, "internal/core") && !strings.HasSuffix(pkg, "internal/cpu") {
			return nil, false
		}
		if typ == reflect.TypeOf(cpu.Config{}) {
			return fingerprintedCPUFields, true
		}
		key := path.Base(pkg) + "." + typ.Name()
		policy, ok := fingerprintedNestedFields[key]
		if !ok {
			t.Errorf("nested struct %s is reachable through a hashed fingerprint field but has no policy table: add %q to fingerprintedNestedFields", key, key)
		}
		return policy, ok
	}
	// structElem unwraps containers to the struct type they carry, if
	// any.
	var structElem func(typ reflect.Type) (reflect.Type, bool)
	structElem = func(typ reflect.Type) (reflect.Type, bool) {
		switch typ.Kind() {
		case reflect.Struct:
			return typ, true
		case reflect.Slice, reflect.Array, reflect.Ptr, reflect.Map:
			return structElem(typ.Elem())
		}
		return nil, false
	}
	visited := make(map[reflect.Type]bool)
	var check func(typ reflect.Type, policy map[string]bool)
	check = func(typ reflect.Type, policy map[string]bool) {
		if visited[typ] {
			return
		}
		visited[typ] = true
		seen := make(map[string]bool, typ.NumField())
		for i := 0; i < typ.NumField(); i++ {
			field := typ.Field(i)
			name := field.Name
			seen[name] = true
			hashed, ok := policy[name]
			if !ok {
				t.Errorf("%s.%s is not classified in the fingerprint policy: "+
					"add it to the table (and to writeConfig if it can change simulated outcomes)",
					typ.Name(), name)
				continue
			}
			if !hashed {
				continue // excluded fields are not part of the rendering
			}
			if elem, ok := structElem(field.Type); ok {
				if nested, ok := nestedPolicy(elem); ok {
					check(elem, nested)
				}
			}
		}
		for name := range policy {
			if !seen[name] {
				t.Errorf("fingerprint policy lists %s.%s, which no longer exists", typ.Name(), name)
			}
		}
	}
	check(reflect.TypeOf(core.Config{}), fingerprintedConfigFields)
	check(reflect.TypeOf(cpu.Config{}), fingerprintedCPUFields)
	// Every nested table must have been reached: a stale entry here
	// means the field that once led to it was removed or re-typed.
	for key := range fingerprintedNestedFields {
		reached := false
		for typ := range visited {
			if path.Base(typ.PkgPath())+"."+typ.Name() == key {
				reached = true
				break
			}
		}
		if !reached {
			t.Errorf("fingerprintedNestedFields lists %s, which is no longer reachable from core.Config or cpu.Config", key)
		}
	}
}

// TestFingerprintExcludesObservability asserts the deliberately excluded
// fields really do not split the cache: configs differing only in
// CheckWorkers or Trace must share one fingerprint.
func TestFingerprintExcludesObservability(t *testing.T) {
	a := core.DefaultConfig(a510Spec(4, 2.0))
	b := a
	b.CheckWorkers = 7
	b.Trace = obs.NewTrace(16)
	if fingerprint(&a) != fingerprint(&b) {
		t.Error("CheckWorkers/Trace changed the fingerprint; they must not split the cache")
	}
}

// TestFingerprintSeparatesConfigs spot-checks that distinct
// configurations and workload windows get distinct cache keys.
func TestFingerprintSeparatesConfigs(t *testing.T) {
	a := core.DefaultConfig(a510Spec(4, 2.0))
	b := core.DefaultConfig(a510Spec(4, 2.0))
	if fingerprint(&a) != fingerprint(&b) {
		t.Error("identical configs fingerprint differently")
	}
	b.HashMode = true
	if fingerprint(&a) == fingerprint(&b) {
		t.Error("HashMode toggle did not change the fingerprint")
	}
	c := core.DefaultConfig(a510Spec(2, 2.0))
	if fingerprint(&a) == fingerprint(&c) {
		t.Error("checker-count change did not change the fingerprint")
	}
	if specKey("mcf", 1000, 500) == specKey("mcf", 1000, 501) {
		t.Error("warmup change did not change the spec run key")
	}
}
