package experiments

import (
	"strings"
	"testing"
)

// TestFuzzExperimentDeterministicAcrossWorkers pins the rendered
// campaign report — table included — as byte-identical at any worker
// count.
func TestFuzzExperimentDeterministicAcrossWorkers(t *testing.T) {
	a := Fuzz(6, 120, 1, 1)
	b := Fuzz(6, 120, 4, 1)
	if a.Table() != b.Table() {
		t.Fatalf("fuzz experiment diverged across worker counts:\n--- w=1 ---\n%s--- w=4 ---\n%s", a.Table(), b.Table())
	}
	if !a.Clean() {
		t.Fatalf("tiny campaign not clean:\n%s", a.Failures())
	}
	if !strings.Contains(a.Table(), "all seeds agree") {
		t.Fatalf("clean campaign table missing agreement line:\n%s", a.Table())
	}
}
