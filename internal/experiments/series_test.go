package experiments

import (
	"math"
	"strings"
	"testing"
)

func seriesFixture() *SeriesResult {
	return &SeriesResult{
		Title:      "fixture",
		Metric:     "slowdown %",
		Benchmarks: []string{"a", "b", "c"},
		Order:      []string{"cfg1", "cfg2"},
		Values: map[string]map[string]float64{
			"cfg1": {"a": 10, "b": 20, "c": 30},
			"cfg2": {"a": 5, "c": 15}, // "b" missing
		},
	}
}

func TestSeriesGeomean(t *testing.T) {
	r := seriesFixture()
	// cfg1: geomean(1.1, 1.2, 1.3) - 1.
	if got, want := r.Geomean("cfg1"), 19.72; got < want-0.1 || got > want+0.1 {
		t.Errorf("cfg1 geomean %.2f, want ~%.2f", got, want)
	}
	// Missing benchmarks are skipped, not treated as zero.
	if got, want := r.Geomean("cfg2"), 9.88; got < want-0.1 || got > want+0.1 {
		t.Errorf("cfg2 geomean %.2f, want ~%.2f (b skipped)", got, want)
	}
	// Unknown config: no values at all — fail loud, not a fake 0.
	if got := r.Geomean("nope"); !math.IsNaN(got) {
		t.Errorf("unknown config geomean %.2f, want NaN", got)
	}
}

func TestSeriesRange(t *testing.T) {
	r := seriesFixture()
	if lo, hi := r.Range("cfg1"); lo != 10 || hi != 30 {
		t.Errorf("cfg1 range [%.0f, %.0f], want [10, 30]", lo, hi)
	}
	if lo, hi := r.Range("cfg2"); lo != 5 || hi != 15 {
		t.Errorf("cfg2 range [%.0f, %.0f], want [5, 15]", lo, hi)
	}
}

func TestSeriesTableMissingValues(t *testing.T) {
	r := seriesFixture()
	table := r.Table()
	if !strings.Contains(table, "GEOMEAN") {
		t.Error("table missing GEOMEAN row")
	}
	// The missing cfg2/b cell renders as "-".
	for _, line := range strings.Split(table, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "b ") {
			if !strings.Contains(line, "-") {
				t.Errorf("missing value not rendered as '-': %q", line)
			}
		}
	}
}

func TestSeriesTableEmptyConfigs(t *testing.T) {
	r := &SeriesResult{
		Title:      "empty",
		Metric:     "slowdown %",
		Benchmarks: []string{"a"},
		Values:     map[string]map[string]float64{},
	}
	table := r.Table() // must not panic with no configs
	if !strings.Contains(table, "empty") || !strings.Contains(table, "GEOMEAN") {
		t.Errorf("empty-config table malformed:\n%s", table)
	}
	if got := r.Geomean("any"); !math.IsNaN(got) {
		t.Errorf("empty geomean %.2f, want NaN", got)
	}
}

// TestSeriesEmptyFailsLoud pins the regression: a config listed in the
// display order whose series assembled no values must render NaN in
// the GEOMEAN row and return NaN ranges — never a silent 0 that reads
// as a perfect result (the empty-geomean failure mode fixed in PR 2).
func TestSeriesEmptyFailsLoud(t *testing.T) {
	r := &SeriesResult{
		Title:      "broken-assembly",
		Metric:     "slowdown %",
		Benchmarks: []string{"a", "b"},
		Order:      []string{"ok", "hollow"},
		Values: map[string]map[string]float64{
			"ok":     {"a": 10, "b": 20},
			"hollow": {}, // assembled nothing
		},
	}
	if got := r.Geomean("hollow"); !math.IsNaN(got) {
		t.Errorf("hollow geomean %.2f, want NaN", got)
	}
	if lo, hi := r.Range("hollow"); !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Errorf("hollow range [%.2f, %.2f], want NaNs", lo, hi)
	}
	// The populated config is unaffected.
	if got := r.Geomean("ok"); math.IsNaN(got) {
		t.Error("populated config geomean became NaN")
	}
	if !strings.Contains(r.Table(), "NaN") {
		t.Errorf("table hides the empty series:\n%s", r.Table())
	}
}
