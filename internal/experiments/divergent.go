package experiments

import (
	"fmt"

	"paraverser/internal/core"
	"paraverser/internal/fault"
	"paraverser/internal/stats"
	"paraverser/internal/workload/gap"
	"paraverser/internal/workload/parsec"
)

// DivergentResult reports the divergent-vs-lockstep study: the paired
// fault-injection verdicts and the checking-slowdown cost of buying the
// extra coverage.
type DivergentResult struct {
	// Slowdown is the per-workload slowdown table (vs the no-checking
	// baseline) for the lockstep and divergent configurations.
	Slowdown *SeriesResult
	// Lockstep and Divergent are the two campaigns. Equal seeds and
	// single-config lists make trial i inject the identical fault into
	// the identical workload under both, so the verdicts pair exactly.
	Lockstep, Divergent *fault.CampaignResult
	// Escapes counts lockstep trials classified undetected-SDC;
	// Converted counts how many of those the divergent configuration
	// detected — the coverage gain the decorrelation buys.
	Escapes, Converted int
	// Regressed counts trials detected under lockstep but not under
	// divergent (the price of giving up identical replay, e.g. a
	// checker-local fault masked by the variant's register permutation).
	Regressed int
}

// divergentWorkloads assembles a single-hart workload per suite: two
// SPEC benchmarks, two GAP kernels, and the one-thread PARSEC
// blackscholes build. Divergent mode requires single-hart programs (the
// private canonical image cannot track cross-hart stores), which is why
// the PARSEC entry uses BlackscholesThreads(n, 1).
func divergentWorkloads(sc Scale) ([]core.Workload, error) {
	var ws []core.Workload
	for _, bench := range sc.faultBenchmarks() {
		prog, err := specProg(bench)
		if err != nil {
			return nil, err
		}
		ws = append(ws, core.Workload{Name: bench, Prog: prog, MaxInsts: sc.FaultHorizon})
	}
	g := gap.Kronecker(sc.GAPScale, sc.GAPEdgeFactor, 1)
	bfs, _ := gap.BFS(g, 0)
	pr, _ := gap.PageRank(g, 4)
	ws = append(ws,
		core.Workload{Name: "gap.bfs", Prog: bfs, MaxInsts: sc.FaultHorizon},
		core.Workload{Name: "gap.pr", Prog: pr, MaxInsts: sc.FaultHorizon},
		core.Workload{Name: "parsec.blackscholes1", Prog: parsec.BlackscholesThreads(sc.ParsecScale, 1), MaxInsts: sc.FaultHorizon},
	)
	return ws, nil
}

// divergentConfigs returns the matched lockstep and divergent system
// configurations: identical checker pools, identical recovery policy —
// the only difference is the check mode, so every delta in the tables is
// attributable to decorrelation.
func divergentConfigs() (lockstep, divergent core.Config) {
	lockstep = core.DefaultConfig(a510Spec(4, 2.0))
	lockstep.Recovery = core.DefaultRecovery()
	divergent = lockstep
	divergent.CheckMode = core.CheckDivergent
	applyCheckWorkers(&lockstep)
	applyBlockExec(&lockstep)
	applyTrace(&lockstep)
	applyCheckWorkers(&divergent)
	applyBlockExec(&divergent)
	applyTrace(&divergent)
	return lockstep, divergent
}

// divergentMix weights the campaign toward the common-mode memory-path
// faults the study is about (stuck address bit, DRAM row) while keeping
// every checker-local kind in play; the remainder are FU stuck-ats.
func divergentMix() fault.FaultMix {
	return fault.FaultMix{Transient: 0.15, LSQ: 0.15, StuckAddr: 0.25, DRAMRow: 0.25}
}

// Divergent runs the figure-style divergent-vs-lockstep study: paired
// fault-injection campaigns quantifying the coverage gain on common-mode
// memory-path faults, plus fault-free runs quantifying the slowdown the
// divergent checker pays for using the real memory hierarchy. Trial
// seeds derive from the base seed and results land in trial order, so
// the tables are byte-identical at any worker count.
func Divergent(sc Scale, seed int64, trials, workers int) (*DivergentResult, error) {
	return divergentStudy(defaultEngine(), sc, seed, trials, workers)
}

func divergentStudy(e *Engine, sc Scale, seed int64, trials, workers int) (*DivergentResult, error) {
	if trials <= 0 {
		trials = 6 * sc.FaultTrials
	}
	ws, err := divergentWorkloads(sc)
	if err != nil {
		return nil, err
	}
	lockCfg, divCfg := divergentConfigs()

	out := &DivergentResult{Slowdown: &SeriesResult{
		Title:  "Divergent vs lockstep checking: full-coverage slowdown, 4xA510@2GHz",
		Metric: "slowdown % vs no-checking baseline",
		Values: map[string]map[string]float64{"lockstep": {}, "divergent": {}},
		Order:  []string{"lockstep", "divergent"},
	}}

	// Phase 1: fault-free slowdown runs, all in flight at once. The
	// campaign phase below bypasses the engine (private injectors), so
	// kicking these off first keeps the pool busy throughout.
	type slowRun struct{ base, lock, div *Future }
	slowF := make([]slowRun, len(ws))
	for i, w := range ws {
		out.Slowdown.Benchmarks = append(out.Slowdown.Benchmarks, w.Name)
		one := []core.Workload{{Name: w.Name, Prog: w.Prog, MaxInsts: sc.Insts, WarmupInsts: sc.Warmup}}
		slowF[i] = slowRun{
			base: e.Submit(baselineCfg(), one),
			lock: e.Submit(lockCfg, one),
			div:  e.Submit(divCfg, one),
		}
	}

	// Phase 2: the paired campaigns. Same seed, same trial count, same
	// workload pool, one config each: genTrial's per-trial rng draws the
	// identical (fault, workload, checker) stream for both, so trial i
	// is the same experiment under the two check modes.
	mix := divergentMix()
	run := func(cfg core.Config) (*fault.CampaignResult, error) {
		return fault.RunCampaign(fault.CampaignConfig{
			Seed:      seed,
			Trials:    trials,
			Workers:   workers,
			Workloads: ws,
			Configs:   []core.Config{cfg},
			Mix:       &mix,
		})
	}
	if out.Lockstep, err = run(lockCfg); err != nil {
		return nil, fmt.Errorf("divergent study, lockstep campaign: %w", err)
	}
	if out.Divergent, err = run(divCfg); err != nil {
		return nil, fmt.Errorf("divergent study, divergent campaign: %w", err)
	}
	defaultEngine().RecordMetrics(out.Lockstep.RunMetrics())
	defaultEngine().RecordMetrics(out.Divergent.RunMetrics())

	for i := range out.Lockstep.Trials {
		lt, dt := &out.Lockstep.Trials[i], &out.Divergent.Trials[i]
		if lt.Fault != dt.Fault || lt.Workload != dt.Workload {
			return nil, fmt.Errorf("divergent study: trial %d not paired (%v vs %v)", i, lt.Fault, dt.Fault)
		}
		switch {
		case lt.Outcome == fault.UndetectedSDC:
			out.Escapes++
			if dt.Outcome == fault.Detected {
				out.Converted++
			}
		case lt.Outcome == fault.Detected && dt.Outcome != fault.Detected:
			out.Regressed++
		}
	}

	// Phase 3: collect the slowdown table.
	for i, w := range ws {
		baseRes, err := slowF[i].base.Wait()
		if err != nil {
			return nil, fmt.Errorf("divergent study baseline %s: %w", w.Name, err)
		}
		base := baseRes.TimeNS()
		runs := []struct {
			label string
			fut   *Future
		}{{"lockstep", slowF[i].lock}, {"divergent", slowF[i].div}}
		for _, run := range runs {
			label, fut := run.label, run.fut
			res, err := fut.Wait()
			if err != nil {
				return nil, fmt.Errorf("divergent study %s %s: %w", label, w.Name, err)
			}
			if res.Detections() != 0 {
				return nil, fmt.Errorf("divergent study %s: clean %s run raised detections", w.Name, label)
			}
			out.Slowdown.Values[label][w.Name] = (res.TimeNS()/base - 1) * 100
		}
	}
	out.Slowdown.Notes = append(out.Slowdown.Notes,
		"divergent checkers pay the real memory hierarchy for the decorrelated layout; lockstep checkers hit the perfect replay path",
		fmt.Sprintf("lockstep escapes (undetected SDC): %d of %d trials; divergent converted %d of those to detections",
			out.Escapes, trials, out.Converted))
	return out, nil
}

// Table renders the paired outcome split and the slowdown table.
func (r *DivergentResult) Table() string {
	t := stats.NewTable("outcome", "lockstep", "divergent")
	lc, dc := r.Lockstep.Outcomes(), r.Divergent.Outcomes()
	for _, o := range []fault.Outcome{fault.Detected, fault.Masked, fault.Dormant, fault.UndetectedSDC} {
		t.Row(o.String(), lc[o], dc[o])
	}
	out := fmt.Sprintf("Paired fault-injection outcomes (%d trials, identical fault streams)\n%s",
		len(r.Lockstep.Trials), t.String())
	out += fmt.Sprintf("coverage gain: %d/%d lockstep escapes detected under divergent checking; %d regressions\n\n",
		r.Converted, r.Escapes, r.Regressed)
	return out + r.Slowdown.Table()
}
