package experiments

import (
	"strings"
	"testing"
)

// miniScale keeps experiment tests fast while still exercising every code
// path.
func miniScale() Scale {
	return Scale{
		Insts:           80_000,
		Warmup:          80_000,
		Benchmarks:      []string{"exchange2", "bwaves", "mcf"},
		FaultTrials:     4,
		FaultHorizon:    150_000,
		FaultBenchmarks: []string{"deepsjeng"},
		GAPScale:        8,
		GAPEdgeFactor:   6,
		ParsecScale:     200,
		ED2PFreqs:       []float64{1.4, 2.0},
	}
}

func TestFig6ShapeInvariants(t *testing.T) {
	r, err := Fig6(miniScale())
	if err != nil {
		t.Fatal(err)
	}
	// Paper-shape invariants rather than absolute numbers:
	// the homogeneous checker keeps up (low single digits)...
	if gm := r.Geomean("1xX2@3.0"); gm < 0 || gm > 6 {
		t.Errorf("homogeneous geomean %.2f%%, want low single digits", gm)
	}
	// ...2xX2@1.5 is comparable to homogeneous...
	if gm := r.Geomean("2xX2@1.5"); gm > 8 {
		t.Errorf("2xX2@1.5 geomean %.2f%% too high", gm)
	}
	// ...DSN18's 12 dedicated cores are insufficient (the paper's 9%)...
	dsn := r.Geomean("DSN18-12")
	if dsn < 4 {
		t.Errorf("DSN18 geomean %.2f%%, want clearly elevated", dsn)
	}
	// ...and ParaDox's 16 keep slowdown low at high area cost.
	pd := r.Geomean("ParaDox-16")
	if pd >= dsn {
		t.Errorf("ParaDox (%.2f%%) not better than DSN18 (%.2f%%)", pd, dsn)
	}
	if !strings.Contains(r.Table(), "GEOMEAN") {
		t.Error("table missing geomean row")
	}
}

func TestFig7ShapeInvariants(t *testing.T) {
	slow, cov, err := Fig7(miniScale())
	if err != nil {
		t.Fatal(err)
	}
	// Opportunistic mode never slows much: overheads are NoC-bound.
	for _, cfgName := range slow.Order {
		if gm := slow.Geomean(cfgName); gm > 5 {
			t.Errorf("%s: opportunistic geomean %.2f%% too high", cfgName, gm)
		}
	}
	// Coverage ordering: faster checkers cover more.
	for _, bench := range cov.Benchmarks {
		lo := cov.Values["4xA510@1.6"][bench]
		hi := cov.Values["4xA510@2.0"][bench]
		if hi < lo-5 {
			t.Errorf("%s: coverage fell with frequency: %.1f @1.6 vs %.1f @2.0", bench, lo, hi)
		}
	}
	// Homogeneous full-speed checker covers nearly everything.
	if gm := cov.Geomean("1xX2@3.0"); gm < 90 {
		t.Errorf("homogeneous coverage %.1f%%, want >= 90%%", gm)
	}
}

func TestFig8ShapeInvariants(t *testing.T) {
	sc := miniScale()
	r, err := Fig8(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.FullDetectedPct <= 0 || r.FullDetectedPct > 100 {
		t.Errorf("full-coverage detection %.1f%% out of range", r.FullDetectedPct)
	}
	if r.FullDetectedPct+r.MaskedPct > 100.01 {
		t.Error("detected + masked exceeds 100%")
	}
	// The biggest checker configuration must cover at least as much as
	// the smallest.
	for _, bench := range r.Coverage.Benchmarks {
		small := r.Coverage.Values["1xA510@0.5"][bench]
		big := r.Coverage.Values["2xA510@2.0"][bench]
		if big < small-1e-9 {
			t.Errorf("%s: coverage fell with more checker capacity (%.1f -> %.1f)", bench, small, big)
		}
	}
}

func TestFig9ShapeInvariants(t *testing.T) {
	r, err := Fig9(miniScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 12 { // 6 GAP + 6 PARSEC
		t.Fatalf("fig9 covered %d workloads, want 12", len(r.Benchmarks))
	}
	// More checkers never makes full coverage much slower.
	for _, w := range r.Benchmarks {
		one := r.Values["1xA510"][w]
		four := r.Values["4xA510"][w]
		if four > one+3 {
			t.Errorf("%s: slowdown grew with checkers: %.2f%% @1 -> %.2f%% @4", w, one, four)
		}
	}
	// GAP is memory-bound: with 2 checkers the geomean over GAP rows
	// should be modest (the paper's "even 2 A510s suffice").
	var gapTwo []float64
	for _, w := range r.Benchmarks {
		if strings.HasPrefix(w, "gap.") {
			gapTwo = append(gapTwo, r.Values["2xA510"][w])
		}
	}
	var sum float64
	for _, v := range gapTwo {
		sum += v
	}
	if mean := sum / float64(len(gapTwo)); mean > 15 {
		t.Errorf("GAP mean slowdown with 2 A510s %.2f%%, want modest", mean)
	}
}

func TestFig10ShapeInvariants(t *testing.T) {
	sc := miniScale()
	r, err := Fig10(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks) != 5 {
		t.Fatalf("fig10 covered %d mixes, want 5", len(r.Benchmarks))
	}
	for _, mix := range r.Benchmarks {
		with := r.Values["4xA510@2.0"][mix]
		without := r.Values["4xA510@2.0-noLSLnoc"][mix]
		if without > with+1 {
			t.Errorf("%s: removing LSL NoC traffic increased slowdown (%.2f -> %.2f)", mix, with, without)
		}
	}
}

func TestFig11ShapeInvariants(t *testing.T) {
	r, err := Fig11(miniScale())
	if err != nil {
		t.Fatal(err)
	}
	fast := r.Geomean("fastNoC")
	slowG := r.Geomean("slowNoC")
	hash := r.Geomean("slowNoC+hash")
	if slowG < fast {
		t.Errorf("slow NoC (%.2f%%) not worse than fast (%.2f%%)", slowG, fast)
	}
	// Hash Mode rescues the slow NoC: it must close most of the gap.
	if hash > fast+(slowG-fast)*0.7+0.5 {
		t.Errorf("hash mode %.2f%% did not close the slowNoC gap (fast %.2f%%, slow %.2f%%)",
			hash, fast, slowG)
	}
}

func TestPowerShapeInvariants(t *testing.T) {
	r, err := Power(miniScale())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := make(map[string]PowerRow, len(r.Rows))
	for _, row := range r.Rows {
		byLabel[row.Label] = row
	}
	homog := byLabel["1xX2@3.0 (DCLS-comparable)"].EnergyOverhead
	little := byLabel["4xA510@2.0"].EnergyOverhead
	ed2p := byLabel["4xA510 ED2P-minimal DVFS"].EnergyOverhead
	halved := byLabel["2xX2@1.5"].EnergyOverhead
	dedicated := byLabel["ParaDox 16xA35 (dedicated)"].EnergyOverhead
	// Paper ordering: homogeneous >> halved-frequency X2s ~ A510s >
	// ED2P-tuned A510s >= dedicated tiny cores.
	if homog < 0.6 {
		t.Errorf("homogeneous energy overhead %.2f, want lockstep-like (~0.95)", homog)
	}
	if halved > homog || little > homog {
		t.Error("heterogeneous/DVFS configurations not cheaper than homogeneous")
	}
	if ed2p > little+0.02 {
		t.Errorf("ED2P (%.2f) not <= fixed-frequency A510s (%.2f)", ed2p, little)
	}
	if dedicated > little {
		t.Errorf("dedicated tiny cores (%.2f) not cheapest (A510s %.2f)", dedicated, little)
	}
}

func TestAreaMatchesPaper(t *testing.T) {
	a := Area()
	if a.StorageBytes < 1050 || a.StorageBytes > 1080 {
		t.Errorf("storage overhead %dB, want ~1064B", a.StorageBytes)
	}
	if a.DedicatedPct < 33 || a.DedicatedPct > 37 {
		t.Errorf("dedicated area %.1f%%, want ~35%%", a.DedicatedPct)
	}
	if !strings.Contains(a.Table(), "1064B") {
		t.Error("area table missing paper reference")
	}
}

func TestOpportunityShapeInvariants(t *testing.T) {
	r, err := Opportunity(miniScale())
	if err != nil {
		t.Fatal(err)
	}
	vals := make(map[string]float64, len(r.Rows))
	for _, row := range r.Rows {
		vals[row.Label] = row.Value
	}
	for _, flavour := range []string{"GAP-like", "PARSEC-like"} {
		het := vals[flavour+": speedup, 1 X2 + little cores as compute"]
		homog := vals[flavour+": speedup, 2 X2 as compute"]
		if het <= 1.0 {
			t.Errorf("%s: heterogeneous parallel speedup %.2f, want > 1", flavour, het)
		}
		if het >= 2.5 {
			t.Errorf("%s: heterogeneous speedup %.2f implausibly high", flavour, het)
		}
		if homog <= 1.2 {
			t.Errorf("%s: homogeneous 2-big speedup %.2f, want clearly parallel", flavour, homog)
		}
		over := vals[flavour+": overhead, little cores as checkers"]
		if over < 0 || over > 40 {
			t.Errorf("%s: checking overhead %.2f%% out of plausible range", flavour, over)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	s := Table1()
	for _, want := range []string{"X2", "A510", "A35", "DDR4", "mesh", "5000-instruction"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestMixesMatchPaperFootnote(t *testing.T) {
	m := Mixes()
	if len(m) != 5 {
		t.Fatalf("%d mixes, want 5", len(m))
	}
	for name, benches := range m {
		if len(benches) != 4 {
			t.Errorf("%s has %d benchmarks, want 4", name, len(benches))
		}
		for _, b := range benches {
			if _, err := specProg(b); err != nil {
				t.Errorf("%s: %v", b, err)
			}
		}
	}
}

func TestAblationShapeInvariants(t *testing.T) {
	r, err := Ablation(miniScale())
	if err != nil {
		t.Fatal(err)
	}
	vals := make(map[string]AblationRow, len(r.Rows))
	for _, row := range r.Rows {
		vals[row.Label] = row
	}
	base := vals["ParaVerser (all mechanisms)"]
	if base.CoveragePct < 99.9 {
		t.Errorf("full-coverage baseline coverage %.1f%%", base.CoveragePct)
	}
	hash := vals["Hash Mode (IV-I)"]
	if hash.LogBPI >= base.LogBPI/2+0.01 {
		t.Errorf("hash mode log traffic %.2f B/inst not <= half of %.2f", hash.LogBPI, base.LogBPI)
	}
	drain := vals["commit-delaying checkpoints (DSN18-style RCU)"]
	if drain.SlowdownPct < base.SlowdownPct {
		t.Error("commit-delaying checkpoints not costlier than overlapped RCU")
	}
	sampled := vals["opportunistic + 1-in-4 sampling (fn.18)"]
	opp := vals["opportunistic mode"]
	if sampled.CoveragePct >= opp.CoveragePct {
		t.Error("sampling did not reduce coverage below plain opportunistic")
	}
	if sampled.CoveragePct < 15 || sampled.CoveragePct > 45 {
		t.Errorf("1-in-4 sampling coverage %.1f%%, want roughly a quarter", sampled.CoveragePct)
	}
}
