package experiments

import (
	"fmt"

	"paraverser/internal/core"
	"paraverser/internal/emu"
	"paraverser/internal/fault"
	"paraverser/internal/isa"
)

// Fig8Result reports the hard-error injection study.
type Fig8Result struct {
	Coverage *SeriesResult
	// FullDetectedPct is the fraction of injected faults detected under
	// full coverage (the paper's 76%; the remainder were masked).
	FullDetectedPct float64
	// MaskedPct is the fraction whose activations never changed
	// execution.
	MaskedPct float64
	// MeanDetectionInsts is the mean main-core instruction count at
	// first detection for opportunistically detected faults.
	MeanDetectionInsts float64
}

// fig8Configs are the opportunistic checker configurations whose
// hard-error coverage fig. 8 sweeps ("minimum required configuration to
// cover such portions of errors").
func fig8Configs() []NamedConfig {
	mk := func(spec core.CheckerSpec) core.Config {
		cfg := core.DefaultConfig(spec)
		cfg.Mode = core.ModeOpportunistic
		return cfg
	}
	return []NamedConfig{
		{Label: "1xA510@0.5", Cfg: mk(a510Spec(1, 0.5))},
		{Label: "1xA510@1.0", Cfg: mk(a510Spec(1, 1.0))},
		{Label: "2xA510@2.0", Cfg: mk(a510Spec(2, 2.0))},
	}
}

// withFault returns a copy of cfg that injects f on checker 0 of every
// lane, with a fresh injector (so fire counters are per-run).
func withFault(cfg core.Config, f fault.Fault) (core.Config, *fault.Injector, error) {
	inj, err := fault.NewInjector(f)
	if err != nil {
		return cfg, nil, err
	}
	cfg.CheckerInterceptor = func(_, ckID int) emu.Interceptor {
		if ckID == 0 {
			return inj
		}
		return nil
	}
	return cfg, inj, nil
}

// Fig8 injects single-bit stuck-at hard faults on a checker core
// (section VII-B's methodology) and measures, per configuration, the
// fraction of detectable faults the opportunistic mode catches within the
// horizon. Detectability ground truth is a full-coverage run with the
// same fault.
func Fig8(sc Scale) (*Fig8Result, error) {
	out := &Fig8Result{Coverage: &SeriesResult{
		Title:      "Fig. 8: hard-error detection coverage, opportunistic mode",
		Metric:     "% of detectable injected faults caught within horizon",
		Benchmarks: sc.faultBenchmarks(),
		Values:     make(map[string]map[string]float64),
	}}
	configs := fig8Configs()
	for _, nc := range configs {
		out.Coverage.Order = append(out.Coverage.Order, nc.Label)
		out.Coverage.Values[nc.Label] = make(map[string]float64)
	}

	fullCfg := core.DefaultConfig(x2Spec(1, 3.0)) // ground truth: full coverage
	faults := fault.Campaign(99, sc.FaultTrials, fuCounts())

	var injected, fullDetected, masked int
	var detSum, detN float64
	for _, bench := range out.Coverage.Benchmarks {
		detectable := make([]fault.Fault, 0, len(faults))
		for _, f := range faults {
			injected++
			cfg, inj, err := withFault(fullCfg, f)
			if err != nil {
				return nil, err
			}
			res, err := runSpecW(cfg, bench, sc.FaultHorizon, 0)
			if err != nil {
				return nil, fmt.Errorf("fig8 ground truth %s: %w", bench, err)
			}
			switch fault.Classify(inj, res.Detections() > 0) {
			case fault.Detected:
				fullDetected++
				detectable = append(detectable, f)
			case fault.Masked:
				masked++
			}
		}
		for _, nc := range configs {
			caught := 0
			for _, f := range detectable {
				cfg, _, err := withFault(nc.Cfg, f)
				if err != nil {
					return nil, err
				}
				res, err := runSpecW(cfg, bench, sc.FaultHorizon, 0)
				if err != nil {
					return nil, fmt.Errorf("fig8 %s/%s: %w", nc.Label, bench, err)
				}
				if res.Detections() > 0 {
					caught++
					detSum += float64(res.Lanes[0].FirstDetectionInst)
					detN++
				}
			}
			pct := 100.0
			if len(detectable) > 0 {
				pct = 100 * float64(caught) / float64(len(detectable))
			}
			out.Coverage.Values[nc.Label][bench] = pct
		}
	}
	if injected > 0 {
		out.FullDetectedPct = 100 * float64(fullDetected) / float64(injected)
		out.MaskedPct = 100 * float64(masked) / float64(injected)
	}
	if detN > 0 {
		out.MeanDetectionInsts = detSum / detN
	}
	out.Coverage.Notes = append(out.Coverage.Notes,
		fmt.Sprintf("full-coverage detected %.0f%% of injections (paper: 76%%); %.0f%% masked",
			out.FullDetectedPct, out.MaskedPct),
		fmt.Sprintf("mean detection latency %.0f main-core instructions", out.MeanDetectionInsts),
		"paper: almost all detectable errors caught by 1xA510@0.5GHz within 100M instructions")
	return out, nil
}

func fuCounts() map[isa.Class]int {
	fu := make(map[isa.Class]int)
	for class, pool := range x2Spec(1, 3.0).CPU.FUs {
		fu[class] = pool.Count
	}
	return fu
}
