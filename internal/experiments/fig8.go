package experiments

import (
	"fmt"

	"paraverser/internal/core"
	"paraverser/internal/emu"
	"paraverser/internal/fault"
	"paraverser/internal/isa"
)

// Fig8Result reports the hard-error injection study.
type Fig8Result struct {
	Coverage *SeriesResult
	// FullDetectedPct is the fraction of injected faults detected under
	// full coverage (the paper's 76%; the remainder were masked).
	FullDetectedPct float64
	// MaskedPct is the fraction whose activations never changed
	// execution.
	MaskedPct float64
	// MeanDetectionInsts is the mean main-core instruction count at
	// first detection for opportunistically detected faults.
	MeanDetectionInsts float64
}

// fig8Configs are the opportunistic checker configurations whose
// hard-error coverage fig. 8 sweeps ("minimum required configuration to
// cover such portions of errors").
func fig8Configs() []NamedConfig {
	mk := func(spec core.CheckerSpec) core.Config {
		cfg := core.DefaultConfig(spec)
		cfg.Mode = core.ModeOpportunistic
		return cfg
	}
	return []NamedConfig{
		{Label: "1xA510@0.5", Cfg: mk(a510Spec(1, 0.5))},
		{Label: "1xA510@1.0", Cfg: mk(a510Spec(1, 1.0))},
		{Label: "2xA510@2.0", Cfg: mk(a510Spec(2, 2.0))},
	}
}

// withFault returns a copy of cfg that injects f on checker 0 of every
// lane, with a fresh injector (so fire counters are per-run).
func withFault(cfg core.Config, f fault.Fault) (core.Config, *fault.Injector, error) {
	inj, err := fault.NewInjector(f)
	if err != nil {
		return cfg, nil, err
	}
	cfg.CheckerInterceptor = func(_, ckID int) emu.Interceptor {
		if ckID == 0 {
			return inj
		}
		return nil
	}
	return cfg, inj, nil
}

// submitFault schedules one injected run of bench over the engine's
// pool. Interceptor configs are never cached, so each submission keeps
// its private injector and fire counters.
func submitFault(e *Engine, cfg core.Config, bench string, f fault.Fault, horizon int64) (*Future, *fault.Injector, error) {
	prog, err := specProg(bench)
	if err != nil {
		return nil, nil, err
	}
	fcfg, inj, err := withFault(cfg, f)
	if err != nil {
		return nil, nil, err
	}
	fut := e.Submit(fcfg, []core.Workload{{Name: bench, Prog: prog, MaxInsts: horizon}})
	return fut, inj, nil
}

// Fig8 injects single-bit stuck-at hard faults on a checker core
// (section VII-B's methodology) and measures, per configuration, the
// fraction of detectable faults the opportunistic mode catches within the
// horizon. Detectability ground truth is a full-coverage run with the
// same fault. Fault trials keep their per-trial deterministic seeds and
// fan out over the engine's pool; results are tallied in fixed
// (benchmark, config, fault) order, so the tables are byte-identical at
// any worker count.
func Fig8(sc Scale) (*Fig8Result, error) { return fig8(defaultEngine(), sc) }

func fig8(e *Engine, sc Scale) (*Fig8Result, error) {
	out := &Fig8Result{Coverage: &SeriesResult{
		Title:      "Fig. 8: hard-error detection coverage, opportunistic mode",
		Metric:     "% of detectable injected faults caught within horizon",
		Benchmarks: sc.faultBenchmarks(),
		Values:     make(map[string]map[string]float64),
	}}
	configs := fig8Configs()
	for _, nc := range configs {
		out.Coverage.Order = append(out.Coverage.Order, nc.Label)
		out.Coverage.Values[nc.Label] = make(map[string]float64)
	}

	fullCfg := core.DefaultConfig(x2Spec(1, 3.0)) // ground truth: full coverage
	faults := fault.Campaign(99, sc.FaultTrials, fuCounts())

	// Phase 1: ground-truth full-coverage runs for every (benchmark,
	// fault), all in flight at once.
	type gtRun struct {
		fut *Future
		inj *fault.Injector
	}
	ground := make(map[string][]gtRun, len(out.Coverage.Benchmarks))
	for _, bench := range out.Coverage.Benchmarks {
		runs := make([]gtRun, 0, len(faults))
		for _, f := range faults {
			fut, inj, err := submitFault(e, fullCfg, bench, f, sc.FaultHorizon)
			if err != nil {
				return nil, err
			}
			runs = append(runs, gtRun{fut, inj})
		}
		ground[bench] = runs
	}

	var injected, fullDetected, masked int
	var detSum, detN float64
	for _, bench := range out.Coverage.Benchmarks {
		detectable := make([]fault.Fault, 0, len(faults))
		for i, f := range faults {
			injected++
			gr := ground[bench][i]
			res, err := gr.fut.Wait()
			if err != nil {
				return nil, fmt.Errorf("fig8 ground truth %s: %w", bench, err)
			}
			switch fault.Classify(gr.inj, res.Detections() > 0) {
			case fault.Detected:
				fullDetected++
				detectable = append(detectable, f)
			case fault.Masked:
				masked++
			}
		}
		// Phase 2: the opportunistic sweep over the detectable set,
		// submitted as one matrix.
		oppF := make(map[string][]*Future, len(configs))
		for _, nc := range configs {
			futs := make([]*Future, 0, len(detectable))
			for _, f := range detectable {
				fut, _, err := submitFault(e, nc.Cfg, bench, f, sc.FaultHorizon)
				if err != nil {
					return nil, err
				}
				futs = append(futs, fut)
			}
			oppF[nc.Label] = futs
		}
		for _, nc := range configs {
			caught := 0
			for _, fut := range oppF[nc.Label] {
				res, err := fut.Wait()
				if err != nil {
					return nil, fmt.Errorf("fig8 %s/%s: %w", nc.Label, bench, err)
				}
				if res.Detections() > 0 {
					caught++
					detSum += float64(res.Lanes[0].FirstDetectionInst)
					detN++
				}
			}
			pct := 100.0
			if len(detectable) > 0 {
				pct = 100 * float64(caught) / float64(len(detectable))
			}
			out.Coverage.Values[nc.Label][bench] = pct
		}
	}
	if injected > 0 {
		out.FullDetectedPct = 100 * float64(fullDetected) / float64(injected)
		out.MaskedPct = 100 * float64(masked) / float64(injected)
	}
	if detN > 0 {
		out.MeanDetectionInsts = detSum / detN
	}
	out.Coverage.Notes = append(out.Coverage.Notes,
		fmt.Sprintf("full-coverage detected %.0f%% of injections (paper: 76%%); %.0f%% masked",
			out.FullDetectedPct, out.MaskedPct),
		fmt.Sprintf("mean detection latency %.0f main-core instructions", out.MeanDetectionInsts),
		"paper: almost all detectable errors caught by 1xA510@0.5GHz within 100M instructions")
	return out, nil
}

func fuCounts() map[isa.Class]int {
	fu := make(map[isa.Class]int)
	for class, pool := range x2Spec(1, 3.0).CPU.FUs {
		fu[class] = pool.Count
	}
	return fu
}
