package experiments

import (
	"paraverser/internal/core"
	"paraverser/internal/fault"
)

// Campaign runs the concurrent fault-injection campaign engine over the
// scale's fault benchmarks: randomized stuck-at / LSQ / transient faults
// against full-coverage and opportunistic checker systems, with the
// closed-loop recovery pipeline (re-replay, forensics, quarantine,
// graceful degradation) live in every trial. trials <= 0 picks a
// scale-appropriate default; the base seed makes the verdict tables
// reproducible regardless of workers.
func Campaign(sc Scale, seed int64, trials, workers int) (*fault.CampaignResult, error) {
	if trials <= 0 {
		trials = 4 * sc.FaultTrials
	}
	var workloads []core.Workload
	for _, bench := range sc.faultBenchmarks() {
		prog, err := specProg(bench)
		if err != nil {
			return nil, err
		}
		workloads = append(workloads, core.Workload{
			Name: bench, Prog: prog, MaxInsts: sc.FaultHorizon,
		})
	}

	full := core.DefaultConfig(a510Spec(4, 2.0))
	full.Recovery = core.DefaultRecovery()
	opp := core.DefaultConfig(a510Spec(2, 2.0))
	opp.Mode = core.ModeOpportunistic
	opp.Recovery = core.DefaultRecovery()
	// Campaign trials bypass the engine (they call fault.RunCampaign
	// directly), so the process-wide check-worker and trace settings are
	// applied here. Neither changes trial outcomes.
	applyCheckWorkers(&full)
	applyBlockExec(&full)
	applyTrace(&full)
	applyCheckWorkers(&opp)
	applyBlockExec(&opp)
	applyTrace(&opp)

	r, err := fault.RunCampaign(fault.CampaignConfig{
		Seed:      seed,
		Trials:    trials,
		Workers:   workers,
		Workloads: workloads,
		Configs:   []core.Config{full, opp},
	})
	if err != nil {
		return nil, err
	}
	// Campaign trials never pass through the engine's cache, so their
	// merged shard is recorded explicitly; the aggregate stays
	// deterministic because trial metrics depend only on the seed.
	defaultEngine().RecordMetrics(r.RunMetrics())
	return r, nil
}
