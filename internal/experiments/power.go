package experiments

import (
	"fmt"

	"paraverser/internal/core"
	"paraverser/internal/lockstep"
	"paraverser/internal/power"
	"paraverser/internal/stats"
)

// PowerRow is one energy configuration's summary.
type PowerRow struct {
	Label          string
	EnergyOverhead float64 // geomean, fraction (0.49 = 49%)
	SlowdownPct    float64 // geomean
}

// PowerResult is the section VII-E energy study.
type PowerResult struct {
	Rows  []PowerRow
	Notes []string
}

// Table renders the study.
func (p *PowerResult) Table() string {
	t := stats.NewTable("configuration", "energy overhead %", "slowdown %")
	for _, row := range p.Rows {
		t.Row(row.Label, fmt.Sprintf("%.1f", row.EnergyOverhead*100),
			fmt.Sprintf("%.2f", row.SlowdownPct))
	}
	out := "Section VII-E: energy overhead vs baseline with checkers power gated\n" + t.String()
	for _, n := range p.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// Power reproduces the energy-overhead study: homogeneous (dual-core-
// lockstep-comparable), the heterogeneous points, the per-benchmark
// ED²P-minimal DVFS configuration, and the prior-work dedicated cores.
func Power(sc Scale) (*PowerResult, error) { return powerStudy(defaultEngine(), sc) }

func powerStudy(e *Engine, sc Scale) (*PowerResult, error) {
	out := &PowerResult{}
	configs := []NamedConfig{
		{Label: "1xX2@3.0 (DCLS-comparable)", Cfg: core.DefaultConfig(x2Spec(1, 3.0))},
		{Label: "2xX2@1.5", Cfg: core.DefaultConfig(x2Spec(2, 1.5))},
		{Label: "4xA510@2.0", Cfg: core.DefaultConfig(a510Spec(4, 2.0))},
		{Label: "ParaDox 16xA35 (dedicated)", Cfg: lockstep.ParaDox()},
	}

	benches := sc.benchmarks()
	baseF := make(map[string]*Future, len(benches))
	runF := make(map[string]map[string]*Future, len(configs))
	for _, nc := range configs {
		runF[nc.Label] = make(map[string]*Future, len(benches))
	}
	for _, bench := range benches {
		baseF[bench] = sc.submitBaseline(e, bench)
		for _, nc := range configs {
			runF[nc.Label][bench] = e.SubmitSpec(nc.Cfg, bench, sc.Insts, sc.Warmup)
		}
		for _, f := range sc.ED2PFreqs {
			e.SubmitSpec(ed2pCfg(f), bench, sc.Insts, sc.Warmup)
		}
	}

	for _, nc := range configs {
		var overheads, slows []float64
		for _, bench := range benches {
			base, err := laneTimeNS(baseF[bench])
			if err != nil {
				return nil, err
			}
			res, err := runF[nc.Label][bench].Wait()
			if err != nil {
				return nil, fmt.Errorf("power %s/%s: %w", nc.Label, bench, err)
			}
			rep, err := core.Energy(nc.Cfg, res)
			if err != nil {
				return nil, err
			}
			overheads = append(overheads, 1+rep.Overhead)
			slows = append(slows, res.Lanes[0].TimeNS/base)
		}
		out.Rows = append(out.Rows, PowerRow{
			Label:          nc.Label,
			EnergyOverhead: stats.Geomean(overheads) - 1,
			SlowdownPct:    (stats.Geomean(slows) - 1) * 100,
		})
	}

	// ED²P-minimal 4xA510: per-benchmark best DVFS point. The sweep was
	// submitted above (and typically already cached by fig. 6), so this
	// only assembles.
	var overheads, slows []float64
	for _, bench := range benches {
		base, err := laneTimeNS(baseF[bench])
		if err != nil {
			return nil, err
		}
		slow, overhead, err := ed2pPoint(e, sc, bench, base)
		if err != nil {
			return nil, err
		}
		overheads = append(overheads, 1+overhead)
		slows = append(slows, 1+slow/100)
	}
	out.Rows = append(out.Rows, PowerRow{
		Label:          "4xA510 ED2P-minimal DVFS",
		EnergyOverhead: stats.Geomean(overheads) - 1,
		SlowdownPct:    (stats.Geomean(slows) - 1) * 100,
	})

	out.Notes = append(out.Notes,
		"paper: 95% (1xX2@3.0), 45% (2xX2@1.5), 49% (4xA510@2.0), 29% @ 4.3% slowdown (ED2P), 25% dedicated",
		fmt.Sprintf("dedicated checkers additionally cost %.0f%% area (section VII-E)",
			lockstep.AreaOverhead(lockstep.ParaDox())*100))
	return out, nil
}

// AreaResult is the section VII-E storage and area accounting, which is
// analytic (no simulation).
type AreaResult struct {
	Storage      power.StorageOverhead
	StorageBytes int
	X2MM2        float64
	A510MM2      float64
	A35x16MM2    float64
	DedicatedPct float64
}

// Area computes the accounting.
func Area() AreaResult {
	cfg := core.DefaultConfig(x2Spec(1, 3.0))
	s := power.NewStorageOverhead(cfg.Main.LQ, cfg.Main.SQ, cfg.Main.L1D.Lines())
	return AreaResult{
		Storage:      s,
		StorageBytes: s.TotalBytes(),
		X2MM2:        power.AreaX2MM2,
		A510MM2:      power.AreaA510MM2,
		A35x16MM2:    16 * power.AreaA35MM2,
		DedicatedPct: power.DedicatedAreaOverhead(16, power.AreaA35MM2, power.AreaX2MM2) * 100,
	}
}

// Table renders the accounting.
func (a AreaResult) Table() string {
	t := stats.NewTable("item", "value")
	t.Row("LSC", fmt.Sprintf("%dB", a.Storage.LSCBytes))
	t.Row("LSQ parity bits", fmt.Sprintf("%db", a.Storage.LSQParityBits))
	t.Row("LSL$ front/back indices", fmt.Sprintf("%db", a.Storage.IndexBits))
	t.Row("LSPU buffer", fmt.Sprintf("%db", a.Storage.LSPUBits))
	t.Row("LSL$ log tag bits", fmt.Sprintf("%db", a.Storage.LSLTagBits))
	t.Row("instruction timer", fmt.Sprintf("%db", a.Storage.TimerBits))
	t.Row("RCU", fmt.Sprintf("%dB", a.Storage.RCUBytes))
	t.Row("TOTAL per core", fmt.Sprintf("%dB (paper: 1064B)", a.StorageBytes))
	t.Row("X2 area", fmt.Sprintf("%.2f mm2", a.X2MM2))
	t.Row("A510 area", fmt.Sprintf("%.2f mm2", a.A510MM2))
	t.Row("16xA35 dedicated area", fmt.Sprintf("%.2f mm2 (%.0f%% of an X2, paper: 35%%)", a.A35x16MM2, a.DedicatedPct))
	return "Section VII-E: storage and area overheads\n" + t.String()
}
