package experiments

import (
	"fmt"

	"paraverser/internal/core"
	"paraverser/internal/cpu"
	"paraverser/internal/isa"
	"paraverser/internal/stats"
)

// Table1 renders the experimental setup of the paper's Table I as
// realised by this repository's models.
func Table1() string {
	describe := func(cfg cpu.Config) []string {
		kind := "in-order"
		if cfg.OoO {
			kind = "out-of-order"
		}
		rows := []string{
			fmt.Sprintf("%d-wide %s, up to %.1fGHz", cfg.IssueWidth, kind, cfg.NominalGHz),
			fmt.Sprintf("ROB %d, IQ %d, LQ %d, SQ %d", cfg.ROB, cfg.IQ, cfg.LQ, cfg.SQ),
		}
		fu := cfg.FUs
		rows = append(rows, fmt.Sprintf(
			"FUs: %d branch, %d int ALU, %d int mul, %d int div, %d FP add, %d FP mul, %d FP div, %d load, %d store",
			fu[isa.ClassBranch].Count, fu[isa.ClassIntALU].Count, fu[isa.ClassIntMul].Count,
			fu[isa.ClassIntDiv].Count, fu[isa.ClassFPAdd].Count, fu[isa.ClassFPMul].Count,
			fu[isa.ClassFPDiv].Count, fu[isa.ClassLoad].Count, fu[isa.ClassStore].Count))
		rows = append(rows,
			fmt.Sprintf("L1I %dKiB/%d-way %dcyc, L1D %dKiB/%d-way %dcyc, L2 %dKiB/%d-way %dcyc",
				cfg.L1I.SizeBytes>>10, cfg.L1I.Ways, cfg.L1I.HitCycles,
				cfg.L1D.SizeBytes>>10, cfg.L1D.Ways, cfg.L1D.HitCycles,
				cfg.L2.SizeBytes>>10, cfg.L2.Ways, cfg.L2.HitCycles))
		return rows
	}
	sys := core.DefaultConfig(x2Spec(1, 3.0))
	t := stats.NewTable("component", "configuration")
	for _, row := range describe(cpu.X2()) {
		t.Row("big core (X2)", row)
	}
	for _, row := range describe(cpu.A510()) {
		t.Row("little core (A510)", row)
	}
	for _, row := range describe(cpu.A35()) {
		t.Row("dedicated checker (A35)", row)
	}
	t.Row("L3", fmt.Sprintf("%dMiB, %d-way, %d-cycle (%.1fns) hit, %d MSHRs",
		sys.L3.SizeBytes>>20, sys.L3.Ways, sys.L3.HitCycles, sys.L3HitNS, sys.L3.MSHRs))
	t.Row("memory", fmt.Sprintf("DDR4-2400-class: %.0fns row miss, %.0fns row hit, %.1f GB/s",
		sys.DRAM.BaseNS, sys.DRAM.RowHitNS, sys.DRAM.PeakGBs))
	t.Row("NoC", fmt.Sprintf("%dx%d mesh, %d-bit, %.1fGHz", sys.NoC.Rows, sys.NoC.Cols, sys.NoC.WidthBits, sys.NoC.FreqGHz))
	t.Row("reg. checkpoint", fmt.Sprintf("%.0f-cycle latency, %d-instruction timeout", sys.CheckpointStallCycles, sys.TimeoutInsts))
	return "Table I: core and memory experimental setup\n" + t.String()
}
