// The run engine: every figure and study in this package drives its
// (configuration × benchmark) simulation matrix through a shared bounded
// worker pool fronted by a content-addressed result cache. Entry points
// submit their full matrix up front and assemble tables from completed
// futures in deterministic label/benchmark order, so output is
// byte-identical at any worker count, while independent simulations
// saturate the available cores and repeated runs (the no-checking
// baselines every figure needs, the DVFS points both fig. 6 and the
// power study sweep) are computed exactly once per process.
//
// Concurrency safety: core.Run builds a private System — mesh, LLC,
// DRAM model, per-lane cores and machines — per call, so concurrent
// independent runs never share mutable state. The shared inputs are
// read-only: *isa.Program (the emulator copies the data segment into a
// fresh Memory per machine; instruction slices are never written),
// cpu.Config values (FU maps are only read), and *noc.Layout (only
// read). The fault campaign engine (internal/fault) established this
// fan-out pattern; the engine here extends it to every experiment.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"paraverser/internal/core"
)

// Engine fans independent simulation runs out over a bounded worker pool
// and memoizes their results. The zero value is not usable; call
// NewEngine.
type Engine struct {
	sem chan struct{}

	mu    sync.Mutex
	cache map[runKey]*runCall

	runs atomic.Int64 // simulations actually executed
	hits atomic.Int64 // submissions served by cache or singleflight
}

// NewEngine returns an engine whose pool admits workers concurrent
// simulations (<= 0 selects GOMAXPROCS).
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		sem:   make(chan struct{}, workers),
		cache: make(map[runKey]*runCall),
	}
}

// Workers returns the pool bound.
func (e *Engine) Workers() int { return cap(e.sem) }

// Runs returns how many simulations the engine has executed (cache
// misses); Hits how many submissions were deduplicated against an
// in-flight or completed identical run.
func (e *Engine) Runs() int64 { return e.runs.Load() }

// Hits returns the number of deduplicated submissions.
func (e *Engine) Hits() int64 { return e.hits.Load() }

// runCall is one scheduled simulation; futures returned for equal keys
// share it (singleflight), so concurrent requests for the same run wait
// on one execution.
type runCall struct {
	done chan struct{}
	res  *core.Result
	err  error
	// ws pins the workload programs for the cache's lifetime so a
	// pointer-identified program address can never be recycled while its
	// key is live.
	ws []core.Workload
}

// Future is a handle to a submitted run.
type Future struct{ c *runCall }

// Wait blocks until the run completes and returns its result. The
// Result is shared between all futures with the same key: callers must
// treat it as read-only.
func (f *Future) Wait() (*core.Result, error) {
	<-f.c.done
	return f.c.res, f.c.err
}

// Submit schedules one simulation of ws under cfg and returns its
// future. Cacheable submissions (no fault interceptor) are deduplicated
// content-addressed: an identical earlier submission — completed or
// still in flight — is shared rather than re-run. Uncacheable
// submissions always execute privately but still occupy pool slots, so
// fault-injection matrices parallelise under the same bound.
func (e *Engine) Submit(cfg core.Config, ws []core.Workload) *Future {
	applyCheckWorkers(&cfg)
	if !cacheable(&cfg) {
		c := &runCall{done: make(chan struct{}), ws: ws}
		e.start(cfg, c)
		return &Future{c: c}
	}
	key := keyFor(&cfg, ws)
	e.mu.Lock()
	if c, ok := e.cache[key]; ok {
		e.mu.Unlock()
		e.hits.Add(1)
		return &Future{c: c}
	}
	c := &runCall{done: make(chan struct{}), ws: ws}
	e.cache[key] = c
	e.mu.Unlock()
	e.start(cfg, c)
	return &Future{c: c}
}

// SubmitSpec schedules one SPEC benchmark run with an explicit
// measurement window. The program is resolved inside the pooled task, so
// first-time working-set generation parallelises with other runs.
func (e *Engine) SubmitSpec(cfg core.Config, bench string, insts, warmup int64) *Future {
	applyCheckWorkers(&cfg)
	if cacheable(&cfg) {
		key := runKey{cfg: fingerprint(&cfg), ws: specKey(bench, insts, warmup)}
		e.mu.Lock()
		if c, ok := e.cache[key]; ok {
			e.mu.Unlock()
			e.hits.Add(1)
			return &Future{c: c}
		}
		c := &runCall{done: make(chan struct{})}
		e.cache[key] = c
		e.mu.Unlock()
		e.startSpec(cfg, bench, insts, warmup, c)
		return &Future{c: c}
	}
	c := &runCall{done: make(chan struct{})}
	e.startSpec(cfg, bench, insts, warmup, c)
	return &Future{c: c}
}

// specKey is the workload identity of a single canonical SPEC run:
// specProg guarantees one immutable program per name per process, so the
// name alone identifies it.
func specKey(bench string, insts, warmup int64) string {
	return fmt.Sprintf("spec-run:%s|%d|%d", bench, insts, warmup)
}

func (e *Engine) start(cfg core.Config, c *runCall) {
	go func() {
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
		e.runs.Add(1)
		c.res, c.err = core.Run(cfg, c.ws)
		close(c.done)
	}()
}

func (e *Engine) startSpec(cfg core.Config, bench string, insts, warmup int64, c *runCall) {
	go func() {
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
		prog, err := specProg(bench)
		if err != nil {
			c.err = err
			close(c.done)
			return
		}
		c.ws = []core.Workload{{
			Name: bench, Prog: prog, MaxInsts: insts, WarmupInsts: warmup,
		}}
		e.runs.Add(1)
		c.res, c.err = core.Run(cfg, c.ws)
		close(c.done)
	}()
}

// defaultEngine is the process-wide engine the exported entry points
// share: `paraverser all` runs every figure over one cache, so the
// common baselines are simulated once for the whole suite.
var (
	engineMu  sync.RWMutex
	defEngine = NewEngine(0)
)

func defaultEngine() *Engine {
	engineMu.RLock()
	defer engineMu.RUnlock()
	return defEngine
}

// SetWorkers replaces the shared engine with a fresh one bounded at n
// concurrent simulations (<= 0 selects GOMAXPROCS). Call it before
// running experiments: the previous engine's cache is discarded.
func SetWorkers(n int) {
	engineMu.Lock()
	defer engineMu.Unlock()
	defEngine = NewEngine(n)
}

// checkWorkers is the intra-run verification concurrency applied to
// submitted configurations that leave Config.CheckWorkers zero. Results
// are worker-invariant (core/pipeline.go) and CheckWorkers is excluded
// from the cache fingerprint, so changing it never splits the cache.
var checkWorkers atomic.Int64

// SetCheckWorkers sets how many checker-segment verifications each
// simulation may run concurrently with its main lane (<= 1 runs checks
// inline). Unlike SetWorkers this only changes wall-clock behaviour;
// simulated results are byte-identical at any setting.
func SetCheckWorkers(n int) { checkWorkers.Store(int64(n)) }

func applyCheckWorkers(cfg *core.Config) {
	if cfg.CheckWorkers == 0 {
		cfg.CheckWorkers = int(checkWorkers.Load())
	}
}
