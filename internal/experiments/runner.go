// The run engine: every figure and study in this package drives its
// (configuration × benchmark) simulation matrix through a shared bounded
// worker pool fronted by a content-addressed result cache. Entry points
// submit their full matrix up front and assemble tables from completed
// futures in deterministic label/benchmark order, so output is
// byte-identical at any worker count, while independent simulations
// saturate the available cores and repeated runs (the no-checking
// baselines every figure needs, the DVFS points both fig. 6 and the
// power study sweep) are computed exactly once per process.
//
// Concurrency safety: core.Run builds a private System — mesh, LLC,
// DRAM model, per-lane cores and machines — per call, so concurrent
// independent runs never share mutable state. The shared inputs are
// read-only: *isa.Program (the emulator copies the data segment into a
// fresh Memory per machine; instruction slices are never written),
// cpu.Config values (FU maps are only read), and *noc.Layout (only
// read). The fault campaign engine (internal/fault) established this
// fan-out pattern; the engine here extends it to every experiment.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"paraverser/internal/core"
	"paraverser/internal/obs"
)

// Engine fans independent simulation runs out over a bounded worker pool
// and memoizes their results. The zero value is not usable; call
// NewEngine.
type Engine struct {
	sem chan struct{}

	// spec is the engine's shared speculation cache (core/spec.go): runs
	// that share a functional stream — the same program and window at
	// different frequencies, worker counts, or table positions — replay
	// each other's recorded segments instead of re-emulating them.
	// Attached only to cacheable submissions; results are byte-identical
	// with or without it.
	spec *core.SpecCache

	mu    sync.Mutex
	cache map[runKey]*runCall
	// uncached holds the calls that bypass the cache (fault-injection
	// runs), so Gather can still merge their metric shards.
	uncached []*runCall
	// external holds shards recorded from simulations that bypassed the
	// engine entirely (the fault campaign drives fault.RunCampaign
	// directly), so the metrics export covers the whole suite.
	external []*obs.RunMetrics

	runs   atomic.Int64 // simulations actually executed
	hits   atomic.Int64 // submissions served by cache or singleflight
	shares atomic.Int64 // the hits that joined a still-in-flight run
	jobs   atomic.Int64 // submissions issued
	done   atomic.Int64 // submissions resolved
	segs   atomic.Int64 // segments closed across executed runs
}

// NewEngine returns an engine whose pool admits workers concurrent
// simulations (<= 0 selects GOMAXPROCS).
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	spec := core.NewSpecCache()
	// core is a deterministic package (no wall clock); the engine injects
	// one so the speculation layer can report stitch time in wall-clock
	// observability counters. The reading feeds only the StitchNS stats
	// counter, never a simulated outcome.
	//paralint:allow(injected clock feeds the StitchNS observability counter only)
	spec.SetClock(func() int64 { return time.Now().UnixNano() })
	return &Engine{
		sem:   make(chan struct{}, workers),
		cache: make(map[runKey]*runCall),
		spec:  spec,
	}
}

// SpecStats samples the engine's speculation-cache counters.
func (e *Engine) SpecStats() obs.SpecSnapshot { return e.spec.Stats() }

// Workers returns the pool bound.
func (e *Engine) Workers() int { return cap(e.sem) }

// Runs returns how many simulations the engine has executed (cache
// misses); Hits how many submissions were deduplicated against an
// in-flight or completed identical run.
func (e *Engine) Runs() int64 { return e.runs.Load() }

// Hits returns the number of deduplicated submissions.
func (e *Engine) Hits() int64 { return e.hits.Load() }

// Shares returns how many of the hits joined a run that was still in
// flight rather than already completed. Unlike Runs and Hits this split
// depends on scheduling, so it feeds the live progress display only and
// stays out of the deterministic metrics export.
func (e *Engine) Shares() int64 { return e.shares.Load() }

// ProgressStats samples the engine's live counters for the progress
// reporter.
func (e *Engine) ProgressStats() obs.ProgressStats {
	return obs.ProgressStats{
		JobsTotal: e.jobs.Load(),
		JobsDone:  e.done.Load(),
		Runs:      e.runs.Load(),
		Hits:      e.hits.Load() - e.shares.Load(),
		Shares:    e.shares.Load(),
		Segments:  e.segs.Load(),
	}
}

// Gather merges the metric shards of every completed run the engine has
// executed into one aggregate. Shard merging is commutative integer
// addition (obs.RunMetrics), so the aggregate is byte-identical for the
// same submission set at any worker count.
func (e *Engine) Gather() *obs.RunMetrics {
	e.mu.Lock()
	calls := make([]*runCall, 0, len(e.cache)+len(e.uncached))
	for _, c := range e.cache {
		//paralint:allow(collection order is erased by the commutative Merge below)
		calls = append(calls, c)
	}
	calls = append(calls, e.uncached...)
	ext := append([]*obs.RunMetrics(nil), e.external...)
	e.mu.Unlock()

	m := obs.NewRunMetrics()
	for _, sh := range ext {
		m.Merge(sh)
	}
	for _, c := range calls {
		select {
		case <-c.done:
			if c.err == nil && c.res != nil && c.res.Metrics != nil {
				m.Merge(c.res.Metrics)
			}
		default: // still in flight; its shard is not readable yet
		}
	}
	return m
}

// RecordMetrics folds an externally produced shard (e.g. a fault
// campaign's merged trial metrics) into the engine's aggregate.
func (e *Engine) RecordMetrics(m *obs.RunMetrics) {
	if m == nil {
		return
	}
	e.mu.Lock()
	e.external = append(e.external, m)
	e.mu.Unlock()
}

// MetricsSnapshot exports the engine's deterministic metrics: the merged
// per-run shards plus the run-cache counters. Runs and Hits are functions
// of the submission multiset alone (executed runs = unique cacheable
// keys + uncacheable submissions), so the snapshot is byte-identical at
// any -j / CheckWorkers setting; the scheduling-dependent in-flight
// share split is deliberately excluded.
func (e *Engine) MetricsSnapshot() *obs.Snapshot {
	var b obs.SnapshotBuilder
	e.Gather().AddTo(&b, "paraverser_")
	b.Counter("paraverser_runcache_runs_total", "simulations executed (cache misses)", uint64(e.Runs()))
	b.Counter("paraverser_runcache_hits_total", "submissions deduplicated against an identical run", uint64(e.Hits()))
	return b.Snapshot()
}

// runCall is one scheduled simulation; futures returned for equal keys
// share it (singleflight), so concurrent requests for the same run wait
// on one execution.
type runCall struct {
	done chan struct{}
	res  *core.Result
	err  error
	// ws pins the workload programs for the cache's lifetime so a
	// pointer-identified program address can never be recycled while its
	// key is live.
	ws []core.Workload
}

// Future is a handle to a submitted run.
type Future struct{ c *runCall }

// Wait blocks until the run completes and returns its result. The
// Result is shared between all futures with the same key: callers must
// treat it as read-only.
func (f *Future) Wait() (*core.Result, error) {
	<-f.c.done
	return f.c.res, f.c.err
}

// Submit schedules one simulation of ws under cfg and returns its
// future. Cacheable submissions (no fault interceptor) are deduplicated
// content-addressed: an identical earlier submission — completed or
// still in flight — is shared rather than re-run. Uncacheable
// submissions always execute privately but still occupy pool slots, so
// fault-injection matrices parallelise under the same bound.
func (e *Engine) Submit(cfg core.Config, ws []core.Workload) *Future {
	applyCheckWorkers(&cfg)
	applyBlockExec(&cfg)
	applyStrategy(&cfg)
	applyTrace(&cfg)
	e.applySpec(&cfg)
	e.jobs.Add(1)
	if !cacheable(&cfg) {
		c := &runCall{done: make(chan struct{}), ws: ws}
		e.mu.Lock()
		e.uncached = append(e.uncached, c)
		e.mu.Unlock()
		e.start(cfg, c)
		return &Future{c: c}
	}
	key := keyFor(&cfg, ws)
	e.mu.Lock()
	if c, ok := e.cache[key]; ok {
		e.mu.Unlock()
		e.noteHit(c)
		return &Future{c: c}
	}
	c := &runCall{done: make(chan struct{}), ws: ws}
	e.cache[key] = c
	e.mu.Unlock()
	e.start(cfg, c)
	return &Future{c: c}
}

// noteHit records one deduplicated submission for the live counters,
// distinguishing completed-cache hits from in-flight singleflight
// shares. A deduplicated submission is resolved the moment it attaches
// to its run — the remaining work belongs to the run's own job — so it
// counts as done immediately; that keeps JobsDone == JobsTotal exact
// when the batch drains, with no per-share goroutine racing the final
// progress render.
func (e *Engine) noteHit(c *runCall) {
	e.hits.Add(1)
	select {
	case <-c.done:
	default:
		e.shares.Add(1)
	}
	e.done.Add(1)
}

// SubmitSpec schedules one SPEC benchmark run with an explicit
// measurement window. The program is resolved inside the pooled task, so
// first-time working-set generation parallelises with other runs.
func (e *Engine) SubmitSpec(cfg core.Config, bench string, insts, warmup int64) *Future {
	applyCheckWorkers(&cfg)
	applyBlockExec(&cfg)
	applyStrategy(&cfg)
	applyTrace(&cfg)
	e.applySpec(&cfg)
	e.jobs.Add(1)
	if cacheable(&cfg) {
		key := runKey{cfg: fingerprint(&cfg), ws: specKey(bench, insts, warmup)}
		e.mu.Lock()
		if c, ok := e.cache[key]; ok {
			e.mu.Unlock()
			e.noteHit(c)
			return &Future{c: c}
		}
		c := &runCall{done: make(chan struct{})}
		e.cache[key] = c
		e.mu.Unlock()
		e.startSpec(cfg, bench, insts, warmup, c)
		return &Future{c: c}
	}
	c := &runCall{done: make(chan struct{})}
	e.mu.Lock()
	e.uncached = append(e.uncached, c)
	e.mu.Unlock()
	e.startSpec(cfg, bench, insts, warmup, c)
	return &Future{c: c}
}

// specKey is the workload identity of a single canonical SPEC run:
// specProg guarantees one immutable program per name per process, so the
// name alone identifies it.
func specKey(bench string, insts, warmup int64) string {
	return fmt.Sprintf("spec-run:%s|%d|%d", bench, insts, warmup)
}

func (e *Engine) start(cfg core.Config, c *runCall) {
	go func() {
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
		e.runs.Add(1)
		c.res, c.err = core.Run(cfg, c.ws)
		e.noteRunDone(c)
		close(c.done)
	}()
}

// noteRunDone feeds an executed run's completion into the live progress
// counters.
func (e *Engine) noteRunDone(c *runCall) {
	if c.err == nil && c.res != nil && c.res.Metrics != nil {
		e.segs.Add(int64(c.res.Metrics.Segments))
	}
	e.done.Add(1)
}

func (e *Engine) startSpec(cfg core.Config, bench string, insts, warmup int64, c *runCall) {
	go func() {
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
		prog, err := specProg(bench)
		if err != nil {
			c.err = err
			e.done.Add(1)
			close(c.done)
			return
		}
		c.ws = []core.Workload{{
			Name: bench, Prog: prog, MaxInsts: insts, WarmupInsts: warmup,
		}}
		e.runs.Add(1)
		c.res, c.err = core.Run(cfg, c.ws)
		e.noteRunDone(c)
		close(c.done)
	}()
}

// defaultEngine is the process-wide engine the exported entry points
// share: `paraverser all` runs every figure over one cache, so the
// common baselines are simulated once for the whole suite.
var (
	engineMu  sync.RWMutex
	defEngine = NewEngine(0)
)

func defaultEngine() *Engine {
	engineMu.RLock()
	defer engineMu.RUnlock()
	return defEngine
}

// SetWorkers replaces the shared engine with a fresh one bounded at n
// concurrent simulations (<= 0 selects GOMAXPROCS). Call it before
// running experiments: the previous engine's cache is discarded.
func SetWorkers(n int) {
	engineMu.Lock()
	defer engineMu.Unlock()
	defEngine = NewEngine(n)
}

// checkWorkers is the intra-run verification concurrency applied to
// submitted configurations that leave Config.CheckWorkers zero. Results
// are worker-invariant (core/pipeline.go) and CheckWorkers is excluded
// from the cache fingerprint, so changing it never splits the cache.
var checkWorkers atomic.Int64

// SetCheckWorkers sets how many checker-segment verifications each
// simulation may run concurrently with its main lane (<= 1 runs checks
// inline). Unlike SetWorkers this only changes wall-clock behaviour;
// simulated results are byte-identical at any setting.
func SetCheckWorkers(n int) { checkWorkers.Store(int64(n)) }

func applyCheckWorkers(cfg *core.Config) {
	if cfg.CheckWorkers == 0 {
		cfg.CheckWorkers = int(checkWorkers.Load())
	}
}

// blockExecOff disables the block-compiled execution engine for
// submitted configurations that leave Config.BlockExec at its Auto zero
// value. The engine is on by default; results are engine-invariant
// (core/blockexec_test.go) and BlockExec is excluded from the cache
// fingerprint, so flipping it never splits the cache.
var blockExecOff atomic.Bool

// SetBlockExec turns the block-compiled execution engine on or off for
// subsequent submissions (default on). Like SetCheckWorkers this only
// changes wall-clock behaviour; simulated results are bit-identical on
// either engine.
func SetBlockExec(on bool) { blockExecOff.Store(!on) }

func applyBlockExec(cfg *core.Config) {
	if cfg.BlockExec == core.BlockExecAuto {
		if blockExecOff.Load() {
			cfg.BlockExec = core.BlockExecOff
		} else {
			cfg.BlockExec = core.BlockExecOn
		}
	}
}

// timeShards is the speculation depth applied to submitted configurations
// that leave Config.TimeShards zero. Like CheckWorkers it only changes
// wall-clock behaviour (core/spec.go) and is excluded from the cache
// fingerprint.
var timeShards atomic.Int64

// SetTimeShards sets how many segments each simulation lane may emulate
// ahead of its timing stitch (<= 1 emulates inline). Simulated results
// are byte-identical at any setting.
func SetTimeShards(n int) { timeShards.Store(int64(n)) }

// applySpec attaches the engine's speculation cache and the process-wide
// shard depth to a cacheable submission. Fault-injection runs carry
// interceptors whose per-run mutable state must never be shared, and the
// speculation engine declines them anyway (laneSpecEligible); leaving
// them untouched keeps that property obvious here.
func (e *Engine) applySpec(cfg *core.Config) {
	if !cacheable(cfg) {
		return
	}
	if cfg.Spec == nil {
		cfg.Spec = e.spec
	}
	if cfg.TimeShards == 0 {
		cfg.TimeShards = int(timeShards.Load())
	}
}

// processStrategy is the verification strategy applied to submitted
// configurations that leave Config.Strategy at its Auto zero value
// (-strategy on the CLI). Unlike the knobs above it DOES change
// simulated outcomes — chunk-replay and relaxed-start alter timing and
// detection latency by design — which is exactly why Strategy is hashed
// into the cache fingerprint: runs under different strategies occupy
// distinct cache entries.
var processStrategy atomic.Int64

// SetStrategy selects the checker strategy for subsequent submissions
// that don't pin one themselves (core.StrategyAuto restores the
// default). Only configurations the strategy is valid for are
// overridden; the rest keep their Auto resolution — see applyStrategy.
func SetStrategy(st core.Strategy) { processStrategy.Store(int64(st)) }

// applyStrategy installs the process-wide strategy override on eligible
// submissions. Experiments mix many configurations (opportunistic,
// hash-mode, divergent, checker-less baselines, fault trials with
// recovery), and the alternative strategies only define behaviour for
// plain full-coverage lockstep verification — so the override is a
// filter, not a blanket: ineligible configs run exactly as they would
// without the flag rather than failing Validate. Fault-injection runs
// are also skipped: campaign trials force recovery on, and comparing a
// "-strategy chunk-replay" campaign against the same campaign without
// the flag is precisely the strategies experiment's job, with explicit
// per-strategy configs.
func applyStrategy(cfg *core.Config) {
	st := core.Strategy(processStrategy.Load())
	if st == core.StrategyAuto || cfg.Strategy != core.StrategyAuto {
		return
	}
	if cfg.CheckMode != core.CheckLockstep || cfg.Mode != core.ModeFullCoverage ||
		cfg.HashMode || cfg.Recovery.Enabled || !cacheable(cfg) || len(cfg.Checkers) == 0 {
		return
	}
	cfg.Strategy = st
}

// traceDest, when set, is installed on every submitted configuration
// that carries no trace of its own (-trace on the CLI). Tracing never
// influences simulated outcomes and is excluded from the cache
// fingerprint, so installing it cannot split or poison the cache — but
// note that a submission deduplicated against an already-executed run
// emits no events, since only executed runs trace.
var traceDest atomic.Pointer[obs.Trace]

// SetTrace installs a shared segment-trace ring for all subsequent
// submissions (nil disables).
func SetTrace(t *obs.Trace) { traceDest.Store(t) }

// MetricsSnapshot exports the shared engine's deterministic metrics
// (`paraverser -metrics-out`).
func MetricsSnapshot() *obs.Snapshot { return defaultEngine().MetricsSnapshot() }

// Progress samples the shared engine's live counters for the CLI's
// progress reporter.
func Progress() obs.ProgressStats { return defaultEngine().ProgressStats() }

func applyTrace(cfg *core.Config) {
	if cfg.Trace == nil {
		cfg.Trace = traceDest.Load()
	}
}
