package experiments

import (
	"fmt"

	"paraverser/internal/core"
	"paraverser/internal/stats"
)

// AblationRow is one design-choice variant's summary.
type AblationRow struct {
	Label       string
	SlowdownPct float64 // geomean
	CoveragePct float64 // geomean (100 for full-coverage variants)
	LogBPI      float64 // log bytes per instruction, mean
}

// AblationResult studies the individual design decisions of section IV on
// the same checker pool (4xA510@2.0): eager checker waking (IV-H), the
// repurposed 64KiB LSL$ versus prior work's 3KiB dedicated SRAM (IV-B),
// Hash Mode (IV-I), commit-delaying versus commit-overlapped register
// checkpointing (IV-D), and the time-based sampling extension
// (footnote 18).
type AblationResult struct {
	Rows  []AblationRow
	Notes []string
}

// Table renders the study.
func (a *AblationResult) Table() string {
	t := stats.NewTable("variant", "slowdown %", "coverage %", "log B/inst")
	for _, r := range a.Rows {
		t.Row(r.Label, fmt.Sprintf("%.2f", r.SlowdownPct),
			fmt.Sprintf("%.1f", r.CoveragePct), fmt.Sprintf("%.2f", r.LogBPI))
	}
	out := "Ablation: section IV design choices on 4xA510@2.0 checkers\n" + t.String()
	for _, n := range a.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// Ablation runs the study.
func Ablation(sc Scale) (*AblationResult, error) { return ablation(defaultEngine(), sc) }

func ablation(e *Engine, sc Scale) (*AblationResult, error) {
	base := func() core.Config { return core.DefaultConfig(a510Spec(4, 2.0)) }
	variants := []NamedConfig{
		{Label: "ParaVerser (all mechanisms)", Cfg: base()},
	}
	{
		cfg := base()
		cfg.EagerWake = false
		variants = append(variants, NamedConfig{Label: "no eager waking (IV-H off)", Cfg: cfg})
	}
	{
		cfg := base()
		cfg.DedicatedLSLBytes = 3 << 10
		variants = append(variants, NamedConfig{Label: "3KiB dedicated LSL (no LSL$ repurposing)", Cfg: cfg})
	}
	{
		cfg := base()
		cfg.HashMode = true
		variants = append(variants, NamedConfig{Label: "Hash Mode (IV-I)", Cfg: cfg})
	}
	{
		cfg := base()
		cfg.CheckpointDrains = true
		cfg.CheckpointStallCycles = 40
		variants = append(variants, NamedConfig{Label: "commit-delaying checkpoints (DSN18-style RCU)", Cfg: cfg})
	}
	{
		cfg := base()
		cfg.Mode = core.ModeOpportunistic
		variants = append(variants, NamedConfig{Label: "opportunistic mode", Cfg: cfg})
	}
	{
		cfg := base()
		cfg.Mode = core.ModeOpportunistic
		cfg.SamplePeriod = 4
		variants = append(variants, NamedConfig{Label: "opportunistic + 1-in-4 sampling (fn.18)", Cfg: cfg})
	}

	benches := sc.benchmarks()
	baseF := make(map[string]*Future, len(benches))
	runF := make(map[string]map[string]*Future, len(variants))
	for _, nc := range variants {
		runF[nc.Label] = make(map[string]*Future, len(benches))
	}
	for _, bench := range benches {
		baseF[bench] = sc.submitBaseline(e, bench)
		for _, nc := range variants {
			runF[nc.Label][bench] = e.SubmitSpec(nc.Cfg, bench, sc.Insts, sc.Warmup)
		}
	}

	out := &AblationResult{}
	for _, nc := range variants {
		var slows, covs []float64
		var bpiSum float64
		for _, bench := range benches {
			baseNS, err := laneTimeNS(baseF[bench])
			if err != nil {
				return nil, err
			}
			res, err := runF[nc.Label][bench].Wait()
			if err != nil {
				return nil, fmt.Errorf("ablation %s/%s: %w", nc.Label, bench, err)
			}
			if res.Detections() != 0 {
				return nil, fmt.Errorf("ablation %s/%s: clean run raised detections", nc.Label, bench)
			}
			lane := res.Lanes[0]
			slows = append(slows, lane.TimeNS/baseNS)
			covs = append(covs, lane.Coverage()*100)
			bpiSum += float64(lane.LogBytes) / float64(lane.Insts)
		}
		out.Rows = append(out.Rows, AblationRow{
			Label:       nc.Label,
			SlowdownPct: (stats.Geomean(slows) - 1) * 100,
			CoveragePct: stats.Mean(covs),
			LogBPI:      bpiSum / float64(len(benches)),
		})
	}
	out.Notes = append(out.Notes,
		"eager waking and the large repurposed LSL$ are what keep checkpointing overhead negligible (section VII-A)",
		"Hash Mode trades NoC bytes for SHA-256 work; sampling trades coverage for checker energy")
	return out, nil
}
