package experiments

import (
	"fmt"

	"paraverser/internal/core"
	"paraverser/internal/fault"
	"paraverser/internal/stats"
)

// StrategyResult reports the checker-strategy head-to-head study: the
// same workload pool and the same fault streams run under every
// verification strategy, so each column's slowdown, detection-latency
// and energy deltas are attributable to the strategy alone.
type StrategyResult struct {
	// Order lists the strategies in render order.
	Order []string
	// Slowdown is the per-workload slowdown table (vs the no-checking
	// baseline) for every strategy.
	Slowdown *SeriesResult
	// Campaigns maps strategy name to its fault-injection campaign.
	// Equal seeds and single-config lists make trial i inject the
	// identical fault into the identical workload under every strategy,
	// so the outcome columns pair exactly.
	Campaigns map[string]*fault.CampaignResult
	// EnergyOverheadPct is the mean checker-energy overhead (checker
	// joules over main joules, internal/power models) across the clean
	// runs, per strategy.
	EnergyOverheadPct map[string]float64
	// AreaOverheadPct is the checker-pool silicon relative to the main
	// core. The pool is identical across strategies by construction —
	// the study isolates the protocol, not the hardware — so this is
	// one number, reported alongside the per-strategy columns for the
	// paper-style cost summary.
	AreaOverheadPct float64
}

// strategyConfigs returns one matched configuration per strategy:
// identical main core, checker pool and recovery policy — only the
// verification protocol differs. Divergent rides on its own check mode
// (the strategy layer resolves it); the other three are lockstep-mode
// full-coverage variants.
func strategyConfigs() (order []string, cfgs map[string]core.Config) {
	base := core.DefaultConfig(a510Spec(4, 2.0))
	base.Recovery = core.DefaultRecovery()
	order = []string{"lockstep", "divergent", "chunk-replay", "relaxed"}
	cfgs = make(map[string]core.Config, len(order))
	for _, name := range order {
		cfg := base
		switch name {
		case "lockstep":
			cfg.Strategy = core.StrategyLockstep
		case "divergent":
			cfg.CheckMode = core.CheckDivergent
			cfg.Strategy = core.StrategyDivergent
		case "chunk-replay":
			cfg.Strategy = core.StrategyChunkReplay
		case "relaxed":
			cfg.Strategy = core.StrategyRelaxed
		}
		applyCheckWorkers(&cfg)
		applyBlockExec(&cfg)
		applyTrace(&cfg)
		cfgs[name] = cfg
	}
	return order, cfgs
}

// Strategies runs the checker-strategy head-to-head: fault-free runs
// quantifying each strategy's slowdown and energy overhead, plus paired
// fault-injection campaigns quantifying its detection coverage and
// latency. Trial seeds derive from the base seed and results land in
// trial order, so the tables are byte-identical at any worker count.
func Strategies(sc Scale, seed int64, trials, workers int) (*StrategyResult, error) {
	return strategyStudy(defaultEngine(), sc, seed, trials, workers)
}

func strategyStudy(e *Engine, sc Scale, seed int64, trials, workers int) (*StrategyResult, error) {
	if trials <= 0 {
		trials = 4 * sc.FaultTrials
	}
	ws, err := divergentWorkloads(sc)
	if err != nil {
		return nil, err
	}
	order, cfgs := strategyConfigs()

	out := &StrategyResult{
		Order:             order,
		Campaigns:         make(map[string]*fault.CampaignResult, len(order)),
		EnergyOverheadPct: make(map[string]float64, len(order)),
		Slowdown: &SeriesResult{
			Title:  "Checker strategies: full-coverage slowdown, 4xA510@2GHz",
			Metric: "slowdown % vs no-checking baseline",
			Values: map[string]map[string]float64{},
			Order:  order,
		},
	}
	for _, name := range order {
		out.Slowdown.Values[name] = map[string]float64{}
	}
	main := cfgs[order[0]]
	var poolMM2 float64
	for _, spec := range main.Checkers {
		poolMM2 += float64(spec.Count) * spec.CPU.AreaMM2
	}
	out.AreaOverheadPct = poolMM2 / main.Main.AreaMM2 * 100

	// Phase 1: fault-free slowdown/energy runs, all in flight at once.
	// The campaign phase bypasses the engine (private injectors), so
	// kicking these off first keeps the pool busy throughout.
	type cleanRun struct {
		base  *Future
		strat map[string]*Future
	}
	cleanF := make([]cleanRun, len(ws))
	for i, w := range ws {
		out.Slowdown.Benchmarks = append(out.Slowdown.Benchmarks, w.Name)
		one := []core.Workload{{Name: w.Name, Prog: w.Prog, MaxInsts: sc.Insts, WarmupInsts: sc.Warmup}}
		cleanF[i] = cleanRun{base: e.Submit(baselineCfg(), one), strat: make(map[string]*Future, len(order))}
		for _, name := range order {
			cleanF[i].strat[name] = e.Submit(cfgs[name], one)
		}
	}

	// Phase 2: the paired campaigns. Same seed, same trial count, same
	// workload pool, one config each: genTrial's per-trial rng draws the
	// identical (fault, workload, checker) stream for every strategy, so
	// trial i is the same experiment under all four protocols.
	mix := divergentMix()
	for _, name := range order {
		camp, err := fault.RunCampaign(fault.CampaignConfig{
			Seed:      seed,
			Trials:    trials,
			Workers:   workers,
			Workloads: ws,
			Configs:   []core.Config{cfgs[name]},
			Mix:       &mix,
		})
		if err != nil {
			return nil, fmt.Errorf("strategy study, %s campaign: %w", name, err)
		}
		out.Campaigns[name] = camp
		defaultEngine().RecordMetrics(camp.RunMetrics())
	}

	// Phase 3: collect the slowdown and energy tables.
	for i, w := range ws {
		baseRes, err := cleanF[i].base.Wait()
		if err != nil {
			return nil, fmt.Errorf("strategy study baseline %s: %w", w.Name, err)
		}
		base := baseRes.TimeNS()
		for _, name := range order {
			res, err := cleanF[i].strat[name].Wait()
			if err != nil {
				return nil, fmt.Errorf("strategy study %s %s: %w", name, w.Name, err)
			}
			if res.Detections() != 0 {
				return nil, fmt.Errorf("strategy study %s: clean %s run raised detections", w.Name, name)
			}
			out.Slowdown.Values[name][w.Name] = (res.TimeNS()/base - 1) * 100
			rep, err := core.Energy(cfgs[name], res)
			if err != nil {
				return nil, fmt.Errorf("strategy study %s %s energy: %w", name, w.Name, err)
			}
			out.EnergyOverheadPct[name] += rep.Overhead * 100 / float64(len(ws))
		}
	}
	out.Slowdown.Notes = append(out.Slowdown.Notes,
		"chunk-replay batches segments into replay chunks (RepTFD-style), trading detection latency for stall-free logging",
		"relaxed start defers checks onto a busy pool (MEEK-style) before falling back to a lockstep stall")
	return out, nil
}

// Table renders the head-to-head summary: per-strategy cost (slowdown,
// energy, area) and detection quality (outcome split, latency mean and
// p95 in main-core instructions), then the per-workload slowdown table.
func (r *StrategyResult) Table() string {
	t := stats.NewTable("strategy", "slowdown%", "energy-ovh%", "area-ovh%",
		"detected", "masked", "dormant", "SDC", "lat-mean", "lat-p95")
	for _, name := range r.Order {
		camp := r.Campaigns[name]
		oc := camp.Outcomes()
		lat := camp.Latencies()
		latMean, latP95 := "-", "-"
		if len(lat) > 0 {
			latMean = fmt.Sprintf("%.0f", stats.Mean(lat))
			latP95 = fmt.Sprintf("%.0f", stats.Percentile(lat, 95))
		}
		// Benchmarks order, not map order: float summation must be
		// deterministic for the byte-identical-tables contract.
		var slows []float64
		for _, b := range r.Slowdown.Benchmarks {
			slows = append(slows, r.Slowdown.Values[name][b])
		}
		t.Row(name,
			fmt.Sprintf("%.2f", stats.Mean(slows)),
			fmt.Sprintf("%.1f", r.EnergyOverheadPct[name]),
			fmt.Sprintf("%.1f", r.AreaOverheadPct),
			oc[fault.Detected], oc[fault.Masked], oc[fault.Dormant], oc[fault.UndetectedSDC],
			latMean, latP95)
	}
	var trials int
	if c := r.Campaigns[r.Order[0]]; c != nil {
		trials = len(c.Trials)
	}
	out := fmt.Sprintf("Checker-strategy head-to-head (%d paired trials per strategy, identical fault streams)\n%s\n",
		trials, t.String())
	return out + r.Slowdown.Table()
}
