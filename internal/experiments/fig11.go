package experiments

import (
	"fmt"

	"paraverser/internal/core"
	"paraverser/internal/noc"
)

// Fig11 reproduces the NoC sensitivity study: full-coverage slowdown at
// the highest checker frequencies on the fast mesh, the slow mesh
// (128-bit, 1.5GHz), and the slow mesh with Hash Mode, plus a no-NoC-
// impact companion column.
func Fig11(sc Scale) (*SeriesResult, error) { return fig11(defaultEngine(), sc) }

func fig11(e *Engine, sc Scale) (*SeriesResult, error) {
	r := &SeriesResult{
		Title:      "Fig. 11: NoC sensitivity, homogeneous 1xX2@3.0 checker, full coverage",
		Metric:     "slowdown % vs no-checking baseline",
		Benchmarks: sc.benchmarks(),
		Values:     make(map[string]map[string]float64),
	}
	mk := func(mesh noc.Config, hash, lslOn bool) core.Config {
		cfg := core.DefaultConfig(x2Spec(1, 3.0))
		cfg.NoC = mesh
		cfg.HashMode = hash
		cfg.LSLTrafficOnNoC = lslOn
		return cfg
	}
	configs := []NamedConfig{
		{Label: "fastNoC", Cfg: mk(noc.Fast(), false, true)},
		{Label: "slowNoC", Cfg: mk(noc.Slow(), false, true)},
		{Label: "slowNoC+hash", Cfg: mk(noc.Slow(), true, true)},
		{Label: "noNoCimpact", Cfg: mk(noc.Slow(), false, false)},
	}
	for _, nc := range configs {
		r.Order = append(r.Order, nc.Label)
		r.Values[nc.Label] = make(map[string]float64)
	}
	// Checking overhead is measured against a no-checking baseline on the
	// SAME mesh: the study isolates the cost of LSL traffic, not of the
	// slower fabric itself.
	submitBaseline := func(mesh noc.Config, bench string) *Future {
		cfg := baselineCfg()
		cfg.NoC = mesh
		return e.SubmitSpec(cfg, bench, sc.Insts, sc.Warmup)
	}
	baseFastF := make(map[string]*Future, len(r.Benchmarks))
	baseSlowF := make(map[string]*Future, len(r.Benchmarks))
	runF := make(map[string]map[string]*Future, len(configs))
	for _, nc := range configs {
		runF[nc.Label] = make(map[string]*Future, len(r.Benchmarks))
	}
	for _, bench := range r.Benchmarks {
		baseFastF[bench] = submitBaseline(noc.Fast(), bench)
		baseSlowF[bench] = submitBaseline(noc.Slow(), bench)
		for _, nc := range configs {
			runF[nc.Label][bench] = e.SubmitSpec(nc.Cfg, bench, sc.Insts, sc.Warmup)
		}
	}

	for _, bench := range r.Benchmarks {
		baseFast, err := laneTimeNS(baseFastF[bench])
		if err != nil {
			return nil, err
		}
		baseSlow, err := laneTimeNS(baseSlowF[bench])
		if err != nil {
			return nil, err
		}
		for _, nc := range configs {
			res, err := runF[nc.Label][bench].Wait()
			if err != nil {
				return nil, fmt.Errorf("fig11 %s/%s: %w", nc.Label, bench, err)
			}
			if res.Detections() != 0 {
				return nil, fmt.Errorf("fig11 %s/%s: clean run raised detections", nc.Label, bench)
			}
			base := baseSlow
			if nc.Label == "fastNoC" {
				base = baseFast
			}
			r.Values[nc.Label][bench] = (res.Lanes[0].TimeNS/base - 1) * 100
		}
	}
	r.Notes = append(r.Notes,
		"paper: slowNoC >15% gm on affected benchmarks; Hash Mode brings it within 0.8% of the fast NoC",
		"Hash Mode halves load traffic and eliminates store traffic (section IV-I)")
	return r, nil
}
