package experiments

import (
	"strings"
	"testing"
)

// strategyScale is the smallest scale that still gives every strategy a
// fault-injection campaign and clean slowdown runs over three suites.
func strategyScale() Scale {
	return Scale{
		Insts:           40_000,
		Warmup:          20_000,
		FaultTrials:     2,
		FaultHorizon:    60_000,
		FaultBenchmarks: []string{"exchange2"},
		GAPScale:        8,
		GAPEdgeFactor:   6,
		ParsecScale:     200,
	}
}

// TestStrategyStudyDeterminism is the head-to-head experiment's
// contract: the rendered table is byte-identical at any campaign worker
// count (trial seeds derive from the base seed; results land in trial
// order) and the study's shape holds — all four strategies reported,
// campaigns paired trial-for-trial, finite cost columns.
func TestStrategyStudyDeterminism(t *testing.T) {
	sc := strategyScale()
	var want string
	for i, workers := range []int{1, 4} {
		e := NewEngine(workers)
		r, err := strategyStudy(e, sc, 11, 4, workers)
		if err != nil {
			t.Fatalf("strategy study at %d workers: %v", workers, err)
		}
		got := r.Table()
		if i == 0 {
			want = got

			if len(r.Order) != 4 {
				t.Fatalf("study covers %d strategies, want 4", len(r.Order))
			}
			trials := len(r.Campaigns[r.Order[0]].Trials)
			for _, name := range r.Order {
				camp := r.Campaigns[name]
				if camp == nil || len(camp.Trials) != trials {
					t.Fatalf("%s campaign not paired: %v", name, camp)
				}
				if !strings.Contains(got, name) {
					t.Errorf("table missing strategy %q:\n%s", name, got)
				}
				if ovh := r.EnergyOverheadPct[name]; ovh <= 0 {
					t.Errorf("%s energy overhead %.2f%%, want > 0", name, ovh)
				}
			}
			if r.AreaOverheadPct <= 0 {
				t.Errorf("area overhead %.2f%%, want > 0", r.AreaOverheadPct)
			}
			// Chunk replay must have actually batched during the clean
			// runs: its campaign pairs with the others only if the
			// strategy engaged.
			if m := r.Campaigns["chunk-replay"].RunMetrics(); m.ChunkSegments == 0 {
				t.Error("chunk-replay campaign recorded no chunk activity")
			}
			continue
		}
		if got != want {
			t.Errorf("strategy table differs between 1 and %d workers:\n%s\n--- vs ---\n%s", workers, got, want)
		}
	}
}
