package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"paraverser/internal/core"
)

// runKey identifies one simulation run for the engine's content-addressed
// cache: a fingerprint of the system configuration plus the identity and
// measurement window of every workload. Two Submit calls with equal keys
// are guaranteed to describe the same deterministic simulation, so the
// engine computes the run once and shares the Result.
type runKey struct {
	cfg string // config fingerprint (sha256 hex)
	ws  string // workload identities: name|progID|insts|warmup per entry
}

// cacheable reports whether a configuration's runs may be memoized. Runs
// with a fault interceptor on either side carry per-run mutable state
// (fire counters on the injector), so every submission must execute
// privately.
func cacheable(cfg *core.Config) bool {
	return cfg.CheckerInterceptor == nil && cfg.MainInterceptor == nil
}

// fingerprint hashes every semantically relevant field of a Config.
// Pointer fields are dereferenced so two independently built but equal
// configurations (e.g. two core.DefaultConfig calls) collide, which is
// what makes cross-figure deduplication work. fmt prints map fields in
// sorted key order, so the rendering is deterministic.
//
// fingerprintedConfigFields records, for every field of core.Config,
// whether writeConfig hashes it (true) or deliberately excludes it
// (false, with the reason below). TestFingerprintCoversConfig reflects
// over core.Config and fails on any field missing from this table, so a
// new field cannot silently reuse stale cache entries: it must be added
// here — and to writeConfig if it can change simulated outcomes. The
// paralint fingerprint analyzer enforces the same property at lint time.
//
//paralint:fingerprint(paraverser/internal/core.Config)
var fingerprintedConfigFields = map[string]bool{
	"Main":                   true,
	"MainFreqGHz":            true,
	"LaneMains":              true,
	"Checkers":               true,
	"Mode":                   true,
	"HashMode":               true,
	"CheckMode":              true,
	"Divergent":              true,
	"Strategy":               true,
	"StrategyTuning":         true,
	"EagerWake":              true,
	"TimeoutInsts":           true,
	"DedicatedLSLBytes":      true,
	"CheckpointStallCycles":  true,
	"CheckpointDrains":       true,
	"InterruptIntervalInsts": true,
	"SamplePeriod":           true,
	// CheckWorkers only changes wall-clock time: the pipelined engine
	// guarantees byte-identical results at every worker count
	// (core/pipeline.go), so runs differing only here share one entry.
	"CheckWorkers": false,
	// TimeShards and Spec drive the parallel-in-time engine (core/spec.go),
	// which guarantees byte-identical tables at every shard count and with
	// or without a speculation cache attached: both are pure wall-clock
	// knobs, so hashing them would split the cache for no semantic reason.
	"TimeShards": false,
	"Spec":       false,
	// BlockExec picks the block-compiled vs per-instruction execution
	// engine (core/system.go), which produce bit-identical simulated
	// outcomes (core/blockexec_test.go): another pure wall-clock knob,
	// so hashing it would split the cache for no semantic reason.
	"BlockExec":          false,
	"NoC":                true,
	"Layout":             true,
	"LSLTrafficOnNoC":    true,
	"L3":                 true,
	"L3HitNS":            true,
	"DRAM":               true,
	"CheckerInterceptor": true,
	"MainInterceptor":    true,
	"Recovery":           true,
	"Seed":               true,
	// Trace is observability only (segment trace ring): it never changes
	// simulated outcomes, and hashing the pointer would needlessly split
	// the cache per ring instance.
	"Trace": false,
}

// fingerprintedCPUFields is the same accounting for cpu.Config, which
// writeConfig hashes wholesale via %+v (Main, LaneMains, Checkers): every
// listed field rides along in that rendering. A new cpu.Config field
// fails TestFingerprintCoversConfig until it is listed here; mark it
// false only if it genuinely cannot affect simulated timing. Enforced at
// lint time by the paralint fingerprint analyzer alongside the table above.
//
//paralint:fingerprint(paraverser/internal/cpu.Config)
var fingerprintedCPUFields = map[string]bool{
	"Name":          true,
	"OoO":           true,
	"FetchWidth":    true,
	"IssueWidth":    true,
	"CommitWidth":   true,
	"FrontendDepth": true,
	"ROB":           true,
	"IQ":            true,
	"LQ":            true,
	"SQ":            true,
	"FUs":           true,
	"L1I":           true,
	"L1D":           true,
	"L2":            true,
	"BigPredictor":  true,
	"NominalGHz":    true,
	"AreaMM2":       true,
}

// fingerprintedNestedFields extends the accounting to every struct type
// from the core and cpu packages reachable through a hashed field of the
// tables above. These structs are rendered wholesale via %+v, so every
// exported field rides along in the hash automatically — but a field
// added to a nested struct must still be explicitly classified here,
// otherwise TestFingerprintCoversConfig fails: before this table, a new
// nested struct (or a new field on one) could slip into or out of the
// fingerprint without a decision. Keys are "pkg.Type"; cpu.Config keeps
// its dedicated, paralint-enforced table above. Struct types from other
// packages (noc, cachesim, dram, obs) render all exported fields through
// %+v by construction and carry no policy exclusions, so the walk stops
// at the core/cpu package boundary.
var fingerprintedNestedFields = map[string]map[string]bool{
	"core.LaneMain":         {"CPU": true, "FreqGHz": true},
	"core.CheckerSpec":      {"CPU": true, "FreqGHz": true, "Count": true},
	"core.DivergentConfig":  {"DataShiftBytes": true, "RegSeed": true},
	"core.StrategyConfig":   {"ChunkInsts": true, "MaxLagSegments": true},
	"core.RecoveryConfig":   {"Enabled": true, "MaxReplays": true, "ForensicRounds": true, "Quarantine": true},
	"core.QuarantinePolicy": {"CooldownNS": true, "ProbationChecks": true, "MaxOffenses": true},
	"cpu.FU":                {"Count": true, "Latency": true, "InitInterval": true},
}

func fingerprint(cfg *core.Config) string {
	h := sha256.New()
	writeConfig(h, cfg)
	return hex.EncodeToString(h.Sum(nil))
}

func writeConfig(w io.Writer, cfg *core.Config) {
	// 1-4: main core, frequency, per-lane overrides, checker pool.
	fmt.Fprintf(w, "main=%+v|%v\n", cfg.Main, cfg.MainFreqGHz)
	fmt.Fprintf(w, "lanes=%+v\n", cfg.LaneMains)
	fmt.Fprintf(w, "checkers=%+v\n", cfg.Checkers)
	// 5-10: operating mode and checkpointing behaviour.
	fmt.Fprintf(w, "mode=%v hash=%v eager=%v timeout=%v dedlsl=%v ckpt=%v/%v\n",
		cfg.Mode, cfg.HashMode, cfg.EagerWake, cfg.TimeoutInsts,
		cfg.DedicatedLSLBytes, cfg.CheckpointStallCycles, cfg.CheckpointDrains)
	// Checking mode, the decorrelation parameters that shape the
	// divergent variant, and the verification strategy with its tuning.
	// The strategy hashes in resolved form so an explicit
	// StrategyLockstep and the Auto default (which resolves to it)
	// share one cache entry — they are the same simulation.
	fmt.Fprintf(w, "checkmode=%v divergent=%+v strategy=%v tuning=%+v\n",
		cfg.CheckMode, cfg.Divergent, cfg.ResolvedStrategy(), cfg.StrategyTuning)
	// 11-12: interrupt and sampling policy.
	fmt.Fprintf(w, "irq=%v sample=%v\n", cfg.InterruptIntervalInsts, cfg.SamplePeriod)
	// 13-15: mesh, layout (dereferenced), LSL traffic accounting.
	fmt.Fprintf(w, "noc=%+v lsltraffic=%v\n", cfg.NoC, cfg.LSLTrafficOnNoC)
	if cfg.Layout != nil {
		fmt.Fprintf(w, "layout=%+v\n", *cfg.Layout)
	}
	// 16-18: shared LLC and memory.
	fmt.Fprintf(w, "l3=%+v hit=%v dram=%+v\n", cfg.L3, cfg.L3HitNS, cfg.DRAM)
	// 19: interceptor presence (non-nil configs are never cached, but the
	// bits keep the fingerprint total and honest).
	fmt.Fprintf(w, "intc=%v mainintc=%v\n", cfg.CheckerInterceptor != nil, cfg.MainInterceptor != nil)
	// 20-22: recovery policy and workload seed. Recovery.Quarantine rides
	// along inside %+v.
	fmt.Fprintf(w, "recovery=%+v seed=%v\n", cfg.Recovery, cfg.Seed)
	// CheckWorkers, TimeShards, Spec and Trace are deliberately NOT
	// hashed; see the fingerprintedConfigFields table for the rationale.
}

// workloadsKey renders the workload list's identity. Programs built from
// the SPEC generator are canonicalised by name (specProg guarantees one
// immutable *isa.Program per name per process); any other program is
// identified by pointer, which the cache entry keeps alive so the address
// cannot be recycled while the key is live.
func workloadsKey(ws []core.Workload) string {
	out := ""
	for i := range ws {
		w := &ws[i]
		id := fmt.Sprintf("%p", w.Prog)
		if p, ok := progCache.Load(w.Name); ok {
			if e := p.(*progEntry); e.prog == w.Prog {
				id = "spec:" + w.Name
			}
		}
		out += fmt.Sprintf("%s|%s|%d|%d\n", w.Name, id, w.MaxInsts, w.WarmupInsts)
	}
	return out
}

func keyFor(cfg *core.Config, ws []core.Workload) runKey {
	return runKey{cfg: fingerprint(cfg), ws: workloadsKey(ws)}
}
