// Package maintenance implements the hardware predictive-maintenance use
// case the paper motivates (section I and [16]): ParaVerser detections
// cannot tell which of the main or checker core was faulty, nor whether a
// fault is hard or soft, so the operator accumulates detections per core
// pair over time and retires cores whose error rates rise above fleet
// norms — "identifying CPUs that may become error-prone, possibly due to
// aging, before they fail".
package maintenance

import (
	"fmt"
	"sort"
)

// CoreID identifies one physical core in the fleet.
type CoreID struct {
	Socket int
	Core   int
}

func (c CoreID) String() string { return fmt.Sprintf("s%d/c%d", c.Socket, c.Core) }

// Observation is one checked segment's outcome for a (main, checker)
// pair.
type Observation struct {
	Main     CoreID
	Checker  CoreID
	Insts    uint64
	Detected bool
}

// Tracker accumulates observations and attributes blame. A detection
// implicates both cores of the pair (section V: "we cannot directly
// distinguish whether errors are from the main or checker core"); with
// rotating pairings, a genuinely faulty core accumulates implication
// across many partners while healthy partners do not.
type Tracker struct {
	insts      map[CoreID]uint64
	implicated map[CoreID]uint64
	partners   map[CoreID]map[CoreID]uint64 // implications per partner
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		insts:      make(map[CoreID]uint64),
		implicated: make(map[CoreID]uint64),
		partners:   make(map[CoreID]map[CoreID]uint64),
	}
}

// Record adds one observation.
func (t *Tracker) Record(o Observation) {
	t.insts[o.Main] += o.Insts
	t.insts[o.Checker] += o.Insts
	if !o.Detected {
		return
	}
	for _, pair := range [2][2]CoreID{{o.Main, o.Checker}, {o.Checker, o.Main}} {
		core, partner := pair[0], pair[1]
		t.implicated[core]++
		m := t.partners[core]
		if m == nil {
			m = make(map[CoreID]uint64)
			t.partners[core] = m
		}
		m[partner]++
	}
}

// ErrorRate returns implications per billion checked instructions for a
// core (the DPPB-style metric fleet scanners report).
func (t *Tracker) ErrorRate(c CoreID) float64 {
	n := t.insts[c]
	if n == 0 {
		return 0
	}
	return float64(t.implicated[c]) / float64(n) * 1e9
}

// DistinctPartners returns how many different partner cores implicated c:
// a faulty core is implicated across partners; a healthy core implicated
// by one bad partner is not.
func (t *Tracker) DistinctPartners(c CoreID) int { return len(t.partners[c]) }

// Verdict is a maintenance recommendation.
type Verdict uint8

// Verdicts. Enums start at one.
const (
	VerdictInvalid Verdict = iota
	// Healthy: error rate within fleet norms.
	Healthy
	// Suspect: elevated rate but implicated by a single partner — the
	// partner may be the faulty one.
	Suspect
	// Retire: elevated rate across multiple partners.
	Retire
)

func (v Verdict) String() string {
	switch v {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Retire:
		return "retire"
	default:
		return "invalid"
	}
}

// Policy sets the recommendation thresholds.
type Policy struct {
	// RateThreshold is the implications-per-billion-instructions level
	// above which a core is no longer Healthy.
	RateThreshold float64
	// MinPartners is how many distinct implicating partners upgrade
	// Suspect to Retire.
	MinPartners int
	// MinInsts is the minimum checked instructions before any verdict
	// other than Healthy (avoid retiring on noise).
	MinInsts uint64
}

// DefaultPolicy returns conservative thresholds.
func DefaultPolicy() Policy {
	return Policy{RateThreshold: 10, MinPartners: 2, MinInsts: 1_000_000}
}

// Judge returns the recommendation for one core.
func (t *Tracker) Judge(c CoreID, p Policy) Verdict {
	if t.insts[c] < p.MinInsts || t.ErrorRate(c) < p.RateThreshold {
		return Healthy
	}
	if t.DistinctPartners(c) >= p.MinPartners {
		return Retire
	}
	return Suspect
}

// Report lists every core with its rate and verdict, worst first.
type Report struct {
	Core     CoreID
	RatePPB  float64
	Partners int
	Verdict  Verdict
}

// Fleet returns the per-core report sorted by descending rate.
func (t *Tracker) Fleet(p Policy) []Report {
	out := make([]Report, 0, len(t.insts))
	for c := range t.insts {
		out = append(out, Report{
			Core:     c,
			RatePPB:  t.ErrorRate(c),
			Partners: t.DistinctPartners(c),
			Verdict:  t.Judge(c, p),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RatePPB != out[j].RatePPB {
			return out[i].RatePPB > out[j].RatePPB
		}
		return lessID(out[i].Core, out[j].Core)
	})
	return out
}

func lessID(a, b CoreID) bool {
	if a.Socket != b.Socket {
		return a.Socket < b.Socket
	}
	return a.Core < b.Core
}
