package maintenance

import (
	"math/rand"
	"testing"
)

func TestHealthyFleetStaysHealthy(t *testing.T) {
	tr := NewTracker()
	p := DefaultPolicy()
	for i := 0; i < 100; i++ {
		tr.Record(Observation{
			Main:    CoreID{0, i % 4},
			Checker: CoreID{0, 4 + i%4},
			Insts:   100_000,
		})
	}
	for _, r := range tr.Fleet(p) {
		if r.Verdict != Healthy {
			t.Errorf("%v: verdict %v on a clean fleet", r.Core, r.Verdict)
		}
	}
}

func TestFaultyCoreRetiredAcrossPartners(t *testing.T) {
	tr := NewTracker()
	p := DefaultPolicy()
	bad := CoreID{0, 7}
	rng := rand.New(rand.NewSource(1))
	// The bad core serves as checker for rotating mains and raises
	// detections often.
	for i := 0; i < 200; i++ {
		main := CoreID{0, i % 4}
		tr.Record(Observation{Main: main, Checker: bad, Insts: 100_000,
			Detected: rng.Intn(3) == 0})
		// Healthy pairs elsewhere.
		tr.Record(Observation{Main: CoreID{1, i % 4}, Checker: CoreID{1, 4 + i%4}, Insts: 100_000})
	}
	if v := tr.Judge(bad, p); v != Retire {
		t.Errorf("bad core verdict %v, want retire (rate %.1f, partners %d)",
			v, tr.ErrorRate(bad), tr.DistinctPartners(bad))
	}
	// Its partners are also implicated but each only by the bad core...
	// they rotate, so each main saw detections only with one partner.
	for c := 0; c < 4; c++ {
		main := CoreID{0, c}
		if v := tr.Judge(main, p); v == Retire {
			t.Errorf("healthy main %v retired (implicated only by the bad checker)", main)
		}
	}
}

func TestSuspectNeedsVolume(t *testing.T) {
	tr := NewTracker()
	p := DefaultPolicy()
	c := CoreID{2, 0}
	tr.Record(Observation{Main: c, Checker: CoreID{2, 1}, Insts: 10_000, Detected: true})
	if v := tr.Judge(c, p); v != Healthy {
		t.Errorf("verdict %v below MinInsts, want healthy", v)
	}
	for i := 0; i < 200; i++ {
		tr.Record(Observation{Main: c, Checker: CoreID{2, 1}, Insts: 10_000, Detected: true})
	}
	if v := tr.Judge(c, p); v != Suspect {
		t.Errorf("single-partner implication verdict %v, want suspect", v)
	}
}

func TestFleetSortedWorstFirst(t *testing.T) {
	tr := NewTracker()
	tr.Record(Observation{Main: CoreID{0, 0}, Checker: CoreID{0, 1}, Insts: 1e6, Detected: true})
	tr.Record(Observation{Main: CoreID{0, 2}, Checker: CoreID{0, 3}, Insts: 1e6})
	fleet := tr.Fleet(DefaultPolicy())
	if len(fleet) != 4 {
		t.Fatalf("fleet size %d", len(fleet))
	}
	for i := 1; i < len(fleet); i++ {
		if fleet[i].RatePPB > fleet[i-1].RatePPB {
			t.Error("fleet not sorted by descending rate")
		}
	}
}

func TestErrorRateUnits(t *testing.T) {
	tr := NewTracker()
	c := CoreID{0, 0}
	tr.Record(Observation{Main: c, Checker: CoreID{0, 1}, Insts: 1e9, Detected: true})
	if got := tr.ErrorRate(c); got != 1 {
		t.Errorf("rate = %v per 1e9 insts, want 1", got)
	}
	if tr.ErrorRate(CoreID{9, 9}) != 0 {
		t.Error("unknown core rate != 0")
	}
}
