//paralint:deterministic

// Package obs is the run-engine observability layer: deterministic
// metrics (counters, gauges, histograms), a bounded segment-trace ring
// that dumps Chrome trace_event JSON, and a live progress reporter.
//
// The design splits metrics by who writes them and when:
//
//   - Per-run simulation metrics (RunMetrics) are plain integer fields
//     written only at protocol-defined points of the deterministic
//     orchestrator loop (segment close, dispatch, join, recovery
//     events). One RunMetrics shard belongs to one System; shards merge
//     at collect time. Integer-only arithmetic makes the merge
//     commutative, so the aggregate is byte-identical no matter how
//     many workers raced over the run matrix or in which order their
//     results landed.
//   - Process-wide live counters (Counter) are atomics: the experiment
//     engine's run-cache statistics, the progress reporter's feed.
//     Scheduling-dependent counters (e.g. the in-flight singleflight
//     share split) are surfaced live but deliberately kept out of the
//     deterministic export.
//
// Nothing in this package is touched on the per-instruction hot path:
// the only per-instruction metric in the system (per-class FU issue
// counts) is a dense array increment inside cpu.Core, exported here at
// collect time.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a process-wide atomic counter for live statistics (the
// experiment engine's feed). Per-run deterministic metrics use plain
// RunMetrics fields instead.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Hist is a fixed-bound integer histogram. Bounds are inclusive upper
// bounds ("le" semantics); an implicit +Inf bucket catches the rest.
// Not safe for concurrent use: per-run histograms are written only by
// the orchestrator goroutine, and merged shard by shard at collect.
type Hist struct {
	Bounds []uint64 // ascending upper bounds
	Counts []uint64 // len(Bounds)+1; last is the +Inf bucket
	Sum    uint64
	N      uint64
}

// NewHist builds a histogram over the given ascending bucket bounds.
func NewHist(bounds ...uint64) Hist {
	return Hist{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
}

// Observe records one sample. Zero-allocation: the bucket walk is a
// linear scan over a handful of bounds.
func (h *Hist) Observe(v uint64) {
	i := 0
	for i < len(h.Bounds) && v > h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	h.Sum += v
	h.N++
}

// Merge accumulates another histogram with identical bounds.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Sum += o.Sum
	h.N += o.N
}

// Mean returns the average observed value (0 for an empty histogram).
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Quantile returns the upper bound of the bucket holding the q-th
// quantile sample (0 <= q <= 1), or the last finite bound for samples
// in the +Inf bucket. A coarse rank statistic, good enough for summary
// tables.
func (h *Hist) Quantile(q float64) uint64 {
	if h.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.N-1))
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > rank {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			break
		}
	}
	if len(h.Bounds) == 0 {
		return 0
	}
	return h.Bounds[len(h.Bounds)-1]
}

// String renders the histogram deterministically (for invariance
// tests and debugging).
func (h *Hist) String() string {
	return fmt.Sprintf("{n=%d sum=%d counts=%v}", h.N, h.Sum, h.Counts)
}

// Bucket is one exported histogram bucket (non-cumulative count).
type Bucket struct {
	LE uint64 `json:"le"` // inclusive upper bound; the +Inf bucket is omitted from Buckets and derivable from Count
	N  uint64 `json:"n"`
}

// Metric is one exported sample in a Snapshot.
type Metric struct {
	Name string `json:"name"`
	// Labels is a pre-rendered Prometheus label body, e.g.
	// `class="int-alu",core="main"` (empty for unlabelled metrics).
	Labels string `json:"labels,omitempty"`
	Kind   string `json:"kind"` // "counter", "gauge" or "histogram"
	// Value carries counter values (integers, never lossy).
	Value uint64 `json:"value,omitempty"`
	// Gauge carries gauge values.
	Gauge float64 `json:"gauge,omitempty"`
	// Histogram payload.
	Sum     uint64   `json:"sum,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
	Help    string   `json:"help,omitempty"`
}

// key orders metrics in the snapshot.
func (m *Metric) key() string { return m.Name + "{" + m.Labels + "}" }

// Snapshot is a point-in-time export of a metric set, sorted by name
// so two snapshots of the same deterministic state serialize to
// identical bytes.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// SnapshotBuilder accumulates metrics for a Snapshot. The zero value
// is ready to use.
type SnapshotBuilder struct {
	metrics []Metric
}

// Counter adds a counter metric.
func (b *SnapshotBuilder) Counter(name, help string, v uint64) {
	b.metrics = append(b.metrics, Metric{Name: name, Kind: "counter", Value: v, Help: help})
}

// LabeledCounter adds a counter metric with a pre-rendered label body.
func (b *SnapshotBuilder) LabeledCounter(name, labels, help string, v uint64) {
	b.metrics = append(b.metrics, Metric{Name: name, Labels: labels, Kind: "counter", Value: v, Help: help})
}

// Gauge adds a gauge metric.
func (b *SnapshotBuilder) Gauge(name, help string, v float64) {
	b.metrics = append(b.metrics, Metric{Name: name, Kind: "gauge", Gauge: v, Help: help})
}

// Hist adds a histogram metric.
func (b *SnapshotBuilder) Hist(name, help string, h *Hist) {
	m := Metric{Name: name, Kind: "histogram", Sum: h.Sum, Count: h.N, Help: help}
	for i, bound := range h.Bounds {
		m.Buckets = append(m.Buckets, Bucket{LE: bound, N: h.Counts[i]})
	}
	b.metrics = append(b.metrics, m)
}

// Snapshot finalizes the builder: metrics sorted by name+labels.
func (b *SnapshotBuilder) Snapshot() *Snapshot {
	out := &Snapshot{Metrics: append([]Metric(nil), b.metrics...)}
	sort.Slice(out.Metrics, func(i, j int) bool {
		return out.Metrics[i].key() < out.Metrics[j].key()
	})
	return out
}

// Get returns the metric with the given name (first label set wins).
func (s *Snapshot) Get(name string) (Metric, bool) {
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			return s.Metrics[i], true
		}
	}
	return Metric{}, false
}

// CounterValue returns a counter's value, 0 when absent.
func (s *Snapshot) CounterValue(name string) uint64 {
	m, ok := s.Get(name)
	if !ok {
		return 0
	}
	return m.Value
}

// WriteJSON writes the snapshot as deterministic JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshotJSON parses a snapshot written by WriteJSON. It is
// strict: the input must be exactly one JSON object carrying at least
// one metric — trailing data or an empty/missing metric set means the
// file is not a metrics snapshot (truncated write, wrong file), and
// silently accepting it would let downstream cross-checks "pass"
// against a vacuous snapshot.
func ReadSnapshotJSON(r io.Reader) (*Snapshot, error) {
	dec := json.NewDecoder(r)
	var s Snapshot
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("obs: parsing metrics JSON: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("obs: trailing data after metrics JSON")
	}
	if len(s.Metrics) == 0 {
		return nil, fmt.Errorf("obs: metrics JSON contains no metrics")
	}
	return &s, nil
}

// ReadSnapshotFile parses a snapshot file written by WriteSnapshotFile.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshotJSON(f)
}

// WriteSnapshotFile writes the snapshot as JSON to path.
func (s *Snapshot) WriteSnapshotFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// promName renders a metric name with its optional label body.
func promName(m *Metric, suffix, extraLabel string) string {
	labels := m.Labels
	if extraLabel != "" {
		if labels != "" {
			labels += ","
		}
		labels += extraLabel
	}
	if labels == "" {
		return m.Name + suffix
	}
	return m.Name + suffix + "{" + labels + "}"
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format. Histograms emit cumulative _bucket series plus _sum and
// _count, the way a scrape endpoint would.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	lastHeader := ""
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if m.Name != lastHeader {
			lastHeader = m.Name
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
		}
		switch m.Kind {
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s %v\n", promName(m, "", ""), m.Gauge); err != nil {
				return err
			}
		case "histogram":
			var cum uint64
			for _, b := range m.Buckets {
				cum += b.N
				if _, err := fmt.Fprintf(w, "%s %d\n",
					promName(m, "_bucket", fmt.Sprintf(`le="%d"`, b.LE)), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", promName(m, "_bucket", `le="+Inf"`), m.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n%s %d\n",
				promName(m, "_sum", ""), m.Sum, promName(m, "_count", ""), m.Count); err != nil {
				return err
			}
		default: // counter
			if _, err := fmt.Fprintf(w, "%s %d\n", promName(m, "", ""), m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// Summary renders a human-oriented table of the snapshot for the
// `paraverser metrics` subcommand.
func (s *Snapshot) Summary() string {
	var b strings.Builder
	wName := len("metric")
	for i := range s.Metrics {
		if n := len(s.Metrics[i].key()); n > wName {
			wName = n
		}
	}
	fmt.Fprintf(&b, "%-*s  %s\n%s  %s\n", wName, "metric", "value",
		strings.Repeat("-", wName), strings.Repeat("-", len("value")))
	for i := range s.Metrics {
		m := &s.Metrics[i]
		name := m.Name
		if m.Labels != "" {
			name += "{" + m.Labels + "}"
		}
		switch m.Kind {
		case "gauge":
			fmt.Fprintf(&b, "%-*s  %.4f\n", wName, name, m.Gauge)
		case "histogram":
			h := Hist{Sum: m.Sum, N: m.Count}
			for _, bk := range m.Buckets {
				h.Bounds = append(h.Bounds, bk.LE)
				h.Counts = append(h.Counts, bk.N)
			}
			var inf uint64
			for _, c := range h.Counts {
				inf += c
			}
			h.Counts = append(h.Counts, m.Count-inf)
			fmt.Fprintf(&b, "%-*s  n=%d mean=%.1f p50<=%d p95<=%d\n",
				wName, name, h.N, h.Mean(), h.Quantile(0.50), h.Quantile(0.95))
		default:
			fmt.Fprintf(&b, "%-*s  %d\n", wName, name, m.Value)
		}
	}
	return b.String()
}
