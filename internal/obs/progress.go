package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// ProgressStats is a point-in-time sample of a running experiment
// batch, polled by the Progress reporter. These are live values:
// unlike RunMetrics they may legitimately depend on scheduling (e.g.
// the cache-hit/in-flight-share split), which is why they feed the
// status line and never the deterministic export.
type ProgressStats struct {
	JobsTotal int64 // submissions issued so far
	JobsDone  int64 // submissions resolved (run, cached or shared)
	Runs      int64 // simulations actually executed
	Hits      int64 // submissions served from the completed-run cache
	Shares    int64 // submissions that joined an in-flight run
	Segments  int64 // segments closed across all executed runs
}

// Progress periodically renders a one-line status (segments/s, cache
// hit rate, ETA) to a writer, typically stderr. The poll function and
// writer are injected so tests drive it deterministically; Stop always
// renders one final line so output is non-empty however short the run.
type Progress struct {
	w        io.Writer
	poll     func() ProgressStats
	interval time.Duration
	start    time.Time

	mu       sync.Mutex
	lastLen  int
	stopped  bool
	stopCh   chan struct{}
	doneCh   chan struct{}
	now      func() time.Time // injectable clock for tests
	lastSegs int64
	lastAt   time.Time
}

// NewProgress builds a reporter polling stats every interval. Call
// Start to begin rendering and Stop to finish.
func NewProgress(w io.Writer, interval time.Duration, poll func() ProgressStats) *Progress {
	if interval <= 0 {
		interval = time.Second
	}
	return &Progress{
		w:        w,
		poll:     poll,
		interval: interval,
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
		//paralint:allow(injected-clock default; progress rendering never feeds results)
		now: time.Now,
	}
}

// Start launches the render loop.
func (p *Progress) Start() {
	p.start = p.now()
	p.lastAt = p.start
	go func() {
		defer close(p.doneCh)
		tick := time.NewTicker(p.interval)
		defer tick.Stop()
		for {
			select {
			case <-p.stopCh:
				return
			case <-tick.C:
				p.render(false)
			}
		}
	}()
}

// Stop halts the loop and renders a final newline-terminated line.
// Safe to call more than once.
func (p *Progress) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	p.mu.Unlock()
	close(p.stopCh)
	<-p.doneCh
	p.render(true)
}

// render draws one status line, overwriting the previous one with \r
// padding; the final render ends with \n instead.
func (p *Progress) render(final bool) {
	s := p.poll()
	now := p.now()
	elapsed := now.Sub(p.start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}

	p.mu.Lock()
	defer p.mu.Unlock()

	// Segment rate over the window since the previous render, so the
	// figure tracks current throughput rather than the lifetime mean.
	window := now.Sub(p.lastAt).Seconds()
	segRate := float64(s.Segments) / elapsed
	if !final && window > 0.1 {
		segRate = float64(s.Segments-p.lastSegs) / window
	}
	p.lastSegs = s.Segments
	p.lastAt = now

	var hitRate float64
	if s.JobsDone > 0 {
		hitRate = float64(s.Hits+s.Shares) / float64(s.JobsDone)
	}

	eta := "--"
	if s.JobsDone > 0 && s.JobsTotal > s.JobsDone {
		per := elapsed / float64(s.JobsDone)
		eta = fmtDuration(time.Duration(per * float64(s.JobsTotal-s.JobsDone) * float64(time.Second)))
	} else if s.JobsTotal > 0 && s.JobsTotal == s.JobsDone {
		eta = "done"
	}

	line := fmt.Sprintf("runs %d/%d · %d executed · cache %.0f%% · %.0f seg/s · eta %s",
		s.JobsDone, s.JobsTotal, s.Runs, hitRate*100, segRate, eta)
	pad := ""
	if n := p.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	p.lastLen = len(line)
	if final {
		fmt.Fprintf(p.w, "\r%s%s\n", line, pad)
	} else {
		fmt.Fprintf(p.w, "\r%s%s", line, pad)
	}
}

// fmtDuration renders a coarse human duration for the ETA field.
func fmtDuration(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%ds", int(d.Seconds()+0.5))
	case d < time.Hour:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	}
}
