package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Trace is a bounded segment-trace ring shared by every lane and
// checker of a run (or of many runs, when installed on the experiment
// engine). Events past the capacity are counted, not stored, so the
// ring never grows and the exporter can report exactly how much was
// dropped per category — which lets CI cross-check
// "segment events + dropped(segment) == segments_total" even when the
// ring wraps.
//
// Emit takes a mutex rather than sharding: tracing is opt-in (-trace)
// and fires once per segment, not per instruction, so contention is
// negligible next to the simulation work between events.
type Trace struct {
	mu      sync.Mutex
	events  []TraceEvent
	cap     int
	dropped map[string]uint64
	pids    atomic.Uint64
}

// TraceEvent is one Chrome trace_event "complete" (ph=X) entry.
// Timestamps and durations are microseconds of simulated time.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  uint64            `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Trace event categories.
const (
	CatSegment = "segment" // a main-core checkpoint interval
	CatCheck   = "check"   // a checker verification of one segment
)

// NewTrace returns a ring holding at most capacity events.
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{
		events:  make([]TraceEvent, 0, min(capacity, 1<<16)),
		cap:     capacity,
		dropped: make(map[string]uint64),
	}
}

// NextPID reserves a process id for one simulation run, so concurrent
// runs sharing the ring render as separate process rows.
func (t *Trace) NextPID() uint64 {
	return t.pids.Add(1)
}

// Emit records a complete event. cat is one of the Cat* constants,
// startNS/durNS are simulated nanoseconds; args may be nil.
func (t *Trace) Emit(cat, name string, pid, tid uint64, startNS, durNS float64, args map[string]string) {
	t.mu.Lock()
	if len(t.events) >= t.cap {
		t.dropped[cat]++
		t.mu.Unlock()
		return
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS: startNS / 1e3, Dur: durNS / 1e3,
		PID: pid, TID: tid, Args: args,
	})
	t.mu.Unlock()
}

// Len returns the number of stored events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Count returns stored and dropped event counts for one category.
func (t *Trace) Count(cat string) (stored, dropped uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.events {
		if t.events[i].Cat == cat {
			stored++
		}
	}
	return stored, t.dropped[cat]
}

// traceFile is the on-disk Chrome trace format (JSON Object Format).
// Dropped counts ride in otherData so readers can detect truncation.
type traceFile struct {
	TraceEvents []TraceEvent      `json:"traceEvents"`
	OtherData   map[string]string `json:"otherData,omitempty"`
}

// WriteJSON dumps the ring as Chrome trace_event JSON, loadable in
// chrome://tracing or Perfetto. Events are sorted by (pid, tid, ts)
// so output is deterministic for a deterministic event set.
func (t *Trace) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	evs := make([]TraceEvent, len(t.events))
	copy(evs, t.events)
	other := map[string]string{}
	for cat, n := range t.dropped {
		other["dropped_"+cat] = fmt.Sprint(n)
	}
	t.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.TS < b.TS
	})
	if len(other) == 0 {
		other = nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: evs, OtherData: other})
}

// WriteFile writes the trace to path via WriteJSON.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTraceJSON parses a Chrome trace file written by WriteJSON and
// returns the events plus per-category dropped counts. It is strict:
// trailing data after the trace object or a malformed dropped_* count
// is an error — the dropped counts feed the segment-accounting
// cross-check, and a count that silently parses to nothing would make
// that check vacuously pass.
func ReadTraceJSON(r io.Reader) ([]TraceEvent, map[string]uint64, error) {
	dec := json.NewDecoder(r)
	var tf traceFile
	if err := dec.Decode(&tf); err != nil {
		return nil, nil, fmt.Errorf("parse trace: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, nil, fmt.Errorf("parse trace: trailing data after trace JSON")
	}
	// Walk the keys in sorted order so a file with several bad counts
	// reports the same one every time.
	keys := make([]string, 0, len(tf.OtherData))
	for k := range tf.OtherData {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dropped := make(map[string]uint64)
	for _, k := range keys {
		if len(k) > len("dropped_") && k[:len("dropped_")] == "dropped_" {
			v := tf.OtherData[k]
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("parse trace: bad dropped count %s=%q", k, v)
			}
			dropped[k[len("dropped_"):]] = n
		}
	}
	return tf.TraceEvents, dropped, nil
}

// ReadTraceFile parses the trace file at path.
func ReadTraceFile(path string) ([]TraceEvent, map[string]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadTraceJSON(f)
}
