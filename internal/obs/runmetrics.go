package obs

import (
	"fmt"

	"paraverser/internal/isa"
)

// RunMetrics is one simulation run's metric shard: segment lifecycle,
// checker-pool pressure, recovery-pipeline transitions, and per-class
// functional-unit issue counts. Every field is integer-valued and is
// written only at protocol-defined points of the orchestrator loop
// (segment close, checker dispatch, deferred join, recovery event), so
// a run's metrics are byte-identical at any CheckWorkers setting and
// shards merge commutatively across any worker-pool schedule.
//
// Counters cover the whole run including warmup: they are raw event
// tallies (matching the segment trace), unlike LaneResult statistics,
// which subtract the warmup window.
type RunMetrics struct {
	// Segment lifecycle.
	Segments           uint64 // checkpoint intervals closed
	SegmentsChecked    uint64 // dispatched to a checker
	SegmentsUnchecked  uint64 // ran without verification (opportunistic skip or degradation)
	SegmentsDegraded   uint64 // unchecked because quarantine emptied the pool
	SegmentsMismatched uint64 // checks that raised a detection
	SegmentsReplayed   uint64 // recovery re-replays on alternate checkers
	ShadowChecks       uint64 // probation shadow checks

	// Divergent-mode checking (decorrelated variant replay).
	SegmentsCheckedDivergent uint64 // checks run against the decorrelated variant
	DivergentDataMismatches  uint64 // logged load data contradicted the private image

	// Strategy activity (chunk-replay and relaxed-start strategies).
	ChunkSegments   uint64 // segments accumulated into replay chunks
	ChunkChecks     uint64 // chunk flushes dispatched to a checker
	RelaxedDeferred uint64 // checks deferred onto a busy pool (relaxed start)

	// Instructions.
	Insts        uint64
	InstsChecked uint64

	// Main-core checking overheads, in integer nanoseconds (rounded
	// per event, so totals merge deterministically).
	StallNS      uint64 // full-coverage stalls waiting for a checker
	CheckpointNS uint64 // register-checkpoint cost

	// Checker-side work, in integer nanoseconds.
	CheckBusyNS uint64 // checker compute time over all checks
	// CheckWindowNS is the per-lane wall clock times the lane's pool
	// size, summed over lanes: the denominator for pool utilization.
	CheckWindowNS uint64

	// Quarantine state machine transitions.
	Quarantines      uint64
	ProbationEntries uint64
	Readmissions     uint64
	Retirements      uint64

	// CheckQueueDepth samples, at each dispatch, how many checks are
	// in flight (dispatched but unjoined) on the lane's pool, this one
	// included; CheckLatencyNS the per-check compute duration.
	CheckQueueDepth Hist
	CheckLatencyNS  Hist

	// Per-class functional-unit issue counts, split by core duty.
	FUIssueMain    [isa.NumClasses]uint64
	FUIssueChecker [isa.NumClasses]uint64
}

// NewRunMetrics returns a shard with its histograms sized.
func NewRunMetrics() *RunMetrics {
	return &RunMetrics{
		CheckQueueDepth: NewHist(0, 1, 2, 4, 8, 16, 32),
		CheckLatencyNS:  NewHist(1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000),
	}
}

// Merge accumulates another shard. Integer-only addition makes the
// merge commutative: aggregate totals do not depend on completion
// order.
func (m *RunMetrics) Merge(o *RunMetrics) {
	if o == nil {
		return
	}
	m.Segments += o.Segments
	m.SegmentsChecked += o.SegmentsChecked
	m.SegmentsUnchecked += o.SegmentsUnchecked
	m.SegmentsDegraded += o.SegmentsDegraded
	m.SegmentsMismatched += o.SegmentsMismatched
	m.SegmentsReplayed += o.SegmentsReplayed
	m.ShadowChecks += o.ShadowChecks
	m.SegmentsCheckedDivergent += o.SegmentsCheckedDivergent
	m.DivergentDataMismatches += o.DivergentDataMismatches
	m.ChunkSegments += o.ChunkSegments
	m.ChunkChecks += o.ChunkChecks
	m.RelaxedDeferred += o.RelaxedDeferred
	m.Insts += o.Insts
	m.InstsChecked += o.InstsChecked
	m.StallNS += o.StallNS
	m.CheckpointNS += o.CheckpointNS
	m.CheckBusyNS += o.CheckBusyNS
	m.CheckWindowNS += o.CheckWindowNS
	m.Quarantines += o.Quarantines
	m.ProbationEntries += o.ProbationEntries
	m.Readmissions += o.Readmissions
	m.Retirements += o.Retirements
	m.CheckQueueDepth.Merge(&o.CheckQueueDepth)
	m.CheckLatencyNS.Merge(&o.CheckLatencyNS)
	for i := range m.FUIssueMain {
		m.FUIssueMain[i] += o.FUIssueMain[i]
		m.FUIssueChecker[i] += o.FUIssueChecker[i]
	}
}

// PoolUtilization returns checker compute time over available checker
// time — the occupancy figure the paper sizes pools by. Derived from
// integer totals, so it is deterministic whenever they are.
func (m *RunMetrics) PoolUtilization() float64 {
	if m.CheckWindowNS == 0 {
		return 0
	}
	return float64(m.CheckBusyNS) / float64(m.CheckWindowNS)
}

// AddTo flattens the shard into snapshot metrics under the given name
// prefix (conventionally "paraverser_").
func (m *RunMetrics) AddTo(b *SnapshotBuilder, prefix string) {
	b.Counter(prefix+"segments_total", "checkpoint intervals closed (including warmup)", m.Segments)
	b.Counter(prefix+"segments_checked_total", "segments dispatched to a checker", m.SegmentsChecked)
	b.Counter(prefix+"segments_unchecked_total", "segments run without verification", m.SegmentsUnchecked)
	b.Counter(prefix+"segments_degraded_total", "unchecked segments due to an emptied checker pool", m.SegmentsDegraded)
	b.Counter(prefix+"segments_mismatched_total", "checks that raised a detection", m.SegmentsMismatched)
	b.Counter(prefix+"segments_replayed_total", "recovery re-replays on alternate checkers", m.SegmentsReplayed)
	b.Counter(prefix+"probation_shadow_checks_total", "probation shadow checks", m.ShadowChecks)
	b.Counter(prefix+"segments_checked_divergent_total", "checks run against the decorrelated variant", m.SegmentsCheckedDivergent)
	b.Counter(prefix+"divergent_data_mismatches_total", "logged load data contradicted the divergent private image", m.DivergentDataMismatches)
	b.Counter(prefix+"chunk_segments_total", "segments accumulated into replay chunks", m.ChunkSegments)
	b.Counter(prefix+"chunk_checks_total", "chunk flushes dispatched to a checker", m.ChunkChecks)
	b.Counter(prefix+"relaxed_deferred_total", "checks deferred onto a busy pool (relaxed start)", m.RelaxedDeferred)
	b.Counter(prefix+"insts_total", "main-core instructions executed", m.Insts)
	b.Counter(prefix+"insts_checked_total", "main-core instructions verified", m.InstsChecked)
	b.Counter(prefix+"main_stall_ns_total", "main-core stall waiting for checkers (ns)", m.StallNS)
	b.Counter(prefix+"checkpoint_ns_total", "register-checkpoint overhead (ns)", m.CheckpointNS)
	b.Counter(prefix+"check_busy_ns_total", "checker compute time (ns)", m.CheckBusyNS)
	b.Counter(prefix+"check_window_ns_total", "checker-pool available time (ns)", m.CheckWindowNS)
	b.Gauge(prefix+"checker_utilization", "check_busy_ns / check_window_ns", m.PoolUtilization())
	b.Counter(prefix+"quarantines_total", "checkers quarantined", m.Quarantines)
	b.Counter(prefix+"probation_entries_total", "quarantined checkers promoted to probation", m.ProbationEntries)
	b.Counter(prefix+"readmissions_total", "probation checkers readmitted", m.Readmissions)
	b.Counter(prefix+"retirements_total", "checkers retired", m.Retirements)
	b.Hist(prefix+"check_queue_depth", "in-flight checks per pool, sampled at dispatch", &m.CheckQueueDepth)
	b.Hist(prefix+"check_latency_ns", "per-check compute duration (ns)", &m.CheckLatencyNS)
	for c := 1; c < isa.NumClasses; c++ {
		class := isa.Class(c)
		if m.FUIssueMain[c] > 0 {
			b.LabeledCounter(prefix+"fu_issue_total",
				fmt.Sprintf(`class=%q,core="main"`, class), "instructions issued per FU class", m.FUIssueMain[c])
		}
		if m.FUIssueChecker[c] > 0 {
			b.LabeledCounter(prefix+"fu_issue_total",
				fmt.Sprintf(`class=%q,core="checker"`, class), "instructions issued per FU class", m.FUIssueChecker[c])
		}
	}
}

// String renders the shard deterministically for invariance tests:
// equality of two renders means equality of every exported metric.
func (m *RunMetrics) String() string {
	if m == nil {
		return "<nil>"
	}
	return fmt.Sprintf("seg=%d/%d/%d deg=%d mm=%d rep=%d shadow=%d div=%d/%d chunk=%d/%d relax=%d insts=%d/%d "+
		"stall=%d ckpt=%d busy=%d window=%d q=%d/%d/%d/%d depth=%s lat=%s fuM=%v fuC=%v",
		m.Segments, m.SegmentsChecked, m.SegmentsUnchecked, m.SegmentsDegraded,
		m.SegmentsMismatched, m.SegmentsReplayed, m.ShadowChecks,
		m.SegmentsCheckedDivergent, m.DivergentDataMismatches,
		m.ChunkSegments, m.ChunkChecks, m.RelaxedDeferred, m.Insts, m.InstsChecked,
		m.StallNS, m.CheckpointNS, m.CheckBusyNS, m.CheckWindowNS,
		m.Quarantines, m.ProbationEntries, m.Readmissions, m.Retirements,
		m.CheckQueueDepth.String(), m.CheckLatencyNS.String(), m.FUIssueMain, m.FUIssueChecker)
}
