package obs

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"paraverser/internal/isa"
)

func TestHistObserve(t *testing.T) {
	h := NewHist(10, 100, 1000)
	for _, v := range []uint64{0, 10, 11, 100, 500, 1000, 1001, 5000} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // le=10: {0,10}; le=100: {11,100}; le=1000: {500,1000}; +Inf: {1001,5000}
	if !reflect.DeepEqual(h.Counts, want) {
		t.Errorf("counts = %v, want %v", h.Counts, want)
	}
	if h.N != 8 {
		t.Errorf("N = %d, want 8", h.N)
	}
	if h.Sum != 0+10+11+100+500+1000+1001+5000 {
		t.Errorf("Sum = %d", h.Sum)
	}
}

func TestHistMergeCommutative(t *testing.T) {
	a := NewHist(10, 100)
	b := NewHist(10, 100)
	for _, v := range []uint64{5, 50, 500} {
		a.Observe(v)
	}
	for _, v := range []uint64{7, 70, 700, 7000} {
		b.Observe(v)
	}
	ab := NewHist(10, 100)
	ab.Merge(&a)
	ab.Merge(&b)
	ba := NewHist(10, 100)
	ba.Merge(&b)
	ba.Merge(&a)
	if ab.String() != ba.String() {
		t.Errorf("merge not commutative: %s vs %s", ab.String(), ba.String())
	}
	if ab.N != 7 {
		t.Errorf("merged N = %d, want 7", ab.N)
	}
}

func TestHistQuantile(t *testing.T) {
	h := NewHist(1, 2, 4, 8)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for i := 0; i < 10; i++ {
		h.Observe(1)
	}
	h.Observe(8)
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("p50 = %d, want 1", q)
	}
	if q := h.Quantile(1.0); q != 8 {
		t.Errorf("p100 = %d, want 8", q)
	}
	// Samples in the +Inf bucket clamp to the last finite bound.
	h.Observe(99)
	if q := h.Quantile(1.0); q != 8 {
		t.Errorf("p100 with +Inf sample = %d, want 8", q)
	}
	// Out-of-range q clamps rather than panicking.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("quantile clamp broken")
	}
}

func TestSnapshotDeterministicAndRoundTrip(t *testing.T) {
	build := func(order []int) *Snapshot {
		h := NewHist(10, 100)
		h.Observe(5)
		h.Observe(5000)
		var b SnapshotBuilder
		adds := []func(){
			func() { b.Counter("z_total", "z", 3) },
			func() { b.Counter("a_total", "a", 1) },
			func() { b.Gauge("util", "u", 0.5) },
			func() { b.Hist("lat", "l", &h) },
			func() { b.LabeledCounter("fu_total", `class="load"`, "f", 7) },
			func() { b.LabeledCounter("fu_total", `class="int-alu"`, "f", 9) },
		}
		for _, i := range order {
			adds[i]()
		}
		return b.Snapshot()
	}
	var b1, b2 bytes.Buffer
	if err := build([]int{0, 1, 2, 3, 4, 5}).WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build([]int{5, 3, 1, 4, 2, 0}).WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("snapshot JSON depends on insertion order:\n%s\nvs\n%s", b1.String(), b2.String())
	}

	s, err := ReadSnapshotJSON(&b1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CounterValue("a_total"); got != 1 {
		t.Errorf("a_total = %d, want 1", got)
	}
	m, ok := s.Get("lat")
	if !ok || m.Count != 2 || m.Sum != 5005 {
		t.Errorf("lat histogram = %+v, ok=%v", m, ok)
	}
	if len(m.Buckets) != 2 || m.Buckets[0].N != 1 {
		t.Errorf("lat buckets = %+v", m.Buckets)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	var b SnapshotBuilder
	b.Counter("x_total", "x", 42)
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := b.Snapshot().WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	s, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.CounterValue("x_total") != 42 {
		t.Errorf("x_total = %d, want 42", s.CounterValue("x_total"))
	}
}

func TestWritePrometheus(t *testing.T) {
	h := NewHist(10, 100)
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	var b SnapshotBuilder
	b.Counter("seg_total", "segments", 12)
	b.Gauge("util", "occupancy", 0.25)
	b.Hist("lat", "latency", &h)
	b.LabeledCounter("fu_total", `class="load"`, "fu", 7)
	var out bytes.Buffer
	if err := b.Snapshot().WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"# HELP seg_total segments",
		"# TYPE seg_total counter",
		"seg_total 12",
		"util 0.25",
		"# TYPE lat histogram",
		`lat_bucket{le="10"} 1`,
		`lat_bucket{le="100"} 2`, // cumulative
		`lat_bucket{le="+Inf"} 3`,
		"lat_sum 5055",
		"lat_count 3",
		`fu_total{class="load"} 7`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

func TestSummaryRenders(t *testing.T) {
	h := NewHist(10, 100)
	h.Observe(5)
	var b SnapshotBuilder
	b.Counter("seg_total", "segments", 12)
	b.Hist("lat", "latency", &h)
	b.Gauge("util", "occupancy", 0.25)
	sum := b.Snapshot().Summary()
	for _, want := range []string{"seg_total", "12", "lat", "n=1", "util", "0.2500"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestRunMetricsMergeCommutative(t *testing.T) {
	mk := func(seed uint64) *RunMetrics {
		m := NewRunMetrics()
		m.Segments = seed
		m.SegmentsChecked = seed * 2
		m.Insts = seed * 100
		m.StallNS = seed * 7
		m.Quarantines = seed % 3
		m.CheckQueueDepth.Observe(seed % 5)
		m.CheckLatencyNS.Observe(seed * 1000)
		m.FUIssueMain[isa.ClassIntALU] = seed * 10
		m.FUIssueChecker[isa.ClassLoad] = seed * 4
		return m
	}
	ab := NewRunMetrics()
	ab.Merge(mk(3))
	ab.Merge(mk(11))
	ba := NewRunMetrics()
	ba.Merge(mk(11))
	ba.Merge(mk(3))
	if ab.String() != ba.String() {
		t.Errorf("RunMetrics merge not commutative:\n%s\nvs\n%s", ab, ba)
	}
	if ab.Segments != 14 || ab.FUIssueMain[isa.ClassIntALU] != 140 {
		t.Errorf("merged values wrong: %s", ab)
	}
	ab.Merge(nil) // must not panic
}

func TestRunMetricsAddTo(t *testing.T) {
	m := NewRunMetrics()
	m.Segments = 10
	m.SegmentsChecked = 8
	m.CheckBusyNS = 50
	m.CheckWindowNS = 100
	m.FUIssueMain[isa.ClassLoad] = 33
	m.CheckLatencyNS.Observe(1500)
	var b SnapshotBuilder
	m.AddTo(&b, "pv_")
	s := b.Snapshot()
	if got := s.CounterValue("pv_segments_total"); got != 10 {
		t.Errorf("segments_total = %d, want 10", got)
	}
	u, ok := s.Get("pv_checker_utilization")
	if !ok || math.Abs(u.Gauge-0.5) > 1e-12 {
		t.Errorf("utilization = %+v, ok=%v", u, ok)
	}
	found := false
	for _, mm := range s.Metrics {
		if mm.Name == "pv_fu_issue_total" && strings.Contains(mm.Labels, `class="load"`) &&
			strings.Contains(mm.Labels, `core="main"`) {
			found = true
			if mm.Value != 33 {
				t.Errorf("fu_issue load = %d, want 33", mm.Value)
			}
		}
	}
	if !found {
		t.Error("fu_issue_total{class=load,core=main} missing")
	}
	if h, ok := s.Get("pv_check_latency_ns"); !ok || h.Count != 1 || h.Sum != 1500 {
		t.Errorf("check_latency_ns = %+v, ok=%v", h, ok)
	}
}

func TestTraceRingAndRoundTrip(t *testing.T) {
	tr := NewTrace(3)
	pid := tr.NextPID()
	tr.Emit(CatSegment, "seg 0", pid, 0, 0, 1000, map[string]string{"insts": "100"})
	tr.Emit(CatCheck, "check 0", pid, 100, 500, 800, nil)
	tr.Emit(CatSegment, "seg 1", pid, 1, 1000, 1000, nil)
	tr.Emit(CatSegment, "seg 2", pid, 0, 2000, 1000, nil) // dropped
	tr.Emit(CatCheck, "check 1", pid, 101, 2500, 700, nil)

	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	stored, dropped := tr.Count(CatSegment)
	if stored != 2 || dropped != 1 {
		t.Errorf("segment stored=%d dropped=%d, want 2/1", stored, dropped)
	}
	if stored+dropped != 3 {
		t.Error("segment stored+dropped must equal total emitted segments")
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	evs, drops, err := ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Errorf("round-trip events = %d, want 3", len(evs))
	}
	if drops[CatSegment] != 1 || drops[CatCheck] != 1 {
		t.Errorf("round-trip dropped = %v", drops)
	}
	// Sorted by (pid, tid, ts): lane 0 seg before lane 1 seg before tid-100 check.
	if evs[0].Name != "seg 0" || evs[0].Args["insts"] != "100" {
		t.Errorf("first event = %+v", evs[0])
	}
	if evs[0].TS != 0 || evs[0].Dur != 1 { // 1000 ns = 1 µs
		t.Errorf("µs conversion wrong: ts=%v dur=%v", evs[0].TS, evs[0].Dur)
	}
}

func TestTraceWriteFile(t *testing.T) {
	tr := NewTrace(16)
	tr.Emit(CatSegment, "seg", tr.NextPID(), 0, 0, 10, nil)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	evs, _, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Ph != "X" {
		t.Errorf("events = %+v", evs)
	}
}

func TestProgressFinalLine(t *testing.T) {
	var buf bytes.Buffer
	stats := ProgressStats{JobsTotal: 10, JobsDone: 10, Runs: 4, Hits: 6, Segments: 200}
	p := NewProgress(&buf, time.Hour, func() ProgressStats { return stats })
	p.Start()
	p.Stop()
	p.Stop() // idempotent
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("final render must end with newline: %q", out)
	}
	for _, want := range []string{"runs 10/10", "4 executed", "cache 60%", "eta done"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress line missing %q: %q", want, out)
		}
	}
}

func TestProgressETA(t *testing.T) {
	var buf bytes.Buffer
	stats := ProgressStats{JobsTotal: 10, JobsDone: 5, Runs: 5, Segments: 100}
	p := NewProgress(&buf, time.Hour, func() ProgressStats { return stats })
	base := time.Unix(1000, 0)
	ticks := 0
	p.now = func() time.Time { ticks++; return base.Add(time.Duration(ticks) * 10 * time.Second) }
	p.Start()
	p.Stop()
	out := buf.String()
	if !strings.Contains(out, "eta ") || strings.Contains(out, "eta --") {
		t.Errorf("expected a concrete ETA in %q", out)
	}
}
