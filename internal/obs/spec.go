package obs

import "sync/atomic"

// SpecStats are the live counters of the parallel-in-time speculation
// engine: how many functional streams were recorded and replayed, how
// many segments were emulated speculatively ahead of the timing stitch,
// and how often speculation had to abort back to sequential replay.
// The counters are process-visible diagnostics — their values depend on
// cache state and scheduling, so they deliberately live outside the
// deterministic RunMetrics/Result export.
type SpecStats struct {
	// StreamsRecorded counts functional streams recorded to completion
	// and published for reuse.
	StreamsRecorded atomic.Uint64
	// StreamsReplayed counts lane runs served end-to-end from a
	// recorded stream instead of live emulation.
	StreamsReplayed atomic.Uint64
	// SegmentsSpeculated counts segments emulated by a producer ahead
	// of the timing stitch (speculation hits once committed).
	SegmentsSpeculated atomic.Uint64
	// SegmentsReplayed counts segments stitched from a recorded stream.
	SegmentsReplayed atomic.Uint64
	// SpecAborts counts divergence events: a speculative segment whose
	// entry state did not extend the committed predecessor, forcing
	// fallback to sequential replay.
	SpecAborts atomic.Uint64
	// MicroRecorded / MicroReplayed count main-core micro-architectural
	// traces (cache hit levels + branch verdicts) recorded and reused.
	MicroRecorded atomic.Uint64
	MicroReplayed atomic.Uint64
	// StitchNS accumulates wall time spent inside the deterministic
	// timing stitch (only measured when a clock is injected).
	StitchNS atomic.Uint64
}

// SpecSnapshot is a point-in-time copy of SpecStats.
type SpecSnapshot struct {
	StreamsRecorded    uint64
	StreamsReplayed    uint64
	SegmentsSpeculated uint64
	SegmentsReplayed   uint64
	SpecAborts         uint64
	MicroRecorded      uint64
	MicroReplayed      uint64
	StitchNS           uint64
}

// Snapshot copies the current counter values.
func (s *SpecStats) Snapshot() SpecSnapshot {
	return SpecSnapshot{
		StreamsRecorded:    s.StreamsRecorded.Load(),
		StreamsReplayed:    s.StreamsReplayed.Load(),
		SegmentsSpeculated: s.SegmentsSpeculated.Load(),
		SegmentsReplayed:   s.SegmentsReplayed.Load(),
		SpecAborts:         s.SpecAborts.Load(),
		MicroRecorded:      s.MicroRecorded.Load(),
		MicroReplayed:      s.MicroReplayed.Load(),
		StitchNS:           s.StitchNS.Load(),
	}
}
