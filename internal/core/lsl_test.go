package core

import (
	"testing"
	"testing/quick"

	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

func loadEffect(addr uint64, size uint8, data uint64) *emu.Effect {
	e := &emu.Effect{Inst: isa.Inst{Op: isa.OpLD, Size: size}, Class: isa.ClassLoad}
	e.Mem[0] = emu.MemOp{Kind: emu.MemLoad, Addr: addr, Size: size, Data: data}
	e.NMem = 1
	return e
}

func storeEffect(addr uint64, size uint8, data uint64) *emu.Effect {
	e := &emu.Effect{Inst: isa.Inst{Op: isa.OpST, Size: size}, Class: isa.ClassStore}
	e.Mem[0] = emu.MemOp{Kind: emu.MemStore, Addr: addr, Size: size, Data: data}
	e.NMem = 1
	return e
}

func TestEntryFromLoad(t *testing.T) {
	e, ok := EntryFromEffect(loadEffect(0x1000, 8, 42))
	if !ok || e.Kind != EntryLoad {
		t.Fatalf("entry = %+v, ok=%v", e, ok)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// 7B addr + 1B size + 8B payload.
	if got := e.SizeBytes(false); got != 16 {
		t.Errorf("load entry size %d, want 16", got)
	}
	// Hash mode: payload only.
	if got := e.SizeBytes(true); got != 8 {
		t.Errorf("hash-mode load entry size %d, want 8", got)
	}
}

func TestEntryFromStore(t *testing.T) {
	e, ok := EntryFromEffect(storeEffect(0x2000, 4, 7))
	if !ok || e.Kind != EntryStore {
		t.Fatalf("entry = %+v", e)
	}
	if got := e.SizeBytes(false); got != 16 { // 8B meta + 4B rounded to 8B
		t.Errorf("store entry size %d, want 16", got)
	}
	// Hash mode eliminates store traffic entirely (section IV-I).
	if got := e.SizeBytes(true); got != 0 {
		t.Errorf("hash-mode store entry size %d, want 0", got)
	}
}

func TestEntryFromSwap(t *testing.T) {
	eff := &emu.Effect{Inst: isa.Inst{Op: isa.OpSWP, Size: 8}, Class: isa.ClassAtomic}
	eff.Mem[0] = emu.MemOp{Kind: emu.MemLoad, Addr: 0x3000, Size: 8, Data: 1}
	eff.Mem[1] = emu.MemOp{Kind: emu.MemStore, Addr: 0x3000, Size: 8, Data: 2}
	eff.NMem = 2
	e, ok := EntryFromEffect(eff)
	if !ok || e.Kind != EntryLoadStore {
		t.Fatalf("entry = %+v", e)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// Loaded data first, then stored data (section IV-B).
	if !e.Ops[0].Load || e.Ops[1].Load {
		t.Error("swap entry order wrong")
	}
	if got := e.SizeBytes(false); got != 8+8+8 {
		t.Errorf("swap entry size %d, want 24", got)
	}
}

func TestEntryGatherSortedLowestFirst(t *testing.T) {
	eff := &emu.Effect{Inst: isa.Inst{Op: isa.OpGLD, Size: 8}, Class: isa.ClassLoad}
	eff.Mem[0] = emu.MemOp{Kind: emu.MemLoad, Addr: 0x9000, Size: 8, Data: 1}
	eff.Mem[1] = emu.MemOp{Kind: emu.MemLoad, Addr: 0x1000, Size: 8, Data: 2}
	eff.NMem = 2
	e, ok := EntryFromEffect(eff)
	if !ok || e.Kind != EntryGather {
		t.Fatalf("entry = %+v", e)
	}
	if e.Ops[0].Addr != 0x9000 || e.Ops[1].Addr != 0x1000 {
		t.Error("gather entry ops not in execution order (checker consumes operand order)")
	}
	if w := e.WireOps(); w[0].Addr != 0x1000 {
		t.Error("gather wire layout not lowest-address-first (footnote 10)")
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := e.SizeBytes(false); got != 32 { // two (8B meta + 8B payload)
		t.Errorf("gather entry size %d, want 32", got)
	}
}

func TestEntryNonRepeat(t *testing.T) {
	eff := &emu.Effect{Inst: isa.Inst{Op: isa.OpRAND}, Class: isa.ClassNonRepeat,
		NonRepeat: true, NonRepeatVal: 0xDEAD}
	e, ok := EntryFromEffect(eff)
	if !ok || e.Kind != EntryNonRepeat {
		t.Fatalf("entry = %+v", e)
	}
	if got := e.SizeBytes(false); got != 8 {
		t.Errorf("non-repeat entry size %d, want 8 (payload only)", got)
	}
	if got := e.SizeBytes(true); got != 8 {
		t.Errorf("hash-mode non-repeat size %d, want 8 (still replay data)", got)
	}
}

func TestNoEntryForALU(t *testing.T) {
	eff := &emu.Effect{Inst: isa.Inst{Op: isa.OpADD}, Class: isa.ClassIntALU}
	if _, ok := EntryFromEffect(eff); ok {
		t.Error("ALU op produced a log entry")
	}
}

func TestHashModeAlwaysSmaller(t *testing.T) {
	// Property: hash mode never increases an entry's NoC footprint, and
	// cuts loads by at least half (the paper's 50% claim).
	f := func(addr uint64, sizeSel, kindSel uint8, data uint64) bool {
		size := []uint8{1, 2, 4, 8}[sizeSel%4]
		var eff *emu.Effect
		if kindSel%2 == 0 {
			eff = loadEffect(addr, size, data)
		} else {
			eff = storeEffect(addr, size, data)
		}
		e, ok := EntryFromEffect(eff)
		if !ok {
			return false
		}
		h, n := e.SizeBytes(true), e.SizeBytes(false)
		if h > n {
			return false
		}
		return h <= n/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLSPULineBatching(t *testing.T) {
	u := NewLSPU(false)
	e, _ := EntryFromEffect(loadEffect(0x100, 8, 1)) // 16B each
	pushes := 0
	for i := 0; i < 4; i++ {
		pushes += u.Append(e)
	}
	if pushes != 1 {
		t.Errorf("4x16B entries: %d pushes, want exactly 1 full line", pushes)
	}
	if u.Pending() != 0 {
		t.Errorf("pending %d after exact fill", u.Pending())
	}
	pushes += u.Append(e)
	if u.Pending() != 16 {
		t.Errorf("pending %d, want 16", u.Pending())
	}
	if got := u.Flush(); got != 1 {
		t.Errorf("flush pushed %d lines, want 1", got)
	}
	if u.Flush() != 0 {
		t.Error("double flush pushed again")
	}
	if u.PushedBytes != 3*LineBytes-LineBytes {
		t.Errorf("pushed bytes %d, want %d", u.PushedBytes, 2*LineBytes)
	}
}

func TestLSPUNoStraddle(t *testing.T) {
	u := NewLSPU(false)
	small, _ := EntryFromEffect(loadEffect(0x100, 8, 1)) // 16B
	swp := Entry{Kind: EntryLoadStore, Ops: []MemRec{
		{Addr: 1, Size: 8, Data: 1, Load: true}, {Addr: 1, Size: 8, Data: 2}}} // 24B
	u.Append(small) // 16
	u.Append(swp)   // 40
	u.Append(small) // 56
	// A 24B entry cannot fit in the remaining 8B: the line is pushed
	// first and the entry starts the next line (section IV-C).
	if got := u.Append(swp); got != 1 {
		t.Errorf("append pushed %d lines, want 1 (flush before placing)", got)
	}
	if u.Pending() != 24 {
		t.Errorf("pending %d, want 24", u.Pending())
	}
}

func TestLSPUOversizedEntry(t *testing.T) {
	u := NewLSPU(false)
	// A synthetic entry larger than a line (e.g. a wide gather) is sent
	// as back-to-back lines.
	big := Entry{Kind: EntryGather, Ops: []MemRec{
		{Addr: 0, Size: 8, Load: true}, {Addr: 8, Size: 8, Load: true}}}
	// Size is 32B — not oversized. Construct an artificial oversize via
	// repeated append to verify multi-line accounting instead.
	small, _ := EntryFromEffect(loadEffect(0x100, 8, 1))
	u.Append(small)
	if got := u.Append(big); got != 0 {
		t.Errorf("48B fill should not push, got %d", got)
	}
	if u.Pending() != 48 {
		t.Errorf("pending %d, want 48", u.Pending())
	}
}

func TestCounterBoundaries(t *testing.T) {
	c := &Counter{TimeoutInsts: 10}
	c.Reset(4)
	for i := 0; i < 2; i++ {
		if r := c.Tick(0); r != BoundaryInvalid {
			t.Fatalf("early boundary %v", r)
		}
	}
	// Third line reaches capacity-1 = 3 lines.
	c.Tick(1)
	c.Tick(1)
	if r := c.Tick(1); r != BoundaryLSLFull {
		t.Errorf("boundary = %v, want lsl-full", r)
	}

	c.Reset(0) // no line capacity: timeout only
	var r BoundaryReason
	for i := 0; i < 10; i++ {
		r = c.Tick(0)
	}
	if r != BoundaryTimeout {
		t.Errorf("boundary = %v, want timeout", r)
	}
	if c.Insts() != 10 {
		t.Errorf("insts = %d", c.Insts())
	}
}

func TestBoundaryReasonStrings(t *testing.T) {
	for r := BoundaryLSLFull; r <= BoundaryHalt; r++ {
		if r.String() == "invalid" {
			t.Errorf("reason %d has no name", r)
		}
	}
}
