package core

// LineBytes is the cache-line and NoC message granularity for LSL pushes.
const LineBytes = 64

// LSPU is the Load-Store Push Unit (section IV-C): it buffers one cache
// line's worth of LSL entries at the main core and pushes complete lines
// directly over the NoC to the checker core's LSL$, bypassing the
// coherence directory. Entries that do not fit in the remaining space of
// the current line are placed in the next line (no straddling), unless the
// entry itself is larger than a line.
type LSPU struct {
	hashMode bool

	lineFill int // bytes used in the current line

	// PushedLines and PushedBytes count completed NoC pushes; Entries
	// counts entries accepted.
	PushedLines int
	PushedBytes int
	Entries     int
}

// NewLSPU returns an empty push unit.
func NewLSPU(hashMode bool) *LSPU { return &LSPU{hashMode: hashMode} }

// Append accepts one entry, returning the number of complete lines pushed
// to the NoC as a result (0, 1, or more for oversized entries).
func (u *LSPU) Append(e Entry) int {
	size := e.SizeBytes(u.hashMode)
	if size == 0 {
		return 0 // hash-mode store: nothing crosses the NoC
	}
	u.Entries++
	pushed := 0
	if size > LineBytes {
		// Oversized entry: flush the current line, then send the entry
		// as back-to-back lines.
		if u.lineFill > 0 {
			pushed += u.flushLine()
		}
		lines := (size + LineBytes - 1) / LineBytes
		u.PushedLines += lines
		u.PushedBytes += lines * LineBytes
		return pushed + lines
	}
	if u.lineFill+size > LineBytes {
		pushed += u.flushLine()
	}
	u.lineFill += size
	if u.lineFill == LineBytes {
		pushed += u.flushLine()
	}
	return pushed
}

// Flush pushes any partial line (end of checkpoint: the LSPU is drained
// when the checker core changes). Returns lines pushed.
func (u *LSPU) Flush() int {
	if u.lineFill == 0 {
		return 0
	}
	return u.flushLine()
}

func (u *LSPU) flushLine() int {
	u.lineFill = 0
	u.PushedLines++
	u.PushedBytes += LineBytes
	return 1
}

// Pending returns the bytes buffered but not yet pushed.
func (u *LSPU) Pending() int { return u.lineFill }

// Reset clears counters and buffer for a new run.
func (u *LSPU) Reset() {
	*u = LSPU{hashMode: u.hashMode}
}
