package core

import (
	"math/rand"
	"testing"

	"paraverser/internal/asm"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// randomProgram generates a random but structurally valid program mixing
// every logged instruction class, for property-testing the capture/replay
// pipeline end to end.
func randomProgram(seed int64, ops int) *isa.Program {
	rng := rand.New(rand.NewSource(seed))
	b := asm.New("fuzz")
	const ws = 1 << 12
	data := b.Reserve(ws)
	for i := 0; i < ws; i += 8 {
		b.SetWord64(data+uint64(i), rng.Uint64())
	}
	const rBase, rMask, rT, rT2 = isa.Reg(5), isa.Reg(6), isa.Reg(7), isa.Reg(8)
	b.Li(rBase, int64(isa.DefaultDataBase))
	b.Li(rMask, ws-8)
	for i := isa.Reg(1); i <= 6; i++ {
		b.Li(rT, int64(rng.Intn(50)+1))
		b.Fcvtif(i, rT)
	}
	intReg := func() isa.Reg { return isa.Reg(10 + rng.Intn(8)) }
	fpReg := func() isa.Reg { return isa.Reg(1 + rng.Intn(6)) }
	addr := func() {
		b.Andi(rT, intReg(), ws-8)
		b.Add(rT, rT, rBase)
	}
	for i := 0; i < ops; i++ {
		switch rng.Intn(12) {
		case 0:
			b.Add(intReg(), intReg(), intReg())
		case 1:
			b.Mul(intReg(), intReg(), intReg())
		case 2:
			b.Fadd(fpReg(), fpReg(), fpReg())
		case 3:
			b.Fmul(fpReg(), fpReg(), fpReg())
		case 4:
			addr()
			b.Ld(8, intReg(), rT, 0)
		case 5:
			addr()
			b.St([]uint8{1, 2, 4, 8}[rng.Intn(4)], intReg(), rT, 0)
		case 6:
			addr()
			b.Swp(intReg(), rT, intReg())
		case 7:
			addr()
			b.Mov(rT2, rT)
			b.Andi(rT, intReg(), ws-8)
			b.Add(rT, rT, rBase)
			b.Gld(8, intReg(), rT2, rT, 0)
		case 8:
			b.Rand(intReg())
		case 9:
			b.Cycle(intReg())
		case 10:
			addr()
			b.Fld(fpReg(), rT, 0)
		case 11:
			addr()
			b.Fst(fpReg(), rT, 0)
		}
	}
	b.Halt()
	return b.MustBuild()
}

// TestPropertyCleanReplayAlwaysPasses is the core soundness property: for
// any program, capturing segments on a fault-free main run and replaying
// them through the checker must never raise a detection (no false
// positives), in both normal and Hash Mode.
func TestPropertyCleanReplayAlwaysPasses(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		prog := randomProgram(seed, 150)
		for _, hash := range []bool{false, true} {
			segs := captureSegments(t, prog, 40, hash)
			for _, seg := range segs {
				res := CheckSegment(prog, seg, hash, nil, nil)
				if res.Detected() {
					t.Fatalf("seed %d hash=%v: false positive: %v", seed, hash, res.Mismatches)
				}
			}
		}
	}
}

// TestPropertyCorruptionAlwaysDetected: flipping any single bit of any
// logged payload, or any end-checkpoint register the segment wrote, must
// be detected (no false negatives on log corruption).
func TestPropertyCorruptionAlwaysDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for seed := int64(1); seed <= 15; seed++ {
		prog := randomProgram(seed+100, 120)
		segs := captureSegments(t, prog, 50, false)
		seg := segs[rng.Intn(len(segs))]
		if len(seg.Entries) == 0 {
			continue
		}
		e := rng.Intn(len(seg.Entries))
		if seg.Entries[e].Kind == EntryNonRepeat {
			// Non-repeatable entries carry replay payload only: no
			// address or store data is verified against them, so flips
			// there are load-payload-like (maskable) and out of scope.
			continue
		}
		op := rng.Intn(len(seg.Entries[e].Ops))
		bit := uint(rng.Intn(64))
		rec := &seg.Entries[e].Ops[op]
		switch rng.Intn(3) {
		case 0:
			// Store data is compared verbatim by the LSC: any in-width
			// flip must be detected. (Load payloads can be masked
			// architecturally, so they are not a strict property.)
			if rec.Load {
				rec.Addr ^= 1 << (bit % 20)
			} else {
				rec.Data ^= 1 << (bit % (8 * uint(rec.Size)))
			}
		case 1:
			rec.Addr ^= 1 << (bit % 20)
		case 2:
			seg.End.X[1+rng.Intn(30)] ^= 1 << bit
		}
		res := CheckSegment(prog, seg, false, nil, nil)
		if res.OK {
			t.Fatalf("seed %d: corruption survived: entry %d op %d (%+v)", seed, e, op, *rec)
		}
	}
}

// TestPropertyReplayDeterministic: checking the same segment twice gives
// identical outcomes (no hidden state).
func TestPropertyReplayDeterministic(t *testing.T) {
	prog := randomProgram(7, 200)
	segs := captureSegments(t, prog, 64, true)
	for _, seg := range segs {
		a := CheckSegment(prog, seg, true, nil, nil)
		b := CheckSegment(prog, seg, true, nil, nil)
		if a.OK != b.OK || a.Insts != b.Insts {
			t.Fatal("replay nondeterministic")
		}
	}
}

// TestPropertySegmentInstCountsSumToRun: segments partition the run.
func TestPropertySegmentInstCountsSumToRun(t *testing.T) {
	prog := randomProgram(11, 300)
	total, err := emu.RunProgram(prog, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	segs := captureSegments(t, prog, 77, false)
	var sum uint64
	for _, s := range segs {
		sum += s.Insts
	}
	if sum != uint64(total) {
		t.Errorf("segments sum to %d insts, run executed %d", sum, total)
	}
}
