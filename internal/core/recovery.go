package core

import (
	"math"

	"paraverser/internal/emu"
	"paraverser/internal/maintenance"
)

// RecoveryEvent records one detection's trip through the recovery
// pipeline: the re-replays on alternate checkers, the forensic verdict,
// and the latency the recovery itself cost.
type RecoveryEvent struct {
	// Seq is the failing segment's sequence number; Checker the suspect
	// checker's ID; DetectInst the main-core instruction count at
	// detection.
	Seq        int
	Checker    int
	DetectInst int64
	// Retries is how many alternate-checker replays ran; ReplayedClean
	// whether any of them verified the segment clean.
	Retries       int
	ReplayedClean bool
	// Verdict is the forensics classification of the event.
	Verdict Diagnosis
	// Quarantined reports whether the suspect left the pool over this
	// event.
	Quarantined bool
	// LatencyInsts is the instructions replayed during recovery;
	// LatencyNS the wall-clock the replays occupied.
	LatencyInsts uint64
	LatencyNS    float64
}

// RecoveryStats aggregates the recovery pipeline's activity for one
// lane. All counters cover the measured window (warmup is subtracted).
type RecoveryStats struct {
	// Events is how many detections entered recovery; Retries the total
	// alternate-checker replays; ReplayedClean how many events had the
	// segment re-verify clean on another checker.
	Events        int
	Retries       int
	ReplayedClean int

	// Verdict tally, using the forensics taxonomy of section V.
	CheckerPersistent   int
	CheckerIntermittent int
	MainSuspected       int
	Unreproduced        int

	// Quarantines, Readmissions and Retirements count pool transitions;
	// ProbationChecks the shadow checks run by probation checkers.
	Quarantines     int
	Readmissions    int
	Retirements     int
	ProbationChecks int

	// ReplayInsts and ReplayNS are the recovery pipeline's own cost.
	ReplayInsts uint64
	ReplayNS    float64
}

func (r *RecoveryStats) sub(w RecoveryStats) {
	r.Events -= w.Events
	r.Retries -= w.Retries
	r.ReplayedClean -= w.ReplayedClean
	r.CheckerPersistent -= w.CheckerPersistent
	r.CheckerIntermittent -= w.CheckerIntermittent
	r.MainSuspected -= w.MainSuspected
	r.Unreproduced -= w.Unreproduced
	r.Quarantines -= w.Quarantines
	r.Readmissions -= w.Readmissions
	r.Retirements -= w.Retirements
	r.ProbationChecks -= w.ProbationChecks
	r.ReplayInsts -= w.ReplayInsts
	r.ReplayNS -= w.ReplayNS
}

// add accumulates another lane's (or trial's) stats, for aggregation.
func (r *RecoveryStats) Add(o RecoveryStats) {
	r.Events += o.Events
	r.Retries += o.Retries
	r.ReplayedClean += o.ReplayedClean
	r.CheckerPersistent += o.CheckerPersistent
	r.CheckerIntermittent += o.CheckerIntermittent
	r.MainSuspected += o.MainSuspected
	r.Unreproduced += o.Unreproduced
	r.Quarantines += o.Quarantines
	r.Readmissions += o.Readmissions
	r.Retirements += o.Retirements
	r.ProbationChecks += o.ProbationChecks
	r.ReplayInsts += o.ReplayInsts
	r.ReplayNS += o.ReplayNS
}

// recovering reports whether the recovery pipeline is live.
func (s *System) recovering() bool { return s.cfg.Recovery.Enabled }

// laneMainID and laneCheckerID map simulated cores onto fleet CoreIDs
// for the maintenance tracker: main cores live on socket 0; each lane's
// checker pool is presented as its own socket.
func laneMainID(l *lane) maintenance.CoreID {
	return maintenance.CoreID{Socket: 0, Core: l.idx}
}

func laneCheckerID(l *lane, ck *Checker) maintenance.CoreID {
	return maintenance.CoreID{Socket: 1 + l.idx, Core: ck.ID}
}

// observe feeds one checked-segment outcome into the live maintenance
// tracker (the predictive-maintenance use case of section I).
func (s *System) observe(l *lane, ck *Checker, insts uint64, detected bool) {
	if s.tracker == nil {
		return
	}
	s.tracker.Record(maintenance.Observation{
		Main:     laneMainID(l),
		Checker:  laneCheckerID(l, ck),
		Insts:    insts,
		Detected: detected,
	})
}

// replayOn re-runs seg's check on ck, modelling the retransmission of
// the retained log over the mesh and the checker's execution time. The
// replay uses ck's own fault environment, so a faulty partner can fail
// a replay too. Returns the check result and the completion time.
func (s *System) replayOn(l *lane, ck *Checker, seg *Segment, nowNS float64) (CheckResult, float64) {
	lineLatNS := s.mesh.LatencyNS(l.pos, ck.Pos, LineBytes)
	if s.cfg.LSLTrafficOnNoC {
		xfer := float64(seg.LogBytes) + 2*float64(l.rcu.CheckpointTransferBytes())
		s.flows.add(l.pos, ck.Pos, xfer)
	}
	startNS := math.Max(nowNS+lineLatNS, ck.FreeAtNS)
	ck.Core.AdvanceTo(startNS * ck.FreqGHz)
	c0 := ck.Core.Cycles()
	var intc emu.Interceptor
	if s.cfg.CheckerInterceptor != nil {
		intc = s.cfg.CheckerInterceptor(l.idx, ck.ID)
	}
	res := CheckSegment(l.proc.w.Prog, seg, s.cfg.HashMode, intc, func(e *emu.Effect) {
		ck.Core.Consume(e)
	})
	durNS := (ck.Core.Cycles() - c0) / ck.FreqGHz
	doneNS := startNS + durNS
	ck.FreeAtNS = doneNS
	ck.BusyNS += durNS
	ck.Insts += res.Insts
	ck.Segments++
	return res, doneNS
}

// recover drives the closed loop for one detection: bounded re-replay on
// rotating alternate checkers, forensic classification, maintenance
// feedback, and quarantine of implicated checkers.
func (s *System) recover(l *lane, suspect *Checker, seg *Segment, detectNS float64) {
	rc := s.cfg.Recovery
	st := &l.res.Recovery
	st.Events++
	ev := RecoveryEvent{
		Seq:        seg.Seq,
		Checker:    suspect.ID,
		DetectInst: l.executed,
	}

	// Bounded re-replay on different checkers, rotating partners.
	now := detectNS
	for try := 0; try < rc.MaxReplays; try++ {
		partner := l.alloc.NextPartner(suspect, now)
		if partner == nil {
			break // pool exhausted; fall through to forensics alone
		}
		res, doneNS := s.replayOn(l, partner, seg, now)
		ev.Retries++
		st.Retries++
		ev.LatencyInsts += res.Insts
		s.observe(l, partner, seg.Insts, res.Detected())
		now = doneNS
		if !res.Detected() {
			ev.ReplayedClean = true
			break
		}
	}
	ev.LatencyNS = now - detectNS
	st.ReplayInsts += ev.LatencyInsts
	st.ReplayNS += ev.LatencyNS
	s.metrics.SegmentsReplayed += uint64(ev.Retries)
	if ev.ReplayedClean {
		st.ReplayedClean++
	}

	// Repeat replays on the suspect's fault environment plus a reference
	// replay classify the culprit (section V). These run out-of-band on
	// the implicated core, so they are not charged to the lane's clock.
	var intc emu.Interceptor
	if s.cfg.CheckerInterceptor != nil {
		intc = s.cfg.CheckerInterceptor(l.idx, suspect.ID)
	}
	rep := Investigate(l.proc.w.Prog, seg, s.cfg.HashMode, intc, rc.ForensicRounds)
	ev.Verdict = rep.Diagnosis

	switch rep.Diagnosis {
	case CheckerPersistent:
		st.CheckerPersistent++
	case CheckerIntermittent:
		st.CheckerIntermittent++
	case MainSuspected:
		st.MainSuspected++
	case NotReproduced:
		st.Unreproduced++
	}

	// A checker implicated by forensics — or one whose flagged segment
	// re-verified clean elsewhere while the suspect keeps failing — is
	// quarantined.
	if rep.Diagnosis == CheckerPersistent || rep.Diagnosis == CheckerIntermittent {
		retired := l.alloc.Quarantine(suspect, now, rc.Quarantine)
		ev.Quarantined = true
		st.Quarantines++
		s.metrics.Quarantines++
		if retired {
			st.Retirements++
			s.metrics.Retirements++
		}
	}

	if len(l.res.SampleRecoveries) < sampleRecoveryCap {
		l.res.SampleRecoveries = append(l.res.SampleRecoveries, ev)
	}
}

// retainProbationSeg keeps a private copy of the latest clean segment so
// probation checkers have verified material to shadow-check even when
// the lane is running degraded. Only retained while the pool is
// impaired; the copy cost is zero in healthy steady state.
func (s *System) retainProbationSeg(l *lane, seg *Segment) {
	if !l.alloc.Impaired() {
		l.lastClean = nil
		return
	}
	cp := *seg
	cp.Entries = append([]Entry(nil), seg.Entries...)
	// The entries' Ops alias the lane's log arena, which the next
	// beginSegment truncates and overwrites — the retained copy needs
	// records of its own.
	total := 0
	for _, e := range seg.Entries {
		total += len(e.Ops)
	}
	ops := make([]MemRec, 0, total)
	for i := range cp.Entries {
		start := len(ops)
		ops = append(ops, cp.Entries[i].Ops...)
		cp.Entries[i].Ops = ops[start:len(ops):len(ops)]
	}
	l.lastClean = &cp
}

// shadowCheck gives free probation checkers a pass over a segment
// already verified clean by a healthy checker, and applies the probation
// policy to the outcome.
func (s *System) shadowCheck(l *lane, seg *Segment, nowNS float64) {
	st := &l.res.Recovery
	// Each shadow replay makes its checker busy, so this loop visits
	// every idle probation checker exactly once and terminates.
	for {
		p := l.alloc.ProbationFree(nowNS)
		if p == nil {
			return
		}
		res, _ := s.replayOn(l, p, seg, nowNS)
		st.ProbationChecks++
		s.metrics.ShadowChecks++
		s.observe(l, p, seg.Insts, res.Detected())
		readmitted, retired := l.alloc.NoteProbation(p, !res.Detected(), nowNS, s.cfg.Recovery.Quarantine)
		if readmitted {
			st.Readmissions++
			s.metrics.Readmissions++
		}
		if retired {
			st.Retirements++
			s.metrics.Retirements++
		} else if res.Detected() {
			st.Quarantines++
			s.metrics.Quarantines++
		}
	}
}

// probationRetest re-tests probation checkers against the retained clean
// segment. This is the escape route out of full degradation: with every
// active checker quarantined there are no fresh verified segments, so
// re-admission rides on material retained before the pool emptied.
func (s *System) probationRetest(l *lane, nowNS float64) {
	if l.lastClean == nil {
		return
	}
	s.shadowCheck(l, l.lastClean, nowNS)
}
