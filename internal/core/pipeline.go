package core

// Pipelined verification: overlap a segment's checker-side replay with
// the main lane's continued simulation, without changing any simulated
// outcome.
//
// The synchronous engine runs CheckSegment inline inside dispatch, so a
// check reads and writes shared simulator state (the LLC, the DRAM
// model, the mesh flow tracker, the contention statistics) interleaved
// with main-lane progress. To run the check on another goroutine — or
// merely later on the same one — every one of those touches must become
// either a dispatch-time snapshot (inputs) or a join-time merge
// (effects):
//
//   - Inputs. The check's start time, the per-line mesh transfer
//     latency, and the per-LLC-slice beyond-L2 latencies the checker's
//     instruction fetches would observe are all computed at dispatch,
//     under the mesh load current at that protocol point
//     (snapshotBeyond). Mesh load only changes at flow refreshes, which
//     are orchestrator events, so in the synchronous engine these
//     values are constant for the duration of an inline check anyway.
//   - Effects. The checker core itself (caches, predictor, cycle
//     clock) is owned by the pending check until its join; everything
//     shared — LLC accesses, flow-tracker bytes, queueing-delay
//     statistics, detection accounting, the checker's own
//     FreeAtNS/Busy/Insts/Segments — is buffered in the pendingCheck
//     and merged by joinCheck.
//
// Joins happen only at protocol-defined points of the deterministic
// main loop: allocator pool queries (AcquireFree forces a pending
// checker only when its completion floor says it might already be
// free; EarliestFree forces unconditionally), the warmup snapshot, and
// final collection. Dispatch points, join points, snapshots and merge
// order are therefore identical at every CheckWorkers setting,
// including the inline CheckWorkers<=1 mode that runs the job
// immediately but still defers the merge — which is what makes results
// byte-identical at any worker count.
//
// One deliberate model change versus the synchronous path: a checker
// beyond-L2 access is charged the snapshotted mesh round trip plus the
// L3 hit latency, without consulting the (shared, concurrently
// evolving) LLC contents for a miss. Checker loads and stores never
// touch the memory hierarchy at all (the LSL$ serves them, section IV
// footnote 12), so beyond-L2 traffic is instruction fetch only; the
// checkers' code working set sits comfortably in their private L2, so
// such accesses all but vanish after the first segments. The buffered
// accesses are still replayed into the LLC and the flow tracker at the
// join so occupancy and NoC load evolve as before.
//
// Runs with Recovery.Enabled or a CheckerInterceptor keep the legacy
// synchronous dispatch: re-replay, forensics and quarantine decisions
// consume a check's verdict immediately and reshape the pool, and
// injectors carry per-run mutable state, so neither composes with
// deferred joins.

import (
	"math"
	"sort"

	"paraverser/internal/emu"
	"paraverser/internal/noc"
)

// beyondAccess is one buffered checker beyond-L2 access.
type beyondAccess struct {
	addr  uint64
	write bool
}

// checkerBuffer captures a pending check's beyond-L2 side effects. The
// latency tables are snapshotted at dispatch; the access list is
// replayed into the shared LLC, flow tracker and contention statistics
// at the join.
type checkerBuffer struct {
	// latNS[i] is the full beyond-L2 latency (mesh round trip + L3 hit)
	// to LLC slice i under the mesh load at dispatch time; queueNS[i]
	// is the queueing-delay portion, sampled into the contention
	// statistic per access.
	latNS   []float64
	queueNS []float64
	accs    []beyondAccess
}

func (b *checkerBuffer) access(addr uint64, write bool) float64 {
	slice := int((addr / 64) % uint64(len(b.latNS)))
	b.accs = append(b.accs, beyondAccess{addr: addr, write: write})
	return b.latNS[slice]
}

// beyondBuffered is the checker core's beyond-L2 hook under the
// pipelined engine: it routes through the owning pending check's
// buffer. c.bb is installed at dispatch, before the check can execute
// a single instruction, so it is never nil while the core runs.
func (c *Checker) beyondBuffered(addr uint64, write, fetch bool) float64 {
	return c.bb.access(addr, write)
}

// snapshotBeyond fills bb's per-slice latency tables for a checker at
// pos under the current mesh load. Dispatch-time snapshots make a
// check's latencies a function of its dispatch point alone, so they do
// not depend on when — or on which goroutine — the check runs.
func (s *System) snapshotBeyond(pos noc.Coord, bb *checkerBuffer) {
	n := len(s.layout.LLCPos)
	if cap(bb.latNS) < n {
		bb.latNS = make([]float64, n)
		bb.queueNS = make([]float64, n)
	}
	bb.latNS, bb.queueNS = bb.latNS[:n], bb.queueNS[:n]
	for i, slice := range s.layout.LLCPos {
		req := s.mesh.LatencyNS(pos, slice, 16)
		resp := s.mesh.LatencyNS(slice, pos, LineBytes+8)
		bb.latNS[i] = req + resp + s.cfg.L3HitNS
		bb.queueNS[i] = s.mesh.QueueingNS(pos, slice, 16) + s.mesh.QueueingNS(slice, pos, LineBytes+8)
	}
	bb.accs = bb.accs[:0]
}

// pendingCheck is one dispatched-but-unmerged segment verification: the
// snapshotted inputs the job consumes, the log arenas whose ownership
// moved from the lane to the check, and the outputs the join merges.
type pendingCheck struct {
	l   *lane
	ck  *Checker
	seg *Segment
	// execAt is the lane's executed-instruction count at dispatch, so
	// detection attribution at the (later) join records exactly what
	// the synchronous engine would have recorded inline.
	execAt int64
	// entries/ops back seg.Entries; the join returns them to the lane's
	// spare-arena pool once the checker is done reading them.
	entries []Entry
	ops     []MemRec

	startNS   float64
	lineLatNS float64
	bb        checkerBuffer

	// Parallel-in-time state (spec.go). recInto, when non-nil, receives
	// the verdict at the join, so a recording stream can prove itself
	// clean before publication. specReplay marks a replay-lane segment:
	// the checker core re-walks the segment's effect sequence from
	// specCur — the lane's cursor snapshot at segment entry
	// (bit-equivalent to a live replay for every field the timing model
	// reads) — and the verdict is synthesised clean instead of
	// re-verified, which is sound because only clean streams are ever
	// published.
	specReplay bool
	specCur    specCursor
	recInto    *recSeg

	// Job outputs. Written by run, read after the done barrier.
	res    CheckResult
	durNS  float64
	doneNS float64
	// done is closed when the job's goroutine finishes; nil when the
	// job ran inline (CheckWorkers <= 1).
	done chan struct{}
}

// run executes the verification itself. It touches only checker-owned
// state (the core's caches, predictor and clock), the pending check's
// own buffer, and immutable inputs — never the shared LLC, DRAM, mesh
// or lane results — so it is safe on a worker goroutine.
func (p *pendingCheck) run(s *System) {
	ck := p.ck
	// The log lines land in the checker's repurposed L1D, evicting any
	// resident data in place (fig. 3).
	if s.cfg.DedicatedLSLBytes == 0 {
		for i := 0; i < p.seg.LogLines; i++ {
			ck.Core.Hier.L1D.LogAppendLine()
		}
	}
	ck.Core.AdvanceTo(p.startNS * ck.FreqGHz)
	c0 := ck.Core.Cycles()
	if p.specReplay {
		// Replay mode: the stream was functionally verified clean when
		// it was recorded, so only the checker-core timing needs
		// computing — off the same reconstructed effect sequence the
		// main core consumed, re-walked from the segment-entry cursor.
		// Under the block engine the reconstruction still advances one
		// effect at a time (it is a table walk, not emulation); only the
		// timing delivery batches.
		cu := p.specCur
		if s.blockExec {
			if ck.scratch.batch == nil {
				ck.scratch.batch = make([]emu.Effect, effectBatchSize)
			}
			batch := ck.scratch.batch
			for rem := p.seg.Insts; rem > 0; {
				n := 0
				for uint64(n) < rem && n < len(batch) && cu.next(&batch[n]) {
					n++
				}
				if n == 0 {
					break
				}
				ck.Core.ConsumeBatch(batch[:n])
				rem -= uint64(n)
			}
		} else {
			var eff emu.Effect
			for n := uint64(0); n < p.seg.Insts; n++ {
				if !cu.next(&eff) {
					break
				}
				ck.Core.Consume(&eff)
			}
		}
		p.res = CheckResult{OK: true, Insts: p.seg.Insts}
	} else if s.blockExec {
		p.res = ck.scratch.CheckSegmentBlocks(p.l.proc.w.Prog, p.seg, s.cfg.HashMode, func(effs []emu.Effect) {
			ck.Core.ConsumeBatch(effs)
		})
	} else {
		p.res = ck.scratch.CheckSegment(p.l.proc.w.Prog, p.seg, s.cfg.HashMode, nil, func(e *emu.Effect) {
			ck.Core.Consume(e)
		})
	}
	p.durNS = (ck.Core.Cycles() - c0) / ck.FreqGHz
	p.doneNS = p.startNS + p.durNS
	if s.cfg.EagerWake {
		// The check cannot finish before the final line and end
		// checkpoint arrive.
		if floor := p.seg.EndNS + p.lineLatNS; p.doneNS < floor {
			p.doneNS = floor
		}
	}
	// The LSL$ lines are freed at checkpoint end (section IV-F
	// footnote 12).
	ck.Core.Hier.L1D.LogReset()
}

// dispatchPipelined schedules seg's verification on ck under the
// buffered protocol. All shared-state inputs are snapshotted here; the
// job runs either inline (CheckWorkers <= 1) or on a pooled goroutine,
// and in both cases its effects stay buffered until joinCheck.
func (s *System) dispatchPipelined(l *lane, ck *Checker, seg *Segment) {
	// NoC traffic: the log lines plus start/end register checkpoints.
	xferBytes := float64(seg.LogBytes) + 2*float64(l.rcu.CheckpointTransferBytes())
	if s.cfg.LSLTrafficOnNoC {
		s.flows.add(l.pos, ck.Pos, xferBytes)
	}
	lineLatNS := s.mesh.LatencyNS(l.pos, ck.Pos, LineBytes)

	var startNS float64
	if s.cfg.EagerWake {
		// The checker starts as soon as the first line lands
		// (section IV-H); it cannot run past pushed lines, which shows
		// up as the completion floor in run.
		startNS = math.Max(seg.StartNS+lineLatNS, ck.FreeAtNS)
	} else {
		startNS = math.Max(seg.EndNS+lineLatNS, ck.FreeAtNS)
	}

	p := &pendingCheck{
		l: l, ck: ck, seg: seg, execAt: l.executed,
		entries: l.entries, ops: l.ops,
		startNS: startNS, lineLatNS: lineLatNS,
	}
	if sp := l.spec; sp != nil && sp.mode == claimReplay {
		p.specReplay = true
		p.specCur = sp.segCur
	}
	s.snapshotBeyond(ck.Pos, &p.bb)
	ck.bb = &p.bb
	ck.pending = p
	// doneNS >= startNS always, and under eager wake the explicit
	// completion floor also applies: together a sound lower bound on
	// the checker's final FreeAtNS.
	ck.floorNS = math.Max(startNS, seg.EndNS+lineLatNS)

	// The check owns the lane's log arenas until its join; hand the
	// lane a replacement so the next segment cannot scribble over a log
	// the checker is still reading.
	l.takeArena()

	// Queue-depth sample: in-flight checks on this pool, the new one
	// included. The pending set at a dispatch point is protocol-defined
	// (joins happen only at pool queries), so the sample stream is
	// identical at every CheckWorkers setting.
	depth := uint64(0)
	for _, c := range l.alloc.Checkers() {
		if c.pending != nil {
			depth++
		}
	}
	s.metrics.CheckQueueDepth.Observe(depth)

	if s.checkSem != nil {
		p.done = make(chan struct{})
		go func() {
			s.checkSem <- struct{}{}
			p.run(s)
			<-s.checkSem
			close(p.done)
		}()
	} else {
		p.run(s)
	}
}

// dispatchSpec is dispatchPipelined for a recording lane's stitched
// segment (spec.go): identical snapshotting, scheduling and
// accounting, except that the segment's entries live in the recording's
// private backing rather than the lane's arena (no arena handoff), and
// the pending check records its verdict into the recorded segment so
// publication can require a clean stream.
func (s *System) dispatchSpec(l *lane, ck *Checker, seg *Segment, rs *recSeg) {
	xferBytes := float64(seg.LogBytes) + 2*float64(l.rcu.CheckpointTransferBytes())
	if s.cfg.LSLTrafficOnNoC {
		s.flows.add(l.pos, ck.Pos, xferBytes)
	}
	lineLatNS := s.mesh.LatencyNS(l.pos, ck.Pos, LineBytes)

	var startNS float64
	if s.cfg.EagerWake {
		startNS = math.Max(seg.StartNS+lineLatNS, ck.FreeAtNS)
	} else {
		startNS = math.Max(seg.EndNS+lineLatNS, ck.FreeAtNS)
	}

	p := &pendingCheck{
		l: l, ck: ck, seg: seg, execAt: l.executed,
		startNS: startNS, lineLatNS: lineLatNS,
		recInto: rs,
	}
	s.snapshotBeyond(ck.Pos, &p.bb)
	ck.bb = &p.bb
	ck.pending = p
	ck.floorNS = math.Max(startNS, seg.EndNS+lineLatNS)

	depth := uint64(0)
	for _, c := range l.alloc.Checkers() {
		if c.pending != nil {
			depth++
		}
	}
	s.metrics.CheckQueueDepth.Observe(depth)

	if s.checkSem != nil {
		p.done = make(chan struct{})
		go func() {
			s.checkSem <- struct{}{}
			p.run(s)
			<-s.checkSem
			close(p.done)
		}()
	} else {
		p.run(s)
	}
}

// joinCheck completes ck's pending verification (waiting for the worker
// if necessary) and merges its buffered effects into the shared
// simulator state. Callers reach it only through protocol-defined join
// points, so the merge sequence is identical at every worker count.
func (s *System) joinCheck(ck *Checker) {
	p := ck.pending
	if p == nil {
		return
	}
	if p.done != nil {
		<-p.done
	}
	ck.pending = nil
	ck.bb = nil

	ck.FreeAtNS = p.doneNS
	// Energy accrues only while computing; a checker that outpaces the
	// arriving log lines sleeps (section IV-H) and is treated as gated.
	ck.BusyNS += p.durNS
	ck.Insts += p.res.Insts
	ck.Segments++

	// Replay the buffered beyond-L2 accesses against the shared LLC,
	// flow tracker and contention statistics.
	nslice := uint64(len(s.layout.LLCPos))
	for _, a := range p.bb.accs {
		i := (a.addr / 64) % nslice
		slice := s.layout.LLCPos[i]
		s.flows.add(ck.Pos, slice, 16)
		s.flows.add(slice, ck.Pos, LineBytes+8)
		s.llcExtraSum += p.bb.queueNS[i]
		s.llcExtraN++
		s.l3.Access(a.addr, a.write)
	}

	// Joins are reached only through protocol-defined points (pool
	// queries, warm snapshot, collection), so the latency observation
	// order — and with it the metrics shard — is worker-count-invariant.
	s.metrics.CheckLatencyNS.Observe(uint64(p.durNS + 0.5))
	s.traceCheck(p.l, ck, p.seg, p.startNS, p.durNS)

	l := p.l
	if p.res.Detected() {
		s.metrics.SegmentsMismatched++
		l.res.Detections++
		if l.res.FirstDetectionInst < 0 {
			l.res.FirstDetectionInst = p.execAt
		}
		if room := sampleMismatchCap - len(l.res.SampleMismatches); room > 0 {
			mm := p.res.Mismatches
			if len(mm) > room {
				mm = mm[:room]
			}
			l.res.SampleMismatches = append(l.res.SampleMismatches, mm...)
		}
	}

	// A recording stream keeps the verdict alongside the segment so a
	// later replay can reuse it without re-running the functional check.
	if p.recInto != nil {
		p.recInto.verdict = p.res
	}

	// Return the log arenas to the lane for reuse. Stitched segments
	// (spec.go) back their entries privately and hand over no arena.
	if p.entries != nil {
		l.spareEntries = append(l.spareEntries, p.entries)
		l.spareOps = append(l.spareOps, p.ops)
	}
}

// forceAll joins every pending check on l's pool in segment order, so
// bulk joins (warm snapshot, collection, error unwind) merge in the
// same sequence the checks were dispatched.
func (s *System) forceAll(l *lane) {
	if l.alloc == nil {
		return
	}
	var pend []*Checker
	for _, ck := range l.alloc.Checkers() {
		if ck.pending != nil {
			pend = append(pend, ck)
		}
	}
	sort.Slice(pend, func(i, j int) bool {
		return pend[i].pending.seg.Seq < pend[j].pending.seg.Seq
	})
	for _, ck := range pend {
		s.joinCheck(ck)
	}
}

// takeArena replaces the lane's log buffers after their ownership moved
// to a pending check, recycling arenas returned by earlier joins.
func (l *lane) takeArena() {
	if n := len(l.spareEntries); n > 0 {
		l.entries = l.spareEntries[n-1][:0]
		l.ops = l.spareOps[n-1][:0]
		l.spareEntries = l.spareEntries[:n-1]
		l.spareOps = l.spareOps[:n-1]
		return
	}
	l.entries = make([]Entry, 0, 1024)
	l.ops = make([]MemRec, 0, 1024)
}
