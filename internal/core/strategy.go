//paralint:deterministic
package core

import (
	"fmt"
	"math"

	"paraverser/internal/emu"
)

// Strategy selects the segment-verification strategy: the granularity at
// which checker work is scheduled, the comparison domain, and how checker
// acquisition couples to main-core commit. The zero value (StrategyAuto)
// defers to CheckMode, so existing configurations keep their meaning.
type Strategy uint8

const (
	// StrategyAuto resolves from CheckMode: lockstep check mode runs the
	// lockstep strategy, divergent check mode the divergent strategy.
	StrategyAuto Strategy = iota
	// StrategyLockstep is the paper's scheme: per-segment dispatch,
	// identical replay, full LSC/RCU comparison. The only strategy
	// eligible for the pipelined dispatch engine (pipeline.go).
	StrategyLockstep
	// StrategyDivergent dispatches per segment but replays the
	// decorrelated variant (DESIGN.md §11). Requires CheckDivergent.
	StrategyDivergent
	// StrategyChunkReplay is RepTFD-style coarse-grained checking:
	// segments are logged unconditionally and accumulated into a large
	// replay chunk; one checker verifies the whole chunk as a single
	// replay window through the existing RCU/LSC machinery. The main
	// core never stalls at segment boundaries (only at chunk
	// boundaries), at the price of chunk-granularity detection latency.
	StrategyChunkReplay
	// StrategyRelaxed is MEEK-style relaxed check start: checking is
	// decoupled from main-core commit — a busy pool defers the check
	// onto the earliest-free checker's queue instead of stalling — but
	// the backlog is bounded (MaxLagSegments), which bounds the
	// detection-latency window.
	StrategyRelaxed
)

func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyLockstep:
		return "lockstep"
	case StrategyDivergent:
		return "divergent"
	case StrategyChunkReplay:
		return "chunk-replay"
	case StrategyRelaxed:
		return "relaxed"
	default:
		return "invalid"
	}
}

// ParseStrategy parses a CLI strategy name.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "auto":
		return StrategyAuto, nil
	case "lockstep":
		return StrategyLockstep, nil
	case "divergent":
		return StrategyDivergent, nil
	case "chunk-replay":
		return StrategyChunkReplay, nil
	case "relaxed":
		return StrategyRelaxed, nil
	}
	return StrategyAuto, fmt.Errorf("core: unknown checking strategy %q (want auto, lockstep, divergent, chunk-replay or relaxed)", name)
}

// ResolvedStrategy returns the strategy a run will actually use:
// Config.Strategy, or — when that is StrategyAuto — the strategy implied
// by CheckMode.
func (c *Config) ResolvedStrategy() Strategy {
	if c.Strategy != StrategyAuto {
		return c.Strategy
	}
	if c.CheckMode == CheckDivergent {
		return StrategyDivergent
	}
	return StrategyLockstep
}

// StrategyConfig tunes the chunk-replay and relaxed-start strategies.
// Zero values select the documented defaults, so DefaultConfig needs no
// edits to run any strategy.
type StrategyConfig struct {
	// ChunkInsts is the chunk-replay flush threshold in instructions
	// (0 = defaultChunkSegments checkpoint timeouts' worth).
	ChunkInsts uint64
	// MaxLagSegments bounds how many consecutive segments a relaxed-start
	// lane may dispatch onto a busy pool before falling back to a
	// lockstep-style stall (0 = defaultMaxLagSegments). This bound is
	// what keeps the detection-latency window finite.
	MaxLagSegments int
}

const (
	defaultChunkSegments  = 4
	defaultMaxLagSegments = 4
)

// chunkInsts resolves the effective chunk-replay flush threshold.
func (c *Config) chunkInsts() uint64 {
	if c.StrategyTuning.ChunkInsts > 0 {
		return c.StrategyTuning.ChunkInsts
	}
	return defaultChunkSegments * c.TimeoutInsts
}

// maxLagSegments resolves the effective relaxed-start backlog bound.
func (c *Config) maxLagSegments() int {
	if c.StrategyTuning.MaxLagSegments > 0 {
		return c.StrategyTuning.MaxLagSegments
	}
	return defaultMaxLagSegments
}

// CheckStrategy is the pluggable segment-verification policy behind the
// orchestrator: it decides how checker resources are acquired per
// segment (acquire), what happens to a closed checked segment
// (dispatch), and how deferred work drains at protocol boundaries
// (finish). Implementations are stateless singletons; per-lane strategy
// state lives on the lane (chunk accumulator, relaxed lag counter), so
// one System can drive many lanes through one strategy value.
type CheckStrategy interface {
	// Name is the strategy's CLI/reporting name.
	Name() string
	// pipelineOK reports whether the strategy's dispatch is compatible
	// with the pipelined verification engine (pipeline.go). Only
	// lockstep is: the other strategies either order checks against
	// private lane state (divergent) or defer dispatch past segment
	// close (chunk replay, relaxed start).
	pipelineOK() bool
	// acquire applies the strategy's per-segment resource policy at
	// segment open: it may stall the main core, sets l.segChecked /
	// l.segDegraded, and returns the checker the segment will dispatch
	// to (nil for strategies that defer acquisition) plus the
	// opportunistic resume deadline (+Inf when none).
	acquire(s *System, l *lane, now float64) (*Checker, float64)
	// dispatch handles one closed, checked segment.
	dispatch(s *System, l *lane, ck *Checker, seg *Segment)
	// finish drains any deferred per-lane work (an accumulating chunk)
	// at protocol boundaries: warmup snapshot, an unchecked window
	// opening, lane completion. Must be idempotent.
	finish(s *System, l *lane)
}

// newStrategy maps a resolved Strategy to its implementation.
func newStrategy(st Strategy) CheckStrategy {
	switch st {
	case StrategyDivergent:
		return divergentStrategy{}
	case StrategyChunkReplay:
		return chunkReplayStrategy{}
	case StrategyRelaxed:
		return relaxedStrategy{}
	default:
		return lockstepStrategy{}
	}
}

// segmentAcquire is the historical per-segment resource policy shared by
// the lockstep and divergent strategies — full-coverage stalls, degraded
// windows when quarantine empties the pool, opportunistic skips and
// resume deadlines — byte-identical to the pre-strategy engine.
//
//paralint:hotpath
func (s *System) segmentAcquire(l *lane, now float64) (*Checker, float64) {
	var ck *Checker
	resumeAtNS := math.Inf(1)
	switch s.cfg.Mode {
	case ModeFullCoverage:
		ck = l.alloc.AcquireFree(now)
		if ck == nil {
			e := l.alloc.EarliestFree()
			if e == nil {
				// Quarantine emptied the active pool: degrade this
				// lane to opportunistic operation instead of
				// stalling forever; coverage resumes when probation
				// readmits a checker.
				l.segDegraded = true
				break
			}
			// Stall until a checker frees (section IV-A).
			stall := e.FreeAtNS - now
			l.main.StallNS(stall)
			l.res.StallNS += stall
			s.metrics.StallNS += uint64(stall + 0.5)
			ck = e
		}
		l.segChecked = true
	case ModeOpportunistic:
		if s.cfg.SamplePeriod > 1 && l.res.Segments%s.cfg.SamplePeriod != 0 {
			// Time-based sampling (footnote 18): deliberately skip
			// this segment; re-evaluate at the next boundary.
			break
		}
		ck = l.alloc.AcquireFree(now)
		if ck != nil {
			l.segChecked = true
		} else if e := l.alloc.EarliestFree(); e != nil {
			// Run unchecked until a checker frees, then immediately
			// take a new checkpoint (section IV-A).
			resumeAtNS = e.FreeAtNS
		}
	}
	return ck, resumeAtNS
}

// lockstepStrategy is the paper's per-segment identical-replay checking.
type lockstepStrategy struct{}

func (lockstepStrategy) Name() string     { return "lockstep" }
func (lockstepStrategy) pipelineOK() bool { return true }

func (lockstepStrategy) acquire(s *System, l *lane, now float64) (*Checker, float64) {
	return s.segmentAcquire(l, now)
}
func (lockstepStrategy) dispatch(s *System, l *lane, ck *Checker, seg *Segment) {
	s.dispatch(l, ck, seg)
}
func (lockstepStrategy) finish(*System, *lane) {}

// divergentStrategy shares lockstep's per-segment scheduling; the
// decorrelated replay itself is selected inside System.dispatch by the
// lane's divergent state.
type divergentStrategy struct{}

func (divergentStrategy) Name() string     { return "divergent" }
func (divergentStrategy) pipelineOK() bool { return false }

func (divergentStrategy) acquire(s *System, l *lane, now float64) (*Checker, float64) {
	return s.segmentAcquire(l, now)
}
func (divergentStrategy) dispatch(s *System, l *lane, ck *Checker, seg *Segment) {
	s.dispatch(l, ck, seg)
}
func (divergentStrategy) finish(*System, *lane) {}

// chunkState accumulates a lane's checked segments into one RepTFD-style
// replay chunk. entries and ops are the chunk's private arenas: the
// source entries' Ops alias the lane's log arena, which the next
// beginSegment truncates, so accumulation copies (the retainProbationSeg
// discipline); both arenas keep their capacity across chunks.
type chunkState struct {
	segs     int
	firstSeq int
	start    emu.ArchState
	end      emu.ArchState
	startNS  float64
	endNS    float64
	insts    uint64
	logBytes int
	logLines int
	reason   BoundaryReason
	entries  []Entry
	ops      []MemRec
}

func (c *chunkState) reset() {
	c.segs = 0
	c.insts = 0
	c.logBytes = 0
	c.logLines = 0
	c.entries = c.entries[:0]
	c.ops = c.ops[:0]
}

// chunkReplayStrategy is RepTFD-style coarse-grained checking: logging
// is decoupled from checker acquisition. Every segment is logged (no
// per-segment stall); the checker is acquired once per chunk at flush
// time, and the whole chunk verifies as a single replay window through
// the standard dispatch path — so block-compiled replay, NoC/EagerWake
// timing, recovery and tracing all apply unchanged at the coarser grain.
type chunkReplayStrategy struct{}

func (chunkReplayStrategy) Name() string     { return "chunk-replay" }
func (chunkReplayStrategy) pipelineOK() bool { return false }

//paralint:hotpath
func (chunkReplayStrategy) acquire(s *System, l *lane, now float64) (*Checker, float64) {
	if l.alloc.ActiveCount() == 0 {
		// Quarantine emptied the pool: degrade exactly as the
		// per-segment strategies do. The pending chunk is flushed (and
		// reclassified) before this unchecked window is accounted.
		l.segDegraded = true
		return nil, math.Inf(1)
	}
	l.segChecked = true
	return nil, math.Inf(1)
}

//paralint:hotpath
func (st chunkReplayStrategy) dispatch(s *System, l *lane, ck *Checker, seg *Segment) {
	c := l.chunk
	if c.segs == 0 {
		c.firstSeq = seg.Seq
		c.start = seg.Start
		c.startNS = seg.StartNS
	}
	for i := range seg.Entries {
		o := len(c.ops)
		//paralint:allow(arena append: grows once per run, then reuses capacity across chunks)
		c.ops = append(c.ops, seg.Entries[i].Ops...)
		e := seg.Entries[i]
		e.Ops = c.ops[o:len(c.ops):len(c.ops)]
		//paralint:allow(arena append: grows once per run, then reuses capacity across chunks)
		c.entries = append(c.entries, e)
	}
	c.segs++
	c.end = seg.End
	c.endNS = seg.EndNS
	c.insts += seg.Insts
	c.logBytes += seg.LogBytes
	c.logLines += seg.LogLines
	c.reason = seg.Reason
	s.metrics.ChunkSegments++
	if c.insts >= s.cfg.chunkInsts() || seg.Reason == BoundaryHalt {
		st.flush(s, l)
	}
}

func (st chunkReplayStrategy) finish(s *System, l *lane) { st.flush(s, l) }

// flush verifies the accumulated chunk: acquire a checker at chunk
// granularity — stalling at the chunk boundary if the pool is busy,
// reclassifying the chunk as a degraded window if quarantine emptied it
// after the segments were logged — then route one synthetic segment
// spanning the whole chunk through the standard synchronous dispatch.
func (chunkReplayStrategy) flush(s *System, l *lane) {
	c := l.chunk
	if c == nil || c.segs == 0 {
		return
	}
	now := l.main.TimeNS()
	ck := l.alloc.AcquireFree(now)
	if ck == nil {
		e := l.alloc.EarliestFree()
		if e == nil {
			// The segments were logged assuming a checker would take the
			// chunk; none survives, so reverse the per-segment checked
			// accounting into the degraded-window counters.
			l.res.CheckedInsts -= c.insts
			l.res.UncheckedInsts += c.insts
			l.res.DegradedSegments += c.segs
			l.res.DegradedInsts += c.insts
			l.res.DegradedNS += c.endNS - c.startNS
			s.metrics.InstsChecked -= c.insts
			s.metrics.SegmentsChecked -= uint64(c.segs)
			s.metrics.SegmentsUnchecked += uint64(c.segs)
			s.metrics.SegmentsDegraded += uint64(c.segs)
			c.reset()
			return
		}
		stall := e.FreeAtNS - now
		l.main.StallNS(stall)
		l.res.StallNS += stall
		s.metrics.StallNS += uint64(stall + 0.5)
		ck = e
	}
	seg := &Segment{
		Seq:      c.firstSeq,
		Hart:     l.hart,
		Start:    c.start,
		End:      c.end,
		Entries:  c.entries,
		Insts:    c.insts,
		LogBytes: c.logBytes,
		LogLines: c.logLines,
		Reason:   c.reason,
		StartNS:  c.startNS,
		EndNS:    c.endNS,
	}
	s.metrics.ChunkChecks++
	s.dispatch(l, ck, seg)
	c.reset()
}

// relaxedStrategy is MEEK-style relaxed check start: when the pool is
// busy the segment's check is deferred onto the earliest-free checker's
// queue instead of stalling the main core, up to MaxLagSegments in a
// row; past the bound the lane stalls as lockstep would, which is what
// keeps the detection-latency window finite.
type relaxedStrategy struct{}

func (relaxedStrategy) Name() string     { return "relaxed" }
func (relaxedStrategy) pipelineOK() bool { return false }

//paralint:hotpath
func (relaxedStrategy) acquire(s *System, l *lane, now float64) (*Checker, float64) {
	ck := l.alloc.AcquireFree(now)
	if ck != nil {
		l.relaxLag = 0
		l.segChecked = true
		return ck, math.Inf(1)
	}
	e := l.alloc.EarliestFree()
	if e == nil {
		l.segDegraded = true
		return nil, math.Inf(1)
	}
	if l.relaxLag < s.cfg.maxLagSegments() {
		// Defer: dispatch to the earliest-free checker anyway — the
		// check's start time floors at the checker's FreeAtNS, which is
		// exactly the bounded backlog queueing in simulation terms.
		l.relaxLag++
		l.segChecked = true
		s.metrics.RelaxedDeferred++
		return e, math.Inf(1)
	}
	// Backlog bound reached: stall to the next free checker.
	stall := e.FreeAtNS - now
	l.main.StallNS(stall)
	l.res.StallNS += stall
	s.metrics.StallNS += uint64(stall + 0.5)
	l.relaxLag = 0
	l.segChecked = true
	return e, math.Inf(1)
}

func (relaxedStrategy) dispatch(s *System, l *lane, ck *Checker, seg *Segment) {
	s.dispatch(l, ck, seg)
}
func (relaxedStrategy) finish(*System, *lane) {}
