package core

import (
	"testing"

	"paraverser/internal/asm"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// divergentConfig is the baseline divergent-mode system the tests run:
// full coverage, a small A510 pool, default decorrelation parameters.
func divergentConfig(n int) Config {
	cfg := DefaultConfig(a510Checkers(n, 2.0))
	cfg.CheckMode = CheckDivergent
	return cfg
}

// TestDivergentCleanRun is the false-positive contract: a fault-free
// divergent run over the pointer-heavy mixed program must detect
// nothing, cover everything, and actually have exercised the divergent
// check path (not silently fallen back to lockstep).
func TestDivergentCleanRun(t *testing.T) {
	res, err := Run(divergentConfig(4), []Workload{{Name: "mixed", Prog: mixedProgram(20000)}})
	if err != nil {
		t.Fatal(err)
	}
	lane := res.Lanes[0]
	if lane.Detections != 0 {
		t.Fatalf("clean divergent run raised %d detections: %v", lane.Detections, lane.SampleMismatches)
	}
	if got := lane.Coverage(); got != 1.0 {
		t.Errorf("full-coverage divergent run covered %.3f, want 1.0", got)
	}
	if res.Metrics.SegmentsCheckedDivergent == 0 {
		t.Error("no segments took the divergent check path")
	}
	if res.Metrics.DivergentDataMismatches != 0 {
		t.Errorf("clean run recorded %d image mismatches", res.Metrics.DivergentDataMismatches)
	}
}

// TestDivergentWorkerCountInvariance extends the worker-count
// determinism contract to divergent mode: byte-identical Result
// (verdicts, floats, metrics shard) whatever CheckWorkers is set to.
func TestDivergentWorkerCountInvariance(t *testing.T) {
	prog := mixedProgram(12000)
	var base string
	for _, workers := range []int{1, 2, 8} {
		cfg := divergentConfig(2)
		cfg.CheckWorkers = workers
		res, err := Run(cfg, []Workload{
			{Name: "m0", Prog: prog, MaxInsts: 8000, WarmupInsts: 2000},
			{Name: "m1", Prog: prog},
		})
		if err != nil {
			t.Fatal(err)
		}
		got := renderResult(res)
		if workers == 1 {
			base = got
			continue
		}
		if got != base {
			t.Errorf("divergent CheckWorkers=%d diverged from CheckWorkers=1:\n--- 1 ---\n%s\n--- %d ---\n%s",
				workers, base, workers, got)
		}
	}
}

// TestDivergentConfigValidation pins the mode's structural constraints:
// Hash Mode digests absorb raw layout-dependent addresses and multi-hart
// programs defeat the private canonical image, so both must be rejected
// up front rather than misbehave at check time.
func TestDivergentConfigValidation(t *testing.T) {
	cfg := divergentConfig(2)
	cfg.HashMode = true
	if err := cfg.Validate(); err == nil {
		t.Error("divergent + hash mode accepted")
	}

	b := asm.New("twohart")
	b.Entry()
	b.Li(5, 1)
	b.Halt()
	b.Entry()
	b.Li(5, 2)
	b.Halt()
	multi := b.MustBuild()
	if _, err := Run(divergentConfig(2), []Workload{{Name: "multi", Prog: multi}}); err == nil {
		t.Error("divergent run of a multi-hart program accepted")
	}
}

// planFor builds a DivergentPlan for the mixed program with default
// options, for the unit tests below.
func planFor(t *testing.T) *DivergentPlan {
	t.Helper()
	plan, err := NewDivergentPlan(mixedProgram(100), DivergentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestPlanCanonicalisation unit-tests the canonical comparison helpers:
// address folding, the dual-accept datum compare, and the permuted
// register checkpoint/end-state mapping.
func TestPlanCanonicalisation(t *testing.T) {
	p := planFor(t)
	if p.shift == 0 || p.shift%4096 != 0 {
		t.Fatalf("degenerate data shift %#x", p.shift)
	}

	// Variant-window addresses fold back by the shift; everything else
	// (canonical window, stack, wild addresses) is identity.
	if got := p.canonAddr(p.dataLo + p.shift + 8); got != p.dataLo+8 {
		t.Errorf("canonAddr(variant) = %#x, want %#x", got, p.dataLo+8)
	}
	for _, a := range []uint64{p.dataLo, p.dataHi - 1, isa.StackBase - 64, 0x42} {
		if got := p.canonAddr(a); got != a {
			t.Errorf("canonAddr(%#x) = %#x, want identity", a, got)
		}
	}

	// Dual accept: exact match always; shift-offset match only for
	// 8-byte values whose canonical form lies near the data window.
	inWin := p.dataLo + 0x100
	if !p.dataMatches(77, 77, 4) {
		t.Error("exact match rejected")
	}
	if !p.dataMatches(inWin+p.shift, inWin, 8) {
		t.Error("rebased in-window pointer rejected")
	}
	if p.dataMatches(inWin+p.shift, inWin, 4) {
		t.Error("narrow access accepted as a rebased pointer")
	}
	far := p.dataHi + 2*windowGraceBytes
	if p.dataMatches(far+p.shift, far, 8) {
		t.Error("shift-offset value far outside the window accepted")
	}

	// PermuteState moves values to permuted slots unchanged; EndMatches
	// undoes it, tolerating a rebased pointer in an integer register but
	// not in an FP register.
	var st emu.ArchState
	st.PC = 0x40
	for i := range st.X {
		st.X[i] = uint64(i) * 3
	}
	for i := range st.F {
		st.F[i] = float64(i) * 1.5
	}
	perm := p.PermuteState(&st)
	if !p.EndMatches(&st, &perm) {
		t.Fatal("permuted state does not match its own source")
	}
	ptr := perm
	ptr.X[p.Map.XPerm[9]] = inWin + p.shift
	want := st
	want.X[9] = inWin
	if !p.EndMatches(&want, &ptr) {
		t.Error("rebased pointer in X register rejected by EndMatches")
	}
	bad := perm
	bad.F[p.Map.FPerm[3]] += 1
	if p.EndMatches(&st, &bad) {
		t.Error("corrupted F register accepted by EndMatches")
	}
	off := perm
	off.PC ^= 4
	if p.EndMatches(&st, &off) {
		t.Error("PC divergence accepted by EndMatches")
	}
}
