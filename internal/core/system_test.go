package core

import (
	"testing"

	"paraverser/internal/asm"
	"paraverser/internal/cpu"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
	"paraverser/internal/noc"
)

// mixedProgram builds a long-running loop with a realistic mix: memory
// streaming, arithmetic, FP, branches and occasional non-repeatables.
func mixedProgram(iters int64) *isa.Program {
	b := asm.New("mixed")
	buf := b.Reserve(64 << 10)
	b.Li(5, int64(isa.DefaultDataBase+buf))
	b.Li(20, 0)
	b.Li(21, iters)
	b.Li(22, 64<<10-8)
	b.Label("loop")
	b.Andi(6, 20, 64<<10/8-1)
	b.Slli(6, 6, 3)
	b.Add(7, 5, 6)
	b.Ld(8, 8, 7, 0)
	b.Addi(8, 8, 3)
	b.St(8, 8, 7, 0)
	b.Fcvtif(1, 8)
	b.Fmul(2, 1, 1)
	b.Andi(9, 8, 7)
	b.Beq(9, isa.Zero, "skip")
	b.Xor(10, 10, 8)
	b.Label("skip")
	b.Addi(20, 20, 1)
	b.Blt(20, 21, "loop")
	b.Halt()
	return b.MustBuild()
}

func a510Checkers(n int, freq float64) CheckerSpec {
	return CheckerSpec{CPU: cpu.A510(), FreqGHz: freq, Count: n}
}

func x2Checkers(n int, freq float64) CheckerSpec {
	return CheckerSpec{CPU: cpu.X2(), FreqGHz: freq, Count: n}
}

func TestFullCoverageCleanRun(t *testing.T) {
	cfg := DefaultConfig(a510Checkers(4, 2.0))
	res, err := Run(cfg, []Workload{{Name: "mixed", Prog: mixedProgram(20000)}})
	if err != nil {
		t.Fatal(err)
	}
	lane := res.Lanes[0]
	if lane.Detections != 0 {
		t.Fatalf("clean run raised %d detections: %v", lane.Detections, lane.SampleMismatches)
	}
	if got := lane.Coverage(); got != 1.0 {
		t.Errorf("full-coverage mode covered %.3f, want 1.0", got)
	}
	if lane.Segments < 2 {
		t.Errorf("only %d segments", lane.Segments)
	}
	if lane.Insts == 0 || lane.TimeNS <= 0 {
		t.Errorf("degenerate result %+v", lane)
	}
	// Every checked instruction must have been verified by some checker.
	var ckInsts uint64
	for _, ck := range res.CheckersByLane[0] {
		ckInsts += ck.Insts
	}
	if ckInsts != lane.CheckedInsts {
		t.Errorf("checkers verified %d insts, main checked %d", ckInsts, lane.CheckedInsts)
	}
}

func TestSlowdownOrdering(t *testing.T) {
	// Baseline (no checkers) <= fast checkers <= deliberately starved
	// single slow checker.
	prog := mixedProgram(20000)
	run := func(cfg Config) float64 {
		res, err := Run(cfg, []Workload{{Name: "m", Prog: prog}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Lanes[0].TimeNS
	}
	baseCfg := DefaultConfig()
	baseCfg.Checkers = nil
	base := run(baseCfg)

	fast := run(DefaultConfig(x2Checkers(1, 3.0)))

	slowCfg := DefaultConfig(CheckerSpec{CPU: cpu.A35(), FreqGHz: 0.5, Count: 1})
	slow := run(slowCfg)

	if base > fast*1.001 {
		t.Errorf("baseline %.0f slower than checked %.0f", base, fast)
	}
	if slow <= fast {
		t.Errorf("starved config %.0f not slower than fast config %.0f", slow, fast)
	}
	if slow < base*1.5 {
		t.Errorf("one A35@0.5GHz checking an X2@3GHz should stall heavily: %.2fx", slow/base)
	}
}

func TestOpportunisticNeverStalls(t *testing.T) {
	prog := mixedProgram(20000)
	cfg := DefaultConfig(CheckerSpec{CPU: cpu.A35(), FreqGHz: 0.5, Count: 1})
	cfg.Mode = ModeOpportunistic
	res, err := Run(cfg, []Workload{{Name: "m", Prog: prog}})
	if err != nil {
		t.Fatal(err)
	}
	lane := res.Lanes[0]
	if lane.StallNS != 0 {
		t.Errorf("opportunistic mode stalled %.0f ns", lane.StallNS)
	}
	cov := lane.Coverage()
	if cov <= 0 || cov >= 1 {
		t.Errorf("starved opportunistic coverage %.3f, want strictly partial", cov)
	}
	if lane.Detections != 0 {
		t.Error("clean opportunistic run detected errors")
	}
}

func TestOpportunisticFullCoverageWhenResourcesAmple(t *testing.T) {
	cfg := DefaultConfig(x2Checkers(1, 3.0))
	cfg.Mode = ModeOpportunistic
	res, err := Run(cfg, []Workload{{Name: "m", Prog: mixedProgram(20000)}})
	if err != nil {
		t.Fatal(err)
	}
	if cov := res.Lanes[0].Coverage(); cov < 0.95 {
		t.Errorf("homogeneous opportunistic coverage %.3f, want >= 0.95 (paper: ~98%%)", cov)
	}
}

func TestHashModeReducesTraffic(t *testing.T) {
	prog := mixedProgram(20000)
	plain := DefaultConfig(a510Checkers(4, 2.0))
	hash := DefaultConfig(a510Checkers(4, 2.0))
	hash.HashMode = true

	rp, err := Run(plain, []Workload{{Name: "m", Prog: prog}})
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Run(hash, []Workload{{Name: "m", Prog: prog}})
	if err != nil {
		t.Fatal(err)
	}
	if rh.Lanes[0].Detections != 0 {
		t.Fatalf("hash mode clean run detected: %v", rh.Lanes[0].SampleMismatches)
	}
	if rh.Lanes[0].LogBytes*2 > rp.Lanes[0].LogBytes {
		t.Errorf("hash mode bytes %d not <= half of %d", rh.Lanes[0].LogBytes, rp.Lanes[0].LogBytes)
	}
}

func TestInterruptCheckpoints(t *testing.T) {
	cfg := DefaultConfig(x2Checkers(1, 3.0))
	cfg.InterruptIntervalInsts = 700 // force interrupt boundaries
	res, err := Run(cfg, []Workload{{Name: "m", Prog: mixedProgram(10000)}})
	if err != nil {
		t.Fatal(err)
	}
	lane := res.Lanes[0]
	if lane.Detections != 0 {
		t.Fatalf("interrupted run detected errors: %v", lane.SampleMismatches)
	}
	if lane.Segments < int(lane.Insts/700) {
		t.Errorf("segments %d too few for interrupt interval", lane.Segments)
	}
}

func TestDedicatedLSLMakesSmallerSegments(t *testing.T) {
	prog := mixedProgram(20000)
	big := DefaultConfig(x2Checkers(1, 3.0))
	small := DefaultConfig(x2Checkers(1, 3.0))
	small.DedicatedLSLBytes = 3 << 10 // prior work's 3KiB SRAM

	rb, err := Run(big, []Workload{{Name: "m", Prog: prog}})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(small, []Workload{{Name: "m", Prog: prog}})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Lanes[0].Segments <= rb.Lanes[0].Segments {
		t.Errorf("3KiB LSL segments %d not > 64KiB segments %d",
			rs.Lanes[0].Segments, rb.Lanes[0].Segments)
	}
	if rs.Lanes[0].Detections != 0 {
		t.Error("dedicated-LSL run detected errors")
	}
}

func TestMultiHartSharedMemoryChecked(t *testing.T) {
	// Two harts increment disjoint counters and exchange data through
	// shared memory via SWP; the log must make every segment replay
	// exactly (section IV-J).
	b := asm.New("par")
	shared := b.Word64(0)
	body := func(tag int64) {
		lbl := "loop" + string(rune('A'+tag))
		b.Entry()
		b.Li(5, int64(isa.DefaultDataBase+shared))
		b.Li(20, 0)
		b.Li(21, 2000)
		b.Label(lbl)
		b.Li(6, tag)
		b.Swp(7, 5, 6) // racy swaps between harts
		b.Add(8, 8, 7)
		b.Addi(20, 20, 1)
		b.Blt(20, 21, lbl)
		b.Halt()
	}
	body(1)
	body(2)
	prog := b.MustBuild()

	cfg := DefaultConfig(a510Checkers(2, 2.0))
	res, err := Run(cfg, []Workload{{Name: "par", Prog: prog}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lanes) != 2 {
		t.Fatalf("lanes = %d, want 2", len(res.Lanes))
	}
	for i, lane := range res.Lanes {
		if lane.Detections != 0 {
			t.Errorf("hart %d: race replay failed: %v", i, lane.SampleMismatches)
		}
		if lane.Coverage() != 1.0 {
			t.Errorf("hart %d coverage %.3f", i, lane.Coverage())
		}
	}
}

func TestCheckerFaultInjectionDetected(t *testing.T) {
	cfg := DefaultConfig(a510Checkers(2, 2.0))
	cfg.CheckerInterceptor = func(laneID, checkerID int) emu.Interceptor {
		if checkerID == 0 {
			return &stuckBitInterceptor{class: isa.ClassIntALU, bit: 17}
		}
		return nil
	}
	res, err := Run(cfg, []Workload{{Name: "m", Prog: mixedProgram(20000)}})
	if err != nil {
		t.Fatal(err)
	}
	lane := res.Lanes[0]
	if lane.Detections == 0 {
		t.Fatal("stuck-at fault on checker 0 never detected")
	}
	if lane.FirstDetectionInst <= 0 {
		t.Error("first-detection instruction not recorded")
	}
}

func TestMaxInstsBound(t *testing.T) {
	cfg := DefaultConfig(x2Checkers(1, 3.0))
	res, err := Run(cfg, []Workload{{Name: "m", Prog: mixedProgram(1 << 30), MaxInsts: 5000}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lanes[0].Insts != 5000 {
		t.Errorf("insts = %d, want 5000", res.Lanes[0].Insts)
	}
}

func TestLSLTrafficLoadsNoC(t *testing.T) {
	prog := mixedProgram(30000)
	on := DefaultConfig(x2Checkers(1, 3.0))
	on.NoC = noc.Slow()
	off := DefaultConfig(x2Checkers(1, 3.0))
	off.NoC = noc.Slow()
	off.LSLTrafficOnNoC = false

	ron, err := Run(on, []Workload{{Name: "m", Prog: prog}})
	if err != nil {
		t.Fatal(err)
	}
	roff, err := Run(off, []Workload{{Name: "m", Prog: prog}})
	if err != nil {
		t.Fatal(err)
	}
	if ron.MaxLinkUtilisation <= roff.MaxLinkUtilisation {
		t.Errorf("LSL traffic on (%.3f) should load links more than off (%.3f)",
			ron.MaxLinkUtilisation, roff.MaxLinkUtilisation)
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(x2Checkers(1, 3.0))
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(x2Checkers(0, 3.0))
	if err := bad.Validate(); err == nil {
		t.Error("want error for zero-count checkers")
	}
	bad2 := DefaultConfig(x2Checkers(1, 9.0))
	if err := bad2.Validate(); err == nil {
		t.Error("want error for over-nominal checker frequency")
	}
	bad3 := DefaultConfig(x2Checkers(1, 3.0))
	bad3.Mode = ModeInvalid
	if err := bad3.Validate(); err == nil {
		t.Error("want error for invalid mode")
	}
	if _, err := Run(good, nil); err == nil {
		t.Error("want error for no workloads")
	}
}

func TestAllocatorPrefersLittleCores(t *testing.T) {
	mk := func(cfg cpu.Config, f float64) *Checker {
		return &Checker{Core: cpu.MustNewCore(cfg, f, cpu.ModeChecker), FreqGHz: f}
	}
	big := mk(cpu.X2(), 3.0)
	little := mk(cpu.A510(), 2.0)
	a, err := NewAllocator([]*Checker{big, little})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.AcquireFree(0); got != little {
		t.Error("allocator did not prefer the little core")
	}
	little.FreeAtNS = 100
	if got := a.AcquireFree(0); got != big {
		t.Error("allocator did not fall back to the big core")
	}
	big.FreeAtNS = 50
	if got := a.AcquireFree(0); got != nil {
		t.Error("allocator returned a busy checker")
	}
	if got := a.EarliestFree(); got != big {
		t.Error("EarliestFree wrong")
	}
	if _, err := NewAllocator(nil); err == nil {
		t.Error("want error for empty pool")
	}
}
