package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"paraverser/internal/cachesim"
	"paraverser/internal/cpu"
	"paraverser/internal/dram"
	"paraverser/internal/emu"
	"paraverser/internal/maintenance"
	"paraverser/internal/noc"
	"paraverser/internal/obs"
)

// System couples main cores to checker cores over the mesh: it drives the
// functional emulation segment by segment, feeds main- and checker-core
// timing models, applies the full-coverage/opportunistic resource policy,
// verifies every checked segment functionally, and models NoC contention
// by back-propagating queueing delay into LLC access latency (section VI).
type System struct {
	cfg    Config
	mesh   *noc.Mesh
	layout *noc.Layout
	l3     *cachesim.Cache
	mem    *dram.Model
	flows  *flowTracker

	procs []*process
	lanes []*lane

	// tracker is the live predictive-maintenance feed of the recovery
	// pipeline (nil when recovery is disabled).
	tracker *maintenance.Tracker

	// strat is the run's segment-verification strategy (strategy.go):
	// per-segment resource policy, dispatch granularity, and deferred
	// drains. Resolved once from the config; lockstep and divergent
	// reproduce the historical engine byte for byte.
	strat CheckStrategy

	// pipelined selects the buffered-merge dispatch protocol
	// (pipeline.go): checks may run overlapped with the main lane and
	// their shared-state effects merge at protocol-defined join points.
	// checkSem, when non-nil, bounds concurrent check jobs at
	// cfg.CheckWorkers; nil runs jobs inline (but still defers merges).
	pipelined bool
	checkSem  chan struct{}

	// blockExec selects the block-compiled execution engine: main-lane
	// functional emulation and checker replay run whole basic blocks at
	// a time (emu.Hart.RunBlocks), delivering effects to the timing
	// models in batches (cpu.Core.ConsumeBatch). Bit-identical to the
	// per-instruction engine by construction — the batch fuel is sized
	// so no segment boundary can fire before a batch's final effect —
	// and enforced by the differential tests in blockexec_test.go.
	// Paths the block engine does not model (divergent lanes, a finite
	// opportunistic resume window, fault interceptors) fall back to the
	// per-instruction loops.
	blockExec bool

	llcExtraSum float64
	llcExtraN   uint64

	// metrics is this run's observability shard (obs package). All writes
	// happen on the orchestrator goroutine at protocol-defined points, so
	// the shard is byte-identical at every CheckWorkers setting.
	metrics *obs.RunMetrics
	// tracePID identifies this run in the (possibly shared) trace ring.
	tracePID uint64
}

type process struct {
	w    Workload
	mach *emu.Machine
	// plan is the process's decorrelated variant and layout map, built
	// once per program when CheckMode is divergent (nil otherwise).
	plan *DivergentPlan
}

type lane struct {
	idx  int
	name string
	proc *process
	hart int

	main  *cpu.Core
	alloc *Allocator
	pos   noc.Coord

	counter Counter
	lspu    *LSPU
	rcu     *RCU

	// Segment under construction. entries and ops are reused across
	// segments: ops is the arena backing every entry's Ops records
	// (EntryFromEffectArena), truncated together with entries at each
	// checkpoint, so steady-state logging allocates nothing.
	segStart emu.ArchState
	segSeq   int
	entries  []Entry
	ops      []MemRec
	// spareEntries/spareOps recycle log arenas through pending checks
	// under the pipelined engine: dispatch hands the live arena to the
	// check and takes a spare, the join returns it (pipeline.go).
	spareEntries [][]Entry
	spareOps     [][]MemRec
	segInsts     uint64
	segBytes     int
	segLines     int
	segChecked   bool
	sinceIRQ     uint64

	executed int64
	res      LaneResult
	done     bool

	// div is this lane's divergent-checking state (variant plan + private
	// memory image); nil in lockstep mode.
	div *divState

	// segDegraded marks the segment as a graceful-degradation window: a
	// full-coverage lane running unchecked because quarantine emptied
	// its active checker pool.
	segDegraded bool
	// lastClean is a retained copy of the latest clean-verified segment,
	// the shadow-check material for probation re-tests (section V notes
	// checkpoints are retained exactly for replay purposes).
	lastClean *Segment

	// warm snapshots statistics at the warmup boundary so finishLane can
	// report the measured window only.
	warmed bool
	warm   warmSnapshot

	// chunk is the lane's accumulating replay chunk (chunk-replay
	// strategy only; nil otherwise).
	chunk *chunkState
	// relaxLag counts consecutive segments the relaxed-start strategy
	// has dispatched onto a busy pool; bounded by MaxLagSegments.
	relaxLag int

	// spec is this lane's parallel-in-time speculation state (spec.go);
	// nil runs the legacy sequential runSegment path.
	spec *laneSpec

	// batch is the block-compiled engine's effect buffer (nil when the
	// engine is off): runBatch fills it from the machine or the recorded
	// stream, delivers it to the main core whole, then replays the
	// logging and boundary protocol per effect.
	batch []emu.Effect
}

// warmSnapshot captures counters at the end of the warmup phase.
type warmSnapshot struct {
	timeNS       float64
	insts        int64
	segments     int
	checked      uint64
	unchecked    uint64
	stallNS      float64
	checkpointNS float64
	logBytes     uint64
	logLines     uint64
	recovery     RecoveryStats
	degSegments  int
	degInsts     uint64
	degNS        float64
	ckBusyNS     []float64
	ckInsts      []uint64
	ckSegments   []int
}

// flowTracker accumulates steady-state traffic per mesh route and
// refreshes the mesh's offered load from cumulative bytes over elapsed
// time.
type flowTracker struct {
	bytes map[[2]noc.Coord]float64
}

func newFlowTracker() *flowTracker {
	return &flowTracker{bytes: make(map[[2]noc.Coord]float64)}
}

func (f *flowTracker) add(from, to noc.Coord, bytes float64) {
	f.bytes[[2]noc.Coord{from, to}] += bytes
}

func (f *flowTracker) refresh(mesh *noc.Mesh, elapsedNS float64) {
	if elapsedNS < 1000 {
		return // too early for a meaningful rate
	}
	mesh.ResetLoad()
	// Iterate routes in a fixed order: per-link load accumulation is
	// floating-point addition, so map-order iteration would perturb the
	// low bits run to run and break bit-exact reproducibility.
	keys := make([][2]noc.Coord, 0, len(f.bytes))
	for k := range f.bytes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a[0] != b[0] {
			if a[0].Row != b[0].Row {
				return a[0].Row < b[0].Row
			}
			return a[0].Col < b[0].Col
		}
		if a[1].Row != b[1].Row {
			return a[1].Row < b[1].Row
		}
		return a[1].Col < b[1].Col
	})
	for _, k := range keys {
		mesh.AddFlow(k[0], k[1], f.bytes[k]/elapsedNS)
	}
}

// NewSystem builds a system for the given workloads. Each hart of each
// workload occupies one main core, placed per the layout.
func NewSystem(cfg Config, workloads []Workload) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(workloads) == 0 {
		return nil, fmt.Errorf("core: no workloads")
	}
	s := &System{
		cfg:     cfg,
		mesh:    noc.MustNew(cfg.NoC),
		layout:  cfg.Layout,
		l3:      cachesim.MustNew(cfg.L3),
		mem:     dram.New(cfg.DRAM),
		flows:   newFlowTracker(),
		metrics: obs.NewRunMetrics(),
	}
	if cfg.Trace != nil {
		s.tracePID = cfg.Trace.NextPID()
	}
	if cfg.Recovery.Enabled {
		s.tracker = maintenance.NewTracker()
	}
	s.strat = newStrategy(cfg.ResolvedStrategy())
	// Recovery consumes check verdicts immediately (re-replay,
	// quarantine) and interceptors carry per-run mutable state; both
	// keep the legacy synchronous dispatch. So does every non-lockstep
	// strategy (strat.pipelineOK): divergent orders checks against its
	// private memory image, chunk replay and relaxed start defer
	// dispatch past segment close.
	s.pipelined = len(cfg.Checkers) > 0 && !cfg.Recovery.Enabled &&
		cfg.CheckerInterceptor == nil && cfg.MainInterceptor == nil &&
		s.strat.pipelineOK()
	if s.pipelined && cfg.CheckWorkers > 1 {
		s.checkSem = make(chan struct{}, cfg.CheckWorkers)
	}
	s.blockExec = cfg.BlockExec != BlockExecOff

	laneIdx := 0
	for _, w := range workloads {
		// The shared image cache materialises each program's data segment
		// once per process; every machine gets a private copy-on-write
		// view, so per-run setup is O(pages touched), not O(data bytes).
		mach, err := emu.NewMachineShared(w.Prog, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: workload %q: %w", w.Name, err)
		}
		if cfg.MainInterceptor != nil {
			mach.Intc = cfg.MainInterceptor(laneIdx)
		}
		p := &process{w: w, mach: mach}
		if cfg.CheckMode == CheckDivergent && len(cfg.Checkers) > 0 {
			if len(mach.Harts) > 1 {
				// The divergent checker's private memory image tracks one
				// verified store stream; cross-hart stores would bypass it.
				return nil, fmt.Errorf("core: workload %q: divergent checking requires single-hart programs (got %d harts)", w.Name, len(mach.Harts))
			}
			p.plan, err = NewDivergentPlan(w.Prog, cfg.Divergent)
			if err != nil {
				return nil, fmt.Errorf("core: workload %q: %w", w.Name, err)
			}
		}
		s.procs = append(s.procs, p)
		for hart := range mach.Harts {
			l, err := s.newLane(laneIdx, p, hart)
			if err != nil {
				return nil, err
			}
			s.lanes = append(s.lanes, l)
			laneIdx++
		}
	}
	if len(s.lanes) > len(s.layout.MainPos) {
		return nil, fmt.Errorf("core: %d lanes exceed %d main-core tiles", len(s.lanes), len(s.layout.MainPos))
	}
	return s, nil
}

func (s *System) newLane(idx int, p *process, hart int) (*lane, error) {
	mainCfg, mainFreq := s.cfg.Main, s.cfg.MainFreqGHz
	if idx < len(s.cfg.LaneMains) {
		mainCfg, mainFreq = s.cfg.LaneMains[idx].CPU, s.cfg.LaneMains[idx].FreqGHz
	}
	mainCore, err := cpu.NewCore(mainCfg, mainFreq, cpu.ModeMain)
	if err != nil {
		return nil, err
	}
	l := &lane{
		idx:  idx,
		name: p.w.Name,
		proc: p,
		hart: hart,
		main: mainCore,
		pos:  s.layout.Main(idx % len(s.layout.MainPos)),
		lspu: NewLSPU(s.cfg.HashMode),
		rcu:  NewRCU(s.cfg.HashMode),
		// Pre-size the log buffers for a typical segment so early
		// segments don't grow them incrementally.
		entries: make([]Entry, 0, 1024),
		ops:     make([]MemRec, 0, 1024),
	}
	l.res = LaneResult{
		Name: p.w.Name, Hart: hart, FirstDetectionInst: -1,
		CoreName: mainCfg.Name, FreqGHz: mainFreq,
	}
	mainCore.Hier.Beyond = s.beyondFor(l.pos)
	if p.plan != nil {
		l.div = newDivState(p.plan)
	}
	if s.blockExec {
		l.batch = make([]emu.Effect, effectBatchSize)
	}

	if len(s.cfg.Checkers) > 0 {
		ckMode := cpu.ModeChecker
		if s.cfg.CheckMode == CheckDivergent {
			ckMode = cpu.ModeCheckerDivergent
		}
		var checkers []*Checker
		id := 0
		for _, spec := range s.cfg.Checkers {
			for i := 0; i < spec.Count; i++ {
				ckCore, err := cpu.NewCore(spec.CPU, spec.FreqGHz, ckMode)
				if err != nil {
					return nil, err
				}
				pos := s.layout.Checker(idx%len(s.layout.MainPos), id)
				ck := &Checker{
					ID: id, Core: ckCore, FreqGHz: spec.FreqGHz, Pos: pos,
				}
				if s.pipelined {
					// Checks may run off the orchestrator goroutine:
					// beyond-L2 accesses go through the pending check's
					// buffer instead of the shared LLC/DRAM/mesh.
					ckCore.Hier.Beyond = ck.beyondBuffered
				} else {
					ckCore.Hier.Beyond = s.beyondFor(pos)
				}
				checkers = append(checkers, ck)
				id++
			}
		}
		l.alloc, err = NewAllocator(checkers)
		if err != nil {
			return nil, err
		}
		if s.pipelined {
			// Pool queries become the lazy join points of the
			// pipelined engine.
			l.alloc.SetJoin(func(c *Checker) { s.joinCheck(c) })
		}
		if s.cfg.ResolvedStrategy() == StrategyChunkReplay {
			// Pre-size the chunk arenas for one full chunk of typical
			// segments so accumulation rarely grows them.
			l.chunk = &chunkState{
				entries: make([]Entry, 0, defaultChunkSegments*1024),
				ops:     make([]MemRec, 0, defaultChunkSegments*1024),
			}
		}
	}
	return l, nil
}

// beyondFor wires a core position into the shared LLC + DRAM + mesh
// model: request and response cross the mesh under current load; the L3
// is physically sliced by line address.
func (s *System) beyondFor(pos noc.Coord) func(addr uint64, write, fetch bool) float64 {
	return func(addr uint64, write, fetch bool) float64 {
		slice := s.layout.LLCPos[(addr/64)%uint64(len(s.layout.LLCPos))]
		req := s.mesh.LatencyNS(pos, slice, 16)
		resp := s.mesh.LatencyNS(slice, pos, LineBytes+8)
		s.flows.add(pos, slice, 16)
		s.flows.add(slice, pos, LineBytes+8)
		extra := s.mesh.QueueingNS(pos, slice, 16) + s.mesh.QueueingNS(slice, pos, LineBytes+8)
		s.llcExtraSum += extra
		s.llcExtraN++
		lat := req + resp + s.cfg.L3HitNS
		if !s.l3.Access(addr, write) {
			lat += s.mem.AccessNS(addr, 0)
		}
		return lat
	}
}

// checking reports whether this run verifies execution at all.
func (s *System) checking() bool { return len(s.cfg.Checkers) > 0 }

// Run executes every lane to completion (halt or MaxInsts), interleaving
// lanes in wall-clock order, and returns the collected results.
func (s *System) Run() (*Result, error) {
	if s.cfg.Spec != nil {
		s.initSpec()
	}
	for {
		l := s.nextLane()
		if l == nil {
			break
		}
		var err error
		if l.spec != nil && l.spec.mode == claimRecord {
			err = s.runSegmentSpec(l)
		} else {
			// Replay lanes (l.spec in claimReplay mode) run this same
			// loop: it re-cuts segment boundaries live, drawing effects
			// from the recorded stream via specNext.
			err = s.runSegment(l)
		}
		if err != nil {
			// Drain in-flight checks so no worker goroutine outlives
			// the failed run, and unwind speculation claims.
			for _, l := range s.lanes {
				s.forceAll(l)
			}
			if s.cfg.Spec != nil {
				s.abortSpec()
			}
			return nil, err
		}
	}
	return s.collect(), nil
}

// nextLane picks the live lane with the smallest local clock, which keeps
// shared-memory harts and shared-mesh lanes causally interleaved.
func (s *System) nextLane() *lane {
	var best *lane
	for _, l := range s.lanes {
		if l.done {
			continue
		}
		if best == nil || l.main.TimeNS() < best.main.TimeNS() {
			best = l
		}
	}
	return best
}

// runSegment executes one checkpoint interval on lane l: resource
// acquisition per the operating mode, functional execution with logging
// and main-core timing, then checker scheduling and verification.
func (s *System) runSegment(l *lane) error {
	hart := l.proc.mach.Harts[l.hart]
	budget := l.proc.w.MaxInsts
	if budget > 0 {
		budget += l.proc.w.WarmupInsts
	}
	if hart.Halted || (budget > 0 && l.executed >= budget) {
		s.finishLane(l)
		return nil
	}
	// A replay lane (spec.go) never steps the machine: its effects come
	// from the recorded stream, and stream exhaustion is its halt.
	sp := l.spec
	if sp != nil && sp.cur.done() {
		s.finishLane(l)
		return nil
	}

	now := l.main.TimeNS()
	var ck *Checker
	resumeAtNS := math.Inf(1)
	l.segChecked = false
	l.segDegraded = false

	if s.checking() {
		ck, resumeAtNS = s.strat.acquire(s, l, now)
	}

	if l.div != nil {
		if l.segChecked && l.div.dirty {
			// Unchecked windows ran past the private image; rebuild it
			// from the main's pre-segment memory before this check.
			l.div.resync(l.proc.mach.Mem)
		} else if !l.segChecked {
			// This segment's stores will not reach the private image.
			l.div.dirty = true
		}
	}

	capacityLines := 0
	if l.segChecked {
		capacityLines = s.lslCapacityLines(l, ck)
	}
	l.beginSegment(hart, capacityLines, s.cfg.TimeoutInsts)
	if sp != nil {
		// Snapshot the cursor at segment entry so the pending check can
		// re-walk exactly this segment's effects (pipeline.go).
		sp.segCur = sp.cur
	}
	startNS := l.main.TimeNS()

	// --- functional execution with logging and main-core timing ---
	// The block-compiled engine handles every boundary the batch fuel
	// can bound by instruction count; a finite resumeAtNS is the one
	// wall-clock-dependent boundary, so opportunistic wait windows (and
	// divergent lanes, whose check mode the block path does not model)
	// keep the per-instruction loop. Fault interceptors fall back inside
	// Machine.RunBlocks itself.
	var eff emu.Effect
	reason := BoundaryInvalid
	batched := s.blockExec && l.div == nil && math.IsInf(resumeAtNS, 1)
	for reason == BoundaryInvalid {
		if batched {
			var err error
			if reason, err = s.runBatch(l, sp, budget, resumeAtNS); err != nil {
				return err
			}
			continue
		}
		if sp != nil {
			ok, err := s.specNext(l, &eff)
			if err != nil {
				return err
			}
			if !ok {
				// The stream ran dry without a halt or budget boundary:
				// it cannot be a recording of this workload. Degrade
				// like any divergence (evict, rerun sequentially).
				return s.specDiverged(l, nil)
			}
		} else if err := l.proc.mach.StepHart(l.hart, &eff); err != nil {
			return fmt.Errorf("core: lane %d: %w", l.idx, err)
		}
		l.main.Consume(&eff)
		reason = s.accountEffect(l, &eff, budget, resumeAtNS)
	}

	if sp != nil && reason == BoundaryHalt {
		// The whole recorded stream has been stitched; collection may
		// publish a micro trace recorded over this replay.
		sp.sawEnd = true
	}

	// --- close the checkpoint ---
	l.segLines += l.lspu.Flush()
	if s.cfg.CheckpointDrains {
		l.main.Stall(s.cfg.CheckpointStallCycles)
	} else {
		l.main.FetchBubble(s.cfg.CheckpointStallCycles)
	}
	l.res.CheckpointNS += s.cfg.CheckpointStallCycles / (l.main.FreqGHz)
	endNS := l.main.TimeNS()
	l.res.Segments++
	s.metrics.Segments++
	s.metrics.Insts += l.segInsts
	s.metrics.CheckpointNS += uint64(s.cfg.CheckpointStallCycles/l.main.FreqGHz + 0.5)
	s.traceSegment(l, startNS, endNS)

	if !l.segChecked {
		// An unchecked window breaks the contiguous instruction stream a
		// deferred-work strategy accumulates: flush the pending chunk
		// before accounting the gap (no-op for per-segment strategies).
		s.strat.finish(s, l)
		l.res.UncheckedInsts += l.segInsts
		s.metrics.SegmentsUnchecked++
		if l.segDegraded {
			l.res.DegradedSegments++
			l.res.DegradedInsts += l.segInsts
			l.res.DegradedNS += endNS - startNS
			s.metrics.SegmentsDegraded++
		}
		if s.recovering() {
			// Cooled-down checkers re-test against the retained clean
			// segment; a readmission ends the degraded window.
			s.probationRetest(l, endNS)
		}
		s.flows.refresh(s.mesh, endNS)
		s.maybeSnapshotWarm(l)
		if reason == BoundaryHalt {
			s.finishLane(l)
		}
		return nil
	}

	seg := &Segment{
		Seq:      l.segSeq,
		Hart:     l.hart,
		Start:    l.segStart,
		End:      hart.State,
		Entries:  l.entries,
		Insts:    l.segInsts,
		LogBytes: l.segBytes,
		LogLines: l.segLines,
		Reason:   reason,
		StartNS:  startNS,
		EndNS:    endNS,
	}
	if s.cfg.HashMode {
		seg.Digest = l.rcu.Digest()
	}
	l.segSeq++
	l.res.CheckedInsts += seg.Insts
	l.res.LogBytes += uint64(seg.LogBytes)
	l.res.LogLines += uint64(seg.LogLines)
	s.metrics.SegmentsChecked++
	s.metrics.InstsChecked += seg.Insts

	s.strat.dispatch(s, l, ck, seg)
	s.flows.refresh(s.mesh, endNS)
	s.maybeSnapshotWarm(l)
	if reason == BoundaryHalt {
		s.finishLane(l)
	}
	return nil
}

// maybeSnapshotWarm records the warmup-boundary counters once the lane
// has executed its warmup budget.
func (s *System) maybeSnapshotWarm(l *lane) {
	if l.warmed || l.proc.w.WarmupInsts == 0 || l.executed < l.proc.w.WarmupInsts {
		return
	}
	// Checker statistics for segments dispatched during warmup belong to
	// the warmup window: flush any deferred strategy work and join any
	// pending checks before snapshotting.
	s.strat.finish(s, l)
	s.forceAll(l)
	l.warmed = true
	w := warmSnapshot{
		timeNS:       l.main.TimeNS(),
		insts:        l.executed,
		segments:     l.res.Segments,
		checked:      l.res.CheckedInsts,
		unchecked:    l.res.UncheckedInsts,
		stallNS:      l.res.StallNS,
		checkpointNS: l.res.CheckpointNS,
		logBytes:     l.res.LogBytes,
		logLines:     l.res.LogLines,
		recovery:     l.res.Recovery,
		degSegments:  l.res.DegradedSegments,
		degInsts:     l.res.DegradedInsts,
		degNS:        l.res.DegradedNS,
	}
	if l.alloc != nil {
		for _, ck := range l.alloc.Checkers() {
			w.ckBusyNS = append(w.ckBusyNS, ck.BusyNS)
			w.ckInsts = append(w.ckInsts, ck.Insts)
			w.ckSegments = append(w.ckSegments, ck.Segments)
		}
	}
	l.warm = w
}

// lslCapacityLines returns the log capacity for a segment on ck: the
// checker's repurposed L1 data cache, or the dedicated SRAM of the
// prior-work baselines. A nil ck (a strategy that defers checker
// acquisition past segment close, e.g. chunk replay) sizes segments by
// the pool's first checker — the volume one LSL$ fill would hold.
func (s *System) lslCapacityLines(l *lane, ck *Checker) int {
	if s.cfg.DedicatedLSLBytes > 0 {
		return s.cfg.DedicatedLSLBytes / LineBytes
	}
	if ck == nil {
		ck = l.alloc.Checkers()[0]
	}
	return ck.Core.Config().L1D.SizeBytes / LineBytes
}

func (l *lane) beginSegment(hart *emu.Hart, capacityLines int, timeoutInsts uint64) {
	l.segStart = hart.State
	l.entries = l.entries[:0]
	l.ops = l.ops[:0]
	l.segInsts = 0
	l.segBytes = 0
	l.segLines = 0
	l.counter.TimeoutInsts = timeoutInsts
	l.counter.Reset(capacityLines)
}

// effectBatchSize is the block-compiled engine's batch capacity, in
// effects. Large enough to amortise the per-batch protocol (fuel
// computation, ConsumeBatch call) over the ~10 ns/instruction executor,
// small enough that a lane's buffer stays cache-resident.
const effectBatchSize = 256

// accountEffect applies the per-instruction segment protocol for one
// committed effect on lane l — execution counters, LSL logging, hash
// absorption, and the boundary decision — exactly as the historical
// runSegment loop body did. Timing consumption happens before this
// call, either per effect or batched; the two orders are equivalent
// because the timing model and the logging units share no state.
//
//paralint:hotpath
func (s *System) accountEffect(l *lane, eff *emu.Effect, budget int64, resumeAtNS float64) BoundaryReason {
	l.executed++
	l.segInsts++
	l.sinceIRQ++

	pushed := 0
	if l.segChecked {
		if entry, ok := EntryFromEffectArena(eff, &l.ops); ok {
			//paralint:allow(arena append: entries/ops are pre-sized per segment)
			l.entries = append(l.entries, entry)
			pushed = l.lspu.Append(entry)
			l.segLines += pushed
			l.segBytes += entry.SizeBytes(s.cfg.HashMode)
			if s.cfg.HashMode {
				for i := 0; i < eff.NMem; i++ {
					m := eff.Mem[i]
					l.rcu.AbsorbVerification(MemRec{
						Addr: m.Addr, Size: m.Size,
						Data: m.Data, Load: m.Kind == emu.MemLoad,
					})
				}
			}
		}
	}

	switch {
	case eff.Halted:
		return BoundaryHalt
	case budget > 0 && l.executed >= budget:
		return BoundaryHalt
	case !l.warmed && l.proc.w.WarmupInsts > 0 && l.executed >= l.proc.w.WarmupInsts:
		return BoundaryInterrupt // snapshot at a checkpoint boundary
	case s.cfg.InterruptIntervalInsts > 0 && l.sinceIRQ >= s.cfg.InterruptIntervalInsts:
		l.sinceIRQ = 0
		return BoundaryInterrupt
	case !l.segChecked && l.main.TimeNS() >= resumeAtNS:
		return BoundaryInterrupt // resume checking at a fresh checkpoint
	default:
		return l.counter.Tick(pushed)
	}
}

// batchFuel bounds one block-compiled batch on lane l so that no
// count-based segment boundary can fire before the batch's final
// effect: the remaining budget, warmup window, interrupt interval and
// counter headroom each cap the fuel. That bound is what makes the
// consume-then-log reordering of runBatch sound — every effect the
// timing model consumes is committed to this segment.
func (s *System) batchFuel(l *lane, budget int64) int {
	fuel := len(l.batch)
	if budget > 0 {
		if r := budget - l.executed; int64(fuel) > r {
			fuel = int(r)
		}
	}
	if w := l.proc.w.WarmupInsts; !l.warmed && w > 0 && l.executed < w {
		if r := w - l.executed; int64(fuel) > r {
			fuel = int(r)
		}
	}
	if ie := s.cfg.InterruptIntervalInsts; ie > 0 {
		if r := ie - l.sinceIRQ; uint64(fuel) > r {
			fuel = int(r)
		}
	}
	if b := l.counter.BatchBound(); fuel > b {
		fuel = b
	}
	if fuel < 1 {
		fuel = 1
	}
	return fuel
}

// runBatch executes one block-compiled batch on lane l: fill l.batch
// from the machine (or, on a replay lane, from the recorded stream),
// deliver the whole batch to the main-core timing model, then replay
// the logging and boundary protocol per effect. Returns the boundary
// reason, which by the batchFuel sizing can only fire at the batch's
// final effect — a mid-batch boundary is an internal invariant
// violation and aborts the run loudly rather than silently skewing
// timing.
//
//paralint:hotpath
func (s *System) runBatch(l *lane, sp *laneSpec, budget int64, resumeAtNS float64) (BoundaryReason, error) {
	fuel := s.batchFuel(l, budget)
	var n int
	if sp != nil {
		// Replay lane: reconstruct effects from the recorded stream. The
		// cursor advances per instruction (reconstruction is cheap); only
		// the timing delivery below is batched.
		for n < fuel {
			ok, err := s.specNext(l, &l.batch[n])
			if err != nil {
				return BoundaryInvalid, err
			}
			if !ok {
				if n == 0 {
					// Dry stream with no halt or budget boundary: not a
					// recording of this workload (see the sequential path).
					return BoundaryInvalid, s.specDiverged(l, nil)
				}
				// Account the filled prefix; the next batch re-detects
				// the dry stream from a clean boundary state.
				break
			}
			n++
			if l.batch[n-1].Halted {
				break
			}
		}
	} else {
		var err error
		n, err = l.proc.mach.RunBlocks(l.hart, l.batch, fuel)
		if err != nil {
			return BoundaryInvalid, fmt.Errorf("core: lane %d: %w", l.idx, err)
		}
	}

	l.main.ConsumeBatch(l.batch[:n])
	for i := 0; i < n; i++ {
		reason := s.accountEffect(l, &l.batch[i], budget, resumeAtNS)
		if reason != BoundaryInvalid {
			if i != n-1 {
				return BoundaryInvalid, fmt.Errorf("core: lane %d: internal: %v boundary fired at instruction %d of a %d-effect batch", l.idx, reason, i+1, n)
			}
			return reason, nil
		}
	}
	return BoundaryInvalid, nil
}

// dispatch schedules seg on checker ck: models the NoC transfer, runs the
// checker's functional verification feeding its timing model, and records
// the outcome. Under the pipelined engine the verification is handed to
// dispatchPipelined, which may overlap it with further main-lane
// progress; recovery and fault-injection runs keep this synchronous
// path.
func (s *System) dispatch(l *lane, ck *Checker, seg *Segment) {
	if s.pipelined {
		s.dispatchPipelined(l, ck, seg)
		return
	}
	// A synchronous check runs inline at its dispatch point, so exactly
	// one check is ever in flight.
	s.metrics.CheckQueueDepth.Observe(1)
	// NoC traffic: the log lines plus start/end register checkpoints.
	xferBytes := float64(seg.LogBytes) + 2*float64(l.rcu.CheckpointTransferBytes())
	if s.cfg.LSLTrafficOnNoC {
		s.flows.add(l.pos, ck.Pos, xferBytes)
	}
	lineLatNS := s.mesh.LatencyNS(l.pos, ck.Pos, LineBytes)

	var startNS float64
	if s.cfg.EagerWake {
		// The checker starts as soon as the first line lands
		// (section IV-H); it cannot run past pushed lines, which shows
		// up as the completion floor below.
		startNS = math.Max(seg.StartNS+lineLatNS, ck.FreeAtNS)
	} else {
		startNS = math.Max(seg.EndNS+lineLatNS, ck.FreeAtNS)
	}

	// The log lines land in the checker's repurposed L1D, evicting any
	// resident data in place (fig. 3).
	if s.cfg.DedicatedLSLBytes == 0 {
		for i := 0; i < seg.LogLines; i++ {
			ck.Core.Hier.L1D.LogAppendLine()
		}
	}

	ck.Core.AdvanceTo(startNS * ck.FreqGHz)
	c0 := ck.Core.Cycles()
	var intc emu.Interceptor
	if s.cfg.CheckerInterceptor != nil {
		intc = s.cfg.CheckerInterceptor(l.idx, ck.ID)
	}
	var res CheckResult
	if l.div != nil {
		res = CheckSegmentDivergent(l.proc.plan, l.div.mem, seg, intc, func(e *emu.Effect) {
			ck.Core.Consume(e)
		})
		s.metrics.SegmentsCheckedDivergent++
		for _, m := range res.Mismatches {
			if m.Kind == MismatchLoadData {
				s.metrics.DivergentDataMismatches++
			}
		}
	} else if s.blockExec && intc == nil {
		// Fault-free lockstep replay takes the block-compiled engine;
		// injector runs keep the per-instruction loop (interceptor hooks
		// fire between instructions, not blocks).
		res = ck.scratch.CheckSegmentBlocks(l.proc.w.Prog, seg, s.cfg.HashMode, func(effs []emu.Effect) {
			ck.Core.ConsumeBatch(effs)
		})
	} else {
		res = CheckSegment(l.proc.w.Prog, seg, s.cfg.HashMode, intc, func(e *emu.Effect) {
			ck.Core.Consume(e)
		})
	}
	durNS := (ck.Core.Cycles() - c0) / ck.FreqGHz
	doneNS := startNS + durNS
	if s.cfg.EagerWake {
		// The check cannot finish before the final line and end
		// checkpoint arrive.
		if floor := seg.EndNS + lineLatNS; doneNS < floor {
			doneNS = floor
		}
	}
	ck.FreeAtNS = doneNS
	// Energy accrues only while computing; a checker that outpaces the
	// arriving log lines sleeps (section IV-H) and is treated as gated.
	ck.BusyNS += durNS
	ck.Insts += res.Insts
	ck.Segments++

	// The LSL$ lines are freed at checkpoint end (section IV-F
	// footnote 12).
	ck.Core.Hier.L1D.LogReset()

	s.metrics.CheckLatencyNS.Observe(uint64(durNS + 0.5))
	s.traceCheck(l, ck, seg, startNS, durNS)

	if res.Detected() {
		s.metrics.SegmentsMismatched++
		l.res.Detections++
		if l.res.FirstDetectionInst < 0 {
			l.res.FirstDetectionInst = l.executed
		}
		if room := sampleMismatchCap - len(l.res.SampleMismatches); room > 0 {
			mm := res.Mismatches
			if len(mm) > room {
				mm = mm[:room]
			}
			l.res.SampleMismatches = append(l.res.SampleMismatches, mm...)
		}
	}

	if s.recovering() {
		s.observe(l, ck, seg.Insts, res.Detected())
		if res.Detected() {
			s.recover(l, ck, seg, doneNS)
		} else {
			// The segment is verified clean: retain it as probation
			// material and let probation checkers shadow-check it.
			s.retainProbationSeg(l, seg)
			s.shadowCheck(l, seg, doneNS)
		}
	}
}

func (s *System) finishLane(l *lane) {
	if l.done {
		return
	}
	// Drain any deferred strategy work (a tail chunk) before reading the
	// lane's statistics; a flush may stall the main core, which belongs
	// in the lane's reported time.
	s.strat.finish(s, l)
	l.done = true
	l.res.Insts = uint64(l.executed)
	l.res.TimeNS = l.main.TimeNS()
	if l.warmed {
		l.res.Insts -= uint64(l.warm.insts)
		l.res.TimeNS -= l.warm.timeNS
		l.res.Segments -= l.warm.segments
		l.res.CheckedInsts -= l.warm.checked
		l.res.UncheckedInsts -= l.warm.unchecked
		l.res.StallNS -= l.warm.stallNS
		l.res.CheckpointNS -= l.warm.checkpointNS
		l.res.LogBytes -= l.warm.logBytes
		l.res.LogLines -= l.warm.logLines
		l.res.Recovery.sub(l.warm.recovery)
		l.res.DegradedSegments -= l.warm.degSegments
		l.res.DegradedInsts -= l.warm.degInsts
		l.res.DegradedNS -= l.warm.degNS
	}
	l.res.MainBusyNS = l.res.TimeNS - l.res.StallNS
}

func (s *System) collect() *Result {
	// Join every outstanding check before reading any statistic it may
	// still be buffering (checker stats, LLC contention samples).
	for _, l := range s.lanes {
		s.forceAll(l)
	}
	// Joins also record the verdicts a recorded stream replays, so
	// publication must follow the join sweep.
	if s.cfg.Spec != nil {
		s.publishSpec()
	}
	r := &Result{MaxLinkUtilisation: s.mesh.MaxUtilisation(), Maintenance: s.tracker}
	if s.llcExtraN > 0 {
		r.AvgLLCExtraNS = s.llcExtraSum / float64(s.llcExtraN)
	}
	for _, l := range s.lanes {
		s.finishLane(l)
		r.Lanes = append(r.Lanes, l.res)

		issued := l.main.IssueCounts()
		for c := range issued {
			s.metrics.FUIssueMain[c] += issued[c]
		}
		if l.alloc != nil {
			// Pool-utilization denominator: this lane's wall clock times
			// its pool size, in integer nanoseconds.
			wall := l.main.TimeNS()
			s.metrics.CheckWindowNS += uint64(wall+0.5) * uint64(len(l.alloc.Checkers()))
			s.metrics.ProbationEntries += l.alloc.Probations()
			for _, c := range l.alloc.Checkers() {
				s.metrics.CheckBusyNS += uint64(c.BusyNS + 0.5)
				ckIssued := c.Core.IssueCounts()
				for cl := range ckIssued {
					s.metrics.FUIssueChecker[cl] += ckIssued[cl]
				}
			}
		}

		var cks []CheckerResult
		if l.alloc != nil {
			for i, c := range l.alloc.Checkers() {
				cr := CheckerResult{
					ID:       c.ID,
					CoreName: c.Core.Config().Name,
					FreqGHz:  c.FreqGHz,
					BusyNS:   c.BusyNS,
					Insts:    c.Insts,
					Segments: c.Segments,
					State:    c.State,
					Offenses: c.Offenses,
				}
				if l.warmed && i < len(l.warm.ckBusyNS) {
					cr.BusyNS -= l.warm.ckBusyNS[i]
					cr.Insts -= l.warm.ckInsts[i]
					cr.Segments -= l.warm.ckSegments[i]
				}
				cks = append(cks, cr)
			}
		}
		r.CheckersByLane = append(r.CheckersByLane, cks)
	}
	r.Metrics = s.metrics
	return r
}

// traceSegment emits one completed checkpoint interval into the run's
// trace ring (no-op without -trace). Lane index is the thread row.
func (s *System) traceSegment(l *lane, startNS, endNS float64) {
	if s.cfg.Trace == nil {
		return
	}
	name := fmt.Sprintf("seg %d", l.res.Segments-1)
	s.cfg.Trace.Emit(obs.CatSegment, name, s.tracePID, uint64(l.idx), startNS, endNS-startNS,
		map[string]string{
			"lane":    l.name,
			"insts":   fmt.Sprint(l.segInsts),
			"checked": fmt.Sprint(l.segChecked),
		})
}

// traceCheck emits one completed segment verification. Checker rows sit
// above the lane rows: tid = 100 + lane*64 + checker.
func (s *System) traceCheck(l *lane, ck *Checker, seg *Segment, startNS, durNS float64) {
	if s.cfg.Trace == nil {
		return
	}
	s.cfg.Trace.Emit(obs.CatCheck, fmt.Sprintf("check seg %d", seg.Seq),
		s.tracePID, uint64(100+l.idx*64+ck.ID), startNS, durNS,
		map[string]string{
			"lane":    l.name,
			"checker": fmt.Sprint(ck.ID),
		})
}

// Run builds and runs a system in one call. When speculation is
// enabled and a divergence escapes the in-run fallback, the whole
// system is rebuilt and rerun sequentially without speculation — the
// continuity check turns any speculation defect into wall-clock cost,
// never a result difference.
func Run(cfg Config, workloads []Workload) (*Result, error) {
	s, err := NewSystem(cfg, workloads)
	if err != nil {
		return nil, err
	}
	res, err := s.Run()
	if err != nil && cfg.Spec != nil && errors.Is(err, ErrSpecDiverged) {
		cfg.Spec = nil
		if s, err = NewSystem(cfg, workloads); err != nil {
			return nil, err
		}
		return s.Run()
	}
	return res, err
}
