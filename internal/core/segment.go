package core

import "paraverser/internal/emu"

// Segment is one checkpointed interval of main-core execution: the unit
// of work handed to a checker core. It carries everything the induction
// check needs — the start register file, the logged entries, the end
// register file — plus the accounting the timing model needs.
type Segment struct {
	// Seq is the segment's position in program order for its hart.
	Seq int
	// Hart is the main-core hart the segment came from.
	Hart int
	// StartPC/Start are the architectural state at segment entry.
	Start emu.ArchState
	// End is the architectural state after the last instruction.
	End emu.ArchState
	// Entries are the logged loads/stores/non-repeatables, in commit
	// order.
	Entries []Entry
	// Insts is the number of instructions in the segment.
	Insts uint64
	// LogBytes is the LSL payload pushed over the NoC for this segment.
	LogBytes int
	// LogLines is the number of cache lines of log (NoC messages).
	LogLines int
	// Digest is the main core's SHA-256 over verification metadata (Hash
	// Mode only).
	Digest [32]byte
	// Reason records why the segment ended.
	Reason BoundaryReason
	// StartNS and EndNS are the wall-clock times the main core entered
	// and left the segment (filled by the orchestrator).
	StartNS float64
	EndNS   float64
}

// BoundaryReason explains a checkpoint boundary (section IV-F).
type BoundaryReason uint8

// Boundary reasons. Enums start at one.
const (
	BoundaryInvalid BoundaryReason = iota
	// BoundaryLSLFull fires when the checker's LSL$ has no room for the
	// next line of entries.
	BoundaryLSLFull
	// BoundaryTimeout fires at the 5000-instruction timer.
	BoundaryTimeout
	// BoundaryInterrupt fires on an interrupt or context switch
	// (section IV-J): register checkpoints are taken so interrupts never
	// need replaying.
	BoundaryInterrupt
	// BoundaryHalt fires when the program ends.
	BoundaryHalt
)

func (r BoundaryReason) String() string {
	switch r {
	case BoundaryLSLFull:
		return "lsl-full"
	case BoundaryTimeout:
		return "timeout"
	case BoundaryInterrupt:
		return "interrupt"
	case BoundaryHalt:
		return "halt"
	default:
		return "invalid"
	}
}

// Counter is the instruction counter unit (section IV-F): it fires a
// checkpoint when the LSL$ fills, at the instruction timeout, or on an
// interrupt. The same committed-instruction count is used on the checker
// side to end the check at exactly the matching instruction.
type Counter struct {
	// TimeoutInsts is the instruction timeout (5000 in Table I).
	TimeoutInsts uint64
	// CapacityLines is the allocated checker's LSL$ capacity.
	CapacityLines int

	insts uint64
	lines int
}

// Reset restarts the counter for a new segment with the given LSL$
// capacity.
func (c *Counter) Reset(capacityLines int) {
	c.CapacityLines = capacityLines
	c.insts = 0
	c.lines = 0
}

// Tick advances the counter by one instruction that pushed pushedLines
// log lines, returning the boundary reason if a checkpoint must be taken
// now, or BoundaryInvalid to continue.
func (c *Counter) Tick(pushedLines int) BoundaryReason {
	c.insts++
	c.lines += pushedLines
	// Keep one line of headroom so the LSPU flush at the boundary always
	// fits in the LSL$.
	if c.CapacityLines > 0 && c.lines >= c.CapacityLines-1 {
		return BoundaryLSLFull
	}
	if c.TimeoutInsts > 0 && c.insts >= c.TimeoutInsts {
		return BoundaryTimeout
	}
	return BoundaryInvalid
}

// Insts returns instructions counted since the last reset.
func (c *Counter) Insts() uint64 { return c.insts }

// BatchBound returns the largest number of instructions that can retire
// before a count-based boundary (LSL capacity or timeout) could fire,
// so a block-compiled batch of that size ends at most exactly on the
// boundary, never past it. The capacity bound assumes one pushed line
// per instruction at most, which the LSL format guarantees: the widest
// entry (a two-op gather/scatter) encodes to 32 bytes, under the
// 64-byte line, so a single Append can complete at most one line.
func (c *Counter) BatchBound() int {
	bound := 1 << 30
	if c.CapacityLines > 0 {
		if r := c.CapacityLines - 1 - c.lines; r < bound {
			bound = r
		}
	}
	if c.TimeoutInsts > 0 {
		if r := int(c.TimeoutInsts - c.insts); r < bound {
			bound = r
		}
	}
	if bound < 1 {
		bound = 1
	}
	return bound
}
