package core

import (
	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// Diagnosis classifies a detected error by repeat replays (section V:
// "our starting register checkpoints allow repeat replays to identify
// culprits"). ParaVerser cannot directly tell whether the main or checker
// core was faulty, nor whether the fault is hard or soft; replaying the
// failing segment on the same and on other cores separates the cases.
type Diagnosis uint8

// Diagnoses. Enums start at one.
const (
	DiagnosisInvalid Diagnosis = iota
	// CheckerPersistent: every replay on the original checker fails but
	// a reference replay passes — a hard fault in the checker core.
	CheckerPersistent
	// CheckerIntermittent: replays on the original checker disagree —
	// an intermittent (e.g. voltage/temperature-dependent) checker
	// fault.
	CheckerIntermittent
	// MainSuspected: replays on the original checker pass; the logged
	// data itself is inconsistent, so the main core (or the log path)
	// produced the error.
	MainSuspected
	// NotReproduced: the detection does not reproduce at all — a
	// transient (soft) error that left no trace.
	NotReproduced
)

func (d Diagnosis) String() string {
	switch d {
	case CheckerPersistent:
		return "checker-persistent"
	case CheckerIntermittent:
		return "checker-intermittent"
	case MainSuspected:
		return "main-suspected"
	case NotReproduced:
		return "not-reproduced"
	default:
		return "invalid"
	}
}

// ForensicsReport is the outcome of a replay investigation.
type ForensicsReport struct {
	Diagnosis Diagnosis
	// Replays and Failures count the replays on the suspect checker.
	Replays  int
	Failures int
	// ReferenceOK reports whether the fault-free reference replay
	// passed.
	ReferenceOK bool
}

// Investigate replays a failing segment n times under the suspect
// checker's fault environment (intc; nil models a checker later found
// healthy) plus once fault-free, and classifies the culprit. The segment
// must carry its entries and start/end checkpoints, which ParaVerser
// retains exactly for this purpose at 776B per core (section V).
func Investigate(prog *isa.Program, seg *Segment, hashMode bool, intc emu.Interceptor, n int) ForensicsReport {
	if n < 1 {
		n = 1
	}
	rep := ForensicsReport{Replays: n}
	for i := 0; i < n; i++ {
		if CheckSegment(prog, seg, hashMode, intc, nil).Detected() {
			rep.Failures++
		}
	}
	rep.ReferenceOK = !CheckSegment(prog, seg, hashMode, nil, nil).Detected()

	switch {
	case rep.Failures == n && rep.ReferenceOK:
		rep.Diagnosis = CheckerPersistent
	case rep.Failures > 0 && rep.Failures < n:
		rep.Diagnosis = CheckerIntermittent
	case rep.Failures == 0 && rep.ReferenceOK:
		rep.Diagnosis = NotReproduced
	default:
		// Even the fault-free replay fails: the log or checkpoints are
		// themselves inconsistent, so the error entered on the main
		// side.
		rep.Diagnosis = MainSuspected
	}
	return rep
}
