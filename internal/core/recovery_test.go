package core

import (
	"testing"

	"paraverser/internal/cpu"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// stuckAtInterceptor forces one output bit to 1 on every integer-ALU
// result — a blunt hard fault that fires constantly, for exercising the
// recovery path without importing internal/fault (which imports core).
type stuckAtInterceptor struct {
	bit   uint
	fires int
}

func (f *stuckAtInterceptor) Result(_ isa.Inst, class isa.Class, _ bool, v uint64) uint64 {
	if class != isa.ClassIntALU {
		return v
	}
	f.fires++
	return v | 1<<f.bit
}

func (f *stuckAtInterceptor) Address(_ isa.Inst, addr uint64) uint64 { return addr }

// withCheckerFault wires a persistent stuck-at fault into checker ckID
// of every lane.
func withCheckerFault(cfg *Config, ckID int, bit uint) *stuckAtInterceptor {
	intc := &stuckAtInterceptor{bit: bit}
	cfg.CheckerInterceptor = func(_, id int) emu.Interceptor {
		if id == ckID {
			return intc
		}
		return nil
	}
	return intc
}

// TestRecoveryQuarantinesFaultyChecker is the acceptance scenario: one
// hard-faulted checker out of four must (a) have its detections
// re-replayed clean on healthy partners, (b) be quarantined, and (c)
// leave the main-core run free of main-suspected verdicts, with full
// coverage preserved by the remaining pool.
func TestRecoveryQuarantinesFaultyChecker(t *testing.T) {
	cfg := DefaultConfig(a510Checkers(4, 2.0))
	cfg.Recovery = DefaultRecovery()
	intc := withCheckerFault(&cfg, 0, 3)

	res, err := Run(cfg, []Workload{{Name: "mixed", Prog: mixedProgram(20000)}})
	if err != nil {
		t.Fatal(err)
	}
	lane := res.Lanes[0]
	st := lane.Recovery

	if intc.fires == 0 {
		t.Fatal("fault never fired; test is vacuous")
	}
	if lane.Detections == 0 {
		t.Fatal("persistent checker fault raised no detections")
	}
	if st.Events != lane.Detections {
		t.Errorf("recovery handled %d of %d detections", st.Events, lane.Detections)
	}
	// Every flagged segment must re-verify clean on a healthy partner.
	if st.ReplayedClean != st.Events {
		t.Errorf("only %d/%d flagged segments re-verified clean elsewhere", st.ReplayedClean, st.Events)
	}
	if st.CheckerPersistent == 0 {
		t.Errorf("no checker-persistent verdict: %+v", st)
	}
	if st.MainSuspected != 0 {
		t.Errorf("%d main-core false implications", st.MainSuspected)
	}
	if st.Quarantines == 0 {
		t.Error("faulty checker never quarantined")
	}

	faulty := res.CheckersByLane[0][0]
	if faulty.State == CheckerActive {
		t.Errorf("faulty checker ended %s with %d offenses, want out of pool", faulty.State, faulty.Offenses)
	}
	for _, ck := range res.CheckersByLane[0][1:] {
		if ck.Offenses != 0 {
			t.Errorf("healthy checker %d quarantined %d times", ck.ID, ck.Offenses)
		}
	}
	// With three healthy checkers the pool never empties: no degraded
	// window, coverage stays total.
	if lane.DegradedSegments != 0 {
		t.Errorf("pool of 3 healthy checkers degraded for %d segments", lane.DegradedSegments)
	}
	if got := lane.Coverage(); got != 1.0 {
		t.Errorf("coverage %.3f, want 1.0", got)
	}
	// The detections are all attributable to the faulty checker's
	// segments: recovery events carry its ID.
	for _, ev := range lane.SampleRecoveries {
		if ev.Checker != 0 {
			t.Errorf("recovery event implicates checker %d, want 0", ev.Checker)
		}
		if ev.LatencyNS <= 0 || ev.LatencyInsts == 0 {
			t.Errorf("recovery event missing latency metadata: %+v", ev)
		}
	}
	if res.Maintenance == nil {
		t.Fatal("no live maintenance tracker on result")
	}
	// The tracker saw the faulty pair implicated.
	bad := laneCheckerID(&lane0Stub, &Checker{ID: 0})
	if res.Maintenance.ErrorRate(bad) == 0 {
		t.Error("maintenance tracker never implicated the faulty checker")
	}
}

// lane0Stub lets tests compute the CoreID mapping for lane 0.
var lane0Stub = lane{idx: 0}

// TestPoolExhaustionDegradesInsteadOfDeadlocking runs full coverage with
// a single faulty checker: once quarantined the active pool is empty,
// and the lane must fall back to unchecked execution (accounted as a
// degraded-coverage window) rather than stalling forever.
func TestPoolExhaustionDegradesInsteadOfDeadlocking(t *testing.T) {
	cfg := DefaultConfig(a510Checkers(1, 2.0))
	cfg.Recovery = DefaultRecovery()
	// Long cool-down so the quarantined checker cannot re-enter within
	// the run: the degraded window must persist without deadlock.
	cfg.Recovery.Quarantine.CooldownNS = 1e12
	withCheckerFault(&cfg, 0, 3)

	res, err := Run(cfg, []Workload{{Name: "mixed", Prog: mixedProgram(20000)}})
	if err != nil {
		t.Fatal(err)
	}
	lane := res.Lanes[0]
	if lane.Detections == 0 {
		t.Fatal("fault never detected")
	}
	if lane.Recovery.Quarantines == 0 {
		t.Fatal("checker never quarantined")
	}
	if lane.DegradedSegments == 0 || lane.DegradedInsts == 0 || lane.DegradedNS <= 0 {
		t.Errorf("no degraded window accounted: %+v", lane)
	}
	if lane.Insts == 0 {
		t.Error("lane never finished")
	}
	if got := lane.Coverage(); got >= 1.0 {
		t.Errorf("coverage %.3f with an empty pool, want < 1.0", got)
	}
}

// TestProbationReadmitsHealedChecker quarantines a checker whose fault
// then goes away (an intermittent that clears): after the cool-down it
// must shadow-check its way back into the pool, ending the degraded
// window.
func TestProbationReadmitsHealedChecker(t *testing.T) {
	cfg := DefaultConfig(a510Checkers(2, 2.0))
	cfg.Recovery = DefaultRecovery()
	cfg.Recovery.Quarantine.CooldownNS = 10_000 // short cool-down
	healed := false
	intc := &stuckAtInterceptor{bit: 3}
	cfg.CheckerInterceptor = func(_, id int) emu.Interceptor {
		if id == 0 && !healed {
			return intc
		}
		return nil
	}

	s, err := NewSystem(cfg, []Workload{{Name: "mixed", Prog: mixedProgram(30000)}})
	if err != nil {
		t.Fatal(err)
	}
	// Run until the first quarantine, then heal the fault.
	for {
		l := s.nextLane()
		if l == nil {
			break
		}
		if err := s.runSegment(l); err != nil {
			t.Fatal(err)
		}
		if !healed && l.res.Recovery.Quarantines > 0 {
			healed = true
		}
	}
	res := s.collect()
	lane := res.Lanes[0]
	if lane.Recovery.Quarantines == 0 {
		t.Fatal("checker never quarantined")
	}
	if lane.Recovery.ProbationChecks == 0 {
		t.Error("quarantined checker never shadow-checked on probation")
	}
	if lane.Recovery.Readmissions == 0 {
		t.Errorf("healed checker never readmitted: %+v", lane.Recovery)
	}
	ck := res.CheckersByLane[0][0]
	if ck.State != CheckerActive {
		t.Errorf("healed checker ended %s, want active", ck.State)
	}
}

// TestPersistentOffenderRetired keeps the fault active through every
// probation attempt: the exponential-backoff re-test schedule must
// retire the checker permanently after MaxOffenses.
func TestPersistentOffenderRetired(t *testing.T) {
	cfg := DefaultConfig(a510Checkers(2, 2.0))
	cfg.Recovery = DefaultRecovery()
	cfg.Recovery.Quarantine.CooldownNS = 1_000 // fast re-tests
	cfg.Recovery.Quarantine.MaxOffenses = 2
	withCheckerFault(&cfg, 0, 3)

	res, err := Run(cfg, []Workload{{Name: "mixed", Prog: mixedProgram(60000)}})
	if err != nil {
		t.Fatal(err)
	}
	lane := res.Lanes[0]
	ck := res.CheckersByLane[0][0]
	if ck.State != CheckerRetired {
		t.Fatalf("persistent offender ended %s after %d offenses, want retired", ck.State, ck.Offenses)
	}
	if lane.Recovery.Retirements == 0 {
		t.Error("retirement not accounted")
	}
	if ck.Offenses <= cfg.Recovery.Quarantine.MaxOffenses {
		t.Errorf("retired after %d offenses, want > %d", ck.Offenses, cfg.Recovery.Quarantine.MaxOffenses)
	}
}

// TestSampleMismatchesCapped verifies the diagnostic sample stays within
// its cap even when a single segment raises many mismatches.
func TestSampleMismatchesCapped(t *testing.T) {
	cfg := DefaultConfig(a510Checkers(2, 2.0))
	withCheckerFault(&cfg, 0, 3)
	// No recovery: every faulty-checker segment keeps flagging, so the
	// sample would overshoot without the cap.
	res, err := Run(cfg, []Workload{{Name: "mixed", Prog: mixedProgram(20000)}})
	if err != nil {
		t.Fatal(err)
	}
	lane := res.Lanes[0]
	if lane.Detections < 2 {
		t.Skipf("only %d detections; cap not exercised", lane.Detections)
	}
	if len(lane.SampleMismatches) > sampleMismatchCap {
		t.Errorf("sample holds %d mismatches, cap is %d", len(lane.SampleMismatches), sampleMismatchCap)
	}
}

// TestRecoveryValidation checks config plumbing.
func TestRecoveryValidation(t *testing.T) {
	cfg := DefaultConfig(a510Checkers(2, 2.0))
	cfg.Recovery = DefaultRecovery()
	cfg.Recovery.Quarantine.ProbationChecks = 0
	if err := cfg.Validate(); err == nil {
		t.Error("invalid quarantine policy accepted")
	}
	cfg = DefaultConfig() // no checkers
	cfg.Checkers = nil
	cfg.Recovery = DefaultRecovery()
	if err := cfg.Validate(); err == nil {
		t.Error("recovery without a checker pool accepted")
	}
}

// TestAllocatorQuarantineLifecycle unit-tests the pool state machine.
func TestAllocatorQuarantineLifecycle(t *testing.T) {
	mk := func(id int) *Checker {
		core, err := cpu.NewCore(cpu.A510(), 2.0, cpu.ModeChecker)
		if err != nil {
			t.Fatal(err)
		}
		return &Checker{ID: id, Core: core, FreqGHz: 2.0}
	}
	a, err := NewAllocator([]*Checker{mk(0), mk(1)})
	if err != nil {
		t.Fatal(err)
	}
	pol := QuarantinePolicy{CooldownNS: 100, ProbationChecks: 2, MaxOffenses: 2}
	c0 := a.Checkers()[0]

	if retired := a.Quarantine(c0, 0, pol); retired {
		t.Fatal("first offense retired")
	}
	if c0.State != CheckerQuarantined || c0.ReentryNS != 100 {
		t.Fatalf("bad quarantine state: %+v", c0)
	}
	if a.ActiveCount() != 1 || !a.Impaired() {
		t.Error("pool accounting wrong after quarantine")
	}
	if got := a.AcquireFree(0); got == c0 {
		t.Error("quarantined checker acquired")
	}
	if p := a.ProbationFree(50); p != nil {
		t.Error("probation before cool-down")
	}
	if p := a.ProbationFree(100); p != c0 {
		t.Error("cooled-down checker not on probation")
	}
	// One clean check is not enough; the second readmits.
	if re, _ := a.NoteProbation(c0, true, 100, pol); re {
		t.Error("readmitted too early")
	}
	if re, _ := a.NoteProbation(c0, true, 100, pol); !re {
		t.Error("not readmitted after required clean checks")
	}
	if c0.State != CheckerActive {
		t.Error("readmission did not activate")
	}

	// Second offense doubles the cool-down; third exceeds MaxOffenses
	// and retires.
	a.Quarantine(c0, 1000, pol)
	if c0.ReentryNS != 1000+200 {
		t.Errorf("cool-down %v, want exponential backoff 1200", c0.ReentryNS)
	}
	if retired := a.Quarantine(c0, 2000, pol); !retired {
		t.Error("offender beyond MaxOffenses not retired")
	}
	if c0.State != CheckerRetired {
		t.Error("retired state not set")
	}
	if a.EarliestFree() == nil {
		// one healthy checker remains
		t.Error("EarliestFree lost the healthy checker")
	}

	// Exhaust the pool: EarliestFree must report nil, the degradation
	// signal.
	a.Quarantine(a.Checkers()[1], 0, pol)
	if a.EarliestFree() != nil {
		t.Error("EarliestFree returned a checker from an empty pool")
	}
	if a.NextPartner(c0, 0) != nil {
		t.Error("NextPartner found a partner in an empty pool")
	}
}

// TestNextPartnerRotates checks the rotating partner selection.
func TestNextPartnerRotates(t *testing.T) {
	mk := func(id int) *Checker {
		core, err := cpu.NewCore(cpu.A510(), 2.0, cpu.ModeChecker)
		if err != nil {
			t.Fatal(err)
		}
		return &Checker{ID: id, Core: core, FreqGHz: 2.0}
	}
	a, err := NewAllocator([]*Checker{mk(0), mk(1), mk(2)})
	if err != nil {
		t.Fatal(err)
	}
	suspect := a.Checkers()[0]
	p1 := a.NextPartner(suspect, 0)
	p2 := a.NextPartner(suspect, 0)
	if p1 == nil || p2 == nil {
		t.Fatal("no partner in a pool of three")
	}
	if p1 == suspect || p2 == suspect {
		t.Error("suspect selected as its own replay partner")
	}
	if p1 == p2 {
		t.Error("partner selection did not rotate")
	}
}
