package core

import (
	"testing"

	"paraverser/internal/asm"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// captureSegments runs prog on a main-core emulator, splitting into
// segments every segLen instructions, and returns the program's segments.
func captureSegments(t *testing.T, prog *isa.Program, segLen uint64, hashMode bool) []*Segment {
	t.Helper()
	mach, err := emu.NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	rcu := NewRCU(hashMode)
	var segs []*Segment
	hart := mach.Harts[0]
	for !hart.Halted {
		seg := &Segment{Hart: 0, Start: hart.State, Seq: len(segs)}
		var eff emu.Effect
		for seg.Insts < segLen && !hart.Halted {
			if err := mach.StepHart(0, &eff); err != nil {
				t.Fatal(err)
			}
			seg.Insts++
			if e, ok := EntryFromEffect(&eff); ok {
				seg.Entries = append(seg.Entries, e)
				if hashMode {
					for i := 0; i < eff.NMem; i++ {
						m := eff.Mem[i]
						rcu.AbsorbVerification(MemRec{Addr: m.Addr, Size: m.Size,
							Data: m.Data, Load: m.Kind == emu.MemLoad})
					}
				}
			}
		}
		seg.End = hart.State
		if hashMode {
			seg.Digest = rcu.Digest()
		}
		segs = append(segs, seg)
	}
	return segs
}

// workProgram mixes arithmetic, memory, atomics, gathers, branches and
// non-repeatable instructions — one of everything the log handles.
func workProgram() *isa.Program {
	b := asm.New("work")
	a0 := b.Word64(3)
	a1 := b.Word64(5)
	buf := b.Reserve(512)
	b.Li(5, int64(isa.DefaultDataBase))
	b.Li(20, 0)
	b.Li(21, 40)
	b.Label("loop")
	b.Ld(8, 6, 5, int64(a0))
	b.Ld(8, 7, 5, int64(a1))
	b.Add(8, 6, 7)
	b.Gld(8, 9, 5, 5, int64(a0))
	b.Rand(10)
	b.Andi(10, 10, 0xFF)
	b.Add(8, 8, 10)
	b.St(8, 8, 5, int64(buf))
	b.Li(11, 77)
	b.Addi(12, 5, int64(buf)+8)
	b.Swp(13, 12, 11)
	b.Cycle(14)
	b.Fcvtif(1, 8)
	b.Fsqrt(2, 1)
	b.Fst(2, 5, int64(buf)+16)
	b.Andi(15, 10, 1)
	b.Beq(15, isa.Zero, "skip")
	b.Addi(16, 16, 1)
	b.Label("skip")
	b.Addi(20, 20, 1)
	b.Blt(20, 21, "loop")
	b.Halt()
	return b.MustBuild()
}

func TestCheckSegmentCleanRun(t *testing.T) {
	for _, hashMode := range []bool{false, true} {
		prog := workProgram()
		segs := captureSegments(t, prog, 50, hashMode)
		if len(segs) < 3 {
			t.Fatalf("hash=%v: only %d segments", hashMode, len(segs))
		}
		for _, seg := range segs {
			res := CheckSegment(prog, seg, hashMode, nil, nil)
			if !res.OK {
				t.Fatalf("hash=%v: clean segment %d failed: %v", hashMode, seg.Seq, res.Mismatches)
			}
			if res.Insts != seg.Insts {
				t.Errorf("checked %d insts, want %d", res.Insts, seg.Insts)
			}
		}
	}
}

func TestCheckSegmentDetectsCorruptedStoreData(t *testing.T) {
	prog := workProgram()
	segs := captureSegments(t, prog, 50, false)
	// Corrupt a logged store value: models the main core writing a bad
	// value to memory (error must reach the checker, section IV-C).
	corrupted := false
	for _, seg := range segs {
		for i := range seg.Entries {
			if seg.Entries[i].Kind == EntryStore {
				seg.Entries[i].Ops[0].Data ^= 1
				corrupted = true
				break
			}
		}
		if corrupted {
			res := CheckSegment(prog, seg, false, nil, nil)
			if res.OK {
				t.Fatal("corrupted store data not detected")
			}
			if res.Mismatches[0].Kind != MismatchStoreData {
				t.Errorf("mismatch kind %v, want store-data", res.Mismatches[0].Kind)
			}
			return
		}
	}
	t.Fatal("no store entry found")
}

func TestCheckSegmentDetectsCorruptedAddress(t *testing.T) {
	prog := workProgram()
	segs := captureSegments(t, prog, 50, false)
	for _, seg := range segs {
		for i := range seg.Entries {
			if seg.Entries[i].Kind == EntryLoad {
				seg.Entries[i].Ops[0].Addr += 8
				res := CheckSegment(prog, seg, false, nil, nil)
				if res.OK {
					t.Fatal("corrupted load address not detected")
				}
				found := false
				for _, m := range res.Mismatches {
					if m.Kind == MismatchAddr {
						found = true
					}
				}
				if !found {
					t.Errorf("no address mismatch in %v", res.Mismatches)
				}
				return
			}
		}
	}
	t.Fatal("no load entry found")
}

func TestCheckSegmentDetectsCorruptedEndCheckpoint(t *testing.T) {
	prog := workProgram()
	segs := captureSegments(t, prog, 50, false)
	seg := segs[0]
	seg.End.X[8] ^= 0x10
	res := CheckSegment(prog, seg, false, nil, nil)
	if res.OK {
		t.Fatal("corrupted end checkpoint not detected")
	}
	found := false
	for _, m := range res.Mismatches {
		if m.Kind == MismatchRegFile {
			found = true
		}
	}
	if !found {
		t.Errorf("no register-file mismatch in %v", res.Mismatches)
	}
}

func TestCheckSegmentHashDetectsStoreCorruption(t *testing.T) {
	// In Hash Mode store data never crosses the NoC; corruption shows up
	// as a digest mismatch instead.
	prog := workProgram()
	segs := captureSegments(t, prog, 50, true)
	seg := segs[0]
	seg.Digest[0] ^= 1
	res := CheckSegment(prog, seg, true, nil, nil)
	if res.OK {
		t.Fatal("digest corruption not detected")
	}
	if res.Mismatches[0].Kind != MismatchHash {
		t.Errorf("mismatch kind %v, want hash", res.Mismatches[0].Kind)
	}
}

func TestCheckSegmentDetectsMissingEntry(t *testing.T) {
	prog := workProgram()
	segs := captureSegments(t, prog, 50, false)
	seg := segs[0]
	if len(seg.Entries) < 2 {
		t.Skip("segment too small")
	}
	seg.Entries = seg.Entries[:len(seg.Entries)-1]
	res := CheckSegment(prog, seg, false, nil, nil)
	if res.OK {
		t.Fatal("truncated log not detected")
	}
}

func TestCheckSegmentDetectsExtraEntry(t *testing.T) {
	prog := workProgram()
	segs := captureSegments(t, prog, 50, false)
	seg := segs[0]
	seg.Entries = append(seg.Entries, seg.Entries[len(seg.Entries)-1])
	res := CheckSegment(prog, seg, false, nil, nil)
	if res.OK {
		t.Fatal("padded log not detected")
	}
}

// stuckBitInterceptor forces one output bit of FP-divide results to 1 —
// the paper's hard-fault model (section VII-B).
type stuckBitInterceptor struct {
	class isa.Class
	bit   uint
	fired int
}

func (s *stuckBitInterceptor) Result(_ isa.Inst, class isa.Class, _ bool, v uint64) uint64 {
	if class != s.class {
		return v
	}
	s.fired++
	return v | 1<<s.bit
}

func (s *stuckBitInterceptor) Address(_ isa.Inst, addr uint64) uint64 { return addr }

func TestCheckSegmentDetectsInjectedFaultOnChecker(t *testing.T) {
	// Inject a stuck-at-1 on the FP-sqrt/div unit output of the checker.
	// Errors on the checker side are detected symmetrically (section V).
	prog := workProgram()
	segs := captureSegments(t, prog, 50, false)
	intc := &stuckBitInterceptor{class: isa.ClassFPDiv, bit: 3}
	detected := false
	for _, seg := range segs {
		res := CheckSegment(prog, seg, false, intc, nil)
		if res.Detected() {
			detected = true
			break
		}
	}
	if intc.fired == 0 {
		t.Fatal("fault never activated")
	}
	if !detected {
		t.Error("stuck-at fault on checker not detected in any segment")
	}
}

func TestCheckSegmentMaskedFaultNotDetected(t *testing.T) {
	// A stuck-at-1 on a bit that is already 1 in every result is masked:
	// it never changes execution and must not raise (the paper's 24%
	// masked-injection observation).
	prog := func() *isa.Program {
		b := asm.New("masked")
		b.Li(5, 1)  // bit 0 always set
		b.Li(20, 1) // counter odd
		b.Li(21, 31)
		b.Label("loop")
		b.Ori(6, 5, 1)    // result always has bit 0
		b.Addi(20, 20, 2) // odd + 2 stays odd
		b.Blt(20, 21, "loop")
		b.Halt()
		return b.MustBuild()
	}()
	segs := captureSegments(t, prog, 20, false)
	intc := &stuckBitInterceptor{class: isa.ClassIntALU, bit: 0}
	for _, seg := range segs {
		if res := CheckSegment(prog, seg, false, intc, nil); res.Detected() {
			t.Fatalf("masked fault detected: %v", res.Mismatches)
		}
	}
	if intc.fired == 0 {
		t.Fatal("fault never activated")
	}
}

func TestCheckSegmentSinkReceivesEffects(t *testing.T) {
	prog := workProgram()
	segs := captureSegments(t, prog, 50, false)
	var n uint64
	CheckSegment(prog, segs[0], false, nil, func(e *emu.Effect) { n++ })
	if n != segs[0].Insts {
		t.Errorf("sink saw %d effects, want %d", n, segs[0].Insts)
	}
}
