package core

import (
	"errors"

	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// CheckResult is the outcome of verifying one segment on a checker core.
type CheckResult struct {
	OK         bool
	Mismatches []Mismatch
	Insts      uint64
}

// Detected reports whether any error was raised (the segment failed the
// induction check).
func (r CheckResult) Detected() bool { return !r.OK }

// checkEnv is what the shared check loop needs from a replay environment:
// the emu.Env the checker hart executes against, plus log accounting.
// Lockstep (CheckerEnv) and divergent (DivergentEnv) replay differ only
// in the environment; the verification loop is this one code path.
type checkEnv interface {
	emu.Env
	Consumed() bool
	pos() int
}

// CheckScratch holds the per-checker verification state CheckSegment
// needs — comparator, checkpoint unit, replay environment, hart — so
// steady-state verification allocates nothing: each check resets the
// scratch in place instead of building fresh objects. One scratch must
// not be shared by concurrent checks (each Checker owns one).
type CheckScratch struct {
	lsc  LSC
	rcu  RCU
	env  CheckerEnv
	hart emu.Hart
	// eff is the replay loop's effect buffer. It lives here rather than
	// on runCheck's stack because the interceptor interface and the sink
	// closure defeat escape analysis: a stack local would heap-allocate
	// once per check.
	eff emu.Effect
	// batch is CheckSegmentBlocks' effect buffer, allocated on first use
	// so per-instruction-only checkers (fault injection, divergent) pay
	// nothing for it.
	batch []emu.Effect
}

// CheckSegment replays one segment on a checker: re-executes the
// instruction stream from the start register checkpoint with loads served
// from the log, compares every address/size/store-datum (LSC) or digest
// (Hash Mode), runs to exactly the checkpointed instruction count
// (section IV-F), then compares the end register file (RCU). intc, if
// non-nil, injects faults into the checker's own execution (as in the
// paper's section VII-B methodology). sink, if non-nil, receives every
// replayed effect so a checker-core timing model can consume the stream.
//
//paralint:hotpath
func (cs *CheckScratch) CheckSegment(prog *isa.Program, seg *Segment, hashMode bool, intc emu.Interceptor, sink func(*emu.Effect)) CheckResult {
	// Reset in place. Mismatches stays nil until a mismatch actually
	// records (faulty runs only); the digest buffer keeps its capacity.
	cs.lsc.Mismatches = nil
	cs.lsc.Compares = 0
	buf := cs.rcu.hasher.buf[:0]
	cs.rcu = RCU{hashMode: hashMode, hasher: hashState{buf: buf}}
	cs.env = CheckerEnv{logCursor: logCursor{seg: seg}, lsc: &cs.lsc, rcu: &cs.rcu}
	cs.hart = emu.Hart{ID: seg.Hart, State: seg.Start}
	return runCheck(prog, &cs.hart, seg, nil, &cs.env, &cs.lsc, &cs.rcu, intc, sink, &cs.eff)
}

// CheckSegmentBlocks is CheckSegment over the block-compiled executor:
// the replay runs whole basic blocks at a time (emu.Hart.RunBlocks)
// against the log-serving CheckerEnv, delivering effects to batchSink a
// batch at a time instead of one callback per instruction. The verdict
// mapping is identical to runCheck's — a halt short of the checkpointed
// count or any replay error is a divergence, log exhaustion is its own
// mismatch kind, and the induction checks (end register file, digest or
// leftover log) are unchanged — and the differential tests in
// blockexec_test.go hold the two paths to identical CheckResults.
// Interceptors are unsupported here; fault-injection runs keep the
// per-instruction CheckSegment.
//
//paralint:hotpath
func (cs *CheckScratch) CheckSegmentBlocks(prog *isa.Program, seg *Segment, hashMode bool, batchSink func([]emu.Effect)) CheckResult {
	if cs.batch == nil {
		cs.batch = make([]emu.Effect, effectBatchSize) //paralint:allow(one-time lazy buffer, reused across segments)
	}
	cs.lsc.Mismatches = nil
	cs.lsc.Compares = 0
	buf := cs.rcu.hasher.buf[:0]
	cs.rcu = RCU{hashMode: hashMode, hasher: hashState{buf: buf}}
	cs.env = CheckerEnv{logCursor: logCursor{seg: seg}, lsc: &cs.lsc, rcu: &cs.rcu}
	cs.hart = emu.Hart{ID: seg.Hart, State: seg.Start}

	res := CheckResult{}
	dec, bt := prog.Decoded(), prog.Blocks()
	for res.Insts < seg.Insts {
		if cs.hart.Halted {
			cs.lsc.record(Mismatch{Kind: MismatchDivergence, EntryIdx: cs.env.pos()})
			break
		}
		fuel := len(cs.batch)
		if r := seg.Insts - res.Insts; uint64(fuel) > r {
			fuel = int(r)
		}
		n, err := cs.hart.RunBlocks(dec, bt, &cs.env, cs.batch, fuel)
		res.Insts += uint64(n)
		if batchSink != nil && n > 0 {
			batchSink(cs.batch[:n])
		}
		if err != nil {
			if errors.Is(err, errLogExhausted) {
				cs.lsc.record(Mismatch{Kind: MismatchLogExhausted, EntryIdx: cs.env.pos()})
			} else {
				cs.lsc.record(Mismatch{Kind: MismatchDivergence, EntryIdx: cs.env.pos()})
			}
			break
		}
	}

	if res.Insts == seg.Insts && !cs.rcu.Compare(&seg.End, &cs.hart.State) {
		cs.lsc.record(Mismatch{Kind: MismatchRegFile, EntryIdx: cs.env.pos()})
	}
	if cs.rcu.HashMode() {
		if got := cs.rcu.Digest(); got != seg.Digest {
			cs.lsc.record(Mismatch{Kind: MismatchHash, EntryIdx: cs.env.pos()})
		}
	} else if res.Insts == seg.Insts && !cs.env.Consumed() {
		cs.lsc.record(Mismatch{Kind: MismatchLogUnconsumed, EntryIdx: cs.env.pos()})
	}
	res.Mismatches = cs.lsc.Mismatches
	res.OK = len(res.Mismatches) == 0
	return res
}

// CheckSegment is the scratch-free convenience form (one-shot callers,
// fault-injection paths); hot paths hold a CheckScratch instead.
func CheckSegment(prog *isa.Program, seg *Segment, hashMode bool, intc emu.Interceptor, sink func(*emu.Effect)) CheckResult {
	var cs CheckScratch
	return cs.CheckSegment(prog, seg, hashMode, intc, sink)
}

// CheckSegmentDivergent replays one segment as the decorrelated variant:
// the start checkpoint moves through the register permutation, the
// variant instruction stream executes over the lane's private memory
// image with logged loads cross-checked against it, every comparison
// happens in the canonical domain, and the end register file is compared
// through the permutation with the pointer dual accept. Hash Mode is
// unavailable here — its digest absorbs raw addresses, which are
// layout-dependent by design.
func CheckSegmentDivergent(plan *DivergentPlan, mem *emu.Memory, seg *Segment, intc emu.Interceptor, sink func(*emu.Effect)) CheckResult {
	lsc := &LSC{}
	rcu := NewRCU(false)
	env := NewDivergentEnv(plan, mem, seg, lsc)
	start := plan.PermuteState(&seg.Start)
	hart := &emu.Hart{ID: seg.Hart, State: start}
	var eff emu.Effect
	return runCheck(plan.Variant, hart, seg, plan, env, lsc, rcu, intc, sink, &eff)
}

// runCheck is the single verification loop both check modes share: run
// the hart to the checkpointed instruction count over env, then apply
// the induction checks (end register compare — through the plan's
// permutation in divergent mode, bitwise via the RCU otherwise — digest
// or leftover-log check).
//
//paralint:hotpath
func runCheck(prog *isa.Program, hart *emu.Hart, seg *Segment, plan *DivergentPlan, env checkEnv, lsc *LSC, rcu *RCU, intc emu.Interceptor, sink func(*emu.Effect), eff *emu.Effect) CheckResult {
	res := CheckResult{}

	for res.Insts < seg.Insts {
		if hart.Halted {
			lsc.record(Mismatch{Kind: MismatchDivergence, EntryIdx: env.pos()})
			break
		}
		if err := hart.Step(prog, env, intc, eff); err != nil {
			if errors.Is(err, errLogExhausted) {
				lsc.record(Mismatch{Kind: MismatchLogExhausted, EntryIdx: env.pos()})
			} else {
				lsc.record(Mismatch{Kind: MismatchDivergence, EntryIdx: env.pos()})
			}
			break
		}
		res.Insts++
		if sink != nil {
			sink(eff)
		}
	}

	// Induction step: the end register file must equal the start state of
	// the next segment as recorded by the main core.
	if res.Insts == seg.Insts {
		endOK := false
		if plan != nil {
			endOK = plan.EndMatches(&seg.End, &hart.State)
		} else {
			endOK = rcu.Compare(&seg.End, &hart.State)
		}
		if !endOK {
			lsc.record(Mismatch{Kind: MismatchRegFile, EntryIdx: env.pos()})
		}
	}
	if rcu.HashMode() {
		if got := rcu.Digest(); got != seg.Digest {
			lsc.record(Mismatch{Kind: MismatchHash, EntryIdx: env.pos()})
		}
	} else if res.Insts == seg.Insts && !env.Consumed() {
		lsc.record(Mismatch{Kind: MismatchLogUnconsumed, EntryIdx: env.pos()})
	}

	res.Mismatches = lsc.Mismatches
	res.OK = len(res.Mismatches) == 0
	return res
}
