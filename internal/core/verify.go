package core

import (
	"errors"

	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// CheckResult is the outcome of verifying one segment on a checker core.
type CheckResult struct {
	OK         bool
	Mismatches []Mismatch
	Insts      uint64
}

// Detected reports whether any error was raised (the segment failed the
// induction check).
func (r CheckResult) Detected() bool { return !r.OK }

// checkEnv is what the shared check loop needs from a replay environment:
// the emu.Env the checker hart executes against, plus log accounting.
// Lockstep (CheckerEnv) and divergent (DivergentEnv) replay differ only
// in the environment; the verification loop is this one code path.
type checkEnv interface {
	emu.Env
	Consumed() bool
	pos() int
}

// CheckSegment replays one segment on a checker: re-executes the
// instruction stream from the start register checkpoint with loads served
// from the log, compares every address/size/store-datum (LSC) or digest
// (Hash Mode), runs to exactly the checkpointed instruction count
// (section IV-F), then compares the end register file (RCU). intc, if
// non-nil, injects faults into the checker's own execution (as in the
// paper's section VII-B methodology). sink, if non-nil, receives every
// replayed effect so a checker-core timing model can consume the stream.
func CheckSegment(prog *isa.Program, seg *Segment, hashMode bool, intc emu.Interceptor, sink func(*emu.Effect)) CheckResult {
	lsc := &LSC{}
	rcu := NewRCU(hashMode)
	env := NewCheckerEnv(seg, lsc, rcu)
	hart := &emu.Hart{ID: seg.Hart, State: seg.Start}
	endOK := func(got *emu.ArchState) bool { return rcu.Compare(&seg.End, got) }
	return runCheck(prog, hart, seg, endOK, env, lsc, rcu, intc, sink)
}

// CheckSegmentDivergent replays one segment as the decorrelated variant:
// the start checkpoint moves through the register permutation, the
// variant instruction stream executes over the lane's private memory
// image with logged loads cross-checked against it, every comparison
// happens in the canonical domain, and the end register file is compared
// through the permutation with the pointer dual accept. Hash Mode is
// unavailable here — its digest absorbs raw addresses, which are
// layout-dependent by design.
func CheckSegmentDivergent(plan *DivergentPlan, mem *emu.Memory, seg *Segment, intc emu.Interceptor, sink func(*emu.Effect)) CheckResult {
	lsc := &LSC{}
	rcu := NewRCU(false)
	env := NewDivergentEnv(plan, mem, seg, lsc)
	start := plan.PermuteState(&seg.Start)
	hart := &emu.Hart{ID: seg.Hart, State: start}
	endOK := func(got *emu.ArchState) bool { return plan.EndMatches(&seg.End, got) }
	return runCheck(plan.Variant, hart, seg, endOK, env, lsc, rcu, intc, sink)
}

// runCheck is the single verification loop both check modes share: run
// the hart to the checkpointed instruction count over env, then apply the
// induction checks (endOK register compare, digest or leftover-log
// check).
//
//paralint:hotpath
func runCheck(prog *isa.Program, hart *emu.Hart, seg *Segment, endOK func(*emu.ArchState) bool, env checkEnv, lsc *LSC, rcu *RCU, intc emu.Interceptor, sink func(*emu.Effect)) CheckResult {
	res := CheckResult{}

	var eff emu.Effect
	for res.Insts < seg.Insts {
		if hart.Halted {
			lsc.record(Mismatch{Kind: MismatchDivergence, EntryIdx: env.pos()})
			break
		}
		if err := hart.Step(prog, env, intc, &eff); err != nil {
			if errors.Is(err, errLogExhausted) {
				lsc.record(Mismatch{Kind: MismatchLogExhausted, EntryIdx: env.pos()})
			} else {
				lsc.record(Mismatch{Kind: MismatchDivergence, EntryIdx: env.pos()})
			}
			break
		}
		res.Insts++
		if sink != nil {
			sink(&eff)
		}
	}

	// Induction step: the end register file must equal the start state of
	// the next segment as recorded by the main core.
	if res.Insts == seg.Insts && !endOK(&hart.State) {
		lsc.record(Mismatch{Kind: MismatchRegFile, EntryIdx: env.pos()})
	}
	if rcu.HashMode() {
		if got := rcu.Digest(); got != seg.Digest {
			lsc.record(Mismatch{Kind: MismatchHash, EntryIdx: env.pos()})
		}
	} else if res.Insts == seg.Insts && !env.Consumed() {
		lsc.record(Mismatch{Kind: MismatchLogUnconsumed, EntryIdx: env.pos()})
	}

	res.Mismatches = lsc.Mismatches
	res.OK = len(res.Mismatches) == 0
	return res
}
