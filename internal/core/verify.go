package core

import (
	"errors"

	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// CheckResult is the outcome of verifying one segment on a checker core.
type CheckResult struct {
	OK         bool
	Mismatches []Mismatch
	Insts      uint64
}

// Detected reports whether any error was raised (the segment failed the
// induction check).
func (r CheckResult) Detected() bool { return !r.OK }

// CheckSegment replays one segment on a checker: re-executes the
// instruction stream from the start register checkpoint with loads served
// from the log, compares every address/size/store-datum (LSC) or digest
// (Hash Mode), runs to exactly the checkpointed instruction count
// (section IV-F), then compares the end register file (RCU). intc, if
// non-nil, injects faults into the checker's own execution (as in the
// paper's section VII-B methodology). sink, if non-nil, receives every
// replayed effect so a checker-core timing model can consume the stream.
func CheckSegment(prog *isa.Program, seg *Segment, hashMode bool, intc emu.Interceptor, sink func(*emu.Effect)) CheckResult {
	lsc := &LSC{}
	rcu := NewRCU(hashMode)
	env := NewCheckerEnv(seg, lsc, rcu)

	hart := &emu.Hart{ID: seg.Hart, State: seg.Start}
	res := CheckResult{}

	var eff emu.Effect
	for res.Insts < seg.Insts {
		if hart.Halted {
			lsc.record(Mismatch{Kind: MismatchDivergence, EntryIdx: env.entryIdx})
			break
		}
		if err := hart.Step(prog, env, intc, &eff); err != nil {
			if errors.Is(err, errLogExhausted) {
				lsc.record(Mismatch{Kind: MismatchLogExhausted, EntryIdx: env.entryIdx})
			} else {
				lsc.record(Mismatch{Kind: MismatchDivergence, EntryIdx: env.entryIdx})
			}
			break
		}
		res.Insts++
		if sink != nil {
			sink(&eff)
		}
	}

	// Induction step: the end register file must equal the start state of
	// the next segment as recorded by the main core.
	if res.Insts == seg.Insts && !rcu.Compare(&seg.End, &hart.State) {
		lsc.record(Mismatch{Kind: MismatchRegFile, EntryIdx: env.entryIdx})
	}
	if hashMode {
		if got := rcu.Digest(); got != seg.Digest {
			lsc.record(Mismatch{Kind: MismatchHash, EntryIdx: env.entryIdx})
		}
	} else if res.Insts == seg.Insts && !env.Consumed() {
		lsc.record(Mismatch{Kind: MismatchLogUnconsumed, EntryIdx: env.entryIdx})
	}

	res.Mismatches = lsc.Mismatches
	res.OK = len(res.Mismatches) == 0
	return res
}
