package core

import "fmt"

// SpecIndexUnit models the indexed-access scheme that lets out-of-order
// and speculative checker cores use the in-order load-store log
// (section IV-G, fig. 4):
//
//   - at decode, each load/store is assigned the current speculative
//     front-end index, which then advances by the instruction's expected
//     LSL$ payload width, so the index points at the right entry in
//     program order even when the backend reorders accesses;
//   - a mismatching LSL$ access does not fault immediately: it sets a
//     precise-exception (PE) bit in the reorder buffer and only raises at
//     commit, because the access may be a misspeculation;
//   - when instructions squash, their widths are deducted from the
//     front-end index so the correct-path instructions reuse the same
//     entries;
//   - micro-ops of one macro-op share an index;
//   - the index resets to zero at each new segment.
//
// In Hash Mode the index only advances for instructions that carry replay
// data (loads and non-repeatables), since stores ship nothing.
type SpecIndexUnit struct {
	frontIdx int
	rob      []specInst
}

type specInst struct {
	index int
	width int
	pe    bool
	mem   bool
}

// Decode records one decoded instruction. width is its expected LSL$
// payload width in index units (0 for non-memory instructions). It
// returns the ROB position for later Access/Squash/Commit calls.
func (u *SpecIndexUnit) Decode(width int) int {
	pos := len(u.rob)
	u.rob = append(u.rob, specInst{index: u.frontIdx, width: width, mem: width > 0})
	u.frontIdx += width
	return pos
}

// IndexOf returns the LSL$ index assigned to the instruction at robPos.
func (u *SpecIndexUnit) IndexOf(robPos int) (int, error) {
	if robPos < 0 || robPos >= len(u.rob) {
		return 0, fmt.Errorf("core: specindex: rob position %d out of range", robPos)
	}
	return u.rob[robPos].index, nil
}

// Access models an out-of-order LSL$ access by the instruction at robPos:
// matched=false sets the PE bit (error recorded but not raised,
// section IV-G).
func (u *SpecIndexUnit) Access(robPos int, matched bool) error {
	if robPos < 0 || robPos >= len(u.rob) {
		return fmt.Errorf("core: specindex: rob position %d out of range", robPos)
	}
	if !matched {
		u.rob[robPos].pe = true
	}
	return nil
}

// Squash removes every instruction at robPos and younger (a branch
// misprediction recovery), deducting their widths from the front-end
// index so correct-path instructions are assigned the same entries.
func (u *SpecIndexUnit) Squash(fromPos int) error {
	if fromPos < 0 || fromPos > len(u.rob) {
		return fmt.Errorf("core: specindex: squash position %d out of range", fromPos)
	}
	if fromPos == len(u.rob) {
		return nil
	}
	u.frontIdx = u.rob[fromPos].index
	u.rob = u.rob[:fromPos]
	return nil
}

// Commit retires the oldest instruction, reporting whether its PE bit
// raises an error (the instruction became non-speculative with a
// mismatched access, so a real divergence is reported).
func (u *SpecIndexUnit) Commit() (raised bool, err error) {
	if len(u.rob) == 0 {
		return false, fmt.Errorf("core: specindex: commit on empty rob")
	}
	raised = u.rob[0].pe
	u.rob = u.rob[1:]
	return raised, nil
}

// InFlight returns the number of decoded, uncommitted instructions.
func (u *SpecIndexUnit) InFlight() int { return len(u.rob) }

// FrontIndex returns the current speculative front-end index.
func (u *SpecIndexUnit) FrontIndex() int { return u.frontIdx }

// Reset clears the unit at a segment boundary (the index restarts at 0
// for each new LSL$ segment).
func (u *SpecIndexUnit) Reset() {
	u.frontIdx = 0
	u.rob = u.rob[:0]
}

// EntryIndexUnits returns the index-width of one entry in bytes/8 units,
// matching the LSL$ layout (each 8-byte slot is one unit).
func EntryIndexUnits(e Entry, hashMode bool) int {
	return e.SizeBytes(hashMode) / 8
}
