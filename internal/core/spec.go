package core

// Parallel-in-time single-run simulation: speculative segment emulation
// with a deterministic timing stitch.
//
// A lane's simulated outcome factors into two halves with a one-way
// dependency. The FUNCTIONAL half — the instruction stream, the logged
// load/store entries, the segment boundaries — is a pure function of
// (program, seed, LSL capacity, timeout, interrupt interval,
// instruction budget, hash mode): the emulator never reads a clock, the
// counter ticks on instructions and log lines, and full-coverage
// checkpoints stall rather than skip, so timing feeds nothing back into
// functional execution. The TIMING half (main-core cycles, NoC flows,
// LLC occupancy, checker schedules) consumes the functional stream but
// cannot perturb it.
//
// That factorisation lets one run be sharded in time: a producer
// emulates future segments speculatively — ahead of, and concurrently
// with, the timing stitch — recording for each segment the committed
// PCs, per-instruction outcome flags and log entries. The stitcher then
// replays those segments through the unmodified timing protocol in
// segment order, reconstructing each emu.Effect from the recording.
// Reconstruction is exact for every field the timing models read
// (cpu.Core.Consume and the checker-side consume use only PC, Inst,
// Class, Dec, NextPC, Taken, Halted, Mem[:NMem] addresses/kinds,
// WroteInt, WroteFP), so stitched timing is bit-identical to live
// timing at any shard depth — Config.TimeShards changes wall-clock
// only, never tables.
//
// The factorisation is finer still: the instruction SEQUENCE is a pure
// function of (program, hart, seed, instruction budget) alone. LSL
// capacity, the checkpoint timeout, the interrupt interval, hash mode
// and whether checking is on at all shape only WHERE the sequence is
// cut into segments — the emulator never observes a boundary. A
// recorded stream is therefore keyed by the sequence inputs only, and a
// replay run RE-CUTS its own segment boundaries: the live runSegment
// loop runs unmodified (checker acquisition, LSPU packing, counters,
// warmup/interrupt windows, hash digests), but draws its effects from a
// cursor over the recorded stream instead of the emulator. One stream
// recorded under full coverage serves opportunistic sweeps, hash-mode
// toggles, capacity sweeps and unchecked baselines — and vice versa.
//
// The recording, kept in a SpecCache, thereby memoises the functional
// stream ACROSS runs: sweeps that vary any timing- or boundary-side
// parameter (frequency, NoC, worker counts, checker counts and
// capacities, operating mode, hash mode) replay a stream recorded once
// instead of re-emulating, and a per-main-geometry MicroTrace memoises
// the main core's private-cache hit levels and branch verdicts on top
// (cpu/microtrace.go) — valid across re-cut boundaries because consume
// order is commit order, which is stream order.
//
// Safety: every speculative segment carries its entry architectural
// state, and the stitcher commits a segment only if that state extends
// the committed predecessor bit-for-bit. On divergence the engine
// falls back — in-run to sequential emulation from a retained machine
// snapshot when one matches the committed boundary, otherwise by
// rerunning the whole system without speculation (ErrSpecDiverged) —
// so a speculation bug can cost time, never correctness.

import (
	"errors"
	"fmt"
	"sync"

	"paraverser/internal/cpu"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
	"paraverser/internal/obs"
)

// ErrSpecDiverged reports that a speculative segment's entry state did
// not extend the committed predecessor and no in-run fallback was
// possible. Run (the package-level wrapper) catches it and reruns the
// system sequentially without speculation.
var ErrSpecDiverged = errors.New("core: speculative segment diverged from committed state")

// DefaultSpecCacheBytes bounds a SpecCache's recorded-stream memory.
const DefaultSpecCacheBytes = 1 << 30

// Per-instruction outcome flags in recSeg.flags.
const (
	specTaken    uint8 = 1 << 0
	specWroteInt uint8 = 1 << 1
	specWroteFP  uint8 = 1 << 2
	specHasEntry uint8 = 1 << 3
	specHalted   uint8 = 1 << 4
)

// streamKey identifies one lane's functional stream: exactly the
// inputs the instruction SEQUENCE depends on, and nothing that merely
// moves segment boundaries (capacity, timeout, interrupt interval,
// hash mode, checking) — replay runs re-cut boundaries live.
type streamKey struct {
	prog *isa.Program
	hart int
	seed uint64
	// maxInsts and warmupInsts bound the stream's length (the budget is
	// their sum); interrupts and checkpoints have no architectural
	// effect, so nothing else reaches the emulator.
	maxInsts    int64
	warmupInsts int64
}

// recSeg is one recorded segment: everything needed to reconstruct the
// committed effect sequence and the Segment handed to the checker.
type recSeg struct {
	start emu.ArchState
	end   emu.ArchState
	// pcs[i] is instruction i's PC; flags[i] its outcome bits. entries
	// holds the logged entries in commit order, with exact-size private
	// backing (never aliased by later segments).
	pcs     []uint32
	flags   []uint8
	entries []Entry
	insts   uint64
	// Checked-lane log accounting under the RECORDING run's own
	// configuration (zero for unchecked recorders). Only the recording
	// run's stitch reads these; replay runs re-cut boundaries and
	// recompute packing, byte counts and digests live.
	logBytes int
	logLines int
	digest   [32]byte
	reason   BoundaryReason
	// endSinceIRQ is the interrupt counter after this segment, so an
	// in-run fallback resumes the legacy path consistently.
	endSinceIRQ uint64
	// snap, when non-nil, is the machine state at segment entry — the
	// in-run fallback point (taken every TimeShards segments).
	snap *emu.MachineSnapshot
	// verdict is the checker outcome recorded at join time. Publication
	// requires every verdict clean, which is what lets replay runs
	// synthesise clean verdicts instead of re-verifying.
	verdict CheckResult
}

func (rs *recSeg) memBytes() int {
	n := 4*len(rs.pcs) + len(rs.flags) + 40*len(rs.entries) + 256
	for i := range rs.entries {
		n += 24 * len(rs.entries[i].Ops)
	}
	return n
}

// recStream is every recorded segment of one functional stream, plus
// the per-main-geometry micro traces recorded over it.
type recStream struct {
	segs     []*recSeg
	complete bool
	// recording marks an in-flight exclusive recording claim.
	recording bool
	bytes     int
	// micro maps a main-core geometry key to a complete MicroTrace over
	// this stream; microRec marks in-flight recording claims.
	micro    map[string]*cpu.MicroTrace
	microRec map[string]bool
}

// SpecCache memoises functional streams and micro traces across runs.
// One cache is shared by every run of an experiment engine; all state
// is guarded by mu, so concurrent runs may record and replay freely.
type SpecCache struct {
	mu       sync.Mutex
	streams  map[streamKey]*recStream
	bytes    int
	maxBytes int

	stats obs.SpecStats

	// clock, when non-nil, supplies wall-clock ns for the StitchNS
	// statistic. Injected (experiments wires time.Now) because core is a
	// deterministic package; timing of the simulator itself never feeds
	// back into simulated outcomes.
	clock func() int64

	// testCorrupt, when non-nil, mutates segments as the stitcher
	// receives them — the forced-divergence hook for fallback tests.
	testCorrupt func(laneIdx, seq int, rs *recSeg)
}

// NewSpecCache returns an empty cache with the default byte budget.
func NewSpecCache() *SpecCache {
	return &SpecCache{
		streams:  make(map[streamKey]*recStream),
		maxBytes: DefaultSpecCacheBytes,
	}
}

// SetLimit caps recorded-stream memory: once exceeded, new recordings
// are refused (existing streams keep replaying).
func (c *SpecCache) SetLimit(bytes int) {
	c.mu.Lock()
	c.maxBytes = bytes
	c.mu.Unlock()
}

// SetClock injects a wall-clock source for the StitchNS statistic.
func (c *SpecCache) SetClock(fn func() int64) { c.clock = fn }

// Stats returns a snapshot of the cache's speculation counters.
func (c *SpecCache) Stats() obs.SpecSnapshot { return c.stats.Snapshot() }

// Claim outcomes.
const (
	claimNone = iota
	claimRecord
	claimReplay
)

// claimStream resolves how a lane uses the cache: replay a complete
// stream, record a fresh one (exclusive, only if the caller's
// configuration can produce boundaries deterministically — canRecord),
// or run live unrecorded. The protocol never blocks: a stream being
// recorded elsewhere, or a cache over budget, degrades to live
// execution.
func (c *SpecCache) claimStream(key streamKey, canRecord bool) (*recStream, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.streams[key]
	if st != nil && st.complete {
		c.stats.StreamsReplayed.Add(1)
		return st, claimReplay
	}
	if !canRecord {
		return nil, claimNone
	}
	if st == nil {
		if c.bytes >= c.maxBytes {
			return nil, claimNone
		}
		st = &recStream{}
		c.streams[key] = st
	}
	if st.recording {
		return nil, claimNone
	}
	st.recording = true
	return st, claimRecord
}

// releaseStream abandons a recording claim (divergence, run error).
// Only the recording lane itself can hold claims on an incomplete
// stream, so dropping the entry is safe.
func (c *SpecCache) releaseStream(key streamKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.streams[key]; st != nil && !st.complete {
		delete(c.streams, key)
	}
}

// publishStream completes a recording, making the stream replayable.
func (c *SpecCache) publishStream(key streamKey, segs []*recSeg) {
	n := 0
	for _, rs := range segs {
		n += rs.memBytes()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.streams[key]
	if st == nil || st.complete {
		return
	}
	st.segs = segs
	st.bytes = n
	st.recording = false
	st.complete = true
	c.bytes += n
	c.stats.StreamsRecorded.Add(1)
}

// evictStream drops a stream (replay divergence hygiene): a stream
// that failed the continuity check must not keep serving replays.
func (c *SpecCache) evictStream(key streamKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.streams[key]; st != nil {
		if st.complete {
			c.bytes -= st.bytes
		}
		delete(c.streams, key)
	}
}

// claimMicro resolves a lane's micro-trace use for one main geometry:
// replay a complete trace, record a fresh one (exclusive), or neither.
func (c *SpecCache) claimMicro(st *recStream, geom string) (tr *cpu.MicroTrace, replay, record bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t := st.micro[geom]; t != nil {
		c.stats.MicroReplayed.Add(1)
		return t, true, false
	}
	if st.microRec[geom] {
		return nil, false, false
	}
	if st.microRec == nil {
		st.microRec = make(map[string]bool)
	}
	st.microRec[geom] = true
	return nil, false, true
}

// releaseMicro abandons a micro recording claim.
func (c *SpecCache) releaseMicro(st *recStream, geom string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(st.microRec, geom)
}

// publishMicro completes a micro recording.
func (c *SpecCache) publishMicro(st *recStream, geom string, tr *cpu.MicroTrace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st.micro == nil {
		st.micro = make(map[string]*cpu.MicroTrace)
	}
	st.micro[geom] = tr
	delete(st.microRec, geom)
	c.stats.MicroRecorded.Add(1)
}

// specProducer emulates a lane's functional stream ahead of the timing
// stitch, mirroring the legacy runSegment functional loop exactly: the
// same step sequence, the same logging, the same boundary decisions in
// the same order. It owns the lane's machine (exclusively, when run on
// a producer goroutine) and private copies of the functional units
// whose state shapes boundaries (LSPU line packing, instruction
// counter, interrupt/warmup counters).
type specProducer struct {
	laneIdx int
	mach    *emu.Machine
	hart    int

	budget   int64
	warmup   int64
	timeout  uint64
	irqEvery uint64
	hashMode bool
	checked  bool
	capacity int
	shards   int

	counter  Counter
	lspu     *LSPU
	rcu      *RCU
	executed int64
	sinceIRQ uint64
	warmed   bool
	segIdx   int

	// Reused scratch; sealed into exact-size private copies per segment.
	pcs   []uint32
	flags []uint8
	ents  []Entry
	ops   []MemRec

	// batch is the block-compiled engine's effect buffer (nil when the
	// engine is off): produce fills it through Machine.RunBlocks and
	// replays the recording protocol per effect, with the fuel sized so
	// no boundary can fire before the batch's final effect.
	batch []emu.Effect
}

// produce emulates one segment, or returns (nil, nil) at stream end.
func (p *specProducer) produce() (*recSeg, error) {
	hart := p.mach.Harts[p.hart]
	if hart.Halted || (p.budget > 0 && p.executed >= p.budget) {
		return nil, nil
	}
	rs := &recSeg{start: hart.State}
	if p.shards > 1 && p.segIdx%p.shards == 0 {
		rs.snap = p.mach.Snapshot()
	}
	p.segIdx++
	p.counter.TimeoutInsts = p.timeout
	p.counter.Reset(p.capacity)
	p.pcs = p.pcs[:0]
	p.flags = p.flags[:0]
	p.ents = p.ents[:0]
	p.ops = p.ops[:0]

	var eff emu.Effect
	reason := BoundaryInvalid
	for reason == BoundaryInvalid {
		if p.batch != nil {
			n, err := p.mach.RunBlocks(p.hart, p.batch, p.batchFuel())
			if err != nil {
				return nil, fmt.Errorf("core: lane %d: %w", p.laneIdx, err)
			}
			for i := 0; i < n; i++ {
				reason = p.account(&p.batch[i], rs)
				if reason != BoundaryInvalid && i != n-1 {
					return nil, fmt.Errorf("core: lane %d: internal: %v boundary fired at instruction %d of a %d-effect speculative batch", p.laneIdx, reason, i+1, n)
				}
			}
			continue
		}
		if err := p.mach.StepHart(p.hart, &eff); err != nil {
			return nil, fmt.Errorf("core: lane %d: %w", p.laneIdx, err)
		}
		reason = p.account(&eff, rs)
	}
	if p.checked {
		rs.logLines += p.lspu.Flush()
		if p.hashMode {
			rs.digest = p.rcu.Digest()
		}
	}
	if !p.warmed && p.warmup > 0 && p.executed >= p.warmup {
		p.warmed = true
	}

	rs.end = hart.State
	rs.insts = uint64(len(p.pcs))
	rs.reason = reason
	rs.endSinceIRQ = p.sinceIRQ

	// Seal exact-size private copies: the scratch arenas are reused for
	// the next segment, and a recorded segment must never alias them.
	rs.pcs = append([]uint32(nil), p.pcs...)
	rs.flags = append([]uint8(nil), p.flags...)
	ops := append([]MemRec(nil), p.ops...)
	ents := make([]Entry, len(p.ents))
	o := 0
	for i := range p.ents {
		n := len(p.ents[i].Ops)
		ents[i] = Entry{Kind: p.ents[i].Kind, Ops: ops[o : o+n : o+n]}
		o += n
	}
	rs.entries = ents
	return rs, nil
}

// account applies the recording protocol for one committed effect —
// counters, flag encoding, entry capture, LSL accounting, boundary
// decision — exactly as the historical produce loop body did.
//
//paralint:hotpath
func (p *specProducer) account(eff *emu.Effect, rs *recSeg) BoundaryReason {
	p.executed++
	p.sinceIRQ++

	fl := uint8(0)
	if eff.Taken {
		fl |= specTaken
	}
	if eff.WroteInt {
		fl |= specWroteInt
	}
	if eff.WroteFP {
		fl |= specWroteFP
	}
	if eff.Halted {
		fl |= specHalted
	}
	pushed := 0
	// Entries are recorded even on unchecked lanes: they carry the
	// memory operations the effect reconstruction needs.
	if entry, ok := EntryFromEffectArena(eff, &p.ops); ok {
		fl |= specHasEntry
		//paralint:allow(arena append: scratch is reused across segments)
		p.ents = append(p.ents, entry)
		if p.checked {
			pushed = p.lspu.Append(entry)
			rs.logLines += pushed
			rs.logBytes += entry.SizeBytes(p.hashMode)
			if p.hashMode {
				for i := 0; i < eff.NMem; i++ {
					m := eff.Mem[i]
					p.rcu.AbsorbVerification(MemRec{
						Addr: m.Addr, Size: m.Size,
						Data: m.Data, Load: m.Kind == emu.MemLoad,
					})
				}
			}
		}
	}
	//paralint:allow(arena append: scratch is reused across segments)
	p.pcs = append(p.pcs, uint32(eff.PC))
	//paralint:allow(arena append: scratch is reused across segments)
	p.flags = append(p.flags, fl)

	switch {
	case eff.Halted:
		return BoundaryHalt
	case p.budget > 0 && p.executed >= p.budget:
		return BoundaryHalt
	case !p.warmed && p.warmup > 0 && p.executed >= p.warmup:
		return BoundaryInterrupt
	case p.irqEvery > 0 && p.sinceIRQ >= p.irqEvery:
		p.sinceIRQ = 0
		return BoundaryInterrupt
	default:
		return p.counter.Tick(pushed)
	}
}

// batchFuel bounds one speculative batch so no recording boundary can
// fire before the batch's final effect (the producer-side analogue of
// System.batchFuel).
func (p *specProducer) batchFuel() int {
	fuel := len(p.batch)
	if p.budget > 0 {
		if r := p.budget - p.executed; int64(fuel) > r {
			fuel = int(r)
		}
	}
	if !p.warmed && p.warmup > 0 && p.executed < p.warmup {
		if r := p.warmup - p.executed; int64(fuel) > r {
			fuel = int(r)
		}
	}
	if p.irqEvery > 0 {
		if r := p.irqEvery - p.sinceIRQ; uint64(fuel) > r {
			fuel = int(r)
		}
	}
	if b := p.counter.BatchBound(); fuel > b {
		fuel = b
	}
	if fuel < 1 {
		fuel = 1
	}
	return fuel
}

// laneSpec is one lane's speculation state for the current run.
type laneSpec struct {
	mode    int // claimRecord or claimReplay
	key     streamKey
	stream  *recStream
	dec     []isa.DecInst
	checked bool

	// prevEnd is the committed architectural boundary; every incoming
	// recorded segment must start exactly here.
	prevEnd   emu.ArchState
	delivered int
	sawEnd    bool

	// Replay state: cur walks the recorded stream in place of the
	// emulator (specNext); segCur is cur's value at the current
	// segment's start, snapshotted so a pending check can re-walk
	// exactly the effects the segment consumed.
	cur    specCursor
	segCur specCursor

	// Record state. With TimeShards > 1 the producer runs on its own
	// goroutine, ahead of the stitcher through ch; otherwise produce()
	// is called inline. segs accumulates committed segments for
	// publication.
	prod     *specProducer
	ch       chan *recSeg
	errc     chan error
	stop     chan struct{}
	prodDone chan struct{}
	segs     []*recSeg

	// Micro-trace recording in flight (nil when replaying or not
	// claimed).
	microRec  *cpu.MicroTrace
	microGeom string
}

// stopProducer halts the producer goroutine (if any) and waits for it
// to exit, after which the machine is quiescent and owned by the
// caller. Idempotent; a no-op for inline producers.
func (sp *laneSpec) stopProducer() {
	if sp.stop == nil {
		return
	}
	close(sp.stop)
	<-sp.prodDone
	sp.stop = nil
}

// laneSpecEligible reports what lane l may do with the speculation
// cache: replay a recorded stream, and additionally record a fresh one.
//
// Replay requires only that the lane's instruction sequence is a pure
// function of the streamKey inputs. Interceptors mutate execution;
// recovery can empty the checker pool mid-run and consumes verdicts
// synchronously; divergent mode keeps a private memory image in
// lockstep with verification; multi-hart processes interleave through
// shared memory under timing control; and a checked replay synthesises
// clean verdicts, which needs the pipelined dispatch path. Boundary
// shape does NOT matter for replay — the live runSegment loop re-cuts
// boundaries over the cursor, so opportunistic mode, sampling and
// non-uniform pool capacities all replay fine.
//
// Recording is stricter: the producer must predict segment boundaries
// ahead of timing, so checked recorders need full coverage (no
// timing-gated logging) and a uniform pool capacity (BoundaryLSLFull
// must not depend on which checker was allocated).
func (s *System) laneSpecEligible(l *lane) (replay, record bool) {
	if s.cfg.MainInterceptor != nil || s.cfg.CheckerInterceptor != nil ||
		s.cfg.Recovery.Enabled {
		return false, false
	}
	if len(l.proc.mach.Harts) != 1 || l.div != nil {
		return false, false
	}
	if !s.checking() {
		return true, true
	}
	if !s.pipelined {
		return false, false
	}
	record = s.cfg.Mode == ModeFullCoverage
	if record {
		cks := l.alloc.Checkers()
		cap0 := s.lslCapacityLines(l, cks[0])
		for _, ck := range cks[1:] {
			if s.lslCapacityLines(l, ck) != cap0 {
				record = false
				break
			}
		}
	}
	return true, record
}

// streamKeyFor builds lane l's stream key.
func (s *System) streamKeyFor(l *lane) streamKey {
	return streamKey{
		prog:        l.proc.w.Prog,
		hart:        l.hart,
		seed:        s.cfg.Seed,
		maxInsts:    l.proc.w.MaxInsts,
		warmupInsts: l.proc.w.WarmupInsts,
	}
}

// initSpec decides, per lane, whether this run replays a recorded
// stream, records a fresh one (speculatively, ahead of the stitch), or
// runs the legacy sequential path (l.spec stays nil).
func (s *System) initSpec() {
	c := s.cfg.Spec
	for _, l := range s.lanes {
		replayOK, recordOK := s.laneSpecEligible(l)
		if !replayOK {
			continue
		}
		key := s.streamKeyFor(l)
		st, mode := c.claimStream(key, recordOK)
		if mode == claimNone {
			continue
		}
		sp := &laneSpec{
			mode: mode, key: key, stream: st,
			dec:     l.proc.w.Prog.Decoded(),
			checked: s.checking(),
			prevEnd: l.proc.mach.Harts[l.hart].State,
		}
		if mode == claimReplay {
			sp.cur = specCursor{dec: sp.dec, segs: st.segs}
		} else {
			hashMode := s.cfg.HashMode && sp.checked
			capacity := 0
			if sp.checked {
				capacity = s.lslCapacityLines(l, l.alloc.Checkers()[0])
			}
			sp.prod = &specProducer{
				laneIdx:  l.idx,
				mach:     l.proc.mach,
				hart:     l.hart,
				budget:   l.proc.w.MaxInsts,
				warmup:   l.proc.w.WarmupInsts,
				timeout:  s.cfg.TimeoutInsts,
				irqEvery: s.cfg.InterruptIntervalInsts,
				hashMode: hashMode,
				checked:  sp.checked,
				capacity: capacity,
				shards:   s.cfg.TimeShards,
				lspu:     NewLSPU(hashMode),
				rcu:      NewRCU(hashMode),
			}
			if sp.prod.budget > 0 {
				sp.prod.budget += sp.prod.warmup
			}
			if s.blockExec {
				sp.prod.batch = make([]emu.Effect, effectBatchSize)
			}
			if s.cfg.TimeShards > 1 {
				sp.ch = make(chan *recSeg, s.cfg.TimeShards)
				sp.errc = make(chan error, 1)
				sp.stop = make(chan struct{})
				sp.prodDone = make(chan struct{})
				go specProduceLoop(sp, &c.stats)
			}
		}
		// Micro-trace claim for this lane's main-core geometry. Traces
		// exist only on complete streams, so a record-mode lane can only
		// ever record one (its main consumes live), and a replay lane
		// records one the first time a geometry replays this stream.
		mc := l.main.Config()
		geom := cpu.GeometryKey(&mc)
		if tr, replay, record := c.claimMicro(st, geom); replay {
			l.main.SetMicroReplay(tr)
		} else if record {
			sp.microRec = &cpu.MicroTrace{}
			sp.microGeom = geom
			l.main.SetMicroRecord(sp.microRec)
		}
		l.spec = sp
	}
}

// specProduceLoop runs the producer ahead of the stitcher: the
// functional shard of the run executes in the simulated future relative
// to the timing shard, up to TimeShards segments deep.
func specProduceLoop(sp *laneSpec, stats *obs.SpecStats) {
	defer close(sp.prodDone)
	for {
		rs, err := sp.prod.produce()
		if err != nil {
			select {
			case sp.errc <- err:
			case <-sp.stop:
			}
			return
		}
		if rs == nil {
			close(sp.ch)
			return
		}
		stats.SegmentsSpeculated.Add(1)
		select {
		case sp.ch <- rs:
		case <-sp.stop:
			return
		}
	}
}

// nextSpecSeg fetches the recording lane's next produced segment: from
// the producer pipeline, or an inline produce call. Returns (nil, nil)
// at stream end.
func (s *System) nextSpecSeg(l *lane) (*recSeg, error) {
	sp := l.spec
	var rs *recSeg
	var err error
	if sp.ch != nil {
		select {
		case err = <-sp.errc:
		case got, ok := <-sp.ch:
			if ok {
				rs = got
			}
		}
	} else {
		rs, err = sp.prod.produce()
	}
	if err != nil {
		return nil, err
	}
	if rs == nil {
		sp.sawEnd = true
		return nil, nil
	}
	if hook := s.cfg.Spec.testCorrupt; hook != nil {
		hook(l.idx, sp.delivered, rs)
	}
	sp.delivered++
	return rs, nil
}

// runSegmentSpec stitches one speculatively produced segment through
// the timing protocol on a RECORDING lane (replay lanes run the plain
// runSegment loop over a cursor instead). Every timing-side action
// mirrors runSegment exactly — same acquisition and stall arithmetic,
// same consume sequence (the reconstructed effects are bit-equivalent
// for every field the timing models read), same checkpoint close,
// dispatch and accounting — so the produced tables are byte-identical
// to the sequential path.
func (s *System) runSegmentSpec(l *lane) error {
	sp := l.spec
	c := s.cfg.Spec
	var t0 int64
	if c.clock != nil {
		t0 = c.clock()
	}
	rs, err := s.nextSpecSeg(l)
	if err != nil {
		return err
	}
	if rs == nil {
		s.finishLane(l)
		return nil
	}
	if rs.start != sp.prevEnd {
		return s.specDiverged(l, rs)
	}
	sp.prevEnd = rs.end
	sp.segs = append(sp.segs, rs)
	if rs.reason == BoundaryHalt {
		// Streams always terminate in a halt-reason segment (budget
		// exhaustion raises BoundaryHalt inside the segment loop), and
		// the lane finishes at this very call — mark the stream fully
		// stitched now so collection publishes the recording.
		sp.sawEnd = true
	}

	now := l.main.TimeNS()
	l.segChecked = sp.checked
	l.segDegraded = false
	var ck *Checker
	if sp.checked {
		// Full-coverage acquisition; eligibility excludes recovery, so
		// the pool can never empty and EarliestFree is always non-nil.
		ck = l.alloc.AcquireFree(now)
		if ck == nil {
			e := l.alloc.EarliestFree()
			stall := e.FreeAtNS - now
			l.main.StallNS(stall)
			l.res.StallNS += stall
			s.metrics.StallNS += uint64(stall + 0.5)
			ck = e
		}
	}

	l.segStart = rs.start
	l.segInsts = rs.insts
	l.segBytes = rs.logBytes
	l.segLines = rs.logLines
	startNS := l.main.TimeNS()

	var eff emu.Effect
	it := effIter{dec: sp.dec, rs: rs}
	for it.next(&eff) {
		l.main.Consume(&eff)
	}
	l.executed += int64(rs.insts)
	l.sinceIRQ = rs.endSinceIRQ

	// --- close the checkpoint (mirrors runSegment) ---
	if s.cfg.CheckpointDrains {
		l.main.Stall(s.cfg.CheckpointStallCycles)
	} else {
		l.main.FetchBubble(s.cfg.CheckpointStallCycles)
	}
	l.res.CheckpointNS += s.cfg.CheckpointStallCycles / (l.main.FreqGHz)
	endNS := l.main.TimeNS()
	l.res.Segments++
	s.metrics.Segments++
	s.metrics.Insts += l.segInsts
	s.metrics.CheckpointNS += uint64(s.cfg.CheckpointStallCycles/l.main.FreqGHz + 0.5)
	s.traceSegment(l, startNS, endNS)

	if !sp.checked {
		l.res.UncheckedInsts += l.segInsts
		s.metrics.SegmentsUnchecked++
		s.flows.refresh(s.mesh, endNS)
		s.maybeSnapshotWarm(l)
		if rs.reason == BoundaryHalt {
			s.finishLane(l)
		}
		if c.clock != nil {
			c.stats.StitchNS.Add(uint64(c.clock() - t0))
		}
		return nil
	}

	seg := &Segment{
		Seq:      l.segSeq,
		Hart:     l.hart,
		Start:    rs.start,
		End:      rs.end,
		Entries:  rs.entries,
		Insts:    rs.insts,
		LogBytes: rs.logBytes,
		LogLines: rs.logLines,
		Digest:   rs.digest,
		Reason:   rs.reason,
		StartNS:  startNS,
		EndNS:    endNS,
	}
	l.segSeq++
	l.res.CheckedInsts += seg.Insts
	l.res.LogBytes += uint64(seg.LogBytes)
	l.res.LogLines += uint64(seg.LogLines)
	s.metrics.SegmentsChecked++
	s.metrics.InstsChecked += seg.Insts

	s.dispatchSpec(l, ck, seg, rs)
	s.flows.refresh(s.mesh, endNS)
	s.maybeSnapshotWarm(l)
	if rs.reason == BoundaryHalt {
		s.finishLane(l)
	}
	if c.clock != nil {
		c.stats.StitchNS.Add(uint64(c.clock() - t0))
	}
	return nil
}

// specDiverged handles a failed continuity check. Record lanes whose
// machine snapshot matches the committed boundary fall back in-run:
// the producer stops, the machine rewinds to the boundary, and the lane
// continues on the legacy sequential path (its main core consumed live
// throughout, so caches and predictor are already coherent). Otherwise
// the run aborts with ErrSpecDiverged and the Run wrapper reruns the
// whole system without speculation.
func (s *System) specDiverged(l *lane, rs *recSeg) error {
	sp := l.spec
	c := s.cfg.Spec
	c.stats.SpecAborts.Add(1)
	sp.stopProducer()
	s.releaseLaneSpec(l)
	l.spec = nil
	if sp.mode == claimRecord && rs != nil && rs.snap != nil &&
		rs.snap.HartState(l.hart) == sp.prevEnd {
		l.proc.mach.Restore(rs.snap)
		return nil
	}
	if sp.mode == claimReplay {
		// A cached stream that fails continuity is broken: stop serving
		// it so later runs re-record instead of re-aborting.
		c.evictStream(sp.key)
	}
	return ErrSpecDiverged
}

// releaseLaneSpec abandons the lane's cache claims and detaches the
// main core's micro-trace hooks.
func (s *System) releaseLaneSpec(l *lane) {
	sp := l.spec
	c := s.cfg.Spec
	if sp.mode == claimRecord {
		c.releaseStream(sp.key)
	}
	if sp.microRec != nil {
		c.releaseMicro(sp.stream, sp.microGeom)
		sp.microRec = nil
	}
	l.main.SetMicroRecord(nil)
}

// abortSpec unwinds speculation on a failed run: stop producers, drop
// claims.
func (s *System) abortSpec() {
	for _, l := range s.lanes {
		if l.spec == nil {
			continue
		}
		l.spec.stopProducer()
		s.releaseLaneSpec(l)
		l.spec = nil
	}
}

// publishSpec publishes completed recordings at collection time, after
// every pending check has joined (verdicts are recorded at joins). A
// checked recording is published only if every verdict came back clean:
// replay runs synthesise clean verdicts instead of re-verifying, which
// is sound precisely because unclean streams never enter the cache
// (eligibility already excludes every fault-injection path, so a dirty
// verdict here means a simulator defect — degrade to live runs).
func (s *System) publishSpec() {
	c := s.cfg.Spec
	for _, l := range s.lanes {
		sp := l.spec
		if sp == nil || !sp.sawEnd {
			continue
		}
		sp.stopProducer()
		if sp.mode == claimRecord {
			clean := true
			if sp.checked {
				for _, rs := range sp.segs {
					if rs.verdict.Detected() {
						clean = false
						break
					}
				}
			}
			if clean {
				c.publishStream(sp.key, sp.segs)
			} else {
				c.releaseStream(sp.key)
			}
		}
		if sp.microRec != nil {
			c.publishMicro(sp.stream, sp.microGeom, sp.microRec)
			sp.microRec = nil
		}
	}
}

// effIter reconstructs the committed effect sequence from a recorded
// segment. Reconstruction is bit-equivalent, for every field the
// timing consumers read, to the effects the live emulator produced:
// PC/Inst/Class/Dec come from the decoded program at the recorded PC,
// NextPC is the next recorded PC (the end-state PC for the last
// instruction — exact because the emulator sets State.PC = eff.NextPC
// after every step), Taken/WroteInt/WroteFP/Halted come from the
// recorded flags, and the memory operations come from the recorded log
// entry.
type effIter struct {
	dec []isa.DecInst
	rs  *recSeg
	i   int
	ei  int
}

func (it *effIter) next(eff *emu.Effect) bool {
	rs := it.rs
	if it.i >= len(rs.pcs) {
		return false
	}
	pc := uint64(rs.pcs[it.i])
	fl := rs.flags[it.i]
	d := &it.dec[pc]
	// Field-wise assignment instead of a struct literal: zeroing the
	// whole Effect (dominated by its Mem array) per instruction is
	// measurable on the replay hot path. Every field a consumer guards
	// reads behind (NMem, NonRepeat) is reset here; stale Mem/
	// NonRepeatVal bytes beyond those guards are never read.
	eff.PC = pc
	eff.Inst = d.Inst
	eff.Class = d.Class
	eff.Dec = d
	eff.Taken = fl&specTaken != 0
	eff.WroteInt = fl&specWroteInt != 0
	eff.WroteFP = fl&specWroteFP != 0
	eff.Halted = fl&specHalted != 0
	eff.NonRepeat = false
	eff.NMem = 0
	if it.i+1 < len(rs.pcs) {
		eff.NextPC = uint64(rs.pcs[it.i+1])
	} else {
		eff.NextPC = rs.end.PC
	}
	if fl&specHasEntry != 0 {
		e := &rs.entries[it.ei]
		it.ei++
		if e.Kind == EntryNonRepeat {
			eff.NonRepeat = true
			eff.NonRepeatVal = e.Ops[0].Data
		} else {
			for j := range e.Ops {
				op := &e.Ops[j]
				kind := emu.MemStore
				if op.Load {
					kind = emu.MemLoad
				}
				eff.Mem[j] = emu.MemOp{Kind: kind, Addr: op.Addr, Size: op.Size, Data: op.Data}
			}
			eff.NMem = len(e.Ops)
		}
	}
	it.i++
	return true
}

// specCursor walks a recorded stream's flat effect sequence, crossing
// recorded-segment joints transparently — the replay run's own segment
// boundaries are cut by the live runSegment loop, independent of where
// the recording run happened to cut its checkpoints. A plain value
// copy snapshots a position: a pending check re-walks its segment's
// effects from such a snapshot, hook-free, on a worker goroutine
// (recorded segments are immutable once published).
type specCursor struct {
	dec  []isa.DecInst
	segs []*recSeg
	k    int
	it   effIter
}

// done reports stream exhaustion.
func (cu *specCursor) done() bool {
	return (cu.it.rs == nil || cu.it.i >= len(cu.it.rs.pcs)) && cu.k >= len(cu.segs)
}

// next reconstructs the next committed effect, entering the next
// recorded segment as needed. Hook-free and continuity-blind: the
// lane-side step with divergence checks is System.specNext.
func (cu *specCursor) next(eff *emu.Effect) bool {
	for cu.it.rs == nil || cu.it.i >= len(cu.it.rs.pcs) {
		if cu.k >= len(cu.segs) {
			return false
		}
		cu.it = effIter{dec: cu.dec, rs: cu.segs[cu.k]}
		cu.k++
	}
	return cu.it.next(eff)
}

// specNext is runSegment's functional step on a replay lane: it
// reconstructs the next committed effect from the recorded stream
// instead of stepping the emulator. Entering a recorded segment fires
// the continuity check — its entry state must extend the committed
// predecessor bit-for-bit — and the forced-divergence test hook, so a
// broken stream degrades exactly like the stitched path: eviction plus
// ErrSpecDiverged, which the Run wrapper turns into a sequential rerun.
func (s *System) specNext(l *lane, eff *emu.Effect) (bool, error) {
	sp := l.spec
	cu := &sp.cur
	for cu.it.rs == nil || cu.it.i >= len(cu.it.rs.pcs) {
		if cu.k >= len(cu.segs) {
			return false, nil
		}
		rs := cu.segs[cu.k]
		if hook := s.cfg.Spec.testCorrupt; hook != nil {
			hook(l.idx, sp.delivered, rs)
		}
		sp.delivered++
		if rs.start != sp.prevEnd {
			return false, s.specDiverged(l, rs)
		}
		sp.prevEnd = rs.end
		s.cfg.Spec.stats.SegmentsReplayed.Add(1)
		cu.it = effIter{dec: cu.dec, rs: rs}
		cu.k++
	}
	return cu.it.next(eff), nil
}
