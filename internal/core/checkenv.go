package core

import (
	"errors"

	"paraverser/internal/emu"
)

// logCursor walks a segment's load-store log in commit order. Both
// replay environments — the lockstep CheckerEnv and the divergent-mode
// DivergentEnv — consume the log through one cursor, so the two check
// modes share the log-accounting semantics (exhaustion, leftover
// entries, entry indexing for mismatch reports).
type logCursor struct {
	seg      *Segment
	entryIdx int
	opIdx    int
}

// errLogExhausted is returned internally when the checker consumes more
// operations than were logged; the verifier converts it into a mismatch.
var errLogExhausted = errors.New("core: load-store log exhausted")

// next fetches the next logged operation in commit order.
func (c *logCursor) next() (MemRec, int, error) {
	for c.entryIdx < len(c.seg.Entries) {
		entry := c.seg.Entries[c.entryIdx]
		if c.opIdx < len(entry.Ops) {
			op := entry.Ops[c.opIdx]
			idx := c.entryIdx
			c.opIdx++
			if c.opIdx >= len(entry.Ops) {
				c.entryIdx++
				c.opIdx = 0
			}
			return op, idx, nil
		}
		c.entryIdx++
		c.opIdx = 0
	}
	return MemRec{}, c.entryIdx, errLogExhausted
}

// Consumed reports whether the checker used exactly the logged entries.
func (c *logCursor) Consumed() bool {
	return c.entryIdx >= len(c.seg.Entries)
}

// pos returns the current entry index, for mismatch attribution.
func (c *logCursor) pos() int { return c.entryIdx }

// CheckerEnv is the emu.Env a checker core executes against: every load,
// atomic and non-repeatable value is served from the segment's load-store
// log in program order, every address/size/store-datum is compared by the
// LSC (or absorbed into the Hash Mode digest), and nothing touches real
// memory — a checker thread "cannot read data" (section IV footnote 12).
type CheckerEnv struct {
	logCursor
	lsc *LSC
	rcu *RCU
}

var _ emu.Env = (*CheckerEnv)(nil)

// NewCheckerEnv builds the replay environment for one segment. rcu
// supplies Hash Mode state; it may be a non-hash RCU.
func NewCheckerEnv(seg *Segment, lsc *LSC, rcu *RCU) *CheckerEnv {
	return &CheckerEnv{logCursor: logCursor{seg: seg}, lsc: lsc, rcu: rcu}
}

// Load implements emu.Env: the LSL$ supplies the original run's data so
// replay is exact regardless of intervening multicore communication
// (section IV-B); the LSC verifies the address.
func (e *CheckerEnv) Load(addr uint64, size uint8) (uint64, error) {
	op, idx, err := e.next()
	if err != nil {
		return 0, err
	}
	if e.rcu.HashMode() {
		// Addresses are verified via the digest, not the LSC.
		e.rcu.AbsorbVerification(MemRec{Addr: addr, Size: size, Load: true})
		return op.Data, nil
	}
	return e.lsc.CheckLoad(idx, op, addr, size), nil
}

// Store implements emu.Env: nothing is written; the LSC (or digest)
// verifies address, size and data.
func (e *CheckerEnv) Store(addr uint64, size uint8, val uint64) error {
	op, idx, err := e.next()
	if err != nil {
		return err
	}
	if e.rcu.HashMode() {
		e.rcu.AbsorbVerification(MemRec{Addr: addr, Size: size, Data: truncTo(val, size)})
		return nil
	}
	e.lsc.CheckStore(idx, op, addr, size, val)
	return nil
}

// Swap implements emu.Env: the logged entry holds loaded-then-stored
// data; the load payload is returned, the store side verified.
func (e *CheckerEnv) Swap(addr uint64, newVal uint64) (uint64, error) {
	old, err := e.Load(addr, 8)
	if err != nil {
		return 0, err
	}
	if err := e.Store(addr, 8, newVal); err != nil {
		return 0, err
	}
	return old, nil
}

// Rand implements emu.Env: non-repeatable values replay from the log.
func (e *CheckerEnv) Rand() (uint64, error) {
	op, _, err := e.next()
	if err != nil {
		return 0, err
	}
	return op.Data, nil
}

// CycleRead implements emu.Env: same replay path as Rand.
func (e *CheckerEnv) CycleRead(uint64) (uint64, error) {
	op, _, err := e.next()
	if err != nil {
		return 0, err
	}
	return op.Data, nil
}
