package core

import (
	"fmt"

	"paraverser/internal/cpu"
	"paraverser/internal/noc"
)

// Checker is one core currently serving checker duty for a main core: its
// persistent timing model (caches and predictor state carry across
// segments), its DVFS point, its mesh position, and its availability.
type Checker struct {
	ID      int
	Core    *cpu.Core
	FreqGHz float64
	Pos     noc.Coord

	// FreeAtNS is when the checker finishes its current segment.
	FreeAtNS float64
	// BusyNS, Insts and Segments accumulate for energy accounting.
	BusyNS   float64
	Insts    uint64
	Segments int

	// sizeRank orders allocation preference: smaller, lower-frequency
	// cores first (section IV-A: "Preference for allocation as checker
	// cores is given to idle cores, and lower-performance cores if
	// available").
	sizeRank float64
}

// Allocator manages one main core's checker pool.
type Allocator struct {
	checkers []*Checker
}

// NewAllocator builds a pool.
func NewAllocator(checkers []*Checker) (*Allocator, error) {
	if len(checkers) == 0 {
		return nil, fmt.Errorf("core: allocator needs at least one checker")
	}
	for _, c := range checkers {
		cfg := c.Core.Config()
		c.sizeRank = float64(cfg.IssueWidth) * c.FreqGHz
		if cfg.OoO {
			c.sizeRank *= 2
		}
	}
	return &Allocator{checkers: checkers}, nil
}

// AcquireFree returns an idle checker at nowNS, preferring
// lower-performance cores, or nil when every checker is busy.
func (a *Allocator) AcquireFree(nowNS float64) *Checker {
	var best *Checker
	for _, c := range a.checkers {
		if c.FreeAtNS > nowNS {
			continue
		}
		if best == nil || c.sizeRank < best.sizeRank ||
			(c.sizeRank == best.sizeRank && c.FreeAtNS < best.FreeAtNS) {
			best = c
		}
	}
	return best
}

// EarliestFree returns the checker that frees up first (used by
// full-coverage mode to decide how long the main core must stall).
func (a *Allocator) EarliestFree() *Checker {
	best := a.checkers[0]
	for _, c := range a.checkers[1:] {
		if c.FreeAtNS < best.FreeAtNS {
			best = c
		}
	}
	return best
}

// Checkers exposes the pool for result collection.
func (a *Allocator) Checkers() []*Checker { return a.checkers }
