package core

import (
	"fmt"

	"paraverser/internal/cpu"
	"paraverser/internal/noc"
)

// CheckerState is a checker core's standing in the allocation pool. The
// error-recovery layer (recovery.go) moves checkers between states:
// implicated checkers are quarantined, cooled-down checkers shadow-check
// on probation, and persistent offenders are retired for good.
type CheckerState uint8

// Checker states. Enums start at one.
const (
	CheckerStateInvalid CheckerState = iota
	// CheckerActive: in the allocation pool, serving primary checks.
	CheckerActive
	// CheckerQuarantined: removed from the pool after being implicated;
	// re-enters on probation once its cool-down elapses.
	CheckerQuarantined
	// CheckerProbation: shadow-checks segments already verified by a
	// healthy checker; readmitted after enough consecutive clean checks.
	CheckerProbation
	// CheckerRetired: permanently removed after repeated offenses.
	CheckerRetired
)

func (s CheckerState) String() string {
	switch s {
	case CheckerActive:
		return "active"
	case CheckerQuarantined:
		return "quarantined"
	case CheckerProbation:
		return "probation"
	case CheckerRetired:
		return "retired"
	default:
		return "invalid"
	}
}

// Checker is one core currently serving checker duty for a main core: its
// persistent timing model (caches and predictor state carry across
// segments), its DVFS point, its mesh position, and its availability.
type Checker struct {
	ID      int
	Core    *cpu.Core
	FreqGHz float64
	Pos     noc.Coord

	// FreeAtNS is when the checker finishes its current segment.
	FreeAtNS float64
	// BusyNS, Insts and Segments accumulate for energy accounting.
	BusyNS   float64
	Insts    uint64
	Segments int

	// State is the checker's standing in the pool. NewAllocator admits
	// every checker as active.
	State CheckerState
	// ReentryNS is when a quarantined checker may begin probation.
	ReentryNS float64
	// Offenses counts quarantines; the cool-down doubles per offense
	// (the exponential-backoff re-test schedule).
	Offenses int
	// ProbationClean counts consecutive clean shadow checks since the
	// checker entered probation.
	ProbationClean int

	// sizeRank orders allocation preference: smaller, lower-frequency
	// cores first (section IV-A: "Preference for allocation as checker
	// cores is given to idle cores, and lower-performance cores if
	// available").
	sizeRank float64

	// Pipelined-verification state (pipeline.go). pending is the
	// in-flight asynchronous check that owns this checker; while it is
	// non-nil, FreeAtNS and the Busy/Insts/Segments statistics are stale
	// and must not be read before a join. floorNS lower-bounds the
	// pending check's final FreeAtNS, letting allocator queries skip a
	// certainly-busy checker without joining it. bb routes the checker
	// core's beyond-L2 accesses into the pending check's buffer.
	pending *pendingCheck
	floorNS float64
	bb      *checkerBuffer

	// scratch is the checker's reusable verification state: one pending
	// check owns the checker (and with it the scratch) at a time, so
	// steady-state verification allocates nothing.
	scratch CheckScratch
}

// QuarantinePolicy governs how implicated checkers leave and re-enter
// the pool.
type QuarantinePolicy struct {
	// CooldownNS is the base quarantine duration; it doubles with each
	// offense (exponential-backoff re-testing).
	CooldownNS float64
	// ProbationChecks is how many consecutive clean shadow checks a
	// probation checker needs before readmission.
	ProbationChecks int
	// MaxOffenses retires a checker permanently once exceeded.
	MaxOffenses int
}

// Allocator manages one main core's checker pool.
type Allocator struct {
	checkers []*Checker
	// rotate is the rotating-partner cursor for re-replay selection.
	rotate int
	// join, when non-nil, forces a checker's pending asynchronous check
	// to completion and merges its buffered effects (pipeline.go). Pool
	// queries call it lazily, which makes AcquireFree and EarliestFree
	// the protocol-defined join points of the pipelined engine.
	join func(*Checker)
	// probations counts quarantine→probation promotions for the run's
	// metrics shard.
	probations uint64
}

// Probations returns how many quarantined checkers were promoted to
// probation over the run.
func (a *Allocator) Probations() uint64 { return a.probations }

// SetJoin installs the pipelined engine's join hook.
func (a *Allocator) SetJoin(fn func(*Checker)) { a.join = fn }

// NewAllocator builds a pool.
func NewAllocator(checkers []*Checker) (*Allocator, error) {
	if len(checkers) == 0 {
		return nil, fmt.Errorf("core: allocator needs at least one checker")
	}
	for _, c := range checkers {
		cfg := c.Core.Config()
		c.sizeRank = float64(cfg.IssueWidth) * c.FreqGHz
		if cfg.OoO {
			c.sizeRank *= 2
		}
		c.State = CheckerActive
	}
	return &Allocator{checkers: checkers}, nil
}

// refresh promotes quarantined checkers whose cool-down elapsed to
// probation. Called from every pool query so re-entry happens at the
// scheduled time without a separate event queue.
func (a *Allocator) refresh(nowNS float64) {
	for _, c := range a.checkers {
		if c.State == CheckerQuarantined && nowNS >= c.ReentryNS {
			c.State = CheckerProbation
			c.ProbationClean = 0
			a.probations++
		}
	}
}

// AcquireFree returns an idle active checker at nowNS, preferring
// lower-performance cores, or nil when every active checker is busy.
func (a *Allocator) AcquireFree(nowNS float64) *Checker {
	a.refresh(nowNS)
	var best *Checker
	for _, c := range a.checkers {
		if c.State != CheckerActive {
			continue
		}
		if c.pending != nil {
			// An asynchronous check still owns this checker. floorNS
			// lower-bounds its final FreeAtNS: past nowNS the checker is
			// certainly busy and the selection below would skip it
			// anyway, so the overlap may continue; otherwise it might
			// already be free, and the answer requires joining first.
			if c.floorNS > nowNS {
				continue
			}
			a.join(c)
		}
		if c.FreeAtNS > nowNS {
			continue
		}
		if best == nil || c.sizeRank < best.sizeRank ||
			(c.sizeRank == best.sizeRank && c.FreeAtNS < best.FreeAtNS) {
			best = c
		}
	}
	return best
}

// EarliestFree returns the active checker that frees up first (used by
// full-coverage mode to decide how long the main core must stall), or
// nil when quarantine has emptied the active pool — the caller must then
// degrade rather than stall forever.
func (a *Allocator) EarliestFree() *Checker {
	var best *Checker
	for _, c := range a.checkers {
		if c.State != CheckerActive {
			continue
		}
		if c.pending != nil {
			// The earliest completion time is unbounded until the
			// pending check finishes: join unconditionally.
			a.join(c)
		}
		if best == nil || c.FreeAtNS < best.FreeAtNS {
			best = c
		}
	}
	return best
}

// NextPartner returns the next active checker other than exclude under
// rotating selection, or nil when no such checker exists. The partner
// may still be busy; the replay simply waits for it.
func (a *Allocator) NextPartner(exclude *Checker, nowNS float64) *Checker {
	a.refresh(nowNS)
	n := len(a.checkers)
	for i := 0; i < n; i++ {
		c := a.checkers[(a.rotate+i)%n]
		if c == exclude || c.State != CheckerActive {
			continue
		}
		a.rotate = (a.rotate + i + 1) % n
		return c
	}
	return nil
}

// ProbationFree returns an idle probation checker at nowNS, or nil.
func (a *Allocator) ProbationFree(nowNS float64) *Checker {
	a.refresh(nowNS)
	for _, c := range a.checkers {
		if c.State == CheckerProbation && c.FreeAtNS <= nowNS {
			return c
		}
	}
	return nil
}

// Quarantine removes c from the pool. The cool-down doubles per offense;
// past pol.MaxOffenses the checker is retired permanently. Reports
// whether the checker was retired.
func (a *Allocator) Quarantine(c *Checker, nowNS float64, pol QuarantinePolicy) bool {
	c.Offenses++
	c.ProbationClean = 0
	if pol.MaxOffenses > 0 && c.Offenses > pol.MaxOffenses {
		c.State = CheckerRetired
		return true
	}
	backoff := c.Offenses - 1
	if backoff > 20 {
		backoff = 20 // cap the shift; beyond this the cool-down is effectively forever
	}
	c.State = CheckerQuarantined
	c.ReentryNS = nowNS + pol.CooldownNS*float64(uint64(1)<<backoff)
	return false
}

// NoteProbation records one shadow-check outcome for a probation
// checker: enough consecutive clean checks readmit it; a failure sends
// it back to quarantine with a doubled cool-down (or retires it).
func (a *Allocator) NoteProbation(c *Checker, clean bool, nowNS float64, pol QuarantinePolicy) (readmitted, retired bool) {
	if !clean {
		return false, a.Quarantine(c, nowNS, pol)
	}
	c.ProbationClean++
	if c.ProbationClean >= pol.ProbationChecks {
		c.State = CheckerActive
		return true, false
	}
	return false, false
}

// ActiveCount returns how many checkers are in the active pool.
func (a *Allocator) ActiveCount() int {
	n := 0
	for _, c := range a.checkers {
		if c.State == CheckerActive {
			n++
		}
	}
	return n
}

// Impaired reports whether any checker is out of the active pool — the
// signal to retain probation material and attempt re-tests.
func (a *Allocator) Impaired() bool {
	for _, c := range a.checkers {
		if c.State != CheckerActive {
			return true
		}
	}
	return false
}

// Checkers exposes the pool for result collection.
func (a *Allocator) Checkers() []*Checker { return a.checkers }
