package core

import "testing"

// TestFig4Scenario replays the paper's fig. 4 example: three instructions
// assigned indices 0, 2, 4 at decode; the backend reorders I3 before I2;
// I3's access mismatches, setting its PE bit; the outcome depends on
// whether I3 commits (error raised) or squashes (index reused by the
// correct path, no error).
func TestFig4Scenario(t *testing.T) {
	t.Run("commit raises", func(t *testing.T) {
		u := &SpecIndexUnit{}
		i1 := u.Decode(2) // load x  -> index 0
		i2 := u.Decode(2) // store x -> index 2
		i3 := u.Decode(2) // load y  -> index 4
		for want, pos := range []int{i1, i2, i3} {
			idx, err := u.IndexOf(pos)
			if err != nil || idx != want*2 {
				t.Fatalf("index of inst %d = %d, %v; want %d", pos, idx, err, want*2)
			}
		}
		// Out-of-order: I3 accesses before I2; the entry is a load to z,
		// not y -> mismatch recorded, not raised.
		if err := u.Access(i3, false); err != nil {
			t.Fatal(err)
		}
		if err := u.Access(i2, true); err != nil {
			t.Fatal(err)
		}
		if err := u.Access(i1, true); err != nil {
			t.Fatal(err)
		}
		for i, wantPE := range []bool{false, false, true} {
			raised, err := u.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if raised != wantPE {
				t.Errorf("commit %d raised=%v, want %v", i, raised, wantPE)
			}
		}
	})

	t.Run("squash reuses index", func(t *testing.T) {
		u := &SpecIndexUnit{}
		u.Decode(2)       // I1
		u.Decode(2)       // I2
		i3 := u.Decode(2) // I3 at index 4
		u.Access(i3, false)
		// I3 was a misspeculation: squash it; the front index returns to
		// 4 so the correct-path instruction accesses the same entry.
		if err := u.Squash(i3); err != nil {
			t.Fatal(err)
		}
		if u.FrontIndex() != 4 {
			t.Errorf("front index %d after squash, want 4", u.FrontIndex())
		}
		i3b := u.Decode(2)
		if idx, _ := u.IndexOf(i3b); idx != 4 {
			t.Errorf("replayed instruction index %d, want 4", idx)
		}
		u.Access(i3b, true)
		u.Commit()
		u.Commit()
		if raised, _ := u.Commit(); raised {
			t.Error("squashed PE bit leaked into correct path")
		}
	})
}

func TestSpecIndexNonMemInstructions(t *testing.T) {
	u := &SpecIndexUnit{}
	u.Decode(2)
	pos := u.Decode(0) // ALU op: no payload, index unchanged
	after := u.Decode(2)
	if idx, _ := u.IndexOf(pos); idx != 2 {
		t.Errorf("ALU inst index %d, want 2 (unmoved)", idx)
	}
	if idx, _ := u.IndexOf(after); idx != 2 {
		t.Errorf("next mem inst index %d, want 2", idx)
	}
}

func TestSpecIndexSquashMultiple(t *testing.T) {
	u := &SpecIndexUnit{}
	u.Decode(1)
	second := u.Decode(3)
	u.Decode(2)
	u.Decode(2)
	if u.FrontIndex() != 8 {
		t.Fatalf("front index %d, want 8", u.FrontIndex())
	}
	if err := u.Squash(second); err != nil {
		t.Fatal(err)
	}
	if u.FrontIndex() != 1 || u.InFlight() != 1 {
		t.Errorf("after squash: front %d inflight %d, want 1, 1", u.FrontIndex(), u.InFlight())
	}
}

func TestSpecIndexResetPerSegment(t *testing.T) {
	u := &SpecIndexUnit{}
	u.Decode(5)
	u.Reset()
	if u.FrontIndex() != 0 || u.InFlight() != 0 {
		t.Error("reset did not clear unit")
	}
	if pos := u.Decode(2); pos != 0 {
		t.Error("rob not reset")
	}
}

func TestSpecIndexErrors(t *testing.T) {
	u := &SpecIndexUnit{}
	if _, err := u.Commit(); err == nil {
		t.Error("commit on empty rob must error")
	}
	if err := u.Access(3, true); err == nil {
		t.Error("access out of range must error")
	}
	if _, err := u.IndexOf(-1); err == nil {
		t.Error("IndexOf(-1) must error")
	}
	if err := u.Squash(7); err == nil {
		t.Error("squash past end must error")
	}
	u.Decode(1)
	if err := u.Squash(1); err != nil {
		t.Errorf("no-op squash at end errored: %v", err)
	}
}

func TestEntryIndexUnits(t *testing.T) {
	load := Entry{Kind: EntryLoad, Ops: []MemRec{{Size: 8, Load: true}}}
	if got := EntryIndexUnits(load, false); got != 2 {
		t.Errorf("load units = %d, want 2 (16B/8)", got)
	}
	// Hash mode: 8B payload only -> 1 unit.
	if got := EntryIndexUnits(load, true); got != 1 {
		t.Errorf("hash-mode load units = %d, want 1", got)
	}
	store := Entry{Kind: EntryStore, Ops: []MemRec{{Size: 8}}}
	// Hash mode: stores ship nothing, index does not advance.
	if got := EntryIndexUnits(store, true); got != 0 {
		t.Errorf("hash-mode store units = %d, want 0", got)
	}
}
