package core

import (
	"math/rand"
	"testing"
)

// TestSpecIndexAgainstRealSegments drives the speculative-index unit with
// randomised out-of-order schedules over real captured segments: decode
// every instruction (with occasional wrong-path bursts that then squash),
// access the LSL$ out of order, and verify that after all squashes the
// committed instructions were assigned exactly the in-order entry indices
// — the invariant that lets out-of-order checker cores use an in-order
// log (section IV-G).
func TestSpecIndexAgainstRealSegments(t *testing.T) {
	prog := workProgram()
	segs := captureSegments(t, prog, 80, false)
	rng := rand.New(rand.NewSource(5))

	for _, seg := range segs {
		// The in-order ground truth: entry index per logged instruction.
		wantIdx := make([]int, 0, len(seg.Entries))
		next := 0
		for _, e := range seg.Entries {
			wantIdx = append(wantIdx, next)
			next += EntryIndexUnits(e, false)
		}

		u := &SpecIndexUnit{}
		committed := 0
		entryPos := 0 // next logged instruction to decode
		type inflight struct {
			rob    int
			want   int
			hasLog bool
		}
		var window []inflight

		for committed < len(seg.Entries) {
			switch rng.Intn(4) {
			case 0, 1: // decode the next correct-path logged instruction
				if entryPos < len(seg.Entries) {
					width := EntryIndexUnits(seg.Entries[entryPos], false)
					rob := u.Decode(width)
					window = append(window, inflight{rob: rob, want: wantIdx[entryPos], hasLog: true})
					entryPos++
				}
			case 2: // wrong-path burst: decode garbage, then squash it all
				mark := u.InFlight()
				n := rng.Intn(4) + 1
				for i := 0; i < n; i++ {
					u.Decode(rng.Intn(3) + 1)
				}
				if err := u.Squash(mark); err != nil {
					t.Fatal(err)
				}
			case 3: // commit the oldest in-flight instruction
				if len(window) == 0 {
					continue
				}
				inf := window[0]
				window = window[1:]
				got, err := u.IndexOf(inf.rob)
				if err != nil {
					t.Fatal(err)
				}
				if got != inf.want {
					t.Fatalf("seg %d: committed inst got index %d, want %d", seg.Seq, got, inf.want)
				}
				// Out-of-order access before commit: matched.
				if err := u.Access(inf.rob, true); err != nil {
					t.Fatal(err)
				}
				raised, err := u.Commit()
				if err != nil {
					t.Fatal(err)
				}
				if raised {
					t.Fatal("matched access raised a precise exception")
				}
				// Shift stored rob positions: commit pops the oldest, so
				// every remaining position moves down by one.
				for i := range window {
					window[i].rob--
				}
				committed++
			}
		}
		if u.FrontIndex() != next {
			t.Errorf("seg %d: final front index %d, want %d", seg.Seq, u.FrontIndex(), next)
		}
		u.Reset()
	}
}
