package core

import (
	"fmt"

	"paraverser/internal/power"
)

// EnergyReport is the section VII-E accounting for one run: the checking
// energy added on top of a baseline in which all checker cores are power
// gated.
type EnergyReport struct {
	MainJ    float64
	CheckerJ float64
	// Overhead is CheckerJ / MainJ, the paper's "energy overhead"
	// metric (95% homogeneous lockstep-equivalent, 49% for 4xA510@2GHz,
	// 29% at the ED²P point, and so on).
	Overhead float64
}

// Energy computes the report for a finished run.
func Energy(cfg Config, res *Result) (EnergyReport, error) {
	var rep EnergyReport
	for i := range res.Lanes {
		lane := &res.Lanes[i]
		mainModel, err := power.ModelFor(lane.CoreName)
		if err != nil {
			return rep, err
		}
		rep.MainJ += mainModel.TotalJ(lane.Insts, lane.TimeNS*1e-9, lane.FreqGHz)
		for _, ck := range res.CheckersByLane[i] {
			m, err := power.ModelFor(ck.CoreName)
			if err != nil {
				return rep, err
			}
			rep.CheckerJ += m.TotalJ(ck.Insts, ck.BusyNS*1e-9, ck.FreqGHz)
		}
	}
	if rep.MainJ <= 0 {
		return rep, fmt.Errorf("core: energy: no main-core work recorded")
	}
	rep.Overhead = rep.CheckerJ / rep.MainJ
	return rep, nil
}

// StorageOverheadBytes returns the per-core SRAM/flop addition of the
// ParaVerser units for the given core model (the paper's 1064B for the
// X2, section VII-E).
func StorageOverheadBytes(cfg Config) int {
	s := power.NewStorageOverhead(cfg.Main.LQ, cfg.Main.SQ, cfg.Main.L1D.Lines())
	return s.TotalBytes()
}
