package core

import (
	"fmt"

	"paraverser/internal/cachesim"
	"paraverser/internal/cpu"
	"paraverser/internal/dram"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
	"paraverser/internal/noc"
	"paraverser/internal/obs"
)

// Mode selects how the system behaves when checker resources run out
// (section IV-A).
type Mode uint8

// Operating modes. Enums start at one.
const (
	ModeInvalid Mode = iota
	// ModeFullCoverage stalls the main core until a checker frees:
	// every dynamic instruction is checked (hard and soft errors).
	ModeFullCoverage
	// ModeOpportunistic switches logging off when no checker is free and
	// resumes as soon as one is: partial coverage, near-zero slowdown.
	ModeOpportunistic
)

func (m Mode) String() string {
	switch m {
	case ModeFullCoverage:
		return "full-coverage"
	case ModeOpportunistic:
		return "opportunistic"
	default:
		return "invalid"
	}
}

// CheckMode selects how checker cores re-execute a segment (DME-style
// divergent checking versus the paper's identical replay).
type CheckMode uint8

// Check modes. The zero value is lockstep so existing configurations keep
// their meaning.
const (
	// CheckLockstep replays the identical program over the identical
	// address layout — the paper's checking. Layout-correlated faults
	// (stuck address bits, DRAM row faults) corrupt main and checker
	// identically and escape.
	CheckLockstep CheckMode = iota
	// CheckDivergent replays a structurally decorrelated program variant
	// (shifted data segment, permuted register allocation) and compares
	// both lanes in a canonical, layout-independent domain. Requires
	// full-coverage mode, no Hash Mode, and single-hart workloads (the
	// checker keeps a private memory image, which cross-hart
	// communication would invalidate).
	CheckDivergent
)

func (m CheckMode) String() string {
	switch m {
	case CheckLockstep:
		return "lockstep"
	case CheckDivergent:
		return "divergent"
	default:
		return "invalid"
	}
}

// DivergentConfig tunes the decorrelated variant the divergent check mode
// builds for each workload.
type DivergentConfig struct {
	// DataShiftBytes relocates the variant's data segment (0 = automatic:
	// clears the original window and sets address bits at several
	// power-of-two strides). Must be 4KiB-aligned when set.
	DataShiftBytes uint64
	// RegSeed seeds the register-allocation permutation (0 behaves as 1).
	RegSeed uint64
}

// BlockExecMode selects the functional execution engine.
type BlockExecMode uint8

// Block-execution modes. The zero value defers to the process-wide
// default so existing configurations pick up the block engine without
// edits.
const (
	// BlockExecAuto defers to the runner's process default (on, unless
	// the CLI passed -block-exec=false).
	BlockExecAuto BlockExecMode = iota
	// BlockExecOn runs main-lane emulation and checker replay through
	// the block-compiled engine.
	BlockExecOn
	// BlockExecOff forces the per-instruction engine everywhere.
	BlockExecOff
)

func (m BlockExecMode) String() string {
	switch m {
	case BlockExecAuto:
		return "auto"
	case BlockExecOn:
		return "on"
	case BlockExecOff:
		return "off"
	default:
		return "invalid"
	}
}

// LaneMain overrides one lane's main-core model.
type LaneMain struct {
	CPU     cpu.Config
	FreqGHz float64
}

// CheckerSpec describes one group of identical checker cores assigned to
// each main core.
type CheckerSpec struct {
	CPU     cpu.Config
	FreqGHz float64
	Count   int
}

// RecoveryConfig controls the closed-loop error-recovery layer: on a
// detection the orchestrator re-replays the failing segment on alternate
// checkers, classifies the event with the forensics taxonomy (section V),
// feeds a live maintenance tracker, and quarantines implicated checkers.
type RecoveryConfig struct {
	// Enabled turns the recovery pipeline on.
	Enabled bool
	// MaxReplays bounds re-replays on alternate checkers per detection
	// (the retry budget; partners are chosen by rotation).
	MaxReplays int
	// ForensicRounds is how many repeat replays Investigate runs on the
	// suspect checker to separate persistent from intermittent faults.
	ForensicRounds int
	// Quarantine governs pool removal, probation and retirement.
	Quarantine QuarantinePolicy
}

// DefaultRecovery returns the recovery policy used by the campaign
// engine: two alternate replays, three forensic rounds, a 50µs base
// quarantine, three clean shadow checks to readmit, retirement after
// three offenses.
func DefaultRecovery() RecoveryConfig {
	return RecoveryConfig{
		Enabled:        true,
		MaxReplays:     2,
		ForensicRounds: 3,
		Quarantine: QuarantinePolicy{
			CooldownNS:      50_000,
			ProbationChecks: 3,
			MaxOffenses:     3,
		},
	}
}

// Validate checks the recovery policy.
func (r *RecoveryConfig) Validate() error {
	if !r.Enabled {
		return nil
	}
	if r.MaxReplays < 0 {
		return fmt.Errorf("core: negative recovery replay budget")
	}
	if r.ForensicRounds < 1 {
		return fmt.Errorf("core: recovery needs at least one forensic round")
	}
	q := r.Quarantine
	if q.CooldownNS <= 0 || q.ProbationChecks < 1 || q.MaxOffenses < 1 {
		return fmt.Errorf("core: invalid quarantine policy %+v", q)
	}
	return nil
}

// Config describes a complete ParaVerser system for one experiment.
type Config struct {
	// Main is the main-core model; every lane (hart) gets one.
	Main        cpu.Config
	MainFreqGHz float64
	// LaneMains, when non-empty, overrides the main-core model per lane
	// (heterogeneous compute, section VII-F). Lanes beyond the slice use
	// Main.
	LaneMains []LaneMain

	// Checkers is each main core's checker pool. Empty means checking
	// disabled (the no-check baseline).
	Checkers []CheckerSpec

	Mode     Mode
	HashMode bool
	// CheckMode selects lockstep (identical replay) or divergent
	// (decorrelated variant, canonical comparison) checking.
	CheckMode CheckMode
	// Divergent tunes the decorrelated variant (CheckDivergent only).
	Divergent DivergentConfig
	// Strategy selects the segment-verification strategy (strategy.go):
	// scheduling granularity and how checker acquisition couples to
	// main-core commit. The zero value (StrategyAuto) resolves from
	// CheckMode, so existing configurations keep their meaning. Unlike
	// the wall-clock knobs below, the strategy changes simulated
	// outcomes and is part of the run-cache fingerprint.
	Strategy Strategy
	// StrategyTuning tunes the chunk-replay and relaxed-start
	// strategies (zero values select the documented defaults).
	StrategyTuning StrategyConfig
	// EagerWake lets a checker start as log lines arrive rather than at
	// checkpoint end (section IV-H).
	EagerWake bool

	// TimeoutInsts is the checkpoint instruction timeout (5000).
	TimeoutInsts uint64
	// DedicatedLSLBytes, when non-zero, models a fixed dedicated SRAM
	// log (the 3KiB of prior work) instead of repurposing the checker's
	// L1 data cache.
	DedicatedLSLBytes int
	// CheckpointStallCycles is the main-core cost of taking a register
	// checkpoint (Table I: 8-cycle RCU latency).
	CheckpointStallCycles float64
	// CheckpointDrains makes each checkpoint serialise against the
	// committed state, draining the out-of-order window (the DSN18
	// baseline's commit-delaying register checkpointing). ParaVerser's
	// RCU copies at commit without delaying it, so this is false by
	// default and the cost is a front-end bubble.
	CheckpointDrains bool
	// InterruptIntervalInsts injects an interrupt checkpoint every N
	// instructions (0 = none), exercising the section IV-J path.
	InterruptIntervalInsts uint64
	// SamplePeriod, in opportunistic mode, checks only one segment in
	// every SamplePeriod even when checkers are free — the time-based
	// sampling of footnote 18 ([69]): hard faults are still caught over
	// time at a fraction of the checking energy. Zero or one disables
	// sampling.
	SamplePeriod int

	// CheckWorkers bounds how many segment verifications may run
	// concurrently with the main-lane simulation inside one Run — the
	// simulator-side analogue of the paper's own producer/consumer
	// overlap between main and checker cores. Zero or one runs every
	// check inline at its dispatch point. Results are byte-identical at
	// every setting: the pipelined engine snapshots all shared inputs at
	// dispatch and buffers all shared-state effects until a
	// protocol-defined join (pipeline.go), so CheckWorkers only changes
	// wall-clock time, never simulated outcomes. Runs with
	// Recovery.Enabled or a CheckerInterceptor always dispatch
	// synchronously through the legacy path.
	CheckWorkers int

	// TimeShards is the depth of parallel-in-time speculation when a
	// SpecCache is attached: how many segments a lane's functional
	// producer may emulate ahead of the deterministic timing stitch
	// (and the spacing of the in-run fallback snapshots). <= 1 produces
	// inline (sequential). Like CheckWorkers, this changes wall-clock
	// time only — stitched results are byte-identical at every setting
	// — so it is excluded from the run-cache fingerprint.
	TimeShards int
	// Spec, when non-nil, enables speculative segment emulation and
	// cross-run functional-stream memoisation over the given cache
	// (spec.go). Observability-and-performance only: every simulated
	// outcome is byte-identical with or without it, enforced by a
	// per-segment continuity check with sequential fallback. Excluded
	// from the run-cache fingerprint.
	Spec *SpecCache
	// BlockExec selects the block-compiled execution engine (basic-block
	// translation with batched effect delivery, emu/block.go). Like
	// CheckWorkers and TimeShards it changes wall-clock time only —
	// simulated outcomes are bit-identical on either engine, enforced by
	// the differential tests in core/blockexec_test.go — so it is
	// excluded from the run-cache fingerprint. The zero value
	// (BlockExecAuto) lets the experiments runner apply the process-wide
	// default, which is on.
	BlockExec BlockExecMode

	NoC    noc.Config
	Layout *noc.Layout
	// LSLTrafficOnNoC, when false, omits log pushes from the mesh load
	// (the "overhead without LSL NoC-traffic impact" bars of figs. 10
	// and 11). Checking still happens.
	LSLTrafficOnNoC bool

	L3      cachesim.Config
	L3HitNS float64
	DRAM    dram.Config

	// CheckerInterceptor, when non-nil, supplies a fault injector for
	// each checker core (the paper injects on the checker side so the
	// main run is undisturbed, section VII-B).
	CheckerInterceptor func(laneID, checkerID int) emu.Interceptor

	// MainInterceptor, when non-nil, supplies a fault injector for each
	// main lane's execution — the common-mode half of a layout-correlated
	// fault model (a stuck address bit or DRAM row fault lives in the
	// shared memory path, so it corrupts the main run too). Runs with a
	// main interceptor always dispatch checks synchronously.
	MainInterceptor func(laneID int) emu.Interceptor

	// Recovery configures the closed-loop error-recovery layer
	// (re-replay, forensics, maintenance tracking, quarantine).
	Recovery RecoveryConfig

	// Seed randomises the workload's non-repeatable instruction streams.
	Seed uint64

	// Trace, when non-nil, receives segment and check events from the run
	// (Chrome trace_event dump, obs.Trace). Observability only: it never
	// influences simulated outcomes, so it is excluded from the run-cache
	// fingerprint.
	Trace *obs.Trace
}

// DefaultConfig returns a full-coverage ParaVerser system with the given
// checker pool per main core and Table I system parameters.
func DefaultConfig(checkers ...CheckerSpec) Config {
	return Config{
		Main:                  cpu.X2(),
		MainFreqGHz:           3.0,
		Checkers:              checkers,
		Mode:                  ModeFullCoverage,
		EagerWake:             true,
		TimeoutInsts:          5000,
		CheckpointStallCycles: 8,
		NoC:                   noc.Fast(),
		Layout:                noc.DefaultLayout(),
		LSLTrafficOnNoC:       true,
		L3: cachesim.Config{Name: "L3", SizeBytes: 8 << 20, Ways: 8,
			LineBytes: 64, HitCycles: 25, MSHRs: 48},
		L3HitNS: 12.5, // 25 cycles at the 2GHz uncore clock
		DRAM:    dram.DDR4_2400(),
		Seed:    1,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Main.Validate(); err != nil {
		return err
	}
	if c.MainFreqGHz <= 0 {
		return fmt.Errorf("core: non-positive main frequency")
	}
	for i, lm := range c.LaneMains {
		if err := lm.CPU.Validate(); err != nil {
			return fmt.Errorf("core: lane %d: %w", i, err)
		}
		if lm.FreqGHz <= 0 || lm.FreqGHz > lm.CPU.NominalGHz+1e-9 {
			return fmt.Errorf("core: lane %d: frequency %.2f out of range", i, lm.FreqGHz)
		}
	}
	if len(c.Checkers) > 0 {
		if c.Mode != ModeFullCoverage && c.Mode != ModeOpportunistic {
			return fmt.Errorf("core: invalid mode %d", c.Mode)
		}
		if c.TimeoutInsts == 0 {
			return fmt.Errorf("core: checking requires a checkpoint timeout (Table I: 5000)")
		}
		for _, spec := range c.Checkers {
			if spec.Count <= 0 {
				return fmt.Errorf("core: checker spec with count %d", spec.Count)
			}
			if err := spec.CPU.Validate(); err != nil {
				return err
			}
			if spec.FreqGHz <= 0 || spec.FreqGHz > spec.CPU.NominalGHz+1e-9 {
				return fmt.Errorf("core: checker %q frequency %.2f out of range", spec.CPU.Name, spec.FreqGHz)
			}
		}
	}
	switch c.CheckMode {
	case CheckLockstep:
	case CheckDivergent:
		if len(c.Checkers) > 0 {
			if c.Mode != ModeFullCoverage {
				return fmt.Errorf("core: divergent checking requires full-coverage mode (opportunistic skips would desynchronise the checker's private memory)")
			}
			if c.HashMode {
				return fmt.Errorf("core: divergent checking is incompatible with Hash Mode (the digest absorbs raw addresses)")
			}
		}
		if c.Divergent.DataShiftBytes%4096 != 0 {
			return fmt.Errorf("core: divergent data shift %#x not 4KiB-aligned", c.Divergent.DataShiftBytes)
		}
	default:
		return fmt.Errorf("core: invalid check mode %d", c.CheckMode)
	}
	switch st := c.ResolvedStrategy(); st {
	case StrategyLockstep:
		if c.CheckMode != CheckLockstep {
			return fmt.Errorf("core: lockstep strategy requires lockstep check mode (got %v)", c.CheckMode)
		}
	case StrategyDivergent:
		if c.CheckMode != CheckDivergent {
			return fmt.Errorf("core: divergent strategy requires CheckMode CheckDivergent (the strategy replays the decorrelated plan)")
		}
	case StrategyChunkReplay:
		if c.CheckMode != CheckLockstep {
			return fmt.Errorf("core: chunk-replay strategy requires lockstep check mode (got %v)", c.CheckMode)
		}
		if len(c.Checkers) > 0 {
			if c.Mode != ModeFullCoverage {
				return fmt.Errorf("core: chunk-replay strategy requires full-coverage mode (chunks assume every segment is logged)")
			}
			if c.HashMode {
				return fmt.Errorf("core: chunk-replay strategy is incompatible with Hash Mode (digests close per checkpoint, not per chunk)")
			}
		}
	case StrategyRelaxed:
		if c.CheckMode != CheckLockstep {
			return fmt.Errorf("core: relaxed strategy requires lockstep check mode (got %v)", c.CheckMode)
		}
		if len(c.Checkers) > 0 && c.Mode != ModeFullCoverage {
			return fmt.Errorf("core: relaxed strategy requires full-coverage mode (opportunistic mode already decouples checking from commit)")
		}
	default:
		return fmt.Errorf("core: invalid checking strategy %d", c.Strategy)
	}
	if c.StrategyTuning.MaxLagSegments < 0 {
		return fmt.Errorf("core: negative relaxed-start lag bound %d", c.StrategyTuning.MaxLagSegments)
	}
	if c.TimeShards < 0 {
		return fmt.Errorf("core: negative time shards %d", c.TimeShards)
	}
	if c.BlockExec > BlockExecOff {
		return fmt.Errorf("core: invalid block-exec mode %d", c.BlockExec)
	}
	if err := c.Recovery.Validate(); err != nil {
		return err
	}
	if c.Recovery.Enabled && len(c.Checkers) == 0 {
		return fmt.Errorf("core: recovery requires a checker pool")
	}
	if c.Layout == nil {
		return fmt.Errorf("core: nil layout")
	}
	if err := c.Layout.Validate(c.NoC); err != nil {
		return err
	}
	if err := c.L3.Validate(); err != nil {
		return err
	}
	return nil
}

// Workload is one program to run under the system. A program with
// multiple entry points occupies one main core (lane) per hart, sharing
// memory (section IV-J).
type Workload struct {
	Name string
	Prog *isa.Program
	// MaxInsts bounds each hart's measured instructions (0 = run to
	// halt).
	MaxInsts int64
	// WarmupInsts executes (and checks) this many instructions per hart
	// before measurement begins — the analogue of the paper's
	// fast-forward phase. Caches, predictors and checker pipelines stay
	// warm; timing and coverage statistics reset at the boundary.
	WarmupInsts int64
}
