package core

import (
	"math"
	"strings"
	"testing"
)

// TestStrategyParseResolve pins the CLI name set and the Auto
// resolution: the zero value defers to CheckMode so pre-strategy
// configurations keep their meaning.
func TestStrategyParseResolve(t *testing.T) {
	for _, st := range []Strategy{StrategyAuto, StrategyLockstep, StrategyDivergent, StrategyChunkReplay, StrategyRelaxed} {
		got, err := ParseStrategy(st.String())
		if err != nil || got != st {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", st.String(), got, err, st)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy accepted an unknown name")
	}

	cfg := DefaultConfig(a510Checkers(2, 2.0))
	if got := cfg.ResolvedStrategy(); got != StrategyLockstep {
		t.Errorf("auto under lockstep check mode resolved to %v, want lockstep", got)
	}
	cfg.CheckMode = CheckDivergent
	if got := cfg.ResolvedStrategy(); got != StrategyDivergent {
		t.Errorf("auto under divergent check mode resolved to %v, want divergent", got)
	}
	cfg.Strategy = StrategyChunkReplay
	if got := cfg.ResolvedStrategy(); got != StrategyChunkReplay {
		t.Errorf("explicit strategy resolved to %v, want chunk-replay", got)
	}
}

// TestStrategyValidation is the table-driven incompatibility sweep: each
// strategy declares the check mode and operating mode it defines
// behaviour for, and Validate must reject the rest with a one-line
// error instead of running a meaningless simulation.
func TestStrategyValidation(t *testing.T) {
	cases := []struct {
		name    string
		mut     func(*Config)
		wantErr string
	}{
		{"auto-ok", func(c *Config) {}, ""},
		{"lockstep-ok", func(c *Config) { c.Strategy = StrategyLockstep }, ""},
		{"chunk-replay-ok", func(c *Config) { c.Strategy = StrategyChunkReplay }, ""},
		{"relaxed-ok", func(c *Config) { c.Strategy = StrategyRelaxed }, ""},
		{"divergent-ok", func(c *Config) {
			c.Strategy = StrategyDivergent
			c.CheckMode = CheckDivergent
		}, ""},
		{"lockstep-on-divergent-mode", func(c *Config) {
			c.Strategy = StrategyLockstep
			c.CheckMode = CheckDivergent
		}, "lockstep strategy requires lockstep check mode"},
		{"divergent-on-lockstep-mode", func(c *Config) {
			c.Strategy = StrategyDivergent
		}, "divergent strategy requires CheckMode CheckDivergent"},
		{"chunk-replay-on-divergent-mode", func(c *Config) {
			c.Strategy = StrategyChunkReplay
			c.CheckMode = CheckDivergent
		}, "chunk-replay strategy requires lockstep check mode"},
		{"chunk-replay-opportunistic", func(c *Config) {
			c.Strategy = StrategyChunkReplay
			c.Mode = ModeOpportunistic
		}, "chunk-replay strategy requires full-coverage mode"},
		{"chunk-replay-hash-mode", func(c *Config) {
			c.Strategy = StrategyChunkReplay
			c.HashMode = true
		}, "incompatible with Hash Mode"},
		{"relaxed-opportunistic", func(c *Config) {
			c.Strategy = StrategyRelaxed
			c.Mode = ModeOpportunistic
		}, "relaxed strategy requires full-coverage mode"},
		{"invalid-strategy-value", func(c *Config) {
			c.Strategy = Strategy(99)
		}, "invalid checking strategy"},
		{"negative-lag-bound", func(c *Config) {
			c.StrategyTuning.MaxLagSegments = -1
		}, "negative relaxed-start lag bound"},
		// Checker-less baselines never verify anything, so mode/hash
		// incompatibilities are moot for them.
		{"chunk-replay-no-checkers", func(c *Config) {
			c.Strategy = StrategyChunkReplay
			c.Mode = ModeOpportunistic
			c.Checkers = nil
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(a510Checkers(2, 2.0))
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// runStrategy runs cfg with the given strategy over a standard two-lane
// workload pair and returns the flattened result string.
func runStrategy(t *testing.T, st Strategy, mut func(*Config)) string {
	t.Helper()
	prog := mixedProgram(12000)
	cfg := DefaultConfig(a510Checkers(2, 2.0))
	cfg.Strategy = st
	if mut != nil {
		mut(&cfg)
	}
	ws := []Workload{
		{Name: "m0", Prog: prog, MaxInsts: 8000, WarmupInsts: 2000},
		{Name: "m1", Prog: prog},
	}
	res, err := Run(cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	return renderResult(res)
}

// TestLockstepStrategyExplicitMatchesAuto is the refactor's
// byte-identity anchor: an explicit StrategyLockstep run must render
// exactly as the Auto default, which in turn is pinned against the
// pre-strategy engine by the worker-count and block-exec invariance
// suites.
func TestLockstepStrategyExplicitMatchesAuto(t *testing.T) {
	auto := runStrategy(t, StrategyAuto, nil)
	lock := runStrategy(t, StrategyLockstep, nil)
	if auto != lock {
		t.Errorf("explicit lockstep diverged from auto:\n--- auto ---\n%s\n--- lockstep ---\n%s", auto, lock)
	}
}

// TestStrategyWorkerAndShardInvariance extends the determinism gates to
// the new strategies: chunk-replay and relaxed-start runs must be
// byte-identical at every CheckWorkers setting and with the
// parallel-in-time machinery attached (neither strategy is
// pipeline-eligible, so both knobs must be inert — this pins that no
// speculative or overlapped path engages by accident).
func TestStrategyWorkerAndShardInvariance(t *testing.T) {
	for _, st := range []Strategy{StrategyChunkReplay, StrategyRelaxed} {
		t.Run(st.String(), func(t *testing.T) {
			base := runStrategy(t, st, nil)
			for _, workers := range []int{2, 8} {
				if got := runStrategy(t, st, func(c *Config) { c.CheckWorkers = workers }); got != base {
					t.Errorf("CheckWorkers=%d diverged from sequential:\n--- base ---\n%s\n--- got ---\n%s", workers, base, got)
				}
			}
			cache := NewSpecCache()
			for i := 0; i < 2; i++ {
				got := runStrategy(t, st, func(c *Config) { c.Spec = cache; c.TimeShards = 4 })
				if got != base {
					t.Errorf("spec run %d diverged from sequential baseline", i)
				}
			}
		})
	}
}

// TestChunkReplayCleanAndCovered asserts the chunk-replay contract on a
// clean run: full coverage, zero detections, batching actually
// happening (many segments per chunk check), and stall-free segment
// boundaries — the strategy only ever stalls at chunk grain.
func TestChunkReplayCleanAndCovered(t *testing.T) {
	cfg := DefaultConfig(a510Checkers(2, 2.0))
	cfg.Strategy = StrategyChunkReplay
	res, err := Run(cfg, []Workload{{Name: "mixed", Prog: mixedProgram(20000)}})
	if err != nil {
		t.Fatal(err)
	}
	lane := res.Lanes[0]
	if lane.Detections != 0 {
		t.Fatalf("clean chunk-replay run raised %d detections: %v", lane.Detections, lane.SampleMismatches)
	}
	if got := lane.Coverage(); got != 1.0 {
		t.Errorf("full-coverage chunk-replay run covered %.3f, want 1.0", got)
	}
	m := res.Metrics
	if m.ChunkChecks == 0 || m.ChunkSegments == 0 {
		t.Fatalf("no chunk activity recorded: checks=%d segments=%d", m.ChunkChecks, m.ChunkSegments)
	}
	if m.ChunkChecks >= m.ChunkSegments {
		t.Errorf("chunking never batched: %d checks over %d segments", m.ChunkChecks, m.ChunkSegments)
	}
	var ckInsts uint64
	for _, ck := range res.CheckersByLane[0] {
		ckInsts += ck.Insts
	}
	if ckInsts != lane.CheckedInsts {
		t.Errorf("checkers verified %d insts, main checked %d", ckInsts, lane.CheckedInsts)
	}
}

// TestChunkReplayDetectionLatency pins the strategy's stated trade: a
// persistent checker fault is still detected, but at chunk granularity,
// so the first detection can come no earlier than under per-segment
// lockstep on the identical run.
func TestChunkReplayDetectionLatency(t *testing.T) {
	run := func(st Strategy) *LaneResult {
		cfg := DefaultConfig(a510Checkers(2, 2.0))
		cfg.Strategy = st
		withCheckerFault(&cfg, 0, 3)
		res, err := Run(cfg, []Workload{{Name: "mixed", Prog: mixedProgram(20000)}})
		if err != nil {
			t.Fatal(err)
		}
		return &res.Lanes[0]
	}
	lock := run(StrategyLockstep)
	chunk := run(StrategyChunkReplay)
	if lock.Detections == 0 || chunk.Detections == 0 {
		t.Fatalf("fault undetected (lockstep=%d chunk=%d detections); test is vacuous",
			lock.Detections, chunk.Detections)
	}
	if chunk.FirstDetectionInst < lock.FirstDetectionInst {
		t.Errorf("chunk-replay detected at inst %d, before lockstep's %d — chunk granularity cannot beat per-segment checking",
			chunk.FirstDetectionInst, lock.FirstDetectionInst)
	}
}

// TestRelaxedReducesStalls pins relaxed start's purpose: against an
// undersized pool it must defer checks instead of stalling, spending
// strictly less main-core stall time than lockstep on the identical
// run while keeping full coverage and clean verification.
func TestRelaxedReducesStalls(t *testing.T) {
	run := func(st Strategy) (*LaneResult, uint64) {
		cfg := DefaultConfig(a510Checkers(1, 1.0)) // deliberately slow, single checker
		cfg.Strategy = st
		res, err := Run(cfg, []Workload{{Name: "mixed", Prog: mixedProgram(16000)}})
		if err != nil {
			t.Fatal(err)
		}
		return &res.Lanes[0], res.Metrics.RelaxedDeferred
	}
	lock, lockDef := run(StrategyLockstep)
	rel, relDef := run(StrategyRelaxed)
	if lockDef != 0 {
		t.Errorf("lockstep run recorded %d relaxed deferrals", lockDef)
	}
	if relDef == 0 {
		t.Fatal("relaxed run never deferred a check; pool pressure too low, test is vacuous")
	}
	if lock.StallNS == 0 {
		t.Fatal("lockstep run never stalled; pool pressure too low, test is vacuous")
	}
	if rel.StallNS >= lock.StallNS {
		t.Errorf("relaxed stalled %.0fns, lockstep %.0fns; deferral bought nothing", rel.StallNS, lock.StallNS)
	}
	if rel.Detections != 0 {
		t.Errorf("clean relaxed run raised %d detections", rel.Detections)
	}
	if got := rel.Coverage(); got != 1.0 {
		t.Errorf("relaxed run covered %.3f, want 1.0", got)
	}
}

// TestChunkReplayEmptyPoolDegrades drives the chunk accumulator into
// the quarantine-emptied-pool path: the pending chunk must be
// reclassified into the degraded counters (not silently counted as
// checked), and every ratio stays finite — the satellite guard on
// Result/LaneResult accounting.
func TestChunkReplayEmptyPoolDegrades(t *testing.T) {
	cfg := DefaultConfig(a510Checkers(1, 2.0))
	cfg.Strategy = StrategyChunkReplay
	cfg.Recovery = DefaultRecovery()
	cfg.Recovery.Quarantine.CooldownNS = 1e12 // never readmit within the run
	withCheckerFault(&cfg, 0, 3)
	res, err := Run(cfg, []Workload{{Name: "mixed", Prog: mixedProgram(20000)}})
	if err != nil {
		t.Fatal(err)
	}
	lane := res.Lanes[0]
	if lane.Detections == 0 {
		t.Fatal("fault never detected")
	}
	if lane.Recovery.Quarantines == 0 {
		t.Fatal("checker never quarantined")
	}
	if lane.DegradedSegments == 0 || lane.DegradedInsts == 0 {
		t.Errorf("no degraded window accounted: %+v", lane)
	}
	if got := lane.Coverage(); got >= 1.0 {
		t.Errorf("coverage %.3f with an empty pool, want < 1.0", got)
	}
	for name, v := range map[string]float64{
		"lane coverage":   lane.Coverage(),
		"lane degraded":   lane.DegradedRatio(),
		"lane time share": lane.DegradedTimeShare(),
		"result coverage": res.Coverage(),
		"result degraded": res.DegradedRatio(),
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
			t.Errorf("%s = %v, want a finite ratio in [0,1]", name, v)
		}
	}
	if lane.CheckedInsts+lane.UncheckedInsts != lane.Insts {
		t.Errorf("checked %d + unchecked %d != executed %d after chunk reclassification",
			lane.CheckedInsts, lane.UncheckedInsts, lane.Insts)
	}
}

// TestDegradedRatioGuards is the satellite table: empty and degenerate
// Result/LaneResult values must report 0, never NaN or a division
// panic.
func TestDegradedRatioGuards(t *testing.T) {
	cases := []struct {
		name string
		lane LaneResult
		want float64
	}{
		{"zero lane", LaneResult{}, 0},
		{"zero insts nonzero degraded", LaneResult{DegradedInsts: 5, DegradedNS: 10}, 0},
		{"half degraded", LaneResult{Insts: 10, DegradedInsts: 5}, 0.5},
	}
	for _, tc := range cases {
		if got := tc.lane.DegradedRatio(); got != tc.want || math.IsNaN(got) {
			t.Errorf("%s: DegradedRatio() = %v, want %v", tc.name, got, tc.want)
		}
	}
	zero := LaneResult{DegradedNS: 3}
	if got := zero.DegradedTimeShare(); got != 0 {
		t.Errorf("zero-duration lane DegradedTimeShare() = %v, want 0", got)
	}
	half := LaneResult{TimeNS: 10, DegradedNS: 5}
	if got := half.DegradedTimeShare(); got != 0.5 {
		t.Errorf("DegradedTimeShare() = %v, want 0.5", got)
	}
	for _, tc := range []struct {
		name string
		res  Result
		want float64
	}{
		{"no lanes", Result{}, 0},
		{"empty lanes", Result{Lanes: []LaneResult{{}, {}}}, 0},
		{"aggregated", Result{Lanes: []LaneResult{{Insts: 10, DegradedInsts: 5}, {Insts: 10}}}, 0.25},
	} {
		if got := tc.res.DegradedRatio(); got != tc.want || math.IsNaN(got) {
			t.Errorf("%s: Result.DegradedRatio() = %v, want %v", tc.name, got, tc.want)
		}
		if got := tc.res.Coverage(); math.IsNaN(got) {
			t.Errorf("%s: Result.Coverage() = NaN", tc.name)
		}
	}
}

// BenchmarkCheckSegmentChunkReplay measures the chunk-accumulation hot
// path: folding one closed segment's entries into the per-lane chunk
// arenas. Steady state must not allocate — the arenas keep their
// capacity across chunks — which the zero-alloc CI gate enforces via
// the benchmark's allocation report.
func BenchmarkCheckSegmentChunkReplay(b *testing.B) {
	prog, seg := benchSegment(b)
	_ = prog
	c := &chunkState{
		entries: make([]Entry, 0, 4*1024),
		ops:     make([]MemRec, 0, 4*1024),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.reset()
		for j := range seg.Entries {
			o := len(c.ops)
			c.ops = append(c.ops, seg.Entries[j].Ops...)
			e := seg.Entries[j]
			e.Ops = c.ops[o:len(c.ops):len(c.ops)]
			c.entries = append(c.entries, e)
		}
		c.insts += seg.Insts
	}
}

// TestChunkAccumulateZeroAlloc pins the same property as an assertion:
// steady-state chunk accumulation through warm arenas performs zero
// heap allocations.
func TestChunkAccumulateZeroAlloc(t *testing.T) {
	prog := mixedProgram(1 << 30)
	_ = prog
	cfg := DefaultConfig(a510Checkers(2, 2.0))
	cfg.Strategy = StrategyChunkReplay
	// Warm the arenas with one run-sized accumulation, then measure.
	seg := &Segment{Insts: 100, Entries: []Entry{{Ops: []MemRec{{}, {}}}, {Ops: []MemRec{{}}}}}
	c := &chunkState{
		entries: make([]Entry, 0, 64),
		ops:     make([]MemRec, 0, 64),
	}
	allocs := testing.AllocsPerRun(50, func() {
		c.reset()
		for j := range seg.Entries {
			o := len(c.ops)
			c.ops = append(c.ops, seg.Entries[j].Ops...)
			e := seg.Entries[j]
			e.Ops = c.ops[o:len(c.ops):len(c.ops)]
			c.entries = append(c.entries, e)
		}
	})
	if allocs != 0 {
		t.Errorf("chunk accumulation allocated %.1f times per segment, want 0", allocs)
	}
}
