package core

import (
	"testing"

	"paraverser/internal/isa"
)

// flakyInterceptor corrupts results on a duty cycle, modelling an
// intermittent fault.
type flakyInterceptor struct {
	period int
	n      int
}

func (f *flakyInterceptor) Result(_ isa.Inst, class isa.Class, _ bool, v uint64) uint64 {
	if class != isa.ClassIntALU {
		return v
	}
	f.n++
	if f.n%f.period == 0 {
		return v ^ 1<<9
	}
	return v
}

func (f *flakyInterceptor) Address(_ isa.Inst, a uint64) uint64 { return a }

func TestInvestigateCheckerPersistent(t *testing.T) {
	prog := workProgram()
	segs := captureSegments(t, prog, 60, false)
	intc := &stuckBitInterceptor{class: isa.ClassIntALU, bit: 9}
	// Find a segment the fault actually breaks.
	for _, seg := range segs {
		if !CheckSegment(prog, seg, false, intc, nil).Detected() {
			continue
		}
		rep := Investigate(prog, seg, false, intc, 5)
		if rep.Diagnosis != CheckerPersistent {
			t.Fatalf("diagnosis %v, want checker-persistent (%+v)", rep.Diagnosis, rep)
		}
		if rep.Failures != 5 || !rep.ReferenceOK {
			t.Errorf("report %+v", rep)
		}
		return
	}
	t.Fatal("fault never detected in any segment")
}

func TestInvestigateMainSuspected(t *testing.T) {
	prog := workProgram()
	segs := captureSegments(t, prog, 60, false)
	seg := segs[0]
	// Corrupt the log itself: the error came from the main side, so even
	// a fault-free replay fails.
	for i := range seg.Entries {
		if seg.Entries[i].Kind == EntryStore {
			seg.Entries[i].Ops[0].Data ^= 4
			break
		}
	}
	rep := Investigate(prog, seg, false, nil, 3)
	if rep.Diagnosis != MainSuspected {
		t.Fatalf("diagnosis %v, want main-suspected (%+v)", rep.Diagnosis, rep)
	}
}

func TestInvestigateNotReproduced(t *testing.T) {
	prog := workProgram()
	segs := captureSegments(t, prog, 60, false)
	rep := Investigate(prog, segs[0], false, nil, 3)
	if rep.Diagnosis != NotReproduced {
		t.Fatalf("diagnosis %v, want not-reproduced for a clean segment", rep.Diagnosis)
	}
}

func TestInvestigateCheckerIntermittent(t *testing.T) {
	prog := workProgram()
	segs := captureSegments(t, prog, 60, false)
	// A fault firing on a long duty cycle fails only some replays
	// (interceptor state carries across replays, as silicon would).
	intc := &flakyInterceptor{period: 97}
	found := false
	for _, seg := range segs {
		rep := Investigate(prog, seg, false, intc, 7)
		if rep.Diagnosis == CheckerIntermittent {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no segment diagnosed intermittent; duty cycle never straddled replays")
	}
}

func TestDiagnosisStrings(t *testing.T) {
	for d := CheckerPersistent; d <= NotReproduced; d++ {
		if d.String() == "invalid" {
			t.Errorf("diagnosis %d has no name", d)
		}
	}
}

func TestSamplePeriodReducesCheckedFraction(t *testing.T) {
	prog := mixedProgram(30000)
	full := DefaultConfig(x2Checkers(1, 3.0))
	full.Mode = ModeOpportunistic
	sampled := DefaultConfig(x2Checkers(1, 3.0))
	sampled.Mode = ModeOpportunistic
	sampled.SamplePeriod = 4

	rf, err := Run(full, []Workload{{Name: "m", Prog: prog}})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(sampled, []Workload{{Name: "m", Prog: prog}})
	if err != nil {
		t.Fatal(err)
	}
	cf, cs := rf.Lanes[0].Coverage(), rs.Lanes[0].Coverage()
	if cs >= cf {
		t.Errorf("sampling coverage %.3f not below full opportunistic %.3f", cs, cf)
	}
	if cs < 0.1 || cs > 0.6 {
		t.Errorf("1-in-4 sampling coverage %.3f, want roughly a quarter", cs)
	}
	if rs.Lanes[0].Detections != 0 {
		t.Error("clean sampled run detected errors")
	}
	if rs.Lanes[0].StallNS != 0 {
		t.Error("sampling mode stalled")
	}
}
