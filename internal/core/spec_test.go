package core

import (
	"testing"

	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

// checkSegmentFixture executes 2000 instructions of the mixed program
// and packages them as one verifiable segment.
func checkSegmentFixture(t *testing.T) (*isa.Program, *Segment) {
	t.Helper()
	prog := mixedProgram(10000)
	mach, err := emu.NewMachine(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	hart := mach.Harts[0]
	seg := &Segment{Hart: 0, Start: hart.State}
	var eff emu.Effect
	for seg.Insts < 2000 {
		if err := mach.StepHart(0, &eff); err != nil {
			t.Fatal(err)
		}
		seg.Insts++
		if e, ok := EntryFromEffect(&eff); ok {
			seg.Entries = append(seg.Entries, e)
		}
	}
	seg.End = hart.State
	return prog, seg
}

// runSpec runs cfg over ws and returns the flattened result string.
func runSpec(t *testing.T, cfg Config, ws []Workload) string {
	t.Helper()
	res, err := Run(cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	return renderResult(res)
}

// TestSpecRecordReplayInvariance is the determinism contract of the
// parallel-in-time engine: with a speculation cache attached, both the
// recording run (speculative producer ahead of the timing stitch) and
// every subsequent replay run (stream served from the cache) must
// produce results byte-identical to the sequential engine, across wake
// policies, hash mode and unchecked operation.
func TestSpecRecordReplayInvariance(t *testing.T) {
	prog := mixedProgram(12000)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"full-coverage-eager", func(c *Config) {}},
		{"full-coverage-late-wake", func(c *Config) { c.EagerWake = false }},
		{"hash-mode", func(c *Config) { c.HashMode = true }},
		{"no-checking", func(c *Config) { c.Checkers = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ws := []Workload{
				{Name: "m0", Prog: prog, MaxInsts: 8000, WarmupInsts: 2000},
				{Name: "m1", Prog: prog},
			}
			cfg := DefaultConfig(a510Checkers(2, 2.0))
			tc.mut(&cfg)
			base := runSpec(t, cfg, ws)

			cache := NewSpecCache()
			cfg.Spec = cache
			cfg.TimeShards = 4
			for i := 0; i < 3; i++ {
				if got := runSpec(t, cfg, ws); got != base {
					t.Fatalf("spec run %d diverged from sequential baseline:\n--- base ---\n%s\n--- got ---\n%s", i, base, got)
				}
			}
			st := cache.Stats()
			if st.StreamsRecorded == 0 {
				t.Error("no stream was recorded")
			}
			if st.StreamsReplayed == 0 {
				t.Error("no stream was replayed")
			}
			if st.SpecAborts != 0 {
				t.Errorf("clean runs raised %d speculation aborts", st.SpecAborts)
			}
		})
	}
}

// TestSpecTimeShardInvariance pins the shard-count contract: TimeShards
// changes wall-clock behaviour only. Results must be byte-identical to
// the sequential engine at every shard depth and worker count, both
// from a fresh cache (record mode) and from a shared one (replay mode).
func TestSpecTimeShardInvariance(t *testing.T) {
	prog := mixedProgram(12000)
	ws := []Workload{
		{Name: "m0", Prog: prog, MaxInsts: 8000, WarmupInsts: 2000},
		{Name: "m1", Prog: prog},
	}
	cfg := DefaultConfig(a510Checkers(2, 2.0))
	base := runSpec(t, cfg, ws)

	shared := NewSpecCache()
	for _, shards := range []int{1, 2, 8} {
		for _, workers := range []int{1, 4} {
			cfg := DefaultConfig(a510Checkers(2, 2.0))
			cfg.CheckWorkers = workers
			cfg.TimeShards = shards

			cfg.Spec = NewSpecCache()
			if got := runSpec(t, cfg, ws); got != base {
				t.Errorf("fresh cache, TimeShards=%d CheckWorkers=%d diverged from baseline", shards, workers)
			}
			cfg.Spec = shared
			if got := runSpec(t, cfg, ws); got != base {
				t.Errorf("shared cache, TimeShards=%d CheckWorkers=%d diverged from baseline", shards, workers)
			}
		}
	}
	if st := shared.Stats(); st.StreamsReplayed == 0 {
		t.Error("shared cache never replayed a stream across shard counts")
	}
}

// TestSpecCrossFrequencyStreamReuse exercises the cross-run memoization
// the cache exists for: runs differing only in timing-side parameters
// (main frequency here) share one recorded functional stream, and each
// still matches its own sequential baseline exactly.
func TestSpecCrossFrequencyStreamReuse(t *testing.T) {
	prog := mixedProgram(12000)
	ws := []Workload{{Name: "m0", Prog: prog, MaxInsts: 8000, WarmupInsts: 2000}}
	cache := NewSpecCache()
	for _, freq := range []float64{2.0, 1.25, 3.0} {
		cfg := DefaultConfig(a510Checkers(2, 2.0))
		cfg.MainFreqGHz = freq
		base := runSpec(t, cfg, ws)
		cfg.Spec = cache
		cfg.TimeShards = 4
		if got := runSpec(t, cfg, ws); got != base {
			t.Errorf("MainFreqGHz=%v: spec run diverged from its sequential baseline", freq)
		}
	}
	st := cache.Stats()
	if st.StreamsRecorded != 1 {
		t.Errorf("recorded %d streams across the frequency sweep, want 1 (timing changes must not split the stream)", st.StreamsRecorded)
	}
	if st.StreamsReplayed < 2 {
		t.Errorf("replayed %d streams, want >= 2 (the later frequencies must reuse the first recording)", st.StreamsReplayed)
	}
	if st.MicroReplayed < 2 {
		t.Errorf("replayed %d micro traces, want >= 2 (same main geometry at every frequency)", st.MicroReplayed)
	}
}

// TestSpecCrossConfigStreamReuse pins the payoff of the determinism
// factorization: the instruction sequence depends only on (program, hart,
// seed, budget, warmup), while checking configuration shapes segment
// boundaries — which replay re-cuts live. One stream recorded under
// full-coverage checking must therefore serve hash mode, opportunistic
// checking, a dedicated SRAM log and unchecked operation, each matching
// its own sequential baseline, without a second recording.
func TestSpecCrossConfigStreamReuse(t *testing.T) {
	prog := mixedProgram(12000)
	ws := []Workload{{Name: "m0", Prog: prog, MaxInsts: 8000, WarmupInsts: 2000}}

	cache := NewSpecCache()
	rec := DefaultConfig(a510Checkers(2, 2.0))
	recBase := runSpec(t, rec, ws)
	rec.Spec = cache
	rec.TimeShards = 4
	if got := runSpec(t, rec, ws); got != recBase {
		t.Fatal("recording run diverged from its sequential baseline")
	}

	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"hash-mode", func(c *Config) { c.HashMode = true }},
		{"opportunistic", func(c *Config) { c.Mode = ModeOpportunistic }},
		{"opportunistic-sampled", func(c *Config) { c.Mode = ModeOpportunistic; c.SamplePeriod = 3 }},
		{"dedicated-lsl", func(c *Config) { c.DedicatedLSLBytes = 3 << 10 }},
		{"unchecked", func(c *Config) { c.Checkers = nil }},
	}
	for _, v := range variants {
		cfg := DefaultConfig(a510Checkers(2, 2.0))
		v.mut(&cfg)
		base := runSpec(t, cfg, ws)
		cfg.Spec = cache
		cfg.TimeShards = 4
		if got := runSpec(t, cfg, ws); got != base {
			t.Errorf("%s: replay from the full-coverage recording diverged from its sequential baseline", v.name)
		}
	}
	st := cache.Stats()
	if st.StreamsRecorded != 1 {
		t.Errorf("recorded %d streams across the config sweep, want 1 (boundary-shaping config must not split the stream)", st.StreamsRecorded)
	}
	if st.StreamsReplayed < uint64(len(variants)) {
		t.Errorf("replayed %d streams, want >= %d (every variant must reuse the one recording)", st.StreamsReplayed, len(variants))
	}
	if st.SpecAborts != 0 {
		t.Errorf("clean cross-config replays raised %d speculation aborts", st.SpecAborts)
	}
}

// TestSpecReplayDivergenceFallsBack forces a continuity-check failure on
// a cached stream: the run must abort speculation, rerun sequentially,
// and still produce the baseline result; the broken stream must be
// evicted so the next run re-records rather than re-aborting.
func TestSpecReplayDivergenceFallsBack(t *testing.T) {
	prog := mixedProgram(12000)
	ws := []Workload{{Name: "m0", Prog: prog, MaxInsts: 8000, WarmupInsts: 2000}}
	cfg := DefaultConfig(a510Checkers(2, 2.0))
	// Short interrupt interval: plenty of segments for mid-stream
	// corruption.
	cfg.InterruptIntervalInsts = 500
	base := runSpec(t, cfg, ws)

	cache := NewSpecCache()
	cfg.Spec = cache
	cfg.TimeShards = 4
	if got := runSpec(t, cfg, ws); got != base {
		t.Fatal("clean record run diverged from baseline")
	}

	// Corrupt the third replayed segment's entry state. Replay-mode
	// divergence has no in-run fallback (the main core's caches were fed
	// from the stream, not live execution), so this must escalate to the
	// run-level rerun.
	corrupted := 0
	cache.testCorrupt = func(laneIdx, seq int, rs *recSeg) {
		if seq == 3 {
			corrupted++
			rs.start.X[5] ^= 1
		}
	}
	if got := runSpec(t, cfg, ws); got != base {
		t.Fatal("corrupted replay did not fall back to the sequential result")
	}
	if corrupted == 0 {
		t.Fatal("corruption hook never fired; the stream has too few segments for this test")
	}
	if st := cache.Stats(); st.SpecAborts == 0 {
		t.Error("no speculation abort was counted")
	}

	// The broken stream must be gone: a clean run re-records.
	cache.testCorrupt = nil
	before := cache.Stats().StreamsRecorded
	if got := runSpec(t, cfg, ws); got != base {
		t.Fatal("post-eviction run diverged from baseline")
	}
	if after := cache.Stats().StreamsRecorded; after != before+1 {
		t.Errorf("evicted stream was not re-recorded (recorded %d -> %d)", before, after)
	}
}

// TestSpecRecordDivergenceInRunFallback forces a continuity failure on a
// segment that carries a machine snapshot during a recording run: the
// lane must rewind to the committed boundary and continue on the legacy
// sequential path inside the same run, still matching the baseline; the
// abandoned recording must not be published.
func TestSpecRecordDivergenceInRunFallback(t *testing.T) {
	prog := mixedProgram(12000)
	ws := []Workload{{Name: "m0", Prog: prog, MaxInsts: 8000, WarmupInsts: 2000}}
	cfg := DefaultConfig(a510Checkers(2, 2.0))
	cfg.InterruptIntervalInsts = 500
	base := runSpec(t, cfg, ws)

	cache := NewSpecCache()
	cfg.Spec = cache
	cfg.TimeShards = 4
	corrupted := 0
	cache.testCorrupt = func(laneIdx, seq int, rs *recSeg) {
		// TimeShards=4 snapshots every fourth produced segment; corrupt
		// the entry state of one such segment while its snapshot still
		// matches the committed boundary.
		if seq == 8 && rs.snap != nil && corrupted == 0 {
			corrupted++
			rs.start.X[6] ^= 2
		}
	}
	if got := runSpec(t, cfg, ws); got != base {
		t.Fatal("in-run fallback diverged from the sequential result")
	}
	if corrupted == 0 {
		t.Fatal("corruption hook never hit a snapshot-bearing segment; adjust the test's seq")
	}
	st := cache.Stats()
	if st.SpecAborts == 0 {
		t.Error("no speculation abort was counted")
	}
	if st.StreamsRecorded != 0 {
		t.Error("an aborted recording was published")
	}
}

// TestCheckSegmentZeroAlloc pins the hot-path property the pipelined
// engine relies on: steady-state segment verification through a held
// CheckScratch performs zero heap allocations.
func TestCheckSegmentZeroAlloc(t *testing.T) {
	prog, seg := checkSegmentFixture(t)
	var cs CheckScratch
	allocs := testing.AllocsPerRun(20, func() {
		if res := cs.CheckSegment(prog, seg, false, nil, nil); res.Detected() {
			t.Fatalf("fixture segment failed verification: %+v", res.Mismatches)
		}
	})
	if allocs != 0 {
		t.Errorf("CheckSegment allocated %.1f times per run, want 0", allocs)
	}
}
