package core

import (
	"crypto/sha256"
	"encoding/binary"
	"math"

	"paraverser/internal/emu"
)

// RCUBytes is the storage of one register checkpoint: PC + 32 integer +
// 32 FP 64-bit registers plus tags, the paper's 776B RCU (section VII-E).
const RCUBytes = 776

// RCU is the Register Checkpointing Unit (section IV-D). On a main core
// it takes start and end copies of the architectural register file and
// forwards them to the checker; on a checker core it stores the end
// checkpoint and compares it against the checker's own architectural
// state when the instruction counter fires. In Hash Mode it also owns the
// running SHA-256 over verification metadata.
type RCU struct {
	hashMode bool
	hasher   hashState
}

// hashState accumulates the Hash Mode digest incrementally.
type hashState struct {
	buf []byte
}

func (h *hashState) add(words ...uint64) {
	var b [8]byte
	for _, w := range words {
		binary.LittleEndian.PutUint64(b[:], w)
		h.buf = append(h.buf, b[:]...)
	}
}

func (h *hashState) sum() [32]byte {
	s := sha256.Sum256(h.buf)
	h.buf = h.buf[:0]
	return s
}

// NewRCU returns a unit; hashMode enables digest accumulation.
func NewRCU(hashMode bool) *RCU { return &RCU{hashMode: hashMode} }

// Checkpoint copies the architectural register file (the start or end
// checkpoint sent over the NoC).
func (r *RCU) Checkpoint(st *emu.ArchState) emu.ArchState { return *st }

// Compare checks a checker core's architectural state against the stored
// end checkpoint, returning true when they match. This is the induction
// step: segment N is correct if its loads/stores matched and its end
// register file equals the start file of segment N+1 (section III-B).
// Hardware compares register bits, so FP registers compare bitwise: two
// identical NaNs match, +0 and -0 do not.
func (r *RCU) Compare(end *emu.ArchState, got *emu.ArchState) bool {
	if end.PC != got.PC || end.X != got.X {
		return false
	}
	for i := range end.F {
		if math.Float64bits(end.F[i]) != math.Float64bits(got.F[i]) {
			return false
		}
	}
	return true
}

// AbsorbVerification folds verification metadata (address, size, stored
// data — the data NOT shipped in Hash Mode) into the running digest.
func (r *RCU) AbsorbVerification(op MemRec) {
	if !r.hashMode {
		return
	}
	word := uint64(op.Size)
	if !op.Load {
		word |= 1 << 8
	}
	if op.Load {
		r.hasher.add(op.Addr, word)
	} else {
		r.hasher.add(op.Addr, word, op.Data)
	}
}

// Digest finalises and resets the running hash (computed at checkpoint
// end and sent alongside the register checkpoint, section IV-I).
func (r *RCU) Digest() [32]byte { return r.hasher.sum() }

// HashMode reports whether the unit accumulates digests.
func (r *RCU) HashMode() bool { return r.hashMode }

// CheckpointTransferBytes returns the NoC payload of one register
// checkpoint push (plus the 32-byte digest in Hash Mode).
func (r *RCU) CheckpointTransferBytes() int {
	if r.hashMode {
		return RCUBytes + 32
	}
	return RCUBytes
}
