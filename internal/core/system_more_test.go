package core

import (
	"math"
	"testing"

	"paraverser/internal/asm"
	"paraverser/internal/cpu"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
)

func TestHashModeWithInterrupts(t *testing.T) {
	// Hash Mode digests must stay consistent across interrupt-forced
	// checkpoint boundaries (the digest resets per segment).
	cfg := DefaultConfig(a510Checkers(2, 2.0))
	cfg.HashMode = true
	cfg.InterruptIntervalInsts = 333
	res, err := Run(cfg, []Workload{{Name: "m", Prog: mixedProgram(15000)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lanes[0].Detections != 0 {
		t.Fatalf("clean hash+interrupt run detected: %v", res.Lanes[0].SampleMismatches)
	}
	if res.Lanes[0].Coverage() != 1.0 {
		t.Error("coverage below 1 in full-coverage mode")
	}
}

func TestHashModeMultiHart(t *testing.T) {
	// Cross-thread SWP traffic under Hash Mode: both the replay payloads
	// and the digests must line up per hart.
	prog := workBuilderTwoHarts()
	cfg := DefaultConfig(a510Checkers(2, 2.0))
	cfg.HashMode = true
	res, err := Run(cfg, []Workload{{Name: "mh", Prog: prog}})
	if err != nil {
		t.Fatal(err)
	}
	for i, lane := range res.Lanes {
		if lane.Detections != 0 {
			t.Errorf("hart %d: %v", i, lane.SampleMismatches)
		}
	}
}

// workBuilderTwoHarts builds a two-hart SWP-exchanging program.
func workBuilderTwoHarts() *isa.Program { return buildTwoHartSwap() }

// buildTwoHartSwap builds two harts racing SWPs on one shared word.
func buildTwoHartSwap() *isa.Program {
	b := asm.New("swap2")
	shared := b.Word64(0)
	for tid := int64(1); tid <= 2; tid++ {
		lbl := "loop" + string(rune('A'+tid))
		b.Entry()
		b.Li(5, int64(isa.DefaultDataBase+shared))
		b.Li(20, 0)
		b.Li(21, 1500)
		b.Label(lbl)
		b.Li(6, tid)
		b.Swp(7, 5, 6)
		b.Add(8, 8, 7)
		b.Addi(20, 20, 1)
		b.Blt(20, 21, lbl)
		b.Halt()
	}
	return b.MustBuild()
}

func TestSamplingStillDetectsHardFaults(t *testing.T) {
	// Time-based sampling reduces coverage but a persistent hard fault on
	// the checker is still caught, just later (footnote 18's premise).
	cfg := DefaultConfig(a510Checkers(2, 2.0))
	cfg.Mode = ModeOpportunistic
	cfg.SamplePeriod = 5
	cfg.CheckerInterceptor = func(_, ckID int) emu.Interceptor {
		if ckID == 0 {
			return &stuckBitInterceptor{class: isa.ClassIntALU, bit: 13}
		}
		return nil
	}
	res, err := Run(cfg, []Workload{{Name: "m", Prog: mixedProgram(40000)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lanes[0].Detections == 0 {
		t.Error("sampled mode never caught a persistent hard fault")
	}
}

func TestEagerWakeNeverSlower(t *testing.T) {
	prog := mixedProgram(25000)
	run := func(eager bool) float64 {
		cfg := DefaultConfig(a510Checkers(2, 1.4))
		cfg.EagerWake = eager
		res, err := Run(cfg, []Workload{{Name: "m", Prog: prog}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Lanes[0].TimeNS
	}
	eager, lazy := run(true), run(false)
	if eager > lazy*1.02 {
		t.Errorf("eager waking slower (%.0f) than lazy (%.0f)", eager, lazy)
	}
}

func TestWarmupExcludedFromResults(t *testing.T) {
	prog := mixedProgram(1 << 30)
	cfg := DefaultConfig(x2Checkers(1, 3.0))
	res, err := Run(cfg, []Workload{{Name: "m", Prog: prog, MaxInsts: 10_000, WarmupInsts: 30_000}})
	if err != nil {
		t.Fatal(err)
	}
	lane := res.Lanes[0]
	if lane.Insts != 10_000 {
		t.Errorf("measured insts %d, want 10000 (warmup excluded)", lane.Insts)
	}
	var ckInsts uint64
	for _, ck := range res.CheckersByLane[0] {
		ckInsts += ck.Insts
	}
	// Checker counters are snapshotted too; they should be close to the
	// measured window, not the full 40k.
	if ckInsts > 15_000 {
		t.Errorf("checker insts %d include warmup", ckInsts)
	}
}

func TestLaneMainsHeterogeneousCompute(t *testing.T) {
	// Two harts on different core models: the A510 lane runs slower.
	b := buildTwoHartSwap()
	cfg := DefaultConfig()
	cfg.Checkers = nil
	cfg.LaneMains = []LaneMain{
		{CPU: cpu.X2(), FreqGHz: 3.0},
		{CPU: cpu.A510(), FreqGHz: 2.0},
	}
	res, err := Run(cfg, []Workload{{Name: "het", Prog: b}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lanes[0].CoreName != "X2" || res.Lanes[1].CoreName != "A510" {
		t.Fatalf("lane cores %s/%s", res.Lanes[0].CoreName, res.Lanes[1].CoreName)
	}
	if res.Lanes[1].TimeNS <= res.Lanes[0].TimeNS {
		t.Error("A510 lane not slower than X2 lane on the same per-hart work")
	}
}

func TestTooManyLanesRejected(t *testing.T) {
	ws := make([]Workload, 5) // layout has 4 main tiles
	for i := range ws {
		ws[i] = Workload{Name: "m", Prog: mixedProgram(100)}
	}
	if _, err := Run(DefaultConfig(x2Checkers(1, 3.0)), ws); err == nil {
		t.Error("5 lanes on a 4-main-tile layout accepted")
	}
}

func TestEnergyReportSanity(t *testing.T) {
	cfg := DefaultConfig(x2Checkers(1, 3.0))
	res, err := Run(cfg, []Workload{{Name: "m", Prog: mixedProgram(20000)}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Energy(cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	// A same-model same-frequency checker executing every instruction
	// costs lockstep-like energy: within (0.5, 1.2] of the main core.
	if rep.Overhead <= 0.5 || rep.Overhead > 1.2 {
		t.Errorf("homogeneous energy overhead %.2f, want lockstep-like", rep.Overhead)
	}
	if math.IsNaN(rep.MainJ) || rep.MainJ <= 0 {
		t.Errorf("main energy %v", rep.MainJ)
	}
}

func TestZeroTimeoutRejected(t *testing.T) {
	cfg := DefaultConfig(x2Checkers(1, 3.0))
	cfg.TimeoutInsts = 0
	if err := cfg.Validate(); err == nil {
		t.Error("checking without a checkpoint timeout accepted")
	}
}
