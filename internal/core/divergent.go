//paralint:deterministic

// Divergent multi-version checking (DME): the checker re-executes each
// segment as a structurally decorrelated program variant — shifted data
// segment, permuted register allocation — and both lanes are compared in
// a canonical, layout-independent domain (value + canonical location
// rather than raw address/register). A layout-correlated hardware fault
// (stuck address bit, DRAM row fault) corrupts the two layouts
// differently, so the comparison catches fault classes that
// identical-replay lockstep checking structurally cannot.
package core

import (
	"fmt"
	"math"

	"paraverser/internal/asm"
	"paraverser/internal/emu"
	"paraverser/internal/isa"
	"paraverser/internal/isa/verify"
)

// DivergentPlan is everything divergent checking needs for one program:
// the decorrelated variant, the layout map relating it to the original,
// and the canonicalisation helpers built from that map.
type DivergentPlan struct {
	Orig    *isa.Program
	Variant *isa.Program
	Map     verify.VariantMap

	dataLo, dataHi uint64 // original-layout data window
	shift          uint64
}

// NewDivergentPlan decorrelates prog and proves the variant equivalent
// (verify.EquivalentVariant) before any segment is checked against it.
func NewDivergentPlan(prog *isa.Program, cfg DivergentConfig) (*DivergentPlan, error) {
	v, err := asm.Decorrelate(prog, asm.DecorrelateOptions{
		DataShiftBytes: cfg.DataShiftBytes,
		RegSeed:        cfg.RegSeed,
	})
	if err != nil {
		return nil, err
	}
	if err := verify.EquivalentVariant(prog, v.Prog, &v.Map); err != nil {
		return nil, fmt.Errorf("core: divergent variant of %q fails equivalence: %w", prog.Name, err)
	}
	return &DivergentPlan{
		Orig:    prog,
		Variant: v.Prog,
		Map:     v.Map,
		dataLo:  v.Map.DataLo,
		dataHi:  v.Map.DataHi,
		shift:   v.Map.DataShift,
	}, nil
}

// canonAddr maps a variant-layout address back to the canonical
// (original) layout — the comparison domain. Addresses outside the
// relocated data window (stack, carried-in canonical pointers, and any
// wild address a fault produced) are layout-invariant.
//
//paralint:hotpath
func (p *DivergentPlan) canonAddr(a uint64) uint64 {
	if a >= p.dataLo+p.shift && a < p.dataHi+p.shift {
		return a - p.shift
	}
	return a
}

// windowGraceBytes widens the dual-accept pointer test (dataMatches)
// around the data window: pointer arithmetic may step a genuine data
// pointer slightly past the window edge mid-computation (a streaming
// base advanced before re-wrapping), and such a value still compares as
// canonical+shift.
const windowGraceBytes = 0x40000

// nearWindow reports whether a canonical value lies in (or within the
// grace margin of) the data window — i.e. whether it plausibly denotes
// a data address the variant would carry rebased.
func (p *DivergentPlan) nearWindow(v uint64) bool {
	lo := p.dataLo
	if lo >= windowGraceBytes {
		lo -= windowGraceBytes
	} else {
		lo = 0
	}
	return v >= lo && v < p.dataHi+windowGraceBytes
}

// dataMatches reports whether a variant-lane datum matches a logged
// canonical datum: bit-identical (the common case — data values are
// layout-invariant, and loads replay the logged values raw), or offset
// by exactly the layout shift when the canonical value points into the
// data window — how a pointer the variant materialised through a
// rebased LUI compares. Translating full-width values unconditionally
// would false-positive on every non-pointer datum that coincidentally
// lands in a window (workload values are nowhere near uniform over
// 2^64); demanding exact equality would false-positive on every stored
// rebased pointer. The dual accept has neither failure mode; the cost
// is masking a fault whose corruption is exactly the layout shift of an
// in-window value, which the register permutation and the private-image
// cross-check still cover.
//
//paralint:hotpath
func (p *DivergentPlan) dataMatches(got, want uint64, size uint8) bool {
	if got == want {
		return true
	}
	return size == 8 && got-want == p.shift && p.nearWindow(want)
}

// PermuteState maps a main-core register checkpoint into the variant's
// register allocation: each value moves to its permuted slot unchanged.
// Values are NOT layout-shifted: a checkpoint register holding an
// in-window bit pattern is not necessarily a pointer, and shifting a
// non-pointer would corrupt the replay. Carried-in data pointers
// therefore stay canonical — legal, since the canonical window is
// disjoint from the variant's and both address forms canonicalise to
// the same comparison domain — while pointers the variant materialises
// itself (rebased LUIs) land in the relocated window.
func (p *DivergentPlan) PermuteState(st *emu.ArchState) emu.ArchState {
	out := emu.ArchState{PC: st.PC}
	for i, v := range st.X {
		out.X[p.Map.XPerm[i]] = v
	}
	for i, v := range st.F {
		out.F[p.Map.FPerm[i]] = v
	}
	return out
}

// EndMatches compares the variant hart's end state against the main's
// end checkpoint through the register permutation — the RCU induction
// check in the canonical domain. Integer registers use the dual accept
// (a register may legitimately hold the rebased form of a data
// pointer); FP registers never carry addresses and must match bitwise,
// like the lockstep RCU compare — float equality would false-positive
// on NaN (NaN != NaN) the moment a workload parks one in a register
// across a segment boundary.
//
//paralint:hotpath
func (p *DivergentPlan) EndMatches(want, got *emu.ArchState) bool {
	if want.PC != got.PC {
		return false
	}
	for i, v := range want.X {
		if !p.dataMatches(got.X[p.Map.XPerm[i]], v, 8) {
			return false
		}
	}
	for i, v := range want.F {
		if math.Float64bits(got.F[p.Map.FPerm[i]]) != math.Float64bits(v) {
			return false
		}
	}
	return true
}

// divState is one lane's divergent-checking state: the plan plus the
// variant lane's private memory image, keyed by canonical address. The
// image starts as the program's data segment and is advanced by each
// verified segment's committed stores, giving the checker an independent
// copy of memory to cross-check logged load data against — the
// redundancy lockstep checking lacks.
type divState struct {
	plan *DivergentPlan
	mem  *emu.Memory
	// dirty marks the image stale: a segment ran unchecked (graceful
	// degradation), so its stores never reached the private image. The
	// next dispatch resyncs from the main's memory before checking.
	dirty bool
}

func newDivState(plan *DivergentPlan) *divState {
	d := &divState{plan: plan, mem: emu.NewMemory()}
	d.mem.WriteBytes(plan.Orig.DataBase, plan.Orig.Data)
	return d
}

// resync rebuilds the private image from the main's memory. The image is
// keyed by canonical address, so pages copy raw. Called only after
// unchecked windows, which only graceful degradation produces in
// full-coverage mode.
func (d *divState) resync(main *emu.Memory) {
	d.mem = emu.NewMemory()
	main.ForEachPage(func(base uint64, data []byte) {
		d.mem.WriteBytes(base, data)
	})
	d.dirty = false
}

// DivergentEnv is the emu.Env the divergent checker executes against.
// Loads are contained to the logged stream (the replay continues on the
// main run's raw values) but are additionally cross-checked against the
// private memory image at the canonical location; store addresses and
// data are compared in the canonical domain and the verified data
// committed to the image.
type DivergentEnv struct {
	logCursor
	plan *DivergentPlan
	mem  *emu.Memory
	lsc  *LSC
}

var _ emu.Env = (*DivergentEnv)(nil)

// NewDivergentEnv builds the divergent replay environment for one
// segment over the lane's private memory image.
func NewDivergentEnv(plan *DivergentPlan, mem *emu.Memory, seg *Segment, lsc *LSC) *DivergentEnv {
	return &DivergentEnv{logCursor: logCursor{seg: seg}, plan: plan, mem: mem, lsc: lsc}
}

// Load implements emu.Env: the address is compared in the canonical
// domain, the logged datum is cross-checked against the private image,
// and the logged raw datum is returned for containment.
//
//paralint:hotpath
func (e *DivergentEnv) Load(addr uint64, size uint8) (uint64, error) {
	op, idx, err := e.next()
	if err != nil {
		return 0, err
	}
	canon := e.plan.canonAddr(addr)
	e.lsc.CheckLoad(idx, op, canon, size)
	if op.Load {
		got, _ := e.mem.Load(canon, size)
		if got != op.Data {
			e.lsc.record(Mismatch{Kind: MismatchLoadData, EntryIdx: idx, Want: got, Got: op.Data})
		}
	}
	return op.Data, nil
}

// Store implements emu.Env: address and datum are compared in the
// canonical domain (datum via the dual accept — a stored value may be a
// rebased pointer); the logged datum is committed to the private image
// so the image tracks the verified stream.
//
//paralint:hotpath
func (e *DivergentEnv) Store(addr uint64, size uint8, val uint64) error {
	op, idx, err := e.next()
	if err != nil {
		return err
	}
	v := truncTo(val, size)
	if e.plan.dataMatches(v, op.Data, size) {
		// Shift-consistent pointer store: canonicalise so the LSC's exact
		// compare passes; anything else reaches the LSC raw and mismatches.
		v = op.Data
	}
	canon := e.plan.canonAddr(addr)
	e.lsc.CheckStore(idx, op, canon, size, v)
	return e.mem.Store(canon, size, op.Data)
}

// Swap implements emu.Env: the logged entry holds loaded-then-stored
// data; both halves go through the canonical comparison.
func (e *DivergentEnv) Swap(addr uint64, newVal uint64) (uint64, error) {
	old, err := e.Load(addr, 8)
	if err != nil {
		return 0, err
	}
	if err := e.Store(addr, 8, newVal); err != nil {
		return 0, err
	}
	return old, nil
}

// Rand implements emu.Env: non-repeatable values replay raw from the
// log, like every other datum.
func (e *DivergentEnv) Rand() (uint64, error) {
	op, _, err := e.next()
	if err != nil {
		return 0, err
	}
	return op.Data, nil
}

// CycleRead implements emu.Env: same replay path as Rand.
func (e *DivergentEnv) CycleRead(uint64) (uint64, error) {
	op, _, err := e.next()
	if err != nil {
		return 0, err
	}
	return op.Data, nil
}
